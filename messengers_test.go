package messengers

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// The quickstart program: the Fig. 1(b) pattern — create a node on every
// neighboring daemon, shuttle back and forth over the created link, and
// leave a mark.
const quickstartScript = `
	create(ALL);
	node.visits = node.visits + 1;
	hop(ll = $last);
	node.center_hits = node.center_hits + 1;
	hop(ll = $last);
	node.visits = node.visits + 1;
	print("worker on", $address, "visited twice");
`

func TestPublicAPIOnRealSystem(t *testing.T) {
	sys, err := NewRealSystem(Config{Daemons: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.CompileAndRegister("quick", quickstartScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(0, "quick", nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		sys.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("system did not quiesce")
	}
	for _, err := range sys.Errors() {
		t.Errorf("runtime error: %v", err)
	}
	if out := sys.Output(); len(out) != 3 {
		t.Errorf("output = %v", out)
	}
}

func TestPublicAPIOnSimSystem(t *testing.T) {
	var log bytes.Buffer
	sys, err := NewSimSystem(Config{Daemons: 3, Output: &log})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CompileAndRegister("quick", quickstartScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(0, "quick", nil); err != nil {
		t.Fatal(err)
	}
	elapsed := sys.RunSim()
	if elapsed <= 0 {
		t.Errorf("elapsed = %v", elapsed)
	}
	for _, err := range sys.Errors() {
		t.Errorf("runtime error: %v", err)
	}
	if got := log.String(); strings.Count(got, "visited twice") != 2 {
		t.Errorf("log = %q", got)
	}
	if sys.Kernel() == nil || sys.Cluster() == nil {
		t.Error("sim accessors should be populated")
	}
	if sys.Cluster().Bus.Stats.Messages == 0 {
		t.Error("no simulated traffic recorded")
	}
}

func TestPublicAPIOnTCPSystem(t *testing.T) {
	sys, err := NewTCPSystem(Config{Daemons: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if got := sys.Addrs(); len(got) != 3 {
		t.Fatalf("addrs = %v", got)
	}
	if err := sys.CompileAndRegister("quick", quickstartScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(0, "quick", nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		sys.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("TCP system did not quiesce")
	}
	for _, err := range sys.Errors() {
		t.Errorf("runtime error: %v", err)
	}
}

func TestNativeFunctionsViaFacade(t *testing.T) {
	sys, err := NewSimSystem(Config{Daemons: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.RegisterNative("greet", func(ctx *NativeCtx, args []Value) (Value, error) {
		return StrValue("hello " + args[0].AsStr()), nil
	})
	if err := sys.CompileAndRegister("g", `node.msg = greet(who);`); err != nil {
		t.Fatal(err)
	}
	err = sys.Inject(0, "g", map[string]Value{"who": StrValue("world")})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunSim()
	vars, ok := sys.ReadNodeVars(0, "init")
	if !ok || vars["msg"].AsStr() != "hello world" {
		t.Errorf("vars = %v", vars)
	}
}

func TestBuildNetworkViaFacade(t *testing.T) {
	sys, err := NewSimSystem(Config{Daemons: 2, Topology: Ring(2)})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.BuildNetwork(NetSpec{
		Nodes: []NetNode{{Name: "a", Daemon: 0}, {Name: "b", Daemon: 1}},
		Links: []NetLink{{A: "a", B: "b", Name: "ab"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CompileAndRegister("walk", `hop(ll = "ab"); node.here = 1;`); err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectAt(0, "walk", "a", nil); err != nil {
		t.Fatal(err)
	}
	sys.RunSim()
	vars, ok := sys.ReadNodeVars(1, "b")
	if !ok || vars["here"].AsInt() != 1 {
		t.Errorf("vars = %v, ok=%v", vars, ok)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewRealSystem(Config{}); err == nil {
		t.Error("0 daemons should fail")
	}
	if _, err := NewSimSystem(Config{}); err == nil {
		t.Error("0 daemons should fail")
	}
	if _, err := NewTCPSystem(Config{}, nil); err == nil {
		t.Error("0 daemons should fail")
	}
	if _, err := NewTCPSystem(Config{Daemons: 2}, []string{"127.0.0.1:0"}); err == nil {
		t.Error("address count mismatch should fail")
	}
	if err := func() (err error) {
		defer func() {
			if recover() != nil {
				err = nil
			} else {
				err = errRunSimNoPanic
			}
		}()
		sys, _ := NewRealSystem(Config{Daemons: 1})
		defer sys.Close()
		sys.RunSim()
		return nil
	}(); err != nil {
		t.Error("RunSim on a real system should panic")
	}
}

var errRunSimNoPanic = &compileError{"RunSim did not panic"}

type compileError struct{ s string }

func (e *compileError) Error() string { return e.s }

func TestCompileErrorSurface(t *testing.T) {
	sys, err := NewSimSystem(Config{Daemons: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CompileAndRegister("bad", `x = ;`); err == nil {
		t.Error("syntax error should surface")
	}
}
