package vm

import (
	"errors"
	"testing"

	"messengers/internal/compile"
)

// meterRec is a test StepMeter: a fixed allowance, recording charges.
type meterRec struct {
	allowance int64
	charged   int64
}

func (m *meterRec) Allowance() int64 { return m.allowance - m.charged }
func (m *meterRec) Charge(n int64)   { m.charged += n }

func meterVM(t *testing.T, src string) *VM {
	t.Helper()
	prog, err := compile.Compile("metered", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(prog, nil)
}

// TestMeterBudgetExhaustion: a runaway loop against a finite allowance must
// return ErrStepBudget with the charge never exceeding the allowance.
func TestMeterBudgetExhaustion(t *testing.T) {
	m := meterVM(t, `for (k = 0; k >= 0; k++) { x = x + 1; }`)
	meter := &meterRec{allowance: 100}
	m.SetMeter(meter)
	_, err := m.Run(newTestHost(), 1_000_000)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
	if meter.charged > 100 {
		t.Errorf("charged %d steps, over the allowance of 100", meter.charged)
	}
	if meter.charged == 0 {
		t.Error("no steps charged before the budget tripped")
	}
}

// TestMeterExhaustedBeforeStart: zero allowance refuses to execute at all.
func TestMeterExhaustedBeforeStart(t *testing.T) {
	m := meterVM(t, `x = 1;`)
	m.SetMeter(&meterRec{allowance: 0})
	_, err := m.Run(newTestHost(), 1_000_000)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

// TestMeterChargesCompletedRun: a program that finishes within its
// allowance is charged exactly its executed steps, and repeated segments
// accumulate against the same meter.
func TestMeterChargesCompletedRun(t *testing.T) {
	m := meterVM(t, `for (k = 0; k < 10; k++) { x = x + 1; }`)
	meter := &meterRec{allowance: 1 << 20}
	m.SetMeter(meter)
	res, err := m.Run(newTestHost(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pause != PauseEnd {
		t.Fatalf("pause = %v", res.Pause)
	}
	if meter.charged == 0 {
		t.Error("completed run charged nothing")
	}
	if meter.charged != res.Steps {
		t.Errorf("charged %d, executed %d", meter.charged, res.Steps)
	}
}

// TestMeterTighterThanMaxSteps: when the allowance is tighter than the
// engine's runaway guard, exhaustion reports the budget error (evictable
// quota condition), not the runaway error (program bug).
func TestMeterTighterThanMaxSteps(t *testing.T) {
	m := meterVM(t, `for (k = 0; k >= 0; k++) { x = x + 1; }`)
	m.SetMeter(&meterRec{allowance: 50})
	_, err := m.Run(newTestHost(), 1_000)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
	// And the reverse: a generous allowance leaves the runaway guard as
	// the binding limit, with its original error.
	m2 := meterVM(t, `for (k = 0; k >= 0; k++) { x = x + 1; }`)
	m2.SetMeter(&meterRec{allowance: 1 << 30})
	_, err = m2.Run(newTestHost(), 1_000)
	if err == nil || errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want runaway-guard error", err)
	}
}
