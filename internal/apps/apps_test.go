package apps

import (
	"testing"

	"messengers/internal/lan"
	"messengers/internal/matmul"
)

func TestMandelAllImplementationsAgree(t *testing.T) {
	cm := lan.DefaultCostModel()
	// Large enough that compute dominates PVM's spawn cost (at tiny sizes
	// PVM legitimately loses to sequential — the paper's "speedup in most
	// cases").
	p := PaperMandelParams(160, 4, 3)

	seq := MandelSequential(cm, p)
	msgr, err := MandelMessengers(cm, p)
	if err != nil {
		t.Fatalf("messengers: %v", err)
	}
	pvmRes, err := MandelPVM(cm, p)
	if err != nil {
		t.Fatalf("pvm: %v", err)
	}
	if msgr.Checksum != seq.Checksum {
		t.Error("MESSENGERS image differs from sequential")
	}
	if pvmRes.Checksum != seq.Checksum {
		t.Error("PVM image differs from sequential")
	}
	if msgr.Elapsed <= 0 || pvmRes.Elapsed <= 0 || seq.Elapsed <= 0 {
		t.Errorf("elapsed: msgr=%v pvm=%v seq=%v", msgr.Elapsed, pvmRes.Elapsed, seq.Elapsed)
	}
	// Three workers share work that one host does alone: the parallel
	// runs must beat sequential on this compute-heavy configuration.
	if msgr.Elapsed >= seq.Elapsed {
		t.Errorf("messengers (%v) not faster than sequential (%v)", msgr.Elapsed, seq.Elapsed)
	}
	if pvmRes.Elapsed >= seq.Elapsed {
		t.Errorf("pvm (%v) not faster than sequential (%v)", pvmRes.Elapsed, seq.Elapsed)
	}
	if msgr.Obs.CounterValue("bus.bytes") == 0 || pvmRes.Obs.CounterValue("bus.bytes") == 0 {
		t.Error("no bus traffic recorded for a distributed run")
	}
}

func TestMandelSingleWorker(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := PaperMandelParams(32, 2, 1)
	seq := MandelSequential(cm, p)
	msgr, err := MandelMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if msgr.Checksum != seq.Checksum {
		t.Error("single-worker image differs")
	}
	if got := msgr.Obs.CounterValue("mandel.deposits"); got != 4 {
		t.Errorf("deposits = %d", got)
	}
}

func TestMandelValidatesParams(t *testing.T) {
	cm := lan.DefaultCostModel()
	if _, err := MandelMessengers(cm, MandelParams{Workers: 0}); err == nil {
		t.Error("0 workers should fail")
	}
	if _, err := MandelPVM(cm, MandelParams{Workers: 0}); err == nil {
		t.Error("0 workers should fail")
	}
}

func TestMatmulAllImplementationsAgree(t *testing.T) {
	cm := lan.DefaultCostModel()
	for _, tc := range []struct{ m, s int }{{2, 8}, {3, 5}} {
		p := MatmulParams{M: tc.m, S: tc.s, Host: lan.SPARC110, Seed: 7}
		naive := MatmulSequentialNaive(cm, p)
		block := MatmulSequentialBlock(cm, p)
		msgr, err := MatmulMessengers(cm, p)
		if err != nil {
			t.Fatalf("m=%d s=%d messengers: %v", tc.m, tc.s, err)
		}
		pvmRes, err := MatmulPVM(cm, p)
		if err != nil {
			t.Fatalf("m=%d s=%d pvm: %v", tc.m, tc.s, err)
		}
		if d := matmul.MaxAbsDiff(naive.C, block.C); d > 1e-9 {
			t.Errorf("m=%d s=%d: block vs naive diff %g", tc.m, tc.s, d)
		}
		if d := matmul.MaxAbsDiff(naive.C, msgr.C); d > 1e-9 {
			t.Errorf("m=%d s=%d: MESSENGERS result wrong by %g", tc.m, tc.s, d)
		}
		if d := matmul.MaxAbsDiff(naive.C, pvmRes.C); d > 1e-9 {
			t.Errorf("m=%d s=%d: PVM result wrong by %g", tc.m, tc.s, d)
		}
		if msgr.Obs.CounterValue("gvt.rounds") == 0 {
			t.Error("MESSENGERS matmul should exercise GVT rounds")
		}
	}
}

func TestMatmulSkipArithmeticKeepsTiming(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := MatmulParams{M: 2, S: 10, Host: lan.SPARC110, Seed: 3}
	full, err := MatmulMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	p.SkipArithmetic = true
	skip, err := MatmulMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Elapsed != skip.Elapsed {
		t.Errorf("SkipArithmetic changed simulated time: %v vs %v", full.Elapsed, skip.Elapsed)
	}

	fullPVM, err := MatmulPVM(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	p.SkipArithmetic = false
	fullPVM2, err := MatmulPVM(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if fullPVM.Elapsed != fullPVM2.Elapsed {
		t.Errorf("PVM SkipArithmetic changed simulated time: %v vs %v", fullPVM.Elapsed, fullPVM2.Elapsed)
	}
}

func TestMatmulDeterministicElapsed(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := MatmulParams{M: 2, S: 6, Host: lan.SPARC170, Seed: 1}
	r1, err := MatmulMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MatmulMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := r1.Obs.CounterValue("bus.msgs"), r2.Obs.CounterValue("bus.msgs")
	if r1.Elapsed != r2.Elapsed || m1 != m2 {
		t.Errorf("nondeterministic: %v/%d vs %v/%d", r1.Elapsed, m1, r2.Elapsed, m2)
	}
}

func TestMatmulM1DegenerateCase(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := MatmulParams{M: 1, S: 12, Host: lan.SPARC110, Seed: 5}
	naive := MatmulSequentialNaive(cm, p)
	msgr, err := MatmulMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := matmul.MaxAbsDiff(naive.C, msgr.C); d > 1e-9 {
		t.Errorf("m=1 result wrong by %g", d)
	}
	pvmRes, err := MatmulPVM(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := matmul.MaxAbsDiff(naive.C, pvmRes.C); d > 1e-9 {
		t.Errorf("m=1 pvm result wrong by %g", d)
	}
}

func TestMatmulValidatesParams(t *testing.T) {
	cm := lan.DefaultCostModel()
	if _, err := MatmulMessengers(cm, MatmulParams{M: 0, S: 5, Host: lan.SPARC110}); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := MatmulPVM(cm, MatmulParams{M: 2, S: 0, Host: lan.SPARC110}); err == nil {
		t.Error("s=0 should fail")
	}
}
