package pvm

// mailbox is a task's message queue with PVM's (source, tag) matching.
// In simulation all access happens on the kernel thread; in real mode the
// owning Proc's condMu guards it.
type mailbox struct {
	p    *Proc
	msgs []*Buffer
}

func newMailbox(p *Proc) *mailbox { return &mailbox{p: p} }

// deliver appends a complete message and wakes the owner.
func (mb *mailbox) deliver(b *Buffer) {
	if mb.p.m.Sim() {
		mb.msgs = append(mb.msgs, b)
		mb.p.wake()
		return
	}
	mb.p.condMu.Lock()
	mb.msgs = append(mb.msgs, b)
	mb.p.condMu.Unlock()
	mb.p.wake()
}

// kill marks the owner killed and wakes it.
func (mb *mailbox) kill() {
	if mb.p.m.Sim() {
		mb.p.killed = true
		mb.p.wake()
		return
	}
	mb.p.condMu.Lock()
	mb.p.killed = true
	mb.p.condMu.Unlock()
	mb.p.wake()
}

// match removes and returns the first message matching (src, tag), with -1
// wildcards. Caller must hold the appropriate lock (real) or be on the
// kernel thread (sim).
func (mb *mailbox) match(src TID, tag int) (*Buffer, bool) {
	for i, b := range mb.msgs {
		if (src == AnySource || b.src == src) && (tag == AnyTag || b.tag == tag) {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			return b, true
		}
	}
	return nil, false
}
