package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// modulePath is the import-path prefix of this repository's packages. The
// loader maps it onto the repo root on disk; everything else resolves from
// GOROOT source (no module cache, no network).
const modulePath = "messengers"

// A Loader type-checks packages from source. One Loader caches imports
// across every package of a driver run.
type Loader struct {
	RepoRoot string
	Fset     *token.FileSet

	ctx      build.Context
	imports  map[string]*types.Package
	compiled types.Importer // fallback for GOROOT packages, when available
	loading  map[string]bool
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(repoRoot string) *Loader {
	ctx := build.Default
	// Cgo files would need a C toolchain pass; every package we analyze or
	// import has pure-Go fallbacks.
	ctx.CgoEnabled = false
	l := &Loader{
		RepoRoot: repoRoot,
		Fset:     token.NewFileSet(),
		ctx:      ctx,
		imports:  map[string]*types.Package{},
		loading:  map[string]bool{},
	}
	// Prefer export data for GOROOT packages when the toolchain has it
	// compiled (fast, and sidesteps source quirks deep in the runtime);
	// fall back to type-checking stdlib source otherwise.
	l.compiled = importer.Default()
	return l
}

// A LoadedPackage is one fully type-checked package ready for analysis.
type LoadedPackage struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Load parses and type-checks the package in dir under the import path
// asPath, with full function bodies and recorded type info. Test files are
// excluded: mlint checks production code.
func (l *Loader) Load(dir, asPath string) (*LoadedPackage, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(asPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", asPath, typeErrs[0])
	}
	return &LoadedPackage{
		PkgPath: asPath,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}, nil
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter resolves import paths for the type checker: repo packages
// from the module directory, everything else from GOROOT (export data when
// present, source otherwise). Imported packages are checked without
// function bodies — only their API matters here.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}

	var dir string
	switch {
	case path == modulePath:
		dir = l.RepoRoot
	case strings.HasPrefix(path, modulePath+"/"):
		dir = filepath.Join(l.RepoRoot, filepath.FromSlash(strings.TrimPrefix(path, modulePath+"/")))
	default:
		if l.compiled != nil {
			if pkg, err := l.compiled.Import(path); err == nil && pkg.Complete() {
				l.imports[path] = pkg
				return pkg, nil
			}
		}
		goroot := l.ctx.GOROOT
		dir = filepath.Join(goroot, "src", filepath.FromSlash(path))
		if _, err := l.ctx.ImportDir(dir, 0); err != nil {
			vdir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path))
			if _, verr := l.ctx.ImportDir(vdir, 0); verr != nil {
				return nil, fmt.Errorf("cannot resolve import %q: %v", path, err)
			}
			dir = vdir
		}
	}

	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	var typeErrs []error
	conf := types.Config{
		Importer:         li,
		IgnoreFuncBodies: true,
		// Imported packages only contribute their API; tolerate errors in
		// corners of the stdlib we do not reach (collected, not fatal,
		// unless the package fails to materialize at all).
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		if len(typeErrs) > 0 {
			err = typeErrs[0]
		}
		return nil, fmt.Errorf("importing %q: %v", path, err)
	}
	pkg.MarkComplete()
	l.imports[path] = pkg
	return pkg, nil
}
