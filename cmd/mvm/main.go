// Command mvm benchmarks the MSL virtual machine's dispatch modes against
// each other: the classic switch loop, token-threaded dispatch over the
// lowered instruction stream, threaded dispatch with superinstruction
// fusion, and fusion with kind-specialized handlers substituted wherever
// the kind-flow verifier proved the operand kinds (the default). It
// answers the question the lowering and specialization passes exist for —
// how much of the interpreter's time is dispatch, operand decode, and
// dynamic kind guards — and gates regressions: the run exits nonzero if
// threaded dispatch loses to the switch loop or kind-specialized dispatch
// loses to threaded on any workload.
//
// Workloads are the paper-aligned kernels the engine spends its cycles on:
//
//   - mandel:  the E1 Mandelbrot inner loop (float arithmetic over
//     Messenger variables — the logical-process compute kernel).
//   - matmul:  dense matrix multiply through the matget/matset builtins
//     (payload compute; exercises native-call dispatch).
//   - ring:    a hop-per-iteration loop resumed in place (segment
//     entry/exit overhead; the control share of a hop).
//   - wirehop: the exact script BenchmarkWireHop injects, 16x16 matrix
//     payload aboard, with every PauseHop resumed in place. This is the
//     VM-bound share of the wire-hop path: everything BenchmarkWireHop
//     measures except serialization and daemon scheduling.
//
// Results are written as JSON (default BENCH_vm.json) for the bench
// artifact pipeline; -pairs additionally prints the hottest dynamic
// opcode pairs per workload, the profile the superinstruction set in
// internal/bytecode/lower.go was chosen from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"messengers/internal/bytecode"
	"messengers/internal/compile"
	"messengers/internal/value"
	"messengers/internal/vm"
)

// benchHost is a minimal vm.Host: node variables in a map, $last pinned to
// a neighbor name, print discarded. Matches what the daemon supplies on the
// hop path closely enough for dispatch benchmarking.
type benchHost struct {
	nodeVars map[string]value.Value
}

func (h *benchHost) NodeVar(name string) value.Value { return h.nodeVars[name] }
func (h *benchHost) SetNodeVar(name string, v value.Value) {
	if h.nodeVars == nil {
		h.nodeVars = map[string]value.Value{}
	}
	h.nodeVars[name] = v
}
func (h *benchHost) NetVar(name string) (value.Value, bool) { return value.Str("x"), true }
func (h *benchHost) Print(string)                           {}

// workload is one benchmark kernel: an MSL script plus its injection
// variables (rebuilt per op — execution mutates the Messenger state).
type workload struct {
	name string
	src  string
	vars func() map[string]value.Value
}

var workloads = []workload{
	{
		name: "mandel",
		// E1's per-pixel inner loop: fixed 50 iterations over a 64-pixel
		// row, all state in Messenger variables. Dominated by the
		// (LoadM,Const) / (Const,arith) / (arith,StoreM) / (cmp,Jz)
		// fusion families.
		src: `
			px = 0;
			while (px < 64) {
				cr = px / 32.0 - 1.5;
				ci = 0.3;
				zr = 0.0; zi = 0.0; n = 0;
				while (n < 50) {
					t = zr*zr - zi*zi + cr;
					zi = 2.0*zr*zi + ci;
					zr = t;
					n = n + 1;
				}
				out = n;
				px = px + 1;
			}
		`,
		vars: func() map[string]value.Value { return nil },
	},
	{
		name: "matmul",
		// Dense 16x16 multiply through builtins: native-call dispatch and
		// numeric indexing, with the loop scaffolding around it.
		src: `
			n = 16;
			a = matrix(n, n); b = matrix(n, n); c = matrix(n, n);
			i = 0;
			while (i < n) {
				j = 0;
				while (j < n) {
					matset(a, i, j, i + 2.0*j);
					matset(b, i, j, i - j + 0.5);
					j = j + 1;
				}
				i = i + 1;
			}
			i = 0;
			while (i < n) {
				j = 0;
				while (j < n) {
					s = 0.0; k = 0;
					while (k < n) {
						s = s + matget(a, i, k) * matget(b, k, j);
						k = k + 1;
					}
					matset(c, i, j, s);
					j = j + 1;
				}
				i = i + 1;
			}
		`,
		vars: func() map[string]value.Value { return nil },
	},
	{
		name: "ring",
		// Hop-per-iteration control loop, resumed in place: measures
		// per-segment entry/exit overhead with almost no compute.
		src:  `for (i = 0; i < hops; i++) { hop(ll = $last); }`,
		vars: func() map[string]value.Value {
			return map[string]value.Value{"hops": value.Int(64)}
		},
	},
	{
		name: "wirehop",
		// The exact BenchmarkWireHop script with its 16x16 payload. Hops
		// resume in place, so this isolates the VM-bound share of the
		// wire-hop path from serialization and scheduling.
		src: `
			blk = payload;
			for (i = 0; i < hops; i++) { hop(ll = $last); }
		`,
		vars: func() map[string]value.Value {
			return map[string]value.Value{
				"hops":    value.Int(64),
				"payload": value.Matrix(value.NewMat(16, 16)),
			}
		},
	},
}

// modes swept, in the order they appear in the JSON.
var modes = []vm.Dispatch{vm.DispatchSwitch, vm.DispatchThreaded, vm.DispatchFused, vm.DispatchSpecialized}

// modeResult is one (workload, mode) measurement.
type modeResult struct {
	NsPerOp   float64 `json:"ns_per_op"`
	NsPerStep float64 `json:"ns_per_step"`
	Reps      int     `json:"reps"`
}

// workloadResult aggregates one workload across all dispatch modes.
type workloadResult struct {
	Name            string                `json:"name"`
	StepsPerOp      int64                 `json:"steps_per_op"`
	Segments        int                   `json:"segments_per_op"`
	Modes           map[string]modeResult `json:"modes"`
	SpeedupThreaded float64               `json:"speedup_threaded"`
	SpeedupFused    float64               `json:"speedup_fused"`
	// SpeedupSpecialized is fused dispatch plus the kind-specialized
	// opcode swap (LowerKind), still normalized to the switch loop.
	SpeedupSpecialized float64 `json:"speedup_kind_specialized"`
	FusedShare         float64 `json:"fused_share"`
}

// check is one pass/fail gate recorded in the artifact.
type check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// report is the BENCH_vm.json schema.
type report struct {
	Bench     string           `json:"bench"`
	Generated string           `json:"generated_by"`
	Go        string           `json:"go"`
	Short     bool             `json:"short"`
	Workloads []workloadResult `json:"workloads"`
	Checks    []check          `json:"checks"`
	Pass      bool             `json:"pass"`
}

// runOp executes one full workload run under the given mode, resuming
// hops in place, and returns (steps, segments, fusedSteps).
func runOp(m *vm.VM, host vm.Host) (steps int64, segments int, fused int64, err error) {
	for {
		res, rerr := m.Run(host, 0)
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		steps += res.Steps
		_, f := m.SegmentStats()
		fused += f
		segments++
		switch res.Pause {
		case vm.PauseEnd:
			return steps, segments, fused, nil
		case vm.PauseHop, vm.PauseDelete, vm.PauseCreate:
			// Resume in place: the daemon-side replication and transfer are
			// exactly what this benchmark excludes.
		case vm.PauseSchedAbs, vm.PauseSchedDlt:
			// Virtual time elapses for free here.
		default:
			return 0, 0, 0, fmt.Errorf("unexpected pause %v", res.Pause)
		}
	}
}

// measure times reps complete runs of w under mode and returns total ns.
func measure(prog *bytecode.Program, w workload, mode vm.Dispatch, reps int) (int64, error) {
	host := &benchHost{}
	start := time.Now()
	for i := 0; i < reps; i++ {
		m := vm.New(prog, w.vars())
		m.SetDispatch(mode)
		if _, _, _, err := runOp(m, host); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds(), nil
}

// bestOf runs the measurement rounds times and keeps the fastest, the
// standard defense against scheduler noise on shared CI machines.
func bestOf(rounds int, prog *bytecode.Program, w workload, mode vm.Dispatch, reps int) (float64, error) {
	best := int64(1<<63 - 1)
	for r := 0; r < rounds; r++ {
		ns, err := measure(prog, w, mode, reps)
		if err != nil {
			return 0, err
		}
		if ns < best {
			best = ns
		}
	}
	return float64(best) / float64(reps), nil
}

// pairProfile runs the workload once on the switch loop with dynamic
// opcode-pair counting and prints the hottest pairs — the measurement the
// superinstruction set was chosen from.
func pairProfile(prog *bytecode.Program, w workload) error {
	prof := &vm.Profile{Pairs: new([vm.NumOps][vm.NumOps]int64)}
	m := vm.New(prog, w.vars())
	m.SetDispatch(vm.DispatchSwitch)
	m.SetProfile(prof)
	if _, _, _, err := runOp(m, &benchHost{}); err != nil {
		return err
	}
	type pair struct {
		a, b int
		n    int64
	}
	var pairs []pair
	var total int64
	for a := 0; a < vm.NumOps; a++ {
		for b := 0; b < vm.NumOps; b++ {
			if n := prof.Pairs[a][b]; n > 0 {
				pairs = append(pairs, pair{a, b, n})
				total += n
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].n > pairs[j].n })
	fmt.Printf("%s: top dynamic opcode pairs (%d total transitions)\n", w.name, total)
	for i, p := range pairs {
		if i >= 12 {
			break
		}
		fmt.Printf("  %6.2f%%  (%s, %s)\n",
			100*float64(p.n)/float64(total), vm.OpName(p.a), vm.OpName(p.b))
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_vm.json", "output JSON path")
	short := flag.Bool("short", false, "reduced rounds/reps for CI sanity")
	pairsFlag := flag.Bool("pairs", false, "print dynamic opcode-pair profiles instead of benchmarking")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	only := flag.String("only", "", "restrict the sweep to one workload")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvm:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mvm:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *only != "" {
		var kept []workload
		for _, w := range workloads {
			if w.name == *only {
				kept = append(kept, w)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "mvm: unknown workload %q\n", *only)
			os.Exit(1)
		}
		workloads = kept
	}

	if *pairsFlag {
		for _, w := range workloads {
			prog, err := compile.Compile(w.name, w.src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvm: compile %s: %v\n", w.name, err)
				os.Exit(1)
			}
			if err := pairProfile(prog, w); err != nil {
				fmt.Fprintf(os.Stderr, "mvm: %s: %v\n", w.name, err)
				os.Exit(1)
			}
		}
		return
	}

	rounds, minReps, targetNs := 5, 3, int64(200_000_000)
	if *short {
		rounds, targetNs = 3, 20_000_000
	}

	rep := report{
		Bench:     "vm-dispatch",
		Generated: "cmd/mvm",
		Go:        runtime.Version(),
		Short:     *short,
		Pass:      true,
	}

	for _, w := range workloads {
		prog, err := compile.Compile(w.name, w.src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvm: compile %s: %v\n", w.name, err)
			os.Exit(1)
		}

		// One instrumented run for steps/segments and the fused share.
		mf := vm.New(prog, w.vars())
		mf.SetDispatch(vm.DispatchFused)
		steps, segments, fused, err := runOp(mf, &benchHost{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvm: %s: %v\n", w.name, err)
			os.Exit(1)
		}

		wr := workloadResult{
			Name:       w.name,
			StepsPerOp: steps,
			Segments:   segments,
			Modes:      map[string]modeResult{},
			FusedShare: float64(fused) / float64(steps),
		}

		// Calibrate rep count off a single switch-mode run.
		calNs, err := measure(prog, w, vm.DispatchSwitch, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvm: %s: %v\n", w.name, err)
			os.Exit(1)
		}
		reps := int(targetNs / (calNs + 1))
		if reps < minReps {
			reps = minReps
		}

		for _, mode := range modes {
			nsPerOp, err := bestOf(rounds, prog, w, mode, reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvm: %s/%s: %v\n", w.name, mode, err)
				os.Exit(1)
			}
			wr.Modes[mode.String()] = modeResult{
				NsPerOp:   nsPerOp,
				NsPerStep: nsPerOp / float64(steps),
				Reps:      reps,
			}
		}

		sw := wr.Modes[vm.DispatchSwitch.String()].NsPerOp
		wr.SpeedupThreaded = sw / wr.Modes[vm.DispatchThreaded.String()].NsPerOp
		wr.SpeedupFused = sw / wr.Modes[vm.DispatchFused.String()].NsPerOp
		wr.SpeedupSpecialized = sw / wr.Modes[vm.DispatchSpecialized.String()].NsPerOp
		rep.Workloads = append(rep.Workloads, wr)

		fmt.Printf("%-8s steps/op=%-7d segs/op=%-3d fused=%4.1f%%  switch=%9.0fns  threaded=%9.0fns (%.2fx)  fused=%9.0fns (%.2fx)  specialized=%9.0fns (%.2fx)\n",
			w.name, steps, segments, 100*wr.FusedShare, sw,
			wr.Modes[vm.DispatchThreaded.String()].NsPerOp, wr.SpeedupThreaded,
			wr.Modes[vm.DispatchFused.String()].NsPerOp, wr.SpeedupFused,
			wr.Modes[vm.DispatchSpecialized.String()].NsPerOp, wr.SpeedupSpecialized)
	}

	// Gates. Threaded dispatch (with or without fusion) must not lose to
	// the switch loop on any workload; 2% grace absorbs timer noise after
	// best-of-N already filtered scheduler interference.
	const grace = 0.98
	bestFused := 0.0
	for _, wr := range rep.Workloads {
		if wr.SpeedupFused > bestFused {
			bestFused = wr.SpeedupFused
		}
	}
	{
		// The headline target: on VM-bound kernels (the hop workloads are
		// pause/segment-bound by construction), fused threaded dispatch must
		// reach 5x the switch loop. Enforced on full runs; short CI runs
		// record the number without gating on a noisy shared machine.
		c := check{
			Name:   "vm_bound_fused_5x",
			Pass:   *short || bestFused >= 5.0,
			Detail: fmt.Sprintf("best fused speedup across workloads is %.2fx (target 5x on VM-bound kernels)", bestFused),
		}
		rep.Checks = append(rep.Checks, c)
		if !c.Pass {
			rep.Pass = false
		}
	}
	for _, wr := range rep.Workloads {
		for _, mode := range []string{"threaded", "fused", "specialized"} {
			sp := wr.SpeedupThreaded
			switch mode {
			case "fused":
				sp = wr.SpeedupFused
			case "specialized":
				sp = wr.SpeedupSpecialized
			}
			c := check{
				Name:   fmt.Sprintf("%s_%s_no_loss", wr.Name, mode),
				Pass:   sp >= grace,
				Detail: fmt.Sprintf("%s dispatch is %.2fx the switch loop on %s", mode, sp, wr.Name),
			}
			rep.Checks = append(rep.Checks, c)
			if !c.Pass {
				rep.Pass = false
			}
		}
		// Spending the kind proofs must never cost more than the generic
		// fast path it replaces, on any workload, in every run mode.
		c := check{
			Name: fmt.Sprintf("%s_specialized_vs_threaded", wr.Name),
			Pass: wr.SpeedupSpecialized >= wr.SpeedupThreaded*grace,
			Detail: fmt.Sprintf("kind-specialized dispatch is %.2fx vs threaded %.2fx on %s",
				wr.SpeedupSpecialized, wr.SpeedupThreaded, wr.Name),
		}
		rep.Checks = append(rep.Checks, c)
		if !c.Pass {
			rep.Pass = false
		}
	}
	{
		// And on the VM-bound compute kernels the specialization has to pay
		// for itself beyond generic fusion: >5% over fused on at least one.
		// Enforced on full runs; short CI runs record the number only.
		computeWin, swept := 0.0, false
		for _, wr := range rep.Workloads {
			if wr.Name != "mandel" && wr.Name != "matmul" {
				continue
			}
			swept = true
			if win := wr.SpeedupSpecialized / wr.SpeedupFused; win > computeWin {
				computeWin = win
			}
		}
		if swept {
			c := check{
				Name: "kind_specialized_compute_win",
				Pass: *short || computeWin >= 1.05,
				Detail: fmt.Sprintf("best kind-specialized win over fused on a compute workload is %+.1f%% (target >5%% on full runs)",
					100*(computeWin-1)),
			}
			rep.Checks = append(rep.Checks, c)
			if !c.Pass {
				rep.Pass = false
			}
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvm:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mvm:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (pass=%v)\n", *out, rep.Pass)
	if !rep.Pass {
		pprof.StopCPUProfile()
		os.Exit(1)
	}
}
