package lan

import (
	"fmt"

	"messengers/internal/obs"
	"messengers/internal/sim"
)

// Bus is the shared Ethernet segment. All transmissions are serialized in
// FIFO order (the medium carries one frame train at a time), which is how a
// 10 Mb/s shared segment behaves under our workloads.
type Bus struct {
	k  *sim.Kernel
	cm *CostModel

	busyUntil sim.Time

	// Observability (nil when off): every frame becomes a span on the bus
	// track and updates the bus.* counters.
	tr                *obs.Tracer
	track             int
	msgs, bytes, busy *obs.Counter

	// Stats accumulates utilization counters for the experiment reports.
	Stats BusStats
}

// BusStats records bus activity over a run.
type BusStats struct {
	Messages int64
	Bytes    int64
	BusyTime sim.Time
}

// NewBus returns an idle bus on kernel k.
func NewBus(k *sim.Kernel, cm *CostModel) *Bus {
	return &Bus{k: k, cm: cm}
}

// Transmit queues a message of the given size on the medium and calls
// deliver when the last bit (plus propagation) reaches the destination.
// It returns the time transmission will complete.
func (b *Bus) Transmit(size int, deliver func()) sim.Time {
	tx := b.cm.WireTime(size)
	start := b.k.Now()
	if b.busyUntil > start {
		start = b.busyUntil
	}
	done := start + tx
	b.busyUntil = done
	b.Stats.Messages++
	b.Stats.Bytes += int64(size)
	b.Stats.BusyTime += tx
	if b.msgs != nil {
		b.msgs.Inc()
		b.bytes.Add(int64(size))
		b.busy.Add(int64(tx))
	}
	if b.tr != nil {
		b.tr.Span(b.track, "lan", "frame", int64(start), int64(tx), obs.I("bytes", int64(size)))
	}
	if deliver != nil {
		b.k.At(done+b.cm.PropDelay, deliver)
	}
	return done
}

// Host is one workstation: a single CPU serializing all software activity on
// that machine (daemon or pvmd processing, task computation, copies).
type Host struct {
	ID   int
	Spec HostSpec

	k       *sim.Kernel
	cpuFree sim.Time

	// busy mirrors Stats.BusyTime into the metrics registry (nil when off).
	busy *obs.Counter

	// Stats accumulates CPU busy time for utilization reports.
	Stats HostStats
}

// HostStats records per-host activity.
type HostStats struct {
	BusyTime sim.Time
}

// Exec reserves the host CPU for cost (already scaled) and schedules fn when
// it completes. It returns the completion time.
func (h *Host) Exec(cost sim.Time, fn func()) sim.Time {
	if cost < 0 {
		cost = 0
	}
	start := h.k.Now()
	if h.cpuFree > start {
		start = h.cpuFree
	}
	done := start + cost
	h.cpuFree = done
	h.Stats.BusyTime += cost
	if h.busy != nil {
		h.busy.Add(int64(cost))
	}
	if fn != nil {
		h.k.At(done, fn)
	}
	return done
}

// ExecScaled is Exec with the cost first scaled from the 110 MHz calibration
// to this host's clock rate.
func (h *Host) ExecScaled(base sim.Time, fn func()) sim.Time {
	return h.Exec(h.Spec.scale(base), fn)
}

// ExecProc blocks the calling simulated process while the host CPU performs
// cost worth of work (competing with other activity on the same host).
func (h *Host) ExecProc(p *sim.Proc, cost sim.Time) {
	h.Exec(cost, func() { p.Unpark() })
	p.Park()
}

// ExecProcScaled is ExecProc with 110 MHz scaling applied.
func (h *Host) ExecProcScaled(p *sim.Proc, base sim.Time) {
	h.ExecProc(p, h.Spec.scale(base))
}

// Scale converts a 110 MHz-calibrated cost to this host's clock.
func (h *Host) Scale(base sim.Time) sim.Time { return h.Spec.scale(base) }

// FaultVerdict is the outcome of consulting a fault hook for one remote
// transfer.
type FaultVerdict struct {
	// Drop transmits the frame (it occupies the wire) but never delivers
	// it — a lost or CRC-rejected frame.
	Drop bool
	// Dup transmits and delivers the frame twice.
	Dup bool
	// Delay adds extra latency before the receiver-side processing.
	Delay sim.Time
}

// FaultHook inspects one remote transfer at transmit time and decides its
// fate. Hooks are consulted in deterministic event order; package faults
// provides a seeded implementation.
type FaultHook func(src, dst, size int) FaultVerdict

// Cluster is the simulated testbed: n hosts on one shared Ethernet segment.
type Cluster struct {
	Kernel *sim.Kernel
	Model  *CostModel
	Bus    *Bus
	Hosts  []*Host

	// fault, when non-nil, is consulted for every remote transfer (Send
	// with src != dst). Nil keeps the lossless-LAN behavior byte-identical.
	fault FaultHook
}

// NewCluster builds a cluster of n identical hosts.
func NewCluster(k *sim.Kernel, cm *CostModel, n int, spec HostSpec) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("lan: cluster needs at least one host, got %d", n))
	}
	c := &Cluster{
		Kernel: k,
		Model:  cm,
		Bus:    NewBus(k, cm),
		Hosts:  make([]*Host, n),
	}
	for i := range c.Hosts {
		c.Hosts[i] = &Host{ID: i, Spec: spec, k: k}
	}
	return c
}

// Observe wires a tracer and metrics registry into the cluster: bus frames
// become spans on a dedicated bus track (one past the last host), bus.* and
// host.<i>.busy_ns counters mirror the Stats fields. Also binds the tracer's
// clock to the simulation kernel so every trace timestamp is simulated time
// (two identical runs then export byte-identical traces). Either argument
// may be nil.
func (c *Cluster) Observe(tr *obs.Tracer, m *obs.Metrics) {
	busTrack := len(c.Hosts)
	if tr != nil {
		tr.SetClock(func() int64 { return int64(c.Kernel.Now()) })
		tr.NameTrack(busTrack, obs.BusTrackName)
		c.Bus.tr = tr
		c.Bus.track = busTrack
	}
	if m != nil {
		c.Bus.msgs = m.Counter("bus.msgs")
		c.Bus.bytes = m.Counter("bus.bytes")
		c.Bus.busy = m.Counter("bus.busy_ns")
		for _, h := range c.Hosts {
			//lint:obsname per-host series; host IDs are dense and bounded
			h.busy = m.Counter(fmt.Sprintf("host.%d.busy_ns", h.ID))
		}
	}
}

// SetFaultHook installs a fault-injection hook consulted for every remote
// transfer. Pass nil to restore lossless delivery.
func (c *Cluster) SetFaultHook(h FaultHook) { c.fault = h }

// Send models a full message transfer from host src to host dst:
// sender-side CPU (sendCost), bus occupancy for size bytes, then
// receiver-side CPU (recvCost), then deliver. Local messages skip the bus
// but still pay CPU costs. All CPU costs are 110 MHz-calibrated.
func (c *Cluster) Send(src, dst int, size int, sendCost, recvCost sim.Time, deliver func()) {
	s, d := c.Hosts[src], c.Hosts[dst]
	recvThenDeliver := func() { d.ExecScaled(recvCost, deliver) }
	if src == dst {
		s.ExecScaled(sendCost, recvThenDeliver)
		return
	}
	s.ExecScaled(sendCost, func() {
		if c.fault == nil {
			c.Bus.Transmit(size, recvThenDeliver)
			return
		}
		v := c.fault(src, dst, size)
		if v.Drop {
			// The frame occupies the wire but is never delivered.
			c.Bus.Transmit(size, nil)
			return
		}
		receive := recvThenDeliver
		if v.Delay > 0 {
			delay := v.Delay
			receive = func() { c.Kernel.After(delay, recvThenDeliver) }
		}
		c.Bus.Transmit(size, receive)
		if v.Dup {
			c.Bus.Transmit(size, receive)
		}
	})
}
