// Package vmtest is analyzed under messengers/internal/vm, where the
// lowered API is allowed but handler registration loops must route loop
// state through constructor parameters instead of capturing it.
package vmtest

import (
	"messengers/internal/bytecode"
)

// handler mimics the dispatch-table entry shape.
type handler func() int

var table [int(bytecode.NumDOps)]handler

// mkHandler is the constructor-parameter pattern the package standardizes
// on: the loop state arrives as an argument, so the closure's dependencies
// are explicit.
func mkHandler(op int) handler {
	return func() int { return op }
}

// registerClean builds the table without capturing the loop variable.
func registerClean() {
	for op := 0; op < len(table); op++ {
		table[op] = mkHandler(op)
	}
}

// registerCapture captures the for-loop variable inside the registered
// literal.
func registerCapture() {
	for op := 0; op < len(table); op++ {
		table[op] = func() int { // want "handler closure captures loop variable op"
			return op
		}
	}
}

// registerRangeCapture captures a range variable.
func registerRangeCapture(ops []int) {
	m := map[int]handler{}
	for i, op := range ops {
		m[i] = func() int { // want "handler closure captures loop variable op"
			return op
		}
	}
	_ = m
}

// registerIndexOnly uses the loop variable only as the table index, outside
// the literal body: fine.
func registerIndexOnly() {
	for op := 0; op < len(table); op++ {
		table[op] = func() int { return -1 }
	}
}

// registerSuppressed shows the escape hatch for a loop whose closures are
// invoked before the next iteration.
func registerSuppressed() {
	for op := 0; op < len(table); op++ {
		//lint:vmdispatch closure runs and is discarded within this iteration
		table[op] = func() int { return op }
		table[op]()
	}
}
