package messengers

import (
	"testing"

	"messengers/internal/apps"
	"messengers/internal/lan"
)

// These tests are the differential acceptance for the distributed
// ring-reduction GVT at application scale: the legacy coordinator is the
// oracle, and on the deterministic sim engine the ring must commit the
// identical sequence of GVT values while producing the identical results.

// TestGVTDifferentialE1 runs the E1 Mandelbrot configuration under both
// GVT implementations and compares images and committed GVT sequences.
func TestGVTDifferentialE1(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := apps.PaperMandelParams(128, 8, 4)
	coord, err := apps.MandelMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	p.DistributedGVT = true
	ring, err := apps.MandelMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Checksum != coord.Checksum {
		t.Errorf("ring image %x differs from coordinator image %x", ring.Checksum, coord.Checksum)
	}
	assertSameCommits(t, coord.GVTCommits, ring.GVTCommits)
}

// TestGVTDifferentialMatmul uses the matmul workload because its sched_abs
// phase barriers make virtual time do real work: every rotation step is a
// GVT commit, so the sequences compared here are long and meaningful.
func TestGVTDifferentialMatmul(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := apps.MatmulParams{M: 3, S: 5, Host: lan.SPARC110, Seed: 7}
	coord, err := apps.MatmulMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	p.DistributedGVT = true
	ring, err := apps.MatmulMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(coord.GVTCommits) == 0 {
		t.Fatal("matmul committed no GVT values; differential is vacuous")
	}
	assertSameCommits(t, coord.GVTCommits, ring.GVTCommits)
	if got := ring.Obs.CounterValue("gvt.commits"); got == 0 {
		t.Error("ring run recorded no gvt.commits metric")
	}
}

// TestGVTDifferentialChaos runs the chaos acceptance scenario under the
// ring protocol. Fault injection draws from the message stream, which
// differs between protocols, so the oracle here is the sequential image
// plus seed-determinism of the ring itself, not commit-sequence equality.
func TestGVTDifferentialChaos(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := apps.PaperMandelParams(128, 8, 4)
	p.DistributedGVT = true
	clean, err := apps.MandelMessengers(cm, p)
	if err != nil {
		t.Fatalf("fault-free probe run: %v", err)
	}

	run := func() *apps.MandelResult {
		pc := p
		pc.Faults = chaosPlan(clean.Elapsed, 2)
		res, err := apps.MandelMessengers(cm, pc)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return res
	}
	got := run()
	if want := apps.MandelSequential(cm, p); got.Checksum != want.Checksum {
		t.Errorf("ring chaos image = %x, sequential = %x", got.Checksum, want.Checksum)
	}
	if got.Obs.CounterValue("daemon.deaths") != 1 {
		t.Error("plan crashed no daemon; chaos differential is vacuous")
	}
	again := run()
	if again.Elapsed != got.Elapsed {
		t.Errorf("ring chaos runs diverge: %v vs %v", got.Elapsed, again.Elapsed)
	}
	assertSameCommits(t, got.GVTCommits, again.GVTCommits)
}

func assertSameCommits(t *testing.T, want, got []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("commit counts differ: got %d %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("commit %d differs: got %v, want %v", i, got, want)
		}
	}
}
