# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench bench-serve bench-gvt bench-gvt-short bench-vm bench-vm-short bench-protocols bench-protocols-short figures figures-short examples vet lint clean

all: vet lint test

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

# Repo-specific analyzers (determinism, sticky errors, obs namespace,
# lock discipline); see docs/ANALYSIS.md. Exits nonzero on findings.
lint: build
	$(GO) run ./cmd/mlint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

# Load-test the multi-tenant admission service (internal/serve) on both
# engines and record the service perf trajectory: throughput, latency
# percentiles, and rejection rates land in BENCH_serve.json. Exits nonzero
# on any quota violation or missing backpressure.
bench-serve:
	$(GO) run ./cmd/mload -mode both -sessions 100000 -tcp-sessions 5000 -out BENCH_serve.json

# Benchmark GVT maintenance and the scale-out kernel: coordinator vs.
# ring-reduction GVT swept over daemon counts (sim + 16-daemon TCP), the
# 1k-host scale point, and the heap/calendar event-kernel microbenchmark.
# Results land in BENCH_gvt.json; exits nonzero if the ring exceeds its
# 2-control-messages-per-daemon-per-round budget.
bench-gvt:
	$(GO) run ./cmd/mgvt -out BENCH_gvt.json

# Reduced sweep for CI sanity (keeps the 1k-host scale point).
bench-gvt-short:
	$(GO) run ./cmd/mgvt -short -out BENCH_gvt.json

# Benchmark the VM dispatch engines (switch / threaded / fused) over
# compute- and hop-bound workloads; results land in BENCH_vm.json.
# Exits nonzero if threaded dispatch loses to the switch loop on any
# workload, or if fused dispatch misses 5x on the best compute workload.
bench-vm:
	$(GO) run ./cmd/mvm -out BENCH_vm.json

# Reduced calibration for CI sanity (no-loss gates only, no 5x gate).
bench-vm-short:
	$(GO) run ./cmd/mvm -short -out BENCH_vm.json

# Protocol chaos suite: Paxos, 2PC, and termination detection as Messenger
# programs and PVM baselines, swept across seeded nemesis fault plans with
# every trace checked against the safety invariants. Exits nonzero on any
# violation; cost comparison lands in BENCH_protocols.json. The -broken run
# proves the checkers have teeth (a promise-forgetting acceptor must be
# caught).
bench-protocols:
	$(GO) run ./cmd/mproto -seeds 32 -out BENCH_protocols.json
	$(GO) run ./cmd/mproto -broken -seeds 12 -out ""

# Reduced sweep for CI sanity (6 seeds, sim engine).
bench-protocols-short:
	$(GO) run ./cmd/mproto -short -out BENCH_protocols.json
	$(GO) run ./cmd/mproto -broken -seeds 6 -out ""

# Regenerate every paper figure/table into experiments/.
figures:
	$(GO) run ./cmd/figures

figures-short:
	$(GO) run ./cmd/figures -short

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ringtoken
	$(GO) run ./examples/matmul -m 2 -s 32
	$(GO) run ./examples/mandelbrot -size 256 -grid 4 -workers 4 -o mandelbrot.pgm

clean:
	rm -f mandelbrot.pgm test_output.txt bench_output.txt
