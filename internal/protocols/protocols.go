// Package protocols implements three classic coordination protocols —
// single-decree Paxos, two-phase commit, and ring-based termination
// detection — twice each: as MSL Messenger programs (compiled, verified,
// and run on the real VM, with the runtime's recovery layer supplying
// at-least-once hop delivery) and as PVM-style message-passing baselines
// (which must carry their own retransmission and deduplication, as a 1997
// PVM application would). This is the paper's messages-versus-messengers
// comparison extended from data-parallel compute to coordination traffic.
//
// Each protocol emits a committed trace of Events through a Recorder;
// Checkers assert the machine-checkable safety properties over that trace
// (Paxos: agreement + ballot monotonicity; 2PC: no mixed commit/abort,
// decisions match votes; termination: no false positives, announced totals
// consistent). The harness (Run/Sweep) executes seed × fault-plan × engine
// matrices from internal/faults' nemesis catalog; cmd/mproto drives the
// full chaos acceptance sweep and writes BENCH_protocols.json.
//
// See docs/PROTOCOLS.md for the protocol designs and their assumptions
// (notably: acceptor and participant state is treated as stable storage,
// so nemesis plans crash leaders, never acceptors).
package protocols

import (
	"fmt"
	"sync"

	"messengers/internal/obs"
)

// Event kinds. One flat namespace across the three protocols keeps the
// Recorder and the violation reports uniform.
const (
	// EvRound marks a protocol round/pass start (Paxos ballot launched,
	// 2PC prepare, termination-detector lap).
	EvRound = "round"
	// EvPromise is a Paxos acceptor promising a ballot.
	EvPromise = "promise"
	// EvAccept is a Paxos acceptor accepting (ballot, value).
	EvAccept = "accept"
	// EvDecide is a decision: Paxos proposer learning a chosen value, or
	// the 2PC coordinator fixing commit/abort.
	EvDecide = "decide"
	// EvVote is a 2PC participant's vote ("1" commit / "0" abort).
	EvVote = "vote"
	// EvApply is a 2PC participant applying the coordinator's decision.
	EvApply = "apply"
	// EvSend / EvRecv are termination-detection base-computation activity.
	EvSend = "send"
	EvRecv = "recv"
	// EvDetect is the termination detector announcing quiescence; Ballot
	// carries the announced total message count.
	EvDetect = "detect"
)

// Event is one committed protocol observation. Seq is assigned by the
// Recorder in commit order — on the deterministic sim engine this order is
// reproducible; on real engines it respects the happens-before edges the
// protocol itself creates (an acceptor records its accept before replying,
// so a decide's supporting accepts always precede it).
type Event struct {
	Seq    int64  `json:"seq"`
	Kind   string `json:"kind"`
	Who    int    `json:"who"` // role index: acceptor/participant/node id
	Ballot int64  `json:"ballot,omitempty"`
	Val    string `json:"val,omitempty"`
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s who=%d b=%d v=%q", e.Seq, e.Kind, e.Who, e.Ballot, e.Val)
}

// Recorder collects a run's events. Safe for concurrent use: the real
// engines commit events from daemon executors and PVM task goroutines.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    int64

	rounds, decisions *obs.Counter
}

// NewRecorder builds a recorder instrumented on the given registry (which
// may be nil): proto.rounds counts protocol rounds/passes launched and
// proto.decisions counts decide/detect events.
func NewRecorder(m *obs.Metrics) *Recorder {
	return &Recorder{
		rounds:    m.Counter("proto.rounds"),
		decisions: m.Counter("proto.decisions"),
	}
}

// Record commits one event and returns it with its sequence number.
func (r *Recorder) Record(kind string, who int, ballot int64, val string) Event {
	r.mu.Lock()
	r.seq++
	ev := Event{Seq: r.seq, Kind: kind, Who: who, Ballot: ballot, Val: val}
	r.events = append(r.events, ev)
	r.mu.Unlock()
	switch kind {
	case EvRound:
		r.rounds.Inc()
	case EvDecide, EvDetect:
		r.decisions.Inc()
	}
	return ev
}

// Events returns a snapshot of the committed trace in commit order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}
