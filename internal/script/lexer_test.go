package script

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll(`x = 42; y = 3.14; s = "hi\n"; hop(ll = "row");`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		IDENT, ASSIGN, INT, SEMI,
		IDENT, ASSIGN, FLOAT, SEMI,
		IDENT, ASSIGN, STRING, SEMI,
		KwHop, LPAREN, IDENT, ASSIGN, STRING, RPAREN, SEMI,
		EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[2].Int != 42 {
		t.Errorf("int literal = %d", toks[2].Int)
	}
	if toks[6].Num != 3.14 {
		t.Errorf("float literal = %v", toks[6].Num)
	}
	if toks[10].Str != "hi\n" {
		t.Errorf("string literal = %q", toks[10].Str)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll(`== != <= >= < > && || ! + - * / % ++ -- += -= ~ $ .`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{EQ, NE, LE, GE, LT, GT, ANDAND, OROR, NOT, PLUS, MINUS,
		STAR, SLASH, PERCENT, PLUSPLUS, MINUSMINUS, PLUSEQ, MINUSEQ, TILDE,
		DOLLAR, DOT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := LexAll(`if else while for break continue return func node end hop create delete nil hopper`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwIf, KwElse, KwWhile, KwFor, KwBreak, KwContinue,
		KwReturn, KwFunc, KwNode, KwEnd, KwHop, KwCreate, KwDelete, KwNil,
		IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[14].Text != "hopper" {
		t.Errorf("ident text = %q", toks[14].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a // line comment\n/* block\ncomment */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comments not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Errorf("line tracking across comments: %v", toks[1].Pos)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := LexAll("0 123 1.5 0.5 2e3 1.5e-2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 0 || toks[1].Int != 123 {
		t.Error("int literals wrong")
	}
	if toks[2].Num != 1.5 || toks[3].Num != 0.5 || toks[4].Num != 2000 || toks[5].Num != 0.015 {
		t.Errorf("float literals wrong: %v %v %v %v", toks[2].Num, toks[3].Num, toks[4].Num, toks[5].Num)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		"\"newline\nin string\"",
		`"bad \q escape"`,
		`a & b`,
		`a | b`,
		`a @ b`,
		"/* unterminated",
	}
	for _, src := range bad {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) should fail", src)
		} else if !strings.HasPrefix(err.Error(), "msl:") {
			t.Errorf("error %q should carry a position", err)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}
