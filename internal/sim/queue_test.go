package sim

import (
	"testing"
)

// lcg is a tiny deterministic generator so queue property tests never
// depend on runtime randomness.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// drainOrder pushes the given schedule into q interleaved with pops and
// returns the observed pop order.
func drainOrder(t *testing.T, q eventQueue, ats []Time) []*event {
	t.Helper()
	var out []*event
	for i, at := range ats {
		q.Push(&event{at: at, seq: uint64(i)})
		// Interleave: every third push, pop once (monotonicity is not
		// required by the queue itself, only by the kernel).
		if i%3 == 2 {
			if e := q.Pop(); e != nil {
				out = append(out, e)
			}
		}
	}
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		out = append(out, e)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after drain: %d", q.Len())
	}
	return out
}

// TestQueueImplementationsAgree drives the heap, calendar, and adaptive
// queues with identical schedules — clustered, uniform, and heavy-tied —
// and requires identical pop orders. This is the determinism contract
// that lets the kernel switch structures without touching any golden.
func TestQueueImplementationsAgree(t *testing.T) {
	schedules := map[string][]Time{
		"uniform":  nil,
		"clustered": nil,
		"ties":     nil,
		"bursty":   nil,
	}
	r := lcg(1)
	for i := 0; i < 5000; i++ {
		schedules["uniform"] = append(schedules["uniform"], Time(r.next()%1_000_000))
		schedules["clustered"] = append(schedules["clustered"], Time((r.next()%50)*100_000+r.next()%10))
		schedules["ties"] = append(schedules["ties"], Time(r.next()%7))
		// bursty: long quiet gaps then dense bursts, the LAN model's shape.
		schedules["bursty"] = append(schedules["bursty"], Time((r.next()%10)*50_000_000+r.next()%200))
	}
	for name, ats := range schedules {
		t.Run(name, func(t *testing.T) {
			ref := drainOrder(t, newHeapQueue(), ats)
			for _, impl := range []struct {
				name string
				q    eventQueue
			}{
				{"calendar", newCalendarQueue(0)},
				{"adaptive", newAdaptiveQueue()},
			} {
				got := drainOrder(t, impl.q, ats)
				if len(got) != len(ref) {
					t.Fatalf("%s: drained %d events, heap drained %d", impl.name, len(got), len(ref))
				}
				for i := range ref {
					if got[i].at != ref[i].at || got[i].seq != ref[i].seq {
						t.Fatalf("%s: pop %d = (at=%d seq=%d), heap = (at=%d seq=%d)",
							impl.name, i, got[i].at, got[i].seq, ref[i].at, ref[i].seq)
					}
				}
			}
		})
	}
}

// TestAdaptiveQueueMigrates checks the hysteresis thresholds actually
// trigger both migrations and nothing is lost across them.
func TestAdaptiveQueueMigrates(t *testing.T) {
	a := newAdaptiveQueue()
	r := lcg(7)
	n := adaptUp + 500
	for i := 0; i < n; i++ {
		a.Push(&event{at: Time(r.next() % 1_000_000), seq: uint64(i)})
	}
	if a.cal == nil {
		t.Fatalf("expected migration to calendar above %d events", adaptUp)
	}
	var last *event
	count := 0
	for {
		e := a.Pop()
		if e == nil {
			break
		}
		if last != nil && !eventBefore(last, e) && (last.at != e.at || last.seq != e.seq) {
			t.Fatalf("out of order after migration: (%d,%d) then (%d,%d)", last.at, last.seq, e.at, e.seq)
		}
		last = e
		count++
	}
	if count != n {
		t.Fatalf("drained %d of %d events", count, n)
	}
	if a.cal != nil {
		t.Fatalf("expected migration back to heap after drain below %d", adaptDown)
	}
}

// TestHeapRemoveAt exercises the generic heap's index removal (Time Warp
// annihilation path) against a sorted reference.
func TestHeapRemoveAt(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	r := lcg(3)
	for i := 0; i < 200; i++ {
		h.Push(int(r.next() % 1000))
	}
	// Remove half the elements from arbitrary valid indices.
	for i := 0; i < 100; i++ {
		h.RemoveAt(int(r.next() % uint64(h.Len())))
	}
	prev := -1
	for h.Len() > 0 {
		v := h.Pop()
		if v < prev {
			t.Fatalf("heap order violated after RemoveAt: %d after %d", v, prev)
		}
		prev = v
	}
}

func BenchmarkEventQueue(b *testing.B) {
	for _, impl := range []string{"heap", "calendar", "adaptive"} {
		for _, hold := range []int{64, 1024, 8192} {
			b.Run(impl+"/"+itoa(hold), func(b *testing.B) {
				k := NewWithQueue(impl)
				r := lcg(11)
				// Steady state: `hold` pending events; each step pops one
				// and schedules one ahead — the classic hold model.
				for i := 0; i < hold; i++ {
					k.At(Time(r.next()%1_000_000), func() {})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.Step()
					k.At(k.Now()+Time(r.next()%1_000_000), func() {})
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
