package protocols

import (
	"fmt"
	"strconv"

	"messengers/internal/faults"
	"messengers/internal/obs"
	"messengers/internal/pvm"
)

// Two-phase commit as stationary PVM tasks — the message-passing baseline
// for twopc_msgr.go. Coordinator task on host 0, participant tasks on
// hosts 1..3; the same seeded vote function decides each participant's
// vote, so a seed's transaction is comparable across implementations. The
// coordinator's local variables are the commit point: killing the task in
// the window between vote collection and decision delivery blocks the
// participants, 2PC's textbook failure — they time out undecided, which
// the checker accepts; a mixed decision it would not.
const (
	tpPrepare  = 1 // [kind]
	tpVoteMsg  = 2 // [kind, vote]
	tpDecision = 3 // [kind, decision]
	tpAck      = 4 // [kind]
)

func tpcPVMParticipant(idx int, seed uint64, env *pvmEnv) func(p *pvm.Proc, r *rt) {
	return func(p *pvm.Proc, r *rt) {
		budget := env.budget()
		voted := false
		for {
			msg := r.recv(&budget)
			if msg == nil {
				break // coordinator crashed: blocked, legitimately undecided
			}
			switch msg.Vals[0] {
			case tpPrepare:
				if !voted {
					voted = true
					v := tpcVote(seed, idx)
					env.rec.Record(EvVote, idx, 0, strconv.FormatInt(v, 10))
					r.send(msg.Src, tpVoteMsg, v)
				}
			case tpDecision:
				d := msg.Vals[1]
				env.rec.Record(EvApply, idx, 0, strconv.FormatInt(d, 10))
				r.send(msg.Src, tpAck)
				r.flush(&budget)
				return
			}
		}
		r.flush(&budget)
	}
}

func tpcPVMCoordinator(parts []pvm.TID, env *pvmEnv) func(p *pvm.Proc, r *rt) {
	return func(p *pvm.Proc, r *rt) {
		budget := env.budget()
		env.rec.Record(EvRound, 0, 0, "")
		for _, pt := range parts {
			r.send(pt, tpPrepare)
		}
		votes, nack := 0, false
		for votes < len(parts) {
			msg := r.recv(&budget)
			if msg == nil {
				break
			}
			if msg.Vals[0] != tpVoteMsg {
				continue
			}
			votes++
			if msg.Vals[1] == 0 {
				nack = true
			}
		}
		if votes < len(parts) {
			// A participant never voted within budget: abort is the only
			// safe unilateral decision.
			nack = true
		}
		d := int64(1)
		if nack {
			d = 0
		}
		env.rec.Record(EvDecide, 0, 0, strconv.FormatInt(d, 10))
		for _, pt := range parts {
			r.send(pt, tpDecision, d)
		}
		acks := 0
		for acks < len(parts) {
			msg := r.recv(&budget)
			if msg == nil {
				break
			}
			if msg.Vals[0] == tpAck {
				acks++
			}
		}
		r.flush(&budget)
	}
}

func runTPCPVM(engine string, seed uint64, plan *faults.Plan, rec *Recorder, m *obs.Metrics) error {
	env, err := newPVMEnv(engine, 1+tpcParticipants, plan, rec, m)
	if err != nil {
		return err
	}
	parts := make([]pvm.TID, tpcParticipants)
	for i := 0; i < tpcParticipants; i++ {
		parts[i] = env.spawn(fmt.Sprintf("part%d", i), 1+i, tpcPVMParticipant(i, seed, env))
	}
	coord := env.spawn("coord", 0, tpcPVMCoordinator(parts, env))
	schedulePlanKills(env, plan, coord)
	return env.run()
}
