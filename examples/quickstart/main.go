// Quickstart: the paper's Figure 1(b) in eleven lines of MSL.
//
// A single Messenger is injected into daemon 0's init node. It creates a
// logical node on every neighboring daemon (replicating itself into each),
// and each replica then shuttles between its new node and the center over
// the link it arrived by, leaving marks in node variables along the way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"messengers"
)

const script = `
	// Runs at init of d0. create(ALL) builds one work node per neighboring
	// daemon and clones this Messenger into each of them.
	create(ALL);
	node.visits = node.visits + 1;

	// $last names the link we arrived by; hop back to the center.
	hop(ll = $last);
	node.arrivals = node.arrivals + 1;
	print("visited center, arrival number", node.arrivals);

	// And out to the work node again.
	hop(ll = $last);
	node.visits = node.visits + 1;
	print("done on", $address, "with", node.visits, "visits");
`

func main() {
	sys, err := messengers.NewRealSystem(messengers.Config{
		Daemons: 4,
		Output:  os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if err := sys.CompileAndRegister("quickstart", script); err != nil {
		log.Fatal(err)
	}
	if err := sys.Inject(0, "quickstart", nil); err != nil {
		log.Fatal(err)
	}
	sys.Wait()

	for _, err := range sys.Errors() {
		log.Fatalf("messenger failed: %v", err)
	}
	vars, _ := sys.ReadNodeVars(0, "init")
	fmt.Printf("center saw %v arrivals from %d workers\n",
		vars["arrivals"].Format(), sys.NumDaemons()-1)
}
