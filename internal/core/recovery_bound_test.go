package core

import (
	"testing"

	"messengers/internal/faults"
	"messengers/internal/lan"
	"messengers/internal/sim"
)

// TestDedupStateBounded drives many reliable transfers across one wire and
// checks that the duplicate-suppression state stays bounded: the AckFloor
// piggybacked on reliable sends lets receivers evict (msgrID, hopSeq) dedup
// entries below the sender's release floor, and RetainBudget caps how many
// acked snapshots the sender keeps ahead of GVT fossil collection.
func TestDedupStateBounded(t *testing.T) {
	const hops = 200
	const budget = 8
	k, sys := simSystem(t, 2, WithRecovery(RecoveryConfig{RetainBudget: budget}))
	register(t, sys, "pingpong", `
		create(ALL);
		for (k = 0; k < `+itoa(hops)+`; k++) { hop(ll = $last); }
	`)
	if err := sys.Inject(0, "pingpong", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)

	for d := 0; d < 2; d++ {
		rec := sys.Daemon(d).rec
		// After quiescence nothing may await retransmission; what remains
		// in pending is acked snapshots retained for crash respawn, and
		// the budget caps those instead of letting them grow with the run.
		for seq, e := range rec.pending {
			if !e.acked {
				t.Errorf("daemon %d: transfer %d unacked after quiescence", d, seq)
			}
		}
		if n := len(rec.pending); n > budget {
			t.Errorf("daemon %d: %d retained transfers, budget %d", d, n, budget)
		}
		if n := len(rec.retained); n > budget {
			t.Errorf("daemon %d: %d retained snapshots, budget %d", d, n, budget)
		}
		for from, sm := range rec.seen {
			// Each hop recorded a dedup entry; without floor-based eviction
			// the map would hold one entry per transfer ever received
			// (~hops). Bounded means a small multiple of the retain budget.
			if n := len(sm); n > 4*budget {
				t.Errorf("daemon %d: dedup map for sender %d holds %d entries over %d transfers (unbounded?)",
					d, from, n, hops)
			}
			if len(sm) > 0 && rec.evictedTo[from] == 0 {
				t.Errorf("daemon %d: dedup watermark for sender %d never advanced", d, from)
			}
		}
	}
}

// TestDedupUnboundedWithoutBudget documents the RetainBudget=0 tradeoff:
// snapshots (and thus receiver dedup entries) are retained until GVT fossil
// collection, so the run must still quiesce and stay exactly-once, even if
// more state is held mid-run.
func TestDedupUnboundedWithoutBudget(t *testing.T) {
	k, sys := simSystem(t, 2, WithRecovery(RecoveryConfig{}))
	register(t, sys, "once", `
		create(ALL);
		hop(ll = $last);
		node.count = node.count + 1;
		hop(ll = $last);
	`)
	if err := sys.Inject(0, "once", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if got := sys.Daemon(1).Store().Init().Vars["count"]; !got.IsNil() && got.AsInt() != 1 {
		t.Errorf("count = %v, want 1", got)
	}
}

// TestRetainBudgetUnderDuplicates: the bounded dedup window must still
// suppress duplicates the network delivers, including stragglers arriving
// after the window slid past them (caught by the evictedTo watermark).
func TestRetainBudgetUnderDuplicates(t *testing.T) {
	plan := &faults.Plan{Seed: 11, Dup: 0.4}
	if err := plan.Validate(2); err != nil {
		t.Fatal(err)
	}
	k := sim.New()
	cluster := lan.NewCluster(k, lan.DefaultCostModel(), 2, lan.SPARC110)
	sys := NewSystem(NewSimEngine(cluster), FullMesh(2),
		WithRecovery(RecoveryConfig{RetainBudget: 4}))
	inj := faults.NewInjector(plan, nil, nil)
	cluster.SetFaultHook(inj.LanHook(k))
	register(t, sys, "strider", `
		create(ALL);
		for (k = 0; k < 40; k++) {
			hop(ll = $last);
			node.count = node.count + 1;
		}
	`)
	if err := sys.Inject(0, "strider", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	// Exactly-once: the strider lands on daemon 0's init node on every odd
	// iteration — exactly 20 increments, duplicates notwithstanding.
	if got := sys.Daemon(0).Store().Init().Vars["count"].AsInt(); got != 20 {
		t.Errorf("init count = %d, want 20 (duplicate applied?)", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
