package protocols

import "fmt"

// Violation is one safety-property breach found in a committed trace. The
// chaos harness treats any violation as fatal (cmd/mproto exits nonzero).
type Violation struct {
	// Code is a stable machine-readable identifier, e.g. "paxos.agreement".
	Code string `json:"code"`
	// Seq is the sequence number of the event that completed the breach.
	Seq int64 `json:"seq"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
}

func (v Violation) String() string { return fmt.Sprintf("%s at #%d: %s", v.Code, v.Seq, v.Detail) }

// Checker asserts safety properties over a committed trace. Implementations
// are pure functions of the event sequence — they can replay a trace from a
// failed chaos run offline. To add a checker for a new protocol: define the
// protocol's events in protocols.go, have both implementations emit them
// through the Recorder, and enumerate here what must never happen (see
// docs/PROTOCOLS.md).
type Checker interface {
	Check(events []Event) []Violation
}

// PaxosChecker asserts single-decree Paxos safety:
//
//   - agreement: every decide event carries the same value;
//   - ballot monotonicity: per acceptor, the ballots of promise and accept
//     events never regress (an accept below the acceptor's last promise
//     means the acceptor forgot a promise — the classic broken-acceptor
//     bug this suite must catch);
//   - decision support: a decided (ballot, value) must have been accepted
//     with that ballot by at least one acceptor earlier in the trace.
type PaxosChecker struct{}

func (PaxosChecker) Check(events []Event) []Violation {
	var out []Violation
	promised := map[int]int64{} // acceptor -> highest ballot promised/accepted
	accepted := map[[2]int64]bool{}
	var decidedVal string
	var haveDecision bool
	for _, e := range events {
		switch e.Kind {
		case EvPromise:
			if e.Ballot < promised[e.Who] {
				out = append(out, Violation{
					Code: "paxos.monotonic", Seq: e.Seq,
					Detail: fmt.Sprintf("acceptor %d promised ballot %d after %d", e.Who, e.Ballot, promised[e.Who]),
				})
			}
			if e.Ballot > promised[e.Who] {
				promised[e.Who] = e.Ballot
			}
		case EvAccept:
			if e.Ballot < promised[e.Who] {
				out = append(out, Violation{
					Code: "paxos.monotonic", Seq: e.Seq,
					Detail: fmt.Sprintf("acceptor %d accepted ballot %d after promising %d (forgot its promise)",
						e.Who, e.Ballot, promised[e.Who]),
				})
			}
			if e.Ballot > promised[e.Who] {
				promised[e.Who] = e.Ballot
			}
			accepted[[2]int64{e.Ballot, hashVal(e.Val)}] = true
		case EvDecide:
			if !haveDecision {
				decidedVal, haveDecision = e.Val, true
			} else if e.Val != decidedVal {
				out = append(out, Violation{
					Code: "paxos.agreement", Seq: e.Seq,
					Detail: fmt.Sprintf("decided %q after earlier decision %q", e.Val, decidedVal),
				})
			}
			if !accepted[[2]int64{e.Ballot, hashVal(e.Val)}] {
				out = append(out, Violation{
					Code: "paxos.unsupported", Seq: e.Seq,
					Detail: fmt.Sprintf("decision (ballot %d, %q) has no supporting accept", e.Ballot, e.Val),
				})
			}
		}
	}
	return out
}

// hashVal folds a value string into an int64 key (FNV-1a) so accepted
// (ballot, value) pairs can live in a comparable map key.
func hashVal(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// TPCChecker asserts two-phase-commit safety for a transaction with
// Participants voters:
//
//   - single decision: the coordinator decides at most one way;
//   - no mixed outcome: every participant applies the same decision, and
//     only a decision the coordinator actually took;
//   - vote validity: commit requires a unanimous yes from all Participants
//     (recorded vote events), and any recorded no-vote forbids commit;
//   - durability: a decision, once applied anywhere, is never contradicted
//     later in the trace (subsumed by the two checks above, but reported
//     under its own code when an apply precedes a conflicting apply).
type TPCChecker struct {
	Participants int
}

func (c TPCChecker) Check(events []Event) []Violation {
	var out []Violation
	votes := map[int]string{}
	var decided string
	var haveDecision bool
	applied := map[int]string{}
	for _, e := range events {
		switch e.Kind {
		case EvVote:
			votes[e.Who] = e.Val
		case EvDecide:
			if haveDecision && e.Val != decided {
				out = append(out, Violation{
					Code: "2pc.single-decision", Seq: e.Seq,
					Detail: fmt.Sprintf("coordinator decided %q after %q", e.Val, decided),
				})
				continue
			}
			decided, haveDecision = e.Val, true
			if e.Val == "1" {
				if len(votes) < c.Participants {
					out = append(out, Violation{
						Code: "2pc.premature-commit", Seq: e.Seq,
						Detail: fmt.Sprintf("commit with %d of %d votes recorded", len(votes), c.Participants),
					})
				}
				for who, v := range votes {
					if v != "1" {
						out = append(out, Violation{
							Code: "2pc.vote-override", Seq: e.Seq,
							Detail: fmt.Sprintf("commit despite participant %d voting no", who),
						})
					}
				}
			}
		case EvApply:
			if !haveDecision {
				out = append(out, Violation{
					Code: "2pc.undirected-apply", Seq: e.Seq,
					Detail: fmt.Sprintf("participant %d applied %q before any coordinator decision", e.Who, e.Val),
				})
			} else if e.Val != decided {
				out = append(out, Violation{
					Code: "2pc.mixed", Seq: e.Seq,
					Detail: fmt.Sprintf("participant %d applied %q but coordinator decided %q", e.Who, e.Val, decided),
				})
			}
			if prev, ok := applied[e.Who]; ok && prev != e.Val {
				out = append(out, Violation{
					Code: "2pc.durability", Seq: e.Seq,
					Detail: fmt.Sprintf("participant %d applied %q after applying %q", e.Who, e.Val, prev),
				})
			}
			applied[e.Who] = e.Val
			for who, other := range applied {
				if other != e.Val {
					out = append(out, Violation{
						Code: "2pc.mixed", Seq: e.Seq,
						Detail: fmt.Sprintf("participant %d applied %q while participant %d applied %q",
							e.Who, e.Val, who, other),
					})
					break
				}
			}
		}
	}
	return out
}

// TermChecker asserts termination-detection safety:
//
//   - no false positive: after the first detect announcement, no base
//     computation activity (send/recv) may appear in the trace;
//   - consistent announcement: the announced total equals the number of
//     send events and the number of recv events committed before it (the
//     base computation is fully message-balanced at detection time).
type TermChecker struct{}

func (TermChecker) Check(events []Event) []Violation {
	var out []Violation
	var sends, recvs int64
	var detected bool
	var detectedAt int64
	for _, e := range events {
		switch e.Kind {
		case EvSend, EvRecv:
			if detected {
				out = append(out, Violation{
					Code: "term.false-positive", Seq: e.Seq,
					Detail: fmt.Sprintf("base %s at node %d after detection at #%d", e.Kind, e.Who, detectedAt),
				})
			}
			if e.Kind == EvSend {
				sends++
			} else {
				recvs++
			}
		case EvDetect:
			if !detected {
				detected, detectedAt = true, e.Seq
				if e.Ballot != sends || e.Ballot != recvs {
					out = append(out, Violation{
						Code: "term.inconsistent", Seq: e.Seq,
						Detail: fmt.Sprintf("announced %d messages but trace has %d sends / %d recvs",
							e.Ballot, sends, recvs),
					})
				}
			}
		}
	}
	return out
}
