// Package transport provides the TCP engine: daemons exchange Messengers
// over real sockets using the framed binary wire format, exactly as the
// paper's daemons exchange Messengers over a LAN.
//
// The engine drives the same daemon logic as the in-process channel engine;
// what changes is that every inter-daemon message is actually encoded,
// framed, written to a socket, read back, and decoded — so the full wire
// path (vm snapshots, program hashes, link identities, GVT control
// messages) is exercised for real. Daemons listen on per-daemon TCP
// addresses (loopback by default) and dial peers lazily.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"messengers/internal/core"
	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/wire"
)

// Frame constants now live in internal/wire (the layout is shared with the
// pooled encoder); these aliases keep the transport's vocabulary.
const (
	frameMagic = wire.FrameMagic
	maxFrame   = wire.MaxFrame
)

// WriteFrame writes one length-prefixed message frame. The message send
// path encodes header and payload into a single pooled buffer instead (see
// Send); this helper remains for hello frames and out-of-band uses.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [wire.FrameHeaderLen]byte
	binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint16(hdr[2:], wire.FrameVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame (or by Msg.EncodeFrame).
// The returned payload is a fresh slice the caller owns — decoded messages
// may alias it, so it is never pooled.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [wire.FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint16(hdr[0:]) != frameMagic {
		return nil, fmt.Errorf("transport: bad frame magic %#x", hdr[:2])
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: read frame body: %w", err)
	}
	return payload, nil
}

// TCPEngine is a core.Engine whose daemon-to-daemon messages travel over
// real TCP connections. Each daemon has a listener; connections to peers
// are dialed on first use and kept open.
type TCPEngine struct {
	addrs   []string
	daemons []*core.Daemon

	executors []*executor
	listeners []net.Listener

	start time.Time
	tr    *obs.Tracer

	mu    sync.Mutex
	conns map[connKey]*peerConn
	errs  []error

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

type connKey struct{ from, to int }

type peerConn struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// executor is a daemon's serial work queue.
type executor struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []func()
	closed bool
}

func newExecutor() *executor {
	e := &executor{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

func (e *executor) put(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.items = append(e.items, fn)
	e.cond.Signal()
}

func (e *executor) run() {
	for {
		e.mu.Lock()
		for len(e.items) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.items) == 0 {
			e.mu.Unlock()
			return
		}
		fn := e.items[0]
		e.items = e.items[1:]
		e.mu.Unlock()
		fn()
	}
}

func (e *executor) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// NewTCPEngine starts listeners for n daemons on the given addresses (one
// per daemon; use "127.0.0.1:0" entries for ephemeral ports).
func NewTCPEngine(addrs []string) (*TCPEngine, error) {
	e := &TCPEngine{
		addrs:     make([]string, len(addrs)),
		conns:     map[connKey]*peerConn{},
		closed:    make(chan struct{}),
		executors: make([]*executor, len(addrs)),
		listeners: make([]net.Listener, len(addrs)),
		start:     time.Now(),
	}
	for i, addr := range addrs {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("transport: daemon %d listen %s: %w", i, addr, err)
		}
		e.listeners[i] = l
		e.addrs[i] = l.Addr().String()
		e.executors[i] = newExecutor()
	}
	for i := range addrs {
		i := i
		e.wg.Add(2)
		go func() {
			defer e.wg.Done()
			e.executors[i].run()
		}()
		go func() {
			defer e.wg.Done()
			e.acceptLoop(i)
		}()
	}
	return e, nil
}

// Addrs returns the bound listener addresses, indexed by daemon ID.
func (e *TCPEngine) Addrs() []string {
	out := make([]string, len(e.addrs))
	copy(out, e.addrs)
	return out
}

// Bind implements the engine binder.
func (e *TCPEngine) Bind(daemons []*core.Daemon) { e.daemons = daemons }

// SetTracer attaches a tracer: every frame send and receive emits a "net"
// event on the involved daemon's track. Call before any traffic flows.
func (e *TCPEngine) SetTracer(t *obs.Tracer) { e.tr = t }

// Now implements core.Engine with monotonic wall time since engine start.
func (e *TCPEngine) Now() sim.Time { return sim.Time(time.Since(e.start)) }

// NumDaemons implements core.Engine.
func (e *TCPEngine) NumDaemons() int { return len(e.addrs) }

// Exec implements core.Engine (costs are ignored: real work, real time).
func (e *TCPEngine) Exec(d int, _ sim.Time, fn func()) { e.executors[d].put(fn) }

// Model implements core.Engine.
func (e *TCPEngine) Model() *lan.CostModel { return nil }

// HostSpec implements core.Engine.
func (e *TCPEngine) HostSpec(int) lan.HostSpec { return lan.HostSpec{} }

// SetTimer implements core.Engine with wall-clock timers.
func (e *TCPEngine) SetTimer(d int, delay sim.Time, fn func()) {
	time.AfterFunc(time.Duration(delay), func() {
		select {
		case <-e.closed:
		default:
			e.executors[d].put(fn)
		}
	})
}

// Send implements core.Engine: encode header and payload into one pooled
// frame (a Messenger carried by XferVM is serialized here, in a single
// pass, with no intermediate snapshot slice) and ship it over the (cached)
// connection from src to dst.
func (e *TCPEngine) Send(src, dst int, msg *core.Msg) {
	enc := wire.NewEncoder()
	defer enc.Release()
	if err := msg.EncodeFrame(enc); err != nil {
		e.recordError(fmt.Errorf("transport: encode %v message to daemon %d: %w", msg.Kind, dst, err))
		return
	}
	if e.tr != nil {
		e.tr.Instant(src, "net", "net.send",
			obs.I("to", int64(dst)), obs.I("bytes", int64(enc.Len()-wire.FrameHeaderLen)))
	}
	pc, err := e.conn(src, dst)
	if err != nil {
		e.recordError(err)
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	// bufio either copies into its buffer or writes straight through before
	// returning, so the pooled frame can be recycled after the flush.
	if _, err := pc.w.Write(enc.Bytes()); err != nil {
		e.recordError(fmt.Errorf("transport: write frame: %w", err))
		return
	}
	if err := pc.w.Flush(); err != nil {
		e.recordError(err)
	}
}

// conn returns the cached connection src->dst, dialing it if needed. A
// dedicated connection per ordered pair preserves FIFO delivery.
func (e *TCPEngine) conn(src, dst int) (*peerConn, error) {
	key := connKey{from: src, to: dst}
	e.mu.Lock()
	defer e.mu.Unlock()
	if pc, ok := e.conns[key]; ok {
		return pc, nil
	}
	c, err := net.DialTimeout("tcp", e.addrs[dst], 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial daemon %d: %w", dst, err)
	}
	// Identify the destination daemon on this listener (one listener per
	// daemon, so the hello frame only carries the sender for diagnostics).
	if err := WriteFrame(c, []byte{byte(src)}); err != nil {
		c.Close()
		return nil, err
	}
	pc := &peerConn{c: c, w: bufio.NewWriter(c)}
	e.conns[key] = pc
	return pc, nil
}

// acceptLoop receives frames for daemon d and dispatches them on its
// executor.
func (e *TCPEngine) acceptLoop(d int) {
	for {
		c, err := e.listeners[d].Accept()
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
				e.recordError(fmt.Errorf("transport: daemon %d accept: %w", d, err))
				return
			}
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer c.Close()
			r := bufio.NewReader(c)
			if _, err := ReadFrame(r); err != nil {
				return // bad hello
			}
			for {
				payload, err := ReadFrame(r)
				if err != nil {
					return // peer closed
				}
				msg, err := core.DecodeMsg(payload)
				if err != nil {
					e.recordError(fmt.Errorf("transport: daemon %d: %w", d, err))
					return
				}
				if e.tr != nil {
					e.tr.Instant(d, "net", "net.recv",
						obs.I("from", int64(msg.From)), obs.I("bytes", int64(len(payload))))
				}
				e.executors[d].put(func() { e.daemons[d].HandleMsg(msg) })
			}
		}()
	}
}

func (e *TCPEngine) recordError(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.errs = append(e.errs, err)
}

// Errors returns transport-level errors observed so far.
func (e *TCPEngine) Errors() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]error, len(e.errs))
	copy(out, e.errs)
	return out
}

// Close shuts down listeners, connections, and executors.
func (e *TCPEngine) Close() {
	e.closeMu.Do(func() {
		close(e.closed)
		for _, l := range e.listeners {
			if l != nil {
				l.Close()
			}
		}
		e.mu.Lock()
		for _, pc := range e.conns {
			pc.c.Close()
		}
		e.mu.Unlock()
		for _, ex := range e.executors {
			if ex != nil {
				ex.close()
			}
		}
		e.wg.Wait()
	})
}
