package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// The binary wire format is what daemons ship between hosts when a Messenger
// hops: little-endian, tag byte followed by the payload. It is also used by
// the PVM baseline's pack/unpack buffers so both systems move the same bytes.

// maxWireLen bounds a single decoded string/bytes/array/matrix so corrupt or
// hostile frames cannot trigger huge allocations.
const maxWireLen = 1 << 30

// Append encodes v onto buf and returns the extended slice.
func Append(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNil:
	case KindInt:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.i))
	case KindNum:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.n))
	case KindStr:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.s)))
		buf = append(buf, v.s...)
	case KindBytes:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.bytes)))
		buf = append(buf, v.bytes...)
	case KindArr:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.arr)))
		for _, e := range v.arr {
			buf = Append(buf, e)
		}
	case KindMat:
		m := v.mat
		if m == nil {
			m = &Mat{}
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
		for _, f := range m.Data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	}
	return buf
}

// Decode reads one value from buf, returning the value and the number of
// bytes consumed.
func Decode(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Nil(), 0, fmt.Errorf("value: decode: empty buffer")
	}
	k := Kind(buf[0])
	p := 1
	switch k {
	case KindNil:
		return Nil(), p, nil
	case KindInt:
		if len(buf) < p+8 {
			return Nil(), 0, fmt.Errorf("value: decode int: short buffer")
		}
		return Int(int64(binary.LittleEndian.Uint64(buf[p:]))), p + 8, nil
	case KindNum:
		if len(buf) < p+8 {
			return Nil(), 0, fmt.Errorf("value: decode num: short buffer")
		}
		return Num(math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))), p + 8, nil
	case KindStr, KindBytes:
		if len(buf) < p+4 {
			return Nil(), 0, fmt.Errorf("value: decode %v: short buffer", k)
		}
		n := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		if n > maxWireLen || len(buf) < p+n {
			return Nil(), 0, fmt.Errorf("value: decode %v: length %d exceeds buffer", k, n)
		}
		if k == KindStr {
			return Str(string(buf[p : p+n])), p + n, nil
		}
		b := make([]byte, n)
		copy(b, buf[p:p+n])
		return Bytes(b), p + n, nil
	case KindArr:
		if len(buf) < p+4 {
			return Nil(), 0, fmt.Errorf("value: decode array: short buffer")
		}
		n := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		// Every element takes at least one byte; reject counts the buffer
		// cannot possibly hold before allocating.
		if n > maxWireLen || n > len(buf)-p {
			return Nil(), 0, fmt.Errorf("value: decode array: length %d exceeds buffer", n)
		}
		a := make([]Value, n)
		for i := 0; i < n; i++ {
			e, c, err := Decode(buf[p:])
			if err != nil {
				return Nil(), 0, fmt.Errorf("value: decode array elem %d: %w", i, err)
			}
			a[i] = e
			p += c
		}
		return Arr(a), p, nil
	case KindMat:
		if len(buf) < p+8 {
			return Nil(), 0, fmt.Errorf("value: decode matrix: short buffer")
		}
		r := int(binary.LittleEndian.Uint32(buf[p:]))
		c := int(binary.LittleEndian.Uint32(buf[p+4:]))
		p += 8
		if r < 0 || c < 0 || r*c > maxWireLen/8 || len(buf) < p+8*r*c {
			return Nil(), 0, fmt.Errorf("value: decode matrix: %dx%d exceeds buffer", r, c)
		}
		m := NewMat(r, c)
		for i := range m.Data {
			m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
			p += 8
		}
		return Matrix(m), p, nil
	default:
		return Nil(), 0, fmt.Errorf("value: decode: unknown kind tag %d", buf[0])
	}
}

// AppendEnv encodes a variable map in sorted key order (deterministic).
func AppendEnv(buf []byte, env map[string]Value) []byte {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = Append(buf, env[k])
	}
	return buf
}

// DecodeEnv reads a variable map encoded by AppendEnv.
func DecodeEnv(buf []byte) (map[string]Value, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("value: decode env: short buffer")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	p := 4
	// Each entry takes at least five bytes (key length + value tag).
	if n > maxWireLen || n > (len(buf)-p)/5 {
		return nil, 0, fmt.Errorf("value: decode env: %d entries exceed buffer", n)
	}
	env := make(map[string]Value, n)
	for i := 0; i < n; i++ {
		if len(buf) < p+4 {
			return nil, 0, fmt.Errorf("value: decode env key %d: short buffer", i)
		}
		kl := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		if kl > maxWireLen || len(buf) < p+kl {
			return nil, 0, fmt.Errorf("value: decode env key %d: length %d exceeds buffer", i, kl)
		}
		key := string(buf[p : p+kl])
		p += kl
		v, c, err := Decode(buf[p:])
		if err != nil {
			return nil, 0, fmt.Errorf("value: decode env %q: %w", key, err)
		}
		env[key] = v
		p += c
	}
	return env, p, nil
}

// EnvWireSize estimates the encoded size of a variable map.
func EnvWireSize(env map[string]Value) int {
	n := 4
	for k, v := range env {
		n += 4 + len(k) + v.WireSize()
	}
	return n
}

// CloneEnv deep-copies a variable map.
func CloneEnv(env map[string]Value) map[string]Value {
	out := make(map[string]Value, len(env))
	for k, v := range env {
		out[k] = v.Clone()
	}
	return out
}
