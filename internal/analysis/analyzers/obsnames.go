package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"messengers/internal/analysis"
)

// metricNameRE: dot-namespaced, lowercase — "hops.remote", "gvt.rounds".
var metricNameRE = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)+$`)

// metricNamespaces is the closed set of first segments a metric name may
// use. One namespace per subsystem keeps dashboards greppable; adding a
// subsystem means adding its namespace here (and documenting it in
// docs/OBSERVABILITY.md), not minting ad-hoc prefixes.
var metricNamespaces = map[string]bool{
	"bus":       true, // simulated Ethernet segment
	"daemon":    true, // daemon executor activity
	"faults":    true, // injected fault decisions
	"gvt":       true, // global virtual time protocol
	"host":      true, // per-host busy accounting (dynamic, suppressed)
	"hop":       true, // hop payload accounting
	"hops":      true, // navigation counts
	"logical":   true, // logical-network store
	"mandel":    true, // mandelbrot example app
	"msgr":      true, // Messenger lifecycle
	"net":       true, // inter-daemon traffic
	"proto":     true, // distributed-protocol chaos suite
	"pvm":       true, // message-passing comparison engine
	"serve":     true, // multi-tenant admission service
	"transport": true, // TCP transport internals
	"vm":        true, // MSL virtual machine
	"wire":      true, // serialization layer
}

// traceNameRE: trace categories and names; a single word is fine here
// ("hop", "msgr"), but the alphabet is the same.
var traceNameRE = regexp.MustCompile(`^[a-z0-9._]+$`)

// ObsNames keeps the observability namespace coherent: every metric or
// trace name passed to obs must be a string literal (so the namespace is
// greppable and the docs stay truthful), must match the lowercase
// dot-separated grammar, and a metric name must not be registered under
// two different kinds (a "hops.remote" counter in one file and gauge in
// another is almost certainly a bug). Dynamic names — the one legitimate
// case is per-host series like host.N.busy_ns — are suppressed with
// //lint:obsname.
var ObsNames = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "obs metric/trace names must be literal, lowercase, dot-namespaced, and kind-unique",
	Run:  runObsNames,
}

// obsNameKinds records, across the whole run, which kind each metric name
// was first registered under (stored in Pass.Shared).
type obsNameKinds map[string]string

func runObsNames(pass *analysis.Pass) error {
	kindsAny, ok := pass.Shared["obsnames"]
	if !ok {
		kindsAny = obsNameKinds{}
		pass.Shared["obsnames"] = kindsAny
	}
	kinds := kindsAny.(obsNameKinds)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := obsReceiver(pass, sel.X)
			switch {
			case recv == "Metrics":
				switch sel.Sel.Name {
				case "Counter", "Gauge", "Histogram":
					checkMetricName(pass, kinds, call, sel.Sel.Name)
				}
			case recv == "Tracer":
				switch sel.Sel.Name {
				case "Instant", "Span", "Counter":
					// (track, cat, name, ...)
					checkTraceArg(pass, call, 1, "category")
					checkTraceArg(pass, call, 2, "name")
				}
			}
			return true
		})
	}
	return nil
}

func checkMetricName(pass *analysis.Pass, kinds obsNameKinds, call *ast.CallExpr, kind string) {
	if len(call.Args) < 1 {
		return
	}
	name, lit, ok := literalString(call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(), "obsname",
			"metric name passed to Metrics.%s must be a string literal (dynamic names fragment the namespace)", kind)
		return
	}
	if !metricNameRE.MatchString(name) {
		pass.Reportf(lit.Pos(), "obsname",
			"metric name %q must be lowercase dot-namespaced (%s)", name, metricNameRE)
		return
	}
	if ns := name[:strings.IndexByte(name, '.')]; !metricNamespaces[ns] {
		pass.Reportf(lit.Pos(), "obsname",
			"metric %q uses unknown namespace %q (register it in metricNamespaces)", name, ns)
		return
	}
	if prev, ok := kinds[name]; ok && prev != kind {
		pass.Reportf(lit.Pos(), "obsname",
			"metric %q registered as both %s and %s", name, prev, kind)
		return
	}
	kinds[name] = kind
}

func checkTraceArg(pass *analysis.Pass, call *ast.CallExpr, idx int, what string) {
	if len(call.Args) <= idx {
		return
	}
	arg := call.Args[idx]
	name, lit, ok := literalString(arg)
	if !ok {
		// Trace names may be computed from a literal-per-call-site helper
		// (msgrID); only flag direct dynamic construction like Sprintf.
		if isSprintfCall(pass, arg) {
			pass.Reportf(arg.Pos(), "obsname",
				"trace %s built with Sprintf; use a literal or a typed helper", what)
		}
		return
	}
	if !traceNameRE.MatchString(name) {
		pass.Reportf(lit.Pos(), "obsname",
			"trace %s %q must match %s", what, name, traceNameRE)
	}
}

// literalString unwraps a string literal (possibly parenthesized).
func literalString(e ast.Expr) (string, *ast.BasicLit, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", nil, false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", nil, false
	}
	return s, lit, true
}

func isSprintfCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := pass.CalleeObj(call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && obj.Name() == "Sprintf"
}

// obsReceiver returns "Metrics" or "Tracer" when e's type is (a pointer
// to) that obs type, else "".
func obsReceiver(pass *analysis.Pass, e ast.Expr) string {
	t := pass.TypeOf(e)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "messengers/internal/obs" {
		return ""
	}
	switch obj.Name() {
	case "Metrics", "Tracer":
		return obj.Name()
	}
	return ""
}
