package core

import (
	"strings"
	"testing"
)

// TestInjectInheritsVirtualTime: a Messenger injected at virtual time t by
// another Messenger starts at t — its schedules cannot land in the global
// past.
func TestInjectInheritsVirtualTime(t *testing.T) {
	k, sys := simSystem(t, 2)
	register(t, sys, "late_child", `
		print("child starts at", $time);
		sched_dlt(0.25);
		print("child woke at", $time);
	`)
	register(t, sys, "parent", `
		sched_abs(3.0);
		inject("late_child");
	`)
	register(t, sys, "bystander", `
		sched_abs(3.5);
		print("bystander at", $time);
	`)
	if err := sys.Inject(0, "parent", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(1, "bystander", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	out := strings.Join(sys.Output(), " | ")
	want := "child starts at 3.0 | child woke at 3.25 | bystander at 3.5"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}
