// Package faults provides deterministic, seedable fault injection for both
// engines: a Plan describes message-level faults (drop, duplicate, corrupt,
// latency spikes), network partitions, and daemon crashes/restarts; an
// Injector turns the plan into per-message verdicts using a splitmix64
// stream, so the same seed and plan always inject the same faults at the
// same points of a deterministic run.
//
// The injector plugs into the simulated cluster through lan.FaultHook (see
// Injector.LanHook) and into the TCP engine through transport's SetInjector;
// crashes and restarts are armed by Schedule against either engine's clock.
// Every injected fault is counted (faults.injected.*) and traced so chaos
// runs stay diagnosable.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/sim"
)

// Crash schedules one daemon death. Times are nanoseconds from run start —
// simulated time on the simulated engine, wall time on real engines.
type Crash struct {
	Daemon int   `json:"daemon"`
	At     int64 `json:"at"`
	// RestartAfter, when positive, revives the daemon that long after the
	// crash (a fresh, empty daemon: the logical nodes and Messengers it
	// hosted are gone).
	RestartAfter int64 `json:"restart_after,omitempty"`
}

// Partition isolates Group from all other daemons during [At, Heal):
// messages crossing the cut are dropped. Heal of zero never heals.
type Partition struct {
	At    int64 `json:"at"`
	Heal  int64 `json:"heal,omitempty"`
	Group []int `json:"group"`
}

// Plan is one deterministic fault scenario. Probabilities are per message;
// durations are nanoseconds.
type Plan struct {
	// Seed drives the fault decision stream. The same seed and plan on the
	// same deterministic run inject byte-identically.
	Seed uint64 `json:"seed"`
	// Drop is the probability a message is silently lost.
	Drop float64 `json:"drop,omitempty"`
	// Dup is the probability a message is delivered twice.
	Dup float64 `json:"dup,omitempty"`
	// Corrupt is the probability a message is damaged in transit. On the
	// modeled bus this is a CRC-rejected frame (occupies the wire, never
	// delivered); on TCP the connection is torn down as a receiver would on
	// a bad frame.
	Corrupt float64 `json:"corrupt,omitempty"`
	// DelayProb is the probability a message suffers an extra latency spike
	// of Delay nanoseconds.
	DelayProb float64 `json:"delay_prob,omitempty"`
	Delay     int64   `json:"delay,omitempty"`
	// DetectDelay is the failure-detection lag: how long after a crash (or
	// restart) the surviving daemons are notified when Schedule arms
	// explicit notices. Zero means a default of 10ms.
	DetectDelay int64       `json:"detect_delay,omitempty"`
	Crashes     []Crash     `json:"crashes,omitempty"`
	Partitions  []Partition `json:"partitions,omitempty"`
}

// DefaultDetectDelay is the failure-detection lag used when the plan leaves
// DetectDelay zero.
const DefaultDetectDelay = int64(10 * sim.Millisecond)

func (p *Plan) detectDelay() int64 {
	if p.DetectDelay > 0 {
		return p.DetectDelay
	}
	return DefaultDetectDelay
}

// Validate checks probabilities and crash targets against a daemon count.
func (p *Plan) Validate(daemons int) error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"dup", p.Dup}, {"corrupt", p.Corrupt}, {"delay_prob", p.DelayProb}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.DelayProb > 0 && p.Delay <= 0 {
		return fmt.Errorf("faults: delay_prob %v with no delay duration", p.DelayProb)
	}
	for _, c := range p.Crashes {
		if c.Daemon < 0 || c.Daemon >= daemons {
			return fmt.Errorf("faults: crash of unknown daemon %d (have %d)", c.Daemon, daemons)
		}
		if c.At < 0 || c.RestartAfter < 0 {
			return fmt.Errorf("faults: crash of daemon %d with negative time", c.Daemon)
		}
	}
	for _, pt := range p.Partitions {
		if len(pt.Group) == 0 {
			return fmt.Errorf("faults: partition at %d with empty group", pt.At)
		}
		for _, d := range pt.Group {
			if d < 0 || d >= daemons {
				return fmt.Errorf("faults: partition references unknown daemon %d", d)
			}
		}
	}
	return nil
}

// Load reads a JSON-encoded Plan from path (the cmd/mchaos -plan format;
// see docs/FAULTS.md).
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	p := &Plan{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("faults: parse %s: %w", path, err)
	}
	return p, nil
}

// Verdict is the injector's decision for one message.
type Verdict struct {
	Drop    bool
	Dup     bool
	Corrupt bool
	// Delay is extra latency in nanoseconds (0 = none).
	Delay int64
}

// Injector turns a Plan into per-message verdicts. It is safe for
// concurrent use (the TCP engine consults it from many goroutines); on the
// single-threaded simulated engine, calls happen in deterministic event
// order, so the decision stream is reproducible.
type Injector struct {
	plan *Plan
	tr   *obs.Tracer

	mu    sync.Mutex
	state uint64

	drops, dups, corrupts, delays, partitioned *obs.Counter
}

// NewInjector builds an injector for the plan. Either observability
// argument may be nil.
func NewInjector(p *Plan, m *obs.Metrics, tr *obs.Tracer) *Injector {
	return &Injector{
		plan:        p,
		tr:          tr,
		state:       p.Seed,
		drops:       m.Counter("faults.injected.drop"),
		dups:        m.Counter("faults.injected.dup"),
		corrupts:    m.Counter("faults.injected.corrupt"),
		delays:      m.Counter("faults.injected.delay"),
		partitioned: m.Counter("faults.injected.partition"),
	}
}

// rand returns the next [0,1) draw of the splitmix64 stream. Callers hold
// in.mu.
func (in *Injector) rand() float64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func inGroup(group []int, d int) bool {
	for _, g := range group {
		if g == d {
			return true
		}
	}
	return false
}

// Decide returns the verdict for one message from src to dst of the given
// wire size at time now (nanoseconds from run start). Partition checks
// consume no randomness; the probabilistic faults always consume exactly
// four draws, so the decision stream depends only on the message sequence.
func (in *Injector) Decide(now int64, src, dst, size int) Verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, pt := range in.plan.Partitions {
		if now < pt.At || (pt.Heal > 0 && now >= pt.Heal) {
			continue
		}
		if inGroup(pt.Group, src) != inGroup(pt.Group, dst) {
			in.partitioned.Inc()
			if in.tr != nil {
				in.tr.Instant(src, "fault", "fault.partition",
					obs.I("to", int64(dst)), obs.I("bytes", int64(size)))
			}
			return Verdict{Drop: true}
		}
	}
	v := Verdict{
		Drop:    in.rand() < in.plan.Drop,
		Corrupt: in.rand() < in.plan.Corrupt,
		Dup:     in.rand() < in.plan.Dup,
	}
	if in.rand() < in.plan.DelayProb {
		v.Delay = in.plan.Delay
	}
	switch {
	case v.Drop:
		v.Corrupt, v.Dup, v.Delay = false, false, 0
		in.drops.Inc()
		if in.tr != nil {
			in.tr.Instant(src, "fault", "fault.drop", obs.I("to", int64(dst)), obs.I("bytes", int64(size)))
		}
	case v.Corrupt:
		v.Dup, v.Delay = false, 0
		in.corrupts.Inc()
		if in.tr != nil {
			in.tr.Instant(src, "fault", "fault.corrupt", obs.I("to", int64(dst)), obs.I("bytes", int64(size)))
		}
	default:
		if v.Dup {
			in.dups.Inc()
			if in.tr != nil {
				in.tr.Instant(src, "fault", "fault.dup", obs.I("to", int64(dst)))
			}
		}
		if v.Delay > 0 {
			in.delays.Inc()
			if in.tr != nil {
				in.tr.Instant(src, "fault", "fault.delay", obs.I("to", int64(dst)), obs.I("ns", v.Delay))
			}
		}
	}
	return v
}

// LanHook adapts the injector to the simulated cluster's fault hook.
// Corruption has no byte-level representation on the modeled bus: a
// corrupted frame is one the receiver's CRC rejects, i.e. a drop that still
// occupies the wire.
func (in *Injector) LanHook(k *sim.Kernel) lan.FaultHook {
	return func(src, dst, size int) lan.FaultVerdict {
		v := in.Decide(int64(k.Now()), src, dst, size)
		return lan.FaultVerdict{Drop: v.Drop || v.Corrupt, Dup: v.Dup, Delay: sim.Time(v.Delay)}
	}
}
