package messengers

// One benchmark per table and figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md §3), plus the A1-A4 ablations. Each
// benchmark runs the corresponding experiment on the simulated cluster and
// reports the headline quantity of that figure as custom metrics
// (simulated seconds, speedups, crossover block sizes), so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's results in one pass. Benchmarks use trimmed
// sweep axes to stay fast; `go run ./cmd/figures` runs the full axes and
// writes every series to experiments/.

import (
	"testing"

	"messengers/internal/bench"
	"messengers/internal/bytecode"
	"messengers/internal/compile"
	"messengers/internal/lan"
	"messengers/internal/mandel"
	"messengers/internal/matmul"
	"messengers/internal/value"
	"messengers/internal/vm"
)

func compileBench(name, src string) (*bytecode.Program, error) {
	return compile.Compile(name, src)
}

// discardHost is a vm.Host with no node context, for microbenchmarks.
type discardHost struct{}

func (discardHost) NodeVar(string) value.Value        { return value.Nil() }
func (discardHost) SetNodeVar(string, value.Value)    {}
func (discardHost) NetVar(string) (value.Value, bool) { return value.Nil(), true }
func (discardHost) Print(string)                      {}

func benchMandelFigure(b *testing.B, sweep bench.MandelSweep) {
	cm := lan.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunMandelFigure(cm, sweep)
		if err != nil {
			b.Fatal(err)
		}
		last := len(sweep.Procs) - 1
		lastGrid := len(sweep.Grids) - 1
		b.ReportMetric(fig.Seq.Seconds(), "seq-sim-s")
		b.ReportMetric(fig.Msgr[0][last].Seconds(), "msgr32-sim-s")
		b.ReportMetric(fig.PVM[0][last].Seconds(), "pvm32-sim-s")
		b.ReportMetric(fig.MsgrOverPVM(0, last), "M/PVM@32-coarse")
		b.ReportMetric(fig.SpeedupOverSeq(lastGrid, last), "speedup@32-fine")
	}
}

// BenchmarkFig4Mandel320 regenerates Figure 4 (Mandelbrot 320x320).
func BenchmarkFig4Mandel320(b *testing.B) {
	benchMandelFigure(b, bench.Fig4Sweep(true))
}

// BenchmarkFig5Mandel640 regenerates Figure 5 (Mandelbrot 640x640).
func BenchmarkFig5Mandel640(b *testing.B) {
	benchMandelFigure(b, bench.Fig5Sweep(true))
}

// BenchmarkFig6Mandel1280 regenerates Figure 6 (Mandelbrot 1280x1280).
func BenchmarkFig6Mandel1280(b *testing.B) {
	benchMandelFigure(b, bench.Fig6Sweep(true))
}

// BenchmarkFig7MandelBest regenerates Figure 7: the case most favorable to
// MESSENGERS (1280x1280, coarsest 8x8 grid).
func BenchmarkFig7MandelBest(b *testing.B) {
	cm := lan.DefaultCostModel()
	sweep := bench.Fig7Sweep(true)
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunMandelFigure(cm, sweep)
		if err != nil {
			b.Fatal(err)
		}
		last := len(sweep.Procs) - 1
		b.ReportMetric(fig.Msgr[0][last].Seconds(), "msgr32-sim-s")
		b.ReportMetric(fig.PVM[0][last].Seconds(), "pvm32-sim-s")
		b.ReportMetric(fig.MsgrOverPVM(0, last), "M/PVM@32")
		b.ReportMetric(fig.SpeedupOverSeq(0, last), "speedup@32")
	}
}

func benchMatmulFigure(b *testing.B, sweep bench.MatmulSweep, speedupBlock int) {
	cm := lan.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunMatmulFigure(cm, sweep)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(fig.Crossover()), "crossover-block")
		if ob, on, ok := fig.SpeedupAt(speedupBlock); ok {
			b.ReportMetric(ob, "speedup-vs-block")
			b.ReportMetric(on, "speedup-vs-naive")
		}
	}
}

// BenchmarkFig12aMatmul2x2 regenerates Figure 12(a): block matrix multiply
// on the 2x2 grid of 110 MHz workstations.
func BenchmarkFig12aMatmul2x2(b *testing.B) {
	benchMatmulFigure(b, bench.Fig12aSweep(true), 500)
}

// BenchmarkFig12bMatmul3x3 regenerates Figure 12(b): the 3x3 grid of
// 170 MHz workstations on the fast segment.
func BenchmarkFig12bMatmul3x3(b *testing.B) {
	benchMatmulFigure(b, bench.Fig12bSweep(true), 500)
}

// BenchmarkT1SeqBlockVsNaive regenerates the §3.2 sequential claim: the
// block-partitioned multiply beats the naive triple loop at n=1500.
func BenchmarkT1SeqBlockVsNaive(b *testing.B) {
	cm := lan.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunMatmulFigure(cm, bench.MatmulSweep{
			Name: "T1", M: 3, Host: lan.SPARC110, BlockSizes: []int{500},
		})
		if err != nil {
			b.Fatal(err)
		}
		gain := float64(fig.SeqNaive[0])/float64(fig.SeqBlock[0]) - 1
		b.ReportMetric(gain*100, "block-gain-%")
	}
}

// BenchmarkT2MatmulSpeedups regenerates §3.2.2's speedup claims (3.7/4.5 on
// 4 procs at n=1000; 5.8/6.7 on 9 procs at n=1500).
func BenchmarkT2MatmulSpeedups(b *testing.B) {
	cm := lan.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunT2(cm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT3CodeSize regenerates the programming-style comparison: lines
// of the runnable MESSENGERS scripts vs their message-passing equivalents.
func BenchmarkT3CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t3 := bench.RunT3()
		if len(t3.Rows) != 4 {
			b.Fatal("T3 malformed")
		}
	}
}

// BenchmarkA1CopyAblation charges MESSENGERS hops with PVM-style copies.
func BenchmarkA1CopyAblation(b *testing.B) {
	cm := lan.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunA1CopyAblation(cm, 320, 8, []int{8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2GVTStrategies compares conservative vs optimistic GVT.
func BenchmarkA2GVTStrategies(b *testing.B) {
	cm := lan.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunA2GVTStrategies(cm, 4, 8, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3InterpreterOverhead compares bytecode vs native-mode kernels.
func BenchmarkA3InterpreterOverhead(b *testing.B) {
	cm := lan.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunA3InterpreterOverhead(cm, []int{8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4CodeCarrying compares the shared script registry against
// carrying bytecode on every hop.
func BenchmarkA4CodeCarrying(b *testing.B) {
	cm := lan.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunA4CodeCarrying(cm, 320, 8, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- microbenchmarks of the substrates themselves ---

// BenchmarkVMInterpreter measures raw bytecode interpretation throughput
// (~60k instructions per iteration).
func BenchmarkVMInterpreter(b *testing.B) {
	prog, err := compileBench("loop", `
		total = 0;
		for (i = 0; i < 10000; i++) { total = total + i * 2 - 1; }
	`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		m := vm.New(prog, nil)
		res, err := m.Run(discardHost{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "instrs/op")
}

// BenchmarkRealHopLatency measures a round trip between two concurrent
// daemons on the real (goroutine) runtime.
func BenchmarkRealHopLatency(b *testing.B) {
	sys, err := NewRealSystem(Config{Daemons: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	err = sys.CompileAndRegister("pingpong", `
		create(ALL);
		for (i = 0; i < hops; i++) { hop(ll = $last); }
	`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = sys.Inject(0, "pingpong", map[string]Value{"hops": IntValue(int64(2 * b.N))})
	if err != nil {
		b.Fatal(err)
	}
	sys.Wait()
	b.StopTimer()
	if errs := sys.Errors(); len(errs) > 0 {
		b.Fatal(errs[0])
	}
}

// BenchmarkSnapshotRestore measures Messenger state serialization, the hot
// path of every remote hop.
func BenchmarkSnapshotRestore(b *testing.B) {
	mt := value.NewMat(64, 64)
	prog, err := compileBench("snap", `
		blk = payload;
		hop(ll = "x");
		y = 1;
	`)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(prog, map[string]value.Value{"payload": value.Matrix(mt)})
	if _, err := m.Run(discardHost{}, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := m.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := vm.Restore(prog, snap); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(snap)))
	}
}

// BenchmarkMandelKernel measures the real pixel kernel.
func BenchmarkMandelKernel(b *testing.B) {
	blocks := mandel.Blocks(256, 256, 4)
	b.ResetTimer()
	var iters int64
	for i := 0; i < b.N; i++ {
		_, it := mandel.ComputeBlock(mandel.PaperRegion, 256, 256, blocks[i%len(blocks)], 256)
		iters += it
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
}

// BenchmarkMatmulKernels measures the real block multiply-accumulate.
func BenchmarkMatmulKernels(b *testing.B) {
	a, bb := matmul.Random(128, 1), matmul.Random(128, 2)
	c := value.NewMat(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matmul.AddMul(c, a, bb)
	}
	b.SetBytes(int64(3 * 8 * 128 * 128))
}

// BenchmarkTraceOverhead measures the cost the observability hooks add to a
// fixed simulated workload: "off" runs with a nil tracer and nil registry
// (the no-op fast path every production run takes), "on" records a full
// trace and metrics. The off case must track BenchmarkFig4Mandel320-era
// numbers — the hooks compile to a nil check when disabled.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		for i := 0; i < b.N; i++ {
			tr := NewTracer()
			var reg *Metrics
			cfg := Config{Daemons: 4}
			if traced {
				reg = NewMetrics()
				cfg.Trace, cfg.Metrics = tr, reg
			}
			sys, err := NewSimSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			err = sys.CompileAndRegister("work", `
				create(ALL);
				hop(ll = $last);
				for (k = 0; k < 50; k++) {
					node.acc = node.acc + k;
					hop(ll = $last);
				}
			`)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Inject(0, "work", nil); err != nil {
				b.Fatal(err)
			}
			sys.RunSim()
			if errs := sys.Errors(); len(errs) > 0 {
				b.Fatal(errs[0])
			}
			if traced && tr.Len() == 0 {
				b.Fatal("traced run recorded nothing")
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
