package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"messengers/internal/analysis"
)

// valueKindPkg is the package defining the runtime value.Kind enum.
const valueKindPkg = "messengers/internal/value"

// kindSwitchScope lists the packages where a switch over value.Kind must
// be exhaustive. These are the packages the kind-flow specialization
// correctness argument runs through: the value representation itself, the
// verifier that proves per-PC kinds, and the VM that spends those proofs.
// A switch that silently falls through on a missing kind in one of them
// turns an "impossible" case into wrong data instead of a loud fault —
// exactly the failure mode the verifier is supposed to exclude.
var kindSwitchScope = map[string]bool{
	valueKindPkg:                   true,
	"messengers/internal/vm":       true,
	"messengers/internal/bytecode": true,
}

// KindSwitch flags tagged switch statements over value.Kind that neither
// list every Kind constant nor provide a default clause, inside the
// packages that carry the kind-specialization proof chain. Adding a new
// kind to value must fail mlint at every dispatch point that has not
// decided what to do with it.
//
// Switches whose case expressions are not all resolvable Kind constants
// are skipped (the analyzer cannot judge their coverage). Suppress a
// deliberate partial switch with //lint:kindswitch.
var KindSwitch = &analysis.Analyzer{
	Name: "kindswitch",
	Doc:  "switches over value.Kind must be exhaustive or carry a default",
	Run:  runKindSwitch,
}

func runKindSwitch(pass *analysis.Pass) error {
	if !kindSwitchScope[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			kindType := valueKindType(pass.TypeOf(sw.Tag))
			if kindType == nil {
				return true
			}
			all := kindConstants(kindType)
			if len(all) == 0 {
				return true
			}
			covered := map[string]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // default clause: coverage is total
				}
				for _, e := range cc.List {
					c := kindConstName(pass, e)
					if c == "" {
						// A computed or aliased case: coverage is not
						// decidable, stay silent rather than guess.
						return true
					}
					covered[c] = true
				}
			}
			var missing []string
			for _, name := range all {
				if !covered[name] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "kindswitch",
					"switch over value.Kind misses %s; handle %s or add a default",
					strings.Join(missing, ", "), plural(len(missing)))
			}
			return true
		})
	}
	return nil
}

// valueKindType returns t's named type when it is value.Kind, else nil.
func valueKindType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if tn.Name() == "Kind" && tn.Pkg() != nil && tn.Pkg().Path() == valueKindPkg {
		return named
	}
	return nil
}

// kindConstants enumerates the names of every constant of the Kind type
// declared in its defining package, sorted by constant value so missing
// kinds report in declaration order.
func kindConstants(kind *types.Named) []string {
	scope := kind.Obj().Pkg().Scope()
	type kc struct {
		name string
		val  string
	}
	var consts []kc
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), kind) {
			continue
		}
		consts = append(consts, kc{name, c.Val().ExactString()})
	}
	sort.Slice(consts, func(i, j int) bool {
		if len(consts[i].val) != len(consts[j].val) {
			return len(consts[i].val) < len(consts[j].val)
		}
		return consts[i].val < consts[j].val
	})
	names := make([]string, len(consts))
	for i, c := range consts {
		names[i] = c.name
	}
	return names
}

// kindConstName resolves a case expression to the name of a Kind-typed
// constant ("" when it is anything else).
func kindConstName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	c, ok := pass.ObjectOf(id).(*types.Const)
	if !ok || valueKindType(c.Type()) == nil {
		return ""
	}
	return c.Name()
}

func plural(n int) string {
	if n == 1 {
		return "it"
	}
	return fmt.Sprintf("all %d", n)
}
