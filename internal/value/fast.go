// In-place numeric fast paths for the VM's threaded dispatch loop.
//
// A Value is a wide struct (every push/pop copies it), but the numeric
// kinds live entirely in two scalar fields. The helpers here let the
// interpreter's hot handlers compute through *Value without materializing
// intermediate Values: an add writes kind+payload into an existing slot
// and never copies the other 80-odd bytes. They intentionally handle only
// the cases whose semantics are trivially identical to the general paths
// (arith in the VM, Compare/Equal here) and report ok=false otherwise —
// nil coercion, strings, div-by-zero errors and such stay on the one
// authoritative slow path.
//
// Writing a scalar kind over a slot that held a reference kind leaves the
// old reference fields in place; no reader looks at fields outside the
// current kind, so this only extends the liveness of the old payload until
// the slot is overwritten again — the same retention an operand stack has
// below its stack pointer.
package value

import "math"

// NumOp selects the binary arithmetic operation for FastBinary.
type NumOp uint8

// The binary numeric operations, in the bytecode's arithmetic-block order.
const (
	NumAdd NumOp = iota
	NumSub
	NumMul
	NumDiv
	NumMod
)

// SetInt overwrites v in place with an integer.
func (v *Value) SetInt(i int64) { v.kind, v.i = KindInt, i }

// SetNum overwrites v in place with a float.
func (v *Value) SetNum(f float64) { v.kind, v.n = KindNum, f }

// SetBool overwrites v in place with Int(1) or Int(0).
func (v *Value) SetBool(b bool) {
	v.kind = KindInt
	if b {
		v.i = 1
	} else {
		v.i = 0
	}
}

// IntRaw returns the int payload without inspecting the kind tag. Only for
// callers holding a static proof that v is an Int (the bytecode kind-flow
// verifier plus the VM's snapshot admission checks); on any other kind the
// result is a stale payload field.
func (v *Value) IntRaw() int64 { return v.i }

// NumRaw is IntRaw for the float payload: proof-carrying callers only.
func (v *Value) NumRaw() float64 { return v.n }

// FastBinary computes op(a, b) into *out when both operands are strictly
// numeric, returning false (out untouched) for anything the general arith
// path must handle: nil coercion, strings, non-numeric kinds, and integer
// division or modulo by zero (a runtime error there). out may alias a or b.
// Int/int stays int; mixed goes through float64 — exactly the general
// path's promotion rule, including float division by zero yielding ±Inf.
func FastBinary(op NumOp, a, b, out *Value) bool {
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		var r int64
		switch op {
		case NumAdd:
			r = x + y
		case NumSub:
			r = x - y
		case NumMul:
			r = x * y
		case NumDiv:
			if y == 0 {
				return false
			}
			r = x / y
		default:
			if y == 0 {
				return false
			}
			r = x % y
		}
		out.kind, out.i = KindInt, r
		return true
	}
	var x, y float64
	switch a.kind {
	case KindInt:
		x = float64(a.i)
	case KindNum:
		x = a.n
	default:
		return false
	}
	switch b.kind {
	case KindInt:
		y = float64(b.i)
	case KindNum:
		y = b.n
	default:
		return false
	}
	var r float64
	switch op {
	case NumAdd:
		r = x + y
	case NumSub:
		r = x - y
	case NumMul:
		r = x * y
	case NumDiv:
		r = x / y
	default:
		r = math.Mod(x, y)
	}
	out.kind, out.n = KindNum, r
	return true
}

// FastCompare orders two numeric values through pointers; ok=false sends
// string (and error) cases to Value.Compare. Like Compare, both operands
// go through float64 — int/int included — so the orderings agree bit for
// bit.
func FastCompare(a, b *Value) (cmp int, ok bool) {
	var x, y float64
	switch a.kind {
	case KindInt:
		x = float64(a.i)
	case KindNum:
		x = a.n
	default:
		return 0, false
	}
	switch b.kind {
	case KindInt:
		y = float64(b.i)
	case KindNum:
		y = b.n
	default:
		return 0, false
	}
	switch {
	case x < y:
		return -1, true
	case x > y:
		return 1, true
	default:
		return 0, true
	}
}

// FastEqual tests numeric equality through pointers; ok=false sends every
// non-numeric pairing to Value.Equal. Int/int compares exactly, mixed
// through float64 — Equal's own rule.
func FastEqual(a, b *Value) (eq bool, ok bool) {
	if a.kind == KindInt && b.kind == KindInt {
		return a.i == b.i, true
	}
	var x, y float64
	switch a.kind {
	case KindInt:
		x = float64(a.i)
	case KindNum:
		x = a.n
	default:
		return false, false
	}
	switch b.kind {
	case KindInt:
		y = float64(b.i)
	case KindNum:
		y = b.n
	default:
		return false, false
	}
	return x == y, true
}

// TruthyPtr is Value.Truthy through a pointer, for handlers that must not
// copy the Value just to test it.
func TruthyPtr(v *Value) bool {
	switch v.kind {
	case KindNil:
		return false
	case KindInt:
		return v.i != 0
	case KindNum:
		return v.n != 0
	case KindStr:
		return v.s != ""
	case KindBytes:
		return len(v.bytes) > 0
	case KindArr:
		return len(v.arr) > 0
	case KindMat:
		return v.mat != nil && len(v.mat.Data) > 0
	default:
		return false
	}
}
