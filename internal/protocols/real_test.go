package protocols

import (
	"testing"
)

// Real-engine smoke: each protocol once per implementation on the real
// runtime (TCP daemons for Messengers, goroutine tasks for PVM), clean and
// under the drop nemesis. Wall-clock bound, so skipped in -short.

func TestRealEngineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine runs take wall-clock time")
	}
	cases := []RunConfig{
		{Protocol: ProtoPaxos, Impl: ImplMessengers, Engine: EngineReal, Nemesis: NemesisNone, Seed: 1},
		{Protocol: ProtoTPC, Impl: ImplMessengers, Engine: EngineReal, Nemesis: NemesisDrop, Seed: 2},
		{Protocol: ProtoTerm, Impl: ImplMessengers, Engine: EngineReal, Nemesis: NemesisNone, Seed: 3},
		{Protocol: ProtoPaxos, Impl: ImplPVM, Engine: EngineReal, Nemesis: NemesisDrop, Seed: 1},
		{Protocol: ProtoTPC, Impl: ImplPVM, Engine: EngineReal, Nemesis: NemesisNone, Seed: 2},
		{Protocol: ProtoTerm, Impl: ImplPVM, Engine: EngineReal, Nemesis: NemesisDrop, Seed: 3},
	}
	for _, cfg := range cases {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s/%s: %v", cfg.Protocol, cfg.Impl, cfg.Nemesis, err)
		}
		if res.Failed() {
			t.Errorf("%s/%s/%s seed %d: decided=%v (expected %v) err=%q violations=%+v",
				cfg.Protocol, cfg.Impl, cfg.Nemesis, cfg.Seed,
				res.Decided, res.Expected, res.Err, res.Violations)
		}
	}
}
