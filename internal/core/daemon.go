package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"messengers/internal/bytecode"
	"messengers/internal/lan"
	"messengers/internal/logical"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
	"messengers/internal/vm"
)

// maxSegmentSteps bounds a single uninterrupted VM segment (runaway guard).
const maxSegmentSteps = 1 << 30

// Messenger is one autonomous self-migrating computation: its VM state,
// the logical node it currently occupies, the link it arrived by ($last),
// and its local virtual time.
type Messenger struct {
	ID   uint64
	VM   *vm.VM
	Node logical.NodeID
	Last string
	LVT  float64

	// Tenant and Session identify the admission account this Messenger is
	// charged to (empty/zero outside service mode); the tags travel on the
	// wire and survive hops, clones, and recovery respawn. gate is the
	// resolved per-session quota gate — daemon-local scheduling state,
	// re-resolved wherever the Messenger materializes.
	Tenant  string
	Session uint64
	gate    SessionGate
}

// NativeFunc is a registered native-mode function (the paper's dynamically
// loaded precompiled C functions). Natives run uninterrupted on the
// daemon's executor; they may touch the current node's variables through
// ctx and report their modeled cost with ctx.Charge.
type NativeFunc func(ctx *NativeCtx, args []value.Value) (value.Value, error)

// NativeCtx gives a native function access to its execution environment.
type NativeCtx struct {
	d      *Daemon
	m      *Messenger
	node   *logical.Node
	charge sim.Time
}

// DaemonID returns the executing daemon's ID.
func (c *NativeCtx) DaemonID() int { return c.d.id }

// NumDaemons returns the daemon count.
func (c *NativeCtx) NumDaemons() int { return c.d.eng.NumDaemons() }

// Model returns the simulation cost model, or nil on real engines.
func (c *NativeCtx) Model() *lan.CostModel { return c.d.eng.Model() }

// HostSpec describes the host this daemon occupies.
func (c *NativeCtx) HostSpec() lan.HostSpec { return c.d.eng.HostSpec(c.d.id) }

// Charge adds modeled CPU cost (110 MHz-calibrated) for this invocation.
func (c *NativeCtx) Charge(t sim.Time) { c.charge += t }

// NodeVar reads a variable of the current logical node.
func (c *NativeCtx) NodeVar(name string) value.Value { return c.node.Vars[name] }

// SetNodeVar writes a variable of the current logical node.
func (c *NativeCtx) SetNodeVar(name string, v value.Value) { c.node.Vars[name] = v }

// NodeName returns the current logical node's name.
func (c *NativeCtx) NodeName() string { return c.node.Name }

// MsgrVar reads a Messenger variable of the invoking Messenger.
func (c *NativeCtx) MsgrVar(name string) value.Value { return c.m.VM.Var(name) }

// SetMsgrVar writes a Messenger variable of the invoking Messenger.
func (c *NativeCtx) SetMsgrVar(name string, v value.Value) { c.m.VM.SetVar(name, v) }

// LVT returns the invoking Messenger's local virtual time.
func (c *NativeCtx) LVT() float64 { return c.m.LVT }

// Print emits a line to the system output.
func (c *NativeCtx) Print(s string) { c.d.sys.print(c.d.id, s) }

// Stats counts daemon activity over a run (reported in EXPERIMENTS.md).
type Stats struct {
	Arrived    int64 // Messengers received from other daemons
	Segments   int64 // VM segments executed
	Steps      int64 // VM instructions interpreted
	LocalHops  int64
	RemoteHops int64
	Creates    int64 // logical nodes created here
	Deletes    int64 // links deleted here
	Finished   int64 // Messengers that terminated here
	Died       int64 // Messengers with zero matching destinations
	Errors     int64 // Messengers destroyed by runtime errors
	Evicted    int64 // Messengers destroyed by tenant quota enforcement
	GVTRounds  int64 // GVT rounds initiated (daemon 0 only)
	Suspends   int64 // virtual-time suspensions

	// GVTCtlMsgs counts GVT control messages this daemon put on the wire
	// (self-sends excluded); GVTRoundTime accumulates engine time from
	// round launch to completion (daemon 0 only). Together they are the
	// scale experiment's signal: ring rounds send ≤2 per daemon with O(1)
	// through daemon 0, the coordinator 3 per daemon, all through daemon 0.
	GVTCtlMsgs   int64
	GVTRoundTime sim.Time
}

// Daemon is one MESSENGERS daemon: the interpreter process resident on one
// host. All daemon state is confined to its executor; the engine guarantees
// Exec/HandleMsg callbacks for one daemon never run concurrently.
type Daemon struct {
	id    int
	eng   Engine
	topo  *Topology
	store *logical.Store
	sys   *System

	programs map[bytecode.Hash]*bytecode.Program
	byName   map[string]*bytecode.Program

	nextMsgrID uint64
	rr         int // round-robin cursor for create's daemon choice

	// Conservative GVT state.
	gvt        float64
	waitQ      wakeQ
	active     map[uint64]*Messenger // live, runnable Messengers
	sent, recv int64
	notified   bool

	coord *coordinator // non-nil on daemon 0 (centralized GVT)
	ring  *ringGVT     // non-nil under WithDistributedGVT

	// Hop batching (WithHopBatching; nil otherwise): outbox[dst] collects
	// the Messenger-carrying messages this executor turn emits toward dst;
	// a flush scheduled behind the turn wraps each non-trivial group in one
	// MsgBatch frame. Executor-confined like all daemon state.
	outbox     [][]*Msg
	flushArmed bool

	// Fault recovery (nil unless the system was built WithRecovery).
	// downFlag marks a crashed daemon; epoch counts incarnations so that
	// continuations and timers scheduled before a crash are orphaned;
	// renotifyOn dedups the suspended-Messenger renotification timer.
	rec        *recovery
	downFlag   atomic.Bool
	epoch      int
	renotifyOn bool

	// Observability: tr/om are nil when tracing/metrics are off (one
	// branch per site); prof is this daemon's interpreter profile.
	tr   *obs.Tracer
	om   *sysObs
	prof *vm.Profile

	Stats Stats
}

func newDaemon(id int, eng Engine, topo *Topology, sys *System) *Daemon {
	d := &Daemon{
		id:       id,
		eng:      eng,
		topo:     topo,
		store:    logical.NewStore(id),
		sys:      sys,
		programs: map[bytecode.Hash]*bytecode.Program{},
		byName:   map[string]*bytecode.Program{},
		active:   map[uint64]*Messenger{},
		waitQ:    newWakeQ(),
		tr:       sys.trace,
		om:       sys.om,
	}
	if sys.metrics != nil {
		d.prof = &vm.Profile{}
	}
	if sys.recCfg != nil {
		d.rec = newRecovery(eng.NumDaemons(), *sys.recCfg)
	}
	if sys.distGVT {
		d.ring = &ringGVT{d: d}
	} else if id == 0 {
		d.coord = &coordinator{d: d}
	}
	if sys.hopBatch {
		d.outbox = make([][]*Msg, eng.NumDaemons())
	}
	return d
}

// ID returns the daemon's ID.
func (d *Daemon) ID() int { return d.id }

// Store exposes the logical-network store (inspection and the net-builder
// service; must only be touched from the daemon's executor).
func (d *Daemon) Store() *logical.Store { return d.store }

// GVT returns the daemon's view of global virtual time.
func (d *Daemon) GVT() float64 { return d.gvt }

// register adds a program to this daemon's script registry.
func (d *Daemon) register(p *bytecode.Program) {
	d.programs[p.Hash()] = p
	d.byName[p.Name] = p
}

func (d *Daemon) exec(cost sim.Time, fn func()) {
	if d.rec != nil {
		// A crash must orphan every continuation scheduled before it: the
		// Messengers they reference died with the incarnation.
		ep, inner := d.epoch, fn
		fn = func() {
			if d.down() || d.epoch != ep {
				return
			}
			inner()
		}
	}
	d.eng.Exec(d.id, cost, fn)
}

// instrCost converts a VM step count to CPU cost (zero on real engines).
func (d *Daemon) instrCost(steps int64) sim.Time {
	cm := d.eng.Model()
	if cm == nil {
		return 0
	}
	return sim.Time(steps) * cm.PerInstr
}

func (d *Daemon) modelTime(f func(cm *lan.CostModel) sim.Time) sim.Time {
	cm := d.eng.Model()
	if cm == nil {
		return 0
	}
	return f(cm)
}

// msgrID renders a Messenger ID for trace arguments, unpacking the
// allocation scheme (top bit: injected; else daemon<<40 | seq) so the
// trace shows "inj-3" or "d2-17" instead of a raw 64-bit pattern.
func msgrID(id uint64) obs.Field {
	if id>>63 == 1 {
		return obs.S("msgr", fmt.Sprintf("inj-%d", id&(1<<63-1)))
	}
	return obs.S("msgr", fmt.Sprintf("d%d-%d", id>>40, id&(1<<40-1)))
}

// netSend ships a message to another daemon, accounting wire traffic.
// Under WithHopBatching, Messenger-carrying messages detour through the
// per-destination outbox and leave in a coalesced frame at end of turn.
func (d *Daemon) netSend(dst int, msg *Msg) {
	if d.outbox != nil && dst != d.id && batchableKind(msg.Kind) {
		d.outbox[dst] = append(d.outbox[dst], msg)
		if !d.flushArmed {
			d.flushArmed = true
			d.exec(0, d.flushOutbox)
		}
		return
	}
	d.netSendNow(dst, msg)
}

// netSendNow puts one message on the wire immediately.
func (d *Daemon) netSendNow(dst int, msg *Msg) {
	if d.om != nil {
		d.om.netMsgs.Inc()
		d.om.netBytes.Add(int64(msg.WireSize()))
	}
	d.eng.Send(d.id, dst, msg)
}

// batchableKind reports whether a message may ride in a MsgBatch frame:
// the Messenger-carrying hop traffic, whose per-message overhead batching
// amortizes. Control messages (GVT, acks, heartbeats) stay un-coalesced —
// they are latency-sensitive and already pay only fixed costs.
func batchableKind(k MsgKind) bool {
	return k == MsgMessenger || k == MsgCreate
}

// flushOutbox ships every destination's accumulated messages: alone when a
// group has one member, wrapped in a single MsgBatch frame otherwise.
// Destinations flush in ascending order for determinism on the sim engine.
func (d *Daemon) flushOutbox() {
	d.flushArmed = false
	for dst := range d.outbox {
		group := d.outbox[dst]
		if len(group) == 0 {
			continue
		}
		d.outbox[dst] = nil
		if len(group) == 1 {
			d.netSendNow(dst, group[0])
			continue
		}
		if d.om != nil {
			d.om.netBatches.Inc()
		}
		if d.tr != nil {
			d.tr.Instant(d.id, "net", "net.batch",
				obs.I("to", int64(dst)), obs.I("count", int64(len(group))))
		}
		d.netSendNow(dst, &Msg{Kind: MsgBatch, From: d.id, Batch: group})
	}
}

// fail destroys a Messenger due to a runtime error.
func (d *Daemon) fail(m *Messenger, err error) {
	d.Stats.Errors++
	if d.om != nil {
		d.om.errs.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "msgr", "error", msgrID(m.ID), obs.S("err", err.Error()))
	}
	delete(d.active, m.ID)
	d.sys.recordError(fmt.Errorf("daemon %d, messenger %d: %w", d.id, m.ID, err))
	d.sys.sessionWork(m.Tenant, m.Session, -1)
}

// die destroys a Messenger that has no matching destination (the hop
// semantics: replicate to all matching destinations — zero matches means
// the Messenger ceases to exist).
func (d *Daemon) die(m *Messenger) {
	d.Stats.Died++
	if d.om != nil {
		d.om.died.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "msgr", "die", msgrID(m.ID))
	}
	delete(d.active, m.ID)
	d.sys.sessionWork(m.Tenant, m.Session, -1)
}

// finish completes a Messenger normally.
func (d *Daemon) finish(m *Messenger) {
	d.Stats.Finished++
	if d.om != nil {
		d.om.finished.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "msgr", "terminate", msgrID(m.ID))
	}
	delete(d.active, m.ID)
	d.sys.sessionWork(m.Tenant, m.Session, -1)
}

// spawnLocal starts running a Messenger resident on this daemon.
func (d *Daemon) spawnLocal(m *Messenger) {
	d.active[m.ID] = m
	d.step(m)
}

// step executes the Messenger's next VM segment on this daemon. Must run on
// the daemon's executor.
func (d *Daemon) step(m *Messenger) {
	node, ok := d.store.Node(m.Node)
	if !ok {
		// The node was deleted while the Messenger was in flight.
		d.die(m)
		return
	}
	host := &msgrHost{d: d, m: m, node: node}
	m.VM.SetProfile(d.prof)
	m.VM.SetMeter(m.gate)
	var segStart int64
	if d.tr != nil {
		segStart = int64(d.eng.Now())
	}
	res, err := m.VM.Run(host, maxSegmentSteps)
	if err != nil {
		if errors.Is(err, vm.ErrStepBudget) {
			d.evict(m, err)
			return
		}
		d.fail(m, err)
		return
	}
	d.Stats.Segments++
	d.Stats.Steps += res.Steps
	cost := d.instrCost(res.Steps)
	if d.om != nil {
		d.om.segments.Inc()
		d.om.steps.Add(res.Steps)
		d.om.segSteps.Observe(res.Steps)
		threaded, fused := m.VM.SegmentStats()
		d.om.dispThreaded.Add(threaded)
		d.om.dispSwitch.Add(res.Steps - threaded)
		d.om.fusedSteps.Add(fused)
		d.om.arenaBytes.Observe(m.VM.ArenaBytes())
	}
	if d.tr != nil {
		// Simulated engines: the span covers the modeled CPU cost from the
		// current instant. Real engines: the measured wall time of the run.
		start, dur := int64(d.eng.Now()), int64(cost)
		if dur == 0 {
			start, dur = segStart, int64(d.eng.Now())-segStart
		}
		d.tr.Span(d.id, "vm", "segment", start, dur,
			msgrID(m.ID), obs.I("steps", res.Steps), obs.S("pause", res.Pause.String()))
	}

	switch res.Pause {
	case vm.PauseEnd:
		d.exec(cost, func() { d.finish(m) })

	case vm.PauseNative:
		fn, ok := d.sys.natives[res.Native]
		if !ok {
			d.fail(m, fmt.Errorf("unknown native function %q", res.Native))
			return
		}
		ctx := &NativeCtx{d: d, m: m, node: node}
		var natStart int64
		if d.tr != nil {
			natStart = int64(d.eng.Now())
		}
		v, err := fn(ctx, res.Args)
		if err != nil {
			d.fail(m, fmt.Errorf("native %s: %w", res.Native, err))
			return
		}
		m.VM.PushResult(v)
		natCost := ctx.charge + d.modelTime(func(cm *lan.CostModel) sim.Time { return cm.CallFixed })
		if d.tr != nil {
			start, dur := int64(d.eng.Now()), int64(natCost)
			if dur == 0 {
				start, dur = natStart, int64(d.eng.Now())-natStart
			}
			d.tr.Span(d.id, "vm", "native:"+res.Native, start, dur, msgrID(m.ID))
		}
		cost += natCost
		d.exec(cost, func() { d.step(m) })

	case vm.PauseHop, vm.PauseDelete:
		cost += d.modelTime(func(cm *lan.CostModel) sim.Time { return cm.MsgrHopFixed })
		isDelete := res.Pause == vm.PauseDelete
		d.exec(cost, func() { d.doHop(m, node, res.Arms, isDelete) })

	case vm.PauseCreate:
		cost += d.modelTime(func(cm *lan.CostModel) sim.Time { return cm.MsgrHopFixed })
		d.exec(cost, func() { d.doCreate(m, node, res.Arms, res.All) })

	case vm.PauseSchedAbs:
		d.exec(cost, func() { d.suspend(m, res.Time) })

	case vm.PauseSchedDlt:
		wake := m.LVT + res.Time
		d.exec(cost, func() { d.suspend(m, wake) })
	}
}

// doHop resolves a hop/delete and replicates the Messenger to every match.
func (d *Daemon) doHop(m *Messenger, node *logical.Node, arms []vm.NavArm, isDelete bool) {
	if _, ok := d.store.Node(node.ID); !ok {
		d.die(m)
		return
	}
	var matches []logical.Match
	for _, arm := range arms {
		ms := d.store.Match(node, navString(arm.LN), navString(arm.LL), navString(arm.LDir))
		matches = append(matches, ms...)
	}
	if len(matches) == 0 {
		d.die(m)
		return
	}
	if d.rec != nil {
		// Retransmission can reorder a MsgCreateAck behind a Messenger that
		// already traversed the new link, so a remote destination may still
		// be the unresolved placeholder (node 0). Defer the whole hop until
		// the ack lands or the peer is declared dead (either resolves it).
		for _, match := range matches {
			if match.Dest.Daemon != d.id && match.Dest.Node == 0 && !d.rec.peerDead[match.Dest.Daemon] {
				d.safeTimer(d.rec.cfg.AckTimeout/2, func() { d.doHop(m, node, arms, isDelete) })
				return
			}
		}
	}
	// Nav boundaries are where quota enforcement bites: the Messenger is
	// about to occupy the network, so vet its serialized size against the
	// tenant's memory cap and charge one hop per replica against the hop-
	// rate bucket before anything replicates.
	if m.gate != nil {
		if err := m.gate.CheckMem(m.VM.SnapshotSize()); err != nil {
			d.evict(m, err)
			return
		}
		if err := m.gate.ChargeHop(d.eng.Now(), len(matches)); err != nil {
			d.evict(m, err)
			return
		}
	}
	if isDelete {
		// Remove the local half of every traversed link now; the remote
		// halves are removed when the replicas arrive.
		for _, match := range matches {
			if match.Link != nil {
				d.store.DetachHalf(node, match.Link.ID)
				d.Stats.Deletes++
				if d.om != nil {
					d.om.deletes.Inc()
				}
			}
		}
	}
	d.sys.sessionWork(m.Tenant, m.Session, len(matches)-1)
	delete(d.active, m.ID)
	for i, match := range matches {
		clone := m.VM
		if i < len(matches)-1 {
			clone = m.VM.Clone()
		}
		var removeLink logical.LinkID
		if isDelete && match.Link != nil {
			removeLink = match.Link.ID
		}
		d.routeMessenger(m, clone, match.Dest, match.Via, removeLink)
	}
}

// routeMessenger delivers a (possibly cloned) Messenger VM to a destination
// node, locally or over the network. m supplies the LVT and tenant context
// the replica inherits.
func (d *Daemon) routeMessenger(m *Messenger, mvm *vm.VM, dest logical.Addr, via string, removeLink logical.LinkID) {
	lvt := m.LVT
	if dest.Daemon == d.id {
		d.Stats.LocalHops++
		if d.om != nil {
			d.om.localHops.Inc()
		}
		nm := &Messenger{ID: d.newMsgrID(), VM: mvm, Node: dest.Node, Last: via, LVT: lvt,
			Tenant: m.Tenant, Session: m.Session, gate: m.gate}
		if d.tr != nil {
			d.tr.Instant(d.id, "msgr", "hop.local", msgrID(nm.ID))
		}
		if removeLink != (logical.LinkID{}) {
			if n, ok := d.store.Node(dest.Node); ok {
				d.store.DetachHalf(n, removeLink)
			}
		}
		d.active[nm.ID] = nm
		localCost := d.modelTime(func(cm *lan.CostModel) sim.Time { return cm.CallFixed })
		d.exec(localCost, func() { d.step(nm) })
		return
	}
	d.Stats.RemoteHops++
	if d.om != nil {
		d.om.remoteHops.Inc()
	}
	msg := &Msg{
		Kind:       MsgMessenger,
		From:       d.id,
		ProgHash:   mvm.Program().Hash(),
		XferVM:     mvm,
		MsgrID:     d.newMsgrID(),
		LVT:        lvt,
		DestNode:   dest.Node,
		Last:       via,
		RemoveLink: removeLink,
		Tenant:     m.Tenant,
		Session:    m.Session,
	}
	// Under the shared-code registry (the paper's shared-file-system
	// optimization) only the hash travels; the A4 ablation disables the
	// registry cache and ships the bytecode with every hop.
	if cm := d.eng.Model(); cm != nil && !cm.MsgrCodeCached {
		msg.ProgBytes = mvm.Program().Encode()
	}
	if d.om != nil {
		d.om.msgrBytes.Observe(int64(msg.SnapshotLen()))
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "msgr", "hop.depart",
			msgrID(msg.MsgrID), obs.I("to", int64(dest.Daemon)), obs.I("bytes", int64(msg.WireSize())))
	}
	d.ship(dest.Daemon, msg, true)
}

// doCreate resolves a create statement: one new node (and connecting link)
// per arm on the chosen daemon(s); the Messenger replicates into every new
// node and the original ceases.
func (d *Daemon) doCreate(m *Messenger, node *logical.Node, arms []vm.NavArm, all bool) {
	if _, ok := d.store.Node(node.ID); !ok {
		d.die(m)
		return
	}
	type target struct {
		arm    vm.NavArm
		daemon int
	}
	var targets []target
	for _, arm := range arms {
		cands := d.topo.MatchDaemons(d.id, arm.DN, arm.DL, arm.DDir)
		if len(cands) == 0 {
			continue
		}
		if all {
			for _, td := range cands {
				targets = append(targets, target{arm: arm, daemon: td})
			}
		} else {
			td := cands[d.rr%len(cands)]
			d.rr++
			targets = append(targets, target{arm: arm, daemon: td})
		}
	}
	if len(targets) == 0 {
		d.die(m)
		return
	}
	if m.gate != nil {
		if err := m.gate.CheckMem(m.VM.SnapshotSize()); err != nil {
			d.evict(m, err)
			return
		}
		if err := m.gate.ChargeHop(d.eng.Now(), len(targets)); err != nil {
			d.evict(m, err)
			return
		}
	}
	d.sys.sessionWork(m.Tenant, m.Session, len(targets)-1)
	delete(d.active, m.ID)
	origin := d.store.Addr(node)
	for i, tg := range targets {
		clone := m.VM
		if i < len(targets)-1 {
			clone = m.VM.Clone()
		}
		linkName := navCreateName(tg.arm.LL)
		nodeName := navCreateName(tg.arm.LN)
		dir := createDir(tg.arm.LDir)
		linkID := d.store.NewLinkID()
		directed := dir != 0
		// Attach the origin half now. For a remote create the peer node ID
		// is unknown until the ack arrives (see MsgCreateAck); FIFO
		// delivery guarantees the ack precedes any Messenger returning
		// over this link.
		if tg.daemon == d.id {
			nn := d.store.CreateNode(nodeName)
			d.Stats.Creates++
			if d.om != nil {
				d.om.creates.Inc()
			}
			if d.tr != nil {
				d.tr.Instant(d.id, "msgr", "create.local", msgrID(m.ID), obs.S("node", nn.Name))
			}
			d.store.AttachHalf(node, linkID, linkName, directed, dir == 1, d.store.Addr(nn), nn.Name)
			d.store.AttachHalf(nn, linkID, linkName, directed, dir == 2, origin, node.Name)
			nm := &Messenger{ID: d.newMsgrID(), VM: clone, Node: nn.ID,
				Last: logical.RefName(linkID, linkName), LVT: m.LVT,
				Tenant: m.Tenant, Session: m.Session, gate: m.gate}
			d.active[nm.ID] = nm
			localCost := d.modelTime(func(cm *lan.CostModel) sim.Time { return cm.CallFixed })
			d.exec(localCost, func() { d.step(nm) })
			continue
		}
		d.store.AttachHalf(node, linkID, linkName, directed, dir == 1,
			logical.Addr{Daemon: tg.daemon}, nodeName)
		msg := &Msg{
			Kind:       MsgCreate,
			From:       d.id,
			ProgHash:   clone.Program().Hash(),
			XferVM:     clone,
			MsgrID:     d.newMsgrID(),
			LVT:        m.LVT,
			CreateName: nodeName,
			LinkID:     linkID,
			LinkName:   linkName,
			LinkDir:    dir,
			Origin:     origin,
			OriginName: node.Name,
			Tenant:     m.Tenant,
			Session:    m.Session,
		}
		if d.om != nil {
			d.om.msgrBytes.Observe(int64(msg.SnapshotLen()))
		}
		if d.tr != nil {
			d.tr.Instant(d.id, "msgr", "create.depart",
				msgrID(msg.MsgrID), obs.I("to", int64(tg.daemon)), obs.I("bytes", int64(msg.WireSize())))
		}
		d.ship(tg.daemon, msg, true)
	}
}

// navCreateName renders a create name: "~" and wildcards become unnamed.
func navCreateName(v value.Value) string {
	s := navString(v)
	if s == "*" || s == "~" {
		return ""
	}
	return s
}

// createDir maps a create ldir to 0 (undirected), 1 (origin->new), or
// 2 (new->origin).
func createDir(v value.Value) uint8 {
	switch navString(v) {
	case "+":
		return 1
	case "-":
		return 2
	default:
		return 0
	}
}

func (d *Daemon) newMsgrID() uint64 {
	d.nextMsgrID++
	return uint64(d.id)<<40 | d.nextMsgrID
}

// suspend parks a Messenger until global virtual time reaches wake.
func (d *Daemon) suspend(m *Messenger, wake float64) {
	if wake <= d.gvt {
		// The requested time has already been reached globally; continue
		// immediately (virtual time never runs backwards).
		if wake > m.LVT {
			m.LVT = wake
		}
		d.step(m)
		return
	}
	d.Stats.Suspends++
	if d.om != nil {
		d.om.suspends.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "gvt", "suspend", msgrID(m.ID), obs.F("wake", wake))
	}
	delete(d.active, m.ID)
	d.waitQ.Push(wakeEntry{at: wake, seq: m.ID, m: m})
	if !d.notified {
		d.notified = true
		d.sendGVT(0, &Msg{Kind: MsgGVTNotify, From: d.id})
	}
	d.armRenotify()
}

// sendGVT routes a GVT control message, short-circuiting self-sends.
func (d *Daemon) sendGVT(dst int, msg *Msg) {
	if dst == d.id {
		d.HandleMsg(msg)
		return
	}
	d.Stats.GVTCtlMsgs++
	if d.om != nil {
		d.om.gvtCtlMsgs.Inc()
	}
	d.netSend(dst, msg)
}

// localMin is this daemon's lower bound on any future virtual-time event it
// can generate: the earliest suspended wake-up and the LVTs of all runnable
// Messengers.
func (d *Daemon) localMin() float64 {
	min := math.Inf(1)
	if d.waitQ.Len() > 0 {
		min = d.waitQ.Peek().at
	}
	//lint:maporder min over values is order-independent
	for _, m := range d.active {
		if m.LVT < min {
			min = m.LVT
		}
	}
	return min
}

// advanceGVT installs a new global virtual time and releases every
// Messenger whose wake time has been reached.
func (d *Daemon) advanceGVT(gvt float64) {
	if gvt <= d.gvt {
		return
	}
	d.gvt = gvt
	if d.id == 0 {
		d.sys.recordCommit(gvt)
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "gvt", "gvt.advance", obs.F("gvt", gvt))
	}
	if d.rec != nil {
		d.releaseFossils()
	}
	for d.waitQ.Len() > 0 && d.waitQ.Peek().at <= gvt {
		e := d.waitQ.Pop()
		m := e.m
		if e.at > m.LVT {
			m.LVT = e.at
		}
		d.active[m.ID] = m
		d.exec(0, func() { d.step(m) })
	}
	if d.waitQ.Len() == 0 {
		d.notified = false
	}
}

// HandleMsg processes one inbound message. The engine invokes it on this
// daemon's executor.
func (d *Daemon) HandleMsg(msg *Msg) {
	if d.rec != nil {
		// A crashed daemon drops everything on the floor; a live one
		// acknowledges and dedups reliable transfers before processing.
		if d.down() {
			return
		}
		switch msg.Kind {
		case MsgHopAck:
			d.handleHopAck(msg)
			return
		case MsgHeartbeat:
			return // liveness is inferred at the transport layer
		}
		if msg.From != d.id && msg.From >= 0 && msg.From < len(d.rec.peerDead) && d.rec.peerDead[msg.From] {
			// Stale traffic from a peer this daemon has declared dead.
			// PeerDown already purged both sides' transient books for
			// that peer, so counting this message would leave a permanent
			// recv > sent imbalance and wedge GVT. A genuinely crashed
			// peer's in-flight messages die with its books; a falsely
			// suspected peer's recovery layer retransmits once PeerUp
			// fires (the fence drops the frame before the hop ack, so
			// the transfer stays pending at the sender).
			return
		}
		if reliableKind(msg.Kind) && msg.From != d.id && d.dedupCheck(msg) {
			return
		}
	}
	switch msg.Kind {
	case MsgMessenger:
		d.recv++
		d.Stats.Arrived++
		if d.om != nil {
			d.om.arrived.Inc()
		}
		if d.rec != nil {
			d.rec.recvFrom[msg.From]++
		}
		d.handleArrival(msg)

	case MsgCreate:
		d.recv++
		d.Stats.Arrived++
		if d.om != nil {
			d.om.arrived.Inc()
		}
		if d.rec != nil {
			d.rec.recvFrom[msg.From]++
		}
		d.handleCreate(msg)

	case MsgCreateAck:
		if node, ok := d.store.Node(msg.Origin.Node); ok {
			if h, ok := logical.FindLink(node, msg.LinkID); ok {
				h.Peer = msg.AckPeer
				h.PeerName = msg.AckPeerName
			}
		}

	case MsgInject:
		// Injection arrives via the local executor (not a daemon-to-daemon
		// send), so it does not participate in GVT transient counting.
		d.handleInject(msg)

	case MsgProgram:
		p, err := bytecode.Decode(msg.ProgBytes)
		if err != nil {
			d.sys.recordError(fmt.Errorf("daemon %d: bad program broadcast: %w", d.id, err))
			return
		}
		d.register(p)

	case MsgGVTNotify, MsgGVTReport:
		if d.coord != nil {
			d.coord.handle(msg)
		} else if d.ring != nil && msg.Kind == MsgGVTNotify {
			d.ring.handleNotify()
		}

	case MsgGVTToken:
		if d.ring != nil {
			d.ring.handleToken(msg)
		}

	case MsgBatch:
		// Unpack in order: each member takes the full inbound path itself
		// (dedup, transient counting, admission), so a batch is semantically
		// just its members arriving back to back in one frame.
		for _, sub := range msg.Batch {
			d.HandleMsg(sub)
		}

	case MsgGVTQuery:
		d.sendGVT(msg.From, &Msg{
			Kind:    MsgGVTReport,
			From:    d.id,
			GEpoch:  msg.GEpoch,
			GMin:    d.localMin(),
			GSent:   d.sent,
			GRecv:   d.recv,
			GActive: int64(len(d.active)),
		})

	case MsgGVTAdvance:
		d.advanceGVT(msg.GVT)

	case MsgHalt:
		// Reserved for distributed (TCP) termination; in-process engines
		// track liveness directly.

	case MsgHopAck, MsgHeartbeat:
		// Recovery-mode traffic reaching a system built without recovery
		// (e.g. a stray heartbeat during shutdown): ignore.

	default:
		d.sys.recordError(fmt.Errorf("daemon %d: unknown message kind %v", d.id, msg.Kind))
	}
}

func (d *Daemon) restore(msg *Msg) (*vm.VM, error) {
	if msg.XferVM != nil {
		// In-process delivery: the VM arrived by ownership transfer — the
		// paper's "ship the Messenger-variable area as-is" hop, with no
		// serialize/deserialize round trip. Consume it exactly once.
		mvm := msg.XferVM
		msg.XferVM = nil
		if d.om != nil {
			d.om.zeroCopyHops.Inc()
		}
		return mvm, nil
	}
	prog, ok := d.programs[msg.ProgHash]
	if !ok {
		return nil, fmt.Errorf("program %s not in registry", msg.ProgHash)
	}
	return vm.Restore(prog, msg.Snapshot)
}

func (d *Daemon) handleArrival(msg *Msg) {
	mvm, err := d.restore(msg)
	if err != nil {
		d.sys.recordError(fmt.Errorf("daemon %d: arrival: %w", d.id, err))
		d.sys.sessionWork(msg.Tenant, msg.Session, -1)
		return
	}
	node, ok := d.store.Node(msg.DestNode)
	if !ok {
		// Destination node deleted while in flight.
		d.Stats.Died++
		if d.om != nil {
			d.om.died.Inc()
		}
		if d.tr != nil {
			d.tr.Instant(d.id, "msgr", "die", msgrID(msg.MsgrID))
		}
		d.sys.sessionWork(msg.Tenant, msg.Session, -1)
		return
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "msgr", "hop.arrive",
			msgrID(msg.MsgrID), obs.I("from", int64(msg.From)))
	}
	if msg.RemoveLink != (logical.LinkID{}) {
		d.store.DetachHalf(node, msg.RemoveLink)
		d.Stats.Deletes++
		if d.om != nil {
			d.om.deletes.Inc()
		}
		// Deleting the traversed link may have removed the node itself if
		// it became a singleton; the Messenger still executes in it per
		// hop semantics only if it survived.
		if _, ok := d.store.Node(node.ID); !ok {
			d.Stats.Died++
			if d.om != nil {
				d.om.died.Inc()
			}
			if d.tr != nil {
				d.tr.Instant(d.id, "msgr", "die", msgrID(msg.MsgrID))
			}
			d.sys.sessionWork(msg.Tenant, msg.Session, -1)
			return
		}
	}
	m := &Messenger{ID: msg.MsgrID, VM: mvm, Node: node.ID, Last: msg.Last, LVT: msg.LVT,
		Tenant: msg.Tenant, Session: msg.Session, gate: d.resolveGate(msg.Tenant, msg.Session)}
	d.spawnLocal(m)
}

func (d *Daemon) handleCreate(msg *Msg) {
	mvm, err := d.restore(msg)
	if err != nil {
		d.sys.recordError(fmt.Errorf("daemon %d: create: %w", d.id, err))
		d.sys.sessionWork(msg.Tenant, msg.Session, -1)
		return
	}
	nn := d.store.CreateNode(msg.CreateName)
	d.Stats.Creates++
	if d.om != nil {
		d.om.creates.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "msgr", "create.arrive",
			msgrID(msg.MsgrID), obs.I("from", int64(msg.From)), obs.S("node", nn.Name))
	}
	d.store.AttachHalf(nn, msg.LinkID, msg.LinkName, msg.LinkDir != 0, msg.LinkDir == 2,
		msg.Origin, msg.OriginName)
	ack := &Msg{
		Kind:        MsgCreateAck,
		From:        d.id,
		LinkID:      msg.LinkID,
		Origin:      msg.Origin,
		AckPeer:     d.store.Addr(nn),
		AckPeerName: nn.Name,
	}
	if d.rec != nil && msg.From != d.id {
		// The ack completes the origin's half-link; losing it would strand
		// any Messenger that later traverses the link, so it travels
		// reliably too (uncounted: it carries no computation).
		d.ship(msg.From, ack, false)
	} else {
		d.sendGVT(msg.From, ack)
	}
	m := &Messenger{ID: msg.MsgrID, VM: mvm, Node: nn.ID,
		Last: logical.RefName(msg.LinkID, msg.LinkName), LVT: msg.LVT,
		Tenant: msg.Tenant, Session: msg.Session, gate: d.resolveGate(msg.Tenant, msg.Session)}
	d.spawnLocal(m)
}

func (d *Daemon) handleInject(msg *Msg) {
	mvm, err := d.restore(msg)
	if err != nil {
		d.sys.recordError(fmt.Errorf("daemon %d: inject: %w", d.id, err))
		d.sys.sessionWork(msg.Tenant, msg.Session, -1)
		return
	}
	target := d.store.Init()
	if msg.CreateName != "" && msg.CreateName != logical.InitName {
		if nodes := d.store.FindByName(msg.CreateName); len(nodes) > 0 {
			target = nodes[0]
		}
	}
	lvt := msg.LVT
	if lvt < d.gvt {
		lvt = d.gvt
	}
	if d.om != nil {
		d.om.injected.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "msgr", "inject",
			msgrID(msg.MsgrID), obs.S("script", mvm.Program().Name), obs.S("node", target.Name))
	}
	m := &Messenger{ID: msg.MsgrID, VM: mvm, Node: target.ID, Last: "", LVT: lvt,
		Tenant: msg.Tenant, Session: msg.Session, gate: d.resolveGate(msg.Tenant, msg.Session)}
	d.spawnLocal(m)
}

// --- VM host adapter ---

// msgrHost adapts the daemon/node/Messenger triple to the vm.Host
// interface.
type msgrHost struct {
	d    *Daemon
	m    *Messenger
	node *logical.Node
}

func (h *msgrHost) NodeVar(name string) value.Value { return h.node.Vars[name] }

func (h *msgrHost) SetNodeVar(name string, v value.Value) { h.node.Vars[name] = v }

func (h *msgrHost) NetVar(name string) (value.Value, bool) {
	switch name {
	case "address":
		return value.Str(DaemonName(h.d.id)), true
	case "daemon":
		return value.Int(int64(h.d.id)), true
	case "ndaemons":
		return value.Int(int64(h.d.eng.NumDaemons())), true
	case "last":
		return value.Str(h.m.Last), true
	case "node":
		return value.Str(h.node.Name), true
	case "script":
		return value.Str(h.m.VM.Program().Name), true
	case "time":
		return value.Num(h.m.LVT), true
	case "gvt":
		return value.Num(h.d.gvt), true
	default:
		return value.Nil(), false
	}
}

func (h *msgrHost) Print(s string) { h.d.sys.print(h.d.id, s) }

// --- wake queue ---

// wakeEntry is a suspended Messenger.
type wakeEntry struct {
	at  float64
	seq uint64
	m   *Messenger
}

// wakeBefore orders suspended Messengers by (wake time, ID) for
// determinism.
func wakeBefore(a, b wakeEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// wakeQ is the suspended-Messenger queue: the shared generic heap
// (sim.Heap) under the wakeBefore order. Items exposes the backing slice
// for recovery's whole-queue drains.
type wakeQ struct {
	*sim.Heap[wakeEntry]
}

func newWakeQ() wakeQ { return wakeQ{sim.NewHeap(wakeBefore)} }
