// External test package: these tests drive the kind-flow verifier through
// the real compiler (compile imports bytecode, so an in-package test would
// cycle) and pin the public contract of the kind metadata — what is
// rejected, what is honestly ⊤, and what StateBound will and will not
// promise.
package bytecode_test

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"messengers/internal/bytecode"
	"messengers/internal/compile"
)

func mustCompile(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	prog, err := compile.Compile("kinds", src)
	if err != nil {
		t.Fatalf("compile(%q): %v", src, err)
	}
	return prog
}

// TestKindRejectionTable is the rejection side of the kind lattice: each
// program provably faults on every execution reaching the faulting
// instruction, so Compile (via Validate) must refuse it with ErrIllTyped
// and name the proven kinds in the message.
func TestKindRejectionTable(t *testing.T) {
	cases := map[string]string{
		// Proven-kind arithmetic and comparison faults.
		`x = "a" - "b";`:        "str",
		`x = "a" * 3;`:          "str",
		`x = [1, 2] + 1;`:       "arr",
		`x = -"neg";`:           "str",
		`x = 1 < "s";`:          "str",
		`x = matrix(2, 2) % 2;`: "mat",
		// Indexing a proven scalar, and a proven-bad index kind.
		`x = 5[0];`:     "int",
		`x = [1]["a"];`: "str",
		// Builtins with modeled signatures.
		`x = sqrt("s");`:       "str",
		`x = matget(1, 0, 0);`: "int",
		`x = substr(7, 0, 1);`: "int",
		// The fault sits behind a join, but BOTH branches prove str:
		// the join stays exact and the rejection survives the merge.
		`if (n > 0) { m = "a"; } else { m = "b"; }
		 x = m - 1;`: "str",
	}
	for src, kind := range cases {
		_, err := compile.Compile("kinds", src)
		if err == nil {
			t.Errorf("compile(%q) accepted a provably kind-faulting program", src)
			continue
		}
		if !errors.Is(err, bytecode.ErrIllTyped) {
			t.Errorf("compile(%q) error %q does not wrap ErrIllTyped", src, err)
		}
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("compile(%q) error %q does not name the proven kind %q", src, err, kind)
		}
	}
}

// TestKindAnalysisAcceptsPossibles pins the other half of the contract:
// the analysis rejects proofs, not possibilities. A fault that only might
// happen — because an operand is honestly ⊤ — must stay a runtime error.
func TestKindAnalysisAcceptsPossibles(t *testing.T) {
	accepted := []string{
		// Laundered through an array load: element kinds are not tracked.
		`s = ["abc"][0]; x = s - 1;`,
		// A join that widens to ⊤: one branch int, one str.
		`if (n > 0) { m = 1; } else { m = "s"; }
		 x = m - 1;`,
		// Messenger variables are ⊤ at entry — the injector chooses them.
		// (+ is defined on strings, so ⊤ + str is only a possible fault;
		// contrast `n - "s"`, which is proven: no kind subtracts a str.)
		`x = n + "suffix";`,
		// Function returns are ⊤ (no interprocedural analysis).
		`func f() { return "s"; } x = f() * 2;`,
		// Network variables are ⊤.
		`x = $peer + 1;`,
	}
	for _, src := range accepted {
		if _, err := compile.Compile("kinds", src); err != nil {
			t.Errorf("compile(%q) rejected a merely-possible fault: %v", src, err)
		}
	}
}

// TestKindMetadataQueries exercises the per-PC query surface: totality
// over the whole code space, and a proven exact kind where one exists.
func TestKindMetadataQueries(t *testing.T) {
	prog := mustCompile(t, `
		x = 0.5;
		for (i = 0; i < 4; i++) { x = x * 2.0; }
	`)
	provenInt, provenNum := false, false
	for fi := range prog.Funcs {
		f := &prog.Funcs[fi]
		for pc := range f.Code {
			for slot := 0; slot < prog.MaxStack(fi); slot++ {
				switch prog.SlotKind(fi, pc, slot) {
				case bytecode.KindInt:
					provenInt = true
				case bytecode.KindNum:
					provenNum = true
				}
			}
			for l := 0; l < f.NumLocals; l++ {
				prog.LocalKind(fi, pc, l)
			}
			prog.VarKind(fi, pc, "x")
			prog.VarKind(fi, pc, "no-such-var")
		}
	}
	if !provenInt || !provenNum {
		t.Errorf("expected both an int and a num slot proof somewhere (int=%v num=%v)", provenInt, provenNum)
	}
	tracked := prog.TrackedVars()
	sorted := append([]string(nil), tracked...)
	sort.Strings(sorted)
	if want := []string{"i", "x"}; !equalStrings(sorted, want) {
		t.Errorf("TrackedVars = %v, want %v", tracked, want)
	}
}

// TestStateBound is the derivability table for the static state-size
// bound: which programs get a bound, which honestly refuse, and that the
// bound's arithmetic matches its documented formula.
func TestStateBound(t *testing.T) {
	// scalarWire (9) and snapOverhead (24) from kinds.go, restated here so
	// a silent change to either breaks this pin.
	const scalarWire, snapOverhead = 9, 4 + 4 + 12 + 4

	t.Run("scalar program is boundable", func(t *testing.T) {
		prog := mustCompile(t, `x = 1;`)
		base, inherited, ok := prog.StateBound()
		if !ok {
			t.Fatal("x = 1; must be statically boundable")
		}
		if !equalStrings(inherited, []string{"x"}) {
			t.Errorf("inherited = %v, want [x]", inherited)
		}
		want := int64(snapOverhead + (4 + len("x") + scalarWire) +
			prog.Funcs[0].NumLocals*scalarWire + prog.MaxStack(0)*scalarWire)
		if base != want {
			t.Errorf("base = %d, want %d", base, want)
		}
	})

	t.Run("walker with transient hop strings is boundable", func(t *testing.T) {
		// The hop kwarg is a str on the operand stack mid-statement, but
		// it is consumed by the hop itself: the nav post-state is all
		// scalar, so the transient must not defeat the bound.
		prog := mustCompile(t, `
			k = 0;
			while (k < hops) { k = k + 1; hop(ll = "next"); }
		`)
		base, inherited, ok := prog.StateBound()
		if !ok {
			t.Fatal("scalar walker must be statically boundable")
		}
		sorted := append([]string(nil), inherited...)
		sort.Strings(sorted)
		if want := []string{"hops", "k"}; !equalStrings(sorted, want) {
			t.Errorf("inherited = %v, want %v", inherited, want)
		}
		if base <= snapOverhead {
			t.Errorf("base = %d, want > framing overhead", base)
		}
	})

	refusals := map[string]string{
		`x = array(2);`:                     "aggregate stored to a Messenger variable",
		`x = "abc";`:                        "str stored (concat can grow without bound)",
		`x = $peer;`:                        "top stored (network value unmodeled)",
		`func f(n) { return n; } x = f(1);`: "call frames are unbounded",
		`m = matrix(2, 2); x = m[0];`:       "aggregate stored",
		`a = [1, 2]; a[0] = 3;`:             "setindex can swap elements for larger ones",
	}
	for src, why := range refusals {
		prog := mustCompile(t, src)
		if _, _, ok := prog.StateBound(); ok {
			t.Errorf("StateBound(%q) must refuse: %s", src, why)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
