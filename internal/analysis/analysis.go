// Package analysis is a small, dependency-free static-analysis framework
// for this repository's own invariants, in the shape of golang.org/x/tools'
// go/analysis but built purely on the standard library (go/ast, go/types,
// go/build). cmd/mlint drives it over the module; the analyzers themselves
// live in internal/analysis/analyzers.
//
// The framework exists because the system's correctness arguments lean on
// properties ordinary vet checks do not know about: the simulation engine
// must be deterministic (no wall clock, no global rand, no map-order
// dependence), the wire layer's sticky-error contract must be honored, obs
// names form a namespace, and daemon locks must not be held across blocking
// operations. See docs/ANALYSIS.md for the catalog.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in output ("[simdeterminism]").
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and collects
// its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	// PkgPath is the package's import path. Tests may override it so a
	// testdata package can stand in for a real one (the determinism
	// analyzer decides by path).
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// Shared persists across packages within one driver run, keyed by
	// analyzer name; obsnames uses it to detect cross-package duplicates.
	Shared map[string]any

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Category is the suppression key: a "//lint:<category>" comment on
	// the offending line (or the line above it) silences the finding.
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos under the given suppression category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shorthand for Pass.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// CalleeObj resolves the called function or method of a call expression to
// its types.Object (following selector expressions), or nil for indirect
// calls and type conversions.
func (p *Pass) CalleeObj(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.ObjectOf(fun)
	case *ast.SelectorExpr:
		return p.ObjectOf(fun.Sel)
	}
	return nil
}

// sortDiags orders diagnostics by file, line, column, analyzer for stable
// output.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
