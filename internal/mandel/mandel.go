// Package mandel implements the Mandelbrot-set workload of the paper's
// manager/worker experiment (§3.1.2): computing, for each pixel, the escape
// iteration of z' = z^2 + c over a region of the complex plane, with the
// image divided into a grid of blocks that workers pick up dynamically.
//
// Block results carry their total iteration count so the simulated cluster
// can charge CPU time for exactly the work that was actually performed.
package mandel

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// Region is a rectangle of the complex plane.
type Region struct {
	XMin, YMin, XMax, YMax float64
}

// PaperRegion is the region used throughout the paper's evaluation:
// (-2.0, -1.2, 0.4, 1.2).
var PaperRegion = Region{XMin: -2.0, YMin: -1.2, XMax: 0.4, YMax: 1.2}

// PaperColors is the paper's fixed color count (maximum iterations).
const PaperColors = 512

// Escape returns the first n with |z_n| > 2 for c = cr + ci*i, capped at
// maxIter (the pixel's color index).
func Escape(cr, ci float64, maxIter int) int {
	var zr, zi float64
	for n := 0; n < maxIter; n++ {
		zr2, zi2 := zr*zr, zi*zi
		if zr2+zi2 > 4 {
			return n
		}
		zr, zi = zr2-zi2+cr, 2*zr*zi+ci
	}
	return maxIter
}

// Block is a rectangular sub-image: pixels [X0, X0+W) x [Y0, Y0+H).
type Block struct {
	X0, Y0, W, H int
}

// String renders the block for logs.
func (b Block) String() string { return fmt.Sprintf("%dx%d@(%d,%d)", b.W, b.H, b.X0, b.Y0) }

// Blocks divides a width x height image into a grid x grid decomposition
// (the paper's 8x8, 16x16, and 32x32 grids). Edge blocks absorb remainders.
func Blocks(width, height, grid int) []Block {
	out := make([]Block, 0, grid*grid)
	for by := 0; by < grid; by++ {
		for bx := 0; bx < grid; bx++ {
			x0 := bx * width / grid
			x1 := (bx + 1) * width / grid
			y0 := by * height / grid
			y1 := (by + 1) * height / grid
			out = append(out, Block{X0: x0, Y0: y0, W: x1 - x0, H: y1 - y0})
		}
	}
	return out
}

// ComputeBlock computes a block's pixels. It returns the color indices
// encoded little-endian as 2 bytes per pixel (row-major within the block)
// and the total number of iterations executed — the quantity the cost model
// charges for.
func ComputeBlock(reg Region, width, height int, b Block, maxIter int) ([]byte, int64) {
	pix := make([]byte, 2*b.W*b.H)
	var iters int64
	dx := (reg.XMax - reg.XMin) / float64(width)
	dy := (reg.YMax - reg.YMin) / float64(height)
	i := 0
	for y := b.Y0; y < b.Y0+b.H; y++ {
		ci := reg.YMin + (float64(y)+0.5)*dy
		for x := b.X0; x < b.X0+b.W; x++ {
			cr := reg.XMin + (float64(x)+0.5)*dx
			n := Escape(cr, ci, maxIter)
			if n == maxIter {
				iters += int64(maxIter)
			} else {
				iters += int64(n + 1)
			}
			binary.LittleEndian.PutUint16(pix[i:], uint16(n))
			i += 2
		}
	}
	return pix, iters
}

// Image is an assembled width x height color-index image.
type Image struct {
	W, H int
	Pix  []uint16
}

// NewImage allocates a zeroed image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint16, w*h)}
}

// SetBlock installs a computed block (encoded as by ComputeBlock).
func (img *Image) SetBlock(b Block, data []byte) error {
	if len(data) != 2*b.W*b.H {
		return fmt.Errorf("mandel: block %v data is %d bytes, want %d", b, len(data), 2*b.W*b.H)
	}
	i := 0
	for y := b.Y0; y < b.Y0+b.H; y++ {
		for x := b.X0; x < b.X0+b.W; x++ {
			img.Pix[y*img.W+x] = binary.LittleEndian.Uint16(data[i:])
			i += 2
		}
	}
	return nil
}

// Checksum returns a content hash of the image for cross-implementation
// validation (MESSENGERS vs PVM vs sequential must agree exactly).
func (img *Image) Checksum() uint64 {
	h := fnv.New64a()
	var buf [2]byte
	for _, p := range img.Pix {
		binary.LittleEndian.PutUint16(buf[:], p)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// WritePGM writes the image as a binary 16-bit PGM for visual inspection.
func (img *Image) WritePGM(w io.Writer, maxVal int) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n%d\n", img.W, img.H, maxVal); err != nil {
		return err
	}
	buf := make([]byte, 2*len(img.Pix))
	for i, p := range img.Pix {
		buf[2*i] = byte(p >> 8)
		buf[2*i+1] = byte(p)
	}
	_, err := w.Write(buf)
	return err
}

// ComputeImage computes the whole image sequentially (the paper's
// sequential C baseline) and returns it with the total iteration count.
func ComputeImage(reg Region, width, height, maxIter int) (*Image, int64) {
	img := NewImage(width, height)
	data, iters := ComputeBlock(reg, width, height, Block{W: width, H: height}, maxIter)
	if err := img.SetBlock(Block{W: width, H: height}, data); err != nil {
		panic(err) // sizes are consistent by construction
	}
	return img, iters
}
