// Package lan models the paper's physical testbed: SPARCstation-class
// workstations on a shared 10 Mb/s Ethernet.
//
// The paper's experiments ran on hardware we do not have, so the benchmark
// harness substitutes this discrete-event model (see DESIGN.md §1). The
// model charges simulated time for exactly the activities the paper's
// performance discussion identifies: CPU work (real computed iteration and
// flop counts times calibrated per-operation costs, with a cache-spill
// penalty), per-message and per-fragment software overheads, data copying
// (pack/unpack and daemon routing for PVM; single-copy state transfer for
// MESSENGERS), and the serialized shared Ethernet bus.
package lan

import (
	"fmt"

	"messengers/internal/sim"
)

// HostSpec describes one workstation model. Costs in CostModel are
// calibrated at 110 MHz (SPARCstation 5/110); a host scales them by
// 110/MHz.
type HostSpec struct {
	Name string
	// MHz is the clock rate used to scale CPU costs.
	MHz float64
	// CacheBytes is the effective cache capacity for the matrix cache
	// model (the 170 MHz TurboSPARC machines had a large external cache).
	CacheBytes float64
	// MacMissX is the calibrated maximum cache-penalty multiplier for the
	// block-multiply cost curve (see MacCost).
	MacMissX float64
}

// The two workstation models used in the paper's experiments.
var (
	// SPARC110 is the SPARCstation 5 at 110 MHz (Mandelbrot and the 2x2
	// matrix grid).
	SPARC110 = HostSpec{Name: "SS5/110", MHz: 110, CacheBytes: 256 << 10, MacMissX: 3.3}
	// SPARC170 is the SPARCstation 5 at 170 MHz (the 3x3 matrix grid).
	SPARC170 = HostSpec{Name: "SS5/170", MHz: 170, CacheBytes: 512 << 10, MacMissX: 0.9}
)

// scale converts a cost calibrated at 110 MHz to this host's clock.
func (s HostSpec) scale(base sim.Time) sim.Time {
	if s.MHz <= 0 {
		return base
	}
	return sim.Time(float64(base) * 110 / s.MHz)
}

// CostModel holds every calibrated constant of the simulation. All CPU
// costs are expressed at 110 MHz and scaled per host. Defaults come from
// DefaultCostModel; the ablation benchmarks override individual fields.
type CostModel struct {
	// --- Ethernet (10 Mb/s shared bus) ---

	// WirePerByte is the transmission time per payload byte (0.8 us/B at
	// 10 Mb/s).
	WirePerByte sim.Time
	// FrameOverhead is per-Ethernet-frame time (preamble, header, CRC,
	// inter-frame gap, driver work serialized on the medium).
	FrameOverhead sim.Time
	// FramePayload is the usable payload per Ethernet frame.
	FramePayload int
	// PropDelay is the propagation plus interrupt-dispatch delay between
	// the end of transmission and delivery at the receiver.
	PropDelay sim.Time

	// --- MESSENGERS daemon costs (at 110 MHz) ---

	// PerInstr is the bytecode-interpretation cost per VM instruction.
	PerInstr sim.Time
	// MsgrHopFixed is the fixed daemon cost to dispatch one Messenger on
	// a navigational statement (match destinations, schedule).
	MsgrHopFixed sim.Time
	// MsgrSendPerByte is the per-byte cost to serialize the Messenger
	// state into the outgoing stream (the single copy; the paper's point
	// is that there is no separate user-level packing step).
	MsgrSendPerByte sim.Time
	// MsgrRecvPerByte is the per-byte cost to install the arriving state.
	MsgrRecvPerByte sim.Time
	// MsgrCodeCached reflects the shared-file-system optimization: when
	// true (the paper's system), bytecode is not carried on hops.
	MsgrCodeCached bool

	// --- PVM baseline costs (at 110 MHz) ---

	// PVMSendFixed is the fixed per-send software cost (syscall, pvmd
	// handoff).
	PVMSendFixed sim.Time
	// PVMRecvFixed is the fixed per-receive software cost.
	PVMRecvFixed sim.Time
	// PVMPackPerByte is the user-level pack copy at the sender.
	PVMPackPerByte sim.Time
	// PVMUnpackPerByte is the user-level unpack copy at the receiver.
	PVMUnpackPerByte sim.Time
	// PVMRoutePerByte is the pvmd routing copy charged on each endpoint
	// host (task<->pvmd transfer), the indirection Messengers avoids.
	PVMRoutePerByte sim.Time
	// PVMFragSize is the pvmd datagram fragment size (~4 KB in PVM 3.3).
	PVMFragSize int
	// PVMFragFixed is the per-fragment processing cost at each pvmd.
	PVMFragFixed sim.Time
	// PVMWindow is the number of fragments a sender may have
	// unacknowledged; acknowledgements are generated only after the
	// receiving host's CPU processes the fragment, so a busy receiver
	// (the manager) throttles all senders.
	PVMWindow int
	// PVMAckBytes is the size of a fragment acknowledgement on the wire.
	PVMAckBytes int
	// PVMSpawnCost is the per-task cost of pvm_spawn, serialized at the
	// spawning host (process startup via pvmd).
	PVMSpawnCost sim.Time
	// PVMRxBuffer is the receiving pvmd's datagram buffer capacity in
	// bytes. PVM 3.3 routed fragments over UDP: fragments arriving while
	// the buffer is full are dropped and retransmitted after a fixed
	// timeout. Large result blocks from many workers bursting into one
	// manager overflow this buffer — the congestion collapse behind the
	// paper's most-favorable-case gap (Fig. 7). The MESSENGERS daemons
	// use flow-controlled streams and never drop.
	PVMRxBuffer int
	// PVMRetransmit is the fixed retransmission timeout for dropped
	// fragments.
	PVMRetransmit sim.Time

	// --- Application kernels (at 110 MHz) ---

	// MandelPerIter is the cost of one z = z^2 + c iteration.
	MandelPerIter sim.Time
	// MandelPerPixel is the per-pixel loop overhead.
	MandelPerPixel sim.Time
	// MacBase is the in-cache cost of one multiply-accumulate in the
	// matrix kernels.
	MacBase sim.Time
	// MacKnee controls where the cache penalty turns on, as a multiple of
	// the host's cache size (see MacCost).
	MacKnee float64
	// MemPerByte is the cost of a plain memory copy (used by deposit and
	// next_task bookkeeping).
	MemPerByte sim.Time
	// CallFixed is the fixed cost of a native-function call or small
	// library operation.
	CallFixed sim.Time
}

// DefaultCostModel returns the calibrated model. Calibration targets and
// methodology are documented in EXPERIMENTS.md; the mechanisms are the ones
// the paper identifies in §2.1 and §3.
func DefaultCostModel() *CostModel {
	return &CostModel{
		WirePerByte:   sim.Time(0.8 * float64(sim.Microsecond)),
		FrameOverhead: 60 * sim.Microsecond,
		FramePayload:  1460,
		PropDelay:     150 * sim.Microsecond,

		PerInstr:        2 * sim.Microsecond,
		MsgrHopFixed:    1500 * sim.Microsecond,
		MsgrSendPerByte: sim.Time(0.12 * float64(sim.Microsecond)),
		MsgrRecvPerByte: sim.Time(0.08 * float64(sim.Microsecond)),
		MsgrCodeCached:  true,

		PVMSendFixed:     400 * sim.Microsecond,
		PVMRecvFixed:     300 * sim.Microsecond,
		PVMPackPerByte:   sim.Time(0.25 * float64(sim.Microsecond)),
		PVMUnpackPerByte: sim.Time(0.25 * float64(sim.Microsecond)),
		PVMRoutePerByte:  sim.Time(0.9 * float64(sim.Microsecond)),
		PVMFragSize:      4080,
		PVMFragFixed:     600 * sim.Microsecond,
		PVMWindow:        3,
		PVMAckBytes:      64,
		PVMSpawnCost:     30 * sim.Millisecond,
		PVMRxBuffer:      32 << 10,
		PVMRetransmit:    sim.Second,

		MandelPerIter:  sim.Time(1.1 * float64(sim.Microsecond)),
		MandelPerPixel: 3 * sim.Microsecond,
		MacBase:        90 * sim.Nanosecond,
		MacKnee:        10,
		MemPerByte:     sim.Time(0.05 * float64(sim.Microsecond)),
		CallFixed:      40 * sim.Microsecond,
	}
}

// Clone returns a copy of the model for per-experiment overrides.
func (cm *CostModel) Clone() *CostModel {
	c := *cm
	return &c
}

// FastEthernet returns a copy of the model on a 100 Mb/s segment. The
// paper's 3x3-grid experiments (Fig. 12(b), 170 MHz machines) report
// speedups that exceed the capacity bound of a 10 Mb/s shared segment for
// the algorithm's data volume (n=1500 moves ~90 MB; at 1.25 MB/s that alone
// is ~72 s against a reported ~50 s total), so that testbed must have been
// on Fast Ethernet; see EXPERIMENTS.md.
func (cm *CostModel) FastEthernet() *CostModel {
	c := cm.Clone()
	c.WirePerByte /= 10
	c.FrameOverhead = 10 * sim.Microsecond
	c.PropDelay = 50 * sim.Microsecond
	return c
}

// WireTime is the bus occupancy for a message of the given size, including
// per-frame overheads.
func (cm *CostModel) WireTime(bytes int) sim.Time {
	if bytes <= 0 {
		return cm.FrameOverhead
	}
	frames := (bytes + cm.FramePayload - 1) / cm.FramePayload
	return sim.Time(frames)*cm.FrameOverhead + sim.Time(bytes)*cm.WirePerByte
}

// Frags returns the number of pvmd fragments for a message.
func (cm *CostModel) Frags(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + cm.PVMFragSize - 1) / cm.PVMFragSize
}

// MacCost returns the per-multiply-accumulate cost for a block operation of
// dimension s, calibrated at 110 MHz (the executing host scales it once;
// use ScaleFor for sequential runs with no host object). The working set of
// an s-by-s block multiply is three 8*s*s-byte blocks; once it spills the
// host's cache the effective cost rises smoothly toward
// (1 + MacMissX) * MacBase:
//
//	cost = MacBase * (1 + MacMissX * F/(F + MacKnee*CacheBytes)),  F = 24 s^2
//
// This reproduces the paper's observation that block-partitioning a
// sequential multiply is faster than the naive triple loop (~13% at n=1500
// partitioned into 500-blocks) and that per-processor blocks yield
// superlinear speedup over the naive algorithm.
func (cm *CostModel) MacCost(s int, spec HostSpec) sim.Time {
	f := 24 * float64(s) * float64(s)
	penalty := 1 + spec.MacMissX*f/(f+cm.MacKnee*spec.CacheBytes)
	return sim.Time(float64(cm.MacBase) * penalty)
}

// MandelCost returns the 110 MHz-calibrated CPU cost of computing a pixel
// block that executed iters total iterations over px pixels.
func (cm *CostModel) MandelCost(iters, px int64, spec HostSpec) sim.Time {
	_ = spec // cost is host-independent; the executing host applies scaling
	return sim.Time(iters)*cm.MandelPerIter + sim.Time(px)*cm.MandelPerPixel
}

// ScaleFor converts a 110 MHz-calibrated cost to wall time on the given
// host model, for sequential baselines that run outside the cluster.
func (cm *CostModel) ScaleFor(spec HostSpec, t sim.Time) sim.Time {
	return spec.scale(t)
}

// String summarizes the key rates for logs.
func (cm *CostModel) String() string {
	return fmt.Sprintf("costmodel{wire=%.2fMB/s frag=%dB window=%d hopFixed=%v}",
		1e3/float64(cm.WirePerByte), cm.PVMFragSize, cm.PVMWindow, cm.MsgrHopFixed)
}
