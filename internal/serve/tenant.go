package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"messengers/internal/bytecode"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// Quota bounds one tenant's resource consumption. Zero values mean
// unlimited for budgets and rates; bursts default to one second of rate.
type Quota struct {
	// StepBudget is the VM instruction budget per session, enforced by the
	// step meter across every Messenger (and clone) the session spawns.
	StepBudget int64 `json:"step_budget"`
	// MemBudget caps the serialized Messenger state size in bytes, checked
	// at nav boundaries before the Messenger replicates.
	MemBudget int `json:"mem_budget"`
	// HopRate/HopBurst form the hop-rate token bucket (hops per second),
	// charged at nav boundaries, one token per replica.
	HopRate  float64 `json:"hop_rate"`
	HopBurst float64 `json:"hop_burst"`
	// InjectRate/InjectBurst form the session-admission token bucket
	// (sessions per second).
	InjectRate  float64 `json:"inject_rate"`
	InjectBurst float64 `json:"inject_burst"`
	// MaxQueue caps queued submissions awaiting admission; past it the
	// server rejects with explicit backpressure. Zero queues nothing:
	// submissions are admitted now or rejected now.
	MaxQueue int `json:"max_queue"`
	// MaxLive caps concurrently live sessions (0 = unlimited).
	MaxLive int `json:"max_live"`
	// MaxProgram caps submitted program size in bytes (0 = unlimited).
	MaxProgram int `json:"max_program"`
}

// TenantConfig declares one tenant account.
type TenantConfig struct {
	ID string `json:"id"`
	Quota
}

// bucket is a token bucket over engine time (virtual on the sim engine,
// wall time on real transports). Caller synchronizes.
type bucket struct {
	rate   float64 // tokens per sim.Second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   sim.Time
}

func newBucket(rate, burst float64) bucket {
	if burst <= 0 {
		burst = rate // default burst: one second of rate
	}
	if burst < 1 {
		burst = 1
	}
	return bucket{rate: rate, burst: burst, tokens: burst}
}

func (b *bucket) refill(now sim.Time) {
	if now > b.last {
		b.tokens += b.rate * float64(now-b.last) / float64(sim.Second)
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// take debits n tokens if available.
func (b *bucket) take(now sim.Time, n float64) bool {
	if b.rate <= 0 {
		return true
	}
	b.refill(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// wait returns how long until n tokens accumulate (0 when available now).
func (b *bucket) wait(now sim.Time, n float64) sim.Time {
	if b.rate <= 0 {
		return 0
	}
	b.refill(now)
	if b.tokens >= n {
		return 0
	}
	return sim.Time((n - b.tokens) / b.rate * float64(sim.Second))
}

// acctObs is one tenant's metric instruments (nil registry ⇒ nil-safe
// no-op instruments, so accounts hold them unconditionally).
type acctObs struct {
	admitted, rejected, evicted, completed *obs.Counter
	steps, hops                            *obs.Counter
	queue, live                            *obs.Gauge
}

func newAcctObs(m *obs.Metrics, id string) *acctObs {
	name := func(suffix string) string { return "serve.tenant." + id + "." + suffix }
	return &acctObs{
		//lint:obsname per-tenant series, bounded by the tenant config
		admitted: m.Counter(name("admitted")),
		//lint:obsname per-tenant series, bounded by the tenant config
		rejected: m.Counter(name("rejected")),
		//lint:obsname per-tenant series, bounded by the tenant config
		evicted: m.Counter(name("evicted")),
		//lint:obsname per-tenant series, bounded by the tenant config
		completed: m.Counter(name("completed")),
		//lint:obsname per-tenant series, bounded by the tenant config
		steps: m.Counter(name("steps")),
		//lint:obsname per-tenant series, bounded by the tenant config
		hops: m.Counter(name("hops")),
		//lint:obsname per-tenant series, bounded by the tenant config
		queue: m.Gauge(name("queue")),
		//lint:obsname per-tenant series, bounded by the tenant config
		live: m.Gauge(name("live")),
	}
}

// account is one tenant's admission state.
type account struct {
	id string
	q  Quota

	// mu guards the buckets and the submission queue.
	mu    sync.Mutex
	hopTB bucket
	injTB bucket
	queue []*pending

	live            atomic.Int64
	admitted        atomic.Int64
	rejected        atomic.Int64
	illTyped        atomic.Int64
	evicted         atomic.Int64
	completed       atomic.Int64
	steps           atomic.Int64
	hops            atomic.Int64
	maxSessionSteps atomic.Int64
	violations      atomic.Int64

	om *acctObs
}

func newAccount(cfg TenantConfig, m *obs.Metrics) *account {
	return &account{
		id:    cfg.ID,
		q:     cfg.Quota,
		hopTB: newBucket(cfg.HopRate, cfg.HopBurst),
		injTB: newBucket(cfg.InjectRate, cfg.InjectBurst),
		om:    newAcctObs(m, cfg.ID),
	}
}

// pending is one submission: admitted immediately or parked in the
// tenant's queue until the admission bucket and live cap allow it.
type pending struct {
	id     uint64
	prog   *bytecode.Program
	node   string
	daemon int
	vars   map[string]value.Value
	enq    sim.Time
}

// maxAllowance is the step allowance reported for unlimited sessions —
// effectively infinite, but small enough that the VM's own arithmetic on
// the limit cannot overflow.
const maxAllowance = int64(1) << 60

// session is one admitted session's quota gate. It implements
// core.SessionGate; every method may run concurrently on multiple daemon
// executors (the session's clones execute in parallel).
type session struct {
	acct      *account
	id        uint64
	budget    int64
	start     sim.Time
	stepsLeft atomic.Int64
	live      atomic.Int64
	evict     atomic.Bool
	reason    atomic.Value // string
}

func (ss *session) markEvicted(reason string) {
	if ss.evict.CompareAndSwap(false, true) {
		ss.reason.Store(reason)
	}
}

// Allowance implements vm.StepMeter: the session's remaining instruction
// allowance, shared by all of its Messengers.
func (ss *session) Allowance() int64 {
	if ss.budget <= 0 {
		return maxAllowance
	}
	a := ss.stepsLeft.Load()
	if a <= 0 {
		ss.markEvicted("step budget exhausted")
	}
	return a
}

// Charge implements vm.StepMeter: debits executed instructions.
func (ss *session) Charge(n int64) {
	if n == 0 {
		return
	}
	ss.acct.steps.Add(n)
	ss.acct.om.steps.Add(n)
	if ss.budget > 0 {
		ss.stepsLeft.Add(-n)
	}
}

// ChargeHop debits n hops from the tenant's hop-rate bucket.
func (ss *session) ChargeHop(now sim.Time, n int) error {
	a := ss.acct
	a.mu.Lock()
	ok := a.hopTB.take(now, float64(n))
	a.mu.Unlock()
	if !ok {
		err := fmt.Errorf("serve: tenant %q hop rate exceeded", a.id)
		ss.markEvicted(err.Error())
		return err
	}
	a.hops.Add(int64(n))
	a.om.hops.Add(int64(n))
	return nil
}

// Evicted records that a daemon destroyed one of the session's
// Messengers over quota.
func (ss *session) Evicted(err error) { ss.markEvicted(err.Error()) }

// CheckMem vets the Messenger's serialized size against the tenant's
// value-memory cap.
func (ss *session) CheckMem(bytes int) error {
	if mb := ss.acct.q.MemBudget; mb > 0 && bytes > mb {
		err := fmt.Errorf("serve: tenant %q messenger state %dB exceeds cap %dB", ss.acct.id, bytes, mb)
		ss.markEvicted(err.Error())
		return err
	}
	return nil
}

// deniedGate is the gate for sessions the server does not know — typically
// an at-least-once recovery respawn of a session that already completed.
// Zero allowance makes the daemon evict the Messenger before it executes a
// single instruction, so a finished session can never exceed its budget
// through re-execution.
type deniedGate struct{}

func (deniedGate) Allowance() int64 { return 0 }
func (deniedGate) Charge(int64)     {}
func (deniedGate) ChargeHop(sim.Time, int) error {
	return fmt.Errorf("serve: session no longer live")
}
func (deniedGate) CheckMem(int) error { return nil }
func (deniedGate) Evicted(error)      {}
