// Package sim is a deterministic discrete-event simulation kernel.
//
// It provides two complementary programming models on one virtual clock:
//
//   - an event API (At/After) for event-driven components such as the
//     MESSENGERS daemons and the Ethernet model, and
//   - a process API (Spawn + Proc.Advance/Park) in the style of process-based
//     simulators, so sequentially written task code — notably the PVM
//     baseline programs with their blocking receive calls — can run under
//     simulated time without being rewritten as state machines.
//
// The kernel is single-threaded from the simulation's point of view: exactly
// one event callback or one process is running at any moment, and events fire
// in (time, insertion-sequence) order, so every run is deterministic.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring the time package for simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a simulated duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time in seconds for logs and tables.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// event is a scheduled callback.
type event struct {
	at     Time
	seq    uint64
	fn     func()
	idx    int // heap index; -1 when removed
	cancel bool
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	k *Kernel
	e *event
}

// Cancel removes the event from the schedule; it is a no-op if the event
// already fired or was cancelled.
func (h Handle) Cancel() {
	if h.e == nil || h.e.fn == nil {
		return
	}
	h.e.cancel = true
	h.e.fn = nil
}

// Kernel is a discrete-event scheduler. The zero value is not usable; use
// New.
type Kernel struct {
	now     Time
	seq     uint64
	pq      eventHeap
	procs   int // live (spawned, not yet finished) processes
	parked  int // processes blocked in Park with no pending wake
	stopped bool
	failure any // panic value captured from a process

	allProcs []*Proc
}

// New returns an empty kernel at time zero.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn at absolute time t. Scheduling in the past is an error in
// the simulation logic and panics.
func (k *Kernel) At(t Time, fn func()) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.pq, e)
	return Handle{k: k, e: e}
}

// After schedules fn d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Pending reports the number of scheduled (uncancelled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.pq {
		if !e.cancel {
			n++
		}
	}
	return n
}

// Parked reports how many processes are blocked with no pending wake-up.
// A nonzero value when Run returns indicates a deadlock in the simulated
// system (e.g. a PVM receive with no matching send).
func (k *Kernel) Parked() int { return k.parked }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step fires the single next event. It reports false when no events remain.
func (k *Kernel) Step() bool {
	for len(k.pq) > 0 {
		e := heap.Pop(&k.pq).(*event)
		if e.cancel {
			continue
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil
		fn()
		if k.failure != nil {
			f := k.failure
			k.failure = nil
			panic(f)
		}
		return true
	}
	return false
}

// Run fires events until none remain or Stop is called. It returns the
// final simulated time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
	return k.now
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopped = false
	for !k.stopped {
		if len(k.pq) == 0 || k.pq[0].at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}
