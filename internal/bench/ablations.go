package bench

import (
	"fmt"

	"messengers/internal/apps"
	"messengers/internal/compile"
	"messengers/internal/core"
	"messengers/internal/gvt"
	"messengers/internal/lan"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// RunA1CopyAblation quantifies §2.1's copy-avoidance claim: rerun the
// Fig. 7 configuration with the MESSENGERS state transfer charged at
// PVM-style rates (a user-level pack copy at the sender plus an unpack copy
// and daemon routing copy at the receiver).
func RunA1CopyAblation(cm *lan.CostModel, size, grid int, procs []int) (*Table, error) {
	withCopies := cm.Clone()
	withCopies.MsgrSendPerByte = cm.PVMPackPerByte + cm.PVMRoutePerByte
	withCopies.MsgrRecvPerByte = cm.PVMUnpackPerByte + cm.PVMRoutePerByte

	t := &Table{
		Title:   fmt.Sprintf("A1: copy avoidance (MESSENGERS state transfer charged at PVM copy rates), Mandelbrot %dx%d grid %dx%d", size, size, grid, grid),
		Columns: []string{"workload", "zero-copy transfer", "PVM-style copies", "slowdown"},
	}
	for _, p := range procs {
		params := apps.PaperMandelParams(size, grid, p)
		base, err := apps.MandelMessengers(cm, params)
		if err != nil {
			return nil, err
		}
		copies, err := apps.MandelMessengers(withCopies, params)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("mandel P=%d", p), secs(base.Elapsed), secs(copies.Elapsed),
			ratio(copies.Elapsed, base.Elapsed),
		})
	}
	// The claim bites hardest where Messengers carry large data blocks:
	// the matmul rotation at big block sizes.
	for _, s := range []int{200, 500} {
		params := apps.MatmulParams{M: 2, S: s, Host: lan.SPARC110, Seed: 1, SkipArithmetic: true}
		base, err := apps.MatmulMessengers(cm, params)
		if err != nil {
			return nil, err
		}
		copies, err := apps.MatmulMessengers(withCopies, params)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("matmul 2x2 s=%d", s), secs(base.Elapsed), secs(copies.Elapsed),
			ratio(copies.Elapsed, base.Elapsed),
		})
	}
	return t, nil
}

// RunA2GVTStrategies compares the conservative and optimistic (Time Warp)
// virtual-time executors on a PHOLD workload spread over hosts, reporting
// simulated completion time, rollbacks, and control traffic.
func RunA2GVTStrategies(cm *lan.CostModel, hosts, lps int, horizon float64) (*Table, error) {
	build := func() (gvt.Config, []gvt.Event) {
		cluster := lan.NewCluster(sim.New(), cm, hosts, lan.SPARC110)
		cfg := gvt.Config{
			Cluster:   cluster,
			NumLPs:    lps,
			InitState: func(int) gvt.State { return gvt.IntState{} },
			EventCPU:  300 * sim.Microsecond,
			Window:    1.0, // bounded optimism; unbounded thrashes on PHOLD
			Handler: func(ctx *gvt.Ctx, ev gvt.Event) {
				st := ctx.State().(gvt.IntState)
				st["count"]++
				h := uint64(ev.Data)*2654435761 + uint64(ctx.LP())*97
				// Skewed service times: some LPs race ahead, which is
				// where the two strategies differ most.
				delay := 0.05 + float64(h%13)/20
				if at := ctx.Now() + delay; at < horizon {
					ctx.Send(gvt.Event{At: at, To: int(h % uint64(lps)), Data: ev.Data + 1, Size: 256})
				}
			},
		}
		var inject []gvt.Event
		for i := 0; i < lps; i++ {
			inject = append(inject, gvt.Event{At: 0.001 * float64(i+1), To: i, Data: int64(i), Size: 256})
		}
		return cfg, inject
	}

	csCfg, csInj := build()
	csStats, _, err := gvt.RunConservative(csCfg, csInj)
	if err != nil {
		return nil, err
	}
	twCfg, twInj := build()
	twStats, _, err := gvt.RunTimeWarp(twCfg, twInj)
	if err != nil {
		return nil, err
	}
	if committed := twStats.Events - twStats.RolledBack; committed != csStats.Events {
		return nil, fmt.Errorf("bench: A2 strategies disagree: %d vs %d committed events",
			committed, csStats.Events)
	}

	t := &Table{
		Title:   fmt.Sprintf("A2: GVT strategies, PHOLD with %d LPs on %d hosts (horizon %v)", lps, hosts, horizon),
		Columns: []string{"strategy", "sim time", "events", "rollbacks", "rolled back", "anti-msgs", "control msgs", "rounds"},
	}
	row := func(name string, s gvt.Stats) []string {
		return []string{
			name, secs(s.Elapsed),
			fmt.Sprintf("%d", s.Events),
			fmt.Sprintf("%d", s.Rollbacks),
			fmt.Sprintf("%d", s.RolledBack),
			fmt.Sprintf("%d", s.AntiMessages),
			fmt.Sprintf("%d", s.ControlMsgs),
			fmt.Sprintf("%d", s.Rounds),
		}
	}
	t.Rows = append(t.Rows, row("conservative", csStats), row("optimistic", twStats))
	return t, nil
}

// mslBlockMultiply multiplies node.A and node.B into node.C entirely in
// interpreted MSL (A3: the cost of staying in bytecode instead of calling a
// native-mode function).
const mslBlockMultiply = `
	a = node.A;
	b = node.B;
	c = node.C;
	n = rows(a);
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			sum = 0.0;
			for (k = 0; k < n; k++) {
				sum = sum + matget(a, i, k) * matget(b, k, j);
			}
			matset(c, i, j, sum);
		}
	}
`

// RunA3InterpreterOverhead measures the interpreted-vs-native gap for an
// s x s block multiply executed by a Messenger on one simulated host.
func RunA3InterpreterOverhead(cm *lan.CostModel, sizes []int) (*Table, error) {
	t := &Table{
		Title:   "A3: interpreter overhead, s x s block multiply by one Messenger",
		Columns: []string{"s", "native-mode", "interpreted MSL", "slowdown"},
	}
	for _, s := range sizes {
		native, err := a3Run(cm, s, false)
		if err != nil {
			return nil, err
		}
		interp, err := a3Run(cm, s, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s), secs(native), secs(interp), ratio(interp, native),
		})
	}
	return t, nil
}

func a3Run(cm *lan.CostModel, s int, interpreted bool) (sim.Time, error) {
	k := sim.New()
	cluster := lan.NewCluster(k, cm, 1, lan.SPARC110)
	sys := core.NewSystem(core.NewSimEngine(cluster), core.FullMesh(1))
	sys.RegisterNative("block_multiply_native", func(ctx *core.NativeCtx, _ []value.Value) (value.Value, error) {
		ctx.Charge(sim.Time(float64(s*s*s) * float64(cm.MacCost(s, ctx.HostSpec()))))
		return value.Nil(), nil
	})
	src := mslBlockMultiply
	if !interpreted {
		src = `x = block_multiply_native();`
	}
	prog, err := compile.Compile("a3", src)
	if err != nil {
		return 0, err
	}
	sys.Register(prog)
	init := sys.Daemon(0).Store().Init()
	mk := func() value.Value { return value.Matrix(value.NewMat(s, s)) }
	init.Vars["A"], init.Vars["B"], init.Vars["C"] = mk(), mk(), mk()
	if err := sys.Inject(0, "a3", nil); err != nil {
		return 0, err
	}
	elapsed := k.Run()
	if errs := sys.Errors(); len(errs) > 0 {
		return 0, errs[0]
	}
	return elapsed, nil
}

// RunA4CodeCarrying compares the shared-code registry (the paper's
// shared-file-system optimization: only a hash travels with a Messenger)
// against shipping the bytecode on every hop.
func RunA4CodeCarrying(cm *lan.CostModel, size, grid, procs int) (*Table, error) {
	carrying := cm.Clone()
	carrying.MsgrCodeCached = false

	params := apps.PaperMandelParams(size, grid, procs)
	base, err := apps.MandelMessengers(cm, params)
	if err != nil {
		return nil, err
	}
	carried, err := apps.MandelMessengers(carrying, params)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("A4: code carrying, Mandelbrot %dx%d grid %dx%d P=%d", size, size, grid, grid, procs),
		Columns: []string{"mode", "time", "bus bytes", "slowdown"},
	}
	t.Rows = append(t.Rows,
		[]string{"shared registry (hash only)", secs(base.Elapsed), fmt.Sprintf("%d", base.Obs.CounterValue("bus.bytes")), "1.00"},
		[]string{"bytecode on every hop", secs(carried.Elapsed), fmt.Sprintf("%d", carried.Obs.CounterValue("bus.bytes")), ratio(carried.Elapsed, base.Elapsed)},
	)
	return t, nil
}
