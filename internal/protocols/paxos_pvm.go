package protocols

import (
	"fmt"

	"messengers/internal/faults"
	"messengers/internal/obs"
	"messengers/internal/pvm"
)

// Single-decree Paxos as stationary PVM tasks — the message-passing
// baseline for paxos_msgr.go. Same role layout (proposer tasks on hosts 0
// and 1, acceptor tasks on hosts 2..4), same ballot schedule, same safety
// obligations; but where the Messenger version rendezvouses through node
// variables and rides the runtime's recovery layer, the tasks here keep
// protocol state in task-local variables and speak request/response over
// the hand-rolled reliable transport (rt).
//
// Message kinds (first payload word):
const (
	pxPrepare  = 1 // [kind, ballot]
	pxPromise  = 2 // [kind, ballot, ok, hasAccepted, aballot, aval]
	pxAccept   = 3 // [kind, ballot, val]
	pxAccepted = 4 // [kind, ballot, ok]
	pxDone     = 5 // [kind]
)

func paxosValStr(v int64) string { return fmt.Sprintf("v%d", v) }

func paxosPVMAcceptor(idx int, env *pvmEnv) func(p *pvm.Proc, r *rt) {
	return func(p *pvm.Proc, r *rt) {
		var promised, aballot, aval int64 // 0 = none: ballots start at 1
		hasAccepted := int64(0)
		done := map[pvm.TID]bool{}
		budget := env.budget()
		for len(done) < paxosProposers {
			msg := r.recv(&budget)
			if msg == nil {
				break // proposer crashed without a done; budget is the backstop
			}
			switch msg.Vals[0] {
			case pxPrepare:
				b := msg.Vals[1]
				ok := int64(0)
				if b > promised {
					promised = b
					ok = 1
					env.rec.Record(EvPromise, idx, b, "")
				}
				r.send(msg.Src, pxPromise, b, ok, hasAccepted, aballot, aval)
			case pxAccept:
				b, v := msg.Vals[1], msg.Vals[2]
				ok := int64(0)
				if b >= promised {
					promised, aballot, aval, hasAccepted = b, b, v, 1
					ok = 1
					env.rec.Record(EvAccept, idx, b, paxosValStr(v))
				}
				r.send(msg.Src, pxAccepted, b, ok)
			case pxDone:
				done[msg.Src] = true
			}
		}
		r.flush(&budget)
	}
}

func paxosPVMProposer(pid int, acceptors []pvm.TID, env *pvmEnv) func(p *pvm.Proc, r *rt) {
	return func(p *pvm.Proc, r *rt) {
		budget := env.budget()
		decided := false
		for round := 0; round < paxosMaxRounds && !decided; round++ {
			b := int64(round*paxosProposers + pid + 1)
			env.rec.Record(EvRound, pid, b, "")
			for _, a := range acceptors {
				r.send(a, pxPrepare, b)
			}
			// Phase 1: collect promises for this ballot until quorum or the
			// round's share of the budget runs out.
			roundBudget := min(budget, budget/(paxosMaxRounds-round)+1)
			budget -= roundBudget
			promises, bestB, bestV := 0, int64(0), int64(pid)
			for promises < paxosQuorum {
				msg := r.recv(&roundBudget)
				if msg == nil {
					break
				}
				if msg.Vals[0] != pxPromise || msg.Vals[1] != b {
					continue // stale round traffic
				}
				if msg.Vals[2] == 0 {
					continue // rejection: a higher ballot got there first
				}
				promises++
				if msg.Vals[3] == 1 && msg.Vals[4] > bestB {
					bestB, bestV = msg.Vals[4], msg.Vals[5]
				}
			}
			if promises < paxosQuorum {
				budget += roundBudget
				continue
			}
			// Phase 2: the highest accepted value wins, else our own.
			for _, a := range acceptors {
				r.send(a, pxAccept, b, bestV)
			}
			accepts := 0
			for accepts < paxosQuorum {
				msg := r.recv(&roundBudget)
				if msg == nil {
					break
				}
				if msg.Vals[0] != pxAccepted || msg.Vals[1] != b {
					continue
				}
				if msg.Vals[2] == 0 {
					continue
				}
				accepts++
			}
			budget += roundBudget
			if accepts >= paxosQuorum {
				env.rec.Record(EvDecide, pid, b, paxosValStr(bestV))
				decided = true
			}
		}
		for _, a := range acceptors {
			r.send(a, pxDone)
		}
		r.flush(&budget)
	}
}

// runPaxosPVM executes one seeded Paxos run on the PVM baseline. The seed
// only varies the fault plan — the ballot schedule itself is fixed, as in
// the Messenger version.
func runPaxosPVM(engine string, seed uint64, plan *faults.Plan, rec *Recorder, m *obs.Metrics) error {
	env, err := newPVMEnv(engine, paxosProposers+paxosAcceptors, plan, rec, m)
	if err != nil {
		return err
	}
	acceptors := make([]pvm.TID, paxosAcceptors)
	for a := 0; a < paxosAcceptors; a++ {
		acceptors[a] = env.spawn(fmt.Sprintf("acc%d", a), paxosProposers+a, paxosPVMAcceptor(a, env))
	}
	var leader pvm.TID
	for p := 0; p < paxosProposers; p++ {
		tid := env.spawn(fmt.Sprintf("prop%d", p), p, paxosPVMProposer(p, acceptors, env))
		if p == 0 {
			leader = tid
		}
	}
	schedulePlanKills(env, plan, leader)
	return env.run()
}

// schedulePlanKills renders the plan's daemon-0 crashes onto the leader
// task. Partitions, drops, and storms flow through the injector; crashes
// are the one fault with no wire representation.
func schedulePlanKills(env *pvmEnv, plan *faults.Plan, leader pvm.TID) {
	if plan == nil {
		return
	}
	for _, c := range plan.Crashes {
		if c.Daemon == 0 {
			env.scheduleKill(leader, c.At)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
