package gvt

import (
	"fmt"
	"testing"

	"messengers/internal/lan"
	"messengers/internal/sim"
)

// newCluster builds a fresh simulated cluster for one run.
func newCluster(n int) *lan.Cluster {
	return lan.NewCluster(sim.New(), lan.DefaultCostModel(), n, lan.SPARC110)
}

// pholdConfig builds a PHOLD-style workload: every event bumps a counter
// and forwards a new event to a deterministically pseudo-random LP until
// the time horizon.
func pholdConfig(cluster *lan.Cluster, nLPs int, horizon float64) Config {
	return Config{
		Cluster:   cluster,
		NumLPs:    nLPs,
		InitState: func(int) State { return IntState{} },
		EventCPU:  200 * sim.Microsecond,
		Handler: func(ctx *Ctx, ev Event) {
			st := ctx.State().(IntState)
			st["count"]++
			st["sum"] += ev.Data
			// Deterministic pseudo-random next hop and delay.
			h := uint64(ev.Data)*2654435761 + uint64(ctx.LP())*97 + uint64(ev.At*1000)
			next := int(h % uint64(nLPs))
			delay := 0.1 + float64(h%7)/10
			if at := ctx.Now() + delay; at < horizon {
				ctx.Send(Event{At: at, To: next, Data: ev.Data + 1, Size: 128})
			}
		},
	}
}

func pholdInject(nLPs int) []Event {
	var evs []Event
	for i := 0; i < nLPs; i++ {
		evs = append(evs, Event{At: 0.01 * float64(i+1), To: i, Data: int64(i), Size: 128})
	}
	return evs
}

// totals sums a counter across final states.
func totals(states []State, key string) int64 {
	var t int64
	for _, s := range states {
		t += s.(IntState)[key]
	}
	return t
}

func TestConservativeAndOptimisticAgree(t *testing.T) {
	const nLPs, horizon = 6, 8.0
	csStats, csStates, err := RunConservative(pholdConfig(newCluster(3), nLPs, horizon), pholdInject(nLPs))
	if err != nil {
		t.Fatalf("conservative: %v", err)
	}
	twStats, twStates, err := RunTimeWarp(pholdConfig(newCluster(3), nLPs, horizon), pholdInject(nLPs))
	if err != nil {
		t.Fatalf("timewarp: %v", err)
	}
	if csStats.Events == 0 {
		t.Fatal("no events executed")
	}
	if got, want := twStats.Events-twStats.RolledBack, csStats.Events; got != want {
		t.Errorf("committed events: optimistic %d, conservative %d", got, want)
	}
	for i := range csStates {
		cs, tw := csStates[i].(IntState), twStates[i].(IntState)
		if cs["count"] != tw["count"] || cs["sum"] != tw["sum"] {
			t.Errorf("LP %d state differs: conservative %v, optimistic %v", i, cs, tw)
		}
	}
	if csStats.ControlMsgs == 0 || twStats.Rounds == 0 {
		t.Error("synchronization machinery did not run")
	}
}

func TestOptimisticRollsBackStragglers(t *testing.T) {
	// LP 0 (host 0) has cheap local events at t=1,2,3. LP 1 (host 1)
	// executes a very expensive event at t=0.5 whose output lands at LP 0
	// at t=1.5 — long after LP 0 has optimistically passed it.
	cluster := newCluster(2)
	cfg := Config{
		Cluster:   cluster,
		NumLPs:    2,
		Place:     func(lp int) int { return lp },
		InitState: func(int) State { return IntState{} },
		EventCPU:  100 * sim.Microsecond,
		Handler: func(ctx *Ctx, ev Event) {
			st := ctx.State().(IntState)
			st["count"]++
			st["last"] = int64(ctx.Now() * 10)
			switch ev.Kind {
			case 1: // the slow producer on LP 1
				ctx.Charge(200 * sim.Millisecond)
				ctx.Send(Event{At: 1.5, To: 0, Kind: 2, Size: 64})
			}
		},
	}
	inject := []Event{
		{At: 1, To: 0}, {At: 2, To: 0}, {At: 3, To: 0},
		{At: 0.5, To: 1, Kind: 1},
	}
	stats, states, err := RunTimeWarp(cfg, inject)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rollbacks == 0 || stats.RolledBack == 0 {
		t.Errorf("expected a straggler rollback, got %+v", stats)
	}
	st0 := states[0].(IntState)
	if st0["count"] != 4 {
		t.Errorf("LP 0 committed %d events, want 4", st0["count"])
	}
	if st0["last"] != 30 {
		t.Errorf("LP 0 final event at %v, want t=3", st0["last"])
	}
}

func TestOptimisticCascadingCancellation(t *testing.T) {
	// LP 0 forwards everything to LP 2 immediately. When LP 1's late
	// straggler rolls LP 0 back, the forwards to LP 2 must be chased by
	// anti-messages and LP 2 must also roll back (the paper's "domino
	// effect of cascading cancellations").
	cluster := newCluster(3)
	cfg := Config{
		Cluster:   cluster,
		NumLPs:    3,
		Place:     func(lp int) int { return lp },
		InitState: func(int) State { return IntState{} },
		EventCPU:  100 * sim.Microsecond,
		Handler: func(ctx *Ctx, ev Event) {
			st := ctx.State().(IntState)
			st["count"]++
			switch {
			case ctx.LP() == 0 && ev.Kind == 0:
				ctx.Send(Event{At: ctx.Now() + 0.1, To: 2, Kind: 3, Size: 64})
			case ev.Kind == 1:
				ctx.Charge(300 * sim.Millisecond)
				ctx.Send(Event{At: 1.05, To: 0, Kind: 2, Size: 64})
			}
		},
	}
	inject := []Event{
		{At: 1, To: 0}, {At: 2, To: 0}, {At: 3, To: 0},
		{At: 0.5, To: 1, Kind: 1},
	}
	stats, states, err := RunTimeWarp(cfg, inject)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AntiMessages == 0 {
		t.Errorf("expected anti-messages, got %+v", stats)
	}
	// LP 0 commits 4 events (3 injected + straggler), forwarding 3+1
	// events to LP 2; plus LP 2's committed count must reflect exactly
	// the committed forwards despite the cancellations.
	if got := states[2].(IntState)["count"]; got != 3 {
		t.Errorf("LP 2 committed %d events, want 3 (kind-0 forwards only)", got)
	}

	// The same program conservatively must agree.
	_, csStates, err := RunConservative(cfg2(cluster, cfg), inject)
	if err != nil {
		t.Fatal(err)
	}
	for i := range states {
		if states[i].(IntState)["count"] != csStates[i].(IntState)["count"] {
			t.Errorf("LP %d: optimistic %v vs conservative %v", i,
				states[i].(IntState), csStates[i].(IntState))
		}
	}
}

// cfg2 rebinds a config to a fresh cluster (a used kernel cannot rerun).
func cfg2(_ *lan.Cluster, cfg Config) Config {
	cfg.Cluster = newCluster(len(cfg.Cluster.Hosts))
	return cfg
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, int64) {
		st, states, err := RunTimeWarp(pholdConfig(newCluster(4), 8, 5), pholdInject(8))
		if err != nil {
			t.Fatal(err)
		}
		return st, totals(states, "sum")
	}
	s1, sum1 := run()
	for i := 0; i < 3; i++ {
		s2, sum2 := run()
		if s1 != s2 || sum1 != sum2 {
			t.Fatalf("nondeterministic: %+v/%d vs %+v/%d", s1, sum1, s2, sum2)
		}
	}
}

func TestSendIntoPastPanics(t *testing.T) {
	cluster := newCluster(1)
	cfg := Config{
		Cluster: cluster, NumLPs: 1, EventCPU: sim.Microsecond,
		InitState: func(int) State { return IntState{} },
		Handler: func(ctx *Ctx, ev Event) {
			defer func() {
				if recover() == nil {
					t.Error("send into the past should panic")
				}
			}()
			ctx.Send(Event{At: ctx.Now(), To: 0})
		},
	}
	if _, _, err := RunConservative(cfg, []Event{{At: 1, To: 0}}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := RunConservative(Config{}, nil); err == nil {
		t.Error("empty config should fail")
	}
	if _, _, err := RunTimeWarp(Config{}, nil); err == nil {
		t.Error("empty config should fail")
	}
	cl := newCluster(1)
	bad := Config{Cluster: cl, NumLPs: 1, Handler: func(*Ctx, Event) {},
		Place: func(int) int { return 7 }}
	if _, _, err := RunTimeWarp(bad, nil); err == nil {
		t.Error("bad placement should fail")
	}
	ok := Config{Cluster: cl, NumLPs: 1, Handler: func(*Ctx, Event) {}}
	if _, _, err := RunTimeWarp(ok, []Event{{To: 5, At: 1}}); err == nil {
		t.Error("bad inject target should fail")
	}
}

func TestConservativeEpochOrdering(t *testing.T) {
	// Events across hosts execute in strict global timestamp order.
	cluster := newCluster(3)
	var order []float64
	cfg := Config{
		Cluster: cluster, NumLPs: 3,
		Place:     func(lp int) int { return lp },
		InitState: func(int) State { return IntState{} },
		EventCPU:  500 * sim.Microsecond,
		Handler: func(ctx *Ctx, ev Event) {
			order = append(order, ctx.Now())
			if ev.Kind == 0 && ctx.Now() < 3 {
				ctx.Send(Event{At: ctx.Now() + 0.7, To: (ctx.LP() + 1) % 3, Size: 32})
			}
		},
	}
	inject := []Event{{At: 0.5, To: 0}, {At: 0.6, To: 1}, {At: 0.4, To: 2}}
	if _, _, err := RunConservative(cfg, inject); err != nil {
		t.Fatal(err)
	}
	if len(order) == 0 {
		t.Fatal("nothing executed")
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("out of order: %v", order)
		}
	}
}

func TestFossilCollectionBoundsHistory(t *testing.T) {
	// A long two-LP ping-pong with a tight sync interval: GVT must
	// advance mid-run and prune history (without it, history length would
	// equal total events).
	cluster := newCluster(2)
	cfg := Config{
		Cluster: cluster, NumLPs: 2,
		Place:        func(lp int) int { return lp },
		InitState:    func(int) State { return IntState{} },
		EventCPU:     2 * sim.Millisecond, // slow events so rounds interleave
		SyncInterval: sim.Millisecond,
		Handler: func(ctx *Ctx, ev Event) {
			ctx.State().(IntState)["count"]++
			if ctx.Now() < 20 {
				ctx.Send(Event{At: ctx.Now() + 0.5, To: 1 - ctx.LP(), Size: 32})
			}
		},
	}
	stats, states, err := RunTimeWarp(cfg, []Event{{At: 0.5, To: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalGVT <= 0 {
		t.Errorf("GVT never advanced: %+v", stats)
	}
	if stats.Rounds < 3 {
		t.Errorf("rounds = %d; sync never interleaved with execution", stats.Rounds)
	}
	total := totals(states, "count")
	if total != 40 {
		t.Errorf("events = %d, want 40", total)
	}
}

func TestOptimismWindowLimitsSpeculation(t *testing.T) {
	// With a tiny window, a far-future event cannot execute until GVT
	// reaches it; with no window it executes immediately. Both must
	// complete with identical states.
	mk := func(window float64) (Stats, []State) {
		cluster := newCluster(2)
		cfg := Config{
			Cluster: cluster, NumLPs: 2,
			Place:     func(lp int) int { return lp },
			InitState: func(int) State { return IntState{} },
			EventCPU:  100 * sim.Microsecond,
			Window:    window,
			Handler: func(ctx *Ctx, ev Event) {
				st := ctx.State().(IntState)
				st["count"]++
				st["lastT"] = int64(ctx.Now() * 10)
			},
		}
		inject := []Event{
			{At: 1, To: 0}, {At: 100, To: 0}, {At: 2, To: 1},
		}
		stats, states, err := RunTimeWarp(cfg, inject)
		if err != nil {
			t.Fatal(err)
		}
		return stats, states
	}
	sWin, stWin := mk(0.5)
	sFree, stFree := mk(0)
	for i := range stWin {
		w, f := stWin[i].(IntState), stFree[i].(IntState)
		if w["count"] != f["count"] || w["lastT"] != f["lastT"] {
			t.Errorf("LP %d differs: windowed %v vs free %v", i, w, f)
		}
	}
	// The windowed run needs GVT rounds to release the t=100 event.
	if sWin.Rounds <= sFree.Rounds {
		t.Errorf("windowed rounds %d should exceed unbounded %d", sWin.Rounds, sFree.Rounds)
	}
}

func TestIntStateClone(t *testing.T) {
	s := IntState{"a": 1}
	c := s.Clone().(IntState)
	s["a"] = 2
	if c["a"] != 1 {
		t.Error("clone not independent")
	}
}

func TestStatsString(t *testing.T) {
	// Smoke-check that stats fields are populated by a tiny run.
	st, _, err := RunTimeWarp(pholdConfig(newCluster(2), 2, 1), pholdInject(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Elapsed <= 0 || st.Events <= 0 {
		t.Errorf("stats = %s", fmt.Sprintf("%+v", st))
	}
}

// TestFossilFloorBoundsCollection: a FossilFloor below GVT must keep the
// run correct (retention is purely about keeping history alive for
// recovery layers) and must actually be consulted on every GVT advance.
func TestFossilFloorBoundsCollection(t *testing.T) {
	const nLPs, horizon = 6, 5.0
	base, baseStates, err := RunTimeWarp(pholdConfig(newCluster(3), nLPs, horizon), pholdInject(nLPs))
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	cfg := pholdConfig(newCluster(3), nLPs, horizon)
	cfg.FossilFloor = func() float64 { calls++; return 0 } // retain everything
	floored, flooredStates, err := RunTimeWarp(cfg, pholdInject(nLPs))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("FossilFloor was never consulted")
	}
	// The floor changes only what history is retained, never the
	// computation: committed events and final states must be identical.
	if base.Events != floored.Events {
		t.Errorf("events: %d with floor vs %d without", floored.Events, base.Events)
	}
	for lp := 0; lp < nLPs; lp++ {
		b, f := baseStates[lp].(IntState), flooredStates[lp].(IntState)
		if b["count"] != f["count"] || b["sum"] != f["sum"] {
			t.Errorf("LP %d state diverged: %v vs %v", lp, f, b)
		}
	}
}
