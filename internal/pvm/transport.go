package pvm

import (
	"fmt"

	"messengers/internal/obs"
	"messengers/internal/sim"
)

// Send transmits the current send buffer to dst with the given tag
// (pvm_send). The call returns once the sender-side software work is done;
// delivery proceeds asynchronously through the fragment pipeline.
func (p *Proc) Send(dst TID, tag int) {
	p.checkKilled()
	buf := p.send()
	// The message inherits the send buffer's pool reference; the receiver's
	// side releases it (next Recv) and recycles the storage.
	msg := &Buffer{data: buf.data, src: p.tid, tag: tag, refs: buf.refs}
	p.sendBuf = nil
	p.deliver(dst, msg)
}

// Mcast transmits the send buffer to every task in dsts (pvm_mcast). Each
// destination is a separate transfer, as in PVM over UDP.
func (p *Proc) Mcast(dsts []TID, tag int) {
	p.checkKilled()
	buf := p.send()
	p.sendBuf = nil
	n := 0
	for _, dst := range dsts {
		if dst != p.tid {
			n++
		}
	}
	if n == 0 {
		buf.release()
		return
	}
	// Every destination's Buffer shares one backing array; retarget the
	// sender's single reference to the destination count so the storage is
	// recycled only after the last receiver is done with it. No other
	// goroutine holds refs yet, so the plain store is safe.
	if buf.refs != nil {
		buf.refs.Store(int32(n))
	}
	for _, dst := range dsts {
		if dst == p.tid {
			continue
		}
		msg := &Buffer{data: buf.data, src: p.tid, tag: tag, refs: buf.refs}
		p.deliver(dst, msg)
	}
}

func (p *Proc) deliver(dst TID, msg *Buffer) {
	p.m.mu.Lock()
	target, ok := p.m.tasks[dst]
	p.m.mu.Unlock()
	if !ok {
		// PVM reports an error code; messages to dead tasks vanish.
		msg.release()
		return
	}
	if p.m.mo != nil {
		p.m.mo.sends.Inc()
		p.m.mo.sendBytes.Add(int64(len(msg.data)))
	}
	if p.m.tr != nil {
		p.m.tr.Instant(p.host, "pvm", "pvm.send",
			obs.I("dst", int64(dst)), obs.I("bytes", int64(len(msg.data))))
	}
	if !p.m.Sim() {
		if p.m.mo != nil {
			p.m.mo.recvs.Inc()
		}
		if p.m.tr != nil {
			p.m.tr.Instant(target.host, "pvm", "pvm.recv",
				obs.I("src", int64(msg.src)), obs.I("bytes", int64(len(msg.data))))
		}
		target.mbox.deliver(msg)
		return
	}
	// Sender-side software cost: fixed send call plus pvmd handoff copy
	// and per-fragment processing, serialized on this host's CPU (the
	// task blocks for it — it shares the CPU with its pvmd).
	cm := p.m.cm
	frags := cm.Frags(len(msg.data))
	sendCPU := cm.PVMSendFixed +
		sim.Time(len(msg.data))*cm.PVMRoutePerByte +
		sim.Time(frags)*cm.PVMFragFixed
	p.Compute(sendCPU)
	t := &transfer{
		m:       p.m,
		srcHost: p.host,
		dstHost: target.host,
		dst:     target,
		msg:     msg,
		frags:   frags,
	}
	t.pump()
}

// transfer is one in-flight simulated message: fragments flow through the
// shared Ethernet with at most PVMWindow unacknowledged; each fragment is
// processed by the receiving host's CPU (pvmd routing copy) before its
// acknowledgement releases the window slot. A busy receiver therefore
// throttles all of its senders — the manager-funnel effect of §3.1.2.
type transfer struct {
	m        *Machine
	srcHost  int
	dstHost  int
	dst      *Proc
	msg      *Buffer
	frags    int
	sent     int
	inflight int
	done     int
}

func (t *transfer) fragSize(i int) int {
	cm := t.m.cm
	total := len(t.msg.data)
	if total == 0 {
		return 64 // empty message still occupies one datagram
	}
	if (i+1)*cm.PVMFragSize <= total {
		return cm.PVMFragSize
	}
	return total - i*cm.PVMFragSize
}

func (t *transfer) pump() {
	cm := t.m.cm
	for t.inflight < cm.PVMWindow && t.sent < t.frags {
		i := t.sent
		t.sent++
		t.inflight++
		t.sendFrag(i)
	}
}

func (t *transfer) sendFrag(i int) {
	cm := t.m.cm
	size := t.fragSize(i)
	arrive := func() {
		// A fragment arriving at a full pvmd buffer is dropped (UDP) and
		// retransmitted after the fixed timeout.
		if cm.PVMRxBuffer > 0 && t.m.rxBacklog[t.dstHost]+size > cm.PVMRxBuffer {
			t.m.stats.Drops++
			if t.m.mo != nil {
				t.m.mo.drops.Inc()
			}
			if t.m.tr != nil {
				t.m.tr.Instant(t.dstHost, "pvm", "pvm.drop", obs.I("bytes", int64(size)))
			}
			t.m.cluster.Kernel.After(cm.PVMRetransmit, func() { t.sendFrag(i) })
			return
		}
		t.m.rxBacklog[t.dstHost] += size
		// pvmd processing at the receiver: routing copy plus fixed cost,
		// serialized on the destination host CPU.
		recvCPU := sim.Time(size)*cm.PVMRoutePerByte + cm.PVMFragFixed
		t.m.cluster.Hosts[t.dstHost].ExecScaled(recvCPU, func() {
			t.m.rxBacklog[t.dstHost] -= size
			t.fragProcessed()
		})
	}
	if t.srcHost == t.dstHost {
		arrive()
		return
	}
	t.m.cluster.Bus.Transmit(size, arrive)
}

func (t *transfer) fragProcessed() {
	t.done++
	if t.done == t.frags {
		// Reassembled: hand to the task (the user-level unpack copy is
		// charged when the task unpacks).
		t.m.cluster.Hosts[t.dstHost].ExecScaled(t.m.cm.PVMRecvFixed, func() {
			if t.m.mo != nil {
				t.m.mo.recvs.Inc()
			}
			if t.m.tr != nil {
				t.m.tr.Instant(t.dstHost, "pvm", "pvm.recv",
					obs.I("src", int64(t.msg.src)), obs.I("bytes", int64(len(t.msg.data))))
			}
			t.dst.mbox.deliver(t.msg)
		})
	}
	// Acknowledge to release the sender's window slot.
	ackDone := func() {
		t.inflight--
		t.pump()
	}
	if t.srcHost == t.dstHost {
		ackDone()
		return
	}
	t.m.cluster.Bus.Transmit(t.m.cm.PVMAckBytes, ackDone)
}

// Recv blocks until a message matching (src, tag) arrives and returns it
// (pvm_recv); -1 wildcards match anything. The returned buffer is the
// task's active receive buffer, exactly as in PVM: the next Recv/NRecv
// frees it, so unpack what you need before receiving again (Sender and Tag
// remain valid; the payload does not).
func (p *Proc) Recv(src TID, tag int) *Buffer {
	p.checkKilled()
	var got *Buffer
	p.block(func() bool {
		b, ok := p.mbox.match(src, tag)
		if ok {
			got = b
		}
		return ok
	})
	p.recvBuf.release()
	p.recvBuf = got
	return got
}

// NRecv is the non-blocking receive (pvm_nrecv): it returns nil when no
// matching message is queued. A successful NRecv replaces the active
// receive buffer like Recv does.
func (p *Proc) NRecv(src TID, tag int) *Buffer {
	p.checkKilled()
	var b *Buffer
	if p.m.Sim() {
		b, _ = p.mbox.match(src, tag)
	} else {
		p.condMu.Lock()
		b, _ = p.mbox.match(src, tag)
		p.condMu.Unlock()
	}
	if b != nil {
		p.recvBuf.release()
		p.recvBuf = b
	}
	return b
}

// --- groups (pvm_joingroup and friends) ---

type group struct {
	members map[int]TID // instance -> tid
	next    int
}

type barrier struct {
	need    int
	arrived int
	waiters []*Proc
}

// JoinGroup adds the task to a named group and returns its instance number
// (pvm_joingroup). Instances are assigned in join order.
func (p *Proc) JoinGroup(name string) int {
	p.checkKilled()
	p.m.mu.Lock()
	g := p.m.groups[name]
	if g == nil {
		g = &group{members: map[int]TID{}}
		p.m.groups[name] = g
	}
	inst := g.next
	g.next++
	g.members[inst] = p.tid
	p.m.mu.Unlock()
	p.m.wakeAll() // tasks blocked in Gettid re-check membership
	return inst
}

// JoinGroupAs joins with an explicit instance number. The paper's Fig. 9
// indexes workers by block coordinates (pid_in_group(i*m+k)); explicit
// instances make that mapping deterministic.
func (p *Proc) JoinGroupAs(name string, inst int) {
	p.checkKilled()
	p.m.mu.Lock()
	g := p.m.groups[name]
	if g == nil {
		g = &group{members: map[int]TID{}}
		p.m.groups[name] = g
	}
	if old, exists := g.members[inst]; exists && old != p.tid {
		p.m.mu.Unlock()
		panic(fmt.Sprintf("pvm: group %q instance %d already taken by tid %d", name, inst, old))
	}
	g.members[inst] = p.tid
	if inst >= g.next {
		g.next = inst + 1
	}
	p.m.mu.Unlock()
	p.m.wakeAll()
}

// Gettid resolves a group instance to a task ID (pvm_gettid). It blocks
// until the instance has joined, mirroring PVM programs that retry.
func (p *Proc) Gettid(name string, inst int) TID {
	p.checkKilled()
	var tid TID
	p.block(func() bool {
		p.m.mu.Lock()
		defer p.m.mu.Unlock()
		g := p.m.groups[name]
		if g == nil {
			return false
		}
		t, ok := g.members[inst]
		if ok {
			tid = t
		}
		return ok
	})
	return tid
}

// Gsize returns the current size of a group (pvm_gsize).
func (p *Proc) Gsize(name string) int {
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	g := p.m.groups[name]
	if g == nil {
		return 0
	}
	return len(g.members)
}

// Barrier blocks until count tasks have called Barrier on the same name
// (pvm_barrier).
func (p *Proc) Barrier(name string, count int) {
	p.checkKilled()
	p.m.mu.Lock()
	b := p.m.barriers[name]
	if b == nil || b.need == 0 {
		b = &barrier{need: count}
		p.m.barriers[name] = b
	}
	b.arrived++
	release := b.arrived >= b.need
	if release {
		waiters := b.waiters
		b.waiters = nil
		b.arrived = 0
		b.need = 0
		p.m.mu.Unlock()
		for _, w := range waiters {
			w.barrierDone(name)
		}
		return
	}
	b.waiters = append(b.waiters, p)
	p.m.mu.Unlock()
	p.block(func() bool { return p.barrierReleased(name) })
}

// barrier release handshake: a released waiter gets a flag message-style
// wakeup via its mailbox condition.
func (p *Proc) barrierDone(name string) {
	if p.m.Sim() {
		p.releasedBarriers = append(p.releasedBarriers, name)
		p.wake()
		return
	}
	p.condMu.Lock()
	p.releasedBarriers = append(p.releasedBarriers, name)
	p.condMu.Unlock()
	p.wake()
}

func (p *Proc) barrierReleased(name string) bool {
	for i, n := range p.releasedBarriers {
		if n == name {
			p.releasedBarriers = append(p.releasedBarriers[:i], p.releasedBarriers[i+1:]...)
			return true
		}
	}
	return false
}

// wakeAll wakes every task so it can re-check a blocked condition (group
// membership changes).
func (m *Machine) wakeAll() {
	m.mu.Lock()
	procs := make([]*Proc, 0, len(m.tasks))
	for _, p := range m.tasks {
		procs = append(procs, p)
	}
	m.mu.Unlock()
	for _, p := range procs {
		p.wake()
	}
}

// leaveAllGroups removes an exited task from every group.
func (m *Machine) leaveAllGroups(tid TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.groups {
		for inst, t := range g.members {
			if t == tid {
				delete(g.members, inst)
			}
		}
	}
}
