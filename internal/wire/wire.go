// Package wire is the unified serialization layer: a pooled, single-pass
// encoder shared by every subsystem that produces wire bytes (value codec,
// VM snapshots, daemon messages, the TCP transport, PVM pack buffers).
//
// The layer exists to keep the hot hop path free of redundant copies, per
// the paper's §2.1 analysis: a Messenger transfer should walk the state
// once, appending directly into one buffer that already begins with the
// transport frame header, instead of building a snapshot slice, copying it
// into a message encoding, and copying that into a socket frame. Buffers
// come from a process-wide pool so steady-state encoding allocates nothing.
//
// Ownership contract: a pooled Encoder is owned by the caller of NewEncoder
// until Release or Detach. Release recycles the buffer — no slice derived
// from Bytes() may be used afterwards. Detach transfers the buffer out of
// the pool's custody (it is garbage-collected normally). Frames read from
// the network are caller-owned plain slices; DecodeMsg-style consumers may
// alias them, so a frame buffer must stay untouched for as long as any
// message decoded from it is live.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// MaxLen bounds a single length-prefixed element (string, byte block,
// array, matrix, snapshot). It matches the decode-side guard in
// internal/value so an encoder can never produce a frame its own decoder
// rejects, and is far below the uint32 length prefix's wrap-around point.
const MaxLen = 1 << 30

// Frame header layout, shared by the TCP transport and the pooled encoder:
// magic (2 bytes), version (2 bytes), payload length (4 bytes), little
// endian throughout. The byte format on the network is frozen — guarded by
// the cross-engine golden test.
const (
	// FrameMagic guards against cross-protocol garbage ("MS").
	FrameMagic = 0x4d53
	// FrameVersion is the current frame format version.
	FrameVersion = 0
	// FrameHeaderLen is the fixed frame header size in bytes.
	FrameHeaderLen = 8
	// MaxFrame bounds a single message frame (64 MB).
	MaxFrame = 64 << 20
)

// Pool statistics (process-wide, monotonic).
var (
	poolGets     atomic.Int64
	poolMisses   atomic.Int64
	bytesEncoded atomic.Int64
)

// Stats is a snapshot of the pool counters.
type Stats struct {
	// PoolGets counts buffer acquisitions (encoder or raw).
	PoolGets int64
	// PoolMisses counts acquisitions that had to allocate a fresh buffer.
	PoolMisses int64
	// PoolHits is PoolGets - PoolMisses.
	PoolHits int64
	// BytesEncoded totals bytes handed out of encoders via Release/Detach.
	BytesEncoded int64
}

// ReadStats returns the current pool counters.
func ReadStats() Stats {
	gets, misses := poolGets.Load(), poolMisses.Load()
	return Stats{
		PoolGets:     gets,
		PoolMisses:   misses,
		PoolHits:     gets - misses,
		BytesEncoded: bytesEncoded.Load(),
	}
}

// initialBufCap sizes fresh pool buffers; large enough for control messages
// and small snapshots without a regrow.
const initialBufCap = 4096

// maxPooledCap keeps one huge frame from pinning memory in the pool
// forever; larger buffers are dropped on Release/PutBuf.
const maxPooledCap = 4 << 20

var bufPool = sync.Pool{
	New: func() any {
		poolMisses.Add(1)
		b := make([]byte, 0, initialBufCap)
		return &b
	},
}

// GetBuf returns a zero-length pooled buffer (for callers that append
// directly, like PVM pack buffers). Return it with PutBuf when done.
func GetBuf() []byte {
	poolGets.Add(1)
	return (*(bufPool.Get().(*[]byte)))[:0]
}

// PutBuf recycles a buffer obtained from GetBuf (or any buffer the caller
// owns outright). The caller must not touch b afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// Encoder appends a canonical little-endian encoding into one buffer. The
// zero Encoder is usable (it grows a heap buffer); NewEncoder hands out a
// pooled one. Errors are sticky: after any failed append the encoder stops
// writing and Err reports the first failure.
type Encoder struct {
	buf    []byte
	err    error
	pooled bool
}

// NewEncoder returns an encoder over a pooled buffer. Pair with Release
// (recycle) or Detach (keep the bytes).
func NewEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.buf = GetBuf()
	e.err = nil
	e.pooled = true
	return e
}

// AppendingTo returns an encoder that appends to a caller-owned buffer
// (no pooling; Bytes returns the extended slice).
func AppendingTo(buf []byte) *Encoder {
	return &Encoder{buf: buf}
}

// Release recycles a pooled encoder and its buffer. No slice obtained from
// Bytes may be used afterwards.
func (e *Encoder) Release() {
	bytesEncoded.Add(int64(len(e.buf)))
	if e.pooled {
		PutBuf(e.buf)
		e.buf = nil
		e.err = nil
		e.pooled = false
		encPool.Put(e)
	}
}

// Detach returns the encoded bytes, transferring ownership to the caller;
// the buffer is not recycled. The encoder itself returns to the pool.
func (e *Encoder) Detach() []byte {
	b := e.buf
	bytesEncoded.Add(int64(len(b)))
	if e.pooled {
		e.buf = nil
		e.err = nil
		e.pooled = false
		encPool.Put(e)
	}
	return b
}

// Err returns the first append failure, or nil.
func (e *Encoder) Err() error { return e.err }

// Fail records an error; the first one sticks and later appends are no-ops.
func (e *Encoder) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Len returns the number of bytes appended so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Bytes returns the encoded bytes. The slice aliases the encoder's buffer:
// invalid after Release, and further appends may move it.
func (e *Encoder) Bytes() []byte { return e.buf }

// Grow reserves capacity for at least n more bytes.
func (e *Encoder) Grow(n int) {
	if need := len(e.buf) + n; need > cap(e.buf) {
		nb := make([]byte, len(e.buf), need)
		copy(nb, e.buf)
		if e.pooled {
			PutBuf(e.buf)
		}
		e.buf = nb
	}
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) {
	if e.err != nil {
		return
	}
	e.buf = append(e.buf, v)
}

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) {
	if e.err != nil {
		return
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	if e.err != nil {
		return
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	if e.err != nil {
		return
	}
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// F64 appends a float64 as its IEEE 754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// F64s appends a float64 slice, byte-identical to calling F64 per element,
// with one capacity check for the whole block — the bulk path matrix
// payloads encode through on every hop snapshot.
func (e *Encoder) F64s(vs []float64) {
	if e.err != nil {
		return
	}
	e.Grow(8 * len(vs))
	off := len(e.buf)
	e.buf = e.buf[:off+8*len(vs)]
	for i, v := range vs {
		binary.LittleEndian.PutUint64(e.buf[off+8*i:], math.Float64bits(v))
	}
}

// Str appends a uint32 length prefix and the string bytes, rejecting
// lengths beyond MaxLen (the encode-side mirror of the decode guard).
func (e *Encoder) Str(s string) {
	if e.err != nil {
		return
	}
	if len(s) > MaxLen {
		e.Fail(fmt.Errorf("wire: string of %d bytes exceeds MaxLen (%d)", len(s), MaxLen))
		return
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a uint32 length prefix and the bytes, rejecting lengths
// beyond MaxLen.
func (e *Encoder) Blob(b []byte) {
	if e.err != nil {
		return
	}
	if len(b) > MaxLen {
		e.Fail(fmt.Errorf("wire: byte block of %d bytes exceeds MaxLen (%d)", len(b), MaxLen))
		return
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw appends bytes with no length prefix (fixed-width fields).
func (e *Encoder) Raw(b []byte) {
	if e.err != nil {
		return
	}
	e.buf = append(e.buf, b...)
}

// Reserve appends n zero bytes and returns their offset, for headers whose
// fields (like a payload length) are only known after the payload is
// appended. Patch them with PatchU32.
func (e *Encoder) Reserve(n int) int {
	if e.err != nil {
		return len(e.buf)
	}
	off := len(e.buf)
	e.Grow(n)
	e.buf = e.buf[:off+n]
	for i := off; i < off+n; i++ {
		e.buf[i] = 0
	}
	return off
}

// PatchU32 overwrites 4 bytes at a Reserve'd offset.
func (e *Encoder) PatchU32(off int, v uint32) {
	if e.err != nil || off+4 > len(e.buf) {
		return
	}
	binary.LittleEndian.PutUint32(e.buf[off:], v)
}

// BeginFrame appends a transport frame header with a zero payload length
// and returns the header offset for EndFrame.
func (e *Encoder) BeginFrame() int {
	off := e.Reserve(FrameHeaderLen)
	if e.err != nil {
		return off
	}
	binary.LittleEndian.PutUint16(e.buf[off:], FrameMagic)
	binary.LittleEndian.PutUint16(e.buf[off+2:], FrameVersion)
	return off
}

// EndFrame patches the payload length of the frame begun at off and
// enforces the MaxFrame bound. The payload is everything appended since
// BeginFrame returned.
func (e *Encoder) EndFrame(off int) error {
	if e.err != nil {
		return e.err
	}
	n := len(e.buf) - off - FrameHeaderLen
	if n < 0 {
		e.Fail(fmt.Errorf("wire: EndFrame before BeginFrame"))
		return e.err
	}
	if n > MaxFrame {
		e.Fail(fmt.Errorf("wire: frame of %d bytes exceeds limit (%d)", n, MaxFrame))
		return e.err
	}
	e.PatchU32(off+4, uint32(n))
	return nil
}

// ParseFrameHeader validates a frame header and returns the payload length.
func ParseFrameHeader(hdr []byte) (int, error) {
	if len(hdr) < FrameHeaderLen {
		return 0, fmt.Errorf("wire: short frame header (%d bytes)", len(hdr))
	}
	if binary.LittleEndian.Uint16(hdr) != FrameMagic {
		return 0, fmt.Errorf("wire: bad frame magic %#x", hdr[:2])
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	return int(n), nil
}

// Sizer reports the exact encoded size of an object, so encode buffers can
// be allocated in one piece and simulated engines can charge wire costs
// without materializing the bytes. Implementations must agree byte-for-byte
// with the object's AppendTo encoding.
type Sizer interface {
	EncodedSize() int
}
