package bytecode

import (
	"testing"

	"messengers/internal/value"
)

// loopProgram is a canonical counting loop: i = 0; while (i < 10) { i = i + 1 }
// Its loop head and increment are exactly the two quad idioms the lowering
// pass targets (slot-compare-branch and slot-arith-store); with quads
// disabled by jump targets it falls back to the pair families.
func loopProgram(t *testing.T) *Program {
	t.Helper()
	p := &Program{
		Name:   "loop",
		Consts: []value.Value{value.Int(0), value.Int(10), value.Int(1)},
		Names:  []string{"i"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},  // 0: const 0
			{Op: OpStoreM, A: 0}, // 1: storem i
			{Op: OpLoadM, A: 0},  // 2: loadm i      <- loop head (jump target)
			{Op: OpConst, A: 1},  // 3: const 10
			{Op: OpLt},           // 4: lt
			{Op: OpJz, A: 11},    // 5: jz 11
			{Op: OpLoadM, A: 0},  // 6: loadm i
			{Op: OpConst, A: 2},  // 7: const 1
			{Op: OpAdd},          // 8: add
			{Op: OpStoreM, A: 0}, // 9: storem i
			{Op: OpJmp, A: 2},    // 10: jmp 2
			{Op: OpEnd},          // 11: end
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestLoweredNilForUnverified(t *testing.T) {
	p := loopProgram(t)
	p.Funcs[0].Code[0].A = 99 // corrupt
	if err := p.Validate(); err == nil {
		t.Fatal("corrupt program verified")
	}
	if p.Lowered(true) != nil || p.Lowered(false) != nil {
		t.Fatal("Lowered must be nil for unverified programs")
	}
}

func TestLoweredPlainIsOneToOne(t *testing.T) {
	p := loopProgram(t)
	low := p.Lowered(false)
	if low == nil {
		t.Fatal("nil Lowered for verified program")
	}
	code := low.Funcs[0].Code
	src := p.Funcs[0].Code
	if len(code) != len(src) {
		t.Fatalf("plain lowering changed length: %d vs %d", len(code), len(src))
	}
	if low.Fused != 0 {
		t.Fatalf("plain lowering fused %d instructions", low.Fused)
	}
	for i, d := range code {
		if d.N != 1 || int(d.Src) != i {
			t.Errorf("instr %d: N=%d Src=%d", i, d.N, d.Src)
		}
		ops, n := d.Op.Constituents()
		if n != 1 || ops[0] != src[i].Op {
			t.Errorf("instr %d: constituents (%v,%d) want (%v,1)", i, ops[0], n, src[i].Op)
		}
	}
	// Jump targets resolve to themselves under 1:1 lowering.
	if code[5].Op != DJz || code[5].A != 11 {
		t.Errorf("jz lowered to %v A=%d", code[5].Op, code[5].A)
	}
	if code[10].Op != DJmp || code[10].A != 2 {
		t.Errorf("jmp lowered to %v A=%d", code[10].Op, code[10].A)
	}
}

func TestLoweredFusion(t *testing.T) {
	p := loopProgram(t)
	low := p.Lowered(true)
	code := low.Funcs[0].Code
	// Expected stream: the loop head (loadm i, const 10, lt, jz) and the
	// increment (loadm i, const 1, add, storem i) each collapse into one
	// quad superinstruction.
	//   0: const 0
	//   1: storem i
	//   2: mc<jz  i,10 -> end   <- loop head (jump target)
	//   3: m+c>m  i,1 -> i
	//   4: jmp 2
	//   5: end
	want := []DOp{DConst, DStoreM, DFMCLtJz, DFMCAddStoreM, DJmp, DEnd}
	if len(code) != len(want) {
		t.Fatalf("fused stream length %d, want %d: %v", len(code), len(want), code)
	}
	for i, op := range want {
		if code[i].Op != op {
			t.Fatalf("instr %d: %v want %v (stream %v)", i, code[i].Op, op, code)
		}
	}
	if low.Fused != 2 {
		t.Errorf("Fused=%d want 2", low.Fused)
	}
	// Quad operands: slot of i is 0, constants decoded, branch target
	// resolved to the direct index of end.
	if code[2].A != 0 || code[2].Val.AsInt() != 10 || code[2].C != 5 || code[2].N != 4 {
		t.Errorf("loop head quad = %+v", code[2])
	}
	if code[3].A != 0 || code[3].B != 0 || code[3].Val.AsInt() != 1 || code[3].N != 4 {
		t.Errorf("increment quad = %+v", code[3])
	}
	if code[4].A != 2 { // jmp back to the loop head's quad
		t.Errorf("jmp target %d want 2", code[4].A)
	}
	// S2D maps statement boundaries; interiors of fused sequences are -1.
	s2d := low.Funcs[0].S2D
	wantS2D := []int32{0, 1, 2, -1, -1, -1, 3, -1, -1, -1, 4, 5}
	for i, w := range wantS2D {
		if s2d[i] != w {
			t.Errorf("S2D[%d]=%d want %d", i, s2d[i], w)
		}
	}
	// Step accounting: total N must equal source length.
	total := 0
	for _, d := range code {
		total += int(d.N)
	}
	if total != len(p.Funcs[0].Code) {
		t.Errorf("sum of N = %d, want %d", total, len(p.Funcs[0].Code))
	}
}

// TestLoweredPairFallback pins the pair families on a loop whose constant
// operand is loaded before the variable — no quad idiom matches, so the
// pass falls back to loadm+const, lt+jz, and add+storem pairs.
func TestLoweredPairFallback(t *testing.T) {
	p := &Program{
		Name:   "pairs",
		Consts: []value.Value{value.Int(0), value.Int(10), value.Int(1)},
		Names:  []string{"i"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},  // 0: const 0
			{Op: OpStoreM, A: 0}, // 1: storem i
			{Op: OpLoadM, A: 0},  // 2: loadm i      <- loop head
			{Op: OpConst, A: 1},  // 3: const 10
			{Op: OpLt},           // 4: lt
			{Op: OpJz, A: 11},    // 5: jz end
			{Op: OpConst, A: 2},  // 6: const 1     (const first: no quad)
			{Op: OpLoadM, A: 0},  // 7: loadm i
			{Op: OpAdd},          // 8: add
			{Op: OpStoreM, A: 0}, // 9: storem i
			{Op: OpJmp, A: 2},    // 10: jmp 2
			{Op: OpEnd},          // 11: end
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	low := p.Lowered(true)
	code := low.Funcs[0].Code
	// 2..5 is the loop-head quad (loadm, const, lt, jz) — still a quad.
	// 6..9 (const, loadm, add, storem) is not an idiom: (const,loadm) is
	// not a pair either, so const stays single, then (loadm? no —
	// loadm@7 pairs with nothing ahead of add), (add,storem) pairs.
	want := []DOp{DConst, DStoreM, DFMCLtJz, DConst, DLoadM, DFAddStoreM, DJmp, DEnd}
	if len(code) != len(want) {
		t.Fatalf("stream length %d want %d: %v", len(code), len(want), code)
	}
	for i, op := range want {
		if code[i].Op != op {
			t.Fatalf("instr %d: %v want %v (stream %v)", i, code[i].Op, op, code)
		}
	}
	if low.Fused != 2 {
		t.Errorf("Fused=%d want 2", low.Fused)
	}
}

func TestLoweredNoFusionAcrossJumpTarget(t *testing.T) {
	// The const at pc 3 is a jump target: fusing (loadm@2, const@3) would
	// make the jmp at 7 land inside a pair and skip the load.
	p := &Program{
		Name:   "jt",
		Consts: []value.Value{value.Int(0), value.Int(1)},
		Names:  []string{"i"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},  // 0
			{Op: OpStoreM, A: 0}, // 1
			{Op: OpLoadM, A: 0},  // 2: would fuse with 3...
			{Op: OpConst, A: 1},  // 3: ...but 3 is a jump target
			{Op: OpLt},           // 4
			{Op: OpJz, A: 8},     // 5
			{Op: OpLoadM, A: 0},  // 6
			{Op: OpJmp, A: 3},    // 7: jumps INTO the would-be pair
			{Op: OpEnd},          // 8
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	low := p.Lowered(true)
	code := low.Funcs[0].Code
	s2d := low.Funcs[0].S2D
	if s2d[3] == -1 {
		t.Fatal("jump target lowered to a pair interior")
	}
	if code[s2d[2]].Op != DLoadM {
		t.Errorf("loadm before a jump-target const fused: %v", code[s2d[2]].Op)
	}
	// (lt@4, jz@5) still fuses — 5 is not a target.
	if code[s2d[4]].Op != DFLtJz || code[s2d[4]].A != s2d[8] {
		t.Errorf("lt+jz: op=%v A=%d want target %d", code[s2d[4]].Op, code[s2d[4]].A, s2d[8])
	}
	if code[s2d[7]].Op != DJmp || code[s2d[7]].A != s2d[3] {
		t.Errorf("jmp: op=%v A=%d want target %d", code[s2d[7]].Op, code[s2d[7]].A, s2d[3])
	}
}

func TestLoweredAggregateConstNeedsClone(t *testing.T) {
	arr := value.Arr([]value.Value{value.Int(1)})
	p := &Program{
		Name:   "agg",
		Consts: []value.Value{arr, value.Int(0)},
		Names:  []string{"a"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpLoadM, A: 0}, // loadm a
			{Op: OpConst, A: 0}, // const [1]  — aggregate: must NOT fuse into loadm+const
			{Op: OpPop},
			{Op: OpPop},
			{Op: OpEnd},
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	code := p.Lowered(true).Funcs[0].Code
	if code[0].Op != DLoadM {
		t.Errorf("loadm fused with aggregate const: %v", code[0].Op)
	}
	if code[1].Op != DConstClone {
		t.Errorf("aggregate const lowered to %v, want const*", code[1].Op)
	}
}

func TestLoweredCacheResetOnValidate(t *testing.T) {
	p := loopProgram(t)
	l1 := p.Lowered(true)
	if l1 == nil {
		t.Fatal("nil lowered")
	}
	if p.Lowered(true) != l1 {
		t.Error("Lowered not cached")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("revalidate: %v", err)
	}
	if p.Lowered(true) == l1 {
		t.Error("Lowered cache survived Validate")
	}
}

func TestLoweredMVarSlots(t *testing.T) {
	p := &Program{
		Name:   "mv",
		Consts: []value.Value{value.Int(1)},
		Names:  []string{"x", "y"},
		Funcs: []FuncInfo{{Name: "<main>", Code: []Instr{
			{Op: OpConst, A: 0},
			{Op: OpStoreM, A: 1}, // y first
			{Op: OpLoadM, A: 1},
			{Op: OpStoreM, A: 0}, // then x
			{Op: OpEnd},
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	low := p.Lowered(false)
	if len(low.MVars) != 2 || low.MVars[0] != "y" || low.MVars[1] != "x" {
		t.Fatalf("MVars=%v want [y x] (first-use order)", low.MVars)
	}
	if low.Funcs[0].Code[1].A != 0 || low.Funcs[0].Code[3].A != 1 {
		t.Errorf("slot assignment wrong: %v", low.Funcs[0].Code)
	}
}
