package serve_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"messengers"
	"messengers/internal/serve"
	"messengers/internal/sim"
)

const walker = `
	for (k = 0; k < hops; k++) {
		node.visits = node.visits + 1;
		hop(ll = "ring", ldir = +);
	}
`

const hog = `for (k = 0; k >= 0; k++) { x = x + 1; }`

func ringSpec(daemons int) messengers.NetSpec {
	spec := messengers.NetSpec{}
	for i := 0; i < daemons; i++ {
		spec.Nodes = append(spec.Nodes, messengers.NetNode{Name: fmt.Sprintf("r%d", i), Daemon: i})
		spec.Links = append(spec.Links, messengers.NetLink{
			A: fmt.Sprintf("r%d", i), B: fmt.Sprintf("r%d", (i+1)%daemons), Name: "ring", Dir: 1,
		})
	}
	return spec
}

// simService builds a simulated system with the shared ring plus an
// admission server on virtual time.
func simService(t *testing.T, daemons int, cfg messengers.Config, scfg serve.Config) (*messengers.System, *serve.Server) {
	t.Helper()
	cfg.Daemons = daemons
	cfg.DistributedGVT = cfg.DistributedGVT || os.Getenv("MSGR_DIST_GVT") == "1"
	sys, err := messengers.NewSimSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.BuildNetwork(ringSpec(daemons)); err != nil {
		t.Fatal(err)
	}
	k := sys.Kernel()
	scfg.Clock = k.Now
	scfg.After = func(d sim.Time, fn func()) { k.After(d, fn) }
	srv, err := serve.New(sys.System, scfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, srv
}

func tcpService(t *testing.T, daemons int, cfg messengers.Config, scfg serve.Config) (*messengers.System, *serve.Server) {
	t.Helper()
	cfg.Daemons = daemons
	cfg.DistributedGVT = cfg.DistributedGVT || os.Getenv("MSGR_DIST_GVT") == "1"
	sys, err := messengers.NewTCPSystem(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.BuildNetwork(ringSpec(daemons)); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(sys.System, scfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, srv
}

func walkerSub(tenant string, hops, daemon int) serve.Submission {
	return serve.Submission{
		Tenant: tenant,
		Name:   "walker",
		Source: walker,
		Node:   fmt.Sprintf("r%d", daemon),
		Daemon: daemon,
		Vars:   map[string]messengers.Value{"hops": messengers.IntValue(int64(hops))},
	}
}

func rejectCode(t *testing.T, err error) serve.RejectCode {
	t.Helper()
	var rej *serve.Reject
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v (%T), want *serve.Reject", err, err)
	}
	return rej.Code
}

// TestRejectTaxonomy exercises every admission refusal and its transport
// status mapping.
func TestRejectTaxonomy(t *testing.T) {
	_, srv := simService(t, 2, messengers.Config{}, serve.Config{
		Tenants: []serve.TenantConfig{
			{ID: "a", Quota: serve.Quota{MaxProgram: 256, MaxLive: 1, MaxQueue: 1}},
		},
	})

	if _, _, err := srv.Submit(walkerSub("nobody", 1, 0)); rejectCode(t, err) != serve.RejectUnknownTenant {
		t.Errorf("unknown tenant: got %v", err)
	}
	if _, _, err := srv.Submit(serve.Submission{Tenant: "a", Name: "bad", Source: "hop(("}); rejectCode(t, err) != serve.RejectVerify {
		t.Errorf("unparsable program: got %v", err)
	}
	// Kind-faulting program: parses and compiles, but the kind-flow
	// verifier proves it faults — a distinct 400 from RejectVerify.
	_, _, illErr := srv.Submit(serve.Submission{Tenant: "a", Name: "ill", Source: `x = "a" - "b";`})
	if rejectCode(t, illErr) != serve.RejectIllTyped {
		t.Errorf("ill-typed program: got %v", illErr)
	}
	var illRej *serve.Reject
	errors.As(illErr, &illRej)
	if illRej.HTTPStatus() != 400 {
		t.Errorf("ill-typed status = %d, want 400", illRej.HTTPStatus())
	}
	if _, _, err := srv.Submit(serve.Submission{Tenant: "a", Name: "big",
		Source: "x = 1; " + strings.Repeat("x = x + 1; ", 64)}); rejectCode(t, err) != serve.RejectTooLarge {
		t.Errorf("oversized program: got %v", err)
	}
	// MaxLive 1, MaxQueue 1: first admitted, second queued, third bounced.
	if _, st, err := srv.Submit(walkerSub("a", 1, 0)); err != nil || st != serve.StatusAdmitted {
		t.Fatalf("first submit: %v %v", st, err)
	}
	if _, st, err := srv.Submit(walkerSub("a", 1, 0)); err != nil || st != serve.StatusQueued {
		t.Fatalf("second submit: %v %v", st, err)
	}
	_, _, err := srv.Submit(walkerSub("a", 1, 0))
	if rejectCode(t, err) != serve.RejectBackpressure {
		t.Errorf("overflow: got %v", err)
	}
	var rej *serve.Reject
	errors.As(err, &rej)
	if rej.HTTPStatus() != 429 {
		t.Errorf("backpressure status = %d, want 429", rej.HTTPStatus())
	}
	srv.Drain()
	if _, _, err := srv.Submit(walkerSub("a", 1, 0)); rejectCode(t, err) != serve.RejectDraining {
		t.Errorf("draining: got %v", err)
	}
}

// evictionRun drives one eviction scenario on the sim engine and returns
// the completions and final stats.
func evictionRun(t *testing.T, quota serve.Quota, sub serve.Submission) (serve.Completion, serve.TenantStats, *messengers.System) {
	t.Helper()
	var comps []serve.Completion
	sys, srv := simService(t, 2, messengers.Config{}, serve.Config{
		Tenants:    []serve.TenantConfig{{ID: "a", Quota: quota}},
		OnComplete: func(c serve.Completion) { comps = append(comps, c) },
	})
	if _, _, err := srv.Submit(sub); err != nil {
		t.Fatal(err)
	}
	// RunSim returning at all is the liveness statement: the kernel drains
	// only when the GVT/termination books balance, so an eviction that
	// leaked liveness (or wedged GVT) would hang here, not just fail.
	sys.RunSim()
	if len(comps) != 1 {
		t.Fatalf("%d completions, want 1", len(comps))
	}
	if live := sys.Live(); live != 0 {
		t.Fatalf("%d live work after quiescence", live)
	}
	if srv.LiveSessions() != 0 {
		t.Fatal("server still tracks live sessions")
	}
	return comps[0], srv.Stats()[0], sys
}

// TestStepBudgetEvictionMidHopSim: a multi-hop walker whose instruction
// budget trips partway through its journey must terminate cleanly — the
// session ends as evicted, its liveness is released, and the system
// quiesces with GVT advancing. (Satellite of the admission tentpole.)
func TestStepBudgetEvictionMidHopSim(t *testing.T) {
	comp, ts, sys := evictionRun(t,
		serve.Quota{StepBudget: 100},
		walkerSub("a", 50, 0))
	if !comp.Evicted {
		t.Fatal("walker was not evicted")
	}
	if !strings.Contains(comp.Reason, "step budget") {
		t.Errorf("reason = %q", comp.Reason)
	}
	if ts.MaxSessionSteps > 100 {
		t.Errorf("session consumed %d steps over budget 100", ts.MaxSessionSteps)
	}
	if ts.Violations != 0 {
		t.Errorf("%d violations", ts.Violations)
	}
	if ev := sys.TotalStats().Evicted; ev != 1 {
		t.Errorf("daemon evicted count = %d, want 1", ev)
	}
	// The walker made progress before tripping: it hopped at least once.
	if ts.Hops == 0 {
		t.Error("walker never hopped; budget tripped before mid-journey")
	}
	if len(sys.Errors()) != 0 {
		t.Errorf("eviction recorded as program error: %v", sys.Errors())
	}
}

// TestHopRateEviction: the hop-rate bucket empties mid-journey and the
// walker is evicted at a nav boundary.
func TestHopRateEviction(t *testing.T) {
	comp, ts, _ := evictionRun(t,
		serve.Quota{HopRate: 0.5, HopBurst: 3},
		walkerSub("a", 50, 0))
	if !comp.Evicted {
		t.Fatal("walker was not evicted")
	}
	if !strings.Contains(comp.Reason, "hop rate") {
		t.Errorf("reason = %q", comp.Reason)
	}
	if ts.Hops == 0 || ts.Hops > 3 {
		t.Errorf("charged hops = %d, want 1..3 (burst)", ts.Hops)
	}
}

// TestMemCapEviction: a Messenger carrying more serialized state than the
// tenant's cap is evicted at the first nav boundary. The program carries
// an aggregate so the kind verifier derives no static state bound — this
// must take the dynamic CheckMem path, not the admission pre-check.
func TestMemCapEviction(t *testing.T) {
	sub := walkerSub("a", 5, 0)
	sub.Source = "pad = array(2); " + walker
	sub.Vars["ballast"] = messengers.StrValue(strings.Repeat("m", 4096))
	comp, _, _ := evictionRun(t, serve.Quota{MemBudget: 512}, sub)
	if !comp.Evicted {
		t.Fatal("oversized messenger was not evicted")
	}
	if !strings.Contains(comp.Reason, "exceeds cap") {
		t.Errorf("reason = %q", comp.Reason)
	}
}

// TestStateBoundRejection: when the kind verifier proves every value the
// Messenger can carry at a nav pause is a scalar, the worst-case snapshot
// size is static — a submission whose bound (program state plus injected
// ballast) already exceeds the memory cap is refused at admission, before
// a single VM step, instead of being launched and evicted at its first
// hop.
func TestStateBoundRejection(t *testing.T) {
	_, srv := simService(t, 2, messengers.Config{}, serve.Config{
		Tenants: []serve.TenantConfig{{ID: "a", Quota: serve.Quota{MemBudget: 512}}},
	})
	sub := walkerSub("a", 5, 0) // all-scalar walker: statically boundable
	sub.Vars["ballast"] = messengers.StrValue(strings.Repeat("m", 4096))
	_, _, err := srv.Submit(sub)
	if rejectCode(t, err) != serve.RejectStateBound {
		t.Fatalf("over-bound submission: got %v", err)
	}
	var rej *serve.Reject
	errors.As(err, &rej)
	if rej.HTTPStatus() != 413 {
		t.Errorf("state-bound status = %d, want 413", rej.HTTPStatus())
	}
	ts := srv.Stats()[0]
	if ts.Admitted != 0 || ts.Live != 0 || ts.Steps != 0 {
		t.Errorf("rejected submission left traces: %+v", ts)
	}
	// The same program under the cap (no ballast) is admitted: the bound
	// itself is small.
	if _, _, err := srv.Submit(walkerSub("a", 1, 0)); err != nil {
		t.Errorf("under-bound submission rejected: %v", err)
	}
}

// TestIllTypedRejectionChargesNoSteps: a kind-faulting program must be
// refused by the verifier at admission — no session is created, no VM
// step is metered, and the per-tenant ill-typed counter (surfaced via
// /v1/stats) records the refusal.
func TestIllTypedRejectionChargesNoSteps(t *testing.T) {
	_, srv := simService(t, 2, messengers.Config{}, serve.Config{
		Tenants: []serve.TenantConfig{{ID: "a", Quota: serve.Quota{StepBudget: 4096}}},
	})
	_, _, err := srv.Submit(serve.Submission{
		Tenant: "a", Name: "ill",
		// Both branches leave m a proven Str (the join keeps the kind
		// exact), so subtracting from it faults on every execution.
		Source: `if (n > 0) { m = "big"; } else { m = "small"; } x = m - 1;`,
	})
	if rejectCode(t, err) != serve.RejectIllTyped {
		t.Fatalf("ill-typed program: got %v", err)
	}
	if !strings.Contains(err.Error(), "ill-typed") {
		t.Errorf("rejection does not carry the proof: %v", err)
	}
	ts := srv.Stats()[0]
	if ts.IllTyped != 1 || ts.Rejected != 1 {
		t.Errorf("ill_typed=%d rejected=%d, want 1/1", ts.IllTyped, ts.Rejected)
	}
	if ts.Steps != 0 || ts.Admitted != 0 || ts.Live != 0 {
		t.Errorf("ill-typed program touched the VM: %+v", ts)
	}
	if srv.LiveSessions() != 0 {
		t.Error("rejected submission left a live session")
	}
}

// TestStepBudgetEvictionMidHopTCP is the same mid-hop budget exhaustion on
// the real TCP engine: clean termination, released liveness, quiescence.
func TestStepBudgetEvictionMidHopTCP(t *testing.T) {
	done := make(chan serve.Completion, 1)
	sys, srv := tcpService(t, 2, messengers.Config{}, serve.Config{
		Tenants:    []serve.TenantConfig{{ID: "a", Quota: serve.Quota{StepBudget: 100}}},
		OnComplete: func(c serve.Completion) { done <- c },
	})
	if _, _, err := srv.Submit(walkerSub("a", 50, 0)); err != nil {
		t.Fatal(err)
	}
	var comp serve.Completion
	select {
	case comp = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("evicted session never completed")
	}
	if !comp.Evicted || !strings.Contains(comp.Reason, "step budget") {
		t.Fatalf("completion = %+v", comp)
	}
	srv.Drain()
	srv.WaitIdle()
	ts := srv.Stats()[0]
	if ts.MaxSessionSteps > 100 {
		t.Errorf("session consumed %d steps over budget 100", ts.MaxSessionSteps)
	}
	if ts.Violations != 0 {
		t.Errorf("%d violations", ts.Violations)
	}
	if ev := sys.TotalStats().Evicted; ev == 0 {
		t.Error("no daemon recorded the eviction")
	}
	if len(sys.Errors()) != 0 {
		t.Errorf("eviction recorded as program error: %v", sys.Errors())
	}
}

// TestFairShareQueueing: one tenant floods its queue; another tenant's
// trickle must still be admitted and complete (round-robin pump, not FIFO
// across tenants).
func TestFairShareQueueing(t *testing.T) {
	quota := serve.Quota{MaxLive: 1, MaxQueue: 64}
	counts := map[string]int{}
	sys, srv := simService(t, 2, messengers.Config{}, serve.Config{
		Tenants: []serve.TenantConfig{
			{ID: "flood", Quota: quota},
			{ID: "trickle", Quota: quota},
		},
		OnComplete: func(c serve.Completion) { counts[c.Tenant]++ },
	})
	for i := 0; i < 30; i++ {
		if _, _, err := srv.Submit(walkerSub("flood", 2, i%2)); err != nil {
			t.Fatalf("flood %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, _, err := srv.Submit(walkerSub("trickle", 2, i%2)); err != nil {
			t.Fatalf("trickle %d: %v", i, err)
		}
	}
	sys.RunSim()
	if counts["flood"] != 30 || counts["trickle"] != 3 {
		t.Errorf("completions = %v, want flood:30 trickle:3", counts)
	}
	for _, ts := range srv.Stats() {
		if ts.Queue != 0 || ts.Live != 0 {
			t.Errorf("tenant %s: queue=%d live=%d after quiescence", ts.ID, ts.Queue, ts.Live)
		}
	}
}

// TestQuotaUnderFaults: message drops and duplicates (with recovery
// retransmitting and suppressing) must not corrupt quota accounting — no
// session exceeds its budget, and every admitted session terminates.
func TestQuotaUnderFaults(t *testing.T) {
	var comps int
	plan := &messengers.FaultPlan{Seed: 7, Drop: 0.15, Dup: 0.25}
	sys, srv := simService(t, 2, messengers.Config{Faults: plan, RecoveryRetain: 8}, serve.Config{
		Tenants:    []serve.TenantConfig{{ID: "a", Quota: serve.Quota{StepBudget: 4096, MaxLive: 8, MaxQueue: 64}}},
		OnComplete: func(serve.Completion) { comps++ },
	})
	const n = 24
	for i := 0; i < n; i++ {
		if _, _, err := srv.Submit(walkerSub("a", 4, i%2)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	sys.RunSim()
	ts := srv.Stats()[0]
	if ts.Admitted != n {
		t.Errorf("admitted = %d, want %d", ts.Admitted, n)
	}
	if comps != n {
		t.Errorf("%d completions, want %d", comps, n)
	}
	if ts.Violations != 0 {
		t.Errorf("%d quota violations under faults", ts.Violations)
	}
	if ts.MaxSessionSteps > 4096 {
		t.Errorf("session consumed %d steps over budget", ts.MaxSessionSteps)
	}
	if srv.LiveSessions() != 0 {
		t.Error("sessions leaked under faults")
	}
}

// TestHogEvictionAmongWalkers: runaway hogs must be evicted while
// well-behaved walkers complete untouched, on shared daemons.
func TestHogEvictionAmongWalkers(t *testing.T) {
	evicted, completed := 0, 0
	sys, srv := simService(t, 2, messengers.Config{}, serve.Config{
		Tenants: []serve.TenantConfig{{ID: "a", Quota: serve.Quota{StepBudget: 2048, MaxLive: 8, MaxQueue: 64}}},
		OnComplete: func(c serve.Completion) {
			if c.Evicted {
				evicted++
			} else {
				completed++
			}
		},
	})
	for i := 0; i < 12; i++ {
		sub := walkerSub("a", 3, i%2)
		if i%4 == 3 {
			sub.Name, sub.Source, sub.Vars = "hog", hog, nil
		}
		if _, _, err := srv.Submit(sub); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	sys.RunSim()
	if evicted != 3 || completed != 9 {
		t.Errorf("evicted=%d completed=%d, want 3/9", evicted, completed)
	}
}

// TestDrainTCP: draining rejects new work, flushes queues, and WaitIdle
// returns once in-flight sessions finish.
func TestDrainTCP(t *testing.T) {
	_, srv := tcpService(t, 2, messengers.Config{}, serve.Config{
		Tenants: []serve.TenantConfig{{ID: "a", Quota: serve.Quota{MaxLive: 2, MaxQueue: 16}}},
	})
	for i := 0; i < 8; i++ {
		if _, _, err := srv.Submit(walkerSub("a", 2, i%2)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	srv.Drain()
	if _, _, err := srv.Submit(walkerSub("a", 2, 0)); rejectCode(t, err) != serve.RejectDraining {
		t.Errorf("post-drain submit: %v", err)
	}
	doneCh := make(chan struct{})
	go func() { srv.WaitIdle(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitIdle never returned")
	}
	ts := srv.Stats()[0]
	if ts.Queue != 0 {
		t.Errorf("queue = %d after drain", ts.Queue)
	}
	if ts.Live != 0 {
		t.Errorf("live = %d after drain", ts.Live)
	}
}

// TestHTTPFrontEnd drives the JSON API end to end on the TCP engine.
func TestHTTPFrontEnd(t *testing.T) {
	done := make(chan serve.Completion, 4)
	_, srv := tcpService(t, 2, messengers.Config{}, serve.Config{
		Tenants:    []serve.TenantConfig{{ID: "a", Quota: serve.Quota{StepBudget: 4096, MaxLive: 4, MaxQueue: 8}}},
		OnComplete: func(c serve.Completion) { done <- c },
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/submit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, out := post(`{"tenant":"a","name":"walker","node":"r0","daemon":0,
		"source":` + fmt.Sprintf("%q", walker) + `,"vars":{"hops":2}}`)
	if code != http.StatusAccepted || out["status"] != "admitted" {
		t.Fatalf("submit: %d %v", code, out)
	}
	select {
	case c := <-done:
		if c.Evicted {
			t.Errorf("walker evicted: %s", c.Reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session never completed")
	}

	if code, _ := post(`{"tenant":"nobody","name":"w","source":"x = 1;"}`); code != 403 {
		t.Errorf("unknown tenant status = %d, want 403", code)
	}
	if code, _ := post(`{"tenant":"a","name":"bad","source":"hop(("}`); code != 400 {
		t.Errorf("verify failure status = %d, want 400", code)
	}

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Tenants []serve.TenantStats `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Tenants) != 1 || stats.Tenants[0].Admitted == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestRecoveryRespawnDenied: ensure unknown-session gates exist and deny.
// A direct Session lookup for a session that never existed must return a
// gate that refuses execution rather than nil (the recovery respawn path
// depends on this to keep finished sessions from re-running over budget).
func TestRecoveryRespawnDenied(t *testing.T) {
	_, srv := simService(t, 2, messengers.Config{}, serve.Config{
		Tenants: []serve.TenantConfig{{ID: "a"}},
	})
	gate := srv.Session("a", 999)
	if gate == nil {
		t.Fatal("unknown session resolved to nil gate")
	}
	if gate.Allowance() != 0 {
		t.Error("unknown session was granted instruction allowance")
	}
	if err := gate.ChargeHop(0, 1); err == nil {
		t.Error("unknown session was allowed to hop")
	}
}
