package bytecode

import (
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics: program bytes may arrive over the wire (MsgProgram
// broadcasts, the A4 code-carrying mode); garbage must error, not panic or
// balloon allocations.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode(%d bytes) panicked: %v", len(data), r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeMutatedPrograms flips bytes in a valid encoding.
func TestDecodeMutatedPrograms(t *testing.T) {
	base := sampleProgram().Encode()
	f := func(pos uint16, val byte) bool {
		data := make([]byte, len(base))
		copy(data, base)
		data[int(pos)%len(data)] = val
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("mutated Decode panicked: %v", r)
			}
		}()
		if p, err := Decode(data); err == nil && p != nil {
			_ = p.Hash()
			_ = p.Disassemble()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
