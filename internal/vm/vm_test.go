package vm

import (
	"errors"
	"strings"
	"testing"

	"messengers/internal/bytecode"
	"messengers/internal/compile"
	"messengers/internal/value"
)

// testHost is a standalone Host for VM tests: one node-variable map and
// fixed network variables.
type testHost struct {
	node   map[string]value.Value
	net    map[string]value.Value
	output []string
}

func newTestHost() *testHost {
	return &testHost{
		node: map[string]value.Value{},
		net: map[string]value.Value{
			"address": value.Str("d0"),
			"last":    value.Str("link0"),
			"node":    value.Str("init"),
		},
	}
}

func (h *testHost) NodeVar(name string) value.Value { return h.node[name] }
func (h *testHost) SetNodeVar(name string, v value.Value) {
	h.node[name] = v
}
func (h *testHost) NetVar(name string) (value.Value, bool) {
	v, ok := h.net[name]
	return v, ok
}
func (h *testHost) Print(s string) { h.output = append(h.output, s) }

// runScript compiles src and runs it to the first pause, failing the test
// on compile or runtime errors.
func runScript(t *testing.T, src string) (*VM, Result, *testHost) {
	t.Helper()
	prog, err := compile.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := New(prog, nil)
	h := newTestHost()
	res, err := m.Run(h, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res, h
}

func TestArithmeticAndVariables(t *testing.T) {
	m, res, _ := runScript(t, `
		a = 2 + 3 * 4;
		b = (2 + 3) * 4;
		c = 7 / 2;
		d = 7.0 / 2;
		e = 7 % 3;
		f = -a;
		g = 1.5 + 1;
		s = "x" + "y" + 1;
	`)
	if res.Pause != PauseEnd {
		t.Fatalf("pause = %v", res.Pause)
	}
	tests := map[string]value.Value{
		"a": value.Int(14),
		"b": value.Int(20),
		"c": value.Int(3),
		"d": value.Num(3.5),
		"e": value.Int(1),
		"f": value.Int(-14),
		"g": value.Num(2.5),
		"s": value.Str("xy1"),
	}
	for name, want := range tests {
		if got := m.Var(name); !got.Equal(want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	m, _, _ := runScript(t, `
		a = 1 < 2;
		b = 2 <= 1;
		c = "abc" == "abc";
		d = 1 != 1.0;
		e = 1 && "yes";
		f = 0 || "";
		g = !0;
		h = 3 > 2 && 2 > 3 || 1;
	`)
	want := map[string]int64{"a": 1, "b": 0, "c": 1, "d": 0, "e": 1, "f": 0, "g": 1, "h": 1}
	for name, w := range want {
		if got := m.Var(name).AsInt(); got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	// f() would fail as an unknown native if executed; short-circuit must
	// skip it.
	m, res, _ := runScript(t, `
		x = 0 && boom();
		y = 1 || boom();
	`)
	if res.Pause != PauseEnd {
		t.Fatalf("pause = %v (short-circuit failed, tried to call boom)", res.Pause)
	}
	if m.Var("x").AsInt() != 0 || m.Var("y").AsInt() != 1 {
		t.Errorf("x=%v y=%v", m.Var("x"), m.Var("y"))
	}
}

func TestControlFlow(t *testing.T) {
	m, _, _ := runScript(t, `
		total = 0;
		for (i = 0; i < 10; i++) {
			if (i % 2 == 0) continue;
			if (i == 9) break;
			total += i;
		}
		n = 0;
		while (n < 5) n = n + 1;
		neg = 10;
		neg -= 3;
	`)
	if got := m.Var("total").AsInt(); got != 1+3+5+7 {
		t.Errorf("total = %d, want 16", got)
	}
	if got := m.Var("n").AsInt(); got != 5 {
		t.Errorf("n = %d", got)
	}
	if got := m.Var("neg").AsInt(); got != 7 {
		t.Errorf("neg = %d", got)
	}
}

func TestAssignmentAsExpression(t *testing.T) {
	m, _, _ := runScript(t, `
		count = 0;
		while ((x = next()) != nil) { count += x; }
	`)
	_ = m
	// next() is an unknown native: the first call pauses. Re-check with a
	// self-contained variant instead:
	m2, _, _ := runScript(t, `
		a = (b = 5) + 1;
		arr = [0, 0];
		c = (arr[1] = 9) + 1;
	`)
	if m2.Var("a").AsInt() != 6 || m2.Var("b").AsInt() != 5 {
		t.Errorf("a=%v b=%v", m2.Var("a"), m2.Var("b"))
	}
	if m2.Var("c").AsInt() != 10 {
		t.Errorf("c=%v", m2.Var("c"))
	}
	if e, _ := m2.Var("arr").Index(1); e.AsInt() != 9 {
		t.Errorf("arr[1]=%v", e)
	}
}

func TestArraysAndIndexing(t *testing.T) {
	m, _, _ := runScript(t, `
		a = [1, 2, [3, 4]];
		a[0] = 10;
		a[2][1] = 40;
		x = a[0] + a[2][1];
		a[1] += 5;
		b = array(3, 0);
		b[2] = 9;
		n = len(a);
	`)
	if got := m.Var("x").AsInt(); got != 50 {
		t.Errorf("x = %d", got)
	}
	if e, _ := m.Var("a").Index(1); e.AsInt() != 7 {
		t.Errorf("a[1] = %v", e)
	}
	if e, _ := m.Var("b").Index(2); e.AsInt() != 9 {
		t.Errorf("b[2] = %v", e)
	}
	if got := m.Var("n").AsInt(); got != 3 {
		t.Errorf("n = %d", got)
	}
}

func TestNodeAndNetworkVariables(t *testing.T) {
	m, _, h := runScript(t, `
		node.counter = 1;
		node.counter = node.counter + 41;
		here = $address;
		via = $last;
	`)
	if got := h.node["counter"].AsInt(); got != 42 {
		t.Errorf("node.counter = %d", got)
	}
	if got := m.Var("here").AsStr(); got != "d0" {
		t.Errorf("here = %q", got)
	}
	if got := m.Var("via").AsStr(); got != "link0" {
		t.Errorf("via = %q", got)
	}
}

func TestUserFunctions(t *testing.T) {
	m, _, _ := runScript(t, `
		func fib(n) {
			if (n < 2) return n;
			return fib(n - 1) + fib(n - 2);
		}
		func touch() { msgr.touched = 1; return nil; }
		r = fib(10);
		touch();
	`)
	if got := m.Var("r").AsInt(); got != 55 {
		t.Errorf("fib(10) = %d", got)
	}
	if got := m.Var("touched").AsInt(); got != 1 {
		t.Errorf("touched = %v (msgr.x inside function failed)", m.Var("touched"))
	}
}

func TestFunctionLocalsAreNotMessengerVars(t *testing.T) {
	m, _, _ := runScript(t, `
		func f(a) { temp = a * 2; return temp; }
		r = f(21);
	`)
	if got := m.Var("r").AsInt(); got != 42 {
		t.Errorf("r = %d", got)
	}
	if !m.Var("temp").IsNil() {
		t.Error("function local leaked into Messenger variables")
	}
}

func TestBuiltins(t *testing.T) {
	m, _, h := runScript(t, `
		a = len("hello");
		b = str(42) + "!";
		c = int("17") + int(2.9);
		d = num("2.5");
		e = abs(-3) + abs(-1.5);
		f = min(3, 1, 2);
		g = max(3, 1, 2);
		h = floor(2.7) + ceil(2.1);
		i = sqrt(16.0);
		j = pow(2, 10);
		k = substr("messenger", 0, 4);
		print("value:", a);
	`)
	checks := map[string]value.Value{
		"a": value.Int(5),
		"b": value.Str("42!"),
		"c": value.Int(19),
		"d": value.Num(2.5),
		"e": value.Num(4.5),
		"f": value.Int(1),
		"g": value.Int(3),
		"h": value.Num(5),
		"i": value.Num(4),
		"j": value.Num(1024),
		"k": value.Str("mess"),
	}
	for name, want := range checks {
		if got := m.Var(name); !got.Equal(want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if len(h.output) != 1 || h.output[0] != "value: 5" {
		t.Errorf("print output = %q", h.output)
	}
}

func TestMatrixBuiltins(t *testing.T) {
	m, _, _ := runScript(t, `
		mm = matrix(2, 3);
		matset(mm, 1, 2, 7.5);
		v = matget(mm, 1, 2);
		r = rows(mm);
		c = cols(mm);
	`)
	if m.Var("v").AsNum() != 7.5 || m.Var("r").AsInt() != 2 || m.Var("c").AsInt() != 3 {
		t.Errorf("v=%v r=%v c=%v", m.Var("v"), m.Var("r"), m.Var("c"))
	}
}

func TestCopyIsDeep(t *testing.T) {
	m, _, _ := runScript(t, `
		a = [1, 2];
		b = copy(a);
		a[0] = 99;
		x = b[0];
	`)
	if got := m.Var("x").AsInt(); got != 1 {
		t.Errorf("copy not deep: x = %d", got)
	}
}

func TestHopPause(t *testing.T) {
	m, res, _ := runScript(t, `
		steps = 1;
		hop(ll = "row", ldir = -);
		steps = 2;
	`)
	if res.Pause != PauseHop {
		t.Fatalf("pause = %v", res.Pause)
	}
	if len(res.Arms) != 1 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	arm := res.Arms[0]
	if arm.LN.AsStr() != "*" || arm.LL.AsStr() != "row" || arm.LDir.AsStr() != "-" {
		t.Errorf("arm = %+v", arm)
	}
	if m.Var("steps").AsInt() != 1 {
		t.Error("statements after hop should not have run")
	}
	// Resuming (as a clone at the destination would) continues after the
	// hop instruction.
	res2, err := m.Run(newTestHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pause != PauseEnd || m.Var("steps").AsInt() != 2 {
		t.Errorf("after resume: pause=%v steps=%v", res2.Pause, m.Var("steps"))
	}
}

func TestCreatePauseWithAllAndDefaults(t *testing.T) {
	_, res, _ := runScript(t, `create(ALL);`)
	if res.Pause != PauseCreate || !res.All {
		t.Fatalf("res = %+v", res)
	}
	arm := res.Arms[0]
	if arm.LN.AsStr() != "~" || arm.LL.AsStr() != "~" || arm.DN.AsStr() != "*" {
		t.Errorf("defaults wrong: %+v", arm)
	}
}

func TestCreateMultiArm(t *testing.T) {
	_, res, _ := runScript(t, `create(ln = "a", "b"; ll = "x", "y");`)
	if len(res.Arms) != 2 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	if res.Arms[0].LN.AsStr() != "a" || res.Arms[0].LL.AsStr() != "x" {
		t.Errorf("arm 0 = %+v", res.Arms[0])
	}
	if res.Arms[1].LN.AsStr() != "b" || res.Arms[1].LL.AsStr() != "y" {
		t.Errorf("arm 1 = %+v", res.Arms[1])
	}
}

func TestDeletePause(t *testing.T) {
	_, res, _ := runScript(t, `delete(ll = "corridor");`)
	if res.Pause != PauseDelete {
		t.Fatalf("pause = %v", res.Pause)
	}
}

func TestNativePauseAndResume(t *testing.T) {
	m, res, _ := runScript(t, `r = work(2, 3);`)
	if res.Pause != PauseNative || res.Native != "work" {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Args) != 2 || res.Args[0].AsInt() != 2 || res.Args[1].AsInt() != 3 {
		t.Fatalf("args = %v", res.Args)
	}
	m.PushResult(value.Int(6))
	res2, err := m.Run(newTestHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pause != PauseEnd || m.Var("r").AsInt() != 6 {
		t.Errorf("r = %v", m.Var("r"))
	}
}

func TestSchedPauses(t *testing.T) {
	m, res, _ := runScript(t, `
		sched_abs(2.0);
		sched_dlt(0.5);
		x = 1;
	`)
	if res.Pause != PauseSchedAbs || res.Time != 2.0 {
		t.Fatalf("res = %+v", res)
	}
	h := newTestHost()
	res2, err := m.Run(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pause != PauseSchedDlt || res2.Time != 0.5 {
		t.Fatalf("res2 = %+v", res2)
	}
	res3, err := m.Run(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Pause != PauseEnd || m.Var("x").AsInt() != 1 {
		t.Errorf("final: %+v x=%v", res3, m.Var("x"))
	}
}

func TestEndStatement(t *testing.T) {
	m, res, _ := runScript(t, `
		x = 1;
		end;
		x = 2;
	`)
	if res.Pause != PauseEnd || m.Var("x").AsInt() != 1 {
		t.Errorf("end did not terminate: %v", m.Var("x"))
	}
}

func TestReturnInMainTerminates(t *testing.T) {
	m, res, _ := runScript(t, `
		x = 1;
		return;
		x = 2;
	`)
	if res.Pause != PauseEnd || m.Var("x").AsInt() != 1 {
		t.Errorf("return did not terminate main: %v", m.Var("x"))
	}
}

func TestRuntimeErrors(t *testing.T) {
	// Kind faults the verifier can prove never compile anymore (see
	// TestStaticKindErrors); here each faulting operand is laundered
	// through an array index — ⊤ to the kind analysis — so the dynamic
	// guards stay covered.
	cases := map[string]string{
		`x = 1 / 0;`:                      "division by zero",
		`x = 1 % 0;`:                      "modulo by zero",
		`a = ["a"][0]; x = a - ["b"][0];`: "operator not defined on strings",
		`x = [[1]][0] + 1;`:               "arithmetic on",
		`x = -["s"][0];`:                  "cannot negate",
		`x = [1, 2][5];`:                  "out of range",
		`x = [1][["a"][0]];`:              "index must be numeric",
		`x = 1 < ["s"][0];`:               "cannot compare",
		`x = $bogus;`:                     "unknown network variable",
		`x = matget([1][0], 0, 0);`:       "want a matrix",
		`x = int("zz");`:                  "cannot parse",
		`x = sqrt(["s"][0]);`:             "sqrt of",
		`x = substr("ab", 3, 9);`:         "out of range",
	}
	for src, want := range cases {
		prog, err := compile.Compile("err", src)
		if err != nil {
			t.Errorf("compile(%q): %v", src, err)
			continue
		}
		m := New(prog, nil)
		_, err = m.Run(newTestHost(), 0)
		if err == nil {
			t.Errorf("Run(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Run(%q) error = %q, want substring %q", src, err, want)
		}
	}
}

// TestStaticKindErrors pins the compile-time half of the split above: the
// same faults with statically proven operand kinds are rejected by the
// kind-flow verifier before a VM ever exists, tagged ErrIllTyped.
func TestStaticKindErrors(t *testing.T) {
	cases := map[string]string{
		`x = "a" - "b";`:       "operator not defined on strings",
		`x = [1] + 1;`:         "arithmetic on",
		`x = -"s";`:            "cannot negate",
		`x = [1]["a"];`:        "index must be numeric",
		`x = 1 < "s";`:         "cannot compare",
		`x = len();`:           "want 1 arguments",
		`x = matget(1, 0, 0);`: "want a matrix",
		`x = sqrt("s");`:       "proven str",
	}
	for src, want := range cases {
		_, err := compile.Compile("err", src)
		if err == nil {
			t.Errorf("compile(%q) should fail statically", src)
			continue
		}
		if !errors.Is(err, bytecode.ErrIllTyped) {
			t.Errorf("compile(%q) error %q is not ErrIllTyped", src, err)
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("compile(%q) error = %q, want substring %q", src, err, want)
		}
	}
}

func TestInstructionBudget(t *testing.T) {
	prog, err := compile.Compile("loop", `for (;;) { x = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, nil)
	_, err = m.Run(newTestHost(), 1000)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v, want budget exceeded", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	prog, err := compile.Compile("rec", `
		func f(n) { return f(n + 1); }
		x = f(0);
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, nil)
	_, err = m.Run(newTestHost(), 0)
	if err == nil || !strings.Contains(err.Error(), "call depth") {
		t.Errorf("err = %v, want call depth exceeded", err)
	}
}

func TestStepCounting(t *testing.T) {
	_, res, _ := runScript(t, `x = 1; y = 2;`)
	// const+store, const+store, end = 5 instructions.
	if res.Steps != 5 {
		t.Errorf("steps = %d, want 5", res.Steps)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		`func f() { return x; } y = f();`: "undefined local",
		`func f(a) { } x = f(1, 2);`:      "takes 1 arguments",
		`x = sched_abs(1, 2);`:            "takes 1 argument",
		`break;`:                          "break outside loop",
		`continue;`:                       "continue outside loop",
	}
	for src, want := range cases {
		_, err := compile.Compile("bad", src)
		if err == nil {
			t.Errorf("Compile(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Compile(%q) error = %q, want %q", src, err, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	prog, err := compile.Compile("clone", `
		a = [1, 2];
		hop(ll = "x");
		a[0] = a[0] + 100;
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, nil)
	h := newTestHost()
	if _, err := m.Run(h, 0); err != nil {
		t.Fatal(err)
	}
	c1, c2 := m.Clone(), m.Clone()
	if _, err := c1.Run(h, 0); err != nil {
		t.Fatal(err)
	}
	if e, _ := c1.Var("a").Index(0); e.AsInt() != 101 {
		t.Errorf("clone 1 a[0] = %v", e)
	}
	if e, _ := c2.Var("a").Index(0); e.AsInt() != 1 {
		t.Errorf("clone 2 saw clone 1's mutation: %v", e)
	}
}

func TestSnapshotRestoreMidExecution(t *testing.T) {
	prog, err := compile.Compile("snap", `
		func helper(n) {
			msgr.before = n;
			hop(ll = "go");
			return n * 2;
		}
		acc = [5];
		r = helper(21);
		acc[0] = acc[0] + r;
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, nil)
	h := newTestHost()
	res, err := m.Run(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pause != PauseHop {
		t.Fatalf("pause = %v", res.Pause)
	}

	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.WireSize(); got != len(snap) {
		t.Errorf("WireSize = %d, snapshot = %d bytes", got, len(snap))
	}
	m2, err := Restore(prog, snap)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pause != PauseEnd {
		t.Fatalf("restored run pause = %v", res2.Pause)
	}
	if e, _ := m2.Var("acc").Index(0); e.AsInt() != 47 {
		t.Errorf("acc[0] = %v, want 47 (5 + 42)", e)
	}
	if m2.Var("before").AsInt() != 21 {
		t.Errorf("before = %v", m2.Var("before"))
	}
}

func TestRestoreErrors(t *testing.T) {
	prog := compile.MustCompile("p", `x = 1;`)
	cases := [][]byte{
		nil,
		{0, 0, 0, 0},             // vars only
		{0, 0, 0, 0, 1, 0, 0, 0}, // frame header truncated
	}
	for i, buf := range cases {
		if _, err := Restore(prog, buf); err == nil {
			t.Errorf("case %d: Restore should fail", i)
		}
	}
	// A snapshot from a different program must be rejected when its pc or
	// function index is out of range.
	big := compile.MustCompile("big", `
		func f(a) { hop(ll = "x"); return a; }
		y = f(1);
	`)
	m := New(big, nil)
	if _, err := m.Run(newTestHost(), 0); err != nil {
		t.Fatal(err)
	}
	crossSnap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(prog, crossSnap); err == nil {
		t.Error("cross-program restore should fail validation")
	}
}

func TestProgramEncodeDecodeRoundTrip(t *testing.T) {
	prog := compile.MustCompile("roundtrip", `
		func f(a, b) { return a + b; }
		x = f(1, 2.5);
		node.y = "str";
		hop(ll = $last);
	`)
	enc := prog.Encode()
	dec, err := bytecode.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash() != prog.Hash() {
		t.Error("hash mismatch after round trip")
	}
	if dec.Name != prog.Name || dec.Source != prog.Source {
		t.Errorf("metadata mismatch: %q %q", dec.Name, dec.Source)
	}
	// The decoded program must execute identically.
	m := New(dec, nil)
	res, err := m.Run(newTestHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pause != PauseHop || m.Var("x").AsNum() != 3.5 {
		t.Errorf("decoded program: %v x=%v", res.Pause, m.Var("x"))
	}
}

func TestDecodeCorruptProgram(t *testing.T) {
	prog := compile.MustCompile("c", `x = 1;`)
	enc := prog.Encode()
	for _, cut := range []int{0, 3, len(enc) / 2} {
		if _, err := bytecode.Decode(enc[:cut]); err == nil {
			t.Errorf("Decode(truncated %d) should fail", cut)
		}
	}
}

func TestDisassembleMentionsKeyOps(t *testing.T) {
	prog := compile.MustCompile("d", `
		func f(a) { return a; }
		x = f(1);
		node.y = x;
		v = $last;
		create(ALL);
		hop(ll = "row");
	`)
	asm := prog.Disassemble()
	for _, want := range []string{"callf f", "storen y", "loadnet last", "create arms=1 ALL", "hop arms=1", "<main>"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestIsBuiltin(t *testing.T) {
	if !IsBuiltin("len") || IsBuiltin("definitely_not") {
		t.Error("IsBuiltin misclassifies")
	}
}
