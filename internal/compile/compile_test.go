package compile

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"messengers/internal/bytecode"
	"messengers/internal/value"
	"messengers/internal/vm"
)

// refHost is a minimal vm.Host for executing compiled test programs.
type refHost struct {
	node map[string]value.Value
	out  []string
}

func newRefHost() *refHost { return &refHost{node: map[string]value.Value{}} }

func (h *refHost) NodeVar(n string) value.Value       { return h.node[n] }
func (h *refHost) SetNodeVar(n string, v value.Value) { h.node[n] = v }
func (h *refHost) NetVar(string) (value.Value, bool)  { return value.Str("net"), true }
func (h *refHost) Print(s string)                     { h.out = append(h.out, s) }

func run(t *testing.T, src string) *vm.VM {
	t.Helper()
	prog, err := Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := vm.New(prog, nil)
	if _, err := m.Run(newRefHost(), 1<<22); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestConstantInterning(t *testing.T) {
	prog, err := Compile("t", `a = 5; b = 5; c = "x"; d = "x"; e = 5.0;`)
	if err != nil {
		t.Fatal(err)
	}
	// 5, "x", and 5.0 — int and num constants are distinct.
	if len(prog.Consts) != 3 {
		t.Errorf("consts = %v, want 3 interned", prog.Consts)
	}
}

func TestNamePooling(t *testing.T) {
	prog, err := Compile("t", `x = 1; x = x + 1; node.x = x; y = $x;`)
	if err != nil {
		t.Fatal(err)
	}
	// Names are shared across variable spaces: x, y.
	if len(prog.Names) != 2 {
		t.Errorf("names = %v", prog.Names)
	}
}

func TestJumpTargetsWithinBounds(t *testing.T) {
	srcs := []string{
		`if (1) { x = 1; } else { x = 2; }`,
		`while (x < 5) { x = x + 1; if (x == 3) continue; if (x == 4) break; }`,
		`for (i = 0; i < 3; i++) { for (j = 0; j < 3; j++) { if (i == j) continue; } }`,
		`a = 1 && 0 || 2 && 3;`,
		`for (;;) { break; }`,
	}
	for _, src := range srcs {
		prog, err := Compile("t", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for fi := range prog.Funcs {
			code := prog.Funcs[fi].Code
			for pc, ins := range code {
				if ins.Op == bytecode.OpJmp || ins.Op == bytecode.OpJz {
					if ins.A < 0 || int(ins.A) > len(code) {
						t.Errorf("%q: pc %d jumps to %d of %d", src, pc, ins.A, len(code))
					}
				}
			}
		}
	}
}

func TestMainEndsWithEnd(t *testing.T) {
	prog, err := Compile("t", `x = 1;`)
	if err != nil {
		t.Fatal(err)
	}
	code := prog.Funcs[0].Code
	if code[len(code)-1].Op != bytecode.OpEnd {
		t.Errorf("main must end with OpEnd, got %v", code[len(code)-1].Op)
	}
}

func TestFunctionsEndWithImplicitReturn(t *testing.T) {
	prog, err := Compile("t", `func f() { msgr.x = 1; } y = f();`)
	if err != nil {
		t.Fatal(err)
	}
	code := prog.Funcs[1].Code
	if code[len(code)-1].Op != bytecode.OpRet {
		t.Errorf("function must end with OpRet, got %v", code[len(code)-1].Op)
	}
}

func TestLocalsAllocation(t *testing.T) {
	prog, err := Compile("t", `
		func f(a, b) { c = a + b; d = c * 2; return d; }
		x = f(1, 2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs[1]
	if f.NumParams != 2 || f.NumLocals != 4 {
		t.Errorf("params=%d locals=%d, want 2, 4", f.NumParams, f.NumLocals)
	}
}

func TestMustCompilePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic")
		}
	}()
	MustCompile("bad", `x = ;`)
}

// --- differential property test: compiled execution vs direct AST-level
// reference evaluation of randomly generated integer expressions ---

// genExpr builds a random integer expression and its expected value.
// Divisions and modulo use (|rhs|+1) to avoid zero.
func genExpr(r *rand.Rand, depth int) (string, int64) {
	if depth <= 0 || r.Intn(4) == 0 {
		v := int64(r.Intn(201) - 100)
		if v < 0 {
			// Parenthesize negatives so they nest in any operator position.
			return fmt.Sprintf("(0 - %d)", -v), v
		}
		return fmt.Sprintf("%d", v), v
	}
	ls, lv := genExpr(r, depth-1)
	rs, rv := genExpr(r, depth-1)
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	case 3:
		d := rv
		if d < 0 {
			d = -d
		}
		d++
		return fmt.Sprintf("(%s / %d)", ls, d), lv / d
	case 4:
		d := rv
		if d < 0 {
			d = -d
		}
		d++
		return fmt.Sprintf("(%s %% %d)", ls, d), lv % d
	default:
		cmp := int64(0)
		if lv < rv {
			cmp = 1
		}
		return fmt.Sprintf("(%s < %s)", ls, rs), cmp
	}
}

func TestPropCompiledExpressionsMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, want := genExpr(r, 5)
		prog, err := Compile("prop", "result = "+src+";")
		if err != nil {
			t.Logf("compile %q: %v", src, err)
			return false
		}
		m := vm.New(prog, nil)
		if _, err := m.Run(newRefHost(), 1<<22); err != nil {
			t.Logf("run %q: %v", src, err)
			return false
		}
		got := m.Var("result").AsInt()
		if got != want {
			t.Logf("%s = %d, want %d", src, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropRandomControlFlowTerminates compiles and runs generated loop
// programs, checking the compiler never emits diverging jump patterns.
func TestPropRandomControlFlowTerminates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20) + 1
		step := r.Intn(3) + 1
		src := fmt.Sprintf(`
			count = 0;
			for (i = 0; i < %d; i += 0) {
				i = i + %d;
				if (i %% 2 == 0) { count += 2; continue; }
				count++;
			}
		`, n, step)
		// Reference computation.
		want := int64(0)
		for i := 0; i < n; {
			i += step
			if i%2 == 0 {
				want += 2
			} else {
				want++
			}
		}
		m := run(t, src)
		return m.Var("count").AsInt() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropCompilerOutputAlwaysValidates: every program the compiler emits
// must pass the bytecode verifier (the invariant daemons rely on).
func TestPropCompilerOutputAlwaysValidates(t *testing.T) {
	srcs := []string{
		`x = 1;`,
		`func f(a, b) { return a + b; } x = f(1, 2);`,
		`for (i = 0; i < 10; i++) { if (i % 2) continue; node.x = i; }`,
		`hop(ll = "a", "b"); create(ALL); delete(ln = *);`,
		`a = [1, [2, 3]]; a[1][0] = 9; s = $last; sched_abs(1.5);`,
		`while (1) { break; } x = len("s") && 1 || 0;`,
	}
	for _, src := range srcs {
		prog, err := Compile("v", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("%q: compiler emitted invalid code: %v", src, err)
		}
	}
	// And for random generated expressions.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, _ := genExpr(r, 4)
		prog, err := Compile("v", "x = "+src+";")
		if err != nil {
			return false
		}
		return prog.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentExpressions(t *testing.T) {
	m := run(t, `
		a = (b = 5) + 1;
		arr = [0, 0, 0];
		c = (arr[1] = 9) + 1;
		d = (node.k = 7) * 2;
		arr[2] += 5;
		arr[0] -= 3;
	`)
	checks := map[string]int64{"a": 6, "b": 5, "c": 10, "d": 14}
	for name, want := range checks {
		if got := m.Var(name).AsInt(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	arr := m.Var("arr")
	if e, _ := arr.Index(1); e.AsInt() != 9 {
		t.Errorf("arr[1] = %v", e)
	}
	if e, _ := arr.Index(2); e.AsInt() != 5 {
		t.Errorf("arr[2] = %v", e)
	}
	if e, _ := arr.Index(0); e.AsInt() != -3 {
		t.Errorf("arr[0] = %v", e)
	}
}

func TestCompoundAssignOnNodeIndex(t *testing.T) {
	prog, err := Compile("t", `
		node.v = [10, 20];
		node.v[1] += 2;
		x = node.v[1];
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, nil)
	if _, err := m.Run(newRefHost(), 1<<20); err != nil {
		t.Fatal(err)
	}
	if got := m.Var("x").AsInt(); got != 22 {
		t.Errorf("x = %d", got)
	}
}

func TestCompileErrorPaths(t *testing.T) {
	bad := map[string]string{
		`func f() { return q; } x = f();`: "undefined local",
		`x = sched_dlt();`:                "takes 1 argument",
		`x = M_sched_time_abs(1, 2);`:     "takes 1 argument",
	}
	for src, want := range bad {
		_, err := Compile("t", src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Compile(%q) = %v, want %q", src, err, want)
		}
	}
}

func TestStringConcatChains(t *testing.T) {
	m := run(t, `s = "a" + 1 + "b" + 2.5 + "c";`)
	if got := m.Var("s").AsStr(); got != "a1b2.5c" {
		t.Errorf("s = %q", got)
	}
}

func TestDeeplyNestedExpressions(t *testing.T) {
	var b strings.Builder
	b.WriteString("x = ")
	for i := 0; i < 200; i++ {
		b.WriteString("(1 + ")
	}
	b.WriteString("0")
	for i := 0; i < 200; i++ {
		b.WriteString(")")
	}
	b.WriteString(";")
	m := run(t, b.String())
	if got := m.Var("x").AsInt(); got != 200 {
		t.Errorf("x = %d", got)
	}
}
