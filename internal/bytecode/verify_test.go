package bytecode

import (
	"strings"
	"testing"

	"messengers/internal/value"
)

func validProgram() *Program {
	return &Program{
		Name:   "v",
		Consts: []value.Value{value.Int(1)},
		Names:  []string{"x"},
		Funcs: []FuncInfo{
			{Name: "<main>", Code: []Instr{{Op: OpConst}, {Op: OpStoreM}, {Op: OpEnd}}},
			{Name: "f", NumParams: 1, NumLocals: 2, Code: []Instr{{Op: OpLoadL}, {Op: OpRet}}},
		},
	}
}

func TestValidateAcceptsValid(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		want   string
	}{
		{"no funcs", func(p *Program) { p.Funcs = nil }, "no main body"},
		{"empty code", func(p *Program) { p.Funcs[0].Code = nil }, "empty code"},
		{"const oob", func(p *Program) { p.Funcs[0].Code[0].A = 5 }, "constant index"},
		{"const negative", func(p *Program) { p.Funcs[0].Code[0].A = -1 }, "constant index"},
		{"name oob", func(p *Program) { p.Funcs[0].Code[1].A = 9 }, "name index"},
		{"local oob", func(p *Program) { p.Funcs[1].Code[0].A = 2 }, "local slot"},
		{"params exceed locals", func(p *Program) { p.Funcs[1].NumParams = 3 }, "invalid"},
		{"jump oob", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpJmp, A: 99}
		}, "jump target"},
		{"jump negative", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpJz, A: -2}
		}, "jump target"},
		{"callfunc main", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCallFunc, A: 0}
		}, "function index"},
		{"callfunc oob", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCallFunc, A: 7}
		}, "function index"},
		{"callfunc argc", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCallFunc, A: 1, B: 3}
		}, "argc"},
		{"hop zero arms", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpHop, A: 0}
		}, "arm count"},
		{"create huge arms", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCreate, A: 1 << 20}
		}, "arm count"},
		{"negative argc native", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCallNative, A: 0, B: -1}
		}, "negative argc"},
		{"arr negative", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpArr, A: -1}
		}, "element count"},
		{"unknown op", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: Op(99)}
		}, "unknown opcode"},
	}
	for _, tc := range cases {
		p := validProgram()
		tc.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: should be rejected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRunsValidation(t *testing.T) {
	p := validProgram()
	p.Funcs[0].Code[0].A = 99 // invalid constant index, structurally fine
	if _, err := Decode(p.Encode()); err == nil {
		t.Error("Decode must validate operands")
	}
}
