// Package stickytest exercises the wire sticky-error contract check.
package stickytest

import "messengers/internal/wire"

// bad consumes bytes without ever consulting the sticky error.
func bad(s string) []byte {
	e := wire.NewEncoder()
	e.Str(s)
	return e.Detach() // want "never checks Err"
}

func badBytes(s string) int {
	e := wire.NewEncoder()
	defer e.Release()
	e.Str(s)
	return len(e.Bytes()) // want "never checks Err"
}

// good checks Err before trusting the bytes.
func good(s string) ([]byte, error) {
	e := wire.NewEncoder()
	e.Str(s)
	if err := e.Err(); err != nil {
		e.Release()
		return nil, err
	}
	return e.Detach(), nil
}

// goodFrame: EndFrame returns the sticky error, which counts as the check.
func goodFrame(s string) ([]byte, error) {
	e := wire.NewEncoder()
	off := e.BeginFrame()
	e.Str(s)
	if err := e.EndFrame(off); err != nil {
		e.Release()
		return nil, err
	}
	return e.Detach(), nil
}

func encodeInto(e *wire.Encoder, s string) error {
	e.Str(s)
	return e.Err()
}

// goodTransfer hands the encoder to an error-returning helper; the sticky
// error escapes through that call.
func goodTransfer(s string) []byte {
	e := wire.NewEncoder()
	if err := encodeInto(e, s); err != nil {
		return nil
	}
	return e.Bytes()
}

// suppressed documents why the check is unnecessary.
func suppressed() []byte {
	e := wire.NewEncoder()
	e.U32(7)          // fixed-width writes cannot set the sticky error
	return e.Detach() //lint:stickyerr U32-only encoding cannot fail
}
