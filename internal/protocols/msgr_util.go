package protocols

import (
	"fmt"
	"os"
	"time"

	messengers "messengers"
	"messengers/internal/faults"
	"messengers/internal/obs"
	"messengers/internal/sim"
)

// Engine names accepted by the harness.
const (
	// EngineSim is the deterministic discrete-event cluster.
	EngineSim = "sim"
	// EngineReal is the real runtime: TCP sockets for the Messenger
	// implementations (the only real engine with a wire to fault),
	// goroutines for the PVM baselines.
	EngineReal = "real"
)

// protoGVTInterval paces GVT rounds well below the default 25ms so the
// Paxos/2PC drivers' sched_dlt round pacing stays fast on both engines.
const protoGVTInterval = sim.Millisecond

// realRunTimeout bounds a real-engine run. Every nemesis plan heals its
// partitions and restarts its crashes, so a quiescent run is always
// reachable; a hang here is a bug, not chaos.
const realRunTimeout = 90 * time.Second

// newMsgrSystem builds a Messenger system for one protocol run. Recovery is
// always on — at-least-once hop delivery is the runtime service the
// Messenger implementations lean on, mirroring the app-level reliability
// the PVM baselines must hand-roll. MSGR_DIST_GVT=1 swaps in the
// ring-reduction GVT protocol, same as the core test suites.
func newMsgrSystem(engine string, daemons int, plan *faults.Plan, m *obs.Metrics) (*messengers.System, error) {
	cfg := messengers.Config{
		Daemons:        daemons,
		Metrics:        m,
		GVTInterval:    protoGVTInterval,
		Faults:         plan,
		Recovery:       true,
		DistributedGVT: os.Getenv("MSGR_DIST_GVT") == "1",
	}
	switch engine {
	case EngineSim:
		return messengers.NewSimSystem(cfg)
	case EngineReal:
		return messengers.NewTCPSystem(cfg, nil)
	default:
		return nil, fmt.Errorf("protocols: unknown engine %q", engine)
	}
}

// runMsgrSystem drives the system to quiescence and surfaces unexpected
// errors. Crash-related errors (injection racing a scheduled kill, sends to
// a detected-dead peer) are chaos noise, not failures.
func runMsgrSystem(sys *messengers.System) error {
	if sys.Kernel() != nil {
		sys.RunSim()
		return msgrErrorsFatal(sys.Errors())
	}
	done := make(chan struct{})
	go func() {
		sys.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(realRunTimeout):
		return fmt.Errorf("protocols: real-engine run did not quiesce within %v", realRunTimeout)
	}
	return msgrErrorsFatal(sys.Errors())
}
