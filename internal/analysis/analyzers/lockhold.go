package analyzers

import (
	"go/ast"
	"go/printer"
	"go/token"
	"strings"

	"messengers/internal/analysis"
)

// lockholdPkgs are the packages where daemons multiplex goroutines and a
// mutex held across a blocking operation deadlocks the whole engine (or,
// on the sim engine, serializes it into uselessness).
var lockholdPkgs = map[string]bool{
	"messengers/internal/core":      true,
	"messengers/internal/transport": true,
}

// LockHold flags channel sends, channel receives, selects without a
// default, time.Sleep, and WaitGroup.Wait performed while a sync mutex is
// held in internal/core and internal/transport.
//
// The scan is syntactic and per-function, tracking the set of held locks
// through an ordered statement walk: Lock/RLock adds, Unlock/RUnlock
// removes, "defer mu.Unlock()" holds to the end of the function. Branch
// bodies are scanned with a copy of the held set. sync.Cond.Wait is
// exempt (it atomically releases the mutex — the workQueue pattern), and
// function literals are scanned as separate functions starting with no
// held locks (goroutine bodies do not inherit the spawn site's locks).
// Suppress with //lint:lockhold when the channel is provably buffered and
// non-full or the send is the handoff the lock orders.
var LockHold = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "mutex held across channel operations or blocking waits",
	Run:  runLockHold,
}

func runLockHold(pass *analysis.Pass) error {
	if !lockholdPkgs[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lh := &lockScan{pass: pass}
			lh.block(fd.Body, map[string]bool{})
		}
		// Function literals anywhere in the file (including inside the
		// decls above, where block() skipped them) start lock-free.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				lh := &lockScan{pass: pass}
				lh.block(fl.Body, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

type lockScan struct {
	pass *analysis.Pass
}

// block walks stmts in order, mutating held as locks are taken/released
// and reporting blocking operations performed under a lock.
func (ls *lockScan) block(b *ast.BlockStmt, held map[string]bool) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		ls.stmt(s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func anyHeld(held map[string]bool) (string, bool) {
	for k := range held {
		return k, true
	}
	return "", false
}

func (ls *lockScan) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		ls.checkExpr(s.X, held)
		if recv, op, ok := mutexOp(ls.pass, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
		}
	case *ast.DeferStmt:
		if recv, op, ok := mutexOp(ls.pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Held until function end from wherever it was locked; leave
			// the held set alone (the matching Lock added it).
			_ = recv
		}
	case *ast.SendStmt:
		if lock, ok := anyHeld(held); ok {
			ls.pass.Reportf(s.Arrow, "lockhold",
				"channel send while holding %s", lock)
		}
		ls.checkExpr(s.Value, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if lock, ok := anyHeld(held); ok && !hasDefault {
			ls.pass.Reportf(s.Select, "lockhold",
				"blocking select while holding %s", lock)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := copyHeld(held)
				for _, cs := range cc.Body {
					ls.stmt(cs, h)
				}
			}
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ls.checkExpr(r, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		ls.checkExpr(s.Cond, held)
		ls.block(s.Body, copyHeld(held))
		if s.Else != nil {
			ls.stmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		ls.block(s, held)
	case *ast.ForStmt:
		ls.block(s.Body, copyHeld(held))
	case *ast.RangeStmt:
		ls.block(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, cs := range cc.Body {
					ls.stmt(cs, h)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, cs := range cc.Body {
					ls.stmt(cs, h)
				}
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit held locks; its body is
		// scanned separately via the FuncLit pass.
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ls.checkExpr(r, held)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
	}
}

// checkExpr looks for blocking expressions (channel receives, time.Sleep,
// WaitGroup.Wait) evaluated while a lock is held. FuncLits are skipped —
// they run later, lock-free.
func (ls *lockScan) checkExpr(e ast.Expr, held map[string]bool) {
	lock, locked := anyHeld(held)
	if !locked || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ls.pass.Reportf(n.Pos(), "lockhold",
					"channel receive while holding %s", lock)
			}
		case *ast.CallExpr:
			obj := ls.pass.CalleeObj(n)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "time" && obj.Name() == "Sleep":
				ls.pass.Reportf(n.Pos(), "lockhold",
					"time.Sleep while holding %s", lock)
			case obj.Pkg().Path() == "sync" && obj.Name() == "Wait":
				// WaitGroup.Wait blocks; Cond.Wait releases the mutex and
				// is the sanctioned pattern, so distinguish by receiver.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if t := ls.pass.TypeOf(sel.X); t != nil && strings.Contains(t.String(), "sync.Cond") {
						return true
					}
				}
				ls.pass.Reportf(n.Pos(), "lockhold",
					"sync.Wait while holding %s", lock)
			}
		}
		return true
	})
}

// mutexOp matches a call "x.Lock()" / "x.RLock()" / "x.Unlock()" /
// "x.RUnlock()" where the method is sync's, returning a stable string key
// for x and the method name.
func mutexOp(pass *analysis.Pass, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprKey(pass.Fset, sel.X), sel.Sel.Name, true
}

func exprKey(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	_ = printer.Fprint(&b, fset, e)
	return b.String()
}
