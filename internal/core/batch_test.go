package core

import (
	"strings"
	"testing"

	"messengers/internal/faults"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// fanSpec puts two logical nodes of the same daemon behind one link name, so
// a single hop replicates into two same-destination wire messages — the
// shape WithHopBatching coalesces into one MsgBatch frame.
func fanSpec() NetSpec {
	return NetSpec{
		Nodes: []NetNode{
			{Name: "src", Daemon: 0},
			{Name: "a", Daemon: 1},
			{Name: "b", Daemon: 1},
		},
		Links: []NetLink{
			{A: "src", B: "a", Name: "wire"},
			{A: "src", B: "b", Name: "wire"},
		},
	}
}

func runFan(t *testing.T, opts ...Option) (int64, *obs.Metrics) {
	t.Helper()
	metrics := obs.NewMetrics()
	k, sys := simSystem(t, 2, append(opts, WithMetrics(metrics))...)
	if err := sys.BuildNetwork(fanSpec()); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "fan", `
		hop(ll = "wire");
		hop(ll = "wire");
		node.total = node.total + 1;
	`)
	if err := sys.InjectAt(0, "fan", "src", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	return metrics.CounterValue("net.msgs"), metrics
}

// TestHopBatchingCoalescesSameDestination checks the mechanism and the
// saving: with batching on, the two replicas cross the wire in one frame,
// results are unchanged, and fewer wire messages are sent.
func TestHopBatchingCoalescesSameDestination(t *testing.T) {
	plainMsgs, plainM := runFan(t)
	if plainM.CounterValue("net.batches") != 0 {
		t.Error("batches sent without WithHopBatching")
	}

	batchMsgs, batchM := runFan(t, WithHopBatching())
	if batchM.CounterValue("net.batches") == 0 {
		t.Error("no batch frames despite coalescible fan-out")
	}
	if batchMsgs >= plainMsgs {
		t.Errorf("batching sent %d wire messages, plain sent %d; expected a reduction",
			batchMsgs, plainMsgs)
	}
}

func TestHopBatchingSameResults(t *testing.T) {
	results := func(opts ...Option) int64 {
		metrics := obs.NewMetrics()
		k, sys := simSystem(t, 2, append(opts, WithMetrics(metrics))...)
		if err := sys.BuildNetwork(fanSpec()); err != nil {
			t.Fatal(err)
		}
		register(t, sys, "fan", `
			hop(ll = "wire");
			hop(ll = "wire");
			node.total = node.total + 1;
		`)
		if err := sys.InjectAt(0, "fan", "src", nil); err != nil {
			t.Fatal(err)
		}
		runSim(t, k, sys)
		return sys.Daemon(0).Store().FindByName("src")[0].Vars["total"].AsInt()
	}
	if got, want := results(), results(WithHopBatching()); got != want || want != 2 {
		t.Errorf("plain total = %d, batched total = %d, want 2 and 2", got, want)
	}
}

// TestHopBatchingPreservesVirtualTimeOrder reruns the conservative-GVT hop
// test with batching on: a batched hop still counts as sent at ship time and
// received at unpack, so no epoch can outrun an in-flight (batched) payload.
func TestHopBatchingPreservesVirtualTimeOrder(t *testing.T) {
	k, sys := simSystem(t, 2, WithHopBatching())
	spec := NetSpec{
		Nodes: []NetNode{{Name: "src", Daemon: 0}, {Name: "dst", Daemon: 1}},
		Links: []NetLink{{A: "src", B: "dst", Name: "wire"}},
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "sender", `
		for (k = 0; k < 4; k++) {
			sched_abs(k);
			msgr.payload = k + 1;
			hop(ll = "wire");
			node.box = msgr.payload;
			hop(ll = "wire");
		}
	`)
	register(t, sys, "reader", `
		for (k = 0; k < 4; k++) {
			sched_abs(k + 0.5);
			print("read", node.box);
		}
	`)
	if err := sys.InjectAt(0, "sender", "src", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectAt(1, "reader", "dst", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	got := strings.Join(sys.Output(), ", ")
	want := "read 1, read 2, read 3, read 4"
	if got != want {
		t.Errorf("reads = %q, want %q", got, want)
	}
}

// TestHopBatchingUnderLossAndDup runs batch frames over a lossy, duplicating
// wire: retransmission re-ships members individually or re-batched, and
// per-member dedup keeps effects exactly-once.
func TestHopBatchingUnderLossAndDup(t *testing.T) {
	plan := &faults.Plan{Seed: 7, Drop: 0.25, Dup: 0.25}
	k, sys, metrics := faultSystem(t, 2, plan, WithHopBatching())
	register(t, sys, "crosser", `
		create(ALL);
		hop(ll = $last);
		node.mark = 1;
		hop(ll = $last);
		hop(ll = $last);
		node.mark = node.mark + 1;
	`)
	if err := sys.Inject(0, "crosser", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if got := sys.Daemon(0).Store().Init().Vars["mark"].AsInt(); got != 2 {
		t.Errorf("init mark = %d, want 2", got)
	}
	if metrics.CounterValue("faults.injected.drop") == 0 {
		t.Error("plan injected no drops; test is vacuous")
	}
}

// TestHopBatchingCrashDropsOutbox crashes a daemon with batching enabled:
// unsent outbox contents die with the process and the respawn path still
// completes the computation.
func TestHopBatchingCrashDropsOutbox(t *testing.T) {
	plan := &faults.Plan{
		Seed: 1,
		Crashes: []faults.Crash{{
			Daemon:       1,
			At:           int64(50 * sim.Millisecond),
			RestartAfter: int64(20 * sim.Millisecond),
		}},
	}
	k, sys, _ := faultSystem(t, 2, plan, WithHopBatching())
	sys.RegisterNative("spin", func(ctx *NativeCtx, _ []value.Value) (value.Value, error) {
		ctx.Charge(200 * sim.Millisecond)
		return value.Nil(), nil
	})
	register(t, sys, "survivor", `
		create(ALL);
		spin();
		hop(ll = $last);
		node.done = node.done + 1;
	`)
	if err := sys.Inject(0, "survivor", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if got := sys.Daemon(0).Store().Init().Vars["done"].AsInt(); got != 1 {
		t.Errorf("done = %d, want 1", got)
	}
}

// TestChanEngineHopBatching is the real-engine smoke test for batch frames.
func TestChanEngineHopBatching(t *testing.T) {
	sys := chanSystem(t, 2, WithHopBatching())
	if err := sys.BuildNetwork(fanSpec()); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "fan", `
		hop(ll = "wire");
		hop(ll = "wire");
		node.total = node.total + 1;
	`)
	if err := sys.InjectAt(0, "fan", "src", nil); err != nil {
		t.Fatal(err)
	}
	waitDone(t, sys)
	result := make(chan int64, 1)
	sys.Do(0, func(d *Daemon) { result <- d.Store().FindByName("src")[0].Vars["total"].AsInt() })
	if got := <-result; got != 2 {
		t.Errorf("total = %d, want 2", got)
	}
}

func TestMsgBatchEncodeDecodeRoundTrip(t *testing.T) {
	sub1 := &Msg{Kind: MsgCreate, From: 0, CreateName: "fan", LinkName: "wire", HopSeq: 3}
	sub2 := &Msg{Kind: MsgMessenger, From: 0, MsgrID: 99, LVT: 1.5, Last: "wire", HopSeq: 4}
	batch := &Msg{Kind: MsgBatch, From: 0, Batch: []*Msg{sub1, sub2}}
	dec, err := DecodeMsg(batch.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != MsgBatch || dec.From != 0 || len(dec.Batch) != 2 {
		t.Fatalf("decoded frame = %+v", dec)
	}
	if got := dec.Batch[0]; got.Kind != MsgCreate || got.CreateName != "fan" ||
		got.LinkName != "wire" || got.HopSeq != 3 {
		t.Errorf("member 0 = %+v", got)
	}
	if got := dec.Batch[1]; got.Kind != MsgMessenger || got.MsgrID != 99 ||
		got.LVT != 1.5 || got.Last != "wire" || got.HopSeq != 4 {
		t.Errorf("member 1 = %+v", got)
	}
}
