// Package analysistest runs an analyzer over a testdata package and checks
// its findings against expectations embedded in the source as comments, in
// the style of golang.org/x/tools' package of the same name:
//
//	m.Counter(fmt.Sprintf("x.%d", i)) // want "string literal"
//
// Each `// want "substr"` demands exactly one finding on that line whose
// message contains substr; findings on lines without a want comment, and
// want comments without a finding, both fail the test. Suppression
// directives (//lint:...) are honored, so the escape hatch itself is
// testable.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"messengers/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads the package in dir pretending it has import path asPath, runs
// the analyzer, and compares diagnostics against // want comments.
func Run(t *testing.T, dir, asPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	repoRoot, err := findRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(repoRoot)
	lp, err := loader.Load(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers(lp, analyzers, map[string]any{})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, f := range lp.Files {
		name := lp.Fset.Position(f.Pos()).Filename
		src, err := readFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(src, "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(lineText, -1) {
				sub := strings.ReplaceAll(m[1], `\"`, `"`)
				k := key{name, i + 1}
				wants[k] = append(wants[k], sub)
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding at %s:%d: %s [%s]",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("missing finding at %s:%d: want message containing %q",
				filepath.Base(k.file), k.line, w)
		}
	}
}

func findRepoRoot() (string, error) {
	dir, err := filepath.Abs(".")
	if err != nil {
		return "", err
	}
	for {
		if ok, _ := fileExists(filepath.Join(dir, "go.mod")); ok {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errNoRoot
		}
		dir = parent
	}
}
