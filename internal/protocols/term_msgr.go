package protocols

import (
	"fmt"

	messengers "messengers"
	"messengers/internal/core"
	"messengers/internal/faults"
	"messengers/internal/obs"
	"messengers/internal/value"
)

// Distributed termination detection as Messengers (SNIPPETS.md snippet 2's
// TLA model, executable): worker nodes w1..wN form a directed ring across
// daemons 1..N; base-computation Messengers circulate the ring bumping
// per-node sent/received counters, and a detector Messenger laps the same
// ring summing them — Mattern's four-counter scheme: quiescence is declared
// only when two consecutive laps read the same balanced totals
// (S == R == S' == R'), which is safe because the counters are monotone
// and the detector's laps are sequential.
//
// Daemon 0 hosts no ring state: it is the coordination leader (GVT pacer),
// and the leader-crash nemesis targets it — protocol state must survive a
// coordination-layer crash untouched. Worker daemons are never crashed:
// node counters are the algorithm's stable storage, the same assumption
// the TLA model makes.

const termWorkers = 4

const termBaseScript = `
while (ttl > 0) {
	node.sent = node.sent + 1;
	tm_send();
	hop(ll = "ring", ldir = +);
	node.recv = node.recv + 1;
	tm_recv();
	ttl = ttl - 1;
}
`

const termDetectScript = `
lasts = -1;
lastr = -1;
while (1) {
	s = 0;
	r = 0;
	i = 0;
	while (i < n) {
		s = s + node.sent;
		r = r + node.recv;
		hop(ll = "ring", ldir = +);
		i = i + 1;
	}
	tm_pass(s, r);
	if (s > 0 && s == r && s == lasts && r == lastr) {
		tm_detect(s);
		end;
	}
	lasts = s;
	lastr = r;
}
`

func termNet() core.NetSpec {
	var spec core.NetSpec
	for w := 1; w <= termWorkers; w++ {
		spec.Nodes = append(spec.Nodes, core.NetNode{Name: fmt.Sprintf("w%d", w), Daemon: w})
	}
	for w := 1; w <= termWorkers; w++ {
		next := w%termWorkers + 1
		spec.Links = append(spec.Links, core.NetLink{
			A: fmt.Sprintf("w%d", w), B: fmt.Sprintf("w%d", next), Name: "ring", Dir: 1,
		})
	}
	return spec
}

// termLoad derives the seed's base workload: which workers start a
// circulating Messenger and for how many hops. Shared by both
// implementations so a seed's computation is comparable across them.
func termLoad(seed uint64) []struct{ Start, TTL int } {
	z := seed
	next := func(mod int) int {
		z += 0x9e3779b97f4a7c15
		m := z
		m = (m ^ (m >> 30)) * 0xbf58476d1ce4e5b9
		m = (m ^ (m >> 27)) * 0x94d049bb133111eb
		m ^= m >> 31
		return int(m % uint64(mod))
	}
	n := 2 + next(3) // 2..4 circulating Messengers
	out := make([]struct{ Start, TTL int }, n)
	for i := range out {
		out[i].Start = 1 + next(termWorkers)
		out[i].TTL = 2 + next(5) // 2..6 hops each
	}
	return out
}

func registerTermNatives(sys *messengers.System, rec *Recorder) {
	sys.RegisterNative("tm_send", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvSend, roleIndex(ctx.NodeName()), 0, "")
		return value.Nil(), nil
	})
	sys.RegisterNative("tm_recv", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvRecv, roleIndex(ctx.NodeName()), 0, "")
		return value.Nil(), nil
	})
	sys.RegisterNative("tm_pass", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvRound, roleIndex(ctx.NodeName()), args[0].AsInt(), "")
		return value.Nil(), nil
	})
	sys.RegisterNative("tm_detect", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvDetect, roleIndex(ctx.NodeName()), args[0].AsInt(), "")
		return value.Nil(), nil
	})
}

func runTermMessengers(engine string, seed uint64, plan *faults.Plan, rec *Recorder, m *obs.Metrics) error {
	sys, err := newMsgrSystem(engine, 1+termWorkers, plan, m)
	if err != nil {
		return err
	}
	defer sys.Close()
	registerTermNatives(sys, rec)
	if err := sys.CompileAndRegister("term_base", termBaseScript); err != nil {
		return err
	}
	if err := sys.CompileAndRegister("term_detect", termDetectScript); err != nil {
		return err
	}
	if err := sys.BuildNetwork(termNet()); err != nil {
		return err
	}
	for _, ld := range termLoad(seed) {
		err := sys.InjectAt(ld.Start, "term_base", fmt.Sprintf("w%d", ld.Start), map[string]value.Value{
			"ttl": value.Int(int64(ld.TTL)),
		})
		if err != nil {
			return err
		}
	}
	err = sys.InjectAt(1, "term_detect", "w1", map[string]value.Value{
		"n": value.Int(termWorkers),
	})
	if err != nil {
		return err
	}
	return runMsgrSystem(sys)
}
