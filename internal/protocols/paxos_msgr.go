package protocols

import (
	"fmt"
	"strconv"
	"strings"

	messengers "messengers"
	"messengers/internal/core"
	"messengers/internal/faults"
	"messengers/internal/obs"
	"messengers/internal/value"
)

// Single-decree Paxos as Messengers (SNIPPETS.md snippet 1's
// proposer/acceptor structure, carried by self-migrating computations).
//
// Layout: daemon 0 and 1 each host a proposer node (prop0, prop1); daemons
// 2..4 host the acceptor nodes (acc0..acc2), each linked to every proposer
// node by a link named "acc". A proposer driver Messenger loops ballots:
// each round it injects a round Messenger that replicates to ALL acceptors
// with one hop (phase 1), returns along $last, counts promises at the
// proposer node (node variables are the lock-free rendezvous — the count
// is a critical section between hops), and the quorum-completing replica
// alone replicates again for phase 2. Acceptor state (promised, accepted
// ballot/value) lives in acceptor node variables; nemesis plans therefore
// never crash acceptor daemons — node variables are the protocol's stable
// storage (docs/PROTOCOLS.md).
//
// The driver paces rounds with sched_dlt(1): conservative GVT cannot pass
// a round's virtual time while any of its Messengers is alive, so rounds
// are globally serialized — the paper's virtual-time machinery doubling as
// Paxos round pacing.

const paxosProposers = 2
const paxosAcceptors = 3
const paxosQuorum = 2
const paxosMaxRounds = 8

const paxosDriverScript = `
r = 0;
while (r < maxr) {
	if (node.decided != nil) { end; }
	b = r * nprop + pid + 1;
	px_round(pid, b);
	inject("paxos_round", $node, "ballot", b, "val", val, "quorum", quorum, "pid", pid);
	sched_dlt(1);
	r = r + 1;
}
`

const paxosRoundScript = `
node.cur = ballot;
node.p1 = 0;
node.p2 = 0;
node.b1 = nil;
node.v1 = nil;
hop(ll = "acc");
// Phase 1 at an acceptor: promise iff the ballot beats every promise so
// far. The promise and the read of the accepted pair form one critical
// section (no hop or native between them).
ok = 0;
if (node.promised == nil || ballot > node.promised) {
	node.promised = ballot;
	ok = 1;
}
ab = node.aballot;
av = node.aval;
if (ok == 1) { px_prom(ballot); }
hop(ll = $last);
// Back at the proposer node: count promises; only the replica completing
// the quorum proceeds to phase 2, adopting the highest accepted value.
if (node.cur != ballot) { end; }
if (ok == 0) { end; }
node.p1 = node.p1 + 1;
if (ab != nil && (node.b1 == nil || ab > node.b1)) {
	node.b1 = ab;
	node.v1 = av;
}
took = node.p1;
if (took != quorum) { end; }
v = val;
if (node.v1 != nil) { v = node.v1; }
hop(ll = "acc");
// Phase 2 at an acceptor: accept unless a higher ballot was promised.
ok = 0;
if (node.promised == nil || ballot >= node.promised) {
	node.promised = ballot;
	node.aballot = ballot;
	node.aval = v;
	ok = 1;
}
if (ok == 1) { px_acc(ballot, v); }
hop(ll = $last);
if (node.cur != ballot) { end; }
if (ok == 0) { end; }
node.p2 = node.p2 + 1;
took = node.p2;
if (took != quorum) { end; }
if (node.decided == nil) {
	node.decided = v;
	px_dec(pid, ballot, v);
}
`

// paxosBrokenRoundScript is the deliberately broken variant: the acceptor
// "forgets" its promises — phase 2 accepts unconditionally, ignoring
// node.promised. Under dueling proposers this violates ballot monotonicity
// (and, given the right interleaving, agreement); the checker must catch
// it (TestBrokenPaxosCaught).
const paxosBrokenRoundScript = `
node.cur = ballot;
node.p1 = 0;
node.p2 = 0;
node.b1 = nil;
node.v1 = nil;
hop(ll = "acc");
ok = 0;
if (node.promised == nil || ballot > node.promised) {
	node.promised = ballot;
	ok = 1;
}
ab = node.aballot;
av = node.aval;
if (ok == 1) { px_prom(ballot); }
hop(ll = $last);
if (node.cur != ballot) { end; }
if (ok == 0) { end; }
node.p1 = node.p1 + 1;
if (ab != nil && (node.b1 == nil || ab > node.b1)) {
	node.b1 = ab;
	node.v1 = av;
}
took = node.p1;
if (took != quorum) { end; }
v = val;
if (node.v1 != nil) { v = node.v1; }
hop(ll = "acc");
// BROKEN: accepts without consulting node.promised.
node.aballot = ballot;
node.aval = v;
px_acc(ballot, v);
ok = 1;
hop(ll = $last);
if (node.cur != ballot) { end; }
node.p2 = node.p2 + 1;
took = node.p2;
if (took != quorum) { end; }
if (node.decided == nil) {
	node.decided = v;
	px_dec(pid, ballot, v);
}
`

// paxosNet builds the proposer/acceptor logical network.
func paxosNet() core.NetSpec {
	var spec core.NetSpec
	for p := 0; p < paxosProposers; p++ {
		spec.Nodes = append(spec.Nodes, core.NetNode{Name: fmt.Sprintf("prop%d", p), Daemon: p})
	}
	for a := 0; a < paxosAcceptors; a++ {
		spec.Nodes = append(spec.Nodes, core.NetNode{Name: fmt.Sprintf("acc%d", a), Daemon: paxosProposers + a})
	}
	for p := 0; p < paxosProposers; p++ {
		for a := 0; a < paxosAcceptors; a++ {
			spec.Links = append(spec.Links, core.NetLink{
				A: fmt.Sprintf("prop%d", p), B: fmt.Sprintf("acc%d", a), Name: "acc",
			})
		}
	}
	return spec
}

// roleIndex parses the trailing integer of a role node name ("acc2" -> 2).
func roleIndex(name string) int {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	n, err := strconv.Atoi(name[i:])
	if err != nil {
		return -1
	}
	return n
}

// registerPaxosNatives wires the event-recording natives. Acceptor-side
// events derive their role index from the node name; proposer-side events
// carry the proposer id explicitly.
func registerPaxosNatives(sys *messengers.System, rec *Recorder) {
	sys.RegisterNative("px_round", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvRound, int(args[0].AsInt()), args[1].AsInt(), "")
		return value.Nil(), nil
	})
	sys.RegisterNative("px_prom", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvPromise, roleIndex(ctx.NodeName()), args[0].AsInt(), "")
		return value.Nil(), nil
	})
	sys.RegisterNative("px_acc", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvAccept, roleIndex(ctx.NodeName()), args[0].AsInt(), args[1].AsStr())
		return value.Nil(), nil
	})
	sys.RegisterNative("px_dec", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		rec.Record(EvDecide, int(args[0].AsInt()), args[1].AsInt(), args[2].AsStr())
		return value.Nil(), nil
	})
}

// runPaxosMessengers executes one seeded Paxos run on the Messenger
// implementation. broken substitutes the promise-forgetting acceptor.
func runPaxosMessengers(engine string, plan *faults.Plan, rec *Recorder, m *obs.Metrics, broken bool) error {
	sys, err := newMsgrSystem(engine, paxosProposers+paxosAcceptors, plan, m)
	if err != nil {
		return err
	}
	defer sys.Close()
	registerPaxosNatives(sys, rec)
	round := paxosRoundScript
	if broken {
		round = paxosBrokenRoundScript
	}
	if err := sys.CompileAndRegister("paxos_round", round); err != nil {
		return err
	}
	if err := sys.CompileAndRegister("paxos_prop", paxosDriverScript); err != nil {
		return err
	}
	if err := sys.BuildNetwork(paxosNet()); err != nil {
		return err
	}
	for p := 0; p < paxosProposers; p++ {
		err := sys.InjectAt(p, "paxos_prop", fmt.Sprintf("prop%d", p), map[string]value.Value{
			"pid":    value.Int(int64(p)),
			"nprop":  value.Int(paxosProposers),
			"val":    value.Str(fmt.Sprintf("v%d", p)),
			"quorum": value.Int(paxosQuorum),
			"maxr":   value.Int(paxosMaxRounds),
		})
		if err != nil {
			return err
		}
	}
	return runMsgrSystem(sys)
}

// msgrErrorsFatal filters a system's recorded errors down to the ones a
// chaos run must not produce. Injection races with scheduled crashes are
// expected noise; anything else is surfaced.
func msgrErrorsFatal(errs []error) error {
	for _, e := range errs {
		msg := e.Error()
		if strings.Contains(msg, "crashed") || strings.Contains(msg, "dead") ||
			strings.Contains(msg, "down") {
			continue
		}
		return fmt.Errorf("protocols: unexpected system error: %w", e)
	}
	return nil
}
