package matmul

import (
	"math"
	"testing"
	"testing/quick"

	"messengers/internal/value"
)

func ident(n int) *value.Mat {
	m := value.NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func TestNaiveIdentity(t *testing.T) {
	a := Random(8, 1)
	c := Naive(a, ident(8))
	if MaxAbsDiff(a, c) != 0 {
		t.Error("A * I != A")
	}
	c2 := Naive(ident(8), a)
	if MaxAbsDiff(a, c2) != 0 {
		t.Error("I * A != A")
	}
}

func TestNaiveKnownProduct(t *testing.T) {
	a := &value.Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &value.Mat{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	c := Naive(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("C[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestNaiveShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	Naive(value.NewMat(2, 3), value.NewMat(2, 3))
}

func TestAddMulAccumulates(t *testing.T) {
	a, b := Random(6, 2), Random(6, 3)
	c := Naive(a, b)
	acc := value.NewMat(6, 6)
	AddMul(acc, a, b)
	AddMul(acc, a, b)
	for i := range acc.Data {
		if math.Abs(acc.Data[i]-2*c.Data[i]) > 1e-12 {
			t.Fatalf("accumulation wrong at %d", i)
		}
	}
}

func TestAddMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	AddMul(value.NewMat(2, 2), value.NewMat(2, 3), value.NewMat(2, 3))
}

func TestGetSetBlockRoundTrip(t *testing.T) {
	a := Random(12, 4)
	blk := GetBlock(a, 1, 2, 4)
	if blk.Rows != 4 || blk.Cols != 4 {
		t.Fatalf("block shape %dx%d", blk.Rows, blk.Cols)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if blk.At(r, c) != a.At(4+r, 8+c) {
				t.Fatalf("block content wrong at (%d,%d)", r, c)
			}
		}
	}
	b := value.NewMat(12, 12)
	SetBlock(b, 1, 2, blk)
	if got := GetBlock(b, 1, 2, 4); MaxAbsDiff(got, blk) != 0 {
		t.Error("SetBlock/GetBlock round trip failed")
	}
	// Other blocks untouched.
	if got := GetBlock(b, 0, 0, 4); MaxAbsDiff(got, value.NewMat(4, 4)) != 0 {
		t.Error("SetBlock leaked outside its block")
	}
}

func TestBlockSequentialMatchesNaive(t *testing.T) {
	for _, tt := range []struct{ n, m int }{
		{6, 2}, {6, 3}, {12, 4}, {20, 2},
	} {
		a, b := Random(tt.n, int64(tt.n)), Random(tt.n, int64(tt.n)+100)
		naive := Naive(a, b)
		block := BlockSequential(a, b, tt.m)
		if d := MaxAbsDiff(naive, block); d > 1e-9 {
			t.Errorf("n=%d m=%d: max diff %g", tt.n, tt.m, d)
		}
	}
}

func TestBlockSequentialValidatesDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("indivisible partition should panic")
		}
	}()
	BlockSequential(Random(7, 1), Random(7, 2), 2)
}

func TestPropBlockEqualsNaive(t *testing.T) {
	f := func(seed int64, mPick uint8) bool {
		m := int(mPick%3) + 1 // 1..3
		n := m * 4
		a, b := Random(n, seed), Random(n, seed+7)
		return MaxAbsDiff(Naive(a, b), BlockSequential(a, b, m)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMACs(t *testing.T) {
	if MACs(100) != 1_000_000 {
		t.Errorf("MACs(100) = %d", MACs(100))
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	if !math.IsInf(MaxAbsDiff(value.NewMat(2, 2), value.NewMat(3, 3)), 1) {
		t.Error("shape mismatch should be +Inf")
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	if MaxAbsDiff(Random(5, 42), Random(5, 42)) != 0 {
		t.Error("Random not deterministic for equal seeds")
	}
	if MaxAbsDiff(Random(5, 1), Random(5, 2)) == 0 {
		t.Error("Random identical for different seeds")
	}
}
