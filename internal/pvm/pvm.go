// Package pvm implements the paper's baseline: a PVM-3-style
// message-passing library (the paper used PVM 3.3).
//
// The API mirrors the calls in the paper's program listings (Fig. 2 and
// Fig. 9): spawn, typed pack/unpack into send buffers, send/receive with
// source and tag matching (wildcards -1), multicast, dynamic groups, and
// barriers. Tasks run either as real goroutines (NewRealMachine) or as
// blocking processes under the simulated cluster (NewSimMachine).
//
// In simulation the library pays PVM's cost signature, per the paper's
// §2.1 analysis of message-passing overheads: a user-level pack copy at
// the sender and unpack copy at the receiver, pvmd routing copies on both
// hosts, ~4 KB fragmentation with a bounded in-flight window paced by
// receiver acknowledgements, fixed per-message and per-fragment software
// costs, and an expensive serialized pvm_spawn.
package pvm

import (
	"fmt"
	"sync"

	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/sim"
)

// TID is a PVM task identifier.
type TID int32

// Wildcards for Recv matching, as in PVM.
const (
	// AnySource matches any sending task.
	AnySource TID = -1
	// AnyTag matches any message tag.
	AnyTag = -1
)

// NoParent is the parent TID of tasks spawned from outside (pvm_parent()
// == PvmNoParent in PVM).
const NoParent TID = 0

// TaskFunc is the body of a PVM task.
type TaskFunc func(p *Proc)

// Machine is the PVM virtual machine: the task table, groups, and the
// transport connecting hosts.
type Machine struct {
	cm      *lan.CostModel
	cluster *lan.Cluster // nil in real mode
	nHosts  int

	// rxBacklog tracks bytes queued at each host's pvmd awaiting
	// processing (kernel thread only).
	rxBacklog map[int]int
	stats     Stats
	// spawnCost overrides the model's pvm_spawn cost when >= 0 (for
	// experiments that time only a post-startup phase).
	spawnCost sim.Time

	// Observability (nil when off). Events land on the host's track.
	tr *obs.Tracer
	mo *pvmObs

	mu       sync.Mutex
	nextTID  TID
	tasks    map[TID]*Proc
	groups   map[string]*group
	barriers map[string]*barrier
	errs     []error

	wg sync.WaitGroup // real-mode task goroutines
}

// Stats counts transport events over a run.
type Stats struct {
	// Drops is the number of fragments dropped at full pvmd buffers (each
	// costs a retransmission timeout).
	Drops int64
}

// Stats returns transport statistics (post-run).
func (m *Machine) Stats() Stats { return m.stats }

// pvmObs caches the registry instruments the transport updates.
type pvmObs struct {
	sends, sendBytes, recvs, drops *obs.Counter
	packBytes, unpackBytes         *obs.Counter
}

// Observe wires a tracer and metrics registry into the machine: sends,
// deliveries, drops, and pack/unpack copies are counted (pvm.* metrics) and
// emitted as instants on the involved host's track. On a simulated machine
// the tracer clock is bound to the kernel. Either argument may be nil; call
// before spawning tasks.
func (m *Machine) Observe(tr *obs.Tracer, reg *obs.Metrics) {
	m.tr = tr
	if tr != nil && m.cluster != nil {
		k := m.cluster.Kernel
		tr.SetClock(func() int64 { return int64(k.Now()) })
	}
	if reg != nil {
		m.mo = &pvmObs{
			sends:       reg.Counter("pvm.sends"),
			sendBytes:   reg.Counter("pvm.send.bytes"),
			recvs:       reg.Counter("pvm.recvs"),
			drops:       reg.Counter("pvm.drops"),
			packBytes:   reg.Counter("pvm.pack.bytes"),
			unpackBytes: reg.Counter("pvm.unpack.bytes"),
		}
	}
}

// SetSpawnCost overrides the modeled pvm_spawn cost (use 0 for experiments
// whose timed phase begins after the workers are already running).
func (m *Machine) SetSpawnCost(t sim.Time) { m.spawnCost = t }

// NewSimMachine runs PVM tasks as simulated processes on the cluster.
func NewSimMachine(cluster *lan.Cluster) *Machine {
	return &Machine{
		cm:        cluster.Model,
		cluster:   cluster,
		nHosts:    len(cluster.Hosts),
		rxBacklog: map[int]int{},
		spawnCost: -1,
		tasks:     map[TID]*Proc{},
		groups:    map[string]*group{},
		barriers:  map[string]*barrier{},
	}
}

// NewRealMachine runs PVM tasks as goroutines; nHosts only bounds host
// numbering (placement has no cost meaning on one machine).
func NewRealMachine(nHosts int) *Machine {
	return &Machine{
		nHosts:    nHosts,
		rxBacklog: map[int]int{},
		spawnCost: -1,
		tasks:     map[TID]*Proc{},
		groups:    map[string]*group{},
		barriers:  map[string]*barrier{},
	}
}

// Sim reports whether this machine is simulated.
func (m *Machine) Sim() bool { return m.cluster != nil }

// Wait blocks until all real-mode tasks have exited (no-op for simulated
// machines, where draining the kernel is the run).
func (m *Machine) Wait() { m.wg.Wait() }

// Errors returns task panics recorded during the run.
func (m *Machine) Errors() []error {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]error, len(m.errs))
	copy(out, m.errs)
	return out
}

func (m *Machine) recordError(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.errs = append(m.errs, err)
}

// taskKilled unwinds a task terminated by Kill.
type taskKilled struct{}

// allocTID reserves a task identifier.
func (m *Machine) allocTID() TID {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTID++
	return m.nextTID
}

// SpawnAt starts a root task on the given host (spawning from outside the
// machine, like starting the manager from the console; free of charge).
func (m *Machine) SpawnAt(name string, host int, fn TaskFunc) TID {
	return m.spawn(name, host, NoParent, fn)
}

func (m *Machine) spawn(name string, host int, parent TID, fn TaskFunc) TID {
	if host < 0 || host >= m.nHosts {
		panic(fmt.Sprintf("pvm: spawn %q on unknown host %d", name, host))
	}
	tid := m.allocTID()
	p := &Proc{m: m, tid: tid, host: host, parent: parent, name: name}
	p.mbox = newMailbox(p)
	// The cond must exist before the task is published in m.tasks: any
	// delivery can look the task up and wake() it from another goroutine.
	p.cond = sync.NewCond(&p.condMu)
	m.mu.Lock()
	m.tasks[tid] = p
	m.mu.Unlock()

	body := func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(taskKilled); !ok {
					m.recordError(fmt.Errorf("pvm: task %q (tid %d) panicked: %v", name, tid, r))
				}
			}
			m.mu.Lock()
			delete(m.tasks, tid)
			m.mu.Unlock()
			m.leaveAllGroups(tid)
		}()
		fn(p)
	}

	if m.Sim() {
		m.cluster.Kernel.Spawn(fmt.Sprintf("pvm:%s@%d", name, host), func(sp *sim.Proc) {
			p.simProc = sp
			body()
		})
	} else {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			body()
		}()
	}
	return tid
}

// Proc is one PVM task's context.
type Proc struct {
	m      *Machine
	tid    TID
	host   int
	parent TID
	name   string

	mbox             *mailbox
	sendBuf          *Buffer
	recvBuf          *Buffer  // active receive buffer, freed by the next Recv/NRecv
	killed           bool     // guarded by condMu in real mode; kernel thread in sim
	releasedBarriers []string // barriers released for this task, same guard

	simProc     *sim.Proc // simulated mode
	mboxWaiting bool      // sim: parked in a mailbox wait (vs a CPU wait)
	condMu      sync.Mutex
	cond        *sync.Cond // real mode
}

// MyTID returns the task's identifier (pvm_mytid).
func (p *Proc) MyTID() TID { return p.tid }

// Parent returns the spawning task's TID, or NoParent (pvm_parent).
func (p *Proc) Parent() TID { return p.parent }

// Host returns the host index this task runs on.
func (p *Proc) Host() int { return p.host }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the simulated time (0 on real machines).
func (p *Proc) Now() sim.Time {
	if p.simProc != nil {
		return p.simProc.Now()
	}
	return 0
}

// Spawn starts a child task on the given host (pvm_spawn). In simulation
// it charges the paper-era spawn cost, serialized on the spawning host.
func (p *Proc) Spawn(name string, host int, fn TaskFunc) TID {
	p.checkKilled()
	cost := p.m.spawnCost
	if cost < 0 {
		cost = p.m.costOrZero(func(cm *lan.CostModel) sim.Time { return cm.PVMSpawnCost })
	}
	p.Compute(cost)
	return p.m.spawn(name, host, p.tid, fn)
}

// Compute charges modeled CPU work (110 MHz-calibrated), contending with
// everything else on this host. Real mode: no-op — real work takes real
// time.
func (p *Proc) Compute(cost sim.Time) {
	if p.m.Sim() && cost > 0 {
		p.m.cluster.Hosts[p.host].ExecProcScaled(p.simProc, cost)
	}
}

// Exit terminates the task (pvm_exit followed by process exit).
func (p *Proc) Exit() { panic(taskKilled{}) }

// Kill terminates another task (pvm_kill). The victim unwinds at its next
// blocking or packing call.
func (p *Proc) Kill(victim TID) { p.m.Kill(victim) }

// Kill terminates a task from outside any task context — fault injectors
// and chaos harnesses crash "hosts" by killing their tasks on a schedule.
// On a simulated machine the call must come from the kernel thread (an
// event callback); on a real machine any goroutine may call it. The victim
// unwinds at its next blocking or packing call; killing an unknown or
// already-exited TID is a no-op, like pvm_kill on a stale task id.
func (m *Machine) Kill(victim TID) {
	m.mu.Lock()
	v, ok := m.tasks[victim]
	m.mu.Unlock()
	if !ok {
		return
	}
	v.mbox.kill()
}

func (p *Proc) checkKilled() {
	if p.m.Sim() {
		if p.killed {
			panic(taskKilled{})
		}
		return
	}
	p.condMu.Lock()
	k := p.killed
	p.condMu.Unlock()
	if k {
		panic(taskKilled{})
	}
}

func (m *Machine) costOrZero(f func(cm *lan.CostModel) sim.Time) sim.Time {
	if m.cm == nil {
		return 0
	}
	return f(m.cm)
}

// block parks the task until ready() returns true. ready is evaluated under
// condMu in real mode and on the kernel thread in simulation.
func (p *Proc) block(ready func() bool) {
	if p.m.Sim() {
		for !ready() {
			p.checkKilled()
			p.mboxWaiting = true
			p.simProc.Park()
			p.mboxWaiting = false
		}
		p.checkKilled()
		return
	}
	p.condMu.Lock()
	for !ready() {
		if p.killed {
			p.condMu.Unlock()
			panic(taskKilled{})
		}
		p.cond.Wait()
	}
	killed := p.killed
	p.condMu.Unlock()
	if killed {
		panic(taskKilled{})
	}
}

// wake is called by deliveries (event context in simulation, any goroutine
// in real mode). In simulation it only unparks a task blocked on its
// mailbox — a task parked waiting for the host CPU has its own wake-up.
func (p *Proc) wake() {
	if p.m.Sim() {
		if p.simProc != nil && p.mboxWaiting && p.simProc.Parked() {
			p.simProc.Unpark()
		}
		return
	}
	p.condMu.Lock()
	p.cond.Broadcast()
	p.condMu.Unlock()
}
