// Package vm implements the resumable stack machine that executes compiled
// Messenger scripts.
//
// The VM is the per-Messenger interpreter state: program counter, call
// frames, operand stack, and the Messenger-variable area. It executes
// bytecode until it reaches one of the paper's interruption points — a
// navigational statement (hop/create/delete), a native-mode function call,
// a virtual-time suspension, or termination — and returns control to the
// daemon with a Result describing why it stopped. Everything in the VM is
// serializable (Snapshot/Restore) and clonable (Clone), which is what lets
// a Messenger hop between daemons mid-program and replicate itself across
// multiple matching links.
//
// Between interruption points execution is atomic with respect to the
// owning daemon (the paper's modified non-preemptive scheduling policy), so
// script-level critical sections need no locks.
package vm

import (
	"errors"
	"fmt"
	"math"

	"messengers/internal/bytecode"
	"messengers/internal/value"
)

// Pause says why the VM returned control to the daemon.
type Pause uint8

// Pause reasons.
const (
	// PauseEnd: the Messenger terminated (OpEnd or main-body return).
	PauseEnd Pause = iota
	// PauseHop: a hop statement; the daemon replicates the Messenger to
	// all matching destinations and this instance ceases to exist.
	PauseHop
	// PauseCreate: a create statement.
	PauseCreate
	// PauseDelete: a delete statement (hop that deletes traversed links).
	PauseDelete
	// PauseNative: a native-function invocation; the daemon runs the
	// function and resumes the VM with PushResult.
	PauseNative
	// PauseSchedAbs: M_sched_time_abs suspension until an absolute GVT.
	PauseSchedAbs
	// PauseSchedDlt: M_sched_time_dlt suspension for a GVT interval.
	PauseSchedDlt
)

// String names the pause reason.
func (p Pause) String() string {
	switch p {
	case PauseEnd:
		return "end"
	case PauseHop:
		return "hop"
	case PauseCreate:
		return "create"
	case PauseDelete:
		return "delete"
	case PauseNative:
		return "native"
	case PauseSchedAbs:
		return "sched_abs"
	case PauseSchedDlt:
		return "sched_dlt"
	default:
		return fmt.Sprintf("pause(%d)", uint8(p))
	}
}

// NavArm is one resolved destination specification triple (plus the daemon
// triple for create).
type NavArm struct {
	LN, LL, LDir value.Value
	DN, DL, DDir value.Value
}

// Result describes an interruption point.
type Result struct {
	Pause  Pause
	Arms   []NavArm      // hop/create/delete
	All    bool          // create ... ALL
	Native string        // native function name
	Args   []value.Value // native arguments
	Time   float64       // sched_abs target or sched_dlt delta
	Steps  int64         // instructions executed in this segment
}

// Host supplies the node-local context the VM needs while executing:
// node variables of the current logical node, network variables, and an
// output sink for print.
type Host interface {
	// NodeVar reads a node variable (nil Value when unset).
	NodeVar(name string) value.Value
	// SetNodeVar writes a node variable.
	SetNodeVar(name string, v value.Value)
	// NetVar reads a network variable such as $address or $last.
	NetVar(name string) (value.Value, bool)
	// Print receives output from the print builtin.
	Print(s string)
}

// frame is one call-stack entry.
type frame struct {
	fn     int
	pc     int
	locals []value.Value
}

// NumOps is the size of the opcode space, for Profile arrays.
const NumOps = int(bytecode.OpEnd) + 1

// Profile accumulates per-opcode execution counts — the interpreter
// profile behind the paper's §2.3 interpretation-overhead discussion. A
// profile is attached per daemon (execution is daemon-confined) and summed
// into the obs metrics registry post-run; a nil profile costs the
// interpreter loop one predictable branch.
type Profile struct {
	Counts [NumOps]int64
	// Pairs, when non-nil, counts dynamic adjacent opcode pairs on the
	// switch loop (threaded dispatch has already fused its pairs away).
	// This is the measurement the superinstruction set in
	// internal/bytecode/lower.go was chosen from; cmd/mvm -pairs prints
	// it. Pair counting costs the hot loop nothing unless enabled.
	Pairs *[NumOps][NumOps]int64
}

// OpName names profile slot i for metric labels.
func OpName(i int) string { return bytecode.Op(i).String() }

// VM is the execution state of one Messenger.
type VM struct {
	prog   *bytecode.Program
	vars   map[string]value.Value
	stack  []value.Value
	frames []frame
	prof   *Profile
	meter  StepMeter

	// Fast-path state (see threaded.go). arena backs locals and the stack
	// so a Messenger's values sit in one slab; stackBuf is the raw operand
	// stack backing the threaded loop indexes into; mslots/mdirty cache
	// Messenger variables as slots, valid while slotsClean (any external
	// access to the vars map invalidates them); tx is the reusable
	// per-segment execution scratch.
	dispatch   Dispatch
	arena      *value.Arena
	stackBuf   []value.Value
	mslots     []value.Value
	mdirty     []bool
	slotsClean bool
	tx         *texec

	// segThreaded/segFused count source instructions the last Run segment
	// executed on the threaded path and inside fused superinstructions.
	segThreaded int64
	segFused    int64
}

// SetProfile attaches (or detaches, with nil) an opcode profile. The
// daemon re-attaches its own profile before every segment, so a Messenger
// hopping between daemons is counted where it executes.
func (m *VM) SetProfile(p *Profile) { m.prof = p }

// StepMeter is an external instruction budget. When attached, Run caps each
// segment at the meter's remaining allowance in addition to its own
// maxSteps limit, and debits the instructions it actually executed when the
// segment ends — including segments that end in an error. An exhausted
// allowance surfaces as ErrStepBudget, which admission layers treat as a
// quota eviction rather than a program bug. Implementations are shared
// across daemons (a session's clones execute concurrently) and must be
// safe for concurrent use.
type StepMeter interface {
	// Allowance returns the remaining instruction allowance; values <= 0
	// mean the budget is exhausted.
	Allowance() int64
	// Charge debits n executed instructions from the allowance.
	Charge(n int64)
}

// ErrStepBudget reports that an attached StepMeter's allowance ran out.
// Callers distinguish it from ordinary runtime errors with errors.Is.
var ErrStepBudget = errors.New("instruction step budget exhausted")

// SetMeter attaches (or detaches, with nil) a step meter. Like the
// profile, the meter is daemon-local scheduling state: it does not travel
// in snapshots or clones, and the daemon re-attaches the owning session's
// meter before every segment.
func (m *VM) SetMeter(sm StepMeter) { m.meter = sm }

// arenaHeadroom is the extra Value capacity a VM's arena carries beyond
// the verifier-proven main-frame need (NumLocals + MaxStack), absorbing a
// few levels of script calls before falling back to the heap. Kept small:
// a server holds many paused Messengers, and every slab Value is live
// memory.
const arenaHeadroom = 8

// newArenaFor sizes a VM's value arena from the verifier's metadata for
// the main body: its locals plus its proven worst-case operand stack, with
// a little call headroom. Unverified programs get no arena (nil is a valid
// Arena receiver that always falls back to the heap).
func newArenaFor(prog *bytecode.Program) *value.Arena {
	if !prog.Verified() {
		return nil
	}
	return value.NewArena(prog.Funcs[0].NumLocals + prog.MaxStack(0) + arenaHeadroom)
}

// allocValues serves locals/stack allocations from the arena when one is
// attached, the heap otherwise.
func (m *VM) allocValues(n int) []value.Value {
	if m.arena != nil {
		return m.arena.Values(n)
	}
	return make([]value.Value, n)
}

// New returns a VM at the start of the program's main body with the given
// initial Messenger variables (may be nil).
func New(prog *bytecode.Program, vars map[string]value.Value) *VM {
	if vars == nil {
		vars = map[string]value.Value{}
	}
	m := &VM{
		prog:  prog,
		vars:  vars,
		arena: newArenaFor(prog),
	}
	m.frames = []frame{{fn: 0, locals: m.allocValues(prog.Funcs[0].NumLocals)}}
	return m
}

// Program returns the program this VM executes.
func (m *VM) Program() *bytecode.Program { return m.prog }

// Vars exposes the Messenger-variable area (the state that travels with the
// Messenger). Handing out the map invalidates the threaded loop's slot
// cache — the caller may mutate it.
func (m *VM) Vars() map[string]value.Value {
	m.slotsClean = false
	return m.vars
}

// Var reads one Messenger variable.
func (m *VM) Var(name string) value.Value { return m.vars[name] }

// SetVar writes one Messenger variable (used for injection parameters).
func (m *VM) SetVar(name string, v value.Value) {
	m.slotsClean = false
	m.vars[name] = v
}

// SegmentStats reports how the last Run segment executed: source
// instructions dispatched on the threaded fast path, and the subset
// covered by fused superinstructions. Feeds the vm.dispatch.* and
// vm.fused.* metrics.
func (m *VM) SegmentStats() (threadedSteps, fusedSteps int64) {
	return m.segThreaded, m.segFused
}

// ArenaBytes reports the memory pinned by the VM's value arena (the
// vm.arena.bytes metric); 0 without an arena.
func (m *VM) ArenaBytes() int64 { return m.arena.Bytes() }

// PushResult delivers a native function's return value before resuming.
func (m *VM) PushResult(v value.Value) { m.push(v) }

// Clone deep-copies the VM (Messenger replication on multi-destination
// hops). The clone gets its own arena — replicas outlive each other and
// may execute on different daemons.
func (m *VM) Clone() *VM {
	c := &VM{
		prog:   m.prog,
		vars:   value.CloneEnv(m.vars),
		frames: make([]frame, len(m.frames)),
		arena:  newArenaFor(m.prog),
	}
	c.stack = c.allocValues(len(m.stack))
	for i, v := range m.stack {
		c.stack[i] = v.Clone()
	}
	for i, fr := range m.frames {
		nf := frame{fn: fr.fn, pc: fr.pc, locals: c.allocValues(len(fr.locals))}
		for j, lv := range fr.locals {
			nf.locals[j] = lv.Clone()
		}
		c.frames[i] = nf
	}
	return c
}

func (m *VM) push(v value.Value) { m.stack = append(m.stack, v) }

func (m *VM) pop() value.Value {
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}

func (m *VM) top() *frame { return &m.frames[len(m.frames)-1] }

// runtimeError annotates an error with the current program location.
func (m *VM) runtimeError(format string, args ...any) error {
	f := m.top()
	fname := m.prog.Funcs[f.fn].Name
	return fmt.Errorf("msl runtime (%s@%d in %s): %s", m.prog.Name, f.pc-1, fname, fmt.Sprintf(format, args...))
}

// Run executes until the next interruption point or until maxSteps
// instructions have executed (0 means no limit; exceeding the limit is a
// runtime error — a runaway Messenger). On error the Messenger must be
// destroyed by the daemon.
//
// Verified programs execute on the token-threaded fast path over the
// lowered instruction stream (threaded.go) unless the dispatch mode pins
// the switch loop; unverified programs, and the tail of any segment the
// fast path hands back (step budget about to trip), run on the switch
// loop below. Both loops share the cumulative step counter, so meter
// charges and Result.Steps are identical whichever executed.
func (m *VM) Run(host Host, maxSteps int64) (Result, error) {
	var steps int64
	m.segThreaded, m.segFused = 0, 0
	// An attached meter tightens the segment limit to the session's
	// remaining allowance and is debited for what actually executed, on
	// every exit path. metered distinguishes "the meter capped us" (quota
	// eviction, ErrStepBudget) from "the daemon's runaway guard fired"
	// (runtime error).
	limit, metered := maxSteps, false
	if m.meter != nil {
		a := m.meter.Allowance()
		if a <= 0 {
			return Result{}, fmt.Errorf("msl (%s): %w", m.prog.Name, ErrStepBudget)
		}
		if limit <= 0 || a < limit {
			limit, metered = a, true
		}
		defer func() { m.meter.Charge(steps) }()
	}
	if mode := m.dispatch; mode != DispatchSwitch && m.prog.Verified() {
		lm := bytecode.LowerPlain
		switch mode {
		case DispatchFused:
			lm = bytecode.LowerFused
		case DispatchSpecialized, DispatchAuto:
			lm = bytecode.LowerKind
		}
		if low := m.prog.Lowered(lm); low != nil {
			res, err, done := m.runThreaded(host, low, limit, &steps)
			if done {
				return res, err
			}
		}
	}
	return m.runSwitch(host, maxSteps, limit, metered, &steps)
}

// runSwitch is the classic switch-dispatch interpreter: the only loop for
// unverified programs, the budget-boundary tail for threaded segments, and
// the oracle the differential tests hold the fast path to. steps is the
// segment-cumulative counter shared with the threaded loop.
func (m *VM) runSwitch(host Host, maxSteps, limit int64, metered bool, stepsp *int64) (Result, error) {
	prof := m.prof
	// Verified programs have statically proven control flow: every jump
	// target is in range and no path falls off the end of the code, so the
	// per-step PC bounds check is redundant (Restore already vets resume
	// PCs against the same metadata). Unverified programs — hand-built in
	// tests — keep the dynamic guard.
	verified := m.prog.Verified()
	// The switch loop stores Messenger variables straight into the map, so
	// any slot cache the threaded loop left behind goes stale here.
	m.slotsClean = false
	steps := *stepsp
	defer func() { *stepsp = steps }()
	prevOp := -1
	for {
		f := m.top()
		code := m.prog.Funcs[f.fn].Code
		if !verified && (f.pc < 0 || f.pc >= len(code)) {
			return Result{}, m.runtimeError("program counter out of range (%d)", f.pc)
		}
		ins := code[f.pc]
		f.pc++
		steps++
		if prof != nil && int(ins.Op) < NumOps {
			prof.Counts[ins.Op]++
			if prof.Pairs != nil {
				if prevOp >= 0 {
					prof.Pairs[prevOp][ins.Op]++
				}
				prevOp = int(ins.Op)
			}
		}
		if limit > 0 && steps > limit {
			if metered {
				// The tripping instruction was fetched but not executed:
				// roll it back so the deferred Charge debits exactly the
				// executed count and a session can never exceed its budget.
				steps--
				if prof != nil && int(ins.Op) < NumOps {
					prof.Counts[ins.Op]--
				}
				return Result{}, fmt.Errorf("msl (%s): %w after %d steps", m.prog.Name, ErrStepBudget, steps)
			}
			return Result{}, m.runtimeError("instruction budget of %d exceeded (runaway Messenger?)", maxSteps)
		}

		switch ins.Op {
		case bytecode.OpNop:

		case bytecode.OpConst:
			m.push(m.prog.Consts[ins.A].Clone())

		case bytecode.OpLoadM:
			m.push(m.vars[m.prog.Names[ins.A]])
		case bytecode.OpStoreM:
			m.vars[m.prog.Names[ins.A]] = m.pop()

		case bytecode.OpLoadN:
			m.push(host.NodeVar(m.prog.Names[ins.A]))
		case bytecode.OpStoreN:
			host.SetNodeVar(m.prog.Names[ins.A], m.pop())

		case bytecode.OpLoadNet:
			name := m.prog.Names[ins.A]
			v, ok := host.NetVar(name)
			if !ok {
				return Result{}, m.runtimeError("unknown network variable $%s", name)
			}
			m.push(v)

		case bytecode.OpLoadL:
			m.push(f.locals[ins.A])
		case bytecode.OpStoreL:
			f.locals[ins.A] = m.pop()

		case bytecode.OpPop:
			m.pop()
		case bytecode.OpDup:
			m.push(m.stack[len(m.stack)-1])
		case bytecode.OpDup2:
			n := len(m.stack)
			m.push(m.stack[n-2])
			m.push(m.stack[n-1])

		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod:
			b, a := m.pop(), m.pop()
			r, err := arith(ins.Op, a, b)
			if err != nil {
				return Result{}, m.runtimeError("%v", err)
			}
			m.push(r)

		case bytecode.OpNeg:
			a := m.pop()
			switch a.Kind() {
			case value.KindInt:
				m.push(value.Int(-a.AsInt()))
			case value.KindNum:
				m.push(value.Num(-a.AsNum()))
			default:
				return Result{}, m.runtimeError("cannot negate %v", a.Kind())
			}
		case bytecode.OpNot:
			m.push(value.Bool(!m.pop().Truthy()))

		case bytecode.OpEq:
			b, a := m.pop(), m.pop()
			m.push(value.Bool(a.Equal(b)))
		case bytecode.OpNe:
			b, a := m.pop(), m.pop()
			m.push(value.Bool(!a.Equal(b)))
		case bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe:
			b, a := m.pop(), m.pop()
			cmp, ok := a.Compare(b)
			if !ok {
				return Result{}, m.runtimeError("cannot compare %v with %v", a.Kind(), b.Kind())
			}
			var r bool
			switch ins.Op {
			case bytecode.OpLt:
				r = cmp < 0
			case bytecode.OpLe:
				r = cmp <= 0
			case bytecode.OpGt:
				r = cmp > 0
			default:
				r = cmp >= 0
			}
			m.push(value.Bool(r))

		case bytecode.OpJmp:
			f.pc = int(ins.A)
		case bytecode.OpJz:
			if !m.pop().Truthy() {
				f.pc = int(ins.A)
			}

		case bytecode.OpIndex:
			idx, base := m.pop(), m.pop()
			if !idx.IsNumeric() {
				return Result{}, m.runtimeError("index must be numeric, got %v", idx.Kind())
			}
			v, ok := base.Index(int(idx.AsInt()))
			if !ok {
				return Result{}, m.runtimeError("index %d out of range for %v of length %d", idx.AsInt(), base.Kind(), base.Len())
			}
			m.push(v)

		case bytecode.OpSetIndex:
			val, idx, base := m.pop(), m.pop(), m.pop()
			if !idx.IsNumeric() {
				return Result{}, m.runtimeError("index must be numeric, got %v", idx.Kind())
			}
			if !base.SetIndex(int(idx.AsInt()), val) {
				return Result{}, m.runtimeError("cannot set index %d on %v of length %d", idx.AsInt(), base.Kind(), base.Len())
			}
			if ins.B != 0 {
				m.push(val)
			}

		case bytecode.OpArr:
			n := int(ins.A)
			elems := make([]value.Value, n)
			for i := n - 1; i >= 0; i-- {
				elems[i] = m.pop()
			}
			m.push(value.Arr(elems))

		case bytecode.OpCallFunc:
			fi := int(ins.A)
			argc := int(ins.B)
			callee := &m.prog.Funcs[fi]
			locals := make([]value.Value, callee.NumLocals)
			for i := argc - 1; i >= 0; i-- {
				locals[i] = m.pop()
			}
			if len(m.frames) >= maxCallDepth {
				return Result{}, m.runtimeError("call depth exceeds %d (infinite recursion?)", maxCallDepth)
			}
			m.frames = append(m.frames, frame{fn: fi, locals: locals})

		case bytecode.OpRet:
			if len(m.frames) == 1 {
				// Return from the main body terminates the Messenger.
				return Result{Pause: PauseEnd, Steps: steps}, nil
			}
			ret := m.pop()
			m.frames = m.frames[:len(m.frames)-1]
			m.push(ret)

		case bytecode.OpCallNative:
			name := m.prog.Names[ins.A]
			argc := int(ins.B)
			args := make([]value.Value, argc)
			for i := argc - 1; i >= 0; i-- {
				args[i] = m.pop()
			}
			if fn, ok := builtins[name]; ok {
				r, err := fn(m, host, args)
				if err != nil {
					return Result{}, m.runtimeError("%s: %v", name, err)
				}
				m.push(r)
				continue
			}
			return Result{Pause: PauseNative, Native: name, Args: args, Steps: steps}, nil

		case bytecode.OpHop, bytecode.OpDelete:
			arms := make([]NavArm, ins.A)
			for i := int(ins.A) - 1; i >= 0; i-- {
				arms[i].LDir = m.pop()
				arms[i].LL = m.pop()
				arms[i].LN = m.pop()
			}
			p := PauseHop
			if ins.Op == bytecode.OpDelete {
				p = PauseDelete
			}
			return Result{Pause: p, Arms: arms, Steps: steps}, nil

		case bytecode.OpCreate:
			arms := make([]NavArm, ins.A)
			for i := int(ins.A) - 1; i >= 0; i-- {
				arms[i].DDir = m.pop()
				arms[i].DL = m.pop()
				arms[i].DN = m.pop()
				arms[i].LDir = m.pop()
				arms[i].LL = m.pop()
				arms[i].LN = m.pop()
			}
			return Result{Pause: PauseCreate, Arms: arms, All: ins.B != 0, Steps: steps}, nil

		case bytecode.OpSchedAbs, bytecode.OpSchedDlt:
			t := m.pop()
			if !t.IsNumeric() {
				return Result{}, m.runtimeError("scheduling time must be numeric, got %v", t.Kind())
			}
			p := PauseSchedAbs
			if ins.Op == bytecode.OpSchedDlt {
				p = PauseSchedDlt
			}
			return Result{Pause: p, Time: t.AsNum(), Steps: steps}, nil

		case bytecode.OpEnd:
			return Result{Pause: PauseEnd, Steps: steps}, nil

		default:
			return Result{}, m.runtimeError("illegal opcode %v", ins.Op)
		}
	}
}

// maxCallDepth bounds script recursion.
const maxCallDepth = 10000

func arith(op bytecode.Op, a, b value.Value) (value.Value, error) {
	// Unset variables behave like C's zero-initialized data: nil is 0 in
	// arithmetic when the other operand is numeric (or nil).
	if a.IsNil() && (b.IsNumeric() || b.IsNil()) {
		a = value.Int(0)
	}
	if b.IsNil() && a.IsNumeric() {
		b = value.Int(0)
	}
	if a.Kind() == value.KindStr || b.Kind() == value.KindStr {
		if op != bytecode.OpAdd {
			return value.Nil(), fmt.Errorf("operator not defined on strings")
		}
		return value.Str(a.Format() + b.Format()), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return value.Nil(), fmt.Errorf("arithmetic on %v and %v", a.Kind(), b.Kind())
	}
	bothInt := a.Kind() == value.KindInt && b.Kind() == value.KindInt
	switch op {
	case bytecode.OpAdd:
		if bothInt {
			return value.Int(a.AsInt() + b.AsInt()), nil
		}
		return value.Num(a.AsNum() + b.AsNum()), nil
	case bytecode.OpSub:
		if bothInt {
			return value.Int(a.AsInt() - b.AsInt()), nil
		}
		return value.Num(a.AsNum() - b.AsNum()), nil
	case bytecode.OpMul:
		if bothInt {
			return value.Int(a.AsInt() * b.AsInt()), nil
		}
		return value.Num(a.AsNum() * b.AsNum()), nil
	case bytecode.OpDiv:
		if bothInt {
			if b.AsInt() == 0 {
				return value.Nil(), fmt.Errorf("integer division by zero")
			}
			return value.Int(a.AsInt() / b.AsInt()), nil
		}
		return value.Num(a.AsNum() / b.AsNum()), nil
	case bytecode.OpMod:
		if !bothInt {
			return value.Num(math.Mod(a.AsNum(), b.AsNum())), nil
		}
		if b.AsInt() == 0 {
			return value.Nil(), fmt.Errorf("integer modulo by zero")
		}
		return value.Int(a.AsInt() % b.AsInt()), nil
	default:
		return value.Nil(), fmt.Errorf("bad arithmetic opcode %v", op)
	}
}
