package bytecode

import (
	"errors"
	"fmt"
	"sort"

	"messengers/internal/value"
)

// ErrIllTyped marks Validate failures produced by the kind-flow analysis:
// the program would provably kind-fault on every execution reaching some
// instruction (arithmetic on a proven string, a matrix builtin on a proven
// scalar, ...). Admission layers match it with errors.Is to map the
// failure to their ill-typed reject code instead of the generic
// verification failure.
var ErrIllTyped = errors.New("ill-typed program")

// AbsKind is one element of the kind-flow lattice: ⊥ (KindBottom, no value
// / unreachable), one exact value.Kind per dynamic type, and ⊤ (KindTop,
// any kind). The lattice is flat — joining two different exact kinds
// widens straight to ⊤ — which keeps the fixpoint cheap (every cell can
// rise at most twice) and makes "proven" mean exactly one dynamic kind.
type AbsKind uint8

// Lattice elements. The exact kinds mirror value.Kind shifted by one so
// the zero AbsKind is ⊥, never a claim.
const (
	KindBottom AbsKind = iota
	KindNil
	KindInt
	KindNum
	KindStr
	KindBytes
	KindArr
	KindMat
	KindTop
)

// KindOf lifts a dynamic kind into the lattice.
func KindOf(k value.Kind) AbsKind { return AbsKind(k) + 1 }

// String renders the lattice element; exact kinds use the MSL-facing
// names so verifier errors read like runtime errors.
func (k AbsKind) String() string {
	switch k {
	case KindBottom:
		return "⊥"
	case KindTop:
		return "any"
	default:
		return value.Kind(k - 1).String()
	}
}

// Matches reports whether a runtime value of dynamic kind vk is allowed
// where the analysis proved k. ⊤ allows everything; an exact kind allows
// only itself; ⊥ allows nothing (the location is unreachable).
func (k AbsKind) Matches(vk value.Kind) bool {
	return k == KindTop || k == KindOf(vk)
}

// Exact reports whether k is a single proven dynamic kind (not ⊥/⊤).
func (k AbsKind) Exact() bool { return k > KindBottom && k < KindTop }

// numeric reports Int or Num — the kinds arith and compare accept without
// coercion.
func (k AbsKind) numeric() bool { return k == KindInt || k == KindNum }

// scalar reports the fixed-wire-size kinds (Nil is 1 byte, Int/Num are 9).
func (k AbsKind) scalar() bool { return k == KindNil || k == KindInt || k == KindNum }

// join is the lattice join: ⊥ is the identity, equal kinds stay, anything
// else widens to ⊤.
func (k AbsKind) join(o AbsKind) AbsKind {
	switch {
	case k == o || o == KindBottom:
		return k
	case k == KindBottom:
		return o
	default:
		return KindTop
	}
}

// kstate is the abstract machine state on entry to one PC: the kind of
// every operand stack slot (frame-relative, length = the depth the stack
// verifier proved), every local, and every Messenger variable the program
// references anywhere (indexed by Program.mvarIdx). Node and network
// variables are host state and always ⊤.
type kstate struct {
	stack  []AbsKind
	locals []AbsKind
	mvars  []AbsKind
}

func cloneKinds(s []AbsKind) []AbsKind {
	if s == nil {
		return nil
	}
	c := make([]AbsKind, len(s))
	copy(c, s)
	return c
}

func (s *kstate) clone() kstate {
	return kstate{stack: cloneKinds(s.stack), locals: cloneKinds(s.locals), mvars: cloneKinds(s.mvars)}
}

// joinInto merges src into dst cell-wise and reports whether dst changed.
// Slice lengths agree by construction: the depth verifier already proved
// every merge point has one stack depth, and locals/mvars are fixed-size.
func joinInto(dst *kstate, src *kstate) bool {
	changed := false
	merge := func(d, s []AbsKind) {
		for i := range d {
			if j := d[i].join(s[i]); j != d[i] {
				d[i] = j
				changed = true
			}
		}
	}
	merge(dst.stack, src.stack)
	merge(dst.locals, src.locals)
	merge(dst.mvars, src.mvars)
	return changed
}

func (s *kstate) push(k AbsKind) { s.stack = append(s.stack, k) }

func (s *kstate) pop() AbsKind {
	k := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return k
}

func (s *kstate) popN(n int) { s.stack = s.stack[:len(s.stack)-n] }

func (s *kstate) topAll() {
	for i := range s.mvars {
		s.mvars[i] = KindTop
	}
}

// collectMVars builds the program-wide Messenger-variable slot table the
// kind states are indexed by: every name any function loads or stores,
// in first-reference order, with a stored bit (a never-stored variable
// keeps whatever value was injected, which StateBound exploits).
func (p *Program) collectMVars() {
	p.mvarIdx = map[string]int{}
	p.mvarNames = p.mvarNames[:0]
	p.mvarStored = p.mvarStored[:0]
	for fi := range p.Funcs {
		for _, ins := range p.Funcs[fi].Code {
			if ins.Op != OpLoadM && ins.Op != OpStoreM {
				continue
			}
			name := p.Names[ins.A]
			idx, ok := p.mvarIdx[name]
			if !ok {
				idx = len(p.mvarNames)
				p.mvarIdx[name] = idx
				p.mvarNames = append(p.mvarNames, name)
				p.mvarStored = append(p.mvarStored, false)
			}
			if ins.Op == OpStoreM {
				p.mvarStored[idx] = true
			}
		}
	}
}

// maxKindCells caps the total abstract-state footprint (Σ over PCs of
// stack depth + locals + tracked variables) the kind analysis will spend
// on one function. Hostile inputs can make the fixpoint quadratic in that
// footprint; past the cap the function's kinds degrade soundly to ⊤
// (kinds == nil: every reachable slot reads as ⊤, nothing is rejected,
// nothing is specialized) instead of stalling admission.
const maxKindCells = 1 << 21

// arithKind abstracts vm.arith over the lattice. It returns the result
// kind and, when the operation faults on every execution reaching it with
// these operand kinds, a non-empty fault description.
func arithKind(op Op, a, b AbsKind) (AbsKind, string) {
	// Either operand a proven string: concatenation accepts any peer
	// (it formats), every other operator always faults.
	if a == KindStr || b == KindStr {
		if op == OpAdd {
			return KindStr, ""
		}
		return KindTop, "operator not defined on strings"
	}
	if a == KindTop || b == KindTop {
		return KindTop, ""
	}
	if !a.scalar() || !b.scalar() {
		return KindTop, fmt.Sprintf("arithmetic on %s and %s", a, b)
	}
	// Nil coerces to Int(0) against a numeric (or nil) peer.
	if a == KindNil {
		a = KindInt
	}
	if b == KindNil {
		b = KindInt
	}
	if a == KindInt && b == KindInt {
		return KindInt, ""
	}
	return KindNum, ""
}

// cmpKind abstracts value.Compare: numerics order against numerics,
// strings against strings, everything else faults.
func cmpKind(a, b AbsKind) string {
	unorderable := func(k AbsKind) bool {
		return k == KindNil || k == KindBytes || k == KindArr || k == KindMat
	}
	if unorderable(a) || unorderable(b) {
		return fmt.Sprintf("cannot compare %s with %s", a, b)
	}
	if (a == KindStr && b.numeric()) || (b == KindStr && a.numeric()) {
		return fmt.Sprintf("cannot compare %s with %s", a, b)
	}
	return ""
}

// provenNotNumeric reports a kind that can never satisfy IsNumeric.
func provenNotNumeric(k AbsKind) bool {
	return k != KindTop && !k.numeric()
}

// nativeEffect models the inline builtins (internal/vm/builtins.go). For
// a known builtin it returns the result kind and, when the call provably
// faults (wrong argc, argument kind the builtin always rejects), a fault
// description; known=false means an unknown native — the daemon runs it
// out-of-line and may mutate Messenger variables, so the caller must
// widen them. The vm package cross-checks this table against its builtin
// map (TestKindNativeTableMatchesBuiltins), so the two cannot drift.
func nativeEffect(name string, args []AbsKind) (result AbsKind, fault string, known bool) {
	argc := func(n int) string {
		if len(args) != n {
			return fmt.Sprintf("%s: want %d arguments, got %d", name, n, len(args))
		}
		return ""
	}
	wantNumeric := func(i int) string {
		if provenNotNumeric(args[i]) {
			return fmt.Sprintf("%s: argument %d is proven %s, needs a numeric", name, i, args[i])
		}
		return ""
	}
	wantMat := func() string {
		if args[0] != KindTop && args[0] != KindMat {
			return fmt.Sprintf("%s: want a matrix, got proven %s", name, args[0])
		}
		return ""
	}
	first := func(checks ...string) string {
		for _, c := range checks {
			if c != "" {
				return c
			}
		}
		return ""
	}
	switch name {
	case "len":
		return KindInt, argc(1), true
	case "print":
		return KindNil, "", true
	case "str":
		return KindStr, argc(1), true
	case "int":
		f := argc(1)
		if f == "" && args[0].Exact() && !args[0].numeric() && args[0] != KindStr {
			f = fmt.Sprintf("cannot convert proven %s to int", args[0])
		}
		return KindInt, f, true
	case "num":
		f := argc(1)
		if f == "" && args[0].Exact() && !args[0].numeric() && args[0] != KindStr {
			f = fmt.Sprintf("cannot convert proven %s to num", args[0])
		}
		return KindNum, f, true
	case "abs":
		if f := argc(1); f != "" {
			return KindTop, f, true
		}
		switch args[0] {
		case KindInt, KindNum:
			return args[0], "", true
		case KindTop:
			return KindTop, "", true
		default:
			return KindTop, fmt.Sprintf("abs of proven %s", args[0]), true
		}
	case "min", "max":
		if len(args) < 1 {
			return KindTop, name + ": want at least 1 argument", true
		}
		r := args[0]
		sawStr, sawNum := false, false
		var f string
		for _, a := range args[1:] {
			r = r.join(a)
		}
		if len(args) > 1 {
			for _, a := range args {
				switch {
				case a == KindStr:
					sawStr = true
				case a.numeric():
					sawNum = true
				case a.Exact():
					f = fmt.Sprintf("%s: cannot compare proven %s", name, a)
				}
			}
			if f == "" && sawStr && sawNum {
				f = name + ": cannot compare str with a numeric"
			}
		}
		return r, f, true
	case "floor", "ceil", "sqrt":
		return KindNum, first(argc(1), wantNumeric(0)), true
	case "pow":
		return KindNum, first(argc(2), wantNumeric(0), wantNumeric(1)), true
	case "array":
		if len(args) < 1 || len(args) > 2 {
			return KindArr, name + ": want array(n) or array(n, fill)", true
		}
		return KindArr, wantNumeric(0), true
	case "bytes":
		return KindBytes, first(argc(1), wantNumeric(0)), true
	case "copy":
		if f := argc(1); f != "" {
			return KindTop, f, true
		}
		return args[0], "", true
	case "substr":
		f := argc(3)
		if f == "" && args[0].Exact() && args[0] != KindStr {
			f = fmt.Sprintf("substr of proven %s", args[0])
		}
		return KindStr, first(f, wantNumeric(1), wantNumeric(2)), true
	case "matrix":
		return KindMat, first(argc(2), wantNumeric(0), wantNumeric(1)), true
	case "rows", "cols":
		return KindInt, first(argc(1), wantMat()), true
	case "matget":
		return KindNum, first(argc(3), wantMat(), wantNumeric(1), wantNumeric(2)), true
	case "matset":
		return KindNil, first(argc(4), wantMat(), wantNumeric(1), wantNumeric(2)), true
	}
	return KindTop, "", false
}

// KnownNatives lists the builtin names the kind analysis models, sorted.
// The vm package asserts this set equals its inline builtin table: a name
// here that paused to the daemon instead would let a native mutate
// Messenger variables behind proofs that say otherwise.
func KnownNatives() []string {
	names := []string{
		"len", "print", "str", "int", "num", "abs", "min", "max",
		"floor", "ceil", "sqrt", "pow", "array", "bytes", "copy",
		"substr", "matrix", "rows", "cols", "matget", "matset",
	}
	sort.Strings(names)
	return names
}

// NativeResultKind exposes the modeled result kind of a known builtin for
// the given argument kinds (for the vm cross-check tests); ok=false for
// unknown natives.
func NativeResultKind(name string, args []AbsKind) (AbsKind, bool) {
	r, _, known := nativeEffect(name, args)
	return r, known
}

// kindEffect applies one instruction to s in place (entry state → out
// state) and returns a non-empty fault description when the instruction
// provably faults on every execution reaching it with this entry state.
// During the fixpoint the fault string is ignored and the result of a
// faulting operation widens to ⊤ (a premature rejection before states
// stabilize would depend on worklist order); the post-fixpoint check pass
// re-runs kindEffect on the final states and reports the faults.
func (p *Program) kindEffect(f *FuncInfo, ins Instr, s *kstate) string {
	switch ins.Op {
	case OpNop, OpJmp:

	case OpConst:
		s.push(KindOf(p.Consts[ins.A].Kind()))

	case OpLoadM:
		s.push(s.mvars[p.mvarIdx[p.Names[ins.A]]])
	case OpStoreM:
		s.mvars[p.mvarIdx[p.Names[ins.A]]] = s.pop()

	case OpLoadN, OpLoadNet:
		// Host state: node variables are shared with natives and other
		// Messengers, network variables are engine-provided. Always ⊤.
		s.push(KindTop)
	case OpStoreN:
		s.pop()

	case OpLoadL:
		s.push(s.locals[ins.A])
	case OpStoreL:
		s.locals[ins.A] = s.pop()

	case OpPop:
		s.pop()
	case OpDup:
		s.push(s.stack[len(s.stack)-1])
	case OpDup2:
		n := len(s.stack)
		s.push(s.stack[n-2])
		s.push(s.stack[n-1])

	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		b, a := s.pop(), s.pop()
		r, fault := arithKind(ins.Op, a, b)
		s.push(r)
		return fault

	case OpNeg:
		a := s.pop()
		switch a {
		case KindInt, KindNum, KindTop:
			s.push(a)
		default:
			s.push(KindTop)
			return fmt.Sprintf("cannot negate proven %s", a)
		}
	case OpNot:
		s.pop()
		s.push(KindInt)

	case OpEq, OpNe:
		s.popN(2)
		s.push(KindInt)
	case OpLt, OpLe, OpGt, OpGe:
		b, a := s.pop(), s.pop()
		s.push(KindInt)
		return cmpKind(a, b)

	case OpJz:
		s.pop()

	case OpIndex:
		idx, base := s.pop(), s.pop()
		var fault string
		if provenNotNumeric(idx) {
			fault = fmt.Sprintf("index must be numeric, got proven %s", idx)
		}
		switch base {
		case KindArr, KindTop:
			s.push(KindTop)
		case KindBytes, KindStr:
			s.push(KindInt)
		case KindMat:
			s.push(KindNum)
		default:
			s.push(KindTop)
			if fault == "" {
				fault = fmt.Sprintf("proven %s is not indexable", base)
			}
		}
		return fault

	case OpSetIndex:
		val, idx, base := s.pop(), s.pop(), s.pop()
		if ins.B != 0 {
			s.push(val)
		}
		if provenNotNumeric(idx) {
			return fmt.Sprintf("index must be numeric, got proven %s", idx)
		}
		if base.Exact() && base != KindArr && base != KindBytes && base != KindMat {
			return fmt.Sprintf("cannot set index on proven %s", base)
		}

	case OpArr:
		s.popN(int(ins.A))
		s.push(KindArr)

	case OpCallFunc:
		// The callee runs with its own frame but shares the Messenger
		// variables and may store any of them (transitively), so the
		// call widens every tracked variable; its return value is ⊤.
		s.popN(int(ins.B))
		s.push(KindTop)
		s.topAll()

	case OpRet:
		s.pop()

	case OpCallNative:
		n := int(ins.B)
		args := s.stack[len(s.stack)-n:]
		result, fault, known := nativeEffect(p.Names[ins.A], args)
		s.popN(n)
		s.push(result)
		if !known {
			// Out-of-line native: the daemon's handler can mutate
			// Messenger variables (NativeCtx.SetMsgrVar) before resuming.
			s.topAll()
		}
		return fault

	case OpHop, OpDelete:
		s.popN(int(ins.A) * 3)
	case OpCreate:
		s.popN(int(ins.A) * 6)

	case OpSchedAbs, OpSchedDlt:
		t := s.pop()
		if provenNotNumeric(t) {
			return fmt.Sprintf("scheduling time must be numeric, got proven %s", t)
		}

	case OpEnd:
	}
	return ""
}

// analyzeKinds runs the kind-flow fixpoint over one function's CFG and
// then the rejection pass over the stabilized states. It requires the
// depth analysis to have succeeded for this function (meta[fi].depth set):
// stack slot counts and merge consistency come from that proof. On
// footprint overflow (maxKindCells) the function's kinds stay nil, which
// every consumer reads as ⊤-everywhere.
func (p *Program) analyzeKinds(fi int) error {
	f := &p.Funcs[fi]
	m := &p.meta[fi]
	cells := 0
	for _, d := range m.depth {
		if d == unreachable {
			continue
		}
		cells += int(d) + f.NumLocals + len(p.mvarNames)
		if cells > maxKindCells {
			return nil
		}
	}
	states := make([]kstate, len(f.Code))
	reached := make([]bool, len(f.Code))
	entry := kstate{
		locals: make([]AbsKind, f.NumLocals),
		mvars:  make([]AbsKind, len(p.mvarNames)),
	}
	for i := range entry.locals {
		if i < f.NumParams {
			// Arguments arrive from arbitrary call sites; an
			// interprocedural summary could narrow this but the flat
			// lattice makes ⊤ the honest per-function answer.
			entry.locals[i] = KindTop
		} else {
			// Non-parameter locals are zero Values until stored.
			entry.locals[i] = KindNil
		}
	}
	for i := range entry.mvars {
		// At function entry the Messenger-variable area is whatever the
		// injector, a caller, or a previous segment left there: ⊤. Stores
		// narrow it; hops preserve it (Restore checks snapshots against
		// these states, so a forged snapshot cannot violate them).
		entry.mvars[i] = KindTop
	}
	states[0] = entry
	reached[0] = true
	work := []int{0}
	flow := func(pc int, out *kstate) {
		if !reached[pc] {
			states[pc] = out.clone()
			reached[pc] = true
			work = append(work, pc)
		} else if joinInto(&states[pc], out) {
			work = append(work, pc)
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		s := states[pc].clone()
		ins := f.Code[pc]
		p.kindEffect(f, ins, &s)
		switch ins.Op {
		case OpRet, OpEnd:
		case OpJmp:
			flow(int(ins.A), &s)
		case OpJz:
			flow(int(ins.A), &s)
			flow(pc+1, &s)
		default:
			flow(pc+1, &s)
		}
	}
	// Rejection pass: with the states stabilized, any instruction that
	// provably faults on its (now path-join-complete) entry state faults
	// on every execution that reaches it.
	for pc := range f.Code {
		if !reached[pc] {
			continue
		}
		s := states[pc].clone()
		if fault := p.kindEffect(f, f.Code[pc], &s); fault != "" {
			return fmt.Errorf("bytecode: %s@%d (%s): %w: %s", f.Name, pc, f.Code[pc].Op, ErrIllTyped, fault)
		}
	}
	m.kinds = states
	m.reached = reached
	return nil
}

// SlotKind returns the proven kind of frame-relative operand stack slot
// `slot` on entry to Funcs[fn].Code[pc]: KindBottom when the program is
// unverified, the location is out of range or unreachable, or the slot is
// above the proven depth; KindTop when the analysis degraded (footprint
// cap) or could not narrow the slot.
func (p *Program) SlotKind(fn, pc, slot int) AbsKind {
	d := p.StackDepth(fn, pc)
	if d < 0 || slot < 0 || slot >= d {
		return KindBottom
	}
	m := &p.meta[fn]
	if m.kinds == nil {
		return KindTop
	}
	return m.kinds[pc].stack[slot]
}

// LocalKind returns the proven kind of local slot `slot` on entry to
// Funcs[fn].Code[pc]; KindBottom outside the program, KindTop when not
// narrowed.
func (p *Program) LocalKind(fn, pc, slot int) AbsKind {
	if p.StackDepth(fn, pc) < 0 {
		return KindBottom
	}
	if slot < 0 || slot >= p.Funcs[fn].NumLocals {
		return KindBottom
	}
	m := &p.meta[fn]
	if m.kinds == nil {
		return KindTop
	}
	return m.kinds[pc].locals[slot]
}

// VarKind returns the proven kind of Messenger variable `name` on entry
// to Funcs[fn].Code[pc]. Variables the program never references are ⊤
// (they ride along untouched); KindBottom outside the program.
func (p *Program) VarKind(fn, pc int, name string) AbsKind {
	if p.StackDepth(fn, pc) < 0 {
		return KindBottom
	}
	idx, ok := p.mvarIdx[name]
	if !ok {
		return KindTop
	}
	m := &p.meta[fn]
	if m.kinds == nil {
		return KindTop
	}
	return m.kinds[pc].mvars[idx]
}

// TrackedVars lists the Messenger-variable names the verified program
// loads or stores anywhere (the names VarKind can constrain), in
// first-reference order. Callers must not mutate the returned slice.
func (p *Program) TrackedVars() []string {
	if !p.verified {
		return nil
	}
	return p.mvarNames
}

// scalarWire is the worst-case encoded size of a proven-scalar value
// (Int/Num tag + payload; Nil is smaller).
const scalarWire = 9

// snapOverhead is the fixed framing of a single-frame snapshot: the env
// count, the frame count, one frame header (fn, pc, local count), and the
// stack count — see vm.AppendSnapshot.
const snapOverhead = 4 + 4 + 12 + 4

// StateBound derives a static upper bound, in encoded snapshot bytes, on
// the serialized state of a Messenger running a verified program. The
// snapshot a daemon puts on the wire is taken at nav pauses (hop, create,
// delete), so the bound only has to hold there; transient non-scalar
// values between navs (string constants feeding hop kwargs, compare
// operands) do not defeat it.
//
// A bound is derivable when, over the reachable main body:
//   - no OpCallFunc executes (multi-frame snapshots have no static frame
//     count — recursion is unbounded);
//   - every native call is a modeled builtin (an out-of-line native's
//     daemon handler may store arbitrary values into Messenger variables);
//   - no OpSetIndex executes (an element write can swap a small element
//     of an injected aggregate for a larger one, growing its encoding);
//   - every Messenger-variable store deposits a proven scalar, so each
//     tracked variable always holds either its injected value or a
//     scalar at most scalarWire bytes;
//   - at the post-state of every nav instruction (the state the snapshot
//     captures), all operand-stack slots and locals are proven scalars.
//
// base covers the snapshot framing plus scalarWire for every tracked
// variable, local, and stack slot. The injected values are the caller's
// to account: add each submitted value's encoded size for the names in
// inherited (= TrackedVars(), whose injected value may persist until the
// first store), plus the full env entry for any injected name the
// program never references (it rides along untouched). ok=false means no
// bound is derivable and admission must rely on dynamic memory checks at
// nav boundaries.
func (p *Program) StateBound() (base int64, inherited []string, ok bool) {
	if !p.verified || len(p.meta) == 0 {
		return 0, nil, false
	}
	m := &p.meta[0]
	if m.kinds == nil {
		return 0, nil, false
	}
	f := &p.Funcs[0]
	for pc, ins := range f.Code {
		if !m.reached[pc] {
			continue
		}
		switch ins.Op {
		case OpCallFunc, OpSetIndex:
			return 0, nil, false
		case OpCallNative:
			if _, _, known := nativeEffect(p.Names[ins.A], make([]AbsKind, ins.B)); !known {
				return 0, nil, false
			}
		case OpStoreM:
			st := &m.kinds[pc]
			if d := len(st.stack); d == 0 || !st.stack[d-1].scalar() {
				return 0, nil, false
			}
		case OpHop, OpCreate, OpDelete:
			// The snapshot captures the state after the nav pops its
			// kwargs: run the transfer function to get that post-state.
			post := m.kinds[pc].clone()
			p.kindEffect(f, ins, &post)
			for _, k := range post.stack {
				if !k.scalar() && k != KindBottom {
					return 0, nil, false
				}
			}
			for _, k := range post.locals {
				if !k.scalar() && k != KindBottom {
					return 0, nil, false
				}
			}
		}
	}
	base = snapOverhead
	for _, name := range p.mvarNames {
		base += int64(4 + len(name) + scalarWire)
		inherited = append(inherited, name)
	}
	base += int64(f.NumLocals) * scalarWire
	base += int64(p.MaxStack(0)) * scalarWire
	return base, inherited, true
}
