package core

// Multi-tenant admission hooks. The core stays policy-free: it tags every
// Messenger with the tenant/session it is charged to, consults a pluggable
// Gate at the points where resources are spent, and reports session
// liveness transitions back to the gate. The policy — accounts, budgets,
// token buckets, backpressure — lives in internal/serve, which implements
// Gate without core importing it.

import (
	"fmt"

	"messengers/internal/bytecode"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
	"messengers/internal/vm"
)

// Gate is an admission layer's view into the running system. All methods
// are invoked from daemon executors, concurrently across daemons, so
// implementations must be safe for concurrent use.
type Gate interface {
	// Session resolves the quota gate for one admitted session wherever a
	// Messenger of that session materializes (injection, arrival, recovery
	// respawn). Unknown sessions — e.g. an at-least-once respawn of a
	// session that already completed — must return a gate that denies
	// execution, never nil.
	Session(tenant string, session uint64) SessionGate
	// SessionWork mirrors the system's liveness accounting per session:
	// delta is +n when Messengers/transfers of the session come into
	// existence (injection, replication, transfer slots) and -n when they
	// end. The session is complete when its count reaches zero.
	SessionWork(tenant string, session uint64, delta int)
}

// SessionGate enforces one session's quotas. Allowance/Charge (the
// vm.StepMeter half) meter instruction steps; ChargeHop and CheckMem are
// consulted at nav boundaries (hop/create), the paper's natural
// interruption points, before the Messenger replicates.
type SessionGate interface {
	vm.StepMeter
	// ChargeHop debits n hops at engine time now (virtual on sim, wall on
	// real transports); an error evicts the Messenger.
	ChargeHop(now sim.Time, n int) error
	// CheckMem vets the Messenger's serialized state size against the
	// tenant's value-memory cap; an error evicts the Messenger.
	CheckMem(bytes int) error
	// Evicted notifies the gate that a Messenger of the session was
	// destroyed for exceeding a quota (the step meter trips inside the VM,
	// where the gate cannot observe it directly).
	Evicted(err error)
}

// SetAdmission attaches the admission gate. It must be set before any
// tenant-tagged Messenger is injected and never changed mid-run (daemon
// executors read it without synchronization).
func (s *System) SetAdmission(g Gate) { s.gate = g }

// sessionWork is the single choke point for Messenger liveness deltas: it
// keeps the global count (quiescence detection) and mirrors the delta to
// the admission gate for per-session completion tracking. Untenanted
// Messengers only touch the global count.
func (s *System) sessionWork(tenant string, session uint64, delta int) {
	if delta == 0 {
		return
	}
	if delta > 0 {
		s.workAdded(delta)
	} else {
		s.workDone(-delta)
	}
	if s.gate != nil && tenant != "" {
		s.gate.SessionWork(tenant, session, delta)
	}
}

// resolveGate looks up the session gate for a materializing Messenger
// (nil for untenanted Messengers or when no gate is attached).
func (d *Daemon) resolveGate(tenant string, session uint64) SessionGate {
	if d.sys.gate == nil || tenant == "" {
		return nil
	}
	return d.sys.gate.Session(tenant, session)
}

// evict destroys a Messenger that exceeded its tenant's quota. Unlike
// fail, the error is not recorded in the system error list: quota
// eviction is expected behavior under load, reported through metrics and
// the gate, not as a program bug.
func (d *Daemon) evict(m *Messenger, err error) {
	d.Stats.Evicted++
	if d.om != nil {
		d.om.evicted.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "msgr", "evict", msgrID(m.ID), obs.S("err", err.Error()))
	}
	if m.gate != nil {
		m.gate.Evicted(err)
	}
	delete(d.active, m.ID)
	d.sys.sessionWork(m.Tenant, m.Session, -1)
}

// InjectSession injects a tenant-tagged Messenger of a verified program
// into daemon d. The program must already be registered (Register) so
// remote daemons can restore hops; budget is carried on the injection
// frame for cross-process admission fronts. The admission layer is
// responsible for having counted the session with its gate before this
// call returns work to it.
func (s *System) InjectSession(d int, prog *bytecode.Program, node string,
	vars map[string]value.Value, tenant string, session uint64, budget int64) error {
	if tenant == "" {
		return fmt.Errorf("core: InjectSession requires a tenant")
	}
	return s.injectProg(d, prog, node, vars, 0, tenant, session, budget)
}
