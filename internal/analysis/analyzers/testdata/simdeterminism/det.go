// Package dettest is analyzed under the path messengers/internal/sim, so
// the determinism rules apply in full.
package dettest

import (
	"math/rand"
	"time"
)

func wallclock() time.Duration {
	t0 := time.Now()      // want "reads the wall clock"
	return time.Since(t0) // want "reads the wall clock"
}

func sleeper() {
	time.Sleep(1) // want "reads the wall clock"
}

func timers(f func()) {
	time.AfterFunc(time.Second, f)  // want "reads the wall clock"
	_ = time.NewTicker(time.Second) // want "reads the wall clock"
}

// Duration arithmetic and constants never touch the clock.
func durationsOK() time.Duration {
	return 3 * time.Second
}

func globalRand() int {
	return rand.Intn(10) // want "unseeded shared state"
}

func globalFloat() float64 {
	return rand.Float64() // want "unseeded shared state"
}

// An explicitly seeded stream is the sanctioned route.
func seededOK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func mapIteration(m map[string]int) int {
	sum := 0
	for _, v := range m { // want "iteration order is nondeterministic"
		sum += v
	}
	return sum
}

// Slices range deterministically.
func sliceOK(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}

// The escape hatch: an annotated line reports nothing.
func annotated() int64 {
	return time.Now().UnixNano() //lint:wallclock test of the escape hatch
}

func annotatedAbove(m map[string]int) int {
	n := 0
	//lint:maporder counting is order-independent
	for range m {
		n++
	}
	return n
}
