package logical

import (
	"testing"

	"messengers/internal/value"
)

func TestNewStoreHasInit(t *testing.T) {
	s := NewStore(3)
	if s.Daemon() != 3 {
		t.Errorf("Daemon = %d", s.Daemon())
	}
	if s.Init() == nil || s.Init().Name != InitName {
		t.Fatalf("init node = %+v", s.Init())
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.FindByName("init"); len(got) != 1 || got[0] != s.Init() {
		t.Errorf("FindByName(init) = %v", got)
	}
}

func TestCreateAndLookup(t *testing.T) {
	s := NewStore(0)
	a := s.CreateNode("a")
	anon := s.CreateNode("~")
	if anon.Name != "" {
		t.Errorf("unnamed node has name %q", anon.Name)
	}
	if n, ok := s.Node(a.ID); !ok || n != a {
		t.Error("Node lookup failed")
	}
	if got := s.Addr(a); got != (Addr{Daemon: 0, Node: a.ID}) {
		t.Errorf("Addr = %v", got)
	}
	a.Vars["x"] = value.Int(1)
	if a.Vars["x"].AsInt() != 1 {
		t.Error("node vars broken")
	}
}

func TestLinkLocalAndMatch(t *testing.T) {
	s := NewStore(0)
	c := s.CreateNode("c")
	a := s.CreateNode("a")
	b := s.CreateNode("b")
	s.LinkLocal(c, a, "x", false)
	s.LinkLocal(c, b, "y", true) // directed c -> b

	// hop(ll = x): only link x.
	ms := s.Match(c, Any, "x", Any)
	if len(ms) != 1 || ms[0].Dest != s.Addr(a) || ms[0].Via != "x" {
		t.Errorf("Match(ll=x) = %+v", ms)
	}
	// hop(): all neighbors.
	if ms := s.Match(c, Any, Any, Any); len(ms) != 2 {
		t.Errorf("Match(any) = %d matches", len(ms))
	}
	// hop(ldir = +): only the directed link, from c.
	ms = s.Match(c, Any, Any, "+")
	if len(ms) != 1 || ms[0].Dest != s.Addr(b) {
		t.Errorf("Match(+) = %+v", ms)
	}
	// From b, the directed link is incoming: "+" fails, "-" matches.
	if ms := s.Match(b, Any, Any, "+"); len(ms) != 0 {
		t.Errorf("Match(+ from b) = %+v", ms)
	}
	ms = s.Match(b, Any, Any, "-")
	if len(ms) != 1 || ms[0].Dest != s.Addr(c) {
		t.Errorf("Match(- from b) = %+v", ms)
	}
	// ln filtering.
	ms = s.Match(c, "a", Any, Any)
	if len(ms) != 1 || ms[0].Dest != s.Addr(a) {
		t.Errorf("Match(ln=a) = %+v", ms)
	}
	if ms := s.Match(c, "zzz", Any, Any); len(ms) != 0 {
		t.Errorf("Match(ln=zzz) = %+v", ms)
	}
}

func TestMatchUnnamed(t *testing.T) {
	s := NewStore(0)
	c := s.CreateNode("c")
	anon := s.CreateNode("")
	named := s.CreateNode("n")
	s.LinkLocal(c, anon, "", false)
	s.LinkLocal(c, named, "ell", false)

	// ll = "~" matches only the unnamed link.
	ms := s.Match(c, Any, Unnamed, Any)
	if len(ms) != 1 || ms[0].Dest != s.Addr(anon) {
		t.Errorf("Match(ll=~) = %+v", ms)
	}
	// ln = "~" matches only the unnamed peer.
	ms = s.Match(c, Unnamed, Any, Any)
	if len(ms) != 1 || ms[0].Dest != s.Addr(anon) {
		t.Errorf("Match(ln=~) = %+v", ms)
	}
}

func TestMatchVirtual(t *testing.T) {
	s := NewStore(0)
	target := s.CreateNode("target")
	c := s.CreateNode("c")
	ms := s.Match(c, "target", Virtual, Any)
	if len(ms) != 1 || ms[0].Dest != s.Addr(target) || ms[0].Via != Virtual {
		t.Errorf("virtual match = %+v", ms)
	}
	if ms := s.Match(c, "nope", Virtual, Any); len(ms) != 0 {
		t.Errorf("virtual to unknown = %+v", ms)
	}
	// Virtual jump to init works from anywhere.
	if ms := s.Match(c, "init", Virtual, Any); len(ms) != 1 {
		t.Errorf("virtual to init = %+v", ms)
	}
}

func TestMultipleParallelLinksYieldMultipleMatches(t *testing.T) {
	s := NewStore(0)
	c := s.CreateNode("c")
	d := s.CreateNode("d")
	s.LinkLocal(c, d, "p", false)
	s.LinkLocal(c, d, "q", false)
	if ms := s.Match(c, Any, Any, Any); len(ms) != 2 {
		t.Errorf("parallel links: %d matches, want 2 (one replica per link)", len(ms))
	}
}

func TestDetachHalfAndSingletonRemoval(t *testing.T) {
	s := NewStore(0)
	c := s.CreateNode("c")
	d := s.CreateNode("d")
	id := s.LinkLocal(c, d, "x", false)
	s.LinkLocal(c, s.Init(), "toinit", false)

	if removed := s.DetachHalf(d, id); !removed {
		t.Error("d should be removed as a singleton")
	}
	if _, ok := s.Node(d.ID); ok {
		t.Error("d still resident")
	}
	if removed := s.DetachHalf(c, id); removed {
		t.Error("c still has a link; must not be removed")
	}
	if len(c.Links) != 1 {
		t.Errorf("c links = %d", len(c.Links))
	}
}

func TestInitIsNeverRemoved(t *testing.T) {
	s := NewStore(0)
	c := s.CreateNode("c")
	id := s.LinkLocal(s.Init(), c, "x", false)
	if removed := s.DetachHalf(s.Init(), id); removed {
		t.Error("init must never be removed")
	}
	if _, ok := s.Node(s.Init().ID); !ok {
		t.Error("init vanished")
	}
}

func TestCrossDaemonHalfLinks(t *testing.T) {
	s0, s1 := NewStore(0), NewStore(1)
	a := s0.CreateNode("a")
	b := s1.CreateNode("b")
	id := s0.NewLinkID()
	s0.AttachHalf(a, id, "wan", true, true, s1.Addr(b), "b")
	s1.AttachHalf(b, id, "wan", true, false, s0.Addr(a), "a")

	ms := s0.Match(a, "b", "wan", "+")
	if len(ms) != 1 || ms[0].Dest != (Addr{Daemon: 1, Node: b.ID}) {
		t.Errorf("cross-daemon match = %+v", ms)
	}
	ms = s1.Match(b, Any, Any, "-")
	if len(ms) != 1 || ms[0].Dest.Daemon != 0 {
		t.Errorf("reverse match = %+v", ms)
	}
	if h, ok := FindLink(a, id); !ok || h.Peer.Daemon != 1 {
		t.Errorf("FindLink = %+v, %v", h, ok)
	}
	if _, ok := FindLink(a, LinkID{Daemon: 9, Seq: 9}); ok {
		t.Error("FindLink of unknown id should fail")
	}
}

func TestFindByNameOrderAndAddrString(t *testing.T) {
	s := NewStore(0)
	first := s.CreateNode("w")
	second := s.CreateNode("w")
	got := s.FindByName("w")
	if len(got) != 2 || got[0] != first || got[1] != second {
		t.Errorf("FindByName order wrong: %v", got)
	}
	if s.Addr(first).String() == "" {
		t.Error("Addr.String empty")
	}
}

// TestOrphansAndAdopt: when a daemon dies, Orphans finds the remote nodes
// the survivors still link to, and Adopt heals each cut by rewiring the
// dangling half-links onto a local replacement with proper mirror halves.
func TestOrphansAndAdopt(t *testing.T) {
	s := NewStore(0)
	a := s.CreateNode("a")
	b := s.CreateNode("b")
	// a and b each link to the same remote node on daemon 1; a also links
	// to a second remote node, directed a -> remote.
	remote1 := Addr{Daemon: 1, Node: 4}
	remote2 := Addr{Daemon: 1, Node: 9}
	other := Addr{Daemon: 2, Node: 3}
	s.AttachHalf(a, LinkID{Daemon: 0, Seq: 1}, "l1", false, false, remote1, "w")
	s.AttachHalf(b, LinkID{Daemon: 0, Seq: 2}, "l2", false, false, remote1, "w")
	s.AttachHalf(a, LinkID{Daemon: 0, Seq: 3}, "l3", true, true, remote2, "v")
	s.AttachHalf(b, LinkID{Daemon: 0, Seq: 4}, "l4", false, false, other, "z")
	// A placeholder peer (node 0) is a pending remote create, not an orphan.
	s.AttachHalf(a, LinkID{Daemon: 0, Seq: 5}, "l5", false, false, Addr{Daemon: 1, Node: 0}, "")

	orphans := s.Orphans(1)
	if len(orphans) != 2 || orphans[0] != remote1 || orphans[1] != remote2 {
		t.Fatalf("Orphans = %v, want [%v %v]", orphans, remote1, remote2)
	}
	if got := s.Orphans(2); len(got) != 1 || got[0] != other {
		t.Errorf("Orphans(2) = %v", got)
	}

	n1 := s.Adopt(remote1)
	if n1.Name != "w" {
		t.Errorf("replacement name = %q, want cached peer name w", n1.Name)
	}
	// Both dangling halves now point at the replacement, and the
	// replacement carries matching mirror halves back.
	for _, h := range []*HalfLink{a.Links[0], b.Links[0]} {
		if h.Peer != s.Addr(n1) {
			t.Errorf("half %q still points at %v", h.Name, h.Peer)
		}
	}
	if len(n1.Links) != 2 {
		t.Fatalf("replacement has %d halves, want 2", len(n1.Links))
	}
	if n1.Links[0].Peer != s.Addr(a) || n1.Links[1].Peer != s.Addr(b) {
		t.Errorf("mirror peers = %v, %v", n1.Links[0].Peer, n1.Links[1].Peer)
	}
	// Navigation works across the healed link in both directions.
	if ms := s.Match(a, "w", "l1", Any); len(ms) != 1 || ms[0].Dest != s.Addr(n1) {
		t.Errorf("match to replacement = %+v", ms)
	}
	if ms := s.Match(n1, "a", "l1", Any); len(ms) != 1 || ms[0].Dest != s.Addr(a) {
		t.Errorf("match back = %+v", ms)
	}

	// Directed links keep their orientation: a -> remote2 becomes a -> n2,
	// whose mirror half is incoming.
	n2 := s.Adopt(remote2)
	if got := a.Links[1].Peer; got != s.Addr(n2) {
		t.Errorf("directed half points at %v", got)
	}
	if h := n2.Links[0]; !h.Directed || h.Outgoing {
		t.Errorf("mirror of outgoing directed half = %+v, want incoming", h)
	}
	if ms := s.Match(a, "v", "l3", "+"); len(ms) != 1 {
		t.Errorf("directed match after adoption = %+v", ms)
	}
}
