package core

import (
	"sync"
	"sync/atomic"
)

// ExecQueue is the sharded per-daemon executor queue used by the real
// engines (ChanEngine and the TCP transport). The previous design funneled
// every producer — GVT control traffic, inbound hop delivery, and the
// daemon's own instruction-retirement continuations — through one mutex,
// which at scale made the lock itself the serialization point. Here each
// class of work has its own lane with its own mutex, so producers of
// different classes never contend; a single consumer goroutine still drains
// them serially, preserving the daemon's executor-confinement contract.
//
// Lanes also encode priority: control work (GVT tokens, acks, watchdog
// timers) runs before queued hop deliveries, which run before local
// continuations. That keeps virtual-time synchronization responsive when a
// daemon has a deep backlog of arrivals. The reorder across lanes is safe:
// the GVT commit rule tolerates late-counted arrivals (unbalanced counters
// just retry the round), and every FIFO-dependent pair of messages —
// Messenger after CreateAck over the same link, duplicates behind originals
// — shares the net lane, whose internal order is strict FIFO.
type ExecQueue struct {
	lanes  [numLanes]execLane
	ready  chan struct{}
	done   chan struct{}
	closed atomic.Bool
}

// ExecLane classifies work for an ExecQueue. Lower values drain first.
type ExecLane int

// The lanes, in drain-priority order.
const (
	// LaneControl: GVT synchronization, reliable-delivery acks, liveness
	// probes, and timer callbacks (watchdogs, retransmissions).
	LaneControl ExecLane = iota
	// LaneNet: inbound messages that carry computation or mutate the
	// logical network (Messengers, creates, create acks, programs, batches).
	// Strict FIFO — cross-daemon ordering invariants all live here.
	LaneNet
	// LaneLocal: the daemon's own continuations (VM segment retirement,
	// hop resolution, injection).
	LaneLocal
	numLanes
)

// LaneFor maps a message kind to the lane its delivery runs on.
func LaneFor(k MsgKind) ExecLane {
	switch k {
	case MsgGVTNotify, MsgGVTQuery, MsgGVTReport, MsgGVTAdvance, MsgGVTToken,
		MsgHopAck, MsgHeartbeat, MsgHalt:
		return LaneControl
	default:
		return LaneNet
	}
}

type execLane struct {
	mu    sync.Mutex
	items []func()
}

func (l *execLane) put(fn func()) {
	l.mu.Lock()
	l.items = append(l.items, fn)
	l.mu.Unlock()
}

func (l *execLane) pop() (func(), bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.items) == 0 {
		return nil, false
	}
	fn := l.items[0]
	l.items[0] = nil
	l.items = l.items[1:]
	return fn, true
}

// NewExecQueue returns an empty queue; the caller runs Run in the daemon's
// executor goroutine.
func NewExecQueue() *ExecQueue {
	return &ExecQueue{
		ready: make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

// Put enqueues fn on the given lane. Puts after Close are dropped.
func (q *ExecQueue) Put(lane ExecLane, fn func()) {
	if q.closed.Load() {
		return
	}
	q.lanes[lane].put(fn)
	select {
	case q.ready <- struct{}{}:
	default: // a wake-up is already pending; the consumer re-scans anyway
	}
}

// next pops the highest-priority pending item.
func (q *ExecQueue) next() (func(), bool) {
	for i := range q.lanes {
		if fn, ok := q.lanes[i].pop(); ok {
			return fn, true
		}
	}
	return nil, false
}

// Run drains the queue until Close, running items one at a time (the
// daemon's serial executor). Items still queued at Close are run before
// returning only if already visible; late stragglers are discarded.
func (q *ExecQueue) Run() {
	for {
		if fn, ok := q.next(); ok {
			fn()
			continue
		}
		if q.closed.Load() {
			return
		}
		select {
		case <-q.ready:
		case <-q.done:
		}
	}
}

// Close stops the queue: subsequent Puts are dropped and Run returns after
// draining what it can see.
func (q *ExecQueue) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.done)
	}
}
