package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"messengers/internal/wire"
)

// The binary wire format is what daemons ship between hosts when a Messenger
// hops: little-endian, tag byte followed by the payload. It is also used by
// the PVM baseline's pack/unpack buffers so both systems move the same bytes.

// maxWireLen bounds a single string/bytes/array/matrix in both directions:
// decode rejects corrupt or hostile frames before allocating, and encode
// rejects values whose length a uint32 prefix would silently truncate.
const maxWireLen = wire.MaxLen

// AppendTo encodes v into e in one pass. Oversized elements (beyond
// maxWireLen) set the encoder's sticky error instead of truncating.
func (v Value) AppendTo(e *wire.Encoder) {
	e.U8(byte(v.kind))
	switch v.kind {
	case KindNil:
	case KindInt:
		e.U64(uint64(v.i))
	case KindNum:
		e.F64(v.n)
	case KindStr:
		if len(v.s) > maxWireLen {
			e.Fail(fmt.Errorf("value: encode str: length %d exceeds limit (%d)", len(v.s), maxWireLen))
			return
		}
		e.Str(v.s)
	case KindBytes:
		if len(v.bytes) > maxWireLen {
			e.Fail(fmt.Errorf("value: encode bytes: length %d exceeds limit (%d)", len(v.bytes), maxWireLen))
			return
		}
		e.Blob(v.bytes)
	case KindArr:
		// Every element encodes to at least one byte, so any array the
		// decoder would accept has at most maxWireLen elements.
		if len(v.arr) > maxWireLen {
			e.Fail(fmt.Errorf("value: encode array: %d elements exceed limit (%d)", len(v.arr), maxWireLen))
			return
		}
		e.U32(uint32(len(v.arr)))
		for _, el := range v.arr {
			el.AppendTo(e)
		}
	case KindMat:
		m := v.mat
		if m == nil {
			m = &Mat{}
		}
		if len(m.Data) > maxWireLen/8 || m.Rows > maxWireLen || m.Cols > maxWireLen {
			e.Fail(fmt.Errorf("value: encode matrix: %dx%d exceeds limit (%d bytes)", m.Rows, m.Cols, maxWireLen))
			return
		}
		e.U32(uint32(m.Rows))
		e.U32(uint32(m.Cols))
		e.F64s(m.Data)
	}
}

// Append encodes v onto buf and returns the extended slice. An oversized
// element (beyond maxWireLen — which a uint32 length prefix would otherwise
// silently truncate) is reported as an error; buf's extension is then
// partial and must be discarded.
func Append(buf []byte, v Value) ([]byte, error) {
	e := wire.AppendingTo(buf)
	v.AppendTo(e)
	return e.Bytes(), e.Err()
}

// Decode reads one value from buf, returning the value and the number of
// bytes consumed.
func Decode(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Nil(), 0, fmt.Errorf("value: decode: empty buffer")
	}
	k := Kind(buf[0])
	p := 1
	switch k {
	case KindNil:
		return Nil(), p, nil
	case KindInt:
		if len(buf) < p+8 {
			return Nil(), 0, fmt.Errorf("value: decode int: short buffer")
		}
		return Int(int64(binary.LittleEndian.Uint64(buf[p:]))), p + 8, nil
	case KindNum:
		if len(buf) < p+8 {
			return Nil(), 0, fmt.Errorf("value: decode num: short buffer")
		}
		return Num(math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))), p + 8, nil
	case KindStr, KindBytes:
		if len(buf) < p+4 {
			return Nil(), 0, fmt.Errorf("value: decode %v: short buffer", k)
		}
		n := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		if n > maxWireLen || len(buf) < p+n {
			return Nil(), 0, fmt.Errorf("value: decode %v: length %d exceeds buffer", k, n)
		}
		if k == KindStr {
			return Str(string(buf[p : p+n])), p + n, nil
		}
		b := make([]byte, n)
		copy(b, buf[p:p+n])
		return Bytes(b), p + n, nil
	case KindArr:
		if len(buf) < p+4 {
			return Nil(), 0, fmt.Errorf("value: decode array: short buffer")
		}
		n := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		// Every element takes at least one byte; reject counts the buffer
		// cannot possibly hold before allocating.
		if n > maxWireLen || n > len(buf)-p {
			return Nil(), 0, fmt.Errorf("value: decode array: length %d exceeds buffer", n)
		}
		a := make([]Value, n)
		for i := 0; i < n; i++ {
			e, c, err := Decode(buf[p:])
			if err != nil {
				return Nil(), 0, fmt.Errorf("value: decode array elem %d: %w", i, err)
			}
			a[i] = e
			p += c
		}
		return Arr(a), p, nil
	case KindMat:
		if len(buf) < p+8 {
			return Nil(), 0, fmt.Errorf("value: decode matrix: short buffer")
		}
		r := int(binary.LittleEndian.Uint32(buf[p:]))
		c := int(binary.LittleEndian.Uint32(buf[p+4:]))
		p += 8
		// Bound each dimension before multiplying: r and c are raw uint32
		// reads, so r*c can overflow int64 and sneak past a product-only
		// check. Found by fuzzing.
		if r < 0 || c < 0 || r > maxWireLen/8 || c > maxWireLen/8 ||
			r*c > maxWireLen/8 || len(buf) < p+8*r*c {
			return Nil(), 0, fmt.Errorf("value: decode matrix: %dx%d exceeds buffer", r, c)
		}
		m := NewMat(r, c)
		for i := range m.Data {
			m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
			p += 8
		}
		return Matrix(m), p, nil
	default:
		return Nil(), 0, fmt.Errorf("value: decode: unknown kind tag %d", buf[0])
	}
}

// AppendEnvTo encodes a variable map into e in sorted key order
// (deterministic), one pass, no intermediate buffers.
func AppendEnvTo(e *wire.Encoder, env map[string]Value) {
	keys := make([]string, 0, len(env))
	//lint:maporder keys are collected then sorted before use
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k)
		env[k].AppendTo(e)
	}
}

// AppendEnv encodes a variable map onto buf in sorted key order. An
// oversized element is reported as an error (see Append).
func AppendEnv(buf []byte, env map[string]Value) ([]byte, error) {
	e := wire.AppendingTo(buf)
	AppendEnvTo(e, env)
	return e.Bytes(), e.Err()
}

// DecodeEnv reads a variable map encoded by AppendEnv.
func DecodeEnv(buf []byte) (map[string]Value, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("value: decode env: short buffer")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	p := 4
	// Each entry takes at least five bytes (key length + value tag).
	if n > maxWireLen || n > (len(buf)-p)/5 {
		return nil, 0, fmt.Errorf("value: decode env: %d entries exceed buffer", n)
	}
	env := make(map[string]Value, n)
	for i := 0; i < n; i++ {
		if len(buf) < p+4 {
			return nil, 0, fmt.Errorf("value: decode env key %d: short buffer", i)
		}
		kl := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		if kl > maxWireLen || len(buf) < p+kl {
			return nil, 0, fmt.Errorf("value: decode env key %d: length %d exceeds buffer", i, kl)
		}
		key := string(buf[p : p+kl])
		p += kl
		v, c, err := Decode(buf[p:])
		if err != nil {
			return nil, 0, fmt.Errorf("value: decode env %q: %w", key, err)
		}
		env[key] = v
		p += c
	}
	return env, p, nil
}

// EnvWireSize returns the exact encoded size of a variable map; it must
// agree byte-for-byte with AppendEnvTo.
func EnvWireSize(env map[string]Value) int {
	n := 4
	//lint:maporder summation is order-independent
	for k, v := range env {
		n += 4 + len(k) + v.WireSize()
	}
	return n
}

// CloneEnv deep-copies a variable map.
func CloneEnv(env map[string]Value) map[string]Value {
	out := make(map[string]Value, len(env))
	//lint:maporder map copy is order-independent
	for k, v := range env {
		out[k] = v.Clone()
	}
	return out
}
