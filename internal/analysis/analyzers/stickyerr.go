package analyzers

import (
	"go/ast"
	"go/types"

	"messengers/internal/analysis"
)

// StickyErr enforces the wire layer's sticky-error contract: an Encoder
// swallows write errors (oversized strings, bad frames) into an internal
// sticky error, so code that extracts the encoded bytes with Bytes or
// Detach MUST consult Err (or EndFrame, which returns it) somewhere in the
// same function — otherwise truncated garbage ships as if it were a valid
// message. Suppress with //lint:stickyerr when the enclosing function
// provably cannot fail (e.g. fixed-width integers only) or its caller owns
// the check.
var StickyErr = &analysis.Analyzer{
	Name: "stickyerr",
	Doc:  "wire.Encoder bytes consumed without an Err() check",
	Run:  runStickyErr,
}

func runStickyErr(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncSticky(pass, fd)
		}
	}
	return nil
}

func checkFuncSticky(pass *analysis.Pass, fd *ast.FuncDecl) {
	var consumes []*ast.SelectorExpr
	checked := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isWireEncoder(pass, sel.X) {
			return true
		}
		switch sel.Sel.Name {
		case "Bytes", "Detach":
			consumes = append(consumes, sel)
		case "Err", "EndFrame", "Fail":
			// Fail counts: the function is explicitly managing the error
			// state. EndFrame returns the sticky error.
			checked = true
		}
		return true
	})
	if !checked {
		// Passing the encoder to a call that returns an error transfers
		// responsibility: the sticky error escapes through that call
		// (msg.EncodeFrame(enc) is the canonical shape).
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if isWireEncoder(pass, arg) && callReturnsError(pass, call) {
					checked = true
					return false
				}
			}
			return true
		})
	}
	if checked {
		return
	}
	for _, sel := range consumes {
		pass.Reportf(sel.Pos(), "stickyerr",
			"%s() consumes encoder bytes but the function never checks Err()", sel.Sel.Name)
	}
}

// callReturnsError reports whether the call's results include an error.
func callReturnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErr(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErr(t)
}

// isWireEncoder reports whether e's type is *wire.Encoder (or wire.Encoder).
func isWireEncoder(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Encoder" {
		return false
	}
	return obj.Pkg().Path() == "messengers/internal/wire" || obj.Pkg().Name() == "wire"
}
