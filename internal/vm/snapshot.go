package vm

import (
	"encoding/binary"
	"fmt"

	"messengers/internal/bytecode"
	"messengers/internal/value"
	"messengers/internal/wire"
)

// AppendSnapshot serializes the full execution state — Messenger variables,
// call frames, and operand stack — into e in one pass. Together with the
// program hash this is exactly what a daemon ships when a Messenger hops to
// another daemon (the code itself stays in the shared script registry).
// Oversized values set the encoder's sticky error.
func (m *VM) AppendSnapshot(e *wire.Encoder) {
	value.AppendEnvTo(e, m.vars)
	e.U32(uint32(len(m.frames)))
	for i := range m.frames {
		f := &m.frames[i]
		e.U32(uint32(f.fn))
		e.U32(uint32(f.pc))
		e.U32(uint32(len(f.locals)))
		for _, lv := range f.locals {
			lv.AppendTo(e)
		}
	}
	e.U32(uint32(len(m.stack)))
	for _, v := range m.stack {
		v.AppendTo(e)
	}
}

// Snapshot builds the snapshot as a standalone slice, preallocated to its
// exact encoded size (no regrows). An error means some value exceeded the
// wire layer's length limit and the snapshot is unusable; callers must
// treat the Messenger as unserializable rather than ship the truncated
// bytes. Hot paths encode through AppendSnapshot instead, straight into a
// pooled frame whose sticky error the frame writer checks.
func (m *VM) Snapshot() ([]byte, error) {
	e := wire.AppendingTo(make([]byte, 0, m.SnapshotSize()))
	m.AppendSnapshot(e)
	if err := e.Err(); err != nil {
		return nil, fmt.Errorf("vm: snapshot: %w", err)
	}
	return e.Bytes(), nil
}

// SnapshotSize returns the exact encoded size of AppendSnapshot's output
// without building it — the Sizer half of the single-walk contract. The sim
// engine charges this as modeled wire cost without materializing bytes, so
// it must agree byte-for-byte with AppendSnapshot.
func (m *VM) SnapshotSize() int {
	n := value.EnvWireSize(m.vars) + 4
	for i := range m.frames {
		n += 12
		for _, lv := range m.frames[i].locals {
			n += lv.WireSize()
		}
	}
	n += 4
	for _, v := range m.stack {
		n += v.WireSize()
	}
	return n
}

// WireSize is SnapshotSize under the name the cost-model call sites use.
func (m *VM) WireSize() int { return m.SnapshotSize() }

// Restore rebuilds a VM from a snapshot against its program. For verified
// programs (every compiled or wire-decoded program) the restored state is
// checked against the verifier's stack-depth metadata: each frame must
// resume at a reachable PC, interior frames must sit just past the call
// instruction that entered their callee, and the operand stack must have
// exactly the depth the verifier proved for that resume point. A snapshot
// taken at any hop therefore restores by construction, and anything else
// is rejected here instead of crashing the VM mid-run.
func Restore(prog *bytecode.Program, buf []byte) (*VM, error) {
	vars, p, err := value.DecodeEnv(buf)
	if err != nil {
		return nil, fmt.Errorf("vm: restore vars: %w", err)
	}
	u32 := func() (int, error) {
		if p+4 > len(buf) {
			return 0, fmt.Errorf("vm: truncated snapshot")
		}
		v := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		return v, nil
	}
	nframes, err := u32()
	if err != nil {
		return nil, err
	}
	if nframes < 1 || nframes > maxCallDepth {
		return nil, fmt.Errorf("vm: snapshot frame count %d out of range", nframes)
	}
	// The arena is sized by the verifier's metadata for the main body —
	// for the dominant single-frame hop snapshot, the restored locals and
	// operand stack land in one contiguous slab (deeper snapshots spill to
	// the heap transparently).
	m := &VM{prog: prog, vars: vars, frames: make([]frame, nframes), arena: newArenaFor(prog)}
	for i := 0; i < nframes; i++ {
		fn, err := u32()
		if err != nil {
			return nil, err
		}
		pc, err := u32()
		if err != nil {
			return nil, err
		}
		nloc, err := u32()
		if err != nil {
			return nil, err
		}
		if fn >= len(prog.Funcs) {
			return nil, fmt.Errorf("vm: snapshot references function %d of %d", fn, len(prog.Funcs))
		}
		if pc > len(prog.Funcs[fn].Code) {
			return nil, fmt.Errorf("vm: snapshot pc %d beyond code of %q", pc, prog.Funcs[fn].Name)
		}
		if nloc != prog.Funcs[fn].NumLocals {
			return nil, fmt.Errorf("vm: snapshot carries %d locals for %q declaring %d",
				nloc, prog.Funcs[fn].Name, prog.Funcs[fn].NumLocals)
		}
		if nloc > 1<<20 || nloc > len(buf)-p {
			return nil, fmt.Errorf("vm: snapshot local count %d exceeds buffer", nloc)
		}
		fr := frame{fn: fn, pc: pc, locals: m.allocValues(nloc)}
		for j := 0; j < nloc; j++ {
			v, n, err := value.Decode(buf[p:])
			if err != nil {
				return nil, fmt.Errorf("vm: restore local: %w", err)
			}
			fr.locals[j] = v
			p += n
		}
		m.frames[i] = fr
	}
	nstack, err := u32()
	if err != nil {
		return nil, err
	}
	if nstack > 1<<20 || nstack > len(buf)-p {
		return nil, fmt.Errorf("vm: snapshot stack size %d exceeds buffer", nstack)
	}
	m.stack = m.allocValues(nstack)
	for i := 0; i < nstack; i++ {
		v, n, err := value.Decode(buf[p:])
		if err != nil {
			return nil, fmt.Errorf("vm: restore stack: %w", err)
		}
		m.stack[i] = v
		p += n
	}
	if prog.Verified() {
		if err := m.checkResumeState(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// checkResumeState proves a restored VM consistent with the verifier's
// metadata: the operand stack depth must equal the sum of what each frame's
// resume PC contributes. The top frame contributes its full entry depth;
// an interior frame sits one instruction past the OpCallFunc that entered
// the next frame, and its pending return value has not been pushed yet, so
// it contributes one less than the depth recorded after the call.
//
// Beyond depths, every restored value is checked against the kind-flow
// proof for its resume point (stack slots and locals per frame, Messenger
// variables against the executing frame). A snapshot taken at any hop
// satisfies the proof by construction; a forged one that does not is
// rejected here, which is what lets kind-specialized handlers skip their
// dynamic guards (threaded.go) without trusting the network.
func (m *VM) checkResumeState() error {
	want := 0
	for i := range m.frames {
		f := &m.frames[i]
		fname := m.prog.Funcs[f.fn].Name
		code := m.prog.Funcs[f.fn].Code
		if f.pc >= len(code) {
			return fmt.Errorf("vm: snapshot resumes %q at pc %d past end of code", fname, f.pc)
		}
		d := m.prog.StackDepth(f.fn, f.pc)
		if d < 0 {
			return fmt.Errorf("vm: snapshot resumes %q at unreachable pc %d", fname, f.pc)
		}
		contrib := d
		if i < len(m.frames)-1 {
			call := f.pc - 1
			if call < 0 || code[call].Op != bytecode.OpCallFunc || int(code[call].A) != m.frames[i+1].fn {
				return fmt.Errorf("vm: snapshot frame %d of %q does not resume after a call into %q",
					i, fname, m.prog.Funcs[m.frames[i+1].fn].Name)
			}
			contrib = d - 1
		}
		if want+contrib > len(m.stack) {
			return fmt.Errorf("vm: snapshot stack depth %d inconsistent with resume point (verifier proved at least %d)",
				len(m.stack), want+contrib)
		}
		for j := 0; j < contrib; j++ {
			if k := m.prog.SlotKind(f.fn, f.pc, j); !k.Matches(m.stack[want+j].Kind()) {
				return fmt.Errorf("vm: snapshot stack slot %d of %q@%d is %v where the verifier proved %v",
					j, fname, f.pc, m.stack[want+j].Kind(), k)
			}
		}
		for j := range f.locals {
			if k := m.prog.LocalKind(f.fn, f.pc, j); !k.Matches(f.locals[j].Kind()) {
				return fmt.Errorf("vm: snapshot local %d of %q@%d is %v where the verifier proved %v",
					j, fname, f.pc, f.locals[j].Kind(), k)
			}
		}
		want += contrib
	}
	if len(m.stack) != want {
		return fmt.Errorf("vm: snapshot stack depth %d inconsistent with resume point (verifier proved %d)",
			len(m.stack), want)
	}
	top := m.top()
	for _, name := range m.prog.TrackedVars() {
		if k := m.prog.VarKind(top.fn, top.pc, name); !k.Matches(m.vars[name].Kind()) {
			return fmt.Errorf("vm: snapshot variable %q is %v where the verifier proved %v at %q@%d",
				name, m.vars[name].Kind(), k, m.prog.Funcs[top.fn].Name, top.pc)
		}
	}
	return nil
}
