// Package obstest exercises the observability-namespace rules.
package obstest

import (
	"fmt"

	"messengers/internal/obs"
)

func metrics(m *obs.Metrics, i int) {
	m.Counter("hops.remote").Inc()                  // fine
	m.Gauge("gvt.value").Set(1)                     // fine
	m.Histogram("hop.bytes").Observe(64)            // fine
	m.Counter("serve.admitted").Inc()               // fine
	m.Counter(fmt.Sprintf("host.%d.busy", i)).Inc() // want "must be a string literal"
	m.Counter("NoDots").Inc()                       // want "lowercase dot-namespaced"
	m.Counter("Upper.Case").Inc()                   // want "lowercase dot-namespaced"
	m.Counter("madeup.thing").Inc()                 // want "unknown namespace"
	m.Gauge("hops.remote").Set(2)                   // want "registered as both"
	m.Counter("hops.remote").Add(2)                 // fine: same kind re-registration
}

func traces(t *obs.Tracer, id int) {
	t.Instant(0, "msgr", "hop", obs.I("n", 1))      // fine
	t.Span(0, "net", "net.send", 0, 10)             // fine
	t.Counter(0, "gvt", "gvt.live", 3)              // fine
	t.Instant(0, "msgr", fmt.Sprintf("hop.%d", id)) // want "built with Sprintf"
	t.Instant(0, "Msgr!", "hop")                    // want "must match"
}

func suppressedName(m *obs.Metrics, i int) {
	m.Counter(fmt.Sprintf("host.%d.busy", i)).Inc() //lint:obsname per-host series, bounded
}
