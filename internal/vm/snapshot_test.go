package vm

import (
	"bytes"
	"testing"

	"messengers/internal/compile"
	"messengers/internal/value"
	"messengers/internal/wire"
)

// deepProg pauses on a hop at the bottom of a recursion, so the snapshot
// carries nested call frames with live locals AND a non-empty operand stack
// (the partial sums of every enclosing `1 + rec(...)` expression).
const deepSource = `
	func rec(n) {
		if (n < 1) {
			hop(ll = "deep");
			return 100;
		}
		return 1 + rec(n - 1);
	}
	total = 3 + rec(6);
`

func pausedDeepVM(t testing.TB) (*VM, []byte) {
	t.Helper()
	prog, err := compile.Compile("deep", deepSource)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, map[string]value.Value{"payload": value.Arr([]value.Value{
		value.Int(7), value.Str("mid-hop"), value.Matrix(value.NewMat(3, 2)),
	})})
	res, err := m.Run(newTestHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pause != PauseHop {
		t.Fatalf("pause = %v, want hop", res.Pause)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return m, snap
}

func TestSnapshotRestoreAtDepth(t *testing.T) {
	m, snap := pausedDeepVM(t)
	if len(m.frames) < 7 {
		t.Fatalf("expected deep recursion in snapshot, got %d frames", len(m.frames))
	}
	if len(m.stack) == 0 {
		t.Fatal("expected a non-empty operand stack mid-expression")
	}
	if got := m.SnapshotSize(); got != len(snap) {
		t.Errorf("SnapshotSize = %d, snapshot = %d bytes", got, len(snap))
	}
	// The pooled-encoder path must produce the same bytes as Snapshot.
	e := wire.NewEncoder()
	defer e.Release()
	m.AppendSnapshot(e)
	if e.Err() != nil {
		t.Fatal(e.Err())
	}
	if !bytes.Equal(e.Bytes(), snap) {
		t.Fatal("AppendSnapshot bytes differ from Snapshot")
	}
	m2, err := Restore(m.Program(), snap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m2.Run(newTestHost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pause != PauseEnd {
		t.Fatalf("restored run pause = %v", res.Pause)
	}
	// total = 3 + (6 ones + 100) — only correct if every frame's locals and
	// every pending operand survived the round trip.
	if got := m2.Var("total").AsInt(); got != 109 {
		t.Errorf("total = %d, want 109", got)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	m, snap := pausedDeepVM(t)
	prog := m.Program()
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), snap...)
		mut(b)
		return b
	}
	// The frame count sits right after the encoded vars.
	varsLen := value.EnvWireSize(m.vars)
	cases := map[string][]byte{
		"zero frames":       corrupt(func(b []byte) { copy(b[varsLen:], []byte{0, 0, 0, 0}) }),
		"absurd frames":     corrupt(func(b []byte) { copy(b[varsLen:], []byte{255, 255, 255, 255}) }),
		"truncated mid-env": snap[:varsLen/2],
		"truncated tail":    snap[:len(snap)-3],
		"junk prefix":       append([]byte{9, 9, 9, 9, 9}, snap...),
	}
	for name, b := range cases {
		if _, err := Restore(prog, b); err == nil {
			t.Errorf("%s: Restore should fail", name)
		}
	}
}

// FuzzSnapshotRestore feeds arbitrary bytes to Restore; whatever it
// accepts must re-snapshot deterministically and restore again (decode →
// encode → decode is a fixed point), and must never panic.
func FuzzSnapshotRestore(f *testing.F) {
	m, snap := pausedDeepVM(f)
	prog := m.Program()
	f.Add(snap)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err := Restore(prog, data)
		if err != nil {
			return
		}
		again, err := m1.Snapshot()
		if err != nil {
			t.Fatalf("re-snapshot of accepted snapshot failed: %v", err)
		}
		m2, err := Restore(prog, again)
		if err != nil {
			t.Fatalf("re-restore of accepted snapshot failed: %v", err)
		}
		snap2, err := m2.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, snap2) {
			t.Fatal("snapshot of restored VM is not stable")
		}
	})
}
