// Package kindswitchtest is analyzed under messengers/internal/vm — one of
// the packages carrying the kind-specialization proof chain — so every
// tagged switch over value.Kind must be exhaustive or defaulted.
package kindswitchtest

import (
	"messengers/internal/value"
)

// exhaustive lists every kind: nothing is flagged.
func exhaustive(v value.Value) int {
	switch v.Kind() {
	case value.KindNil:
		return 0
	case value.KindInt, value.KindNum:
		return 1
	case value.KindStr, value.KindBytes:
		return 2
	case value.KindArr, value.KindMat:
		return 3
	}
	return -1
}

// defaulted decides the leftover kinds explicitly: nothing is flagged.
func defaulted(k value.Kind) bool {
	switch k {
	case value.KindInt, value.KindNum:
		return true
	default:
		return false
	}
}

// partial silently ignores the aggregate kinds.
func partial(v value.Value) int {
	switch v.Kind() { // want "switch over value.Kind misses KindBytes, KindArr, KindMat"
	case value.KindNil:
		return 0
	case value.KindInt, value.KindNum, value.KindStr:
		return 1
	}
	return -1
}

// missesOne drops exactly one kind, the likeliest real slip.
func missesOne(k value.Kind) int {
	switch k { // want "switch over value.Kind misses KindMat; handle it or add a default"
	case value.KindNil, value.KindInt, value.KindNum:
		return 0
	case value.KindStr, value.KindBytes, value.KindArr:
		return 1
	}
	return -1
}

// computedCase uses a non-constant case, so coverage is undecidable and
// the analyzer stays silent.
func computedCase(k, boundary value.Kind) int {
	switch k {
	case boundary:
		return 0
	case value.KindNil:
		return 1
	}
	return -1
}

// otherEnum switches over an unrelated local enum: never flagged.
type mode int

const (
	modeA mode = iota
	modeB
)

func otherEnum(m mode) bool {
	switch m {
	case modeA:
		return true
	}
	return false
}

// untagged switches (kind comparisons in boolean clauses) are out of
// scope: the exhaustiveness contract is about dispatch tables.
func untagged(k value.Kind) int {
	switch {
	case k == value.KindInt:
		return 1
	}
	return 0
}

// suppressed shows the escape hatch for a deliberate partial dispatch.
func suppressed(k value.Kind) bool {
	//lint:kindswitch scalar fast path, aggregates take the slow path by design
	switch k {
	case value.KindInt, value.KindNum:
		return true
	}
	return false
}
