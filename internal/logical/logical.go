// Package logical implements the per-daemon store of the logical network —
// the application-created graph of nodes and links that Messengers navigate
// (the paper's middle abstraction: physical network, daemon network, logical
// network).
//
// The logical network is the "exogenous skeleton" of a MESSENGERS
// application: it persists independently of any Messenger, nodes carry
// shared node variables, and links (possibly directed, possibly crossing
// daemons) are what hop/create/delete destination specifications match
// against.
package logical

import (
	"fmt"
	"strings"

	"messengers/internal/value"
)

// Wildcards and specials of the navigational calculus.
const (
	// Any matches any name ("*").
	Any = "*"
	// Unnamed denotes an unnamed node or link ("~").
	Unnamed = "~"
	// Virtual is the virtual-link name: a direct jump to the node named in
	// ln, resolved against this daemon's node table (plus the well-known
	// init node).
	Virtual = "#virtual"
	// InitName is the name of the distinguished node created on every
	// daemon at startup.
	InitName = "init"
)

// NodeID identifies a node within its daemon.
type NodeID uint64

// LinkID globally identifies a link: the daemon that created it plus a
// per-daemon sequence number. Both half-links of one logical link share the
// same LinkID.
type LinkID struct {
	Daemon int
	Seq    uint64
}

// Addr globally addresses a logical node.
type Addr struct {
	Daemon int
	Node   NodeID
}

// String renders daemon:node.
func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Daemon, a.Node) }

// HalfLink is one endpoint's view of a link.
type HalfLink struct {
	ID       LinkID
	Name     string // "" when unnamed
	Directed bool
	// Outgoing reports whether the link's direction points away from this
	// endpoint (meaningful only when Directed).
	Outgoing bool
	// Peer is the node at the other end (possibly on another daemon).
	Peer Addr
	// PeerName caches the peer's node name so matching ln does not need a
	// remote lookup.
	PeerName string
}

// Node is one logical node resident on this daemon.
type Node struct {
	ID    NodeID
	Name  string // "" when unnamed
	Vars  map[string]value.Value
	Links []*HalfLink
}

// matchName reports the name used in ln matching ("~" semantics: unnamed
// nodes match Unnamed and Any only).
func matchName(pattern, name string) bool {
	switch pattern {
	case Any:
		return true
	case Unnamed:
		return name == ""
	default:
		return pattern == name
	}
}

// linkRefPrefix marks a link-identity reference. $last must identify the
// specific link a Messenger entered by — the paper's Fig. 3 hops back and
// forth over the one link create(ALL) made, which only works if an unnamed
// link's $last is unambiguous. Named links expose their name; unnamed links
// expose an identity reference.
const linkRefPrefix = "#link:"

// LastName is the $last value for traversing half-link h: its name, or an
// identity reference when unnamed.
func LastName(h *HalfLink) string { return RefName(h.ID, h.Name) }

// RefName computes the $last value for a link given its identity and name.
func RefName(id LinkID, name string) string {
	if name != "" && name != Unnamed {
		return name
	}
	return fmt.Sprintf("%s%d:%d", linkRefPrefix, id.Daemon, id.Seq)
}

// matchLink checks an ll pattern against a half-link, including identity
// references produced by LastName.
func matchLink(pattern string, h *HalfLink) bool {
	if strings.HasPrefix(pattern, linkRefPrefix) {
		return LastName(h) == pattern
	}
	return matchName(pattern, h.Name)
}

// matchDir checks a direction specification against a half-link.
// "+" follows the link's direction (the link leaves this node), "-" goes
// against it, "*" matches anything including undirected links. Undirected
// links match only "*" and "~".
func matchDir(dir string, l *HalfLink) bool {
	switch dir {
	case Any, Unnamed:
		return true
	case "+":
		return l.Directed && l.Outgoing
	case "-":
		return l.Directed && !l.Outgoing
	default:
		return false
	}
}

// Match is one destination produced by resolving a hop/delete spec.
type Match struct {
	// Link is the half-link traversed (nil for virtual jumps).
	Link *HalfLink
	// Dest is the destination node address.
	Dest Addr
	// Via is the link name to expose as $last at the destination.
	Via string
}

// Store is one daemon's slice of the logical network.
type Store struct {
	daemon  int
	nextID  NodeID
	nextSeq uint64
	nodes   map[NodeID]*Node
	init    *Node
}

// NewStore creates the store with its init node.
func NewStore(daemon int) *Store {
	s := &Store{daemon: daemon, nodes: map[NodeID]*Node{}}
	s.init = s.CreateNode(InitName)
	return s
}

// Daemon returns the owning daemon's ID.
func (s *Store) Daemon() int { return s.daemon }

// Init returns the daemon's init node.
func (s *Store) Init() *Node { return s.init }

// Len returns the number of nodes resident on this daemon.
func (s *Store) Len() int { return len(s.nodes) }

// Node returns the resident node with the given ID.
func (s *Store) Node(id NodeID) (*Node, bool) {
	n, ok := s.nodes[id]
	return n, ok
}

// Addr returns the global address of a resident node.
func (s *Store) Addr(n *Node) Addr { return Addr{Daemon: s.daemon, Node: n.ID} }

// CreateNode adds a node (name may be empty / Unnamed for an anonymous
// node).
func (s *Store) CreateNode(name string) *Node {
	if name == Unnamed {
		name = ""
	}
	s.nextID++
	n := &Node{ID: s.nextID, Name: name, Vars: map[string]value.Value{}}
	s.nodes[n.ID] = n
	return n
}

// FindByName returns resident nodes with the given name, in creation order.
func (s *Store) FindByName(name string) []*Node {
	var out []*Node
	for id := NodeID(1); id <= s.nextID; id++ {
		if n, ok := s.nodes[id]; ok && n.Name == name {
			out = append(out, n)
		}
	}
	return out
}

// NewLinkID allocates a link identity originating at this daemon.
func (s *Store) NewLinkID() LinkID {
	s.nextSeq++
	return LinkID{Daemon: s.daemon, Seq: s.nextSeq}
}

// AttachHalf installs one endpoint of a link at a resident node.
func (s *Store) AttachHalf(n *Node, id LinkID, name string, directed, outgoing bool, peer Addr, peerName string) *HalfLink {
	if name == Unnamed {
		name = ""
	}
	if peerName == Unnamed {
		peerName = ""
	}
	h := &HalfLink{ID: id, Name: name, Directed: directed, Outgoing: outgoing, Peer: peer, PeerName: peerName}
	n.Links = append(n.Links, h)
	return h
}

// LinkLocal creates a complete link between two nodes resident on this
// daemon. If directed, the direction is a -> b.
func (s *Store) LinkLocal(a, b *Node, name string, directed bool) LinkID {
	id := s.NewLinkID()
	s.AttachHalf(a, id, name, directed, true, s.Addr(b), b.Name)
	s.AttachHalf(b, id, name, directed, false, s.Addr(a), a.Name)
	return id
}

// DetachHalf removes the endpoint of link id from node n. It reports
// whether the node became a singleton and was removed (init is exempt, per
// the paper the logical network persists but a deleted node's corpse does
// not).
func (s *Store) DetachHalf(n *Node, id LinkID) bool {
	for i, h := range n.Links {
		if h.ID == id {
			n.Links = append(n.Links[:i], n.Links[i+1:]...)
			break
		}
	}
	if len(n.Links) == 0 && n != s.init {
		delete(s.nodes, n.ID)
		return true
	}
	return false
}

// RemoveNode forcibly removes a node (used by teardown paths).
func (s *Store) RemoveNode(id NodeID) {
	delete(s.nodes, id)
}

// Match resolves a hop/delete destination specification (ln, ll, ldir) from
// node c: every half-link of c whose link name matches ll, direction
// matches ldir, and peer node name matches ln yields one Match (one
// Messenger replica per matching link, each entering via that link).
//
// A Virtual ll ignores the links entirely and jumps directly to resident
// nodes named ln.
func (s *Store) Match(c *Node, ln, ll, ldir string) []Match {
	if ll == Virtual {
		var out []Match
		for _, n := range s.FindByName(ln) {
			out = append(out, Match{Dest: s.Addr(n), Via: Virtual})
		}
		return out
	}
	var out []Match
	for _, h := range c.Links {
		if !matchLink(ll, h) || !matchDir(ldir, h) || !matchName(ln, h.PeerName) {
			continue
		}
		out = append(out, Match{Link: h, Dest: h.Peer, Via: LastName(h)})
	}
	return out
}

// FindLink returns node n's half-link with the given ID.
func FindLink(n *Node, id LinkID) (*HalfLink, bool) {
	for _, h := range n.Links {
		if h.ID == id {
			return h, true
		}
	}
	return nil, false
}

// --- logical-network healing (daemon-death recovery) ---

// Orphans returns the distinct remote node addresses on the dead daemon
// that some resident node still links to, in deterministic (node-creation,
// link-attachment) order. Placeholder peers (node 0: a remote create whose
// ack has not landed) are skipped — the pending create itself is respawned
// by the recovery layer.
func (s *Store) Orphans(dead int) []Addr {
	var out []Addr
	seen := map[Addr]struct{}{}
	for id := NodeID(1); id <= s.nextID; id++ {
		n, ok := s.nodes[id]
		if !ok {
			continue
		}
		for _, h := range n.Links {
			if h.Peer.Daemon != dead || h.Peer.Node == 0 {
				continue
			}
			if _, dup := seen[h.Peer]; dup {
				continue
			}
			seen[h.Peer] = struct{}{}
			out = append(out, h.Peer)
		}
	}
	return out
}

// Adopt heals the cut left by a dead daemon: it creates a local replacement
// for the orphaned remote node and rewires every resident half-link that
// pointed at the orphan to point at the replacement, attaching the mirror
// halves so the replacement is a full participant of the logical network.
// The replacement inherits the orphan's name (as cached in PeerName) but
// not its variables — those died with the daemon.
func (s *Store) Adopt(orphan Addr) *Node {
	var name string
	type rewire struct {
		owner *Node
		half  *HalfLink
	}
	var cut []rewire
	for id := NodeID(1); id <= s.nextID; id++ {
		n, ok := s.nodes[id]
		if !ok {
			continue
		}
		for _, h := range n.Links {
			if h.Peer == orphan {
				if name == "" {
					name = h.PeerName
				}
				cut = append(cut, rewire{owner: n, half: h})
			}
		}
	}
	nn := s.CreateNode(name)
	addr := s.Addr(nn)
	for _, rw := range cut {
		rw.half.Peer = addr
		// The mirror half points back with the opposite orientation.
		s.AttachHalf(nn, rw.half.ID, rw.half.Name, rw.half.Directed,
			rw.half.Directed && !rw.half.Outgoing, s.Addr(rw.owner), rw.owner.Name)
	}
	return nn
}
