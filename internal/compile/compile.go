// Package compile translates MSL abstract syntax trees into bytecode
// programs for the Messenger virtual machine.
package compile

import (
	"fmt"

	"messengers/internal/bytecode"
	"messengers/internal/script"
	"messengers/internal/value"
)

// Compile parses and compiles MSL source into a program registered under
// name.
func Compile(name, src string) (*bytecode.Program, error) {
	ast, err := script.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileScript(name, src, ast)
}

// MustCompile is Compile for statically known-good scripts; it panics on
// error.
func MustCompile(name, src string) *bytecode.Program {
	p, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileScript compiles a parsed script.
func CompileScript(name, src string, ast *script.Script) (*bytecode.Program, error) {
	c := &compiler{
		prog:     &bytecode.Program{Name: name, Source: src},
		constIdx: map[string]int32{},
		nameIdx:  map[string]int32{},
		funcIdx:  map[string]int{},
	}
	// Function index 0 is the main body; user functions follow.
	c.prog.Funcs = make([]bytecode.FuncInfo, 1+len(ast.Funcs))
	c.prog.Funcs[0].Name = "<main>"
	for i, f := range ast.Funcs {
		c.prog.Funcs[1+i] = bytecode.FuncInfo{Name: f.Name, NumParams: len(f.Params)}
		c.funcIdx[f.Name] = 1 + i
	}
	for i, f := range ast.Funcs {
		if err := c.compileFunc(1+i, f); err != nil {
			return nil, err
		}
	}
	if err := c.compileMain(ast.Body); err != nil {
		return nil, err
	}
	// Every compiled program must pass the bytecode verifier before it can
	// be registered or shipped; a failure here is a compiler bug, reported
	// as an error so daemons never execute unverifiable code. This also
	// attaches the per-PC stack-depth metadata Restore checks snapshots
	// against.
	if err := c.prog.Validate(); err != nil {
		return nil, fmt.Errorf("msl: compiler emitted unverifiable bytecode: %w", err)
	}
	return c.prog, nil
}

type compiler struct {
	prog     *bytecode.Program
	constIdx map[string]int32
	nameIdx  map[string]int32
	funcIdx  map[string]int
}

// fnCtx is per-function compilation state.
type fnCtx struct {
	c      *compiler
	fi     int
	code   []bytecode.Instr
	inFunc bool // bare identifiers are locals rather than Messenger vars
	locals map[string]int32
	loops  []*loopCtx
}

type loopCtx struct {
	breakPatches    []int
	continuePatches []int
}

func (c *compiler) compileMain(body []script.Stmt) error {
	fc := &fnCtx{c: c, fi: 0}
	for _, st := range body {
		if err := fc.stmt(st); err != nil {
			return err
		}
	}
	fc.emit(bytecode.OpEnd, 0, 0)
	c.prog.Funcs[0].Code = fc.code
	return nil
}

func (c *compiler) compileFunc(fi int, f *script.FuncDecl) error {
	fc := &fnCtx{c: c, fi: fi, inFunc: true, locals: map[string]int32{}}
	for _, p := range f.Params {
		fc.locals[p] = int32(len(fc.locals))
	}
	for _, st := range f.Body {
		if err := fc.stmt(st); err != nil {
			return err
		}
	}
	// Implicit "return nil" at the end.
	fc.emitConst(value.Nil())
	fc.emit(bytecode.OpRet, 0, 0)
	c.prog.Funcs[fi].Code = fc.code
	c.prog.Funcs[fi].NumLocals = len(fc.locals)
	return nil
}

// --- emission helpers ---

func (f *fnCtx) emit(op bytecode.Op, a, b int32) int {
	f.code = append(f.code, bytecode.Instr{Op: op, A: a, B: b})
	return len(f.code) - 1
}

func (f *fnCtx) here() int32 { return int32(len(f.code)) }

func (f *fnCtx) patch(at int, target int32) { f.code[at].A = target }

func (f *fnCtx) emitConst(v value.Value) {
	f.emit(bytecode.OpConst, f.c.constRef(v), 0)
}

func (c *compiler) constRef(v value.Value) int32 {
	// Literals are bounded by the source text, far below the codec's
	// length limit, so the encode error is unreachable here.
	enc, _ := value.Append(nil, v)
	key := v.Kind().String() + "\x00" + string(enc)
	if i, ok := c.constIdx[key]; ok {
		return i
	}
	i := int32(len(c.prog.Consts))
	c.prog.Consts = append(c.prog.Consts, v)
	c.constIdx[key] = i
	return i
}

func (c *compiler) nameRef(n string) int32 {
	if i, ok := c.nameIdx[n]; ok {
		return i
	}
	i := int32(len(c.prog.Names))
	c.prog.Names = append(c.prog.Names, n)
	c.nameIdx[n] = i
	return i
}

func cerr(pos script.Pos, format string, args ...any) error {
	return fmt.Errorf("msl:%s: %s", pos, fmt.Sprintf(format, args...))
}

// --- statements ---

func (f *fnCtx) stmts(list []script.Stmt) error {
	for _, st := range list {
		if err := f.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (f *fnCtx) stmt(st script.Stmt) error {
	switch s := st.(type) {
	case *script.AssignStmt:
		return f.assign(s.Target, s.Op, s.Value)
	case *script.IncDecStmt:
		op := script.PLUS
		if s.Dec {
			op = script.MINUS
		}
		return f.assign(s.Target, op, &script.IntLit{Pos: s.Pos, V: 1})
	case *script.ExprStmt:
		if err := f.expr(s.X); err != nil {
			return err
		}
		f.emit(bytecode.OpPop, 0, 0)
		return nil
	case *script.IfStmt:
		return f.ifStmt(s)
	case *script.WhileStmt:
		return f.whileStmt(s)
	case *script.ForStmt:
		return f.forStmt(s)
	case *script.BreakStmt:
		if len(f.loops) == 0 {
			return cerr(s.Pos, "break outside loop")
		}
		at := f.emit(bytecode.OpJmp, 0, 0)
		top := f.loops[len(f.loops)-1]
		top.breakPatches = append(top.breakPatches, at)
		return nil
	case *script.ContinueStmt:
		if len(f.loops) == 0 {
			return cerr(s.Pos, "continue outside loop")
		}
		at := f.emit(bytecode.OpJmp, 0, 0)
		top := f.loops[len(f.loops)-1]
		top.continuePatches = append(top.continuePatches, at)
		return nil
	case *script.ReturnStmt:
		if s.Value != nil {
			if err := f.expr(s.Value); err != nil {
				return err
			}
		} else {
			f.emitConst(value.Nil())
		}
		f.emit(bytecode.OpRet, 0, 0)
		return nil
	case *script.EndStmt:
		f.emit(bytecode.OpEnd, 0, 0)
		return nil
	case *script.NavStmt:
		return f.navStmt(s)
	default:
		return fmt.Errorf("msl: unknown statement %T", st)
	}
}

func (f *fnCtx) ifStmt(s *script.IfStmt) error {
	if err := f.expr(s.Cond); err != nil {
		return err
	}
	jz := f.emit(bytecode.OpJz, 0, 0)
	if err := f.stmts(s.Then); err != nil {
		return err
	}
	if len(s.Else) == 0 {
		f.patch(jz, f.here())
		return nil
	}
	jmp := f.emit(bytecode.OpJmp, 0, 0)
	f.patch(jz, f.here())
	if err := f.stmts(s.Else); err != nil {
		return err
	}
	f.patch(jmp, f.here())
	return nil
}

func (f *fnCtx) whileStmt(s *script.WhileStmt) error {
	top := f.here()
	if err := f.expr(s.Cond); err != nil {
		return err
	}
	jz := f.emit(bytecode.OpJz, 0, 0)
	loop := &loopCtx{}
	f.loops = append(f.loops, loop)
	if err := f.stmts(s.Body); err != nil {
		return err
	}
	f.loops = f.loops[:len(f.loops)-1]
	f.emit(bytecode.OpJmp, top, 0)
	end := f.here()
	f.patch(jz, end)
	for _, at := range loop.breakPatches {
		f.patch(at, end)
	}
	for _, at := range loop.continuePatches {
		f.patch(at, top)
	}
	return nil
}

func (f *fnCtx) forStmt(s *script.ForStmt) error {
	if s.Init != nil {
		if err := f.stmt(s.Init); err != nil {
			return err
		}
	}
	top := f.here()
	jz := -1
	if s.Cond != nil {
		if err := f.expr(s.Cond); err != nil {
			return err
		}
		jz = f.emit(bytecode.OpJz, 0, 0)
	}
	loop := &loopCtx{}
	f.loops = append(f.loops, loop)
	if err := f.stmts(s.Body); err != nil {
		return err
	}
	f.loops = f.loops[:len(f.loops)-1]
	postAt := f.here()
	if s.Post != nil {
		if err := f.stmt(s.Post); err != nil {
			return err
		}
	}
	f.emit(bytecode.OpJmp, top, 0)
	end := f.here()
	if jz >= 0 {
		f.patch(jz, end)
	}
	for _, at := range loop.breakPatches {
		f.patch(at, end)
	}
	for _, at := range loop.continuePatches {
		f.patch(at, postAt)
	}
	return nil
}

// navDefaults returns the default value for a navigational field.
func navDefault(kind script.NavKind, field script.NavField) value.Value {
	if kind == script.NavCreate {
		switch field {
		case script.FieldLN, script.FieldLL, script.FieldLDir:
			return value.Str("~") // unnamed node/link, undirected
		default:
			return value.Str("*") // any daemon
		}
	}
	return value.Str("*") // hop/delete: match anything
}

func (f *fnCtx) navStmt(s *script.NavStmt) error {
	nFields := script.NavField(3)
	if s.Kind == script.NavCreate {
		nFields = 6
	}
	arms := 1
	for fd := script.NavField(0); fd < nFields; fd++ {
		if n := len(s.Fields[fd]); n > arms {
			arms = n
		}
	}
	for arm := 0; arm < arms; arm++ {
		for fd := script.NavField(0); fd < nFields; fd++ {
			list := s.Fields[fd]
			switch {
			case arm < len(list):
				if err := f.expr(list[arm]); err != nil {
					return err
				}
			case len(list) == 1 && s.Kind != script.NavCreate:
				// A single value broadcast across arms for matching
				// statements (hop(ll=x) with ln=a,b).
				if err := f.expr(list[0]); err != nil {
					return err
				}
			default:
				f.emitConst(navDefault(s.Kind, fd))
			}
		}
	}
	var op bytecode.Op
	switch s.Kind {
	case script.NavHop:
		op = bytecode.OpHop
	case script.NavCreate:
		op = bytecode.OpCreate
	default:
		op = bytecode.OpDelete
	}
	all := int32(0)
	if s.All {
		all = 1
	}
	f.emit(op, int32(arms), all)
	return nil
}

// assign compiles target = value (op 0) or target op= value.
func (f *fnCtx) assign(target script.Expr, op script.Kind, val script.Expr) error {
	switch t := target.(type) {
	case *script.VarExpr:
		if op != 0 {
			if err := f.loadVar(t); err != nil {
				return err
			}
			if err := f.expr(val); err != nil {
				return err
			}
			f.emit(binOp(op), 0, 0)
		} else {
			if err := f.expr(val); err != nil {
				return err
			}
		}
		return f.storeVar(t)
	case *script.IndexExpr:
		if err := f.expr(t.Base); err != nil {
			return err
		}
		if err := f.expr(t.Idx); err != nil {
			return err
		}
		if op != 0 {
			f.emit(bytecode.OpDup2, 0, 0)
			f.emit(bytecode.OpIndex, 0, 0)
			if err := f.expr(val); err != nil {
				return err
			}
			f.emit(binOp(op), 0, 0)
		} else {
			if err := f.expr(val); err != nil {
				return err
			}
		}
		f.emit(bytecode.OpSetIndex, 0, 0)
		return nil
	default:
		return cerr(target.StartPos(), "cannot assign to this expression")
	}
}

func (f *fnCtx) loadVar(v *script.VarExpr) error {
	switch v.Space {
	case script.SpaceAuto:
		if f.inFunc {
			slot, ok := f.locals[v.Name]
			if !ok {
				return cerr(v.Pos, "undefined local %q (assign it first, or use msgr.%s for a Messenger variable)", v.Name, v.Name)
			}
			f.emit(bytecode.OpLoadL, slot, 0)
			return nil
		}
		f.emit(bytecode.OpLoadM, f.c.nameRef(v.Name), 0)
		return nil
	case script.SpaceMsgr:
		f.emit(bytecode.OpLoadM, f.c.nameRef(v.Name), 0)
		return nil
	case script.SpaceNode:
		f.emit(bytecode.OpLoadN, f.c.nameRef(v.Name), 0)
		return nil
	default:
		f.emit(bytecode.OpLoadNet, f.c.nameRef(v.Name), 0)
		return nil
	}
}

func (f *fnCtx) storeVar(v *script.VarExpr) error {
	switch v.Space {
	case script.SpaceAuto:
		if f.inFunc {
			slot, ok := f.locals[v.Name]
			if !ok {
				slot = int32(len(f.locals))
				f.locals[v.Name] = slot
			}
			f.emit(bytecode.OpStoreL, slot, 0)
			return nil
		}
		f.emit(bytecode.OpStoreM, f.c.nameRef(v.Name), 0)
		return nil
	case script.SpaceMsgr:
		f.emit(bytecode.OpStoreM, f.c.nameRef(v.Name), 0)
		return nil
	case script.SpaceNode:
		f.emit(bytecode.OpStoreN, f.c.nameRef(v.Name), 0)
		return nil
	default:
		return cerr(v.Pos, "network variable $%s is read-only", v.Name)
	}
}

func binOp(k script.Kind) bytecode.Op {
	switch k {
	case script.PLUS:
		return bytecode.OpAdd
	case script.MINUS:
		return bytecode.OpSub
	case script.STAR:
		return bytecode.OpMul
	case script.SLASH:
		return bytecode.OpDiv
	case script.PERCENT:
		return bytecode.OpMod
	case script.EQ:
		return bytecode.OpEq
	case script.NE:
		return bytecode.OpNe
	case script.LT:
		return bytecode.OpLt
	case script.LE:
		return bytecode.OpLe
	case script.GT:
		return bytecode.OpGt
	case script.GE:
		return bytecode.OpGe
	default:
		panic(fmt.Sprintf("msl: no opcode for operator %v", k))
	}
}

// --- expressions ---

func (f *fnCtx) expr(e script.Expr) error {
	switch x := e.(type) {
	case *script.IntLit:
		f.emitConst(value.Int(x.V))
	case *script.NumLit:
		f.emitConst(value.Num(x.V))
	case *script.StrLit:
		f.emitConst(value.Str(x.V))
	case *script.NilLit:
		f.emitConst(value.Nil())
	case *script.VarExpr:
		return f.loadVar(x)
	case *script.UnaryExpr:
		if err := f.expr(x.X); err != nil {
			return err
		}
		if x.Op == script.MINUS {
			f.emit(bytecode.OpNeg, 0, 0)
		} else {
			f.emit(bytecode.OpNot, 0, 0)
		}
	case *script.BinaryExpr:
		return f.binary(x)
	case *script.CallExpr:
		return f.call(x)
	case *script.IndexExpr:
		if err := f.expr(x.Base); err != nil {
			return err
		}
		if err := f.expr(x.Idx); err != nil {
			return err
		}
		f.emit(bytecode.OpIndex, 0, 0)
	case *script.ArrayLit:
		for _, el := range x.Elems {
			if err := f.expr(el); err != nil {
				return err
			}
		}
		f.emit(bytecode.OpArr, int32(len(x.Elems)), 0)
	case *script.AssignExpr:
		return f.assignExpr(x)
	default:
		return fmt.Errorf("msl: unknown expression %T", e)
	}
	return nil
}

func (f *fnCtx) assignExpr(x *script.AssignExpr) error {
	switch t := x.Target.(type) {
	case *script.VarExpr:
		if err := f.expr(x.Value); err != nil {
			return err
		}
		f.emit(bytecode.OpDup, 0, 0)
		return f.storeVar(t)
	case *script.IndexExpr:
		if err := f.expr(t.Base); err != nil {
			return err
		}
		if err := f.expr(t.Idx); err != nil {
			return err
		}
		if err := f.expr(x.Value); err != nil {
			return err
		}
		f.emit(bytecode.OpSetIndex, 0, 1) // keep value
		return nil
	default:
		return cerr(x.Pos, "cannot assign to this expression")
	}
}

func (f *fnCtx) binary(x *script.BinaryExpr) error {
	switch x.Op {
	case script.ANDAND:
		if err := f.expr(x.L); err != nil {
			return err
		}
		jz1 := f.emit(bytecode.OpJz, 0, 0)
		if err := f.expr(x.R); err != nil {
			return err
		}
		jz2 := f.emit(bytecode.OpJz, 0, 0)
		f.emitConst(value.Int(1))
		jmp := f.emit(bytecode.OpJmp, 0, 0)
		f.patch(jz1, f.here())
		f.patch(jz2, f.here())
		f.emitConst(value.Int(0))
		f.patch(jmp, f.here())
		return nil
	case script.OROR:
		if err := f.expr(x.L); err != nil {
			return err
		}
		jz1 := f.emit(bytecode.OpJz, 0, 0)
		f.emitConst(value.Int(1))
		jmpEnd1 := f.emit(bytecode.OpJmp, 0, 0)
		f.patch(jz1, f.here())
		if err := f.expr(x.R); err != nil {
			return err
		}
		jz2 := f.emit(bytecode.OpJz, 0, 0)
		f.emitConst(value.Int(1))
		jmpEnd2 := f.emit(bytecode.OpJmp, 0, 0)
		f.patch(jz2, f.here())
		f.emitConst(value.Int(0))
		f.patch(jmpEnd1, f.here())
		f.patch(jmpEnd2, f.here())
		return nil
	default:
		if err := f.expr(x.L); err != nil {
			return err
		}
		if err := f.expr(x.R); err != nil {
			return err
		}
		f.emit(binOp(x.Op), 0, 0)
		return nil
	}
}

func (f *fnCtx) call(x *script.CallExpr) error {
	for _, a := range x.Args {
		if err := f.expr(a); err != nil {
			return err
		}
	}
	if fi, ok := f.c.funcIdx[x.Name]; ok {
		want := f.c.prog.Funcs[fi].NumParams
		if len(x.Args) != want {
			return cerr(x.Pos, "function %q takes %d arguments, got %d", x.Name, want, len(x.Args))
		}
		f.emit(bytecode.OpCallFunc, int32(fi), int32(len(x.Args)))
		return nil
	}
	// Scheduling calls compile to dedicated pause instructions.
	switch x.Name {
	case "sched_abs", "M_sched_time_abs":
		if len(x.Args) != 1 {
			return cerr(x.Pos, "%s takes 1 argument", x.Name)
		}
		f.emit(bytecode.OpSchedAbs, 0, 0)
		// A suspension yields no value; push nil for expression position.
		f.emitConst(value.Nil())
		return nil
	case "sched_dlt", "M_sched_time_dlt":
		if len(x.Args) != 1 {
			return cerr(x.Pos, "%s takes 1 argument", x.Name)
		}
		f.emit(bytecode.OpSchedDlt, 0, 0)
		f.emitConst(value.Nil())
		return nil
	}
	f.emit(bytecode.OpCallNative, f.c.nameRef(x.Name), int32(len(x.Args)))
	return nil
}
