package vm

import (
	"encoding/binary"
	"fmt"

	"messengers/internal/bytecode"
	"messengers/internal/value"
	"messengers/internal/wire"
)

// AppendSnapshot serializes the full execution state — Messenger variables,
// call frames, and operand stack — into e in one pass. Together with the
// program hash this is exactly what a daemon ships when a Messenger hops to
// another daemon (the code itself stays in the shared script registry).
// Oversized values set the encoder's sticky error.
func (m *VM) AppendSnapshot(e *wire.Encoder) {
	value.AppendEnvTo(e, m.vars)
	e.U32(uint32(len(m.frames)))
	for i := range m.frames {
		f := &m.frames[i]
		e.U32(uint32(f.fn))
		e.U32(uint32(f.pc))
		e.U32(uint32(len(f.locals)))
		for _, lv := range f.locals {
			lv.AppendTo(e)
		}
	}
	e.U32(uint32(len(m.stack)))
	for _, v := range m.stack {
		v.AppendTo(e)
	}
}

// Snapshot builds the snapshot as a standalone slice, preallocated to its
// exact encoded size (no regrows). Hot paths encode through AppendSnapshot
// instead, straight into a pooled frame.
func (m *VM) Snapshot() []byte {
	e := wire.AppendingTo(make([]byte, 0, m.SnapshotSize()))
	m.AppendSnapshot(e)
	return e.Bytes()
}

// SnapshotSize returns the exact encoded size of AppendSnapshot's output
// without building it — the Sizer half of the single-walk contract. The sim
// engine charges this as modeled wire cost without materializing bytes, so
// it must agree byte-for-byte with AppendSnapshot.
func (m *VM) SnapshotSize() int {
	n := value.EnvWireSize(m.vars) + 4
	for i := range m.frames {
		n += 12
		for _, lv := range m.frames[i].locals {
			n += lv.WireSize()
		}
	}
	n += 4
	for _, v := range m.stack {
		n += v.WireSize()
	}
	return n
}

// WireSize is SnapshotSize under the name the cost-model call sites use.
func (m *VM) WireSize() int { return m.SnapshotSize() }

// Restore rebuilds a VM from a snapshot against its program.
func Restore(prog *bytecode.Program, buf []byte) (*VM, error) {
	vars, p, err := value.DecodeEnv(buf)
	if err != nil {
		return nil, fmt.Errorf("vm: restore vars: %w", err)
	}
	u32 := func() (int, error) {
		if p+4 > len(buf) {
			return 0, fmt.Errorf("vm: truncated snapshot")
		}
		v := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		return v, nil
	}
	nframes, err := u32()
	if err != nil {
		return nil, err
	}
	if nframes < 1 || nframes > maxCallDepth {
		return nil, fmt.Errorf("vm: snapshot frame count %d out of range", nframes)
	}
	m := &VM{prog: prog, vars: vars, frames: make([]frame, nframes)}
	for i := 0; i < nframes; i++ {
		fn, err := u32()
		if err != nil {
			return nil, err
		}
		pc, err := u32()
		if err != nil {
			return nil, err
		}
		nloc, err := u32()
		if err != nil {
			return nil, err
		}
		if fn >= len(prog.Funcs) {
			return nil, fmt.Errorf("vm: snapshot references function %d of %d", fn, len(prog.Funcs))
		}
		if pc > len(prog.Funcs[fn].Code) {
			return nil, fmt.Errorf("vm: snapshot pc %d beyond code of %q", pc, prog.Funcs[fn].Name)
		}
		if nloc > 1<<20 || nloc > len(buf)-p {
			return nil, fmt.Errorf("vm: snapshot local count %d exceeds buffer", nloc)
		}
		fr := frame{fn: fn, pc: pc, locals: make([]value.Value, nloc)}
		for j := 0; j < nloc; j++ {
			v, n, err := value.Decode(buf[p:])
			if err != nil {
				return nil, fmt.Errorf("vm: restore local: %w", err)
			}
			fr.locals[j] = v
			p += n
		}
		m.frames[i] = fr
	}
	nstack, err := u32()
	if err != nil {
		return nil, err
	}
	if nstack > 1<<20 || nstack > len(buf)-p {
		return nil, fmt.Errorf("vm: snapshot stack size %d exceeds buffer", nstack)
	}
	m.stack = make([]value.Value, nstack)
	for i := 0; i < nstack; i++ {
		v, n, err := value.Decode(buf[p:])
		if err != nil {
			return nil, fmt.Errorf("vm: restore stack: %w", err)
		}
		m.stack[i] = v
		p += n
	}
	return m, nil
}
