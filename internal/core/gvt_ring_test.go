package core

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"messengers/internal/faults"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// The distributed ring-reduction GVT must be observationally identical to
// the centralized coordinator on the sim engine: same virtual-time
// ordering, same committed GVT sequence, fewer control messages. These
// tests mirror the coordinator suite under WithDistributedGVT and add the
// differential assertions.

// ringWorkloads are the virtual-time coordination patterns the differential
// tests replay under both GVT implementations.
var ringWorkloads = []struct {
	name    string
	daemons int
	load    func(t *testing.T, sys *System)
}{
	{"wakers", 3, func(t *testing.T, sys *System) {
		register(t, sys, "waker", `
			sched_abs(when);
			print("wake", when, "on", $address);
		`)
		wakes := []struct {
			daemon int
			when   float64
		}{
			{2, 3.0}, {0, 1.0}, {1, 2.0}, {1, 0.5}, {0, 2.5},
		}
		for _, w := range wakes {
			err := sys.Inject(w.daemon, "waker", map[string]value.Value{"when": value.Num(w.when)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}},
	{"alternation", 2, func(t *testing.T, sys *System) {
		register(t, sys, "full", `
			for (k = 0; k < 3; k++) {
				sched_abs(k);
				print("A", k);
			}
		`)
		register(t, sys, "half", `
			for (k = 0; k < 3; k++) {
				sched_abs(k + 0.5);
				print("B", k);
			}
		`)
		if err := sys.Inject(0, "full", nil); err != nil {
			t.Fatal(err)
		}
		if err := sys.Inject(1, "half", nil); err != nil {
			t.Fatal(err)
		}
	}},
	{"sched_dlt stress", 4, func(t *testing.T, sys *System) {
		register(t, sys, "stress", `
			for (k = 0; k < 20; k++) {
				sched_dlt(step);
				node.progress = node.progress + 1;
			}
		`)
		for d := 0; d < 4; d++ {
			for j := 0; j < 3; j++ {
				step := 0.25 * float64(j+1)
				err := sys.Inject(d, "stress", map[string]value.Value{"step": value.Num(step)})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}},
}

func TestRingGVTOrdersEventsAcrossDaemons(t *testing.T) {
	k, sys := simSystem(t, 3, WithDistributedGVT())
	register(t, sys, "waker", `
		sched_abs(when);
		print("wake", when, "on", $address);
	`)
	wakes := []struct {
		daemon int
		when   float64
	}{
		{2, 3.0}, {0, 1.0}, {1, 2.0}, {1, 0.5}, {0, 2.5},
	}
	for _, w := range wakes {
		err := sys.Inject(w.daemon, "waker", map[string]value.Value{"when": value.Num(w.when)})
		if err != nil {
			t.Fatal(err)
		}
	}
	runSim(t, k, sys)
	out := sys.Output()
	if len(out) != len(wakes) {
		t.Fatalf("output = %v", out)
	}
	var prev float64
	for i, line := range out {
		when, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if when < prev {
			t.Errorf("line %d (%q) out of virtual-time order", i, line)
		}
		prev = when
	}
	if sys.Daemon(0).Stats.GVTRounds == 0 {
		t.Error("no ring rounds ran")
	}
	if sys.Daemon(1).coord != nil || sys.Daemon(0).ring == nil {
		t.Error("WithDistributedGVT did not replace the coordinator")
	}
	log := sys.CommitLog()
	if len(log) == 0 {
		t.Fatal("no GVT commits recorded")
	}
	for i := 1; i < len(log); i++ {
		if log[i] <= log[i-1] {
			t.Errorf("commit log not strictly increasing: %v", log)
		}
	}
}

func TestRingGVTAlternation(t *testing.T) {
	k, sys := simSystem(t, 2, WithDistributedGVT())
	ringWorkloads[1].load(t, sys)
	runSim(t, k, sys)
	got := strings.Join(sys.Output(), " ")
	want := "A 0 B 0 A 1 B 1 A 2 B 2"
	if got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

// TestRingGVTWithHopsBetweenEpochs checks the conservative property under
// the ring protocol: transient Messengers keep the token's counters
// unbalanced, so no epoch t' > t starts while a time-t hop is in flight.
func TestRingGVTWithHopsBetweenEpochs(t *testing.T) {
	k, sys := simSystem(t, 2, WithDistributedGVT())
	spec := NetSpec{
		Nodes: []NetNode{{Name: "src", Daemon: 0}, {Name: "dst", Daemon: 1}},
		Links: []NetLink{{A: "src", B: "dst", Name: "wire"}},
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "sender", `
		for (k = 0; k < 4; k++) {
			sched_abs(k);
			msgr.payload = k + 1;
			hop(ll = "wire");
			node.box = msgr.payload;
			hop(ll = "wire");
		}
	`)
	register(t, sys, "reader", `
		for (k = 0; k < 4; k++) {
			sched_abs(k + 0.5);
			print("read", node.box);
		}
	`)
	if err := sys.InjectAt(0, "sender", "src", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectAt(1, "reader", "dst", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	got := strings.Join(sys.Output(), ", ")
	want := "read 1, read 2, read 3, read 4"
	if got != want {
		t.Errorf("reads = %q, want %q (conservative ordering violated)", got, want)
	}
}

// TestRingCommitLogMatchesCoordinator is the differential acceptance test:
// each workload, run under the coordinator and under the ring, must commit
// the identical sequence of GVT values (both implementations decide from
// the same balance invariant over deterministic wake-time frontiers).
func TestRingCommitLogMatchesCoordinator(t *testing.T) {
	for _, w := range ringWorkloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			run := func(opts ...Option) ([]float64, []string) {
				k, sys := simSystem(t, w.daemons, opts...)
				w.load(t, sys)
				runSim(t, k, sys)
				return sys.CommitLog(), sys.Output()
			}
			coordLog, coordOut := run()
			ringLog, ringOut := run(WithDistributedGVT())
			if len(ringLog) == 0 {
				t.Fatal("ring committed nothing")
			}
			if len(ringLog) != len(coordLog) {
				t.Fatalf("commit counts differ: ring %d %v, coordinator %d %v",
					len(ringLog), ringLog, len(coordLog), coordLog)
			}
			for i := range ringLog {
				if ringLog[i] != coordLog[i] {
					t.Fatalf("commit %d differs: ring %v, coordinator %v", i, ringLog, coordLog)
				}
			}
			if strings.Join(ringOut, "\n") != strings.Join(coordOut, "\n") {
				t.Errorf("outputs differ:\nring %v\ncoordinator %v", ringOut, coordOut)
			}
		})
	}
}

// TestRingControlMessageComplexity pins the scaling claim: ring rounds cost
// at most 2 control messages per daemon per round (token forward per pass),
// while coordinator rounds funnel ~3 per daemon through daemon 0.
func TestRingControlMessageComplexity(t *testing.T) {
	const n = 8
	load := func(sys *System, t *testing.T) {
		register(t, sys, "stress", `
			for (k = 0; k < 10; k++) {
				sched_dlt(0.5);
				node.progress = node.progress + 1;
			}
		`)
		for d := 0; d < n; d++ {
			if err := sys.Inject(d, "stress", nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	k, sys := simSystem(t, n, WithDistributedGVT())
	load(sys, t)
	runSim(t, k, sys)
	rounds := sys.Daemon(0).Stats.GVTRounds
	if rounds == 0 {
		t.Fatal("no ring rounds ran")
	}
	for i := 0; i < n; i++ {
		d := sys.Daemon(i)
		// Each round moves the token through this daemon at most twice
		// (accumulate + commit); beyond that only quiescence notifications
		// (bounded by suspends) leave the daemon.
		limit := 2*rounds + d.Stats.Suspends
		if d.Stats.GVTCtlMsgs > limit {
			t.Errorf("daemon %d sent %d control messages over %d rounds (limit %d)",
				i, d.Stats.GVTCtlMsgs, rounds, limit)
		}
	}
	if sys.Daemon(0).Stats.GVTRoundTime <= 0 {
		t.Error("round latency accounting did not accumulate")
	}

	if os.Getenv("MSGR_DIST_GVT") == "1" {
		// The env override turns the "coordinator" leg below into a second
		// ring run, so its fan-out lower bound no longer applies.
		t.Skip("MSGR_DIST_GVT=1 forces ring mode; coordinator comparison unavailable")
	}
	kc, sysc := simSystem(t, n)
	load(sysc, t)
	runSim(t, kc, sysc)
	croundsTotal := sysc.Daemon(0).Stats.GVTRounds
	if croundsTotal == 0 {
		t.Fatal("no coordinator rounds ran")
	}
	// The coordinator fans a query to every other daemon per round — its
	// per-round send count grows with N while each ring daemon's stays ≤2.
	if got, min := sysc.Daemon(0).Stats.GVTCtlMsgs, (int64(n)-1)*croundsTotal; got < min {
		t.Errorf("coordinator daemon 0 sent %d control messages, expected at least %d", got, min)
	}
}

// TestRingGVTUnderLoss mirrors TestRecoveryGVTUnderLoss under the ring
// protocol: dropped tokens must be relaunched by the initiator's watchdog
// and virtual time must still advance in order.
func TestRingGVTUnderLoss(t *testing.T) {
	plan := &faults.Plan{Seed: 9, Drop: 0.25}
	k, sys, _ := faultSystem(t, 3, plan, WithDistributedGVT())
	register(t, sys, "waker", `
		sched_abs(when);
		print("wake", when);
	`)
	for i, when := range []float64{3.0, 1.0, 2.0} {
		err := sys.Inject(i, "waker", map[string]value.Value{"when": value.Num(when)})
		if err != nil {
			t.Fatal(err)
		}
	}
	runSim(t, k, sys)
	out := sys.Output()
	want := []string{"wake 1.0", "wake 2.0", "wake 3.0"}
	if len(out) != len(want) {
		t.Fatalf("output = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, out[i], want[i])
		}
	}
}

// TestRingGVTCrashWithoutRestart kills a mid-ring daemon permanently: the
// token route must heal around it (succ skips dead peers) and the orphaned
// work must finish on the survivors.
func TestRingGVTCrashWithoutRestart(t *testing.T) {
	plan := &faults.Plan{
		Seed:    2,
		Crashes: []faults.Crash{{Daemon: 1, At: int64(50 * sim.Millisecond)}},
	}
	k, sys, _ := faultSystem(t, 3, plan, WithDistributedGVT())
	sys.RegisterNative("spin", func(ctx *NativeCtx, _ []value.Value) (value.Value, error) {
		ctx.Charge(200 * sim.Millisecond)
		return value.Nil(), nil
	})
	register(t, sys, "survivor", `
		create(ALL);
		spin();
		hop(ll = $last);
		node.done = node.done + 1;
	`)
	if err := sys.Inject(0, "survivor", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if got := sys.Daemon(0).Store().Init().Vars["done"].AsInt(); got != 2 {
		t.Errorf("done = %d, want 2", got)
	}
}

// TestRingGVTCrashRespawn is the crash-with-restart chaos case under the
// ring: the respawn path and the ring watchdog must coexist.
func TestRingGVTCrashRespawn(t *testing.T) {
	plan := &faults.Plan{
		Seed: 1,
		Crashes: []faults.Crash{{
			Daemon:       1,
			At:           int64(50 * sim.Millisecond),
			RestartAfter: int64(20 * sim.Millisecond),
		}},
	}
	k, sys, metrics := faultSystem(t, 2, plan, WithDistributedGVT())
	sys.RegisterNative("spin", func(ctx *NativeCtx, _ []value.Value) (value.Value, error) {
		ctx.Charge(200 * sim.Millisecond)
		return value.Nil(), nil
	})
	register(t, sys, "survivor", `
		create(ALL);
		spin();
		hop(ll = $last);
		node.done = node.done + 1;
	`)
	if err := sys.Inject(0, "survivor", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if got := sys.Daemon(0).Store().Init().Vars["done"].AsInt(); got != 1 {
		t.Errorf("done = %d, want 1", got)
	}
	if metrics.CounterValue("daemon.deaths") != 1 {
		t.Errorf("deaths = %d, want 1", metrics.CounterValue("daemon.deaths"))
	}
}

// TestRingGVTInitiatorCrash crashes daemon 0 — the round pacer — with a
// restart. Suspended daemons renotify the restarted initiator, so virtual
// time resumes advancing exactly as it does when the coordinator dies.
func TestRingGVTInitiatorCrash(t *testing.T) {
	plan := &faults.Plan{
		Seed: 4,
		Crashes: []faults.Crash{{
			Daemon:       0,
			At:           int64(30 * sim.Millisecond),
			RestartAfter: int64(20 * sim.Millisecond),
		}},
	}
	k, sys, _ := faultSystem(t, 3, plan, WithDistributedGVT())
	register(t, sys, "waker", `
		sched_abs(when);
		print("wake", when);
	`)
	// Inject on the survivors only: daemon 0's residents die with it.
	for i, when := range []float64{1.0, 2.0} {
		err := sys.Inject(i+1, "waker", map[string]value.Value{"when": value.Num(when)})
		if err != nil {
			t.Fatal(err)
		}
	}
	runSim(t, k, sys)
	out := sys.Output()
	want := []string{"wake 1.0", "wake 2.0"}
	if len(out) != len(want) {
		t.Fatalf("output = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, out[i], want[i])
		}
	}
}

// TestRingGVTInitiatorCrashDuringPartition combines the two faults that were
// previously only tested separately: daemon 0 (the round pacer) crashes and
// restarts while a partition simultaneously isolates daemon 2, so the ring
// loses its initiator AND its tokens in the same window. The watchdog must
// keep relaunching rounds, the restarted initiator must be renotified by the
// suspended survivors, and once the partition heals virtual time must resume
// advancing in order.
func TestRingGVTInitiatorCrashDuringPartition(t *testing.T) {
	plan := &faults.Plan{
		Seed: 4,
		Crashes: []faults.Crash{{
			Daemon:       0,
			At:           int64(30 * sim.Millisecond),
			RestartAfter: int64(20 * sim.Millisecond),
		}},
		// Overlaps the crash window on both sides: the partition starts
		// before the initiator dies and heals after it has restarted.
		Partitions: []faults.Partition{{
			At:    int64(25 * sim.Millisecond),
			Heal:  int64(70 * sim.Millisecond),
			Group: []int{2},
		}},
	}
	k, sys, metrics := faultSystem(t, 3, plan, WithDistributedGVT())
	register(t, sys, "waker", `
		sched_abs(when);
		print("wake", when);
	`)
	// Inject on the survivors only: daemon 0's residents die with it.
	for i, when := range []float64{1.0, 2.0} {
		err := sys.Inject(i+1, "waker", map[string]value.Value{"when": value.Num(when)})
		if err != nil {
			t.Fatal(err)
		}
	}
	runSim(t, k, sys)
	out := sys.Output()
	want := []string{"wake 1.0", "wake 2.0"}
	if len(out) != len(want) {
		t.Fatalf("output = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, out[i], want[i])
		}
	}
	// The combination must actually have exercised both faults: the
	// partition cut ring traffic and the daemon died.
	if metrics.CounterValue("faults.injected.partition") == 0 {
		t.Error("partition never dropped a message — the fault windows missed the ring traffic")
	}
	if metrics.CounterValue("daemon.deaths") != 1 {
		t.Errorf("deaths = %d, want 1", metrics.CounterValue("daemon.deaths"))
	}
	log := sys.CommitLog()
	for i := 1; i < len(log); i++ {
		if log[i] <= log[i-1] {
			t.Fatalf("commit log not strictly increasing after combined faults: %v", log)
		}
	}
}

// TestChanEngineRingGVTOrdering is the real-engine (goroutine) smoke test
// for the ring protocol.
func TestChanEngineRingGVTOrdering(t *testing.T) {
	sys := chanSystem(t, 3, WithGVTInterval(sim.Millisecond/2), WithDistributedGVT())
	register(t, sys, "ticker", `
		for (k = 0; k < 5; k++) {
			sched_abs(k * spacing + phase);
			print(tag, k);
		}
	`)
	inject := func(d int, tag string, phase float64) {
		t.Helper()
		err := sys.Inject(d, "ticker", map[string]value.Value{
			"tag": value.Str(tag), "phase": value.Num(phase), "spacing": value.Num(1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	inject(1, "X", 0.2)
	inject(2, "Y", 0.6)
	waitDone(t, sys)

	out := sys.Output()
	if len(out) != 10 {
		t.Fatalf("output = %v", out)
	}
	for i, line := range out {
		wantTag := "X"
		if i%2 == 1 {
			wantTag = "Y"
		}
		if !strings.HasPrefix(line, wantTag) {
			t.Errorf("line %d = %q, want prefix %q", i, line, wantTag)
		}
	}
}

func TestGVTTokenEncodeDecodeRoundTrip(t *testing.T) {
	tok := &Msg{Kind: MsgGVTToken, From: 5, GPass: 2, GEpoch: 17, GMin: 3.5,
		GSent: 100, GRecv: 100, GVT: 3.25}
	dec, err := DecodeMsg(tok.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != MsgGVTToken || dec.GPass != 2 || dec.GEpoch != 17 ||
		dec.GMin != 3.5 || dec.GSent != 100 || dec.GRecv != 100 || dec.GVT != 3.25 {
		t.Errorf("round trip mismatch: %+v", dec)
	}
}
