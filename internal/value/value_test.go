package value

import (
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindNil, "nil"},
		{KindInt, "int"},
		{KindNum, "num"},
		{KindStr, "str"},
		{KindBytes, "bytes"},
		{KindArr, "array"},
		{KindMat, "matrix"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Nil().IsNil() {
		t.Error("Nil() should be nil")
	}
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Int(42).AsNum(); got != 42.0 {
		t.Errorf("Int(42).AsNum() = %v", got)
	}
	if got := Num(2.5).AsInt(); got != 2 {
		t.Errorf("Num(2.5).AsInt() = %d, want 2 (truncation)", got)
	}
	if got := Str("hi").AsStr(); got != "hi" {
		t.Errorf("Str.AsStr() = %q", got)
	}
	if got := Bool(true); got.AsInt() != 1 {
		t.Errorf("Bool(true) = %v", got)
	}
	if got := Bool(false); got.AsInt() != 0 {
		t.Errorf("Bool(false) = %v", got)
	}
	if Nil().AsInt() != 0 || Nil().AsNum() != 0 {
		t.Error("nil numeric conversions should be 0")
	}
}

func TestTruthy(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want bool
	}{
		{"nil", Nil(), false},
		{"zero int", Int(0), false},
		{"int", Int(3), true},
		{"neg int", Int(-1), true},
		{"zero num", Num(0), false},
		{"num", Num(0.1), true},
		{"empty str", Str(""), false},
		{"str", Str("x"), true},
		{"empty bytes", Bytes(nil), false},
		{"bytes", Bytes([]byte{0}), true},
		{"empty arr", Arr(nil), false},
		{"arr", Arr([]Value{Int(1)}), true},
		{"nil mat", Matrix(nil), false},
		{"empty mat", Matrix(NewMat(0, 0)), false},
		{"mat", Matrix(NewMat(1, 1)), true},
	}
	for _, tt := range tests {
		if got := tt.v.Truthy(); got != tt.want {
			t.Errorf("%s: Truthy() = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestIndexing(t *testing.T) {
	a := Arr([]Value{Int(10), Str("x")})
	if e, ok := a.Index(1); !ok || e.AsStr() != "x" {
		t.Errorf("arr index: got %v ok=%v", e, ok)
	}
	if _, ok := a.Index(2); ok {
		t.Error("arr index out of range should fail")
	}
	if _, ok := a.Index(-1); ok {
		t.Error("arr negative index should fail")
	}
	if !a.SetIndex(0, Int(99)) {
		t.Error("arr SetIndex failed")
	}
	if e, _ := a.Index(0); e.AsInt() != 99 {
		t.Error("arr SetIndex did not stick")
	}

	b := Bytes([]byte{1, 2, 3})
	if e, ok := b.Index(2); !ok || e.AsInt() != 3 {
		t.Errorf("bytes index: got %v ok=%v", e, ok)
	}
	if !b.SetIndex(0, Int(255)) {
		t.Error("bytes SetIndex failed")
	}
	if e, _ := b.Index(0); e.AsInt() != 255 {
		t.Error("bytes SetIndex did not stick")
	}

	m := NewMat(2, 2)
	m.Set(1, 1, 7)
	mv := Matrix(m)
	if e, ok := mv.Index(3); !ok || e.AsNum() != 7 {
		t.Errorf("mat index: got %v ok=%v", e, ok)
	}
	if !mv.SetIndex(0, Num(3.5)) || m.At(0, 0) != 3.5 {
		t.Error("mat SetIndex failed")
	}

	s := Str("ab")
	if e, ok := s.Index(1); !ok || e.AsInt() != 'b' {
		t.Errorf("str index: got %v ok=%v", e, ok)
	}
	if s.SetIndex(0, Int('z')) {
		t.Error("strings are immutable; SetIndex should fail")
	}
	if _, ok := Int(1).Index(0); ok {
		t.Error("ints are not indexable")
	}
}

func TestLen(t *testing.T) {
	tests := []struct {
		v    Value
		want int
	}{
		{Str("abc"), 3},
		{Bytes(make([]byte, 5)), 5},
		{Arr(make([]Value, 2)), 2},
		{Matrix(NewMat(2, 3)), 6},
		{Matrix(nil), 0},
		{Int(7), 0},
	}
	for _, tt := range tests {
		if got := tt.v.Len(); got != tt.want {
			t.Errorf("%v.Len() = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMat(1, 2)
	inner := Arr([]Value{Int(1)})
	orig := Arr([]Value{inner, Bytes([]byte{9}), Matrix(m)})
	cl := orig.Clone()

	orig.AsArr()[0].AsArr()[0] = Int(100)
	orig.AsArr()[1].AsBytes()[0] = 100
	m.Data[0] = 100

	if cl.AsArr()[0].AsArr()[0].AsInt() != 1 {
		t.Error("nested array not deep-copied")
	}
	if cl.AsArr()[1].AsBytes()[0] != 9 {
		t.Error("bytes not deep-copied")
	}
	if cl.AsArr()[2].AsMat().Data[0] != 0 {
		t.Error("matrix not deep-copied")
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"int==int", Int(3), Int(3), true},
		{"int!=int", Int(3), Int(4), false},
		{"int==num", Int(3), Num(3.0), true},
		{"num!=int", Num(3.5), Int(3), false},
		{"nil==nil", Nil(), Nil(), true},
		{"nil!=int", Nil(), Int(0), false},
		{"str==str", Str("a"), Str("a"), true},
		{"str!=str", Str("a"), Str("b"), false},
		{"bytes==", Bytes([]byte{1, 2}), Bytes([]byte{1, 2}), true},
		{"bytes!=", Bytes([]byte{1, 2}), Bytes([]byte{1, 3}), false},
		{"bytes len", Bytes([]byte{1}), Bytes([]byte{1, 2}), false},
		{"arr==", Arr([]Value{Int(1), Str("x")}), Arr([]Value{Int(1), Str("x")}), true},
		{"arr!=", Arr([]Value{Int(1)}), Arr([]Value{Int(2)}), false},
		{"str!=int", Str("1"), Int(1), false},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%s: Equal = %v, want %v", tt.name, got, tt.want)
		}
	}

	m1, m2 := NewMat(2, 2), NewMat(2, 2)
	if !Matrix(m1).Equal(Matrix(m2)) {
		t.Error("equal matrices should be Equal")
	}
	m2.Data[3] = 1
	if Matrix(m1).Equal(Matrix(m2)) {
		t.Error("different matrices should not be Equal")
	}
	if Matrix(m1).Equal(Matrix(NewMat(1, 4))) {
		t.Error("different shapes should not be Equal")
	}
}

func TestCompare(t *testing.T) {
	if c, ok := Int(1).Compare(Num(2)); !ok || c != -1 {
		t.Errorf("1 vs 2: %d %v", c, ok)
	}
	if c, ok := Num(2).Compare(Int(2)); !ok || c != 0 {
		t.Errorf("2 vs 2: %d %v", c, ok)
	}
	if c, ok := Str("b").Compare(Str("a")); !ok || c != 1 {
		t.Errorf("b vs a: %d %v", c, ok)
	}
	if _, ok := Str("a").Compare(Int(1)); ok {
		t.Error("str vs int should not compare")
	}
	if _, ok := Arr(nil).Compare(Arr(nil)); ok {
		t.Error("arrays should not compare")
	}
}

func TestFormat(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Nil(), "nil"},
		{Int(-7), "-7"},
		{Num(2.0), "2.0"},
		{Num(2.5), "2.5"},
		{Str("hey"), "hey"},
		{Bytes(make([]byte, 3)), "bytes[3]"},
		{Arr([]Value{Int(1), Str("a")}), "[1, a]"},
		{Matrix(NewMat(2, 3)), "matrix(2x3)"},
		{Matrix(nil), "matrix(nil)"},
	}
	for _, tt := range tests {
		if got := tt.v.Format(); got != tt.want {
			t.Errorf("Format(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
	if got := Str("q").String(); got != `"q"` {
		t.Errorf("String() = %q", got)
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	vals := []Value{
		Nil(), Int(5), Num(math.Pi), Str("hello"), Bytes([]byte{1, 2, 3}),
		Arr([]Value{Int(1), Str("x"), Arr([]Value{Num(2)})}),
		Matrix(&Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}),
	}
	for _, v := range vals {
		enc, err := Append(nil, v)
		if err != nil {
			t.Fatalf("Append(%v): %v", v, err)
		}
		if got := v.WireSize(); got != len(enc) {
			t.Errorf("WireSize(%v) = %d, encoded len = %d", v, got, len(enc))
		}
	}
}
