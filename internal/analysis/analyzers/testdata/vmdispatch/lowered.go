// Package vmdispatchtest is analyzed under messengers/internal/transport —
// outside the two packages allowed to touch the lowered instruction stream —
// so every reference to the lowered API must be flagged.
package vmdispatchtest

import (
	"messengers/internal/bytecode"
)

// stableSurface exercises the serialized Program/Instr API, which any
// package may use: nothing here is flagged.
func stableSurface(p *bytecode.Program) int {
	n := 0
	for i := range p.Funcs {
		n += len(p.Funcs[i].Code)
	}
	return n + int(p.Hash()[0])
}

// leakType reaches for the derived instruction record.
func leakType(p *bytecode.Program) []bytecode.DInstr { // want "lowered-instruction internal bytecode.DInstr"
	return nil
}

// leakMethod calls the lowering entry point.
func leakMethod(p *bytecode.Program) {
	low := p.Lowered(1) // want "lowered-instruction internal bytecode.Lowered"
	_ = low
}

// leakConst references a DOp constant; these are matched by their type, not
// by a name list, so new superinstructions stay covered.
func leakConst() int {
	return int(bytecode.DEnd) // want "lowered-instruction internal bytecode.DEnd"
}

// suppressed shows the escape hatch: a tool that legitimately inspects the
// lowered form (a disassembler, a profiler) can justify itself inline.
func suppressed() int {
	//lint:vmdispatch imaginary disassembler output, reviewed layering exception
	return int(bytecode.NumDOps)
}
