package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func TestEncoderPrimitives(t *testing.T) {
	e := NewEncoder()
	defer e.Release()
	e.U8(7)
	e.U16(0x1234)
	e.U32(0xdeadbeef)
	e.U64(1 << 40)
	e.F64(2.5)
	e.Str("hi")
	e.Blob([]byte{1, 2, 3})
	e.Raw([]byte{9})
	if e.Err() != nil {
		t.Fatalf("unexpected encoder error: %v", e.Err())
	}
	var want []byte
	want = append(want, 7)
	want = binary.LittleEndian.AppendUint16(want, 0x1234)
	want = binary.LittleEndian.AppendUint32(want, 0xdeadbeef)
	want = binary.LittleEndian.AppendUint64(want, 1<<40)
	want = binary.LittleEndian.AppendUint64(want, math.Float64bits(2.5))
	want = binary.LittleEndian.AppendUint32(want, 2)
	want = append(want, "hi"...)
	want = binary.LittleEndian.AppendUint32(want, 3)
	want = append(want, 1, 2, 3)
	want = append(want, 9)
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("encoding mismatch:\n got %x\nwant %x", e.Bytes(), want)
	}
	if e.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", e.Len(), len(want))
	}
}

func TestEncoderStickyError(t *testing.T) {
	e := AppendingTo(nil)
	e.U8(1)
	// MaxLen guard must reject without appending, and later writes must be
	// no-ops. Build an oversized string header-only check via a fake length:
	// constructing a real >1GiB string is too expensive, so use Fail.
	e.Fail(errFake)
	e.U32(42)
	e.Str("x")
	if e.Err() != errFake {
		t.Fatalf("Err = %v, want sticky first error", e.Err())
	}
	if e.Len() != 1 {
		t.Fatalf("writes after error extended the buffer to %d bytes", e.Len())
	}
}

var errFake = errString("fake")

type errString string

func (e errString) Error() string { return string(e) }

func TestEncoderReservePatch(t *testing.T) {
	e := NewEncoder()
	defer e.Release()
	off := e.Reserve(4)
	e.Str("payload")
	e.PatchU32(off, uint32(e.Len()))
	got := binary.LittleEndian.Uint32(e.Bytes()[off:])
	if int(got) != e.Len() {
		t.Fatalf("patched %d, want %d", got, e.Len())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	e := NewEncoder()
	defer e.Release()
	off := e.BeginFrame()
	e.Str("hello frame")
	if err := e.EndFrame(off); err != nil {
		t.Fatal(err)
	}
	hdr := e.Bytes()[:FrameHeaderLen]
	n, err := ParseFrameHeader(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if n != e.Len()-FrameHeaderLen {
		t.Fatalf("payload length %d, want %d", n, e.Len()-FrameHeaderLen)
	}
}

func TestParseFrameHeaderRejects(t *testing.T) {
	if _, err := ParseFrameHeader([]byte{1, 2, 3}); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, FrameHeaderLen)
	binary.LittleEndian.PutUint16(bad, 0x7777)
	if _, err := ParseFrameHeader(bad); err == nil {
		t.Error("bad magic accepted")
	}
	huge := make([]byte, FrameHeaderLen)
	binary.LittleEndian.PutUint16(huge, FrameMagic)
	binary.LittleEndian.PutUint32(huge[4:], MaxFrame+1)
	if _, err := ParseFrameHeader(huge); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestPoolReuse(t *testing.T) {
	before := ReadStats()
	e := NewEncoder()
	e.Str(strings.Repeat("x", 100))
	e.Release()
	// A second encoder should (usually) reuse the same buffer; at minimum
	// the counters must have moved.
	e2 := NewEncoder()
	e2.U8(1)
	e2.Release()
	after := ReadStats()
	if after.PoolGets < before.PoolGets+2 {
		t.Errorf("PoolGets did not advance: %+v -> %+v", before, after)
	}
	if after.BytesEncoded <= before.BytesEncoded {
		t.Errorf("BytesEncoded did not advance: %+v -> %+v", before, after)
	}
}

func TestDetachKeepsBytes(t *testing.T) {
	e := NewEncoder()
	e.Str("keep me")
	b := e.Detach()
	// The detached slice is caller-owned: a new encoder must not clobber it.
	e2 := NewEncoder()
	e2.Str("other data that is longer than the first")
	got := string(b[4:])
	e2.Release()
	if got != "keep me" {
		t.Fatalf("detached bytes clobbered: %q", got)
	}
}

func TestGetPutBuf(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf returned %d bytes", len(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	// Oversized buffers must be dropped, not pooled.
	PutBuf(make([]byte, 0, maxPooledCap+1))
}
