package protocols

import (
	"testing"
)

// The sim-engine chaos acceptance: every protocol, both implementations,
// every fault-injecting nemesis, a seed spread — zero safety violations,
// and a decision everywhere the nemesis doesn't excuse one.

func chaosSeeds(t *testing.T) []uint64 {
	n := 8
	if testing.Short() {
		n = 3
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

func TestChaosSweepSim(t *testing.T) {
	results, err := Sweep(SweepConfig{
		Engine:    EngineSim,
		Protocols: Protocols,
		Impls:     Impls,
		Nemeses:   ChaosNemeses,
		Seeds:     chaosSeeds(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Failed() {
			t.Errorf("%s/%s/%s seed %d: decided=%v (expected %v) err=%q violations=%+v",
				res.Config.Protocol, res.Config.Impl, res.Config.Nemesis, res.Config.Seed,
				res.Decided, res.Expected, res.Err, res.Violations)
		}
	}
}

// A sim run is a pure function of its config: same seed, same events.
func TestChaosRunDeterministic(t *testing.T) {
	cfg := RunConfig{
		Protocol: ProtoPaxos, Impl: ImplMessengers, Engine: EngineSim,
		Nemesis: NemesisDrop, Seed: 5,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Rounds != b.Rounds || a.Cost != b.Cost || a.Decided != b.Decided {
		t.Errorf("replay diverged:\n  a=%+v\n  b=%+v", a, b)
	}
	cfg.Impl = ImplPVM
	a, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.Rounds != b.Rounds || a.Cost != b.Cost || a.Decided != b.Decided {
		t.Errorf("pvm replay diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}
