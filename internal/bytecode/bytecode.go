// Package bytecode defines the instruction set and program representation
// that MSL scripts compile to.
//
// The paper (§2.1) compiles Messenger scripts "into a form of byte code for
// more efficient transport and parsing". A Program here is the unit stored
// in the daemons' shared script registry: because the paper's system relies
// on a shared file system, Messengers do not carry their code between nodes
// — only a content hash travels with the Messenger, and the receiving daemon
// loads the Program from the registry (or requests it once and caches it).
package bytecode

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"messengers/internal/value"
)

// Op is an opcode.
type Op uint8

// The instruction set. Stack effects are noted as (pops -> pushes).
const (
	OpNop Op = iota
	// OpConst pushes Consts[A]. (0 -> 1)
	OpConst
	// OpLoadM pushes Messenger variable Names[A] (nil if unset). (0 -> 1)
	OpLoadM
	// OpStoreM pops into Messenger variable Names[A]. (1 -> 0)
	OpStoreM
	// OpLoadN pushes node variable Names[A] of the current logical node.
	OpLoadN
	// OpStoreN pops into node variable Names[A].
	OpStoreN
	// OpLoadNet pushes network variable Names[A] ($address, $last, ...).
	OpLoadNet
	// OpLoadL pushes local slot A of the current frame.
	OpLoadL
	// OpStoreL pops into local slot A.
	OpStoreL
	// OpPop discards the top of stack. (1 -> 0)
	OpPop
	// OpDup duplicates the top of stack. (1 -> 2)
	OpDup
	// OpDup2 duplicates the top two stack values. (2 -> 4)
	OpDup2

	// Arithmetic and logic. (2 -> 1) except OpNeg/OpNot (1 -> 1).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// OpJmp jumps to code index A.
	OpJmp
	// OpJz pops and jumps to A when falsy. (1 -> 0)
	OpJz

	// OpIndex pops index then base, pushes base[index]. (2 -> 1)
	OpIndex
	// OpSetIndex pops value, index, base (value on top) and performs
	// base[index] = value in place. When B != 0 the value is pushed back
	// (assignment-as-expression). (3 -> 0 or 1)
	OpSetIndex
	// OpArr pops A elements and pushes an array of them. (A -> 1)
	OpArr

	// OpCallFunc calls script function Funcs[A] with B arguments on the
	// stack. The callee pushes its return value.
	OpCallFunc
	// OpRet pops the return value and returns from the current frame; in
	// the main body it terminates the Messenger.
	OpRet
	// OpCallNative pauses the VM to invoke builtin or registered native
	// function Names[A] with B stack arguments; the daemon pushes the
	// result and resumes. (B -> 1)
	OpCallNative

	// OpHop pauses with a hop request of A destination arms; 3 values
	// (ln, ll, ldir) were pushed per arm. The Messenger is replicated to
	// every matching destination and this VM instance ceases to exist.
	OpHop
	// OpCreate pauses with a create request of A arms (6 values each:
	// ln, ll, ldir, dn, dl, ddir); B!=0 means ALL.
	OpCreate
	// OpDelete is OpHop that also deletes traversed links.
	OpDelete

	// OpSchedAbs pops an absolute virtual time and suspends the Messenger
	// until the global virtual time reaches it (M_sched_time_abs).
	OpSchedAbs
	// OpSchedDlt pops a delta and suspends for that virtual-time interval
	// (M_sched_time_dlt).
	OpSchedDlt

	// OpEnd terminates the Messenger.
	OpEnd

	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpLoadM: "loadm", OpStoreM: "storem",
	OpLoadN: "loadn", OpStoreN: "storen", OpLoadNet: "loadnet",
	OpLoadL: "loadl", OpStoreL: "storel", OpPop: "pop", OpDup: "dup",
	OpDup2: "dup2",
	OpAdd:  "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpNot: "not", OpEq: "eq", OpNe: "ne", OpLt: "lt",
	OpLe: "le", OpGt: "gt", OpGe: "ge", OpJmp: "jmp", OpJz: "jz",
	OpIndex: "index", OpSetIndex: "setindex", OpArr: "arr",
	OpCallFunc: "callf", OpRet: "ret", OpCallNative: "calln",
	OpHop: "hop", OpCreate: "create", OpDelete: "delete",
	OpSchedAbs: "schedabs", OpSchedDlt: "scheddlt", OpEnd: "end",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one fixed-shape instruction.
type Instr struct {
	Op   Op
	A, B int32
}

// FuncInfo is one compiled function. Funcs[0] is the script's main body.
type FuncInfo struct {
	Name      string
	NumParams int
	NumLocals int // including parameters
	Code      []Instr
}

// Program is a compiled MSL script.
type Program struct {
	// Name is the registry name the script was compiled under.
	Name string
	// Source preserves the script text for tooling and the style metrics
	// (T3); it is not shipped on hops.
	Source string
	Consts []value.Value
	Names  []string
	Funcs  []FuncInfo

	// meta and verified are produced by Validate (see verify.go). They are
	// derived facts, deliberately excluded from Encode/Hash: a program
	// arriving over the wire is re-verified locally, never trusted.
	meta     []funcMeta
	verified bool

	// Messenger-variable slot table for the kind analysis (kinds.go):
	// every name the program loads or stores, in first-reference order,
	// with a bit marking names that are ever stored. Derived like meta.
	mvarNames  []string
	mvarIdx    map[string]int
	mvarStored []bool

	// lowerCaches holds the lazily built direct instruction streams
	// (see lower.go); derived like meta, reset by Validate.
	lowerCaches
}

// Hash returns the content hash identifying this program in the shared
// script registry (what travels with a Messenger instead of its code).
type Hash [16]byte

// String renders the hash in hex.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:]) }

// Hash computes the program's content hash over its encoded form
// (excluding Source, so formatting changes to comments do not matter... the
// encoded form includes code, consts, and names only).
func (p *Program) Hash() Hash {
	sum := sha256.Sum256(p.encodeForHash())
	var h Hash
	copy(h[:], sum[:16])
	return h
}

func (p *Program) encodeForHash() []byte {
	var buf []byte
	buf = appendString(buf, p.Name)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Consts)))
	for _, c := range p.Consts {
		// Constants come from script literals (or a decoded program, whose
		// codec enforces the same bound), so they can never exceed the
		// encoder's length limit.
		buf, _ = value.Append(buf, c)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Names)))
	for _, n := range p.Names {
		buf = appendString(buf, n)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Funcs)))
	for i := range p.Funcs {
		f := &p.Funcs[i]
		buf = appendString(buf, f.Name)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.NumParams))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.NumLocals))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Code)))
		for _, ins := range f.Code {
			buf = append(buf, byte(ins.Op))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ins.A))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ins.B))
		}
	}
	return buf
}

// Encode serializes the program (including source) for the wire or disk.
func (p *Program) Encode() []byte {
	buf := p.encodeForHash()
	buf = appendString(buf, p.Source)
	return buf
}

// WireSize is the encoded size, used to charge transfer costs when code
// caching is disabled (ablation A4).
func (p *Program) WireSize() int { return len(p.encodeForHash()) }

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) u32() (uint32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, fmt.Errorf("bytecode: truncated program")
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(r.buf)-r.pos {
		return "", fmt.Errorf("bytecode: truncated string")
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// Decode deserializes a program produced by Encode.
func Decode(buf []byte) (*Program, error) {
	r := &reader{buf: buf}
	p := &Program{}
	var err error
	if p.Name, err = r.str(); err != nil {
		return nil, err
	}
	nc, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(nc) > len(r.buf)-r.pos {
		return nil, fmt.Errorf("bytecode: constant count %d exceeds buffer", nc)
	}
	p.Consts = make([]value.Value, nc)
	for i := range p.Consts {
		v, n, err := value.Decode(r.buf[r.pos:])
		if err != nil {
			return nil, fmt.Errorf("bytecode: const %d: %w", i, err)
		}
		p.Consts[i] = v
		r.pos += n
	}
	nn, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(nn) > (len(r.buf)-r.pos)/4 {
		return nil, fmt.Errorf("bytecode: name count %d exceeds buffer", nn)
	}
	p.Names = make([]string, nn)
	for i := range p.Names {
		if p.Names[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	nf, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(nf) > (len(r.buf)-r.pos)/16 {
		return nil, fmt.Errorf("bytecode: function count %d exceeds buffer", nf)
	}
	p.Funcs = make([]FuncInfo, nf)
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Name, err = r.str(); err != nil {
			return nil, err
		}
		np, err := r.u32()
		if err != nil {
			return nil, err
		}
		nl, err := r.u32()
		if err != nil {
			return nil, err
		}
		f.NumParams, f.NumLocals = int(np), int(nl)
		ni, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(ni) > (len(r.buf)-r.pos)/9 {
			return nil, fmt.Errorf("bytecode: truncated code for %q", f.Name)
		}
		f.Code = make([]Instr, ni)
		for j := range f.Code {
			op := Op(r.buf[r.pos])
			r.pos++
			a, err := r.u32()
			if err != nil {
				return nil, err
			}
			b, err := r.u32()
			if err != nil {
				return nil, err
			}
			if op >= numOps {
				return nil, fmt.Errorf("bytecode: unknown opcode %d in %q", op, f.Name)
			}
			f.Code[j] = Instr{Op: op, A: int32(a), B: int32(b)}
		}
	}
	if p.Source, err = r.str(); err != nil {
		// Source is optional for older encodings; tolerate absence.
		p.Source = ""
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Func returns function i, panicking on a bad index (compiler bug).
func (p *Program) Func(i int) *FuncInfo {
	return &p.Funcs[i]
}

// FindFunc returns the index of the named function, or -1.
func (p *Program) FindFunc(name string) int {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return i
		}
	}
	return -1
}
