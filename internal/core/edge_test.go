package core

import (
	"strings"
	"testing"

	"messengers/internal/bytecode"
	"messengers/internal/logical"
	"messengers/internal/value"
)

// TestCreateRoundRobinChoice: create without ALL picks one matching daemon
// by deterministic round-robin, spreading successive creates.
func TestCreateRoundRobinChoice(t *testing.T) {
	k, sys := simSystem(t, 4)
	register(t, sys, "spawner", `
		for (i = 0; i < 6; i++) {
			create(ln = "site"; ll = "road");
			hop(ll = "road"); // back to init
		}
	`)
	if err := sys.Inject(0, "spawner", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	// Six creates over three neighbors: each gets exactly two.
	for d := 1; d < 4; d++ {
		if got := len(sys.Daemon(d).Store().FindByName("site")); got != 2 {
			t.Errorf("daemon %d has %d sites, want 2 (round-robin)", d, got)
		}
	}
}

func TestHandleUnknownMessageKind(t *testing.T) {
	_, sys := simSystem(t, 1)
	sys.Daemon(0).HandleMsg(&Msg{Kind: MsgKind(99)})
	if errs := sys.Errors(); len(errs) != 1 || !strings.Contains(errs[0].Error(), "unknown message kind") {
		t.Errorf("errors = %v", errs)
	}
}

func TestArrivalWithUnknownProgram(t *testing.T) {
	_, sys := simSystem(t, 1)
	d := sys.Daemon(0)
	sys.workAdded(1)
	d.HandleMsg(&Msg{Kind: MsgMessenger, ProgHash: bytecode.Hash{1, 2, 3}, DestNode: d.Store().Init().ID})
	if errs := sys.Errors(); len(errs) != 1 || !strings.Contains(errs[0].Error(), "not in registry") {
		t.Errorf("errors = %v", errs)
	}
	if sys.Live() != 0 {
		t.Errorf("live = %d", sys.Live())
	}
}

func TestCorruptProgramBroadcast(t *testing.T) {
	_, sys := simSystem(t, 1)
	sys.Daemon(0).HandleMsg(&Msg{Kind: MsgProgram, ProgBytes: []byte("junk")})
	if errs := sys.Errors(); len(errs) != 1 || !strings.Contains(errs[0].Error(), "bad program broadcast") {
		t.Errorf("errors = %v", errs)
	}
}

func TestCreateAckForVanishedNodeIsIgnored(t *testing.T) {
	_, sys := simSystem(t, 1)
	// An ack referencing a node that no longer exists must be a no-op.
	sys.Daemon(0).HandleMsg(&Msg{
		Kind:   MsgCreateAck,
		Origin: logical.Addr{Daemon: 0, Node: 999},
		LinkID: logical.LinkID{Daemon: 0, Seq: 5},
	})
	if errs := sys.Errors(); len(errs) != 0 {
		t.Errorf("errors = %v", errs)
	}
}

func TestMessengerDiesWhenDestNodeDeleted(t *testing.T) {
	// A Messenger in flight toward a node that gets deleted before
	// arrival dies cleanly (the logical network changed under it).
	k, sys := simSystem(t, 2)
	spec := NetSpec{
		Nodes: []NetNode{{Name: "a", Daemon: 0}, {Name: "b", Daemon: 1}, {Name: "c", Daemon: 1}},
		Links: []NetLink{
			{A: "a", B: "b", Name: "go"},
			{A: "b", B: "c", Name: "tail"},
		},
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	// slow traveler: heads for b after a long compute.
	sys.RegisterNative("burn", func(ctx *NativeCtx, _ []value.Value) (value.Value, error) {
		ctx.Charge(100 * 1000 * 1000) // 100ms
		return value.Nil(), nil
	})
	register(t, sys, "traveler", `
		x = burn();
		hop(ll = "go");
		node.reached = 1;
	`)
	// demolisher: removes b (deletes both its links so it becomes a
	// singleton) before the traveler's hop lands.
	register(t, sys, "demolisher", `
		delete(ll = "tail");
	`)
	if err := sys.InjectAt(0, "traveler", "a", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectAt(1, "demolisher", "b", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	// b lost "tail"; the demolisher moved to c which became a singleton
	// and was removed... verify no crash and consistent liveness either
	// way; the traveler may or may not find b depending on timing, but
	// nothing may error.
	if sys.Live() != 0 {
		t.Errorf("live = %d", sys.Live())
	}
}

func TestStatsAccounting(t *testing.T) {
	k, sys := simSystem(t, 3)
	register(t, sys, "acct", `
		create(ALL);
		hop(ll = $last);
		hop(ll = $last);
	`)
	if err := sys.Inject(0, "acct", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	st := sys.TotalStats()
	if st.Creates != 2 {
		t.Errorf("creates = %d", st.Creates)
	}
	// Two replicas, two hops each: 4 remote hops, 4 arrivals + 2 create
	// transfers.
	if st.RemoteHops != 4 {
		t.Errorf("remote hops = %d", st.RemoteHops)
	}
	if st.Arrived != 6 {
		t.Errorf("arrived = %d", st.Arrived)
	}
	if st.Finished != 2 || st.Segments == 0 || st.Steps == 0 {
		t.Errorf("stats = %+v", st)
	}
	if sys.Daemon(1).ID() != 1 {
		t.Error("ID accessor")
	}
	if sys.Daemon(0).GVT() != 0 {
		t.Error("GVT accessor")
	}
	if sys.Engine() == nil || sys.NumDaemons() != 3 {
		t.Error("system accessors")
	}
	if _, ok := sys.Program("acct"); !ok {
		t.Error("Program accessor")
	}
}
