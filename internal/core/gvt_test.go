package core

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"messengers/internal/value"
)

// TestGVTOrdersEventsAcrossDaemons injects Messengers on different daemons
// that wake at interleaved virtual times; the global print order must follow
// virtual time even though the daemons are independent.
func TestGVTOrdersEventsAcrossDaemons(t *testing.T) {
	k, sys := simSystem(t, 3)
	register(t, sys, "waker", `
		sched_abs(when);
		print("wake", when, "on", $address);
	`)
	// Inject in an order unrelated to wake times.
	wakes := []struct {
		daemon int
		when   float64
	}{
		{2, 3.0}, {0, 1.0}, {1, 2.0}, {1, 0.5}, {0, 2.5},
	}
	for _, w := range wakes {
		err := sys.Inject(w.daemon, "waker", map[string]value.Value{"when": value.Num(w.when)})
		if err != nil {
			t.Fatal(err)
		}
	}
	runSim(t, k, sys)
	out := sys.Output()
	if len(out) != len(wakes) {
		t.Fatalf("output = %v", out)
	}
	var prev float64
	for i, line := range out {
		fields := strings.Fields(line)
		when, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if when < prev {
			t.Errorf("line %d (%q) out of virtual-time order", i, line)
		}
		prev = when
	}
	if st := sys.TotalStats(); st.Suspends != int64(len(wakes)) {
		t.Errorf("suspends = %d", st.Suspends)
	}
	if sys.Daemon(0).Stats.GVTRounds == 0 {
		t.Error("no GVT rounds ran")
	}
}

// TestGVTAlternation reproduces the matmul coordination pattern: one set of
// Messengers wakes at integer ticks, another at half ticks, and they must
// strictly alternate.
func TestGVTAlternation(t *testing.T) {
	k, sys := simSystem(t, 2)
	register(t, sys, "full", `
		for (k = 0; k < 3; k++) {
			sched_abs(k);
			print("A", k);
		}
	`)
	// sched_dlt accumulates from the Messenger's LVT, so the paper's
	// "wake at every half tick 0.5 + k" is written as an absolute
	// schedule (a repeated dlt of 0.5 would land on integer ticks and tie
	// with the full-tick set).
	register(t, sys, "half", `
		for (k = 0; k < 3; k++) {
			sched_abs(k + 0.5);
			print("B", k);
		}
	`)
	if err := sys.Inject(0, "full", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(1, "half", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	got := strings.Join(sys.Output(), " ")
	want := "A 0 B 0 A 1 B 1 A 2 B 2"
	if got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

// TestGVTWithHopsBetweenEpochs checks the conservative property that a
// Messenger sent during epoch t is processed before any epoch t' > t starts:
// a sender deposits into a remote node at time k, a reader on that node
// wakes at k+0.5 and must see the deposit.
func TestGVTWithHopsBetweenEpochs(t *testing.T) {
	k, sys := simSystem(t, 2)
	spec := NetSpec{
		Nodes: []NetNode{{Name: "src", Daemon: 0}, {Name: "dst", Daemon: 1}},
		Links: []NetLink{{A: "src", B: "dst", Name: "wire"}},
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "sender", `
		for (k = 0; k < 4; k++) {
			sched_abs(k);
			msgr.payload = k + 1;
			hop(ll = "wire");
			node.box = msgr.payload;
			hop(ll = "wire");
		}
	`)
	register(t, sys, "reader", `
		for (k = 0; k < 4; k++) {
			sched_abs(k + 0.5);
			print("read", node.box);
		}
	`)
	if err := sys.InjectAt(0, "sender", "src", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectAt(1, "reader", "dst", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	got := strings.Join(sys.Output(), ", ")
	want := "read 1, read 2, read 3, read 4"
	if got != want {
		t.Errorf("reads = %q, want %q (conservative ordering violated)", got, want)
	}
}

func TestSchedInThePastContinuesImmediately(t *testing.T) {
	k, sys := simSystem(t, 1)
	register(t, sys, "past", `
		sched_abs(0);   // GVT is already 0
		print("t", $time);
	`)
	if err := sys.Inject(0, "past", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if out := sys.Output(); len(out) != 1 || out[0] != "t 0.0" {
		t.Errorf("output = %v", out)
	}
	if st := sys.TotalStats(); st.Suspends != 0 {
		t.Errorf("suspends = %d, want 0", st.Suspends)
	}
}

func TestNetworkVariables(t *testing.T) {
	k, sys := simSystem(t, 3)
	register(t, sys, "net", `
		print($address, $daemon, $ndaemons, $node, $gvt);
	`)
	if err := sys.Inject(2, "net", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if out := sys.Output(); len(out) != 1 || out[0] != "d2 2 3 init 0.0" {
		t.Errorf("output = %v", out)
	}
}

func TestGVTManyEpochsConverge(t *testing.T) {
	// Stress: 4 daemons x 3 Messengers each, 20 epochs of mixed abs/dlt
	// scheduling; everything must terminate and stay ordered.
	k, sys := simSystem(t, 4)
	register(t, sys, "stress", `
		for (k = 0; k < 20; k++) {
			sched_dlt(step);
			node.progress = node.progress + 1;
		}
	`)
	for d := 0; d < 4; d++ {
		for j := 0; j < 3; j++ {
			step := 0.25 * float64(j+1)
			err := sys.Inject(d, "stress", map[string]value.Value{"step": value.Num(step)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	runSim(t, k, sys)
	total := int64(0)
	for d := 0; d < 4; d++ {
		total += sys.Daemon(d).Store().Init().Vars["progress"].AsInt()
	}
	if total != 4*3*20 {
		t.Errorf("progress = %d, want %d", total, 4*3*20)
	}
}

func TestMsgEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{
			Kind: MsgMessenger, From: 3, Snapshot: []byte{1, 2, 3}, MsgrID: 42,
			LVT: 1.5, DestNode: 7, Last: "row",
		},
		{
			Kind: MsgCreate, From: 1, CreateName: "worker", LinkName: "corridor",
			LinkDir: 2, OriginName: "init", Snapshot: []byte{9},
		},
		{Kind: MsgGVTReport, From: 2, GEpoch: 5, GMin: 2.5, GSent: 10, GRecv: 9, GActive: 3},
		{Kind: MsgProgram, ProgBytes: []byte("prog")},
		{Kind: MsgHalt},
	}
	for _, m := range msgs {
		enc := m.Encode()
		dec, err := DecodeMsg(enc)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if fmt.Sprintf("%+v", dec) != fmt.Sprintf("%+v", m) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", dec, m)
		}
	}
	if _, err := DecodeMsg([]byte{1, 2}); err == nil {
		t.Error("truncated message should fail")
	}
}

func TestMsgWireSizeByKind(t *testing.T) {
	big := &Msg{Kind: MsgMessenger, Snapshot: make([]byte, 1000)}
	small := &Msg{Kind: MsgGVTQuery}
	if big.WireSize() <= small.WireSize() {
		t.Error("messenger transfer should be larger than control message")
	}
	if !big.CarriesMessenger() || small.CarriesMessenger() {
		t.Error("CarriesMessenger misclassifies")
	}
}

func TestTopologies(t *testing.T) {
	full := FullMesh(4)
	if got := full.MatchDaemons(0, value.Str("*"), value.Str("*"), value.Str("*")); len(got) != 3 {
		t.Errorf("full mesh neighbors = %v", got)
	}
	// Named daemon.
	if got := full.MatchDaemons(0, value.Str("d2"), value.Str("*"), value.Str("*")); len(got) != 1 || got[0] != 2 {
		t.Errorf("dn=d2 -> %v", got)
	}
	// Numeric daemon id.
	if got := full.MatchDaemons(0, value.Int(3), value.Str("*"), value.Str("*")); len(got) != 1 || got[0] != 3 {
		t.Errorf("dn=3 -> %v", got)
	}

	ring := Ring(4)
	fwd := ring.MatchDaemons(1, value.Str("*"), value.Str("ring"), value.Str("+"))
	if len(fwd) != 1 || fwd[0] != 2 {
		t.Errorf("ring forward from 1 = %v", fwd)
	}
	back := ring.MatchDaemons(1, value.Str("*"), value.Str("ring"), value.Str("-"))
	if len(back) != 1 || back[0] != 0 {
		t.Errorf("ring backward from 1 = %v", back)
	}

	grid := Grid(2, 3)
	if grid.NumDaemons() != 6 {
		t.Errorf("grid daemons = %d", grid.NumDaemons())
	}
	// Daemon (0,1) = 1 has east, west, and south neighbors.
	if got := grid.MatchDaemons(1, value.Str("*"), value.Str("*"), value.Str("*")); len(got) != 3 {
		t.Errorf("grid neighbors of 1 = %v", got)
	}
	if got := grid.MatchDaemons(1, value.Str("*"), value.Str("ns"), value.Str("*")); len(got) != 1 || got[0] != 4 {
		t.Errorf("grid ns from 1 = %v", got)
	}

	star := Star(5)
	if got := star.MatchDaemons(0, value.Str("*"), value.Str("*"), value.Str("*")); len(got) != 4 {
		t.Errorf("star hub neighbors = %v", got)
	}
	if got := star.MatchDaemons(2, value.Str("*"), value.Str("*"), value.Str("*")); len(got) != 1 || got[0] != 0 {
		t.Errorf("star spoke neighbors = %v", got)
	}
}

func TestTopologyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopology(0) should panic")
		}
	}()
	NewTopology(0)
}

func TestDaemonNames(t *testing.T) {
	if DaemonName(7) != "d7" {
		t.Errorf("DaemonName = %q", DaemonName(7))
	}
}
