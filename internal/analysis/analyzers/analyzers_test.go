package analyzers_test

import (
	"testing"

	"messengers/internal/analysis/analysistest"
	"messengers/internal/analysis/analyzers"
)

// Each analyzer runs over a testdata package that poses as a real package
// path, with expectations written as // want comments next to the seeded
// violations (and //lint: suppressions proving the escape hatch works).

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/simdeterminism", "messengers/internal/sim",
		analyzers.SimDeterminism)
}

func TestSimDeterminismSkipsNonDetPackages(t *testing.T) {
	// The same file analyzed under a transport path reports nothing: the
	// TCP engine is allowed wall clocks. No // want expectations fire
	// because the analyzer never runs its body.
	analysistest.Run(t, "testdata/nondet", "messengers/internal/transport",
		analyzers.SimDeterminism)
}

func TestStickyErr(t *testing.T) {
	analysistest.Run(t, "testdata/stickyerr", "messengers/internal/stickytest",
		analyzers.StickyErr)
}

func TestObsNames(t *testing.T) {
	analysistest.Run(t, "testdata/obsnames", "messengers/internal/obstest",
		analyzers.ObsNames)
}

func TestLockHold(t *testing.T) {
	analysistest.Run(t, "testdata/lockhold", "messengers/internal/core",
		analyzers.LockHold)
}

func TestKindSwitch(t *testing.T) {
	// Analyzed as internal/vm, inside the proof-chain scope: partial
	// switches over value.Kind fire, defaults and suppressions do not.
	analysistest.Run(t, "testdata/kindswitch", "messengers/internal/vm",
		analyzers.KindSwitch)
}

func TestKindSwitchSkipsOutsidePackages(t *testing.T) {
	// The same file under a transport path reports nothing: packages off
	// the proof chain may dispatch on whatever subset they need.
	analysistest.Run(t, "testdata/kindswitchskip", "messengers/internal/transport",
		analyzers.KindSwitch)
}

func TestVMDispatchConfinement(t *testing.T) {
	// Analyzed as a transport package, every lowered-API reference fires.
	analysistest.Run(t, "testdata/vmdispatch", "messengers/internal/transport",
		analyzers.VMDispatch)
}

func TestVMDispatchHandlerCaptures(t *testing.T) {
	// Analyzed as internal/vm itself: the lowered API is allowed, but
	// registration loops must not capture loop variables in handlers.
	analysistest.Run(t, "testdata/vmdispatchvm", "messengers/internal/vm",
		analyzers.VMDispatch)
}
