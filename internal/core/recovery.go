package core

// Messenger-level fault recovery (WithRecovery): hop-level acknowledgement
// with timeout and exponential-backoff retransmission, duplicate suppression
// keyed by (sender, MsgrID, HopSeq), and logical-network healing on daemon
// death — orphaned nodes are adopted by the surviving daemon that linked to
// them, and in-flight Messengers respawn from their last transmitted
// snapshot. The snapshot is the checkpoint: the paper's own migration
// mechanism doubles as the recovery mechanism.
//
// Everything here is opt-in. With recovery off, no field below is allocated,
// no timer is armed, and both engines behave byte-identically to before —
// the committed experiment figures depend on that.
//
// Liveness accounting transfers the in-flight slot explicitly: a reliable
// Messenger send leaves its slot in the retained entry; the receiver adds a
// fresh slot on (non-duplicate) arrival; the first ack releases the entry's.
// A crashed daemon releases the slots of its resident Messengers and of its
// unacknowledged outbound entries; respawning an entry reuses its slot when
// unacked and adds a fresh one when acknowledged (the receiver's copy of
// the slot died with the receiver).
//
// Delivery is at-least-once: a respawned Messenger re-executes from its
// last transmitted snapshot even if the dead daemon had already run part of
// its continuation. Applications that must survive daemon deaths should
// make their natives idempotent (see docs/FAULTS.md).

import (
	"fmt"
	"sort"
	"time"

	"messengers/internal/backoff"
	"messengers/internal/logical"
	"messengers/internal/obs"
	"messengers/internal/sim"
)

// RecoveryConfig tunes messenger-level fault recovery.
type RecoveryConfig struct {
	// AckTimeout is the initial retransmission timeout for an
	// unacknowledged reliable message; it doubles on every attempt with
	// per-entry jitter (see internal/backoff).
	AckTimeout sim.Time
	// MaxBackoff caps the per-attempt timeout growth. Retransmission never
	// gives up: a transfer whose destination is unreachable but never
	// declared dead retries at this cadence forever (an unhealed partition
	// without a crash notice stalls the run rather than corrupting it).
	MaxBackoff sim.Time
	// RetainBudget caps how many acknowledged Messenger transfers a daemon
	// retains for GVT-safe respawn. Zero (the default) keeps every acked
	// entry until fossil collection frees it — full respawnability, but a
	// run that never advances virtual time retains them forever. Service
	// mode sets a budget: the oldest acked entries are force-released past
	// it, trading respawn coverage of long-dead history for bounded memory
	// (and a dedup-eviction floor that actually advances).
	RetainBudget int
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 20 * sim.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 32 * c.AckTimeout
	}
	return c
}

// WithRecovery enables messenger-level fault recovery on every daemon:
// reliable hop delivery (ack + retransmit + dedup), per-peer transient
// bookkeeping for GVT safety under loss, and logical-network healing with
// Messenger respawn on daemon death. Crash/Restart and the fault injectors
// require it.
func WithRecovery(cfg RecoveryConfig) Option {
	c := cfg.withDefaults()
	return func(s *System) { s.recCfg = &c }
}

// reliableKind reports whether a message kind carries state the sender must
// not lose: Messenger transfers, create requests, and the acks that
// complete cross-daemon links.
func reliableKind(k MsgKind) bool {
	return k == MsgMessenger || k == MsgCreate || k == MsgCreateAck
}

// retxEntry is one reliable send, retained until it is acknowledged AND
// global virtual time has passed its LVT — until then the snapshot may
// still be needed to respawn the Messenger without violating GVT.
type retxEntry struct {
	seq      uint64
	dst      int
	msg      *Msg
	lvt      float64
	acked    bool
	released bool // freed: late retransmission timers must ignore it
	attempts int
	timeout  sim.Time
}

// recovery is one daemon's reliable-delivery state (nil unless the system
// was built WithRecovery). Executor-confined, like the rest of the daemon.
type recovery struct {
	cfg     RecoveryConfig
	nextSeq uint64
	pending map[uint64]*retxEntry
	// floorSeq is the reliable-delivery floor: every sequence at or below
	// it has been released (acked and freed, or respawned to a dead peer).
	// Piggybacked on outbound reliable messages as AckFloor so receivers
	// can evict dedup state; advances amortized O(1) as entries release.
	floorSeq uint64
	// retained is the FIFO of acked-but-GVT-retained sequence numbers,
	// maintained only when RetainBudget > 0 (entries released by fossil
	// collection linger as stale numbers and are skipped on pop).
	retained []uint64
	// seen records processed reliable transfers per sender for duplicate
	// suppression, keyed by the sender's HopSeq. evictedTo is the per-
	// sender watermark: every sequence at or below it was processed and
	// evicted from seen (a straggling duplicate below it is recognized by
	// the comparison alone). Bounded by each sender's in-flight window
	// instead of growing for the length of the run.
	seen      []map[uint64]struct{}
	evictedTo []uint64
	peerDead  []bool
	// adopted maps a dead daemon's orphaned node addresses to their local
	// replacement (valid while that peer is marked dead).
	adopted map[logical.Addr]logical.NodeID
	// sentTo/recvFrom split the GVT transient counters per peer so a dead
	// peer's half of the books can be purged exactly.
	sentTo, recvFrom []int64
}

func newRecovery(n int, cfg RecoveryConfig) *recovery {
	return &recovery{
		cfg:       cfg,
		pending:   map[uint64]*retxEntry{},
		seen:      make([]map[uint64]struct{}, n),
		evictedTo: make([]uint64, n),
		peerDead:  make([]bool, n),
		adopted:   map[logical.Addr]logical.NodeID{},
		sentTo:    make([]int64, n),
		recvFrom:  make([]int64, n),
	}
}

// advanceFloor pushes the delivery floor past every released sequence.
// Sequences are allocated densely, so "not pending" means "released".
func (r *recovery) advanceFloor() {
	for r.floorSeq < r.nextSeq {
		if _, ok := r.pending[r.floorSeq+1]; ok {
			return
		}
		r.floorSeq++
	}
}

// down reports whether this daemon is crashed. The flag is set synchronously
// by System.Crash (possibly from another goroutine) and gates every executor
// entry point while recovery is enabled.
func (d *Daemon) down() bool { return d.downFlag.Load() }

// safeTimer arms an executor timer that fires only if the daemon is still
// up and in the same incarnation it was armed in (a crash orphans every
// pending timer and continuation).
func (d *Daemon) safeTimer(delay sim.Time, fn func()) {
	ep := d.epoch
	d.eng.SetTimer(d.id, delay, func() {
		if d.down() || d.epoch != ep {
			return
		}
		fn()
	})
}

// ship routes a daemon-to-daemon message: reliably under recovery, directly
// otherwise. counted marks messages that participate in GVT transient
// counting. A destination already known dead is recovered locally, skipping
// the wire and the books entirely.
func (d *Daemon) ship(dst int, msg *Msg, counted bool) {
	if d.rec != nil && d.rec.peerDead[dst] {
		d.redirectDead(dst, msg)
		return
	}
	if d.rec != nil && msg.XferVM != nil {
		// Retransmission and duplicate delivery both need bytes that survive
		// the first decode, so recovery mode forgoes the zero-copy ownership
		// transfer and snapshots here — before the GVT books see the send, so
		// an unserializable Messenger dies like any runtime failure instead
		// of leaving a phantom transient.
		snap, err := msg.XferVM.Snapshot()
		if err != nil {
			d.Stats.Errors++
			if d.om != nil {
				d.om.errs.Inc()
			}
			if d.tr != nil {
				d.tr.Instant(d.id, "msgr", "error", msgrID(msg.MsgrID), obs.S("err", err.Error()))
			}
			d.sys.recordError(fmt.Errorf("daemon %d, messenger %d: %w", d.id, msg.MsgrID, err))
			if msg.CarriesMessenger() {
				d.sys.sessionWork(msg.Tenant, msg.Session, -1)
			}
			return
		}
		msg.Snapshot = snap
		msg.XferVM = nil
	}
	if counted {
		d.sent++
		if d.rec != nil {
			d.rec.sentTo[dst]++
		}
	}
	if d.rec == nil {
		d.netSend(dst, msg)
		return
	}
	d.reliableSend(dst, msg)
}

// reliableSend materializes, stamps, retains, and transmits one reliable
// message, arming its retransmission timer. The Messenger's liveness slot
// stays with the retained entry until the ack arrives.
func (d *Daemon) reliableSend(dst int, msg *Msg) {
	rec := d.rec
	rec.nextSeq++
	msg.HopSeq = rec.nextSeq
	msg.AckFloor = rec.floorSeq
	e := &retxEntry{
		seq: rec.nextSeq, dst: dst, msg: msg, lvt: msg.LVT,
		attempts: 1, timeout: rec.cfg.AckTimeout,
	}
	rec.pending[e.seq] = e
	d.netSend(dst, msg)
	d.armRetx(e)
}

func (d *Daemon) armRetx(e *retxEntry) {
	d.eng.SetTimer(d.id, e.timeout, func() { d.retxFire(e) })
}

func (d *Daemon) retxFire(e *retxEntry) {
	if d.down() || e.acked || e.released {
		return
	}
	rec := d.rec
	if rec.peerDead[e.dst] {
		// A death notice beat the timer; PeerDown respawned (or is about to
		// respawn) every pending entry to that peer, including this one.
		return
	}
	e.attempts++
	// Jittered exponential backoff keyed by (sender, peer, hop sequence,
	// attempt): deterministic on the simulated engine, but decorrelated
	// across entries so a healed partition doesn't trigger a synchronized
	// retransmit burst from every pending hop at once.
	e.timeout = sim.Time(backoff.Jittered(
		time.Duration(rec.cfg.AckTimeout), time.Duration(rec.cfg.MaxBackoff),
		e.attempts, backoff.Key(d.id, e.dst, int(e.seq), e.attempts)))
	if d.om != nil {
		d.om.retx.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "rec", "msgr.retx",
			obs.I("to", int64(e.dst)), obs.I("seq", int64(e.seq)), obs.I("attempt", int64(e.attempts)))
	}
	// Each retransmission carries the current floor, so even a quiet link
	// eventually propagates dedup-eviction progress.
	e.msg.AckFloor = rec.floorSeq
	d.netSend(e.dst, e.msg)
	d.armRetx(e)
}

// handleHopAck marks a pending entry acknowledged, releases the entry's
// liveness slot to the receiver's copy, and frees it if fossil collection
// allows.
func (d *Daemon) handleHopAck(msg *Msg) {
	e, ok := d.rec.pending[msg.HopSeq]
	if !ok || e.acked {
		return
	}
	e.acked = true
	if e.msg.CarriesMessenger() {
		d.sys.sessionWork(e.msg.Tenant, e.msg.Session, -1)
	}
	d.maybeRelease(e)
	if !e.released && d.rec.cfg.RetainBudget > 0 {
		d.rec.retained = append(d.rec.retained, e.seq)
		d.enforceRetainBudget()
	}
}

// enforceRetainBudget force-releases the oldest acked-but-retained entries
// beyond RetainBudget. A force-released entry can no longer respawn its
// Messenger if the receiving daemon later dies — the documented tradeoff
// for bounded memory in long-running service mode.
func (d *Daemon) enforceRetainBudget() {
	rec := d.rec
	for len(rec.retained) > rec.cfg.RetainBudget {
		seq := rec.retained[0]
		rec.retained = rec.retained[1:]
		e, ok := rec.pending[seq]
		if !ok || !e.acked || e.released {
			continue // already freed by fossil collection or respawn
		}
		e.released = true
		delete(rec.pending, seq)
	}
	rec.advanceFloor()
}

// maybeRelease frees an acknowledged entry once GVT has passed its LVT (the
// snapshot can then never be needed for respawn without violating GVT).
// Non-Messenger entries (create acks) are freed on acknowledgement.
func (d *Daemon) maybeRelease(e *retxEntry) {
	if !e.acked {
		return
	}
	if e.msg.CarriesMessenger() && e.lvt >= d.gvt {
		return
	}
	e.released = true
	delete(d.rec.pending, e.seq)
	d.rec.advanceFloor()
}

// releaseFossils frees acknowledged entries whose LVT the new GVT has
// passed. Called from advanceGVT. Applications that never advance virtual
// time retain their acknowledged entries for the whole run — which is also
// what makes their Messengers respawnable at any point.
func (d *Daemon) releaseFossils() {
	//lint:maporder unordered delete of independent entries
	for seq, e := range d.rec.pending {
		if e.acked && e.lvt < d.gvt {
			e.released = true
			delete(d.rec.pending, seq)
		}
	}
	d.rec.advanceFloor()
}

// dedupCheck runs on every inbound reliable message: re-acknowledge
// unconditionally (the previous ack may have been lost), then report
// whether this transfer was already processed. A non-duplicate
// Messenger-carrying arrival takes its liveness slot here, before any
// processing (its error paths release it via workDone as usual).
func (d *Daemon) dedupCheck(msg *Msg) (dup bool) {
	d.netSend(msg.From, &Msg{Kind: MsgHopAck, From: d.id, MsgrID: msg.MsgrID, HopSeq: msg.HopSeq})
	rec := d.rec
	from := msg.From
	sm := rec.seen[from]
	if sm == nil {
		sm = map[uint64]struct{}{}
		rec.seen[from] = sm
	}
	// The sender's floor covers only released entries — acknowledged, so
	// already processed here — which makes their dedup records evictable:
	// any straggling duplicate at or below the watermark is recognized by
	// the comparison alone.
	for rec.evictedTo[from] < msg.AckFloor {
		rec.evictedTo[from]++
		delete(sm, rec.evictedTo[from])
	}
	if msg.HopSeq <= rec.evictedTo[from] {
		dup = true
	} else if _, seen := sm[msg.HopSeq]; seen {
		dup = true
	}
	if dup {
		if d.om != nil {
			d.om.dedup.Inc()
		}
		if d.tr != nil {
			d.tr.Instant(d.id, "rec", "msgr.dedup", msgrID(msg.MsgrID), obs.I("from", int64(msg.From)))
		}
		return true
	}
	sm[msg.HopSeq] = struct{}{}
	if msg.CarriesMessenger() {
		d.sys.sessionWork(msg.Tenant, msg.Session, 1)
	}
	return false
}

// redirectDead handles a message addressed to a daemon known to be dead:
// creates re-target this daemon, Messengers follow the adoption map, link
// acks are dropped (their origin died). No transient counting — everything
// resolves locally.
func (d *Daemon) redirectDead(dst int, msg *Msg) {
	switch msg.Kind {
	case MsgCreateAck:
		return
	case MsgCreate:
		if d.tr != nil {
			d.tr.Instant(d.id, "rec", "msgr.redirect", msgrID(msg.MsgrID), obs.I("dead", int64(dst)))
		}
		msg.From = d.id // handleCreate then self-acks, completing the origin half-link locally
		d.handleCreate(msg)
	case MsgMessenger:
		addr := logical.Addr{Daemon: dst, Node: msg.DestNode}
		nid, ok := d.rec.adopted[addr]
		if !ok {
			// No surviving attachment to the destination: zero matching
			// destinations, so the Messenger ceases to exist.
			d.Stats.Died++
			if d.om != nil {
				d.om.died.Inc()
			}
			if d.tr != nil {
				d.tr.Instant(d.id, "msgr", "die", msgrID(msg.MsgrID))
			}
			d.sys.sessionWork(msg.Tenant, msg.Session, -1)
			return
		}
		if d.tr != nil {
			d.tr.Instant(d.id, "rec", "msgr.redirect", msgrID(msg.MsgrID), obs.I("dead", int64(dst)))
		}
		msg.DestNode = nid
		msg.From = d.id
		d.handleArrival(msg)
	}
}

// PeerDown records that peer has died: purges this daemon's half of the
// transient books against it (the dead daemon's own counters vanished from
// the global GVT sum), heals the logical network by adopting orphaned
// nodes, and respawns every retained transfer whose last hop landed there.
func (d *Daemon) PeerDown(peer int) {
	if d.rec == nil || d.down() || peer == d.id || d.rec.peerDead[peer] {
		return
	}
	rec := d.rec
	rec.peerDead[peer] = true
	if d.om != nil {
		d.om.peerDowns.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "rec", "peer.down", obs.I("peer", int64(peer)))
	}
	d.sent -= rec.sentTo[peer]
	rec.sentTo[peer] = 0
	d.recv -= rec.recvFrom[peer]
	rec.recvFrom[peer] = 0
	for _, orphan := range d.store.Orphans(peer) {
		nn := d.store.Adopt(orphan)
		rec.adopted[orphan] = nn.ID
		if d.om != nil {
			d.om.adoptions.Inc()
		}
		if d.tr != nil {
			d.tr.Instant(d.id, "rec", "node.adopt",
				obs.I("daemon", int64(orphan.Daemon)), obs.I("node", int64(orphan.Node)),
				obs.S("as", nn.Name))
		}
	}
	var seqs []uint64
	//lint:maporder keys are collected then sorted before use
	for seq, e := range rec.pending {
		if e.dst == peer {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		d.respawnEntry(rec.pending[seq])
	}
}

// PeerUp clears the death mark when a crashed daemon rejoins. Adopted nodes
// stay local — every half-link was rewired at adoption, and the restarted
// daemon comes back empty.
func (d *Daemon) PeerUp(peer int) {
	if d.rec == nil || d.down() || !d.rec.peerDead[peer] {
		return
	}
	d.rec.peerDead[peer] = false
	//lint:maporder unordered delete of independent entries
	for addr := range d.rec.adopted {
		if addr.Daemon == peer {
			delete(d.rec.adopted, addr)
		}
	}
	if d.om != nil {
		d.om.peerUps.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "rec", "peer.up", obs.I("peer", int64(peer)))
	}
}

// respawnEntry resurrects one retained transfer whose destination died: the
// last transmitted snapshot is the checkpoint. An acknowledged entry's
// Messenger was owned by the dead daemon — its liveness slot died with it,
// so the respawn takes a fresh one; an unacknowledged entry still holds its
// own.
func (d *Daemon) respawnEntry(e *retxEntry) {
	e.released = true
	delete(d.rec.pending, e.seq)
	d.rec.advanceFloor()
	msg := e.msg
	if msg.Kind == MsgCreateAck {
		return // the link's origin died with the daemon
	}
	if e.acked {
		d.sys.sessionWork(msg.Tenant, msg.Session, 1)
	}
	if d.om != nil {
		d.om.respawns.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "rec", "msgr.respawn",
			msgrID(msg.MsgrID), obs.I("dead", int64(e.dst)), obs.F("lvt", e.lvt))
	}
	d.redirectDead(e.dst, msg)
}

// crashCleanup is the executor half of System.Crash: every Messenger and
// logical node on this daemon is lost, the transient books zero, and all
// held liveness slots are released. Runs on the executor with the down flag
// already set (the raw engine call bypasses the guard); bumping the epoch
// orphans every continuation and timer scheduled before the crash.
func (d *Daemon) crashCleanup() {
	d.epoch++
	lost := 0
	//lint:maporder commutative release of independent slots
	for _, m := range d.active {
		lost++
		d.sys.sessionWork(m.Tenant, m.Session, -1)
	}
	for _, e := range d.waitQ.Items() {
		lost++
		d.sys.sessionWork(e.m.Tenant, e.m.Session, -1)
	}
	//lint:maporder commutative release of independent slots
	for _, e := range d.rec.pending {
		e.released = true
		if !e.acked && e.msg.CarriesMessenger() {
			lost++ // the entry's in-flight slot dies with the daemon
			d.sys.sessionWork(e.msg.Tenant, e.msg.Session, -1)
		}
	}
	d.rec.pending = map[uint64]*retxEntry{}
	d.rec.floorSeq = d.rec.nextSeq // everything outstanding was released
	d.rec.retained = nil
	for i := range d.rec.seen {
		d.rec.seen[i] = nil
		d.rec.evictedTo[i] = 0
	}
	for i := range d.rec.peerDead {
		d.rec.peerDead[i] = false
		d.rec.sentTo[i] = 0
		d.rec.recvFrom[i] = 0
	}
	d.rec.adopted = map[logical.Addr]logical.NodeID{}
	d.active = map[uint64]*Messenger{}
	d.waitQ.Reset()
	for i := range d.outbox {
		d.outbox[i] = nil // unsent batches die with the process
	}
	d.flushArmed = false
	d.notified = false
	d.sent, d.recv = 0, 0
	d.store = logical.NewStore(d.id)
	if d.coord != nil {
		d.coord.polling = false
		d.coord.reports = nil
	}
	if d.ring != nil {
		d.ring.crashReset()
	}
	if d.om != nil {
		d.om.deaths.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "rec", "daemon.crash", obs.I("lost", int64(lost)))
	}
}

// restartReset is the executor half of System.Restart: the daemon comes
// back as a fresh process — empty logical store, zeroed books — with its
// program registry intact (a restarted daemon reloads code) and its ID
// counters monotonic (the stand-in for fresh process-unique IDs).
func (d *Daemon) restartReset() {
	d.store = logical.NewStore(d.id)
	d.gvt = 0
	if d.om != nil {
		d.om.restarts.Inc()
	}
	if d.tr != nil {
		d.tr.Instant(d.id, "rec", "daemon.restart")
	}
	d.downFlag.Store(false)
}

// armRenotify keeps a renotification timer running while Messengers stay
// suspended, so a lost MsgGVTNotify cannot wedge virtual time forever.
func (d *Daemon) armRenotify() {
	if d.rec == nil || d.renotifyOn {
		return
	}
	d.renotifyOn = true
	d.safeTimer(2*d.sys.gvtInterval, d.renotifyFire)
}

func (d *Daemon) renotifyFire() {
	d.renotifyOn = false
	if d.waitQ.Len() == 0 {
		return
	}
	d.sendGVT(0, &Msg{Kind: MsgGVTNotify, From: d.id})
	d.renotifyOn = true
	d.safeTimer(2*d.sys.gvtInterval, d.renotifyFire)
}

// --- System-level fault API (the faults.Target surface) ---

// Crash kills daemon d mid-run: it stops processing immediately and loses
// all in-memory state — logical nodes, resident Messengers, transient
// counters — exactly as the daemon process dying would. Requires
// WithRecovery. Survivors learn of the death via NotifyPeerDown (or the
// transport's failure detector).
func (s *System) Crash(d int) {
	dae := s.daemons[d]
	if dae.rec == nil {
		panic("core: Crash requires WithRecovery")
	}
	if !dae.downFlag.CompareAndSwap(false, true) {
		return
	}
	// Raw engine call: the cleanup must run on the executor despite the
	// down guard.
	s.eng.Exec(d, 0, func() { dae.crashCleanup() })
}

// Restart revives a crashed daemon as a fresh, empty daemon.
func (s *System) Restart(d int) {
	dae := s.daemons[d]
	if dae.rec == nil {
		panic("core: Restart requires WithRecovery")
	}
	if !dae.down() {
		return
	}
	s.eng.Exec(d, 0, func() { dae.restartReset() })
}

// Down reports whether daemon d is currently crashed.
func (s *System) Down(d int) bool { return s.daemons[d].down() }

// NotifyPeerDown delivers a failure notice for dead to observer's executor.
func (s *System) NotifyPeerDown(observer, dead int) {
	dae := s.daemons[observer]
	s.eng.Exec(observer, 0, func() { dae.PeerDown(dead) })
}

// NotifyPeerUp delivers a recovery notice for a restarted daemon to
// observer's executor.
func (s *System) NotifyPeerUp(observer, dead int) {
	dae := s.daemons[observer]
	s.eng.Exec(observer, 0, func() { dae.PeerUp(dead) })
}
