// Package sim is a deterministic discrete-event simulation kernel.
//
// It provides two complementary programming models on one virtual clock:
//
//   - an event API (At/After) for event-driven components such as the
//     MESSENGERS daemons and the Ethernet model, and
//   - a process API (Spawn + Proc.Advance/Park) in the style of process-based
//     simulators, so sequentially written task code — notably the PVM
//     baseline programs with their blocking receive calls — can run under
//     simulated time without being rewritten as state machines.
//
// The kernel is single-threaded from the simulation's point of view: exactly
// one event callback or one process is running at any moment, and events fire
// in (time, insertion-sequence) order, so every run is deterministic.
package sim

import (
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring the time package for simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a simulated duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time in seconds for logs and tables.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// event is a scheduled callback.
type event struct {
	at     Time
	seq    uint64
	fn     func()
	cancel bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	k *Kernel
	e *event
}

// Cancel removes the event from the schedule; it is a no-op if the event
// already fired or was cancelled. The event stays in the queue as a
// tombstone (Step skips it), which keeps cancellation O(1) for every
// queue implementation.
func (h Handle) Cancel() {
	if h.e == nil || h.e.fn == nil {
		return
	}
	h.e.cancel = true
	h.e.fn = nil
	h.k.live--
}

// Kernel is a discrete-event scheduler. The zero value is not usable; use
// New.
type Kernel struct {
	now     Time
	seq     uint64
	pq      eventQueue
	live    int // scheduled, uncancelled events
	procs   int // live (spawned, not yet finished) processes
	parked  int // processes blocked in Park with no pending wake
	stopped bool
	failure any // panic value captured from a process

	allProcs []*Proc
}

// New returns an empty kernel at time zero. The pending-event set is the
// adaptive queue: a binary heap while the horizon is sparse, migrating to
// a calendar queue past ~1k pending events (see queue.go). Both obey the
// same (time, sequence) total order, so the choice never changes a run's
// behavior, only its wall-clock cost.
func New() *Kernel {
	return &Kernel{pq: newAdaptiveQueue()}
}

// NewWithQueue returns a kernel pinned to a specific event-queue
// implementation: "heap", "calendar", or "adaptive". It exists for the
// kernel microbenchmarks that compare queue structures head to head;
// simulations should use New.
func NewWithQueue(kind string) *Kernel {
	switch kind {
	case "heap":
		return &Kernel{pq: newHeapQueue()}
	case "calendar":
		return &Kernel{pq: newCalendarQueue(0)}
	case "adaptive":
		return &Kernel{pq: newAdaptiveQueue()}
	default:
		panic(fmt.Sprintf("sim: unknown event queue %q", kind))
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn at absolute time t. Scheduling in the past is an error in
// the simulation logic and panics.
func (k *Kernel) At(t Time, fn func()) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	k.pq.Push(e)
	k.live++
	return Handle{k: k, e: e}
}

// After schedules fn d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Pending reports the number of scheduled (uncancelled) events.
func (k *Kernel) Pending() int { return k.live }

// Parked reports how many processes are blocked with no pending wake-up.
// A nonzero value when Run returns indicates a deadlock in the simulated
// system (e.g. a PVM receive with no matching send).
func (k *Kernel) Parked() int { return k.parked }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step fires the single next event. It reports false when no events remain.
func (k *Kernel) Step() bool {
	for {
		e := k.pq.Pop()
		if e == nil {
			return false
		}
		if e.cancel {
			continue
		}
		k.live--
		k.now = e.at
		fn := e.fn
		e.fn = nil
		fn()
		if k.failure != nil {
			f := k.failure
			k.failure = nil
			panic(f)
		}
		return true
	}
}

// Run fires events until none remain or Stop is called. It returns the
// final simulated time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
	return k.now
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopped = false
	for !k.stopped {
		e := k.pq.Peek()
		if e == nil || e.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}
