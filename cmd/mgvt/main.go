// mgvt benchmarks global-virtual-time maintenance and the scale-out kernel
// work that feeds it, recording the trajectory into BENCH_gvt.json:
//
//   - scale: a virtual-time workload (per-daemon walkers alternating
//     sched_dlt epochs with ring hops) swept over daemon counts under both
//     GVT implementations — the centralized coordinator and the distributed
//     ring reduction — recording rounds, commits, control-message counts,
//     mean round latency, and hop throughput. The headline numbers: the
//     coordinator funnels O(N) control messages per round through daemon 0,
//     the ring costs ≤2 per daemon per round with no convergence point.
//   - khost: the same workload at 1k simulated hosts (the E1-style scale
//     point), ring vs. coordinator.
//   - queue: the event-kernel microbenchmark at 1k-host event rates —
//     heap vs. calendar vs. adaptive pending-event sets, wall-clock
//     events/second.
//   - tcp: a ≥16-daemon run over real TCP sockets with distributed GVT,
//     wall-clock round latency and hop throughput.
//
// mgvt exits nonzero if the ring protocol exceeds its 2-control-messages-
// per-daemon-per-round budget (excluding quiescence notifications), or if
// any run fails.
//
//	mgvt -out BENCH_gvt.json
//	mgvt -short -skip-tcp
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"messengers"
	"messengers/internal/core"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// ringWalk alternates virtual-time epochs with hops around the logical
// ring, so every round of GVT has both suspended wake-ups and transient
// Messengers to account for.
const ringWalk = `
	for (k = 0; k < epochs; k++) {
		sched_dlt(0.5);
		hop(ll = "ring", ldir = +);
	}
`

type scaleResult struct {
	Engine  string `json:"engine"` // "sim" or "tcp"
	Impl    string `json:"impl"`   // "coordinator" or "ring"
	Daemons int    `json:"daemons"`
	Walkers int    `json:"walkers"`
	Epochs  int    `json:"epochs"`

	Rounds  int64 `json:"rounds"`
	Commits int   `json:"commits"`
	// CtlMsgs is the total GVT control traffic (queries, reports,
	// advances, tokens, notifications) across all daemons.
	CtlMsgs int64 `json:"ctl_msgs"`
	// CtlDaemon0PerRound is daemon 0's share per round — the coordinator's
	// O(N) bottleneck, the ring initiator's O(1).
	CtlDaemon0PerRound float64 `json:"ctl_daemon0_per_round"`
	// CtlMaxPerDaemonRound is the worst daemon's per-round control sends
	// with quiescence notifications subtracted: the protocol cost proper.
	// The ring's budget is 2 (one token forward per pass).
	CtlMaxPerDaemonRound float64 `json:"ctl_max_per_daemon_round"`
	// RoundMs is the mean GVT round latency (simulated ms on sim, wall ms
	// on tcp).
	RoundMs float64 `json:"round_ms"`
	// Hops and HopsPerS are remote hops and their rate over the run
	// (simulated time on sim, wall time on tcp).
	Hops     int64   `json:"hops"`
	HopsPerS float64 `json:"hops_per_s"`
	// ElapsedS is the makespan (simulated s on sim, wall s on tcp).
	ElapsedS float64 `json:"elapsed_s"`
	WallS    float64 `json:"wall_s"`
}

type queueResult struct {
	Impl      string  `json:"impl"`
	Hosts     int     `json:"hosts"`
	Events    int64   `json:"events"`
	WallS     float64 `json:"wall_s"`
	EventsPerS float64 `json:"events_per_s"`
}

type benchFile struct {
	GeneratedAt string        `json:"generated_at"`
	Scale       []scaleResult `json:"scale"`
	KHost       []scaleResult `json:"khost"`
	Queue       []queueResult `json:"queue"`
	TCP         []scaleResult `json:"tcp"`
}

func main() {
	out := flag.String("out", "BENCH_gvt.json", "output JSON path")
	short := flag.Bool("short", false, "reduced sweep for CI sanity")
	skipTCP := flag.Bool("skip-tcp", false, "skip the TCP leg")
	tcpDaemons := flag.Int("tcp-daemons", 16, "daemon count for the TCP leg")
	flag.Parse()

	file := benchFile{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	violations := 0

	counts := []int{8, 16, 32, 64}
	epochs := 20
	if *short {
		counts = []int{4, 8}
		epochs = 8
	}
	for _, n := range counts {
		for _, impl := range []string{"coordinator", "ring"} {
			r, err := simRun(n, epochs, impl == "ring")
			if err != nil {
				fatal(err)
			}
			violations += check(r)
			file.Scale = append(file.Scale, *r)
			fmt.Printf("sim  %-11s n=%-4d rounds=%-5d ctl/d0/round=%-8.1f ctl/max/round=%-6.2f round=%.3fms hops/s=%.0f\n",
				impl, n, r.Rounds, r.CtlDaemon0PerRound, r.CtlMaxPerDaemonRound, r.RoundMs, r.HopsPerS)
		}
	}

	// The 1k-host scale point stays at full size even under -short (fewer
	// epochs only): CI's bench sanity doubles as the 1k-host smoke test.
	khostN, khostEpochs := 1000, 3
	if *short {
		khostEpochs = 2
	}
	for _, impl := range []string{"coordinator", "ring"} {
		r, err := simRun(khostN, khostEpochs, impl == "ring")
		if err != nil {
			fatal(err)
		}
		violations += check(r)
		file.KHost = append(file.KHost, *r)
		fmt.Printf("sim  %-11s n=%-4d rounds=%-5d ctl/d0/round=%-8.1f ctl/max/round=%-6.2f round=%.3fms hops/s=%.0f\n",
			impl, khostN, r.Rounds, r.CtlDaemon0PerRound, r.CtlMaxPerDaemonRound, r.RoundMs, r.HopsPerS)
	}

	events := int64(2_000_000)
	if *short {
		events = 200_000
	}
	for _, impl := range []string{"heap", "calendar", "adaptive"} {
		q := queueRun(impl, 1000, events)
		file.Queue = append(file.Queue, q)
		fmt.Printf("queue %-9s hosts=%d events=%d wall=%.3fs rate=%.0f/s\n",
			impl, q.Hosts, q.Events, q.WallS, q.EventsPerS)
	}

	if !*skipTCP {
		n := *tcpDaemons
		tcpEpochs := 10
		if *short {
			n, tcpEpochs = 8, 5
		}
		for _, impl := range []string{"coordinator", "ring"} {
			r, err := tcpRun(n, tcpEpochs, impl == "ring")
			if err != nil {
				fatal(err)
			}
			violations += check(r)
			file.TCP = append(file.TCP, *r)
			fmt.Printf("tcp  %-11s n=%-4d rounds=%-5d ctl/d0/round=%-8.1f ctl/max/round=%-6.2f round=%.3fms hops/s=%.0f\n",
				impl, n, r.Rounds, r.CtlDaemon0PerRound, r.CtlMaxPerDaemonRound, r.RoundMs, r.HopsPerS)
		}
	}

	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "mgvt: %d control-message budget violations\n", violations)
		os.Exit(1)
	}
}

// check enforces the ring's per-round control budget and returns the
// number of violations found.
func check(r *scaleResult) int {
	if r.Impl != "ring" {
		return 0
	}
	if r.Rounds > 0 && r.CtlMaxPerDaemonRound > 2.0 {
		fmt.Fprintf(os.Stderr, "mgvt: %s n=%d: %.2f control messages per daemon per round exceeds the ring budget of 2\n",
			r.Engine, r.Daemons, r.CtlMaxPerDaemonRound)
		return 1
	}
	return 0
}

// ringSpec lays one logical node per daemon and closes them into a
// directed ring of "ring" links.
func ringSpec(n int) messengers.NetSpec {
	spec := messengers.NetSpec{}
	name := func(i int) string { return fmt.Sprintf("r%d", i) }
	for i := 0; i < n; i++ {
		spec.Nodes = append(spec.Nodes, messengers.NetNode{Name: name(i), Daemon: i})
	}
	for i := 0; i < n; i++ {
		spec.Links = append(spec.Links, messengers.NetLink{
			A: name(i), B: name((i + 1) % n), Name: "ring", Dir: 1,
		})
	}
	return spec
}

// collect reads per-daemon GVT statistics. On the (finished, single-
// threaded) sim engine it reads directly; on live engines it runs on each
// daemon's own executor to avoid racing it.
func collect(sys *core.System, n int, r *scaleResult, elapsedS float64, direct bool) {
	type row struct {
		ctl, rounds, suspends, hops int64
		roundTime                   sim.Time
	}
	read := func(d *core.Daemon) row {
		return row{
			ctl:       d.Stats.GVTCtlMsgs,
			rounds:    d.Stats.GVTRounds,
			suspends:  d.Stats.Suspends,
			hops:      d.Stats.RemoteHops,
			roundTime: d.Stats.GVTRoundTime,
		}
	}
	rows := make([]row, n)
	for i := 0; i < n; i++ {
		if direct {
			rows[i] = read(sys.Daemon(i))
			continue
		}
		i := i
		done := make(chan struct{})
		sys.Do(i, func(d *core.Daemon) {
			rows[i] = read(d)
			close(done)
		})
		<-done
	}
	r.Rounds = rows[0].rounds
	r.Commits = len(sys.CommitLog())
	for i, row := range rows {
		r.CtlMsgs += row.ctl
		r.Hops += row.hops
		if r.Rounds > 0 {
			adj := float64(row.ctl-row.suspends) / float64(r.Rounds)
			if adj > r.CtlMaxPerDaemonRound {
				r.CtlMaxPerDaemonRound = adj
			}
			if i == 0 {
				r.CtlDaemon0PerRound = float64(row.ctl) / float64(r.Rounds)
			}
		}
	}
	if r.Rounds > 0 {
		r.RoundMs = float64(rows[0].roundTime) / float64(r.Rounds) / 1e6
	}
	r.ElapsedS = elapsedS
	if elapsedS > 0 {
		r.HopsPerS = float64(r.Hops) / elapsedS
	}
}

func simRun(n, epochs int, ring bool) (*scaleResult, error) {
	impl := "coordinator"
	if ring {
		impl = "ring"
	}
	r := &scaleResult{Engine: "sim", Impl: impl, Daemons: n, Walkers: n, Epochs: epochs}
	start := time.Now()
	sys, err := messengers.NewSimSystem(messengers.Config{
		Daemons:        n,
		DistributedGVT: ring,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.BuildNetwork(ringSpec(n)); err != nil {
		return nil, err
	}
	if err := sys.CompileAndRegister("walk", ringWalk); err != nil {
		return nil, err
	}
	vars := map[string]value.Value{"epochs": value.Int(int64(epochs))}
	for i := 0; i < n; i++ {
		if err := sys.InjectAt(i, "walk", fmt.Sprintf("r%d", i), vars); err != nil {
			return nil, err
		}
	}
	elapsed := sys.RunSim()
	if errs := sys.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("sim n=%d %s: %v", n, impl, errs[0])
	}
	collect(sys.System, n, r, float64(elapsed)/1e9, true)
	r.WallS = time.Since(start).Seconds()
	return r, nil
}

func tcpRun(n, epochs int, ring bool) (*scaleResult, error) {
	impl := "coordinator"
	if ring {
		impl = "ring"
	}
	r := &scaleResult{Engine: "tcp", Impl: impl, Daemons: n, Walkers: n, Epochs: epochs}
	sys, err := messengers.NewTCPSystem(messengers.Config{
		Daemons:        n,
		DistributedGVT: ring,
		GVTInterval:    messengers.SimTime(2 * time.Millisecond),
	}, nil)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := sys.BuildNetwork(ringSpec(n)); err != nil {
		return nil, err
	}
	if err := sys.CompileAndRegister("walk", ringWalk); err != nil {
		return nil, err
	}
	vars := map[string]value.Value{"epochs": value.Int(int64(epochs))}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := sys.InjectAt(i, "walk", fmt.Sprintf("r%d", i), vars); err != nil {
			return nil, err
		}
	}
	sys.Wait()
	wall := time.Since(start).Seconds()
	if errs := sys.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("tcp n=%d %s: %v", n, impl, errs[0])
	}
	collect(sys.System, n, r, wall, false)
	r.WallS = wall
	return r, nil
}

// queueRun measures raw event-kernel throughput: `hosts` self-rescheduling
// timers with staggered periods, `events` firings total, against the
// chosen pending-event set implementation.
func queueRun(impl string, hosts int, events int64) queueResult {
	k := sim.NewWithQueue(impl)
	var fired int64
	start := time.Now()
	for h := 0; h < hosts; h++ {
		h := h
		period := sim.Time(1000 + 17*h)
		var tick func()
		tick = func() {
			fired++
			if fired < events {
				k.After(period, tick)
			}
		}
		k.After(period, tick)
	}
	k.Run()
	wall := time.Since(start).Seconds()
	q := queueResult{Impl: impl, Hosts: hosts, Events: fired, WallS: wall}
	if wall > 0 {
		q.EventsPerS = float64(fired) / wall
	}
	return q
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mgvt:", err)
	os.Exit(1)
}
