package script

import (
	"strconv"
	"strings"
)

// Lexer tokenizes MSL source. Comments are C-style: // to end of line and
// /* ... */ blocks.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipSpace consumes whitespace and comments, returning an error for an
// unterminated block comment.
func (l *Lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.here()
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.here()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos, Text: word}, nil
		}
		return Token{Kind: IDENT, Pos: pos, Text: word}, nil

	case isDigit(c) || c == '.' && isDigit(l.peek2()):
		return l.lexNumber(pos)

	case c == '"':
		return l.lexString(pos)
	}

	l.advance()
	two := func(next byte, withKind, aloneKind Kind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: withKind, Pos: pos}, nil
		}
		return Token{Kind: aloneKind, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: pos}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: pos}, nil
	case '{':
		return Token{Kind: LBRACE, Pos: pos}, nil
	case '}':
		return Token{Kind: RBRACE, Pos: pos}, nil
	case '[':
		return Token{Kind: LBRACK, Pos: pos}, nil
	case ']':
		return Token{Kind: RBRACK, Pos: pos}, nil
	case ',':
		return Token{Kind: COMMA, Pos: pos}, nil
	case ';':
		return Token{Kind: SEMI, Pos: pos}, nil
	case '.':
		return Token{Kind: DOT, Pos: pos}, nil
	case '$':
		return Token{Kind: DOLLAR, Pos: pos}, nil
	case '~':
		return Token{Kind: TILDE, Pos: pos}, nil
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NE, NOT)
	case '<':
		return two('=', LE, LT)
	case '>':
		return two('=', GE, GT)
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: PLUSPLUS, Pos: pos}, nil
		}
		return two('=', PLUSEQ, PLUS)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: MINUSMINUS, Pos: pos}, nil
		}
		return two('=', MINUSEQ, MINUS)
	case '*':
		return Token{Kind: STAR, Pos: pos}, nil
	case '/':
		return Token{Kind: SLASH, Pos: pos}, nil
	case '%':
		return Token{Kind: PERCENT, Pos: pos}, nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: ANDAND, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q (did you mean &&?)", string(c))
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OROR, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q (did you mean ||?)", string(c))
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.pos = save // not an exponent; leave 'e' for the next token
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: FLOAT, Pos: pos, Text: text, Num: f}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, errf(pos, "bad int literal %q", text)
	}
	return Token{Kind: INT, Pos: pos, Text: text, Int: n}, nil
}

func (l *Lexer) lexString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: STRING, Pos: pos, Text: b.String(), Str: b.String()}, nil
		case '\n':
			return Token{}, errf(pos, "newline in string literal")
		case '\\':
			if l.pos >= len(l.src) {
				return Token{}, errf(pos, "unterminated string literal")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				return Token{}, errf(pos, "unknown escape \\%s", string(e))
			}
		default:
			b.WriteByte(c)
		}
	}
}

// LexAll tokenizes the whole source, for tests and tooling.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
