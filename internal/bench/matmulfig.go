package bench

import (
	"fmt"

	"messengers/internal/apps"
	"messengers/internal/lan"
	"messengers/internal/sim"
)

// MatmulSweep describes one panel of Figure 12.
type MatmulSweep struct {
	Name string
	// M is the processor grid dimension (2 for Fig. 12(a), 3 for (b)).
	M int
	// Host is the workstation model (110 MHz for (a), 170 MHz for (b)).
	Host lan.HostSpec
	// BlockSizes is the x-axis (block size s; the matrices are M*s square).
	BlockSizes []int
	// Arithmetic enables the actual floating-point work (validation);
	// sweeps skip it since the simulated time is size-determined.
	Arithmetic bool
	// FastEthernet puts the cluster on a 100 Mb/s segment (the Fig. 12(b)
	// testbed; see CostModel.FastEthernet).
	FastEthernet bool
}

// MatmulFigure holds one panel's measured series.
type MatmulFigure struct {
	Sweep                         MatmulSweep
	Msgr, PVM, SeqNaive, SeqBlock []sim.Time
}

// Fig12aSweep is Figure 12(a): 2x2 grid of 110 MHz SPARCstations.
func Fig12aSweep(short bool) MatmulSweep {
	s := MatmulSweep{
		Name: "Figure 12(a)", M: 2, Host: lan.SPARC110,
		BlockSizes: []int{25, 50, 75, 100, 150, 200, 300, 400, 500},
	}
	if short {
		s.BlockSizes = []int{50, 150, 500}
	}
	return s
}

// Fig12bSweep is Figure 12(b): 3x3 grid of 170 MHz SPARCstations.
func Fig12bSweep(short bool) MatmulSweep {
	s := MatmulSweep{
		Name: "Figure 12(b)", M: 3, Host: lan.SPARC170, FastEthernet: true,
		BlockSizes: []int{10, 20, 30, 50, 75, 100, 150, 200, 300, 400, 500},
	}
	if short {
		// Keep a point near the measured crossover (~50) so the trimmed
		// axis still reports it sensibly.
		s.BlockSizes = []int{10, 50, 500}
	}
	return s
}

// RunMatmulFigure regenerates one panel of Figure 12.
func RunMatmulFigure(cm *lan.CostModel, sweep MatmulSweep) (*MatmulFigure, error) {
	if sweep.FastEthernet {
		cm = cm.FastEthernet()
	}
	fig := &MatmulFigure{Sweep: sweep}
	for _, s := range sweep.BlockSizes {
		p := apps.MatmulParams{
			M: sweep.M, S: s, Host: sweep.Host, Seed: int64(s),
			SkipArithmetic: !sweep.Arithmetic,
		}
		mr, err := apps.MatmulMessengers(cm, p)
		if err != nil {
			return nil, fmt.Errorf("bench: %s messengers s=%d: %w", sweep.Name, s, err)
		}
		pr, err := apps.MatmulPVM(cm, p)
		if err != nil {
			return nil, fmt.Errorf("bench: %s pvm s=%d: %w", sweep.Name, s, err)
		}
		fig.Msgr = append(fig.Msgr, mr.Elapsed)
		fig.PVM = append(fig.PVM, pr.Elapsed)
		fig.SeqNaive = append(fig.SeqNaive, apps.MatmulSequentialNaive(cm, p).Elapsed)
		fig.SeqBlock = append(fig.SeqBlock, apps.MatmulSequentialBlock(cm, p).Elapsed)
	}
	return fig, nil
}

// Table renders the panel: times per block size for all four
// implementations, with the M/PVM ratio.
func (f *MatmulFigure) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("%s: block matrix multiplication on a %dx%d grid of %s",
			f.Sweep.Name, f.Sweep.M, f.Sweep.M, f.Sweep.Host.Name),
		Columns: []string{"block", "n", "MESSENGERS", "PVM", "seq naive", "seq block", "PVM/M"},
	}
	for i, s := range f.Sweep.BlockSizes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%d", s*f.Sweep.M),
			secs(f.Msgr[i]),
			secs(f.PVM[i]),
			secs(f.SeqNaive[i]),
			secs(f.SeqBlock[i]),
			ratio(f.PVM[i], f.Msgr[i]),
		})
	}
	return t
}

// Crossover returns the smallest block size at which MESSENGERS beats PVM,
// or -1 if it never does. The paper reports ~150 for the 2x2 grid and ~20
// for the 3x3 grid.
func (f *MatmulFigure) Crossover() int {
	for i, s := range f.Sweep.BlockSizes {
		if f.Msgr[i] < f.PVM[i] {
			return s
		}
	}
	return -1
}

// SpeedupAt returns the MESSENGERS speedups over the two sequential
// baselines at block size s (paper §3.2.2: 3.7/4.5 at n=1000 on 4 procs,
// 5.8/6.7 at n=1500 on 9 procs).
func (f *MatmulFigure) SpeedupAt(s int) (overBlock, overNaive float64, ok bool) {
	for i, bs := range f.Sweep.BlockSizes {
		if bs == s {
			return float64(f.SeqBlock[i]) / float64(f.Msgr[i]),
				float64(f.SeqNaive[i]) / float64(f.Msgr[i]), true
		}
	}
	return 0, 0, false
}
