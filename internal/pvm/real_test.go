package pvm

import (
	"sync"
	"testing"

	"messengers/internal/matmul"
	"messengers/internal/value"
)

// TestRealMachineBlockMatmul runs the paper's Fig. 9 algorithm on the real
// (goroutine) machine and validates the distributed product.
func TestRealMachineBlockMatmul(t *testing.T) {
	const m, s = 3, 8
	n := m * s
	mach := NewRealMachine(m * m)
	a, b := matmul.Random(n, 1), matmul.Random(n, 2)
	var mu sync.Mutex
	cOut := value.NewMat(n, n)

	worker := func(i, j int) TaskFunc {
		return func(w *Proc) {
			w.JoinGroupAs("mm", i*m+j)
			myRow := make([]TID, m)
			for jj := 0; jj < m; jj++ {
				myRow[jj] = w.Gettid("mm", i*m+jj)
			}
			north := w.Gettid("mm", ((i-1+m)%m)*m+j)
			south := w.Gettid("mm", ((i+1)%m)*m+j)
			blockA := matmul.GetBlock(a, i, j, s)
			blockB := matmul.GetBlock(b, i, j, s)
			blockC := value.NewMat(s, s)
			for k := 0; k < m; k++ {
				var currA *value.Mat
				if j == (i+k)%m {
					w.InitSend()
					w.PkMat(blockA)
					w.Mcast(myRow, 100+k)
					currA = blockA
				} else {
					currA = w.UpkMat(w.Recv(AnySource, 100+k))
				}
				matmul.AddMul(blockC, currA, blockB)
				w.InitSend()
				w.PkMat(blockB)
				w.Send(north, 200+k)
				blockB = w.UpkMat(w.Recv(south, 200+k))
			}
			mu.Lock()
			matmul.SetBlock(cOut, i, j, blockC)
			mu.Unlock()
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			mach.SpawnAt("w", i*m+j, worker(i, j))
		}
	}
	mach.Wait()
	for _, err := range mach.Errors() {
		t.Fatalf("task error: %v", err)
	}
	ref := matmul.Naive(a, b)
	if d := matmul.MaxAbsDiff(ref, cOut); d > 1e-9 {
		t.Errorf("distributed result wrong by %g", d)
	}
}

// TestRealMachineBarrierConcurrency stresses the barrier across real
// goroutines.
func TestRealMachineBarrierConcurrency(t *testing.T) {
	const tasks, rounds = 8, 20
	mach := NewRealMachine(tasks)
	var mu sync.Mutex
	phase := make([]int, tasks)
	for i := 0; i < tasks; i++ {
		i := i
		mach.SpawnAt("b", i, func(p *Proc) {
			for r := 0; r < rounds; r++ {
				mu.Lock()
				phase[i] = r
				// Nobody may be more than one phase away at a barrier.
				for j, ph := range phase {
					if ph < r-1 || ph > r+1 {
						t.Errorf("task %d at phase %d while task %d at %d", j, ph, i, r)
					}
				}
				mu.Unlock()
				p.Barrier("round", tasks)
			}
		})
	}
	mach.Wait()
	for _, err := range mach.Errors() {
		t.Fatalf("task error: %v", err)
	}
}

// TestRealMachineGroupsDynamics exercises join-order instances, Gsize, and
// the blocking Gettid across goroutines.
func TestRealMachineGroupsDynamics(t *testing.T) {
	mach := NewRealMachine(2)
	got := make(chan TID, 1)
	mach.SpawnAt("late-resolver", 0, func(p *Proc) {
		// Blocks until the other task joins.
		tid := p.Gettid("g", 0)
		got <- tid
		p.InitSend()
		p.PkInt(1)
		p.Send(tid, 9) // release the joiner
	})
	var joined TID
	mach.SpawnAt("joiner", 1, func(p *Proc) {
		if inst := p.JoinGroup("g"); inst != 0 {
			t.Errorf("first join instance = %d", inst)
		}
		joined = p.MyTID()
		if p.Gsize("g") != 1 {
			t.Errorf("gsize = %d", p.Gsize("g"))
		}
		// Stay in the group until the resolver has found us (exiting
		// leaves all groups).
		p.Recv(AnySource, 9)
	})
	mach.Wait()
	for _, err := range mach.Errors() {
		t.Fatalf("task error: %v", err)
	}
	if tid := <-got; tid != joined {
		t.Errorf("Gettid = %d, want %d", tid, joined)
	}
}
