package core

import (
	"sync"
	"time"

	"messengers/internal/lan"
	"messengers/internal/sim"
)

// Engine abstracts how daemons execute and communicate. The daemon logic is
// engine-agnostic: it asks the engine to run work on a daemon's serial
// executor (charging modeled CPU cost where applicable) and to ship
// messages between daemons.
type Engine interface {
	// NumDaemons returns the daemon count.
	NumDaemons() int
	// Exec schedules fn on daemon d's serial executor after charging cost
	// of CPU time (cost is calibrated at 110 MHz; real engines ignore it —
	// the work itself takes real time there).
	Exec(d int, cost sim.Time, fn func())
	// Send ships msg from src to dst; the destination daemon's HandleMsg
	// runs on dst's executor after transfer costs.
	Send(src, dst int, msg *Msg)
	// SetTimer runs fn on d's executor after delay of engine time.
	SetTimer(d int, delay sim.Time, fn func())
	// Now returns the engine clock: simulated time on the simulated
	// engine, monotonic wall time since start on real engines. Trace
	// events are stamped with this clock.
	Now() sim.Time
	// Model returns the cost model, or nil on real engines.
	Model() *lan.CostModel
	// HostSpec describes daemon d's host (zero value on real engines).
	HostSpec(d int) lan.HostSpec
}

// binder is implemented by engines that need the daemon set after
// construction.
type binder interface {
	Bind(daemons []*Daemon)
}

// --- Simulated engine ---

// SimEngine runs daemons as event-driven state machines on a simulated
// cluster: every daemon occupies one host, all CPU work is charged to that
// host, and messages traverse the shared Ethernet. All paper-reproduction
// benchmarks use this engine.
type SimEngine struct {
	Cluster *lan.Cluster
	daemons []*Daemon
}

// NewSimEngine wraps a cluster.
func NewSimEngine(c *lan.Cluster) *SimEngine {
	return &SimEngine{Cluster: c}
}

// Bind attaches the daemon set (called by the System).
func (e *SimEngine) Bind(daemons []*Daemon) { e.daemons = daemons }

// NumDaemons implements Engine.
func (e *SimEngine) NumDaemons() int { return len(e.Cluster.Hosts) }

// Exec implements Engine.
func (e *SimEngine) Exec(d int, cost sim.Time, fn func()) {
	e.Cluster.Hosts[d].ExecScaled(cost, fn)
}

// Send implements Engine: Messenger-carrying messages pay the paper's
// single-copy state-transfer costs; control messages pay small fixed costs.
func (e *SimEngine) Send(src, dst int, msg *Msg) {
	cm := e.Cluster.Model
	size := msg.WireSize()
	var sendCost, recvCost sim.Time
	if msg.CarriesMessenger() || msg.Kind == MsgProgram || msg.Kind == MsgBatch {
		sendCost = sim.Time(size) * cm.MsgrSendPerByte
		recvCost = sim.Time(size)*cm.MsgrRecvPerByte + cm.CallFixed
	} else {
		sendCost = cm.CallFixed / 2
		recvCost = cm.CallFixed / 2
	}
	e.Cluster.Send(src, dst, size, sendCost, recvCost, func() {
		e.daemons[dst].HandleMsg(msg)
	})
}

// SetTimer implements Engine.
func (e *SimEngine) SetTimer(d int, delay sim.Time, fn func()) {
	e.Cluster.Kernel.After(delay, func() {
		e.Cluster.Hosts[d].Exec(0, fn)
	})
}

// Now implements Engine with the simulation clock.
func (e *SimEngine) Now() sim.Time { return e.Cluster.Kernel.Now() }

// Model implements Engine.
func (e *SimEngine) Model() *lan.CostModel { return e.Cluster.Model }

// HostSpec implements Engine.
func (e *SimEngine) HostSpec(d int) lan.HostSpec { return e.Cluster.Hosts[d].Spec }

// --- Real concurrent engine (in-process) ---

// ChanEngine is the real runtime on one machine: one goroutine per daemon,
// unbounded sharded inboxes (see ExecQueue), wall-clock timers. Costs are
// ignored — work takes however long it takes.
type ChanEngine struct {
	daemons []*Daemon
	inboxes []*ExecQueue
	start   time.Time
	wg      sync.WaitGroup
}

// NewChanEngine starts n daemon executors.
func NewChanEngine(n int) *ChanEngine {
	e := &ChanEngine{inboxes: make([]*ExecQueue, n), start: time.Now()} //lint:wallclock real engine: wall time is its virtual time
	for i := range e.inboxes {
		e.inboxes[i] = NewExecQueue()
	}
	e.wg.Add(n)
	for i := range e.inboxes {
		q := e.inboxes[i]
		go func() {
			defer e.wg.Done()
			q.Run()
		}()
	}
	return e
}

// Bind attaches the daemon set.
func (e *ChanEngine) Bind(daemons []*Daemon) { e.daemons = daemons }

// NumDaemons implements Engine.
func (e *ChanEngine) NumDaemons() int { return len(e.inboxes) }

// Exec implements Engine (cost ignored: real work takes real time).
func (e *ChanEngine) Exec(d int, _ sim.Time, fn func()) {
	e.inboxes[d].Put(LaneLocal, fn)
}

// Send implements Engine. In-process delivery keeps FIFO order per pair
// within a lane (see ExecQueue for why cross-lane reordering is safe).
func (e *ChanEngine) Send(_, dst int, msg *Msg) {
	e.inboxes[dst].Put(LaneFor(msg.Kind), func() { e.daemons[dst].HandleMsg(msg) })
}

// SetTimer implements Engine using wall-clock time (1 engine ns = 1 ns).
// Timer callbacks are control work: watchdogs, retransmissions, GVT pacing.
func (e *ChanEngine) SetTimer(d int, delay sim.Time, fn func()) {
	//lint:wallclock real engine: timers are real timers by definition
	time.AfterFunc(time.Duration(delay), func() {
		e.inboxes[d].Put(LaneControl, fn)
	})
}

// Model implements Engine: no cost model on the real engine.
func (e *ChanEngine) Model() *lan.CostModel { return nil }

// Now implements Engine with monotonic wall time since engine start.
func (e *ChanEngine) Now() sim.Time { return sim.Time(time.Since(e.start)) } //lint:wallclock real engine clock

// HostSpec implements Engine.
func (e *ChanEngine) HostSpec(int) lan.HostSpec { return lan.HostSpec{} }

// Close stops all daemon executors and waits for them to exit. Pending
// work items are discarded.
func (e *ChanEngine) Close() {
	for _, q := range e.inboxes {
		q.Close()
	}
	e.wg.Wait()
}
