package core

import (
	"math"

	"messengers/internal/obs"
	"messengers/internal/sim"
)

// ringGVT is the distributed replacement for the conservative GVT
// coordinator (WithDistributedGVT): a Mattern-style ring reduction in
// which no daemon ever sees more than its two ring neighbours' traffic.
//
// The centralized coordinator costs 3 messages per daemon per round
// (query, report, advance), every one of them through daemon 0 — the
// paper's acknowledged serialization point. Here a single token makes two
// trips around the daemon ring:
//
//	pass 1 (accumulate): each daemon folds its local minimum (earliest
//	  suspended wake-up ∧ runnable LVTs) into GMin and adds its cumulative
//	  sent/received Messenger counts to GSent/GRecv, then forwards.
//	pass 2 (commit): if the counters balanced (no Messenger in transit
//	  anywhere) and the minimum advanced, the token circulates once more
//	  carrying the new GVT; every daemon installs it through the same
//	  advanceGVT path the coordinator used.
//
// That is at most 2 control messages per daemon per round, with per-link
// (not per-star) load. Daemon 0 still paces rounds — something must start
// them, and MsgGVTNotify already lands there — but it handles O(1)
// messages per round instead of O(N).
//
// The commit rule is the coordinator's, unchanged: counters must balance
// and the minimum must exceed the installed GVT (recovery mode also
// re-commits an unchanged minimum so a daemon that lost an advance can
// catch up). Because both implementations decide from the same invariant
// over the same advanceGVT path, a deterministic sim run commits the
// identical GVT sequence under either — which the differential tests
// assert.
type ringGVT struct {
	d *Daemon

	// Initiator state (meaningful on daemon 0 only).
	polling   bool
	epoch     int64
	inFlight  bool // a token of the current epoch is circulating
	wdBackoff sim.Time
	roundFrom sim.Time // engine clock at round launch (latency accounting)
}

// succ returns the next daemon after i on the token ring, skipping peers
// this daemon currently believes dead (recovery mode). With every peer
// dead it returns d.id: the ring degenerates to a self-round.
func (r *ringGVT) succ(i int) int {
	n := r.d.eng.NumDaemons()
	for hops := 0; hops < n; hops++ {
		i = r.d.topo.RingSuccessor(i)
		if i == r.d.id || r.d.rec == nil || !r.d.rec.peerDead[i] {
			return i
		}
	}
	return r.d.id
}

// handleNotify reacts to a MsgGVTNotify landing on the initiator: some
// daemon suspended a Messenger, so rounds must run until quiescence.
func (r *ringGVT) handleNotify() {
	if r.d.id != 0 || r.polling {
		return
	}
	r.polling = true
	r.startRound()
}

// startRound launches a fresh accumulation token (initiator only).
func (r *ringGVT) startRound() {
	r.epoch++
	r.inFlight = true
	r.d.Stats.GVTRounds++
	if r.d.om != nil {
		r.d.om.gvtRounds.Inc()
	}
	if r.d.tr != nil {
		r.d.tr.Instant(r.d.id, "gvt", "gvt.round", obs.I("epoch", r.epoch))
	}
	r.roundFrom = r.d.eng.Now()
	tok := &Msg{
		Kind:   MsgGVTToken,
		From:   r.d.id,
		GPass:  1,
		GEpoch: r.epoch,
		GMin:   r.d.localMin(),
		GSent:  r.d.sent,
		GRecv:  r.d.recv,
	}
	r.forward(tok)
	r.armWatchdog()
}

// forward ships the token to the ring successor, or hands it straight
// back to the initiator's handler when this daemon is alone.
func (r *ringGVT) forward(tok *Msg) {
	if r.d.om != nil {
		r.d.om.gvtTokenHops.Inc()
	}
	tok.From = r.d.id
	r.d.sendGVT(r.succ(r.d.id), tok)
}

// handleToken processes a MsgGVTToken arriving at this daemon.
func (r *ringGVT) handleToken(tok *Msg) {
	if r.d.id == 0 {
		// The token came home: the reduction (pass 1) or the commit wave
		// (pass 2) has covered the ring.
		if tok.GEpoch != r.epoch || !r.inFlight {
			return // stale token from a round the watchdog already restarted
		}
		if tok.GPass == 1 {
			r.conclude(tok)
		} else {
			r.roundDone()
		}
		return
	}
	if r.d.rec != nil && r.d.rec.peerDead[0] {
		// The initiator is (believed) dead: the token has nowhere to
		// terminate, so drop it — exactly as coordinator rounds die with
		// daemon 0. A restarted daemon 0 resumes rounds on the next notify.
		return
	}
	switch tok.GPass {
	case 1:
		if m := r.d.localMin(); m < tok.GMin {
			tok.GMin = m
		}
		tok.GSent += r.d.sent
		tok.GRecv += r.d.recv
	case 2:
		r.d.advanceGVT(tok.GVT)
	}
	r.forward(tok)
}

// conclude applies the coordinator's commit rule to a completed
// accumulation pass.
func (r *ringGVT) conclude(tok *Msg) {
	d := r.d
	r.inFlight = false
	r.wdBackoff = 0
	interval := d.sys.gvtInterval
	if tok.GSent != tok.GRecv {
		// Messengers in transit: their virtual times are unobservable, so
		// the minimum is not yet safe. Retry soon.
		d.eng.SetTimer(d.id, interval/4+1, func() { r.restart() })
		return
	}
	min := tok.GMin
	if math.IsInf(min, 1) {
		// Nothing suspended anywhere: go quiet until the next notify.
		r.polling = false
		return
	}
	if min > d.gvt || (d.rec != nil && min >= d.gvt) {
		// Install locally, then circulate the commit wave.
		d.advanceGVT(min)
		if r.d.om != nil {
			r.d.om.gvtCommits.Inc()
		}
		r.inFlight = true
		r.forward(&Msg{Kind: MsgGVTToken, GPass: 2, GEpoch: r.epoch, GVT: min})
		r.armWatchdog()
		return
	}
	r.roundDone()
}

// roundDone finishes a round (commit wave returned, or nothing to commit)
// and paces the next one.
func (r *ringGVT) roundDone() {
	r.inFlight = false
	r.wdBackoff = 0
	r.d.Stats.GVTRoundTime += r.d.eng.Now() - r.roundFrom
	r.d.eng.SetTimer(r.d.id, r.d.sys.gvtInterval, func() { r.restart() })
}

// restart begins a new round if polling is still wanted.
func (r *ringGVT) restart() {
	if r.d.id != 0 || !r.polling {
		return
	}
	r.startRound()
}

// armWatchdog relaunches a token lost to a dropped message or a dead
// daemon. Recovery mode only, with the same exponential backoff as the
// coordinator's stalled-round watchdog.
func (r *ringGVT) armWatchdog() {
	if r.d.rec == nil {
		return
	}
	r.wdBackoff = nextBackoff(r.wdBackoff, r.d.sys.gvtInterval)
	ep := r.epoch
	r.d.safeTimer(r.wdBackoff, func() {
		if r.epoch == ep && r.inFlight {
			r.startRound()
		}
	})
}

// crashReset clears initiator state when this daemon crashes (mirrors the
// coordinator reset in crashCleanup).
func (r *ringGVT) crashReset() {
	r.polling = false
	r.inFlight = false
	r.wdBackoff = 0
}
