package apps

import (
	"fmt"

	"messengers/internal/bytecode"
	"messengers/internal/compile"
	"messengers/internal/core"
	"messengers/internal/lan"
	"messengers/internal/matmul"
	"messengers/internal/obs"
	"messengers/internal/pvm"
	"messengers/internal/sim"
	"messengers/internal/value"
)

func compileScript(name, src string) (*bytecode.Program, error) {
	return compile.Compile(name, src)
}

// MatmulParams describes one block-matrix-multiplication experiment.
type MatmulParams struct {
	// M is the grid dimension: M x M blocks on M x M processors (2 or 3
	// in the paper).
	M int
	// S is the block size; the matrices are N x N with N = M*S.
	S int
	// Host selects the workstation model (the paper used 110 MHz machines
	// for the 2x2 grid and 170 MHz for the 3x3 grid).
	Host lan.HostSpec
	// Seed makes the input matrices reproducible.
	Seed int64
	// SkipArithmetic runs the full protocol (all data movement, packing,
	// and cost charging) without performing the actual floating-point
	// multiplications, whose simulated cost depends only on block sizes.
	// Timing results are identical; use it for large parameter sweeps.
	SkipArithmetic bool
	// Trace, when non-nil, receives the run's events (one track per
	// daemon/host plus the bus track, simulated-time timestamps).
	Trace *obs.Tracer
	// DistributedGVT selects the ring-reduction GVT protocol for the
	// MESSENGERS run.
	DistributedGVT bool
	// HopBatching coalesces same-destination hop traffic into batch frames.
	HopBatching bool
}

// N returns the full matrix dimension.
func (p MatmulParams) N() int { return p.M * p.S }

// MatmulResult is the outcome of one run.
type MatmulResult struct {
	Elapsed sim.Time
	C       *value.Mat // assembled result (zeros under SkipArithmetic)
	// Obs is the run's metrics registry (bus.*, host.*, gvt.rounds, ...);
	// nil for the sequential baselines.
	Obs *obs.Metrics
	// GVTCommits is the sequence of GVT values committed during a
	// MESSENGERS run, in commit order (nil for PVM/sequential runs).
	GVTCommits []float64
}

// macsCost is the CPU cost of `macs` multiply-accumulates at block size s.
func macsCost(cm *lan.CostModel, s int, spec lan.HostSpec, macs int64) sim.Time {
	return sim.Time(float64(macs) * float64(cm.MacCost(s, spec)))
}

// MsgrDistributeA is the paper's Figure 11 distribute_A script. Deviations
// from the listing, both documented in DESIGN.md: the Messenger installs
// curr_A at its own node before replicating along the row (the listing
// only writes curr_A at the destinations, leaving the diagonal node
// without its block), and the wake time uses the explicit
// ((j - i + m) % m) form because MSL's % truncates toward zero like C.
const MsgrDistributeA = `
	sched_abs((j - i + m) % m);
	node.curr_A = copy_block(node.resid_A);
	msgr.blk = copy_block(node.resid_A);
	hop(ll = "row");
	node.curr_A = msgr.blk;
`

// MsgrRotateB is the paper's Figure 11 rotate_B script. Per the paper's
// prose ("wake up at the half-way point between any two full time ticks,
// that is, at time 0.5 + k"), the wake is the absolute time k + 0.5.
const MsgrRotateB = `
	msgr.blk = copy_block(node.resid_B);
	for (k = 0; k < m; k++) {
		sched_abs(k + 0.5);
		node.C = block_multiply(node.curr_A, msgr.blk, node.C);
		hop(ll = "column", ldir = +);
	}
`

// MatmulMessengers runs the MESSENGERS block multiplication on an M x M
// simulated grid: the Fig. 10 logical network (rows fully connected by
// undirected "row" links, columns directed rings of "column" links), one
// distribute_A and one rotate_B Messenger injected per node, coordinated
// purely by global virtual time.
func MatmulMessengers(cm *lan.CostModel, p MatmulParams) (*MatmulResult, error) {
	m := p.M
	if m < 1 || p.S < 1 {
		return nil, fmt.Errorf("apps: bad matmul params %+v", p)
	}
	k := sim.New()
	n := m * m
	cluster := lan.NewCluster(k, cm, n, p.Host)
	metrics := obs.NewMetrics()
	cluster.Observe(p.Trace, metrics)
	opts := []core.Option{core.WithTracer(p.Trace), core.WithMetrics(metrics)}
	if p.DistributedGVT {
		opts = append(opts, core.WithDistributedGVT())
	}
	if p.HopBatching {
		opts = append(opts, core.WithHopBatching())
	}
	sys := core.NewSystem(core.NewSimEngine(cluster), core.FullMesh(n), opts...)

	// Fig. 10 logical network.
	spec := core.NetSpec{}
	name := func(i, j int) string { return fmt.Sprintf("n%d_%d", i, j) }
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			spec.Nodes = append(spec.Nodes, core.NetNode{Name: name(i, j), Daemon: i*m + j})
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			for j2 := j + 1; j2 < m; j2++ {
				spec.Links = append(spec.Links, core.NetLink{
					A: name(i, j), B: name(i, j2), Name: "row",
				})
			}
			// Column ring directed "upward": [i, j] -> [i-1, j].
			if m > 1 {
				up := (i - 1 + m) % m
				spec.Links = append(spec.Links, core.NetLink{
					A: name(i, j), B: name(up, j), Name: "column", Dir: 1,
				})
			}
		}
	}
	if err := sys.BuildNetwork(spec); err != nil {
		return nil, err
	}

	// Distribute the input blocks into node variables (the paper assumes
	// the matrices are already distributed from previous computations).
	a := matmul.Random(p.N(), p.Seed)
	b := matmul.Random(p.N(), p.Seed+1)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			d := sys.Daemon(i*m + j)
			node := d.Store().FindByName(name(i, j))[0]
			node.Vars["resid_A"] = value.Matrix(matmul.GetBlock(a, i, j, p.S))
			node.Vars["resid_B"] = value.Matrix(matmul.GetBlock(b, i, j, p.S))
			node.Vars["C"] = value.Matrix(value.NewMat(p.S, p.S))
		}
	}

	sys.RegisterNative("copy_block", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		if args[0].Kind() != value.KindMat {
			return value.Nil(), fmt.Errorf("copy_block of %v", args[0].Kind())
		}
		ctx.Charge(sim.Time(args[0].WireSize()) * ctx.Model().MemPerByte)
		return args[0].Clone(), nil
	})
	sys.RegisterNative("block_multiply", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		ca, cb, cc := args[0].AsMat(), args[1].AsMat(), args[2].AsMat()
		if ca == nil || cb == nil || cc == nil {
			return value.Nil(), fmt.Errorf("block_multiply needs three matrices (curr_A missing?)")
		}
		if !p.SkipArithmetic {
			matmul.AddMul(cc, ca, cb)
		}
		ctx.Charge(macsCost(ctx.Model(), p.S, ctx.HostSpec(), matmul.MACs(p.S)))
		return value.Matrix(cc), nil
	})

	distProg, err := compileScript("distribute_A", MsgrDistributeA)
	if err != nil {
		return nil, err
	}
	rotProg, err := compileScript("rotate_B", MsgrRotateB)
	if err != nil {
		return nil, err
	}
	sys.Register(distProg)
	sys.Register(rotProg)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			vars := map[string]value.Value{
				"i": value.Int(int64(i)), "j": value.Int(int64(j)), "m": value.Int(int64(m)),
			}
			if err := sys.InjectAt(i*m+j, "distribute_A", name(i, j), vars); err != nil {
				return nil, err
			}
			if err := sys.InjectAt(i*m+j, "rotate_B", name(i, j), vars); err != nil {
				return nil, err
			}
		}
	}

	elapsed := k.Run()
	if errs := sys.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("apps: matmul messengers: %v", errs[0])
	}

	c := value.NewMat(p.N(), p.N())
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			node := sys.Daemon(i*m + j).Store().FindByName(name(i, j))[0]
			blk := node.Vars["C"].AsMat()
			if blk == nil {
				return nil, fmt.Errorf("apps: node %s has no C block", name(i, j))
			}
			matmul.SetBlock(c, i, j, blk)
		}
	}
	sys.FlushVMProfiles()
	return &MatmulResult{
		Elapsed:    elapsed,
		C:          c,
		Obs:        metrics,
		GVTCommits: sys.CommitLog(),
	}, nil
}

// MatmulPVM runs the paper's Figure 9 program under the PVM baseline: the
// manager spawns M*M workers (one per host); each worker multicasts its A
// block along its row when it holds the current diagonal, multiplies, and
// rotates its B block to its northern neighbor.
func MatmulPVM(cm *lan.CostModel, p MatmulParams) (*MatmulResult, error) {
	m := p.M
	if m < 1 || p.S < 1 {
		return nil, fmt.Errorf("apps: bad matmul params %+v", p)
	}
	const (
		tagABase = 100
		tagBBase = 100000
	)
	k := sim.New()
	n := m * m
	cluster := lan.NewCluster(k, cm, n, p.Host)
	metrics := obs.NewMetrics()
	cluster.Observe(p.Trace, metrics)
	mach := pvm.NewSimMachine(cluster)
	mach.Observe(p.Trace, metrics)
	// The measured phase in the paper's Fig. 12 is the multiplication
	// itself: workers are already running (just as the MESSENGERS side's
	// logical network is already built), so spawning is free here.
	mach.SetSpawnCost(0)

	a := matmul.Random(p.N(), p.Seed)
	b := matmul.Random(p.N(), p.Seed+1)
	cOut := value.NewMat(p.N(), p.N())

	workerBody := func(i, j int) pvm.TaskFunc {
		return func(w *pvm.Proc) {
			w.JoinGroupAs("mmult", i*m+j)
			myRow := make([]pvm.TID, m)
			for jj := 0; jj < m; jj++ {
				myRow[jj] = w.Gettid("mmult", i*m+jj)
			}
			north := w.Gettid("mmult", ((i-1+m)%m)*m+j)
			south := w.Gettid("mmult", ((i+1)%m)*m+j)

			blockA := matmul.GetBlock(a, i, j, p.S)
			blockB := matmul.GetBlock(b, i, j, p.S)
			blockC := value.NewMat(p.S, p.S)

			for kk := 0; kk < m; kk++ {
				var currA *value.Mat
				if j == (i+kk)%m {
					// This worker holds the block to distribute: multicast
					// it to the rest of its row.
					w.InitSend()
					w.PkMat(blockA)
					w.Mcast(myRow, tagABase+kk)
					currA = blockA
				} else {
					buf := w.Recv(pvm.AnySource, tagABase+kk)
					currA = w.UpkMat(buf)
				}
				if !p.SkipArithmetic {
					matmul.AddMul(blockC, currA, blockB)
				}
				w.Compute(macsCost(cm, p.S, p.Host, matmul.MACs(p.S)))
				// Rotate B: send to the northern neighbor, receive from the
				// southern one.
				if m > 1 {
					w.InitSend()
					w.PkMat(blockB)
					w.Send(north, tagBBase+kk)
					buf := w.Recv(south, tagBBase+kk)
					blockB = w.UpkMat(buf)
				}
			}
			matmul.SetBlock(cOut, i, j, blockC) // result stays distributed; gathered for validation
		}
	}

	mach.SpawnAt("manager", 0, func(mgr *pvm.Proc) {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				mgr.Spawn("worker", i*m+j, workerBody(i, j))
			}
		}
	})

	elapsed := k.Run()
	k.Shutdown()
	if errs := mach.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("apps: matmul pvm: %v", errs[0])
	}
	return &MatmulResult{
		Elapsed: elapsed,
		C:       cOut,
		Obs:     metrics,
	}, nil
}

// MatmulSequentialNaive times the naive triple-loop multiply on one host.
func MatmulSequentialNaive(cm *lan.CostModel, p MatmulParams) *MatmulResult {
	nn := p.N()
	var c *value.Mat
	if p.SkipArithmetic {
		c = value.NewMat(nn, nn)
	} else {
		a := matmul.Random(nn, p.Seed)
		b := matmul.Random(nn, p.Seed+1)
		c = matmul.Naive(a, b)
	}
	elapsed := cm.ScaleFor(p.Host, macsCost(cm, nn, p.Host, matmul.MACs(nn)))
	return &MatmulResult{Elapsed: elapsed, C: c}
}

// MatmulSequentialBlock times the block-partitioned sequential multiply
// (the paper's second baseline) on one host.
func MatmulSequentialBlock(cm *lan.CostModel, p MatmulParams) *MatmulResult {
	nn := p.N()
	var c *value.Mat
	if p.SkipArithmetic {
		c = value.NewMat(nn, nn)
	} else {
		a := matmul.Random(nn, p.Seed)
		b := matmul.Random(nn, p.Seed+1)
		c = matmul.BlockSequential(a, b, p.M)
	}
	// m^3 block multiplies of size s plus the block extraction copies.
	macs := matmul.MACs(p.S) * int64(p.M*p.M*p.M)
	copies := sim.Time(8*nn*nn*3) * cm.MemPerByte
	elapsed := cm.ScaleFor(p.Host, macsCost(cm, p.S, p.Host, macs)+copies)
	return &MatmulResult{Elapsed: elapsed, C: c}
}
