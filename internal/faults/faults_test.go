package faults

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"messengers/internal/sim"
)

// TestDecideDeterminism: the same seed and plan produce the identical
// verdict stream, and a different seed produces a different one.
func TestDecideDeterminism(t *testing.T) {
	plan := &Plan{Seed: 42, Drop: 0.2, Dup: 0.1, Corrupt: 0.05, DelayProb: 0.1, Delay: int64(sim.Millisecond)}
	stream := func(seed uint64) []Verdict {
		p := *plan
		p.Seed = seed
		in := NewInjector(&p, nil, nil)
		out := make([]Verdict, 200)
		for i := range out {
			out[i] = in.Decide(int64(i), i%3, (i+1)%3, 100)
		}
		return out
	}
	a, b := stream(42), stream(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different verdict streams")
	}
	if reflect.DeepEqual(a, stream(43)) {
		t.Fatal("different seeds produced identical verdict streams")
	}
	injected := 0
	for _, v := range a {
		if v.Drop || v.Dup || v.Corrupt || v.Delay > 0 {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("plan with 20% drop injected nothing across 200 messages")
	}
}

// TestDecidePrecedence: drop wins over everything; corrupt over dup/delay.
func TestDecidePrecedence(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Drop: 1, Dup: 1, Corrupt: 1, DelayProb: 1, Delay: 5}, nil, nil)
	v := in.Decide(0, 0, 1, 10)
	if !v.Drop || v.Dup || v.Corrupt || v.Delay != 0 {
		t.Errorf("all-faults verdict = %+v, want pure drop", v)
	}
	in = NewInjector(&Plan{Seed: 1, Corrupt: 1, Dup: 1, DelayProb: 1, Delay: 5}, nil, nil)
	v = in.Decide(0, 0, 1, 10)
	if !v.Corrupt || v.Dup || v.Delay != 0 {
		t.Errorf("corrupt verdict = %+v, want pure corrupt", v)
	}
}

// TestDecidePartition: messages crossing the cut drop during the window,
// messages inside either side pass, and healing restores delivery.
func TestDecidePartition(t *testing.T) {
	plan := &Plan{Seed: 1, Partitions: []Partition{{At: 100, Heal: 200, Group: []int{0, 1}}}}
	in := NewInjector(plan, nil, nil)
	if v := in.Decide(50, 0, 2, 1); v.Drop {
		t.Error("dropped before the partition started")
	}
	if v := in.Decide(150, 0, 2, 1); !v.Drop {
		t.Error("cross-cut message survived the partition")
	}
	if v := in.Decide(150, 0, 1, 1); v.Drop {
		t.Error("intra-group message dropped during the partition")
	}
	if v := in.Decide(150, 2, 3, 1); v.Drop {
		t.Error("message between two outside daemons dropped")
	}
	if v := in.Decide(250, 0, 2, 1); v.Drop {
		t.Error("dropped after the partition healed")
	}
}

// TestPartitionConsumesNoRandomness: the verdict stream for clean messages
// is unaffected by partition checks, keeping traces comparable across plans
// that differ only in partitions.
func TestPartitionConsumesNoRandomness(t *testing.T) {
	base := &Plan{Seed: 7, Drop: 0.5}
	withPart := &Plan{Seed: 7, Drop: 0.5,
		Partitions: []Partition{{At: 0, Heal: 1, Group: []int{0}}}}
	a, b := NewInjector(base, nil, nil), NewInjector(withPart, nil, nil)
	for i := 0; i < 100; i++ {
		// Past Heal, so the partition never fires but is always checked.
		va, vb := a.Decide(int64(10+i), 0, 1, 1), b.Decide(int64(10+i), 0, 1, 1)
		if va != vb {
			t.Fatalf("message %d: verdicts diverge (%+v vs %+v)", i, va, vb)
		}
	}
}

// TestDecideOneWayPartition: an asymmetric cut drops only the group's
// outbound traffic; inbound messages still flow.
func TestDecideOneWayPartition(t *testing.T) {
	plan := &Plan{Seed: 1, Partitions: []Partition{{At: 100, Heal: 200, Group: []int{0}, OneWay: true}}}
	in := NewInjector(plan, nil, nil)
	if v := in.Decide(150, 0, 2, 1); !v.Drop {
		t.Error("outbound message from the one-way-partitioned group survived")
	}
	if v := in.Decide(150, 2, 0, 1); v.Drop {
		t.Error("inbound message into the one-way-partitioned group dropped")
	}
	if v := in.Decide(250, 0, 2, 1); v.Drop {
		t.Error("outbound message dropped after heal")
	}
}

// TestDecideStorm: inside the storm window the storm's probabilities apply;
// outside, the base plan's. The stream stays aligned (four draws either way).
func TestDecideStorm(t *testing.T) {
	plan := &Plan{Seed: 3, Storms: []Storm{{At: 100, Until: 200, Drop: 1}}}
	in := NewInjector(plan, nil, nil)
	if v := in.Decide(50, 0, 1, 1); v.Drop {
		t.Error("dropped before the storm")
	}
	if v := in.Decide(150, 0, 1, 1); !v.Drop {
		t.Error("survived a drop=1 storm window")
	}
	if v := in.Decide(250, 0, 1, 1); v.Drop {
		t.Error("dropped after the storm")
	}
	// Alignment: a never-firing storm must not perturb the verdict stream.
	base := NewInjector(&Plan{Seed: 7, Drop: 0.5}, nil, nil)
	with := NewInjector(&Plan{Seed: 7, Drop: 0.5, Storms: []Storm{{At: 0, Until: 1, Drop: 1}}}, nil, nil)
	for i := 0; i < 100; i++ {
		va, vb := base.Decide(int64(10+i), 0, 1, 1), with.Decide(int64(10+i), 0, 1, 1)
		if va != vb {
			t.Fatalf("message %d: verdicts diverge with inactive storm (%+v vs %+v)", i, va, vb)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{Drop: 1.5},
		{Dup: -0.1},
		{DelayProb: 0.5},                             // delay_prob without delay
		{Crashes: []Crash{{Daemon: 9, At: 1}}},       // unknown daemon
		{Crashes: []Crash{{Daemon: 0, At: -1}}},      // negative time
		{Partitions: []Partition{{At: 0}}},           // empty group
		{Partitions: []Partition{{Group: []int{7}}}}, // unknown daemon
		{Partitions: []Partition{{At: 100, Heal: 50, Group: []int{0}}}},                 // heal before at
		{Storms: []Storm{{At: 100, Until: 100}}},                                        // empty window
		{Storms: []Storm{{At: 0, Until: 10, Drop: 2}}},                                  // bad probability
		{Storms: []Storm{{At: 0, Until: 10, DelayProb: 0.5}}},                           // delay_prob without delay
		{Crashes: []Crash{{Daemon: 0, At: 10, RestartAfter: 100}, {Daemon: 0, At: 50}}}, // overlap
		{Crashes: []Crash{{Daemon: 0, At: 10}, {Daemon: 0, At: 500}}},                   // no-restart overlap
	}
	for i := range bad {
		if err := bad[i].Validate(4); err == nil {
			t.Errorf("plan %d validated but is invalid: %+v", i, bad[i])
		}
	}
	good := Plan{Drop: 0.1, DelayProb: 0.1, Delay: 5,
		Crashes: []Crash{
			{Daemon: 3, At: 10, RestartAfter: 5},
			{Daemon: 3, At: 100, RestartAfter: 5}, // disjoint window, same daemon: fine
			{Daemon: 2, At: 12},                   // different daemon inside d3's window: fine
		},
		Partitions: []Partition{{At: 1, Heal: 2, Group: []int{0, 3}, OneWay: true}},
		Storms:     []Storm{{At: 5, Until: 9, Drop: 0.5, DelayProb: 0.1, Delay: 3}}}
	if err := good.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestLoadFieldErrors: Load rejects unknown keys (a typoed field silently
// disabling a fault is the worst chaos-plan failure mode) and reports
// structural errors with the offending field and entry index.
func TestLoadFieldErrors(t *testing.T) {
	write := func(t *testing.T, data string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "plan.json")
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name, json, wantSub string
	}{
		{"unknown top-level key", `{"seed": 1, "paritions": []}`, "paritions"},
		{"unknown nested key", `{"crashes": [{"daemon": 0, "at": 5, "restart": 9}]}`, "restart"},
		{"negative crash time", `{"crashes": [{"daemon": 0, "at": -5}]}`, "crashes[0]"},
		{"negative restart", `{"crashes": [{"daemon": 0, "at": 5, "restart_after": -1}]}`, "crashes[0]"},
		{"overlapping crash windows",
			`{"crashes": [{"daemon": 1, "at": 10, "restart_after": 100}, {"daemon": 1, "at": 50, "restart_after": 10}]}`,
			"overlapping"},
		{"inverted partition window", `{"partitions": [{"at": 100, "heal": 10, "group": [0]}]}`, "partitions[0]"},
		{"negative delay", `{"delay": -3}`, "delay"},
		{"storm without end", `{"storms": [{"at": 100, "drop": 0.5}]}`, "storms[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(write(t, tc.json))
			if err == nil {
				t.Fatalf("plan %s loaded without error", tc.json)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not name the field (want substring %q)", err, tc.wantSub)
			}
		})
	}
	// A valid plan with the new fields round-trips.
	p, err := Load(write(t, `{
		"seed": 4,
		"partitions": [{"at": 10, "heal": 20, "group": [0], "one_way": true}],
		"storms": [{"at": 5, "until": 9, "drop": 0.5, "dup": 0.1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Partitions[0].OneWay || len(p.Storms) != 1 || p.Storms[0].Drop != 0.5 {
		t.Errorf("loaded plan = %+v", p)
	}
}

func TestLoadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	data := `{
		"seed": 9, "drop": 0.05, "delay_prob": 0.01, "delay": 1000000,
		"crashes": [{"daemon": 2, "at": 200000000, "restart_after": 50000000}],
		"partitions": [{"at": 10, "heal": 20, "group": [0, 1]}]
	}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.Drop != 0.05 || len(p.Crashes) != 1 || len(p.Partitions) != 1 {
		t.Errorf("loaded plan = %+v", p)
	}
	if p.Crashes[0].Daemon != 2 || p.Crashes[0].RestartAfter != 50000000 {
		t.Errorf("crash = %+v", p.Crashes[0])
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

// scheduleTarget records Schedule's calls with their firing times.
type scheduleTarget struct {
	n      int
	events []string
}

func (s *scheduleTarget) NumDaemons() int         { return s.n }
func (s *scheduleTarget) Crash(d int)             { s.events = append(s.events, "crash") }
func (s *scheduleTarget) Restart(d int)           { s.events = append(s.events, "restart") }
func (s *scheduleTarget) NotifyPeerDown(o, d int) { s.events = append(s.events, "down") }
func (s *scheduleTarget) NotifyPeerUp(o, d int)   { s.events = append(s.events, "up") }

// TestScheduleOrdering: crash fires before its notices (DetectDelay later),
// restart before its notices, and notices go to every survivor.
func TestScheduleOrdering(t *testing.T) {
	tgt := &scheduleTarget{n: 3}
	type timed struct {
		at int64
		fn func()
	}
	var timers []timed
	plan := &Plan{
		DetectDelay: 5,
		Crashes:     []Crash{{Daemon: 1, At: 100, RestartAfter: 50}},
	}
	Schedule(plan, tgt, func(at int64, fn func()) { timers = append(timers, timed{at, fn}) }, true)
	sort.SliceStable(timers, func(i, j int) bool { return timers[i].at < timers[j].at })
	for _, tm := range timers {
		tm.fn()
	}
	want := []string{"crash", "down", "down", "restart", "up", "up"}
	if !reflect.DeepEqual(tgt.events, want) {
		t.Errorf("events = %v, want %v", tgt.events, want)
	}
	// Without notify, only the crash and restart are armed.
	tgt2 := &scheduleTarget{n: 3}
	var count int
	Schedule(plan, tgt2, func(at int64, fn func()) { count++; fn() }, false)
	if count != 2 {
		t.Errorf("notify=false armed %d timers, want 2", count)
	}
}
