package script

import "fmt"

// Parser turns MSL source into a Script AST.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete MSL script.
func Parse(src string) (*Script, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseScript()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) peek() Token { return p.peekAt(1) }

func (p *Parser) peekAt(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %v, found %v", k, p.describe(p.cur()))
	}
	return p.next(), nil
}

func (p *Parser) describe(t Token) string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INT, FLOAT:
		return fmt.Sprintf("literal %s", t.Text)
	case STRING:
		return fmt.Sprintf("string %q", t.Str)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

func (p *Parser) parseScript() (*Script, error) {
	s := &Script{}
	for !p.at(EOF) {
		if p.at(KwFunc) {
			if len(s.Body) > 0 {
				return nil, errf(p.cur().Pos, "function declarations must appear before the main body")
			}
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			for _, prev := range s.Funcs {
				if prev.Name == f.Name {
					return nil, errf(f.Pos, "function %q redeclared", f.Name)
				}
			}
			s.Funcs = append(s.Funcs, f)
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Body = append(s.Body, st)
	}
	return s, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw := p.next() // func
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos: kw.Pos, Name: name.Text}
	if !p.at(RPAREN) {
		for {
			param, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			for _, prev := range f.Params {
				if prev == param.Text {
					return nil, errf(param.Pos, "duplicate parameter %q", param.Text)
				}
			}
			f.Params = append(f.Params, param.Text)
			if !p.accept(COMMA) {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, errf(p.cur().Pos, "unexpected end of file in block")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
	}
	p.next() // }
	return stmts, nil
}

// parseBody parses either a braced block or a single statement.
func (p *Parser) parseBody() ([]Stmt, error) {
	if p.at(LBRACE) {
		return p.parseBlock()
	}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{st}, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwBreak:
		t := p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case KwContinue:
		t := p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case KwReturn:
		t := p.next()
		var val Expr
		if !p.at(SEMI) {
			var err error
			val, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: t.Pos, Value: val}, nil
	case KwEnd:
		t := p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &EndStmt{Pos: t.Pos}, nil
	case KwHop, KwCreate, KwDelete:
		return p.parseNav()
	case KwFunc:
		return nil, errf(p.cur().Pos, "function declarations must appear before the main body")
	default:
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return st, nil
	}
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// without the trailing semicolon (shared with for-headers).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if ae, ok := lhs.(*AssignExpr); ok {
		// Plain assignment parsed as an expression; at statement level it
		// is an AssignStmt.
		return &AssignStmt{Pos: start, Target: ae.Target, Value: ae.Value}, nil
	}
	switch p.cur().Kind {
	case PLUSEQ, MINUSEQ:
		opTok := p.next()
		if err := checkAssignable(lhs); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		op := PLUS
		if opTok.Kind == MINUSEQ {
			op = MINUS
		}
		return &AssignStmt{Pos: start, Target: lhs, Op: op, Value: rhs}, nil
	case PLUSPLUS, MINUSMINUS:
		opTok := p.next()
		if err := checkAssignable(lhs); err != nil {
			return nil, err
		}
		return &IncDecStmt{Pos: start, Target: lhs, Dec: opTok.Kind == MINUSMINUS}, nil
	default:
		return &ExprStmt{Pos: start, X: lhs}, nil
	}
}

func checkAssignable(e Expr) error {
	switch v := e.(type) {
	case *VarExpr:
		if v.Space == SpaceNet {
			return errf(v.Pos, "network variable $%s is read-only", v.Name)
		}
		return nil
	case *IndexExpr:
		return checkAssignable(v.Base)
	default:
		return errf(e.StartPos(), "cannot assign to this expression")
	}
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if p.accept(KwElse) {
		if p.at(KwIf) {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{inner}
		} else {
			els, err := p.parseBody()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: kw.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: kw.Pos}
	if !p.at(SEMI) {
		init, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if !p.at(SEMI) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if !p.at(RPAREN) {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// parseNav parses hop(...), create(...), and delete(...). The argument list
// is semicolon-separated groups "field = v1, v2, ..." plus the bare word ALL
// (create only). In value position the bare tokens *, +, -, ~ and the word
// virtual are the calculus literals of the paper.
func (p *Parser) parseNav() (Stmt, error) {
	kw := p.next()
	var kind NavKind
	switch kw.Kind {
	case KwHop:
		kind = NavHop
	case KwCreate:
		kind = NavCreate
	default:
		kind = NavDelete
	}
	st := &NavStmt{Pos: kw.Pos, Kind: kind}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for !p.at(RPAREN) {
		if p.at(IDENT) && (p.cur().Text == "ALL" || p.cur().Text == "all") && p.peek().Kind != ASSIGN {
			if kind != NavCreate {
				return nil, errf(p.cur().Pos, "ALL is only valid in create")
			}
			p.next()
			st.All = true
		} else {
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			field, ok := navFieldNames[name.Text]
			if !ok {
				return nil, errf(name.Pos, "unknown %s parameter %q (want ln, ll, ldir, dn, dl, ddir, or ALL)", kind, name.Text)
			}
			if kind != NavCreate && field >= FieldDN {
				return nil, errf(name.Pos, "%s only takes logical parameters (ln, ll, ldir)", kind)
			}
			if len(st.Fields[field]) > 0 {
				return nil, errf(name.Pos, "duplicate %s parameter %q", kind, name.Text)
			}
			if _, err := p.expect(ASSIGN); err != nil {
				return nil, err
			}
			for {
				v, err := p.parseNavValue()
				if err != nil {
					return nil, err
				}
				st.Fields[field] = append(st.Fields[field], v)
				// A comma continues this value list unless what follows is
				// "field =" or "ALL", which starts the next group (both ";"
				// and "," group separators are accepted).
				if !p.at(COMMA) {
					break
				}
				if n := p.peek(); n.Kind == IDENT && p.peekAt(2).Kind == ASSIGN {
					if _, isField := navFieldNames[n.Text]; isField {
						break
					}
				} else if n.Kind == IDENT && (n.Text == "ALL" || n.Text == "all") {
					break
				}
				p.next() // consume the list comma
			}
		}
		if !p.accept(SEMI) && !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return st, nil
}

// parseNavValue parses one destination-specification value, handling the
// calculus literals that would otherwise be operators.
func (p *Parser) parseNavValue() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case STAR, PLUS, MINUS, TILDE:
		if nk := p.peek().Kind; nk == COMMA || nk == SEMI || nk == RPAREN {
			p.next()
			lit := map[Kind]string{STAR: "*", PLUS: "+", MINUS: "-", TILDE: "~"}[t.Kind]
			return &StrLit{Pos: t.Pos, V: lit}, nil
		}
	case IDENT:
		if t.Text == "virtual" {
			if nk := p.peek().Kind; nk == COMMA || nk == SEMI || nk == RPAREN {
				p.next()
				return &StrLit{Pos: t.Pos, V: VirtualLink}, nil
			}
		}
	}
	return p.parseExpr()
}

// VirtualLink is the link-name constant denoting a direct jump to the named
// node ("virtual link" in the paper's destination specifications).
const VirtualLink = "#virtual"

// --- Expressions: precedence climbing ---

func (p *Parser) parseExpr() (Expr, error) {
	lhs, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.at(ASSIGN) {
		if err := checkAssignable(lhs); err != nil {
			return nil, err
		}
		eq := p.next()
		rhs, err := p.parseExpr() // right-associative
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Pos: eq.Pos, Target: lhs, Value: rhs}, nil
	}
	return lhs, nil
}

// binding powers: ||=1, &&=2, ==/!= =3, relational=4, additive=5,
// multiplicative=6.
func binaryPower(k Kind) int {
	switch k {
	case OROR:
		return 1
	case ANDAND:
		return 2
	case EQ, NE:
		return 3
	case LT, LE, GT, GE:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH, PERCENT:
		return 6
	default:
		return 0
	}
}

func (p *Parser) parseBinary(minPower int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		power := binaryPower(p.cur().Kind)
		if power < minPower {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(power + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case MINUS, NOT:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: op.Pos, Op: op.Kind, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(LBRACK) {
		lb := p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		x = &IndexExpr{Pos: lb.Pos, Base: x, Idx: idx}
	}
	return x, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		return &IntLit{Pos: t.Pos, V: t.Int}, nil
	case FLOAT:
		p.next()
		return &NumLit{Pos: t.Pos, V: t.Num}, nil
	case STRING:
		p.next()
		return &StrLit{Pos: t.Pos, V: t.Str}, nil
	case KwNil:
		p.next()
		return &NilLit{Pos: t.Pos}, nil
	case DOLLAR:
		p.next()
		// Keywords are valid network-variable names ($node).
		if p.at(KwNode) {
			p.next()
			return &VarExpr{Pos: t.Pos, Space: SpaceNet, Name: "node"}, nil
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return &VarExpr{Pos: t.Pos, Space: SpaceNet, Name: name.Text}, nil
	case KwNode:
		p.next()
		if _, err := p.expect(DOT); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return &VarExpr{Pos: t.Pos, Space: SpaceNode, Name: name.Text}, nil
	case IDENT:
		if t.Text == "msgr" && p.peek().Kind == DOT {
			p.next()
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			return &VarExpr{Pos: t.Pos, Space: SpaceMsgr, Name: name.Text}, nil
		}
		p.next()
		if p.at(LPAREN) {
			p.next()
			call := &CallExpr{Pos: t.Pos, Name: t.Text}
			if !p.at(RPAREN) {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(COMMA) {
						break
					}
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &VarExpr{Pos: t.Pos, Space: SpaceAuto, Name: t.Text}, nil
	case LPAREN:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	case LBRACK:
		p.next()
		lit := &ArrayLit{Pos: t.Pos}
		if !p.at(RBRACK) {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lit.Elems = append(lit.Elems, e)
				if !p.accept(COMMA) {
					break
				}
			}
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		return lit, nil
	default:
		return nil, errf(t.Pos, "unexpected %s in expression", p.describe(t))
	}
}
