// Package backoff computes jittered exponential backoff delays.
//
// Both retry sites in the tree — TCP redial after a connection failure and
// the recovery layer's hop retransmission — used pure doubling, which
// synchronizes every peer that observed the same failure: after a partition
// heals, all survivors redial on the same schedule and the first round-trip
// collides (a thundering herd). Jitter decorrelates the retries.
//
// The jitter is deterministic: it is derived by hashing a caller-supplied
// key (daemon pair, hop sequence, attempt number) rather than from a global
// RNG or the wall clock, so the simulated engine's runs stay byte-identical
// for a given seedless configuration and real-engine runs are reproducible
// in tests.
package backoff

import "time"

// Jittered returns the delay before retry number attempt (1-based), using
// "equal jitter": half the exponential ceiling is kept, half is scaled by a
// hash of key and attempt. The ceiling is base<<(attempt-1) capped at max,
// so the sequence keeps its exponential envelope — delay ∈ [ceil/2, ceil)
// — while distinct keys spread within it.
func Jittered(base, max time.Duration, attempt int, key uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	ceil := Exp(base, max, attempt)
	half := ceil / 2
	if half <= 0 {
		return ceil
	}
	frac := float64(mix(key+uint64(attempt))>>11) / float64(1<<53)
	return half + time.Duration(frac*float64(half))
}

// Exp returns the unjittered exponential ceiling base<<(attempt-1) capped
// at max (attempt is 1-based). Shifts that would overflow saturate at max.
func Exp(base, max time.Duration, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max || d < 0 {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// Key folds up to four small integers into one hash key. Call sites build
// stable keys like Key(src, dst, attempt, 0) so the same retry in the same
// run always draws the same jitter.
func Key(a, b, c, d int) uint64 {
	k := uint64(a)
	k = mix(k ^ uint64(b)<<16)
	k = mix(k ^ uint64(c)<<32)
	k = mix(k ^ uint64(d)<<48)
	return k
}

// mix is the splitmix64 finalizer — the same mixer the fault injector uses,
// chosen for the same reason: full avalanche from sequential inputs with no
// shared state.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
