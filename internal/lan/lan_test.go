package lan

import (
	"testing"

	"messengers/internal/sim"
)

func TestWireTime(t *testing.T) {
	cm := DefaultCostModel()
	oneFrame := cm.WireTime(100)
	wantOne := cm.FrameOverhead + 100*cm.WirePerByte
	if oneFrame != wantOne {
		t.Errorf("WireTime(100) = %v, want %v", oneFrame, wantOne)
	}
	twoFrames := cm.WireTime(cm.FramePayload + 1)
	if twoFrames <= oneFrame {
		t.Error("larger message should take longer")
	}
	if got := cm.WireTime(2 * cm.FramePayload); got != 2*cm.FrameOverhead+sim.Time(2*cm.FramePayload)*cm.WirePerByte {
		t.Errorf("WireTime(2 frames) = %v", got)
	}
	if got := cm.WireTime(0); got != cm.FrameOverhead {
		t.Errorf("WireTime(0) = %v, want one frame overhead", got)
	}
}

func TestFrags(t *testing.T) {
	cm := DefaultCostModel()
	tests := []struct {
		bytes, want int
	}{
		{0, 1}, {1, 1}, {cm.PVMFragSize, 1}, {cm.PVMFragSize + 1, 2}, {3 * cm.PVMFragSize, 3},
	}
	for _, tt := range tests {
		if got := cm.Frags(tt.bytes); got != tt.want {
			t.Errorf("Frags(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

func TestHostSpecScale(t *testing.T) {
	if got := SPARC110.scale(1000); got != 1000 {
		t.Errorf("110MHz scale = %v, want identity", got)
	}
	if got := SPARC170.scale(1700); got != 1100 {
		t.Errorf("170MHz scale(1700) = %v, want 1100", got)
	}
	zero := HostSpec{}
	if got := zero.scale(42); got != 42 {
		t.Errorf("zero-MHz spec should not scale, got %v", got)
	}
}

func TestMacCostMonotoneInBlockSize(t *testing.T) {
	cm := DefaultCostModel()
	prev := sim.Time(0)
	for _, s := range []int{10, 50, 100, 500, 1000, 1500} {
		c := cm.MacCost(s, SPARC110)
		if c < prev {
			t.Errorf("MacCost(%d) = %v decreased from %v", s, c, prev)
		}
		prev = c
	}
	// The penalty must stay bounded by (1 + MacMissX).
	max := sim.Time(float64(cm.MacBase) * (1 + SPARC110.MacMissX))
	if c := cm.MacCost(1<<14, SPARC110); c > max {
		t.Errorf("MacCost asymptote %v exceeds bound %v", c, max)
	}
}

func TestMacCostBlockVsNaiveGap(t *testing.T) {
	// The paper reports ~13% speedup from partitioning a 1500x1500
	// multiply into 500-blocks on a SPARCstation 5. The cost-curve ratio
	// should land in that neighborhood (exact figure checked in the
	// benchmark harness).
	cm := DefaultCostModel()
	ratio := float64(cm.MacCost(1500, SPARC110)) / float64(cm.MacCost(500, SPARC110))
	if ratio < 1.05 || ratio > 1.35 {
		t.Errorf("naive/block cost ratio = %.3f, want roughly 1.1-1.3", ratio)
	}
}

func TestBusSerializesTransmissions(t *testing.T) {
	k := sim.New()
	cm := DefaultCostModel()
	b := NewBus(k, cm)
	var first, second sim.Time
	b.Transmit(1000, func() { first = k.Now() })
	b.Transmit(1000, func() { second = k.Now() })
	k.Run()
	tx := cm.WireTime(1000)
	if first != tx+cm.PropDelay {
		t.Errorf("first delivery at %v, want %v", first, tx+cm.PropDelay)
	}
	if second != 2*tx+cm.PropDelay {
		t.Errorf("second delivery at %v, want %v (serialized)", second, 2*tx+cm.PropDelay)
	}
	if b.Stats.Messages != 2 || b.Stats.Bytes != 2000 || b.Stats.BusyTime != 2*tx {
		t.Errorf("stats = %+v", b.Stats)
	}
}

func TestHostExecSerializes(t *testing.T) {
	k := sim.New()
	h := &Host{ID: 0, Spec: SPARC110, k: k}
	var done1, done2 sim.Time
	h.Exec(100, func() { done1 = k.Now() })
	h.Exec(50, func() { done2 = k.Now() })
	k.Run()
	if done1 != 100 || done2 != 150 {
		t.Errorf("done1=%v done2=%v, want 100, 150", done1, done2)
	}
	if h.Stats.BusyTime != 150 {
		t.Errorf("BusyTime = %v", h.Stats.BusyTime)
	}
	if got := h.Exec(-5, nil); got != k.Now()+150-150 {
		// negative cost clamps to zero: completes "now" given free CPU
		t.Errorf("negative cost Exec returned %v", got)
	}
}

func TestHostExecScaled(t *testing.T) {
	k := sim.New()
	h := &Host{ID: 0, Spec: SPARC170, k: k}
	done := h.ExecScaled(1700, nil)
	if done != 1100 {
		t.Errorf("ExecScaled done = %v, want 1100", done)
	}
	if h.Scale(1700) != 1100 {
		t.Errorf("Scale = %v", h.Scale(1700))
	}
}

func TestHostExecProcBlocksAndContends(t *testing.T) {
	k := sim.New()
	defer k.Shutdown()
	h := &Host{ID: 0, Spec: SPARC110, k: k}
	var order []string
	k.Spawn("a", func(p *sim.Proc) {
		h.ExecProc(p, 100)
		order = append(order, "a")
	})
	k.Spawn("b", func(p *sim.Proc) {
		h.ExecProc(p, 100)
		order = append(order, "b")
	})
	end := k.Run()
	if end != 200 {
		t.Errorf("two 100ns jobs on one CPU should end at 200, got %v", end)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order = %v", order)
	}
}

func TestClusterSendRemoteAndLocal(t *testing.T) {
	k := sim.New()
	cm := DefaultCostModel()
	c := NewCluster(k, cm, 2, SPARC110)
	var remoteAt, localAt sim.Time
	c.Send(0, 1, 1000, 10, 20, func() { remoteAt = k.Now() })
	k.Run()
	want := sim.Time(10) + cm.WireTime(1000) + cm.PropDelay + 20
	if remoteAt != want {
		t.Errorf("remote delivery at %v, want %v", remoteAt, want)
	}

	k2 := sim.New()
	c2 := NewCluster(k2, cm, 2, SPARC110)
	c2.Send(1, 1, 1000, 10, 20, func() { localAt = k2.Now() })
	k2.Run()
	if localAt != 30 {
		t.Errorf("local delivery at %v, want 30 (no bus)", localAt)
	}
	if c2.Bus.Stats.Messages != 0 {
		t.Error("local send must not touch the bus")
	}
}

func TestNewClusterValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCluster(0 hosts) should panic")
		}
	}()
	NewCluster(sim.New(), DefaultCostModel(), 0, SPARC110)
}

func TestFastEthernet(t *testing.T) {
	cm := DefaultCostModel()
	fast := cm.FastEthernet()
	if fast.WirePerByte != cm.WirePerByte/10 {
		t.Errorf("fast wire per byte = %v", fast.WirePerByte)
	}
	if fast.WireTime(100000) >= cm.WireTime(100000) {
		t.Error("fast segment must be faster")
	}
	// The original is untouched.
	if cm.WirePerByte != DefaultCostModel().WirePerByte {
		t.Error("FastEthernet mutated the original model")
	}
	// CPU-side constants are unchanged: only the segment speed differs.
	if fast.MsgrHopFixed != cm.MsgrHopFixed || fast.PVMFragFixed != cm.PVMFragFixed {
		t.Error("FastEthernet must only change the wire")
	}
}

func TestCostModelCloneIsIndependent(t *testing.T) {
	cm := DefaultCostModel()
	cl := cm.Clone()
	cl.PVMWindow = 99
	if cm.PVMWindow == 99 {
		t.Error("Clone must not alias the original")
	}
	if cm.String() == "" {
		t.Error("String should describe the model")
	}
}

func TestMandelCost(t *testing.T) {
	cm := DefaultCostModel()
	got := cm.MandelCost(1000, 10, SPARC110)
	want := 1000*cm.MandelPerIter + 10*cm.MandelPerPixel
	if got != want {
		t.Errorf("MandelCost = %v, want %v", got, want)
	}
	// Costs are 110 MHz-calibrated; the host scales them exactly once
	// (ScaleFor for sequential runs, the host executor otherwise).
	if cm.MandelCost(1000, 10, SPARC170) != got {
		t.Error("MandelCost must not pre-scale by host clock")
	}
	if cm.ScaleFor(SPARC170, 1700) != 1100 {
		t.Errorf("ScaleFor = %v", cm.ScaleFor(SPARC170, 1700))
	}
}
