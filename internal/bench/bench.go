// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §3 for the index). Each
// figure function runs the relevant parameter sweep over the simulated
// cluster and returns the series the paper plots; formatting helpers render
// them as aligned tables and CSV.
package bench

import (
	"fmt"
	"strings"

	"messengers/internal/sim"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// secs renders a simulated time in seconds with sensible precision.
func secs(t sim.Time) string { return fmt.Sprintf("%.3f", t.Seconds()) }

// ratio renders a/b.
func ratio(a, b sim.Time) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}
