package messengers_test

import (
	"fmt"

	"messengers"
)

// Example runs the paper's Figure 1(b) pattern on a simulated cluster: a
// Messenger creates a logical node on every neighboring daemon, and each
// replica reports back through a node variable at the center.
func Example() {
	sys, err := messengers.NewSimSystem(messengers.Config{Daemons: 4})
	if err != nil {
		panic(err)
	}
	err = sys.CompileAndRegister("tour", `
		create(ALL);
		hop(ll = $last);
		node.arrivals = node.arrivals + 1;
	`)
	if err != nil {
		panic(err)
	}
	if err := sys.Inject(0, "tour", nil); err != nil {
		panic(err)
	}
	sys.RunSim()
	vars, _ := sys.ReadNodeVars(0, "init")
	fmt.Println("arrivals:", vars["arrivals"].Format())
	// Output: arrivals: 3
}

// ExampleSystem_RegisterNative shows a native-mode function (the paper's
// dynamically loaded C functions): a Go function scripts can call.
func ExampleSystem_RegisterNative() {
	sys, _ := messengers.NewSimSystem(messengers.Config{Daemons: 1})
	sys.RegisterNative("square", func(ctx *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		v := args[0].AsInt()
		return messengers.IntValue(v * v), nil
	})
	sys.CompileAndRegister("use", `node.result = square(7);`)
	sys.Inject(0, "use", nil)
	sys.RunSim()
	vars, _ := sys.ReadNodeVars(0, "init")
	fmt.Println(vars["result"].Format())
	// Output: 49
}

// ExampleSystem_BuildNetwork lays down a static logical network with the
// net_builder service and navigates it.
func ExampleSystem_BuildNetwork() {
	sys, _ := messengers.NewSimSystem(messengers.Config{Daemons: 2})
	sys.BuildNetwork(messengers.NetSpec{
		Nodes: []messengers.NetNode{
			{Name: "left", Daemon: 0}, {Name: "right", Daemon: 1},
		},
		Links: []messengers.NetLink{{A: "left", B: "right", Name: "wire"}},
	})
	sys.CompileAndRegister("cross", `
		hop(ll = "wire");
		node.visited = 1;
	`)
	sys.InjectAt(0, "cross", "left", nil)
	sys.RunSim()
	vars, _ := sys.ReadNodeVars(1, "right")
	fmt.Println("visited:", vars["visited"].Format())
	// Output: visited: 1
}

// ExampleSystem_virtualTime coordinates two Messengers purely through
// global virtual time, as the paper's matrix multiplication does.
func ExampleSystem_virtualTime() {
	sys, _ := messengers.NewSimSystem(messengers.Config{Daemons: 2})
	sys.CompileAndRegister("ticker", `
		for (k = 0; k < 2; k++) {
			sched_abs(k + phase);
			print(name, k);
		}
	`)
	sys.Inject(0, "ticker", map[string]messengers.Value{
		"name": messengers.StrValue("full"), "phase": messengers.NumValue(0),
	})
	sys.Inject(1, "ticker", map[string]messengers.Value{
		"name": messengers.StrValue("half"), "phase": messengers.NumValue(0.5),
	})
	sys.RunSim()
	for _, line := range sys.Output() {
		fmt.Println(line)
	}
	// Output:
	// full 0
	// half 0
	// full 1
	// half 1
}
