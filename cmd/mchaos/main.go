// mchaos runs the Mandelbrot evaluation application (§3.1) under a
// deterministic fault plan — message loss, duplication, corruption, latency
// spikes, daemon crashes and restarts — and verifies that messenger-level
// recovery still produces the correct image.
//
//	go run ./cmd/mchaos -short -engine sim                  # quick seeded chaos run
//	go run ./cmd/mchaos -engine sim -drop 0.05 -crash 2@200ms+50ms
//	go run ./cmd/mchaos -engine tcp -drop 0.02              # over real sockets
//	go run ./cmd/mchaos -plan plan.json                     # scripted scenario
//
// On the simulated engine the run is fully deterministic: the same seed and
// plan replay byte-identically. On the TCP engine faults hit real
// connections and crashes kill real listeners; heartbeats detect them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"messengers"
	"messengers/internal/apps"
	"messengers/internal/faults"
	"messengers/internal/lan"
	"messengers/internal/mandel"
	"messengers/internal/obs"
	"messengers/internal/value"
)

func main() {
	engine := flag.String("engine", "sim", "engine: sim (deterministic) or tcp (real sockets)")
	size := flag.Int("size", 256, "image size (pixels per side)")
	grid := flag.Int("grid", 8, "grid x grid blocks")
	workers := flag.Int("workers", 4, "worker daemons (total daemons = workers+1)")
	drop := flag.Float64("drop", 0, "per-message drop probability")
	dup := flag.Float64("dup", 0, "per-message duplication probability")
	corrupt := flag.Float64("corrupt", 0, "per-message corruption probability")
	delayp := flag.Float64("delayp", 0, "per-message latency-spike probability")
	delay := flag.Duration("delay", 0, "latency-spike duration")
	seed := flag.Uint64("seed", 1, "fault decision stream seed")
	crash := flag.String("crash", "", "crashes: daemon@at[+restartAfter],... (e.g. 2@200ms+50ms)")
	planPath := flag.String("plan", "", "JSON fault plan file (overrides the fault flags)")
	short := flag.Bool("short", false, "small quick scenario (128px, 5% drop, one crash/restart)")
	flag.Parse()

	plan, err := buildPlan(*planPath, *seed, *drop, *dup, *corrupt, *delayp, *delay, *crash, *short)
	if err != nil {
		fatal(err)
	}
	if *short {
		*size, *grid, *workers = 128, 8, 4
	}

	var metrics *obs.Metrics
	var ok bool
	switch *engine {
	case "sim":
		metrics, ok, err = runSim(plan, *size, *grid, *workers)
	case "tcp":
		metrics, ok, err = runTCP(plan, *size, *grid, *workers)
	default:
		err = fmt.Errorf("mchaos: unknown engine %q", *engine)
	}
	if err != nil {
		fatal(err)
	}
	printCounters(metrics)
	if !ok {
		fmt.Println("FAIL: image does not match the sequential baseline")
		os.Exit(1)
	}
	fmt.Println("OK: complete, correct image despite injected faults")
}

// buildPlan assembles the fault plan from a file or from the flags.
func buildPlan(path string, seed uint64, drop, dup, corrupt, delayp float64, delay time.Duration, crash string, short bool) (*faults.Plan, error) {
	if path != "" {
		return faults.Load(path)
	}
	p := &faults.Plan{
		Seed: seed, Drop: drop, Dup: dup, Corrupt: corrupt,
		DelayProb: delayp, Delay: int64(delay),
	}
	if short {
		p.Drop = 0.05
		p.Crashes = []faults.Crash{{
			Daemon: 2,
			// Early enough to land mid-run on both clocks: the TCP run is
			// ~50ms of wall time, the simulated one ~1.5s of virtual time.
			At: int64(15 * time.Millisecond),
			// Long enough that the survivors' failure detector fires first
			// on the TCP engine.
			RestartAfter: int64(400 * time.Millisecond),
		}}
		return p, nil
	}
	for _, spec := range strings.Split(crash, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		c, err := parseCrash(spec)
		if err != nil {
			return nil, err
		}
		p.Crashes = append(p.Crashes, c)
	}
	return p, nil
}

// parseCrash parses "daemon@at[+restartAfter]".
func parseCrash(spec string) (faults.Crash, error) {
	var c faults.Crash
	at := strings.IndexByte(spec, '@')
	if at < 0 {
		return c, fmt.Errorf("mchaos: crash %q: want daemon@at[+restartAfter]", spec)
	}
	d, err := strconv.Atoi(spec[:at])
	if err != nil {
		return c, fmt.Errorf("mchaos: crash %q: bad daemon: %w", spec, err)
	}
	rest := spec[at+1:]
	if plus := strings.IndexByte(rest, '+'); plus >= 0 {
		ra, err := time.ParseDuration(rest[plus+1:])
		if err != nil {
			return c, fmt.Errorf("mchaos: crash %q: bad restart delay: %w", spec, err)
		}
		c.RestartAfter = int64(ra)
		rest = rest[:plus]
	}
	t, err := time.ParseDuration(rest)
	if err != nil {
		return c, fmt.Errorf("mchaos: crash %q: bad time: %w", spec, err)
	}
	c.Daemon, c.At = d, int64(t)
	return c, nil
}

// runSim runs the scenario on the deterministic simulated cluster via the
// apps harness, checking the image checksum against the sequential
// baseline.
func runSim(plan *faults.Plan, size, grid, workers int) (*obs.Metrics, bool, error) {
	cm := lan.DefaultCostModel()
	p := apps.PaperMandelParams(size, grid, workers)
	p.Faults = plan
	r, err := apps.MandelMessengers(cm, p)
	if err != nil {
		return nil, false, err
	}
	seq := apps.MandelSequential(cm, p)
	fmt.Printf("sim: %dx%d grid %d workers %d: simulated makespan %v\n",
		size, size, grid, workers, time.Duration(r.Elapsed))
	return r.Obs, r.Checksum == seq.Checksum, nil
}

// runTCP runs the same manager/worker computation over real TCP sockets:
// faults hit real connections, crashes kill real listeners, heartbeats
// detect the deaths. Completion is reaching full block coverage (recovery
// may legally deposit a recomputed block twice).
func runTCP(plan *faults.Plan, size, grid, workers int) (*obs.Metrics, bool, error) {
	metrics := messengers.NewMetrics()
	n := workers + 1
	sys, err := messengers.NewTCPSystem(messengers.Config{
		Daemons: n,
		Metrics: metrics,
		Faults:  plan,
	}, nil)
	if err != nil {
		return nil, false, err
	}
	defer sys.Close()

	blocks := mandel.Blocks(size, size, grid)
	img := mandel.NewImage(size, size)
	region := mandel.PaperRegion

	var mu sync.Mutex
	covered := map[int]bool{}
	sys.RegisterNative("next_task", func(ctx *messengers.NativeCtx, _ []messengers.Value) (messengers.Value, error) {
		next := ctx.NodeVar("next").AsInt()
		if next >= int64(len(blocks)) {
			return value.Nil(), nil
		}
		ctx.SetNodeVar("next", value.Int(next+1))
		return value.Int(next), nil
	})
	sys.RegisterNative("compute", func(_ *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		b := blocks[args[0].AsInt()]
		pix, _ := mandel.ComputeBlock(region, size, size, b, mandel.PaperColors)
		return value.Bytes(pix), nil
	})
	sys.RegisterNative("deposit", func(_ *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		i := int(args[0].AsInt())
		if err := img.SetBlock(blocks[i], args[1].AsBytes()); err != nil {
			return value.Nil(), err
		}
		mu.Lock()
		covered[i] = true
		mu.Unlock()
		return value.Nil(), nil
	})
	if err := sys.CompileAndRegister("mandel_worker", apps.MsgrMandelScript); err != nil {
		return nil, false, err
	}
	if err := sys.Inject(0, "mandel_worker", nil); err != nil {
		return nil, false, err
	}

	// Poll for full coverage: Messengers whose daemon crashed are respawned
	// by the survivors, so coverage must converge; give the run a generous
	// deadline scaled to its size.
	deadline := time.Now().Add(60 * time.Second)
	start := time.Now()
	for {
		mu.Lock()
		done := len(covered) == len(blocks)
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			got := len(covered)
			mu.Unlock()
			return metrics, false, fmt.Errorf("mchaos: tcp run stalled with %d of %d blocks", got, len(blocks))
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("tcp: %dx%d grid %d workers %d: wall time %v\n",
		size, size, grid, workers, time.Since(start).Round(time.Millisecond))

	want, _ := mandel.ComputeImage(region, size, size, mandel.PaperColors)
	return metrics, img.Checksum() == want.Checksum(), nil
}

// printCounters prints the fault-injection and recovery counters.
func printCounters(m *obs.Metrics) {
	if m == nil {
		return
	}
	interesting := []string{"faults.", "msgr.retx", "msgr.dedup", "msgr.respawns",
		"logical.adoptions", "daemon.", "net.peer.", "net.reconnects", "transport."}
	for _, line := range strings.Split(obs.FormatMetrics(m), "\n") {
		name := strings.TrimSpace(line)
		for _, p := range interesting {
			if strings.HasPrefix(name, p) {
				fmt.Println(line)
				break
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
