// Package messengers is a Go implementation of MESSENGERS, the distributed
// programming system of "Messages versus Messengers in Distributed
// Programming" (Fukuda, Bic, Dillencourt, Cahill; ICDCS 1997).
//
// Applications are collections of autonomous self-migrating computations
// (Messengers) written in MSL, a C-like script language with navigational
// statements. A Messenger is injected into the init node of a daemon and
// from there navigates an application-created logical network with hop,
// extends it with create, and prunes it with delete; node variables provide
// rendezvous-style communication between Messengers, and global virtual
// time (sched_abs / sched_dlt) provides temporal coordination.
//
// Two runtimes execute the same daemon logic:
//
//   - a real concurrent runtime (NewRealSystem): one goroutine per daemon
//     on this machine, suitable for actually running MESSENGERS programs;
//   - a simulated cluster (NewSimSystem): a deterministic discrete-event
//     model of SPARCstation-class hosts on a shared 10 Mb/s Ethernet, used
//     by the benchmark harness to reproduce the paper's experiments.
//
// See README.md for a tour and examples/ for runnable programs.
package messengers

import (
	"fmt"
	"io"
	"time"

	"messengers/internal/compile"
	"messengers/internal/core"
	"messengers/internal/faults"
	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/transport"
	"messengers/internal/value"
)

// Re-exported value types: the dynamic values Messenger scripts, node
// variables, and native functions exchange.
type (
	// Value is a dynamically typed MSL value.
	Value = value.Value
	// Mat is a dense float64 matrix Value payload.
	Mat = value.Mat
)

// Value constructors.
var (
	// NilValue returns the nil Value.
	NilValue = value.Nil
	// IntValue returns an integer Value.
	IntValue = value.Int
	// NumValue returns a floating-point Value.
	NumValue = value.Num
	// StrValue returns a string Value.
	StrValue = value.Str
	// BytesValue returns a byte-block Value.
	BytesValue = value.Bytes
	// ArrValue returns an array Value.
	ArrValue = value.Arr
	// MatrixValue returns a matrix Value.
	MatrixValue = value.Matrix
	// NewMat allocates a zeroed matrix.
	NewMat = value.NewMat
)

// Native-function interface: Go functions callable from MSL scripts (the
// paper's native-mode C functions).
type (
	// NativeCtx is the execution context passed to native functions.
	NativeCtx = core.NativeCtx
	// NativeFunc is a registered native function.
	NativeFunc = core.NativeFunc
)

// Daemon-network topologies.
type Topology = core.Topology

// Topology constructors.
var (
	// FullMesh connects every daemon pair (the default).
	FullMesh = core.FullMesh
	// Ring connects daemons in a directed ring.
	Ring = core.Ring
	// Grid connects daemons in a 2-D mesh.
	Grid = core.Grid
	// Star connects daemon 0 to all others.
	Star = core.Star
)

// Static logical-network construction (the net_builder service).
type (
	// NetSpec describes a static logical network.
	NetSpec = core.NetSpec
	// NetNode declares one logical node.
	NetNode = core.NetNode
	// NetLink declares one logical link.
	NetLink = core.NetLink
)

// Stats aggregates daemon activity counters.
type Stats = core.Stats

// Observability: attach a Tracer and/or Metrics registry via Config to
// record what a run did — Messenger lifecycle, VM segments, GVT, and
// network events on one track per daemon, plus named counters.
type (
	// Tracer records structured trace events (Chrome trace_event
	// exportable). A nil *Tracer is a valid no-op.
	Tracer = obs.Tracer
	// Metrics is a registry of named counters/gauges/histograms. A nil
	// *Metrics hands out nil (no-op) instruments.
	Metrics = obs.Metrics
	// TraceEvent is one recorded trace event.
	TraceEvent = obs.Event
)

// Observability constructors and exporters.
var (
	// NewTracer returns an empty tracer (wall-clock timestamps until a
	// run binds it to an engine clock).
	NewTracer = obs.NewTracer
	// NewMetrics returns an empty metrics registry.
	NewMetrics = obs.NewMetrics
	// WriteChromeTrace writes a tracer's events as Chrome trace_event
	// JSON (load in Perfetto or chrome://tracing).
	WriteChromeTrace = obs.WriteChromeTrace
	// WriteMetricsCSV writes a registry snapshot as CSV.
	WriteMetricsCSV = obs.WriteMetricsCSV
	// FormatMetrics renders a registry snapshot as an aligned table.
	FormatMetrics = obs.FormatMetrics
)

// Simulation cost modeling (used by NewSimSystem).
type (
	// CostModel holds the calibrated constants of the simulated testbed.
	CostModel = lan.CostModel
	// HostSpec describes a simulated workstation model.
	HostSpec = lan.HostSpec
	// SimTime is simulated time in nanoseconds.
	SimTime = sim.Time
)

// Simulation defaults.
var (
	// DefaultCostModel returns the calibrated cost model.
	DefaultCostModel = lan.DefaultCostModel
	// SPARC110 is the 110 MHz SPARCstation 5 host model.
	SPARC110 = lan.SPARC110
	// SPARC170 is the 170 MHz SPARCstation 5 host model.
	SPARC170 = lan.SPARC170
)

// Config configures a System.
type Config struct {
	// Daemons is the daemon count (one per host). Required, >= 1.
	Daemons int
	// Topology is the daemon network; FullMesh(Daemons) when nil.
	Topology *Topology
	// Output mirrors script print output as it happens (optional).
	Output io.Writer
	// GVTInterval overrides the conservative GVT round period (optional).
	GVTInterval SimTime
	// DistributedGVT selects the ring-reduction GVT protocol instead of
	// the centralized coordinator on daemon 0: ≤2 control messages per
	// daemon per round with no single convergence point, at the cost of
	// O(daemons) token latency per round. Recommended past a few dozen
	// daemons; see docs/GVT.md.
	DistributedGVT bool
	// HopBatching coalesces same-destination Messenger hops issued in one
	// executor turn into a single framed batch (sim LAN and TCP), trading
	// per-message overhead for slightly coarser delivery. Off by default:
	// paper-calibration runs model the 1997 runtime, which shipped hops
	// one message at a time.
	HopBatching bool
	// Trace, when non-nil, receives the run's events: one track per
	// daemon (plus a bus track on simulated systems). Simulated systems
	// stamp events with simulated time; real systems with wall time since
	// engine start.
	Trace *Tracer
	// Metrics, when non-nil, receives the run's counters (msgr.*, vm.*,
	// gvt.*, net.*; bus.* and host.* on simulated systems).
	Metrics *Metrics

	// Model and Host configure the simulated engine (NewSimSystem only);
	// DefaultCostModel() and SPARC110 when zero.
	Model *CostModel
	Host  HostSpec

	// Faults, when non-nil, injects the plan's deterministic faults —
	// message drop/duplicate/corrupt, latency spikes, partitions, daemon
	// crashes and restarts — into the run, and enables Recovery. Supported
	// on simulated and TCP systems (see docs/FAULTS.md).
	Faults *FaultPlan
	// Recovery enables the messenger-level recovery protocol (hop-level
	// acknowledgements, retransmission, duplicate suppression, crash
	// respawn from snapshots) even without a fault plan. Implied by Faults.
	Recovery bool
	// RecoveryRetain bounds how many acknowledged Messenger snapshots each
	// daemon retains for crash respawn (0 = keep all until GVT fossil
	// collection). Long-running services should set it: it also bounds the
	// duplicate-suppression memory on receivers.
	RecoveryRetain int
}

// FaultPlan is a deterministic, seedable fault-injection plan.
type FaultPlan = faults.Plan

// LoadFaultPlan reads a fault plan from a JSON file.
var LoadFaultPlan = faults.Load

func (c *Config) options() []core.Option {
	var opts []core.Option
	if c.Output != nil {
		opts = append(opts, core.WithOutput(c.Output))
	}
	if c.GVTInterval > 0 {
		opts = append(opts, core.WithGVTInterval(c.GVTInterval))
	}
	if c.Trace != nil {
		opts = append(opts, core.WithTracer(c.Trace))
	}
	if c.Metrics != nil {
		opts = append(opts, core.WithMetrics(c.Metrics))
	}
	if c.Recovery || c.Faults != nil {
		opts = append(opts, core.WithRecovery(core.RecoveryConfig{RetainBudget: c.RecoveryRetain}))
	}
	if c.DistributedGVT {
		opts = append(opts, core.WithDistributedGVT())
	}
	if c.HopBatching {
		opts = append(opts, core.WithHopBatching())
	}
	return opts
}

func (c *Config) topology() *Topology {
	if c.Topology != nil {
		return c.Topology
	}
	return FullMesh(c.Daemons)
}

// System is a running MESSENGERS installation: a set of daemons, their
// script registry, native functions, and logical networks.
type System struct {
	*core.System
	kernel  *sim.Kernel
	chanEng *core.ChanEngine
	tcpEng  *transport.TCPEngine
	cluster *lan.Cluster
}

// NewRealSystem starts cfg.Daemons concurrent daemons (goroutines) on this
// machine. Close the system when done.
func NewRealSystem(cfg Config) (*System, error) {
	if cfg.Daemons < 1 {
		return nil, fmt.Errorf("messengers: config needs at least 1 daemon")
	}
	if cfg.Faults != nil {
		return nil, fmt.Errorf("messengers: fault injection requires a simulated or TCP system (the channel engine has no wire to fault)")
	}
	eng := core.NewChanEngine(cfg.Daemons)
	sys := core.NewSystem(eng, cfg.topology(), cfg.options()...)
	return &System{System: sys, chanEng: eng}, nil
}

// Heartbeat cadence for TCP systems running with recovery enabled: probes
// every interval, a peer silent for deadAfter is declared failed.
const (
	tcpHeartbeatInterval  = 50 * time.Millisecond
	tcpHeartbeatDeadAfter = 250 * time.Millisecond
)

// NewTCPSystem starts cfg.Daemons daemons whose inter-daemon traffic flows
// over real TCP sockets on the given addresses (use "127.0.0.1:0" entries
// for ephemeral loopback ports). The full binary wire format — Messenger
// snapshots, program hashes, GVT control traffic — is exercised for real.
// Close the system when done.
func NewTCPSystem(cfg Config, addrs []string) (*System, error) {
	if cfg.Daemons < 1 {
		return nil, fmt.Errorf("messengers: config needs at least 1 daemon")
	}
	if len(addrs) == 0 {
		addrs = make([]string, cfg.Daemons)
		for i := range addrs {
			addrs[i] = "127.0.0.1:0"
		}
	}
	if len(addrs) != cfg.Daemons {
		return nil, fmt.Errorf("messengers: %d addresses for %d daemons", len(addrs), cfg.Daemons)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Daemons); err != nil {
			return nil, err
		}
	}
	eng, err := transport.NewTCPEngine(addrs)
	if err != nil {
		return nil, err
	}
	if cfg.Trace != nil {
		eng.SetTracer(cfg.Trace)
	}
	if cfg.Metrics != nil {
		eng.SetMetrics(cfg.Metrics)
	}
	sys := core.NewSystem(eng, cfg.topology(), cfg.options()...)
	s := &System{System: sys, tcpEng: eng}
	if cfg.Recovery || cfg.Faults != nil {
		// Real transport: failures are detected by heartbeat monitoring,
		// not by scheduled notices.
		eng.StartHeartbeats(tcpHeartbeatInterval, tcpHeartbeatDeadAfter)
	}
	if cfg.Faults != nil {
		inj := faults.NewInjector(cfg.Faults, cfg.Metrics, cfg.Trace)
		eng.SetFaultHook(func(now int64, src, dst, size int) transport.FaultVerdict {
			v := inj.Decide(now, src, dst, size)
			return transport.FaultVerdict{Drop: v.Drop, Corrupt: v.Corrupt, Dup: v.Dup, DelayNs: v.Delay}
		})
		start := time.Now()
		faults.Schedule(cfg.Faults, s, func(at int64, fn func()) {
			d := time.Duration(at) - time.Since(start)
			if d < 0 {
				d = 0
			}
			time.AfterFunc(d, fn)
		}, false)
	}
	return s, nil
}

// NewSimSystem builds a simulated cluster of cfg.Daemons hosts. Run the
// computation with RunSim after injecting Messengers.
func NewSimSystem(cfg Config) (*System, error) {
	if cfg.Daemons < 1 {
		return nil, fmt.Errorf("messengers: config needs at least 1 daemon")
	}
	model := cfg.Model
	if model == nil {
		model = DefaultCostModel()
	}
	host := cfg.Host
	if host.MHz == 0 {
		host = SPARC110
	}
	k := sim.New()
	cluster := lan.NewCluster(k, model, cfg.Daemons, host)
	// Bus frames and host busy time land in the same tracer/registry,
	// and the tracer clock is bound to the simulation kernel so two
	// identical runs export byte-identical traces.
	cluster.Observe(cfg.Trace, cfg.Metrics)
	sys := core.NewSystem(core.NewSimEngine(cluster), cfg.topology(), cfg.options()...)
	s := &System{System: sys, kernel: k, cluster: cluster}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Daemons); err != nil {
			return nil, err
		}
		inj := faults.NewInjector(cfg.Faults, cfg.Metrics, cfg.Trace)
		cluster.SetFaultHook(inj.LanHook(k))
		// On the simulated engine, scheduled notices replace a failure
		// detector: delivery is deterministic, so runs replay exactly.
		faults.Schedule(cfg.Faults, s, func(at int64, fn func()) {
			k.At(sim.Time(at), fn)
		}, true)
	}
	return s, nil
}

// Crash kills daemon d mid-run: it stops processing and loses all
// in-memory state (logical nodes, resident Messengers, GVT books), exactly
// as a daemon process dying would. On TCP systems the daemon is also
// severed from the network so heartbeat detection sees it die. Requires
// Recovery (or a fault plan).
func (s *System) Crash(d int) {
	if s.tcpEng != nil {
		s.tcpEng.KillDaemon(d)
	}
	s.System.Crash(d)
}

// Restart revives a crashed daemon as a fresh, empty daemon (init node
// only). Survivors re-send what the dead daemon lost: unacknowledged
// Messengers are respawned from their last transmitted snapshots.
func (s *System) Restart(d int) {
	s.System.Restart(d)
	if s.tcpEng != nil {
		if err := s.tcpEng.ReviveDaemon(d); err != nil {
			s.tcpEng.KillDaemon(d)
		}
	}
}

// CompileAndRegister compiles MSL source and installs it in every daemon's
// script registry under the given name.
func (s *System) CompileAndRegister(name, src string) error {
	prog, err := compile.Compile(name, src)
	if err != nil {
		return err
	}
	s.Register(prog)
	return nil
}

// RunSim drives the simulated cluster until the computation quiesces and
// returns the simulated makespan. Panics if called on a real system.
func (s *System) RunSim() SimTime {
	if s.kernel == nil {
		panic("messengers: RunSim on a real system (use Wait)")
	}
	t := s.kernel.Run()
	s.FlushVMProfiles()
	return t
}

// Kernel exposes the simulation kernel (nil on real systems).
func (s *System) Kernel() *sim.Kernel { return s.kernel }

// Cluster exposes the simulated cluster (nil on real systems), for
// utilization statistics.
func (s *System) Cluster() *lan.Cluster { return s.cluster }

// Addrs returns the TCP listener addresses of a TCP system (nil otherwise).
func (s *System) Addrs() []string {
	if s.tcpEng == nil {
		return nil
	}
	return s.tcpEng.Addrs()
}

// Close shuts down a real system's daemons. It is a no-op for simulated
// systems.
func (s *System) Close() {
	if s.chanEng != nil {
		s.chanEng.Close()
	}
	if s.tcpEng != nil {
		s.tcpEng.Close()
	}
}
