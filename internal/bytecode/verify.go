package bytecode

import "fmt"

// maxNavArms bounds the destination arms of one navigational statement.
const maxNavArms = 1 << 10

// Validate checks every instruction's operands against the program's
// pools, code bounds, and stack discipline invariants the VM relies on.
// Programs arriving over the wire (registry broadcasts, carried code) are
// validated before execution so a corrupt or hostile program yields an
// error instead of a daemon crash.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("bytecode: program %q has no main body", p.Name)
	}
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		if f.NumParams < 0 || f.NumLocals < 0 || f.NumParams > f.NumLocals {
			return fmt.Errorf("bytecode: %s: params %d / locals %d invalid", f.Name, f.NumParams, f.NumLocals)
		}
		if len(f.Code) == 0 {
			return fmt.Errorf("bytecode: %s: empty code", f.Name)
		}
		for pc, ins := range f.Code {
			fail := func(format string, args ...any) error {
				return fmt.Errorf("bytecode: %s@%d (%s): %s", f.Name, pc, ins.Op, fmt.Sprintf(format, args...))
			}
			switch ins.Op {
			case OpConst:
				if ins.A < 0 || int(ins.A) >= len(p.Consts) {
					return fail("constant index %d of %d", ins.A, len(p.Consts))
				}
			case OpLoadM, OpStoreM, OpLoadN, OpStoreN, OpLoadNet, OpCallNative:
				if ins.A < 0 || int(ins.A) >= len(p.Names) {
					return fail("name index %d of %d", ins.A, len(p.Names))
				}
				if ins.Op == OpCallNative && ins.B < 0 {
					return fail("negative argc %d", ins.B)
				}
			case OpLoadL, OpStoreL:
				if ins.A < 0 || int(ins.A) >= f.NumLocals {
					return fail("local slot %d of %d", ins.A, f.NumLocals)
				}
			case OpJmp, OpJz:
				if ins.A < 0 || int(ins.A) > len(f.Code) {
					return fail("jump target %d of %d", ins.A, len(f.Code))
				}
			case OpArr:
				if ins.A < 0 {
					return fail("negative element count %d", ins.A)
				}
			case OpCallFunc:
				if ins.A <= 0 || int(ins.A) >= len(p.Funcs) {
					return fail("function index %d of %d", ins.A, len(p.Funcs))
				}
				callee := &p.Funcs[ins.A]
				if int(ins.B) != callee.NumParams {
					return fail("argc %d for %s taking %d", ins.B, callee.Name, callee.NumParams)
				}
			case OpHop, OpDelete, OpCreate:
				if ins.A < 1 || ins.A > maxNavArms {
					return fail("arm count %d", ins.A)
				}
			case OpNop, OpPop, OpDup, OpDup2, OpAdd, OpSub, OpMul, OpDiv,
				OpMod, OpNeg, OpNot, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
				OpIndex, OpSetIndex, OpRet, OpSchedAbs, OpSchedDlt, OpEnd:
				// No operand constraints.
			default:
				return fail("unknown opcode")
			}
		}
	}
	return nil
}
