// Token-threaded dispatch: the verified fast path of the interpreter.
//
// The switch loop in vm.go re-decodes every instruction on every execution:
// a map lookup per Messenger-variable access, a constant clone per push, an
// append (with its capacity check) per stack write. For a verified program
// the bytecode verifier has already proven every jump in range, every stack
// depth exact, and every nav statement at a boundary — so this file spends
// that proof. Execution runs over the program's lowered direct stream
// (bytecode.Lowered): one handler function per direct opcode, indexed from
// a flat table, operating on a flattened frame (locals, stack base+sp,
// Messenger-variable slots) with raw indexed stack access whose bounds the
// verifier guarantees.
//
// The switch loop remains authoritative: it runs unverified programs, is
// the oracle the differential tests compare against, and takes over
// mid-segment (a "tail") whenever the fast path would need a dynamic
// guard — most importantly when the next instruction's step cost N could
// straddle the step budget, so budget-exhaustion semantics, error text,
// and meter charges come from exactly one implementation.
//
// Invariants the handlers rely on (and the differential tests enforce):
//   - step accounting is per SOURCE instruction: a fused handler charges
//     its N constituents up front and, if an earlier constituent faults,
//     refunds the never-executed tail so meters and profiles match the
//     switch loop exactly;
//   - every resume point a snapshot can name (jump targets, successors of
//     pause opcodes) starts a direct instruction (lowering guarantees it);
//   - m.vars stays authoritative at segment boundaries: dirty Messenger
//     slots are flushed back on every exit path before anyone can observe
//     the map.
package vm

import (
	"fmt"

	"messengers/internal/bytecode"
	"messengers/internal/value"
)

// Dispatch selects the interpreter loop for a VM.
type Dispatch uint8

// Dispatch modes. Auto resolves to Specialized for verified programs;
// unverified programs always take the switch loop regardless of mode.
const (
	DispatchAuto Dispatch = iota
	// DispatchSwitch forces the classic switch interpreter (the oracle).
	DispatchSwitch
	// DispatchThreaded uses token-threaded dispatch without fusion.
	DispatchThreaded
	// DispatchFused uses token-threaded dispatch over the superinstruction
	// stream.
	DispatchFused
	// DispatchSpecialized runs the fused stream with kind-specialized
	// opcodes substituted wherever the bytecode verifier's kind-flow proofs
	// allow (specialized.go); handlers there skip the dynamic value.Kind()
	// guards the proof covers.
	DispatchSpecialized
)

// String names the mode (benchmark labels, BENCH_vm.json).
func (d Dispatch) String() string {
	switch d {
	case DispatchAuto:
		return "auto"
	case DispatchSwitch:
		return "switch"
	case DispatchThreaded:
		return "threaded"
	case DispatchFused:
		return "fused"
	case DispatchSpecialized:
		return "specialized"
	default:
		return fmt.Sprintf("dispatch(%d)", uint8(d))
	}
}

// ParseDispatch resolves a mode name (cmd/mvm flags).
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "auto":
		return DispatchAuto, nil
	case "switch":
		return DispatchSwitch, nil
	case "threaded":
		return DispatchThreaded, nil
	case "fused":
		return DispatchFused, nil
	case "specialized":
		return DispatchSpecialized, nil
	default:
		return DispatchAuto, fmt.Errorf("vm: unknown dispatch mode %q", s)
	}
}

// SetDispatch pins the interpreter loop. The zero value (DispatchAuto)
// runs verified programs threaded+fused+kind-specialized; tests and
// benchmarks pin modes explicitly.
func (m *VM) SetDispatch(d Dispatch) { m.dispatch = d }

// texec is the threaded loop's flattened execution state: the top frame's
// fields live in locals/dpc/fn, the operand stack is a base slice plus an
// index (raw writes, no append), and Messenger variables are slot arrays.
// It is scratch state, rebuilt from the VM at segment start and flushed
// back at every exit; only the VM's own fields survive between segments.
type texec struct {
	m    *VM
	host Host
	prof *Profile
	low  *bytecode.Lowered

	code   []bytecode.DInstr
	fn     int
	dpc    int
	locals []value.Value
	stack  []value.Value
	sp     int

	slots []value.Value
	dirty []bool

	steps    *int64
	limit    int64
	threaded int64
	fused    int64

	res  Result
	err  error
	done bool
}

// dhandler executes one direct instruction; returning false stops the
// dispatch loop (pause, error, or tail into the switch loop).
type dhandler func(*texec, *bytecode.DInstr) bool

var dhandlers [bytecode.NumDOps]dhandler

// dopCons caches each direct opcode's source constituents for profile
// accounting at source-instruction granularity (first d.N entries real).
var dopCons [bytecode.NumDOps][4]bytecode.Op

// run is the dispatch loop. Budget discipline: an instruction covering N
// source steps only executes if N fits the remaining allowance; otherwise
// the segment tails into the switch loop, which reproduces the exact
// budget-exhaustion behavior (rollback, error text, meter charge).
func (t *texec) run() {
	for {
		d := &t.code[t.dpc]
		n := int64(d.N)
		if t.limit > 0 && *t.steps+n > t.limit {
			t.tail()
			return
		}
		t.dpc++
		*t.steps += n
		t.threaded += n
		if p := t.prof; p != nil {
			c := &dopCons[d.Op]
			for i := 0; i < int(d.N); i++ {
				p.Counts[c[i]]++
			}
		}
		if d.N > 1 {
			t.fused += n
		}
		if !dhandlers[d.Op](t, d) {
			return
		}
	}
}

// resumeSrc is the source PC of the next unexecuted instruction — what a
// snapshot must record so either loop can resume here.
func (t *texec) resumeSrc() int {
	if t.dpc < len(t.code) {
		return int(t.code[t.dpc].Src)
	}
	return len(t.m.prog.Funcs[t.fn].Code)
}

// flush writes the flattened state back to the VM with the top frame
// resuming at source PC src. After flush, m.vars and m.frames are
// authoritative again and the Messenger-slot cache mirrors them.
func (t *texec) flush(src int) {
	m := t.m
	m.stack = t.stack[:t.sp]
	m.stackBuf = t.stack
	top := &m.frames[len(m.frames)-1]
	top.fn = t.fn
	top.pc = src
	top.locals = t.locals
	names := t.low.MVars
	for i, d := range t.dirty {
		if d {
			m.vars[names[i]] = t.slots[i]
			t.dirty[i] = false
		}
	}
}

// tail hands the segment to the switch loop at the current source
// instruction; Run falls through into runSwitch with the cumulative step
// count intact.
func (t *texec) tail() {
	t.flush(t.resumeSrc())
	t.done = false
}

// pause ends the segment with a Result.
func (t *texec) pause(res Result) bool {
	t.flush(t.resumeSrc())
	res.Steps = *t.steps
	t.res = res
	t.done = true
	return false
}

// fail ends the segment with a runtime error positioned at source PC src,
// byte-identical to the switch loop's runtimeError (which reports pc-1
// after its fetch increment).
func (t *texec) fail(src int32, format string, args ...any) bool {
	fname := t.m.prog.Funcs[t.fn].Name
	t.err = fmt.Errorf("msl runtime (%s@%d in %s): %s", t.m.prog.Name, src, fname, fmt.Sprintf(format, args...))
	t.done = true
	t.flush(int(src) + 1)
	return false
}

// refundLast undoes the pre-charged final constituent of a fused sequence
// whose faulting constituent is second-to-last: the switch loop would
// never have fetched the trailing jz/store, so meters and profiles must
// not see it. (In every fused shape only the second-to-last constituent
// can fault — loads and const pushes cannot.)
func (t *texec) refundLast(d *bytecode.DInstr) {
	*t.steps--
	t.threaded--
	t.fused--
	if p := t.prof; p != nil {
		p.Counts[dopCons[d.Op][d.N-1]]--
	}
}

// ensureStack grows the stack backing to hold at least n values. Called
// once per frame entry (the verifier bounds in-frame growth by MaxStack),
// never per push.
func (t *texec) ensureStack(n int) {
	if n <= cap(t.stack) {
		return
	}
	ns := make([]value.Value, n+n/2)
	copy(ns, t.stack[:t.sp])
	t.stack = ns
}

func (t *texec) push(v value.Value) {
	t.stack[t.sp] = v
	t.sp++
}

func (t *texec) pop() value.Value {
	t.sp--
	return t.stack[t.sp]
}

// runThreaded executes one segment on the fast path. Returns done=false
// when the segment must continue on the switch loop (budget tail, or a
// resume point the lowered stream cannot address — defensively impossible
// for snapshots lowering itself produced).
func (m *VM) runThreaded(host Host, low *bytecode.Lowered, limit int64, steps *int64) (Result, error, bool) {
	top := &m.frames[len(m.frames)-1]
	df := &low.Funcs[top.fn]
	if top.pc < 0 || top.pc >= len(df.S2D) || df.S2D[top.pc] < 0 {
		return Result{}, nil, false
	}
	t := m.tx
	if t == nil {
		t = &texec{}
		m.tx = t
	}
	t.m, t.host, t.prof, t.low = m, host, m.prof, low
	t.steps, t.limit = steps, limit
	t.threaded, t.fused = 0, 0
	t.err, t.done = nil, false

	// Messenger-variable slots: resync from the map only when something
	// outside the threaded loop may have touched it since the last flush.
	if len(m.mslots) != len(low.MVars) {
		m.mslots = make([]value.Value, len(low.MVars))
		m.mdirty = make([]bool, len(low.MVars))
		m.slotsClean = false
	}
	if !m.slotsClean {
		for i, name := range low.MVars {
			m.mslots[i] = m.vars[name]
			m.mdirty[i] = false
		}
		m.slotsClean = true
	}
	t.slots, t.dirty = m.mslots, m.mdirty

	// Stack: adopt the VM's operand stack into the raw backing; in-frame
	// growth is bounded by the verifier's MaxStack, checked once here and
	// once per call.
	need := len(m.stack) + m.prog.MaxStack(top.fn)
	if cap(m.stackBuf) < need {
		buf := m.allocValues(need)
		copy(buf, m.stack)
		m.stackBuf = buf
	} else if len(m.stack) > 0 && &m.stackBuf[0] != &m.stack[0] {
		copy(m.stackBuf[:len(m.stack)], m.stack)
	}
	t.stack = m.stackBuf[:cap(m.stackBuf)]
	t.sp = len(m.stack)

	t.fn = top.fn
	t.dpc = int(df.S2D[top.pc])
	t.locals = top.locals
	t.code = df.Code

	t.run()

	m.segThreaded += t.threaded
	m.segFused += t.fused
	if t.done {
		if t.err != nil {
			// t.res may hold a previous segment's pause; errors return the
			// zero Result like the switch loop.
			return Result{}, t.err, true
		}
		return t.res, nil, true
	}
	return Result{}, nil, false
}

func init() {
	h := &dhandlers
	h[bytecode.DNop] = func(*texec, *bytecode.DInstr) bool { return true }
	h[bytecode.DConst] = func(t *texec, d *bytecode.DInstr) bool {
		t.push(d.Val)
		return true
	}
	h[bytecode.DConstClone] = func(t *texec, d *bytecode.DInstr) bool {
		t.push(d.Val.Clone())
		return true
	}
	h[bytecode.DLoadM] = func(t *texec, d *bytecode.DInstr) bool {
		t.push(t.slots[d.A])
		return true
	}
	h[bytecode.DStoreM] = func(t *texec, d *bytecode.DInstr) bool {
		t.slots[d.A] = t.pop()
		t.dirty[d.A] = true
		return true
	}
	h[bytecode.DLoadN] = func(t *texec, d *bytecode.DInstr) bool {
		t.push(t.host.NodeVar(d.Name))
		return true
	}
	h[bytecode.DStoreN] = func(t *texec, d *bytecode.DInstr) bool {
		t.host.SetNodeVar(d.Name, t.pop())
		return true
	}
	h[bytecode.DLoadNet] = func(t *texec, d *bytecode.DInstr) bool {
		v, ok := t.host.NetVar(d.Name)
		if !ok {
			return t.fail(d.Src, "unknown network variable $%s", d.Name)
		}
		t.push(v)
		return true
	}
	h[bytecode.DLoadL] = func(t *texec, d *bytecode.DInstr) bool {
		t.push(t.locals[d.A])
		return true
	}
	h[bytecode.DStoreL] = func(t *texec, d *bytecode.DInstr) bool {
		t.locals[d.A] = t.pop()
		return true
	}
	h[bytecode.DPop] = func(t *texec, _ *bytecode.DInstr) bool {
		t.sp--
		return true
	}
	h[bytecode.DDup] = func(t *texec, _ *bytecode.DInstr) bool {
		t.stack[t.sp] = t.stack[t.sp-1]
		t.sp++
		return true
	}
	h[bytecode.DDup2] = func(t *texec, _ *bytecode.DInstr) bool {
		t.stack[t.sp] = t.stack[t.sp-2]
		t.stack[t.sp+1] = t.stack[t.sp-1]
		t.sp += 2
		return true
	}
	h[bytecode.DAdd] = arithHandler(bytecode.OpAdd)
	h[bytecode.DSub] = arithHandler(bytecode.OpSub)
	h[bytecode.DMul] = arithHandler(bytecode.OpMul)
	h[bytecode.DDiv] = arithHandler(bytecode.OpDiv)
	h[bytecode.DMod] = arithHandler(bytecode.OpMod)
	h[bytecode.DNeg] = func(t *texec, d *bytecode.DInstr) bool {
		a := &t.stack[t.sp-1]
		switch a.Kind() {
		case value.KindInt:
			a.SetInt(-a.AsInt())
		case value.KindNum:
			a.SetNum(-a.AsNum())
		default:
			t.sp--
			return t.fail(d.Src, "cannot negate %v", a.Kind())
		}
		return true
	}
	h[bytecode.DNot] = func(t *texec, _ *bytecode.DInstr) bool {
		a := &t.stack[t.sp-1]
		a.SetBool(!value.TruthyPtr(a))
		return true
	}
	h[bytecode.DEq] = func(t *texec, _ *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		if eq, ok := value.FastEqual(a, b); ok {
			a.SetBool(eq)
			t.sp--
			return true
		}
		bv, av := t.pop(), t.pop()
		t.push(value.Bool(av.Equal(bv)))
		return true
	}
	h[bytecode.DNe] = func(t *texec, _ *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		if eq, ok := value.FastEqual(a, b); ok {
			a.SetBool(!eq)
			t.sp--
			return true
		}
		bv, av := t.pop(), t.pop()
		t.push(value.Bool(!av.Equal(bv)))
		return true
	}
	h[bytecode.DLt] = cmpHandler(bytecode.OpLt)
	h[bytecode.DLe] = cmpHandler(bytecode.OpLe)
	h[bytecode.DGt] = cmpHandler(bytecode.OpGt)
	h[bytecode.DGe] = cmpHandler(bytecode.OpGe)
	h[bytecode.DJmp] = func(t *texec, d *bytecode.DInstr) bool {
		t.dpc = int(d.A)
		return true
	}
	h[bytecode.DJz] = func(t *texec, d *bytecode.DInstr) bool {
		t.sp--
		if !value.TruthyPtr(&t.stack[t.sp]) {
			t.dpc = int(d.A)
		}
		return true
	}
	h[bytecode.DIndex] = func(t *texec, d *bytecode.DInstr) bool {
		idx, base := t.pop(), t.pop()
		if !idx.IsNumeric() {
			return t.fail(d.Src, "index must be numeric, got %v", idx.Kind())
		}
		v, ok := base.Index(int(idx.AsInt()))
		if !ok {
			return t.fail(d.Src, "index %d out of range for %v of length %d", idx.AsInt(), base.Kind(), base.Len())
		}
		t.push(v)
		return true
	}
	h[bytecode.DSetIndex] = func(t *texec, d *bytecode.DInstr) bool {
		val, idx, base := t.pop(), t.pop(), t.pop()
		if !idx.IsNumeric() {
			return t.fail(d.Src, "index must be numeric, got %v", idx.Kind())
		}
		if !base.SetIndex(int(idx.AsInt()), val) {
			return t.fail(d.Src, "cannot set index %d on %v of length %d", idx.AsInt(), base.Kind(), base.Len())
		}
		if d.B != 0 {
			t.push(val)
		}
		return true
	}
	h[bytecode.DArr] = func(t *texec, d *bytecode.DInstr) bool {
		n := int(d.A)
		elems := make([]value.Value, n)
		copy(elems, t.stack[t.sp-n:t.sp])
		t.sp -= n
		t.push(value.Arr(elems))
		return true
	}
	h[bytecode.DCallFunc] = func(t *texec, d *bytecode.DInstr) bool {
		m := t.m
		if len(m.frames) >= maxCallDepth {
			return t.fail(d.Src, "call depth exceeds %d (infinite recursion?)", maxCallDepth)
		}
		fi, argc := int(d.A), int(d.B)
		callee := &m.prog.Funcs[fi]
		locals := m.allocValues(callee.NumLocals)
		copy(locals, t.stack[t.sp-argc:t.sp])
		t.sp -= argc
		top := &m.frames[len(m.frames)-1]
		top.fn = t.fn
		top.pc = t.resumeSrc()
		top.locals = t.locals
		m.frames = append(m.frames, frame{fn: fi, locals: locals})
		t.fn, t.locals = fi, locals
		t.code = t.low.Funcs[fi].Code
		t.dpc = 0
		t.ensureStack(t.sp + m.prog.MaxStack(fi))
		return true
	}
	h[bytecode.DRet] = func(t *texec, d *bytecode.DInstr) bool {
		m := t.m
		if len(m.frames) == 1 {
			return t.pause(Result{Pause: PauseEnd})
		}
		ret := t.pop()
		m.frames = m.frames[:len(m.frames)-1]
		top := &m.frames[len(m.frames)-1]
		df := &t.low.Funcs[top.fn]
		dpc := df.S2D[top.pc]
		t.push(ret)
		if dpc < 0 {
			// Unmappable resume point — cannot occur for streams this pass
			// produced (call successors always start an instruction), but a
			// bail keeps the invariant local instead of trusting it here.
			t.flush(top.pc)
			t.done = false
			return false
		}
		t.fn, t.locals = top.fn, top.locals
		t.code = df.Code
		t.dpc = int(dpc)
		// The caller's frame may grow the stack beyond what was ensured
		// for the callee (e.g. resuming a restored snapshot mid-call).
		t.ensureStack(t.sp + m.prog.MaxStack(top.fn))
		return true
	}
	h[bytecode.DCallNative] = func(t *texec, d *bytecode.DInstr) bool {
		argc := int(d.B)
		if fn, ok := builtins[d.Name]; ok {
			// Builtins never touch VM state (they see only their args and
			// the host), so they run against a stack window with no copy.
			args := t.stack[t.sp-argc : t.sp : t.sp]
			r, err := fn(t.m, t.host, args)
			if err != nil {
				return t.fail(d.Src, "%s: %v", d.Name, err)
			}
			t.sp -= argc
			t.push(r)
			return true
		}
		args := make([]value.Value, argc)
		copy(args, t.stack[t.sp-argc:t.sp])
		t.sp -= argc
		return t.pause(Result{Pause: PauseNative, Native: d.Name, Args: args})
	}
	h[bytecode.DHop] = navHandler(PauseHop)
	h[bytecode.DDelete] = navHandler(PauseDelete)
	h[bytecode.DCreate] = func(t *texec, d *bytecode.DInstr) bool {
		arms := make([]NavArm, d.A)
		for i := int(d.A) - 1; i >= 0; i-- {
			arms[i].DDir = t.pop()
			arms[i].DL = t.pop()
			arms[i].DN = t.pop()
			arms[i].LDir = t.pop()
			arms[i].LL = t.pop()
			arms[i].LN = t.pop()
		}
		return t.pause(Result{Pause: PauseCreate, Arms: arms, All: d.B != 0})
	}
	h[bytecode.DSchedAbs] = schedHandler(PauseSchedAbs)
	h[bytecode.DSchedDlt] = schedHandler(PauseSchedDlt)
	h[bytecode.DEnd] = func(t *texec, _ *bytecode.DInstr) bool {
		return t.pause(Result{Pause: PauseEnd})
	}

	// Fused superinstructions.
	h[bytecode.DFConstAdd] = constArithHandler(bytecode.OpAdd)
	h[bytecode.DFConstSub] = constArithHandler(bytecode.OpSub)
	h[bytecode.DFConstMul] = constArithHandler(bytecode.OpMul)
	h[bytecode.DFConstDiv] = constArithHandler(bytecode.OpDiv)
	h[bytecode.DFConstMod] = constArithHandler(bytecode.OpMod)
	h[bytecode.DFLoadMConst] = func(t *texec, d *bytecode.DInstr) bool {
		t.stack[t.sp] = t.slots[d.A]
		t.stack[t.sp+1] = d.Val
		t.sp += 2
		return true
	}
	h[bytecode.DFLoadLConst] = func(t *texec, d *bytecode.DInstr) bool {
		t.stack[t.sp] = t.locals[d.A]
		t.stack[t.sp+1] = d.Val
		t.sp += 2
		return true
	}
	h[bytecode.DFLoadMM] = func(t *texec, d *bytecode.DInstr) bool {
		t.stack[t.sp] = t.slots[d.A]
		t.stack[t.sp+1] = t.slots[d.B]
		t.sp += 2
		return true
	}
	h[bytecode.DFLoadLL] = func(t *texec, d *bytecode.DInstr) bool {
		t.stack[t.sp] = t.locals[d.A]
		t.stack[t.sp+1] = t.locals[d.B]
		t.sp += 2
		return true
	}
	h[bytecode.DFEqJz] = func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		t.sp -= 2
		var eq bool
		if fe, ok := value.FastEqual(a, b); ok {
			eq = fe
		} else {
			eq = a.Equal(*b)
		}
		if !eq {
			t.dpc = int(d.A)
		}
		return true
	}
	h[bytecode.DFNeJz] = func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		t.sp -= 2
		var eq bool
		if fe, ok := value.FastEqual(a, b); ok {
			eq = fe
		} else {
			eq = a.Equal(*b)
		}
		if eq {
			t.dpc = int(d.A)
		}
		return true
	}
	h[bytecode.DFLtJz] = cmpJzHandler(bytecode.OpLt)
	h[bytecode.DFLeJz] = cmpJzHandler(bytecode.OpLe)
	h[bytecode.DFGtJz] = cmpJzHandler(bytecode.OpGt)
	h[bytecode.DFGeJz] = cmpJzHandler(bytecode.OpGe)
	h[bytecode.DFAddStoreM] = arithStoreHandler(bytecode.OpAdd, true)
	h[bytecode.DFSubStoreM] = arithStoreHandler(bytecode.OpSub, true)
	h[bytecode.DFMulStoreM] = arithStoreHandler(bytecode.OpMul, true)
	h[bytecode.DFDivStoreM] = arithStoreHandler(bytecode.OpDiv, true)
	h[bytecode.DFModStoreM] = arithStoreHandler(bytecode.OpMod, true)
	h[bytecode.DFAddStoreL] = arithStoreHandler(bytecode.OpAdd, false)
	h[bytecode.DFSubStoreL] = arithStoreHandler(bytecode.OpSub, false)
	h[bytecode.DFMulStoreL] = arithStoreHandler(bytecode.OpMul, false)
	h[bytecode.DFDivStoreL] = arithStoreHandler(bytecode.OpDiv, false)
	h[bytecode.DFModStoreL] = arithStoreHandler(bytecode.OpMod, false)

	// Quad superinstructions: whole loop idioms with zero stack traffic.
	cmps := [4]bytecode.Op{bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe}
	for i, op := range cmps {
		h[bytecode.DFMMLtJz+bytecode.DOp(i)] = slotCmpJzHandler(op, false, false)
		h[bytecode.DFMCLtJz+bytecode.DOp(i)] = slotCmpJzHandler(op, false, true)
		h[bytecode.DFLLLtJz+bytecode.DOp(i)] = slotCmpJzHandler(op, true, false)
		h[bytecode.DFLCLtJz+bytecode.DOp(i)] = slotCmpJzHandler(op, true, true)
	}
	ariths := [5]bytecode.Op{bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod}
	for i, op := range ariths {
		h[bytecode.DFMCAddStoreM+bytecode.DOp(i)] = slotArithStoreHandler(op, false)
		h[bytecode.DFLCAddStoreL+bytecode.DOp(i)] = slotArithStoreHandler(op, true)
	}

	registerSpecialized(h)

	for op := bytecode.DOp(0); op < bytecode.NumDOps; op++ {
		if dhandlers[op] == nil {
			panic(fmt.Sprintf("vm: no handler for direct opcode %v", op))
		}
		ops, n := op.Constituents()
		for i := 0; i < n; i++ {
			dopCons[op][i] = ops[i]
		}
	}
}

// numOp maps the bytecode arithmetic block onto value.NumOp for the
// in-place fast paths. Resolved once per handler construction.
func numOp(op bytecode.Op) value.NumOp {
	switch op {
	case bytecode.OpAdd:
		return value.NumAdd
	case bytecode.OpSub:
		return value.NumSub
	case bytecode.OpMul:
		return value.NumMul
	case bytecode.OpDiv:
		return value.NumDiv
	case bytecode.OpMod:
		return value.NumMod
	default:
		panic(fmt.Sprintf("vm: %v is not a binary arithmetic opcode", op))
	}
}

func arithHandler(op bytecode.Op) dhandler {
	nop := numOp(op)
	return func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		if value.FastBinary(nop, a, b, a) {
			t.sp--
			return true
		}
		bv, av := t.pop(), t.pop()
		r, err := arith(op, av, bv)
		if err != nil {
			return t.fail(d.Src, "%v", err)
		}
		t.push(r)
		return true
	}
}

func evalCmp(op bytecode.Op, cmp int) bool {
	switch op {
	case bytecode.OpLt:
		return cmp < 0
	case bytecode.OpLe:
		return cmp <= 0
	case bytecode.OpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

func cmpHandler(op bytecode.Op) dhandler {
	return func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		if cmp, ok := value.FastCompare(a, b); ok {
			a.SetBool(evalCmp(op, cmp))
			t.sp--
			return true
		}
		bv, av := t.pop(), t.pop()
		cmp, ok := av.Compare(bv)
		if !ok {
			return t.fail(d.Src, "cannot compare %v with %v", av.Kind(), bv.Kind())
		}
		t.push(value.Bool(evalCmp(op, cmp)))
		return true
	}
}

// cmpJzHandler fuses an ordered comparison with the conditional branch of
// a loop head. A comparison fault is a first-constituent error: the jz was
// pre-charged but never reached.
func cmpJzHandler(op bytecode.Op) dhandler {
	return func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		if cmp, ok := value.FastCompare(a, b); ok {
			t.sp -= 2
			if !evalCmp(op, cmp) {
				t.dpc = int(d.A)
			}
			return true
		}
		bv, av := t.pop(), t.pop()
		cmp, ok := av.Compare(bv)
		if !ok {
			t.refundLast(d)
			return t.fail(d.Src, "cannot compare %v with %v", av.Kind(), bv.Kind())
		}
		if !evalCmp(op, cmp) {
			t.dpc = int(d.A)
		}
		return true
	}
}

// constArithHandler fuses a constant push with the arithmetic consuming
// it. The constant is never materialized on the stack; a fault is a
// second-constituent error (the push itself cannot fail), reported at the
// arithmetic's source PC.
func constArithHandler(op bytecode.Op) dhandler {
	nop := numOp(op)
	return func(t *texec, d *bytecode.DInstr) bool {
		a := &t.stack[t.sp-1]
		if value.FastBinary(nop, a, &d.Val, a) {
			return true
		}
		av := t.pop()
		r, err := arith(op, av, d.Val)
		if err != nil {
			return t.fail(d.Src+1, "%v", err)
		}
		t.push(r)
		return true
	}
}

// arithStoreHandler fuses arithmetic with the store consuming its result.
// An arithmetic fault is a first-constituent error.
func arithStoreHandler(op bytecode.Op, toMessenger bool) dhandler {
	nop := numOp(op)
	return func(t *texec, d *bytecode.DInstr) bool {
		a, b := &t.stack[t.sp-2], &t.stack[t.sp-1]
		var dst *value.Value
		if toMessenger {
			dst = &t.slots[d.A]
		} else {
			dst = &t.locals[d.A]
		}
		if value.FastBinary(nop, a, b, dst) {
			t.sp -= 2
			if toMessenger {
				t.dirty[d.A] = true
			}
			return true
		}
		bv, av := t.pop(), t.pop()
		r, err := arith(op, av, bv)
		if err != nil {
			t.refundLast(d)
			return t.fail(d.Src, "%v", err)
		}
		if toMessenger {
			t.slots[d.A] = r
			t.dirty[d.A] = true
		} else {
			t.locals[d.A] = r
		}
		return true
	}
}

// slotCmpJzHandler executes a whole loop head — load slot A, load slot B
// or constant Val, ordered compare, branch to C when false — in one
// dispatch with no stack traffic. The compare is the only constituent that
// can fault (third of four: two loads executed, trailing jz refunded).
func slotCmpJzHandler(op bytecode.Op, local, constB bool) dhandler {
	return func(t *texec, d *bytecode.DInstr) bool {
		arr := t.slots
		if local {
			arr = t.locals
		}
		a := &arr[d.A]
		b := &d.Val
		if !constB {
			b = &arr[d.B]
		}
		cmp, ok := value.FastCompare(a, b)
		if !ok {
			cmp, ok = a.Compare(*b)
			if !ok {
				t.refundLast(d)
				return t.fail(d.Src+2, "cannot compare %v with %v", a.Kind(), b.Kind())
			}
		}
		if !evalCmp(op, cmp) {
			t.dpc = int(d.C)
		}
		return true
	}
}

// slotArithStoreHandler executes the increment idiom — slot A ⊕ constant
// Val stored into slot B — in one dispatch. The arithmetic is the only
// faulting constituent (third of four; the trailing store is refunded).
func slotArithStoreHandler(op bytecode.Op, local bool) dhandler {
	nop := numOp(op)
	return func(t *texec, d *bytecode.DInstr) bool {
		arr := t.slots
		if local {
			arr = t.locals
		}
		a := &arr[d.A]
		if value.FastBinary(nop, a, &d.Val, &arr[d.B]) {
			if !local {
				t.dirty[d.B] = true
			}
			return true
		}
		r, err := arith(op, *a, d.Val)
		if err != nil {
			t.refundLast(d)
			return t.fail(d.Src+2, "%v", err)
		}
		arr[d.B] = r
		if !local {
			t.dirty[d.B] = true
		}
		return true
	}
}

func navHandler(p Pause) dhandler {
	return func(t *texec, d *bytecode.DInstr) bool {
		arms := make([]NavArm, d.A)
		for i := int(d.A) - 1; i >= 0; i-- {
			arms[i].LDir = t.pop()
			arms[i].LL = t.pop()
			arms[i].LN = t.pop()
		}
		return t.pause(Result{Pause: p, Arms: arms})
	}
}

func schedHandler(p Pause) dhandler {
	return func(t *texec, d *bytecode.DInstr) bool {
		v := t.pop()
		if !v.IsNumeric() {
			return t.fail(d.Src, "scheduling time must be numeric, got %v", v.Kind())
		}
		return t.pause(Result{Pause: p, Time: v.AsNum()})
	}
}
