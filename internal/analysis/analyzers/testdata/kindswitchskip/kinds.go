// Package kindswitchskip is analyzed under a transport path, outside the
// kind-specialization proof chain: partial switches over value.Kind are
// not this analyzer's business there, so no // want expectations fire.
package kindswitchskip

import (
	"messengers/internal/value"
)

func partialOutside(k value.Kind) bool {
	switch k {
	case value.KindInt:
		return true
	}
	return false
}
