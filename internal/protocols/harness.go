package protocols

import (
	"fmt"
	"runtime"
	"sync"

	"messengers/internal/faults"
	"messengers/internal/obs"
)

// Protocol and implementation names accepted by the harness.
const (
	ProtoPaxos = "paxos"
	ProtoTPC   = "2pc"
	ProtoTerm  = "term"

	ImplMessengers = "msgr"
	ImplPVM        = "pvm"
)

// Protocols is the sweep order of the suite.
var Protocols = []string{ProtoPaxos, ProtoTPC, ProtoTerm}

// Impls is the sweep order of the two implementations.
var Impls = []string{ImplMessengers, ImplPVM}

// RunConfig names one protocol execution: which algorithm, which of the two
// implementations (Messenger programs on the MSL VM, or PVM-style
// message-passing tasks), which engine, under which nemesis, with which
// seed.
type RunConfig struct {
	Protocol string `json:"protocol"`
	Impl     string `json:"impl"`
	Engine   string `json:"engine"`
	Nemesis  string `json:"nemesis"`
	Seed     uint64 `json:"seed"`
	// Broken swaps in the deliberately unsafe Paxos acceptor (forgets its
	// promises) to prove the checker has teeth. Paxos + msgr only.
	Broken bool `json:"broken,omitempty"`
}

// Cost is the messages-versus-messengers accounting of one run: how much
// protocol traffic each style of distribution put on the wire.
type Cost struct {
	// Hops is the unit of agent mobility: remote Messenger hops for the
	// msgr impl, task-to-task sends for the PVM impl.
	Hops int64 `json:"hops"`
	// Bytes is the payload volume of those units (serialized Messenger
	// state vs packed PVM buffers).
	Bytes int64 `json:"bytes"`
	// NetMsgs / NetBytes are total transport frames and bytes, including
	// the reliability layer's acks and retransmissions — the price of
	// at-least-once delivery under each style.
	NetMsgs  int64 `json:"net_msgs"`
	NetBytes int64 `json:"net_bytes"`
}

// Result is the outcome of one checked run.
type Result struct {
	Config     RunConfig   `json:"config"`
	Decided    bool        `json:"decided"`
	Expected   bool        `json:"expected_decision"`
	Violations []Violation `json:"violations,omitempty"`
	Events     int         `json:"events"`
	Rounds     int64       `json:"rounds"`
	Cost       Cost        `json:"cost"`
	Err        string      `json:"err,omitempty"`
}

// Failed reports whether the run violates the suite's acceptance criteria:
// any safety violation, a missed decision the nemesis cannot excuse, or a
// runner error.
func (r Result) Failed() bool {
	return len(r.Violations) > 0 || (r.Expected && !r.Decided) || r.Err != ""
}

// daemonCount returns the cluster size each protocol's network spans.
func daemonCount(protocol string) (int, error) {
	switch protocol {
	case ProtoPaxos:
		return paxosProposers + paxosAcceptors, nil
	case ProtoTPC:
		return 1 + tpcParticipants, nil
	case ProtoTerm:
		return 1 + termWorkers, nil
	default:
		return 0, fmt.Errorf("protocols: unknown protocol %q", protocol)
	}
}

// checkerFor returns the safety checker for a protocol.
func checkerFor(protocol string) (Checker, error) {
	switch protocol {
	case ProtoPaxos:
		return PaxosChecker{}, nil
	case ProtoTPC:
		return TPCChecker{Participants: tpcParticipants}, nil
	case ProtoTerm:
		return TermChecker{}, nil
	default:
		return nil, fmt.Errorf("protocols: unknown protocol %q", protocol)
	}
}

// expectDecision reports whether the (protocol, nemesis) pair must reach a
// decision. Everything must decide except 2PC under a coordinator crash:
// losing the coordinator between vote collection and decision delivery is
// 2PC's classic blocking window, and blocking there is the *correct*
// behavior (docs/PROTOCOLS.md).
func expectDecision(protocol, nemesis string) bool {
	return !(protocol == ProtoTPC && nemesis == NemesisLeaderCrash)
}

// Run executes one configured run, checks its event trace, and accounts
// its wire costs. Safety violations are reported in the Result (and on the
// proto.violations counter), not as an error; err is reserved for harness
// and runtime failures.
func Run(cfg RunConfig) (Result, error) {
	res := Result{Config: cfg, Expected: expectDecision(cfg.Protocol, cfg.Nemesis)}
	daemons, err := daemonCount(cfg.Protocol)
	if err != nil {
		return res, err
	}
	checker, err := checkerFor(cfg.Protocol)
	if err != nil {
		return res, err
	}
	if cfg.Broken && (cfg.Protocol != ProtoPaxos || cfg.Impl != ImplMessengers) {
		return res, fmt.Errorf("protocols: broken variant exists only for paxos/msgr")
	}
	plan, err := NemesisPlan(cfg.Nemesis, cfg.Seed, daemons, cfg.Engine)
	if err != nil {
		return res, err
	}
	m := obs.NewMetrics()
	rec := NewRecorder(m)
	if err := dispatch(cfg, plan, rec, m); err != nil {
		res.Err = err.Error()
		return res, nil
	}
	evs := rec.Events()
	res.Events = len(evs)
	res.Rounds = m.CounterValue("proto.rounds")
	res.Violations = checker.Check(evs)
	m.Counter("proto.violations").Add(int64(len(res.Violations)))
	for _, e := range evs {
		if e.Kind == EvDecide || e.Kind == EvDetect {
			res.Decided = true
			break
		}
	}
	res.Cost = readCost(cfg.Impl, m)
	return res, nil
}

func dispatch(cfg RunConfig, plan *faults.Plan, rec *Recorder, m *obs.Metrics) error {
	switch cfg.Impl {
	case ImplMessengers:
		switch cfg.Protocol {
		case ProtoPaxos:
			return runPaxosMessengers(cfg.Engine, plan, rec, m, cfg.Broken)
		case ProtoTPC:
			return runTPCMessengers(cfg.Engine, cfg.Seed, plan, rec, m)
		case ProtoTerm:
			return runTermMessengers(cfg.Engine, cfg.Seed, plan, rec, m)
		}
	case ImplPVM:
		switch cfg.Protocol {
		case ProtoPaxos:
			return runPaxosPVM(cfg.Engine, cfg.Seed, plan, rec, m)
		case ProtoTPC:
			return runTPCPVM(cfg.Engine, cfg.Seed, plan, rec, m)
		case ProtoTerm:
			return runTermPVM(cfg.Engine, cfg.Seed, plan, rec, m)
		}
	}
	return fmt.Errorf("protocols: unknown run %s/%s", cfg.Protocol, cfg.Impl)
}

// SweepConfig enumerates a chaos search: the cross product of protocols ×
// implementations × nemeses × seeds, all on one engine.
type SweepConfig struct {
	Engine    string
	Protocols []string
	Impls     []string
	Nemeses   []string
	Seeds     []uint64
	// Workers bounds concurrent runs; 0 means GOMAXPROCS. Each run is its
	// own kernel/machine, so runs are independent.
	Workers int
}

// Sweep executes every configured run and returns the results in
// deterministic enumeration order (protocol, impl, nemesis, seed).
func Sweep(sc SweepConfig) ([]Result, error) {
	var cfgs []RunConfig
	for _, proto := range sc.Protocols {
		for _, impl := range sc.Impls {
			for _, nem := range sc.Nemeses {
				for _, seed := range sc.Seeds {
					cfgs = append(cfgs, RunConfig{
						Protocol: proto, Impl: impl, Engine: sc.Engine,
						Nemesis: nem, Seed: seed,
					})
				}
			}
		}
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg RunConfig) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(cfg)
		}(i, cfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// readCost pulls the wire accounting for one implementation style out of
// the run's metrics registry.
func readCost(impl string, m *obs.Metrics) Cost {
	if impl == ImplPVM {
		// pvm.sends counts every wire message, including the app-level
		// reliability layer's acks and retransmissions; the proto.pvm.*
		// counters isolate the logical protocol messages.
		return Cost{
			Hops:     m.CounterValue("proto.pvm.msgs"),
			Bytes:    m.CounterValue("proto.pvm.msg.bytes"),
			NetMsgs:  m.CounterValue("pvm.sends"),
			NetBytes: m.CounterValue("pvm.send.bytes"),
		}
	}
	return Cost{
		Hops:     m.CounterValue("msgr.hops.remote"),
		Bytes:    m.Histogram("net.msgr.bytes").Sum(),
		NetMsgs:  m.CounterValue("net.msgs"),
		NetBytes: m.CounterValue("net.bytes"),
	}
}
