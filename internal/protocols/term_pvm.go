package protocols

import (
	"fmt"

	"messengers/internal/faults"
	"messengers/internal/obs"
	"messengers/internal/pvm"
)

// Termination detection as stationary PVM tasks — the message-passing
// baseline for term_msgr.go. Worker tasks on hosts 1..4 pass ttl-counted
// tokens around a ring; a detector task (co-located with worker 1, like
// the Messenger detector injected at w1) laps the ring with query/reply
// probes summing each worker's monotone sent/received counters, declaring
// termination only after two consecutive identical balanced laps. Host 0
// carries an idle leader task — the PVM stand-in for the Messenger
// version's GVT-pacing daemon 0 — so the leader-crash nemesis has the same
// target with the same (absent) protocol state.
const (
	tkToken = 1 // [kind, ttl]
	tkQuery = 2 // [kind]
	tkReply = 3 // [kind, sent, recv]
	tkStop  = 4 // [kind]
)

func termPVMWorker(idx int, next *pvm.TID, initial []int64, env *pvmEnv) func(p *pvm.Proc, r *rt) {
	return func(p *pvm.Proc, r *rt) {
		budget := env.budget()
		var sent, recv int64
		for _, ttl := range initial {
			sent++
			env.rec.Record(EvSend, idx+1, 0, "")
			r.send(*next, tkToken, ttl)
		}
		for {
			msg := r.recv(&budget)
			if msg == nil {
				break
			}
			switch msg.Vals[0] {
			case tkToken:
				recv++
				env.rec.Record(EvRecv, idx+1, 0, "")
				if ttl := msg.Vals[1] - 1; ttl > 0 {
					sent++
					env.rec.Record(EvSend, idx+1, 0, "")
					r.send(*next, tkToken, ttl)
				}
			case tkQuery:
				r.send(msg.Src, tkReply, sent, recv)
			case tkStop:
				r.flush(&budget)
				return
			}
		}
		r.flush(&budget)
	}
}

func termPVMDetector(workers []pvm.TID, leader pvm.TID, env *pvmEnv) func(p *pvm.Proc, r *rt) {
	return func(p *pvm.Proc, r *rt) {
		budget := env.budget()
		lastS, lastR := int64(-1), int64(-1)
		for budget > 0 {
			var s, r64 int64
			complete := true
			for _, w := range workers {
				r.send(w, tkQuery)
				replied := false
				for !replied {
					msg := r.recv(&budget)
					if msg == nil {
						complete = false
						break
					}
					if msg.Src == w && msg.Vals[0] == tkReply {
						s += msg.Vals[1]
						r64 += msg.Vals[2]
						replied = true
					}
				}
				if !complete {
					break
				}
			}
			if !complete {
				break
			}
			env.rec.Record(EvRound, 1, s, "")
			if s > 0 && s == r64 && s == lastS && r64 == lastR {
				env.rec.Record(EvDetect, 1, s, "")
				for _, w := range workers {
					r.send(w, tkStop)
				}
				r.send(leader, tkStop)
				r.flush(&budget)
				return
			}
			lastS, lastR = s, r64
		}
		r.flush(&budget)
	}
}

// termPVMLeader idles until stopped or killed: it exists to be crashed.
func termPVMLeader(env *pvmEnv) func(p *pvm.Proc, r *rt) {
	return func(p *pvm.Proc, r *rt) {
		budget := env.budget()
		for {
			msg := r.recv(&budget)
			if msg == nil || msg.Vals[0] == tkStop {
				return
			}
		}
	}
}

func runTermPVM(engine string, seed uint64, plan *faults.Plan, rec *Recorder, m *obs.Metrics) error {
	env, err := newPVMEnv(engine, 1+termWorkers, plan, rec, m)
	if err != nil {
		return err
	}
	// Workers need their successor's TID before any token flows; spawn
	// first, fill the ring table after (tasks hold off until env.run).
	load := termLoad(seed)
	nexts := make([]pvm.TID, termWorkers)
	workers := make([]pvm.TID, termWorkers)
	for i := 0; i < termWorkers; i++ {
		var initial []int64
		for _, ld := range load {
			if ld.Start == i+1 {
				initial = append(initial, int64(ld.TTL))
			}
		}
		workers[i] = env.spawn(fmt.Sprintf("w%d", i+1), 1+i, termPVMWorker(i, &nexts[i], initial, env))
	}
	for i := range workers {
		nexts[i] = workers[(i+1)%termWorkers]
	}
	leader := env.spawn("leader", 0, termPVMLeader(env))
	env.spawn("detector", 1, termPVMDetector(workers, leader, env))
	schedulePlanKills(env, plan, leader)
	return env.run()
}
