// figures regenerates every table and figure of the paper's evaluation
// (DESIGN.md §3) on the simulated cluster and writes them to the output
// directory as aligned text and CSV.
//
//	go run ./cmd/figures                 # everything, full axes (minutes)
//	go run ./cmd/figures -short          # trimmed axes (seconds)
//	go run ./cmd/figures -only f7,t3     # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"messengers/internal/bench"
	"messengers/internal/lan"
)

func main() {
	short := flag.Bool("short", false, "trim sweep axes for a quick run")
	outDir := flag.String("out", "experiments", "output directory")
	only := flag.String("only", "", "comma-separated subset (f4,f5,f6,f7,f12a,f12b,t1,t2,t3,a1,a2,a3,a4,e1)")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }
	cm := lan.DefaultCostModel()

	type job struct {
		id  string
		run func() (*bench.Table, error)
	}
	mandel := func(sweep bench.MandelSweep) func() (*bench.Table, error) {
		return func() (*bench.Table, error) {
			fig, err := bench.RunMandelFigure(cm, sweep)
			if err != nil {
				return nil, err
			}
			return fig.Table(), nil
		}
	}
	matmul := func(sweep bench.MatmulSweep) func() (*bench.Table, error) {
		return func() (*bench.Table, error) {
			fig, err := bench.RunMatmulFigure(cm, sweep)
			if err != nil {
				return nil, err
			}
			t := fig.Table()
			t.Title += fmt.Sprintf("  [crossover at block %d]", fig.Crossover())
			return t, nil
		}
	}
	jobs := []job{
		{"f4", mandel(bench.Fig4Sweep(*short))},
		{"f5", mandel(bench.Fig5Sweep(*short))},
		{"f6", mandel(bench.Fig6Sweep(*short))},
		{"f7", mandel(bench.Fig7Sweep(*short))},
		{"f12a", matmul(bench.Fig12aSweep(*short))},
		{"f12b", matmul(bench.Fig12bSweep(*short))},
		{"t1", func() (*bench.Table, error) {
			fig, err := bench.RunMatmulFigure(cm, bench.MatmulSweep{
				Name: "T1", M: 3, Host: lan.SPARC110, BlockSizes: []int{500},
			})
			if err != nil {
				return nil, err
			}
			t := fig.Table()
			gain := float64(fig.SeqNaive[0])/float64(fig.SeqBlock[0]) - 1
			t.Title = fmt.Sprintf("T1 (§3.2): sequential block-partition gain at n=1500: %.1f%% (paper ~13%%)", gain*100)
			return t, nil
		}},
		{"t2", func() (*bench.Table, error) { return bench.RunT2(cm) }},
		{"t3", func() (*bench.Table, error) { return bench.RunT3(), nil }},
		{"a1", func() (*bench.Table, error) {
			procs := []int{4, 16, 32}
			if *short {
				procs = []int{8}
			}
			return bench.RunA1CopyAblation(cm, 640, 8, procs)
		}},
		{"a2", func() (*bench.Table, error) { return bench.RunA2GVTStrategies(cm, 8, 16, 10) }},
		{"a3", func() (*bench.Table, error) { return bench.RunA3InterpreterOverhead(cm, []int{8, 16, 24}) }},
		{"a4", func() (*bench.Table, error) { return bench.RunA4CodeCarrying(cm, 640, 16, 8) }},
		{"e1", func() (*bench.Table, error) {
			procs := []int{4, 16, 32}
			if *short {
				procs = []int{8}
			}
			return bench.RunTrafficTable(cm, 1280, 8, procs)
		}},
	}

	for _, j := range jobs {
		if !selected(j.id) {
			continue
		}
		start := time.Now()
		tbl, err := j.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", j.id, err))
		}
		txt := tbl.Format()
		fmt.Printf("%s  (%.1fs)\n\n", txt, time.Since(start).Seconds())
		if err := os.WriteFile(filepath.Join(*outDir, j.id+".txt"), []byte(txt), 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, j.id+".csv"), []byte(tbl.CSV()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("results written to %s/\n", *outDir)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "figures: %v\n", err)
	os.Exit(1)
}
