package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated process: ordinary Go code that advances simulated time
// with Advance and blocks with Park/Mailbox operations. Each Proc runs in its
// own goroutine, but the kernel admits exactly one at a time, handing control
// back and forth through unbuffered channels, so the simulation stays
// deterministic.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	yield  chan struct{}
	parked bool
	dead   bool
	killed bool
}

// procKilled is the panic payload used to unwind a killed process.
type procKilled struct{}

// ProcPanic is what Kernel.Step re-panics with when a simulated process
// panics: the process name, the original panic value, and the goroutine
// stack captured at the panic site — so the trace names the faulty process
// function rather than the kernel's event loop.
type ProcPanic struct {
	Proc  string
	Value any
	Stack []byte
}

// Error makes ProcPanic usable as an error when recovered by callers.
func (e *ProcPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v\n%s", e.Proc, e.Value, e.Stack)
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn starts fn as a simulated process at the current time. fn begins
// executing when the kernel reaches the start event; it must only touch the
// simulation through p.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs++
	k.allProcs = append(k.allProcs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					k.failure = &ProcPanic{Proc: name, Value: r, Stack: debug.Stack()}
				}
			}
			p.dead = true
			k.procs--
			p.yield <- struct{}{}
		}()
		if p.killed {
			panic(procKilled{})
		}
		fn(p)
	}()
	k.After(0, func() { k.runProc(p) })
	return p
}

// Shutdown unwinds every live process so no goroutines leak after the
// simulation ends. Parked processes are killed where they block; processes
// with pending wake-ups are killed when resumed. Call it when a run is done
// (typically with defer after New).
func (k *Kernel) Shutdown() {
	for _, p := range k.allProcs {
		if p.dead {
			continue
		}
		p.killed = true
		if p.parked {
			p.parked = false
			k.parked--
		}
		// Every live process is blocked on <-p.resume (initial start,
		// Advance, or Park); resuming it unwinds via procKilled.
		k.runProc(p)
	}
	k.failure = nil
}

// runProc transfers control to p until it yields (parks, advances, or exits).
func (k *Kernel) runProc(p *Proc) {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// yieldToKernel suspends the calling process until the kernel resumes it.
// Must be called from the process's own goroutine.
func (p *Proc) yieldToKernel() {
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Advance consumes d nanoseconds of simulated time (e.g. modeled CPU work).
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	p.k.After(d, func() { p.k.runProc(p) })
	p.yieldToKernel()
}

// Park blocks the process until another component calls Unpark. It is the
// building block for condition-style waiting (mailboxes, barriers).
func (p *Proc) Park() {
	p.parked = true
	p.k.parked++
	p.yieldToKernel()
}

// Unpark schedules a parked process to resume at the current time. It may be
// called from an event callback or from another process. Unparking a process
// that is not parked panics: it indicates a lost-wakeup race in the caller.
func (p *Proc) Unpark() {
	if !p.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked process %q", p.name))
	}
	p.parked = false
	p.k.parked--
	p.k.After(0, func() { p.k.runProc(p) })
}

// Parked reports whether the process is currently parked.
func (p *Proc) Parked() bool { return p.parked }

// Mailbox is an unbounded deterministic FIFO queue connecting simulated
// components. Any event callback or process may Put; only processes may
// block in Get.
type Mailbox struct {
	k      *Kernel
	items  []any
	waiter *Proc
}

// NewMailbox returns an empty mailbox on kernel k.
func NewMailbox(k *Kernel) *Mailbox {
	return &Mailbox{k: k}
}

// Len returns the number of queued items.
func (m *Mailbox) Len() int { return len(m.items) }

// Put enqueues an item and wakes the waiting process, if any.
func (m *Mailbox) Put(item any) {
	m.items = append(m.items, item)
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		w.Unpark()
	}
}

// Get dequeues the next item, parking p until one is available. At most one
// process may wait on a mailbox at a time.
func (m *Mailbox) Get(p *Proc) any {
	for len(m.items) == 0 {
		if m.waiter != nil && m.waiter != p {
			panic("sim: multiple processes waiting on one mailbox")
		}
		m.waiter = p
		p.Park()
	}
	item := m.items[0]
	m.items = m.items[1:]
	return item
}

// TryGet dequeues the next item without blocking.
func (m *Mailbox) TryGet() (any, bool) {
	if len(m.items) == 0 {
		return nil, false
	}
	item := m.items[0]
	m.items = m.items[1:]
	return item, true
}
