package protocols

import (
	"testing"

	"messengers/internal/obs"
)

// Checker unit tests on hand-built traces, plus the suite's teeth test:
// the deliberately broken Paxos acceptor (forgets its promises) must be
// caught by the checker on the real VM.

func ev(kind string, who int, ballot int64, val string) Event {
	return Event{Kind: kind, Who: who, Ballot: ballot, Val: val}
}

func codes(vs []Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Code]++
	}
	return out
}

func TestPaxosCheckerMonotonicity(t *testing.T) {
	// Acceptor 0 promises ballot 5, then accepts ballot 3: forgotten promise.
	vs := (PaxosChecker{}).Check([]Event{
		ev(EvPromise, 0, 5, ""),
		ev(EvAccept, 0, 3, "v1"),
	})
	if codes(vs)["paxos.monotonic"] == 0 {
		t.Errorf("missed monotonicity violation: %+v", vs)
	}
}

func TestPaxosCheckerAgreement(t *testing.T) {
	vs := (PaxosChecker{}).Check([]Event{
		ev(EvAccept, 0, 1, "v0"),
		ev(EvAccept, 1, 1, "v0"),
		ev(EvDecide, 0, 1, "v0"),
		ev(EvAccept, 0, 2, "v1"),
		ev(EvAccept, 1, 2, "v1"),
		ev(EvDecide, 1, 2, "v1"),
	})
	if codes(vs)["paxos.agreement"] == 0 {
		t.Errorf("missed agreement violation: %+v", vs)
	}
}

func TestPaxosCheckerUnsupportedDecide(t *testing.T) {
	vs := (PaxosChecker{}).Check([]Event{
		ev(EvDecide, 0, 1, "v0"),
	})
	if codes(vs)["paxos.unsupported"] == 0 {
		t.Errorf("missed unsupported decide: %+v", vs)
	}
}

func TestTPCCheckerMixedAndPremature(t *testing.T) {
	c := TPCChecker{Participants: 2}
	vs := c.Check([]Event{
		ev(EvVote, 0, 0, "1"),
		ev(EvDecide, 0, 0, "1"), // commit with one vote: premature
	})
	if codes(vs)["2pc.premature-commit"] == 0 {
		t.Errorf("missed premature commit: %+v", vs)
	}
	vs = c.Check([]Event{
		ev(EvVote, 0, 0, "1"),
		ev(EvVote, 1, 0, "0"),
		ev(EvDecide, 0, 0, "1"), // commit over a no vote
	})
	if codes(vs)["2pc.vote-override"] == 0 {
		t.Errorf("missed vote override: %+v", vs)
	}
	vs = c.Check([]Event{
		ev(EvVote, 0, 0, "1"),
		ev(EvVote, 1, 0, "1"),
		ev(EvDecide, 0, 0, "1"),
		ev(EvApply, 0, 0, "1"),
		ev(EvApply, 1, 0, "0"), // applies diverge from the decision
	})
	if codes(vs)["2pc.mixed"] == 0 {
		t.Errorf("missed mixed apply: %+v", vs)
	}
}

func TestTermCheckerFalsePositive(t *testing.T) {
	vs := (TermChecker{}).Check([]Event{
		ev(EvSend, 1, 0, ""),
		ev(EvRecv, 2, 0, ""),
		ev(EvDetect, 1, 1, ""),
		ev(EvSend, 2, 0, ""), // activity after detection
	})
	if codes(vs)["term.false-positive"] == 0 {
		t.Errorf("missed false positive: %+v", vs)
	}
	vs = (TermChecker{}).Check([]Event{
		ev(EvSend, 1, 0, ""),
		ev(EvRecv, 2, 0, ""),
		ev(EvDetect, 1, 3, ""), // announces 3, but 1 send happened
	})
	if codes(vs)["term.inconsistent"] == 0 {
		t.Errorf("missed inconsistent total: %+v", vs)
	}
}

// TestBrokenPaxosCaught runs the promise-forgetting acceptor variant on
// the real VM across the nemesis catalog and requires the checker to flag
// it: dueling proposers re-accept superseded ballots on essentially every
// seed, so a majority of seeds must produce violations — proof the
// invariant harness has teeth, not just that safe implementations pass.
func TestBrokenPaxosCaught(t *testing.T) {
	for _, nem := range []string{NemesisNone, NemesisDrop} {
		caught := 0
		seeds := []uint64{1, 2, 3, 4, 5, 6}
		for _, seed := range seeds {
			res, err := Run(RunConfig{
				Protocol: ProtoPaxos, Impl: ImplMessengers, Engine: EngineSim,
				Nemesis: nem, Seed: seed, Broken: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) > 0 {
				caught++
				if c := codes(res.Violations); c["paxos.monotonic"] == 0 && c["paxos.agreement"] == 0 {
					t.Errorf("%s seed %d: violations lack the expected codes: %+v", nem, seed, res.Violations)
				}
			}
		}
		if caught < len(seeds)/2+1 {
			t.Errorf("%s: broken acceptor caught on only %d/%d seeds", nem, caught, len(seeds))
		}
	}
}

// The broken variant must also increment the proto.violations counter via
// the harness, so dashboards see what the checker sees.
func TestViolationsCounter(t *testing.T) {
	m := obs.NewMetrics()
	rec := NewRecorder(m)
	if err := runPaxosMessengers(EngineSim, nil, rec, m, true); err != nil {
		t.Fatal(err)
	}
	vs := (PaxosChecker{}).Check(rec.Events())
	if len(vs) == 0 {
		t.Skip("seedless broken run produced no violation this layout")
	}
	m.Counter("proto.violations").Add(int64(len(vs)))
	if m.CounterValue("proto.violations") == 0 {
		t.Error("proto.violations not recorded")
	}
}
