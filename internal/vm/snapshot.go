package vm

import (
	"encoding/binary"
	"fmt"

	"messengers/internal/bytecode"
	"messengers/internal/value"
)

// Snapshot serializes the full execution state — Messenger variables, call
// frames, and operand stack. Together with the program hash this is exactly
// what a daemon ships when a Messenger hops to another daemon (the code
// itself stays in the shared script registry).
func (m *VM) Snapshot() []byte {
	buf := value.AppendEnv(nil, m.vars)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.frames)))
	for i := range m.frames {
		f := &m.frames[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.fn))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.pc))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.locals)))
		for _, lv := range f.locals {
			buf = value.Append(buf, lv)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.stack)))
	for _, v := range m.stack {
		buf = value.Append(buf, v)
	}
	return buf
}

// WireSize estimates the snapshot's encoded size without building it, for
// the simulator's transfer-cost accounting.
func (m *VM) WireSize() int {
	n := value.EnvWireSize(m.vars) + 4
	for i := range m.frames {
		n += 12
		for _, lv := range m.frames[i].locals {
			n += lv.WireSize()
		}
	}
	n += 4
	for _, v := range m.stack {
		n += v.WireSize()
	}
	return n
}

// Restore rebuilds a VM from a snapshot against its program.
func Restore(prog *bytecode.Program, buf []byte) (*VM, error) {
	vars, p, err := value.DecodeEnv(buf)
	if err != nil {
		return nil, fmt.Errorf("vm: restore vars: %w", err)
	}
	u32 := func() (int, error) {
		if p+4 > len(buf) {
			return 0, fmt.Errorf("vm: truncated snapshot")
		}
		v := int(binary.LittleEndian.Uint32(buf[p:]))
		p += 4
		return v, nil
	}
	nframes, err := u32()
	if err != nil {
		return nil, err
	}
	if nframes < 1 || nframes > maxCallDepth {
		return nil, fmt.Errorf("vm: snapshot frame count %d out of range", nframes)
	}
	m := &VM{prog: prog, vars: vars, frames: make([]frame, nframes)}
	for i := 0; i < nframes; i++ {
		fn, err := u32()
		if err != nil {
			return nil, err
		}
		pc, err := u32()
		if err != nil {
			return nil, err
		}
		nloc, err := u32()
		if err != nil {
			return nil, err
		}
		if fn >= len(prog.Funcs) {
			return nil, fmt.Errorf("vm: snapshot references function %d of %d", fn, len(prog.Funcs))
		}
		if pc > len(prog.Funcs[fn].Code) {
			return nil, fmt.Errorf("vm: snapshot pc %d beyond code of %q", pc, prog.Funcs[fn].Name)
		}
		if nloc > 1<<20 || nloc > len(buf)-p {
			return nil, fmt.Errorf("vm: snapshot local count %d exceeds buffer", nloc)
		}
		fr := frame{fn: fn, pc: pc, locals: make([]value.Value, nloc)}
		for j := 0; j < nloc; j++ {
			v, n, err := value.Decode(buf[p:])
			if err != nil {
				return nil, fmt.Errorf("vm: restore local: %w", err)
			}
			fr.locals[j] = v
			p += n
		}
		m.frames[i] = fr
	}
	nstack, err := u32()
	if err != nil {
		return nil, err
	}
	if nstack > 1<<20 || nstack > len(buf)-p {
		return nil, fmt.Errorf("vm: snapshot stack size %d exceeds buffer", nstack)
	}
	m.stack = make([]value.Value, nstack)
	for i := 0; i < nstack; i++ {
		v, n, err := value.Decode(buf[p:])
		if err != nil {
			return nil, fmt.Errorf("vm: restore stack: %w", err)
		}
		m.stack[i] = v
		p += n
	}
	return m, nil
}
