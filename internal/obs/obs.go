// Package obs is the unified tracing and metrics subsystem shared by the
// simulated and real MESSENGERS engines.
//
// The paper's whole evaluation is about *where time goes* — copy costs,
// daemon indirection, bus contention, manager serialization — and this
// package makes that breakdown observable on any run. It has two halves:
//
//   - a Tracer collecting structured span/instant events (messenger
//     lifecycle, VM segments and native calls, GVT epoch advances, LAN
//     frame transmissions, PVM pack/send/recv/unpack), each stamped with a
//     track (one per daemon/host, plus one for the shared bus) and a
//     timestamp drawn from a pluggable clock — the simulation kernel in
//     simulated runs, the wall clock in real ones;
//   - a Metrics registry of named counters, gauges, and histograms that
//     replaces the ad-hoc counter fields previously threaded through app
//     result structs.
//
// Both are nil-safe: every method on a nil *Tracer, *Metrics, *Counter,
// *Gauge, or *Histogram is a no-op, so instrumented code needs no
// configuration flags — an untraced run carries only an untaken branch.
// Exporters (Chrome trace_event JSON, CSV, aligned text) live in export.go.
//
// The package is dependency-free (standard library only) so every layer of
// the runtime — core, lan, pvm, gvt, vm, transport — can import it without
// cycles.
package obs

import (
	"sync"
	"time"
)

// Well-known track offsets: daemon/host i traces on track i; auxiliary
// tracks (the shared bus, the system itself) sit above all hosts.
const (
	// BusTrackName names the shared-Ethernet track.
	BusTrackName = "ethernet bus"
)

// Field is one key/value argument attached to an event. Exactly one of the
// value slots is meaningful, selected by the constructor used.
type Field struct {
	Key  string
	kind uint8
	i    int64
	f    float64
	s    string
}

const (
	fieldInt uint8 = iota
	fieldFloat
	fieldStr
)

// I builds an integer field.
func I(key string, v int64) Field { return Field{Key: key, kind: fieldInt, i: v} }

// F builds a floating-point field.
func F(key string, v float64) Field { return Field{Key: key, kind: fieldFloat, f: v} }

// S builds a string field.
func S(key, v string) Field { return Field{Key: key, kind: fieldStr, s: v} }

// Int returns the integer slot (0 unless built with I).
func (f Field) Int() int64 { return f.i }

// Float returns the floating-point slot (0 unless built with F).
func (f Field) Float() float64 { return f.f }

// Str returns the string slot ("" unless built with S).
func (f Field) Str() string { return f.s }

// Event phases, mirroring the Chrome trace_event "ph" values the exporter
// emits.
const (
	PhaseSpan    byte = 'X' // complete event: TS..TS+Dur
	PhaseInstant byte = 'i' // instantaneous event
	PhaseCounter byte = 'C' // sampled counter value
)

// Event is one recorded trace event.
type Event struct {
	// TS is the event timestamp in engine nanoseconds (simulated time on
	// the simulated engine, monotonic wall time on real engines).
	TS int64
	// Dur is the span duration in nanoseconds (PhaseSpan only).
	Dur int64
	// Track is the horizontal lane the event belongs to: daemon/host ID,
	// or an auxiliary track registered with NameTrack.
	Track int
	// Ph is the phase (PhaseSpan, PhaseInstant, PhaseCounter).
	Ph byte
	// Cat is the event category ("msgr", "vm", "gvt", "lan", "pvm", "net").
	Cat string
	// Name is the event name within the category.
	Name string
	// Args are optional structured arguments.
	Args []Field
}

// Tracer collects events from one run. A nil *Tracer is a valid no-op
// tracer; instrumented code may also guard emission sites with `!= nil` to
// keep the disabled path to a single branch.
//
// The zero clock is monotonic wall time since construction; simulated
// engines install the kernel clock with SetClock so events carry simulated
// timestamps and two identical runs produce byte-identical streams.
type Tracer struct {
	mu        sync.Mutex
	clock     func() int64
	wallStart time.Time
	events    []Event
	tracks    map[int]string
}

// NewTracer returns an empty tracer on the wall clock.
func NewTracer() *Tracer {
	return &Tracer{wallStart: time.Now(), tracks: map[int]string{}}
}

// SetClock installs a timestamp source (nanoseconds). The simulated engine
// points this at its kernel so events carry simulated time.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// Now returns the tracer's current timestamp in nanoseconds (0 on a nil
// tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	c := t.clock
	t.mu.Unlock()
	if c != nil {
		return c()
	}
	return int64(time.Since(t.wallStart))
}

// NameTrack labels a track (shown as the thread name in chrome://tracing).
func (t *Tracer) NameTrack(track int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tracks[track] = name
	t.mu.Unlock()
}

// Emit records a fully formed event.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Instant records an instantaneous event at the current clock.
func (t *Tracer) Instant(track int, cat, name string, args ...Field) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: t.Now(), Track: track, Ph: PhaseInstant, Cat: cat, Name: name, Args: args})
}

// Span records a complete event covering [start, start+dur).
func (t *Tracer) Span(track int, cat, name string, start, dur int64, args ...Field) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.Emit(Event{TS: start, Dur: dur, Track: track, Ph: PhaseSpan, Cat: cat, Name: name, Args: args})
}

// Counter records a sampled counter value (rendered as a filled series).
func (t *Tracer) Counter(track int, cat, name string, v int64) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: t.Now(), Track: track, Ph: PhaseCounter, Cat: cat, Name: name,
		Args: []Field{I("value", v)}})
}

// Len returns the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded event stream in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Tracks returns a copy of the registered track-name map.
func (t *Tracer) Tracks() map[int]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string, len(t.tracks))
	for k, v := range t.tracks {
		out[k] = v
	}
	return out
}

// Reset discards all recorded events (track names are kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = nil
	t.mu.Unlock()
}
