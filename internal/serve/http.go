package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"

	"messengers/internal/value"
)

// HTTP front end for the admission server. Three endpoints:
//
//	POST /v1/submit  — submit an MSL program (JSON body below)
//	GET  /v1/stats   — per-tenant admission statistics
//	GET  /healthz    — liveness probe (503 while draining)
//
// Submit body:
//
//	{"tenant": "acme", "name": "crawl", "source": "...MSL...",
//	 "bytecode": "<base64>", "node": "n0", "daemon": -1,
//	 "vars": {"depth": 3, "label": "x"}}
//
// Exactly one of source/bytecode is required. Vars values may be numbers,
// strings, or booleans. Responses carry the admission decision:
// 202 admitted/queued, 400 verify failure, 403 unknown tenant,
// 413 oversized program, 429 backpressure, 503 draining.

type submitRequest struct {
	Tenant   string         `json:"tenant"`
	Name     string         `json:"name"`
	Source   string         `json:"source,omitempty"`
	Bytecode string         `json:"bytecode,omitempty"` // base64
	Node     string         `json:"node,omitempty"`
	Daemon   *int           `json:"daemon,omitempty"`
	Vars     map[string]any `json:"vars,omitempty"`
}

type submitResponse struct {
	Session uint64 `json:"session,omitempty"`
	Status  string `json:"status"` // "admitted" | "queued" | "rejected"
	Error   string `json:"error,omitempty"`
}

// Handler returns the HTTP front end for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, submitResponse{Status: "rejected", Error: "bad request: " + err.Error()})
		return
	}
	sub := Submission{
		Tenant: req.Tenant,
		Name:   req.Name,
		Source: req.Source,
		Node:   req.Node,
		Daemon: -1,
	}
	if req.Daemon != nil {
		sub.Daemon = *req.Daemon
	}
	if req.Bytecode != "" {
		bc, err := base64.StdEncoding.DecodeString(req.Bytecode)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, submitResponse{Status: "rejected", Error: "bad bytecode encoding: " + err.Error()})
			return
		}
		sub.Bytecode = bc
	}
	if len(req.Vars) > 0 {
		vars, err := decodeVars(req.Vars)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, submitResponse{Status: "rejected", Error: err.Error()})
			return
		}
		sub.Vars = vars
	}
	id, st, err := s.Submit(sub)
	if err != nil {
		status := http.StatusInternalServerError
		if rej, ok := err.(*Reject); ok {
			status = rej.HTTPStatus()
		}
		writeJSON(w, status, submitResponse{Status: "rejected", Error: err.Error()})
		return
	}
	resp := submitResponse{Session: id, Status: "admitted"}
	if st == StatusQueued {
		resp.Status = "queued"
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Live    int           `json:"live"`
		Tenants []TenantStats `json:"tenants"`
	}{s.LiveSessions(), s.Stats()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeVars maps JSON values onto MSL values: numbers (integers stay
// integral), strings, and booleans.
func decodeVars(in map[string]any) (map[string]value.Value, error) {
	out := make(map[string]value.Value, len(in))
	for k, v := range in {
		switch t := v.(type) {
		case json.Number:
			if i, err := t.Int64(); err == nil {
				out[k] = value.Int(i)
				continue
			}
			f, err := t.Float64()
			if err != nil {
				return nil, fmt.Errorf("var %q: bad number %q", k, t.String())
			}
			out[k] = value.Num(f)
		case string:
			out[k] = value.Str(t)
		case bool:
			out[k] = value.Bool(t)
		default:
			return nil, fmt.Errorf("var %q: unsupported JSON type %T", k, v)
		}
	}
	return out, nil
}
