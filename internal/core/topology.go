// Package core implements the MESSENGERS runtime: daemons that receive,
// interpret, and forward autonomous Messengers over a logical network, the
// navigational semantics of hop/create/delete, injection, the shared script
// registry, and the conservative global-virtual-time synchronizer.
//
// The same daemon logic runs on two engines (see engine.go): a real
// concurrent engine (one goroutine per daemon, in-process channels or TCP)
// and a deterministic simulated engine used by the paper-reproduction
// benchmarks (hosts with modeled CPUs on a shared Ethernet).
package core

import (
	"fmt"

	"messengers/internal/value"
)

// DaemonEdge is one endpoint's view of a daemon-network link. The daemon
// network is the middle layer of the paper's three-level architecture; the
// dn/dl/ddir parts of a create specification match against it.
type DaemonEdge struct {
	To       int
	Name     string
	Directed bool
	Outgoing bool
}

// Topology is the daemon network: a graph over daemon IDs 0..N-1. Daemon i
// is addressable by name "d<i>".
type Topology struct {
	n   int
	adj [][]DaemonEdge
}

// NumDaemons returns the daemon count.
func (t *Topology) NumDaemons() int { return t.n }

// DaemonName returns the well-known name of daemon i.
func DaemonName(i int) string { return fmt.Sprintf("d%d", i) }

// NewTopology returns an edgeless daemon network of n daemons.
func NewTopology(n int) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("core: topology needs at least 1 daemon, got %d", n))
	}
	return &Topology{n: n, adj: make([][]DaemonEdge, n)}
}

// AddEdge links daemons a and b with an optionally named, optionally
// directed (a -> b) daemon link.
func (t *Topology) AddEdge(a, b int, name string, directed bool) {
	t.adj[a] = append(t.adj[a], DaemonEdge{To: b, Name: name, Directed: directed, Outgoing: true})
	t.adj[b] = append(t.adj[b], DaemonEdge{To: a, Name: name, Directed: directed, Outgoing: false})
}

// FullMesh returns the default daemon network: every pair connected by an
// unnamed undirected link (a LAN where every daemon can reach every other).
func FullMesh(n int) *Topology {
	t := NewTopology(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.AddEdge(i, j, "", false)
		}
	}
	return t
}

// Ring returns a ring of n daemons with edges named "ring", directed
// i -> (i+1) mod n.
func Ring(n int) *Topology {
	t := NewTopology(n)
	for i := 0; i < n; i++ {
		t.AddEdge(i, (i+1)%n, "ring", true)
	}
	return t
}

// Grid returns a rows x cols mesh with undirected edges named "ew"
// (east-west) and "ns" (north-south). Daemon (r, c) has ID r*cols + c.
func Grid(rows, cols int) *Topology {
	t := NewTopology(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				t.AddEdge(id(r, c), id(r, c+1), "ew", false)
			}
			if r+1 < rows {
				t.AddEdge(id(r, c), id(r+1, c), "ns", false)
			}
		}
	}
	return t
}

// Star returns a hub-and-spoke network: daemon 0 connected to all others by
// unnamed undirected links.
func Star(n int) *Topology {
	t := NewTopology(n)
	for i := 1; i < n; i++ {
		t.AddEdge(0, i, "", false)
	}
	return t
}

// RingSuccessor returns the daemon after i in the canonical index ring
// 0 → 1 → … → n-1 → 0. The distributed GVT token route is defined over
// this ring, independent of the application's daemon-link topology: every
// daemon set has it, and it visits each daemon exactly once per lap.
func (t *Topology) RingSuccessor(i int) int {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("core: ring successor of daemon %d in a %d-daemon topology", i, t.n))
	}
	return (i + 1) % t.n
}

// MatchDaemons resolves a daemon destination specification (dn, dl, ddir)
// from daemon `from`. dn may be "*", a daemon name ("d3"), or a numeric
// daemon ID; dl matches the daemon-link name ("*" any, "~" unnamed); ddir
// is "+", "-", or "*"/"~".
//
// Like the logical calculus, a specification with dl != "*" or ddir
// constraints matches along daemon links; the common case create(ALL) with
// all-default daemon parameters matches every neighboring daemon.
func (t *Topology) MatchDaemons(from int, dn, dl, ddir value.Value) []int {
	wantName := navString(dn)
	wantLink := navString(dl)
	wantDir := navString(ddir)
	seen := make(map[int]bool)
	var out []int
	for _, e := range t.adj[from] {
		if !matchPattern(wantLink, e.Name) {
			continue
		}
		switch wantDir {
		case "+":
			if !e.Directed || !e.Outgoing {
				continue
			}
		case "-":
			if !e.Directed || e.Outgoing {
				continue
			}
		}
		if !matchDaemonName(wantName, e.To) {
			continue
		}
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	return out
}

// matchDaemonName checks a dn pattern against daemon id.
func matchDaemonName(pattern string, id int) bool {
	switch pattern {
	case "*", "~":
		return true
	default:
		return pattern == DaemonName(id) || pattern == fmt.Sprintf("%d", id)
	}
}

// matchPattern is wildcard name matching shared with the logical calculus.
func matchPattern(pattern, name string) bool {
	switch pattern {
	case "*":
		return true
	case "~":
		return name == ""
	default:
		return pattern == name
	}
}

// navString renders a navigational-spec value as its matching string:
// strings pass through, integers become decimal, nil is the wildcard.
func navString(v value.Value) string {
	switch v.Kind() {
	case value.KindNil:
		return "*"
	case value.KindStr:
		return v.AsStr()
	default:
		return v.Format()
	}
}
