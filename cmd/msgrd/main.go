// msgrd runs a MESSENGERS daemon network whose daemons communicate over
// real TCP sockets — the paper's "daemons instantiated on all physical
// nodes". It has two modes:
//
// Classic injection (the original behavior): compile one MSL script, inject
// it, wait for quiescence:
//
//	msgrd -n 4 -inject prog.msl
//	msgrd -n 3 -addrs 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -inject prog.msl
//
// Service mode (-serve): run the daemon network as a long-lived multi-tenant
// service. Untrusted tenants submit MSL over HTTP; every program passes the
// bytecode verifier before execution, and per-tenant quotas (instruction
// budgets, state caps, hop-rate and admission token buckets) are enforced
// with explicit backpressure:
//
//	msgrd -n 4 -serve -http 127.0.0.1:8080 -tenants tenants.json
//
// tenants.json is a JSON array of tenant configs:
//
//	[{"id": "acme", "step_budget": 200000, "mem_budget": 65536,
//	  "hop_rate": 500, "inject_rate": 50, "max_queue": 64, "max_live": 32}]
//
// In both modes SIGINT/SIGTERM triggers a graceful drain: no new work is
// admitted, in-flight Messengers run to completion, then the process exits.
// A second signal forces immediate exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"messengers"
	"messengers/internal/compile"
	"messengers/internal/serve"
)

func main() {
	n := flag.Int("n", 4, "daemon count")
	addrsFlag := flag.String("addrs", "", "comma-separated listen addresses (default ephemeral loopback)")
	inject := flag.String("inject", "", "MSL script to inject into daemon 0 (classic mode)")
	at := flag.Int("at", 0, "daemon to inject into (classic mode)")
	serveMode := flag.Bool("serve", false, "run as a multi-tenant service")
	httpAddr := flag.String("http", "127.0.0.1:8080", "service HTTP listen address (-serve)")
	tenantsPath := flag.String("tenants", "", "tenant config JSON file (-serve); default one unlimited tenant \"default\"")
	recovery := flag.Bool("recover", false, "enable messenger-level recovery")
	retain := flag.Int("retain", 1024, "acknowledged-snapshot retention budget per daemon (with -recover)")
	flag.Parse()

	if *serveMode == (*inject != "") {
		fmt.Fprintln(os.Stderr, "msgrd: need exactly one of -inject script.msl or -serve")
		os.Exit(2)
	}
	var addrs []string
	if *addrsFlag != "" {
		addrs = strings.Split(*addrsFlag, ",")
	}
	sys, err := messengers.NewTCPSystem(messengers.Config{
		Daemons:        *n,
		Output:         os.Stdout,
		Recovery:       *recovery,
		RecoveryRetain: *retain,
	}, addrs)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	for i, a := range sys.Addrs() {
		fmt.Printf("daemon %d listening on %s\n", i, a)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	if *serveMode {
		runService(sys, *httpAddr, *tenantsPath, sigs)
		return
	}
	runClassic(sys, *inject, *at, sigs)
}

// runClassic injects one script and waits for quiescence. A signal during
// the wait just keeps waiting (the drain is the computation finishing); a
// second signal forces exit.
func runClassic(sys *messengers.System, inject string, at int, sigs <-chan os.Signal) {
	src, err := os.ReadFile(inject)
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(inject), filepath.Ext(inject))
	prog, err := compile.Compile(name, string(src))
	if err != nil {
		fatal(err)
	}
	sys.Register(prog)
	if err := sys.Inject(at, name, nil); err != nil {
		fatal(err)
	}
	done := make(chan struct{})
	go func() { sys.Wait(); close(done) }()
	select {
	case <-done:
	case <-sigs:
		fmt.Fprintln(os.Stderr, "msgrd: draining — waiting for the computation to quiesce (signal again to force exit)")
		select {
		case <-done:
		case <-sigs:
			os.Exit(130)
		}
	}
	for _, err := range sys.Errors() {
		fmt.Fprintf(os.Stderr, "msgrd: %v\n", err)
	}
	if len(sys.Errors()) > 0 {
		os.Exit(1)
	}
	fmt.Println("computation quiescent")
}

// runService runs the admission front end until a signal drains it.
func runService(sys *messengers.System, httpAddr, tenantsPath string, sigs <-chan os.Signal) {
	tenants, err := loadTenants(tenantsPath)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(sys.System, serve.Config{
		Tenants: tenants,
		Metrics: sys.Metrics(),
	})
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Addr: httpAddr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.ListenAndServe() }()
	fmt.Printf("serving tenants on http://%s (POST /v1/submit, GET /v1/stats)\n", httpAddr)

	select {
	case err := <-httpErr:
		fatal(err)
	case <-sigs:
	}
	fmt.Fprintln(os.Stderr, "msgrd: draining — rejecting new submissions, waiting for live sessions (signal again to force exit)")
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = hs.Shutdown(ctx)
	cancel()
	idle := make(chan struct{})
	go func() { srv.WaitIdle(); close(idle) }()
	select {
	case <-idle:
	case <-sigs:
		os.Exit(130)
	}
	for _, ts := range srv.Stats() {
		fmt.Printf("tenant %-12s admitted=%d completed=%d evicted=%d rejected=%d steps=%d hops=%d violations=%d\n",
			ts.ID, ts.Admitted, ts.Completed, ts.Evicted, ts.Rejected, ts.Steps, ts.Hops, ts.Violations)
	}
	fmt.Println("drained")
}

func loadTenants(path string) ([]serve.TenantConfig, error) {
	if path == "" {
		return []serve.TenantConfig{{ID: "default"}}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tenants []serve.TenantConfig
	if err := json.Unmarshal(data, &tenants); err != nil {
		return nil, fmt.Errorf("msgrd: parsing %s: %w", path, err)
	}
	return tenants, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msgrd: %v\n", err)
	os.Exit(1)
}
