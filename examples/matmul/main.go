// Matmul: the paper's §3.2 block matrix multiplication as a MESSENGERS
// program (Figure 11), coordinated purely by global virtual time.
//
// The logical network is Figure 10: an m x m grid of nodes whose rows are
// fully connected ("row" links) and whose columns are directed rings
// ("column" links, pointing up). Two kinds of Messengers are injected into
// every node: distribute_A replicates its node's A block along the row at
// each full virtual-time tick, rotate_B carries its B block up the column
// and multiplies at every half tick. No sends, no receives, no barriers —
// the only synchronization is the global virtual clock.
//
//	go run ./examples/matmul [-m 3] [-s 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"messengers"
)

const distributeA = `
	sched_abs((j - i + m) % m);
	node.curr_A = copy_block(node.resid_A);
	msgr.blk = copy_block(node.resid_A);
	hop(ll = "row");
	node.curr_A = msgr.blk;
`

const rotateB = `
	msgr.blk = copy_block(node.resid_B);
	for (k = 0; k < m; k++) {
		sched_abs(k + 0.5);
		node.C = block_multiply(node.curr_A, msgr.blk, node.C);
		hop(ll = "column", ldir = +);
	}
`

func main() {
	m := flag.Int("m", 3, "processor grid dimension (m x m daemons)")
	s := flag.Int("s", 64, "block size (matrices are m*s square)")
	flag.Parse()
	n := *m * *s

	sys, err := messengers.NewRealSystem(messengers.Config{Daemons: *m * *m})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Figure 10's logical network via the net_builder service.
	spec := messengers.NetSpec{}
	name := func(i, j int) string { return fmt.Sprintf("n%d_%d", i, j) }
	for i := 0; i < *m; i++ {
		for j := 0; j < *m; j++ {
			spec.Nodes = append(spec.Nodes, messengers.NetNode{Name: name(i, j), Daemon: i**m + j})
		}
	}
	for i := 0; i < *m; i++ {
		for j := 0; j < *m; j++ {
			for j2 := j + 1; j2 < *m; j2++ {
				spec.Links = append(spec.Links, messengers.NetLink{A: name(i, j), B: name(i, j2), Name: "row"})
			}
			if *m > 1 {
				up := (i - 1 + *m) % *m
				spec.Links = append(spec.Links, messengers.NetLink{A: name(i, j), B: name(up, j), Name: "column", Dir: 1})
			}
		}
	}
	if err := sys.BuildNetwork(spec); err != nil {
		log.Fatal(err)
	}

	// Native block operations.
	sys.RegisterNative("copy_block", func(_ *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		return args[0].Clone(), nil
	})
	sys.RegisterNative("block_multiply", func(_ *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		a, b, c := args[0].AsMat(), args[1].AsMat(), args[2].AsMat()
		if a == nil || b == nil || c == nil {
			return messengers.NilValue(), fmt.Errorf("block_multiply needs three matrices")
		}
		addMul(c, a, b)
		return messengers.MatrixValue(c), nil
	})

	sys.RegisterNative("store", func(ctx *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		ctx.SetNodeVar(args[0].AsStr(), args[1])
		return messengers.NilValue(), nil
	})
	if err := sys.CompileAndRegister("setup", `store(key, payload);`); err != nil {
		log.Fatal(err)
	}

	// Distribute the input blocks into node variables ("the matrices are
	// already distributed over the network").
	r := rand.New(rand.NewSource(1))
	a, b := randomMat(n, r), randomMat(n, r)
	for i := 0; i < *m; i++ {
		for j := 0; j < *m; j++ {
			d := i**m + j
			writeNodeMat(sys, d, name(i, j), "resid_A", getBlock(a, n, i, j, *s))
			writeNodeMat(sys, d, name(i, j), "resid_B", getBlock(b, n, i, j, *s))
			writeNodeMat(sys, d, name(i, j), "C", messengers.NewMat(*s, *s))
		}
	}

	// One distribute_A and one rotate_B Messenger per node.
	if err := sys.CompileAndRegister("distribute_A", distributeA); err != nil {
		log.Fatal(err)
	}
	if err := sys.CompileAndRegister("rotate_B", rotateB); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *m; i++ {
		for j := 0; j < *m; j++ {
			vars := map[string]messengers.Value{
				"i": messengers.IntValue(int64(i)),
				"j": messengers.IntValue(int64(j)),
				"m": messengers.IntValue(int64(*m)),
			}
			d := i**m + j
			if err := sys.InjectAt(d, "distribute_A", name(i, j), vars); err != nil {
				log.Fatal(err)
			}
			if err := sys.InjectAt(d, "rotate_B", name(i, j), vars); err != nil {
				log.Fatal(err)
			}
		}
	}
	sys.Wait()
	for _, err := range sys.Errors() {
		log.Fatalf("messenger failed: %v", err)
	}

	// Gather the distributed C and validate against a local multiply.
	c := messengers.NewMat(n, n)
	for i := 0; i < *m; i++ {
		for j := 0; j < *m; j++ {
			vars, ok := sys.ReadNodeVars(i**m+j, name(i, j))
			if !ok {
				log.Fatalf("node %s vanished", name(i, j))
			}
			setBlock(c, vars["C"].AsMat(), i, j, *s)
		}
	}
	ref := messengers.NewMat(n, n)
	addMul(ref, a, b)
	var maxDiff float64
	for i := range ref.Data {
		if d := math.Abs(ref.Data[i] - c.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("distributed %dx%d multiply on %d daemons: max error %.2e\n", n, n, *m**m, maxDiff)
	if maxDiff > 1e-9 {
		log.Fatal("result does not match the sequential multiply")
	}
}

// writeNodeMat installs a block into a node variable with a tiny setup
// Messenger (a native store keeps one script for all keys and nodes).
func writeNodeMat(sys *messengers.System, daemon int, node, key string, m *messengers.Mat) {
	err := sys.InjectAt(daemon, "setup", node, map[string]messengers.Value{
		"key":     messengers.StrValue(key),
		"payload": messengers.MatrixValue(m),
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Wait() // setup Messengers finish before the computation starts
}

func randomMat(n int, r *rand.Rand) *messengers.Mat {
	m := messengers.NewMat(n, n)
	for i := range m.Data {
		m.Data[i] = r.Float64()*2 - 1
	}
	return m
}

func getBlock(a *messengers.Mat, n, bi, bj, s int) *messengers.Mat {
	out := messengers.NewMat(s, s)
	for r := 0; r < s; r++ {
		copy(out.Data[r*s:(r+1)*s], a.Data[(bi*s+r)*n+bj*s:][:s])
	}
	return out
}

func setBlock(c *messengers.Mat, blk *messengers.Mat, bi, bj, s int) {
	for r := 0; r < s; r++ {
		copy(c.Data[(bi*s+r)*c.Cols+bj*s:][:s], blk.Data[r*s:(r+1)*s])
	}
}

func addMul(c, a, b *messengers.Mat) {
	n, m, p := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		ci := c.Data[i*p : (i+1)*p]
		for k := 0; k < m; k++ {
			aik := a.Data[i*m+k]
			bk := b.Data[k*p : (k+1)*p]
			for j := range bk {
				ci[j] += aik * bk[j]
			}
		}
	}
}
