package bench

import (
	"strconv"
	"strings"
	"testing"

	"messengers/internal/lan"
)

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return f
}

func TestA1CopyAblation(t *testing.T) {
	cm := lan.DefaultCostModel()
	tb, err := RunA1CopyAblation(cm, 320, 8, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 { // one mandel row + two matmul rows
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if slow := cellFloat(t, row[3]); slow <= 1.0 {
			t.Errorf("%s: PVM-style copies should slow MESSENGERS down, got %.3f", row[0], slow)
		}
	}
	// The effect must be much larger on the data-movement-heavy workload.
	if mandel, matmul := cellFloat(t, tb.Rows[0][3]), cellFloat(t, tb.Rows[2][3]); matmul < mandel {
		t.Errorf("copy cost should bite harder on matmul: %.2f vs %.2f", matmul, mandel)
	}
}

func TestA2GVTStrategies(t *testing.T) {
	cm := lan.DefaultCostModel()
	tb, err := RunA2GVTStrategies(cm, 4, 8, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Conservative pays rounds but never rolls back; optimistic may roll
	// back but commits the same events.
	if tb.Rows[0][3] != "0" {
		t.Errorf("conservative rollbacks = %s", tb.Rows[0][3])
	}
	csEvents, twEvents := tb.Rows[0][2], tb.Rows[1][2]
	twRolled := cellFloat(t, tb.Rows[1][4])
	if cellFloat(t, twEvents)-twRolled != cellFloat(t, csEvents) {
		t.Errorf("committed events differ: %s vs %s-%v", csEvents, twEvents, twRolled)
	}
}

func TestA3InterpreterOverhead(t *testing.T) {
	cm := lan.DefaultCostModel()
	tb, err := RunA3InterpreterOverhead(cm, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		slow := cellFloat(t, row[3])
		if slow < 2 {
			t.Errorf("s=%s: interpreted multiply only %.1fx slower; expected a large gap", row[0], slow)
		}
	}
	// The relative overhead is roughly flat in s (both scale as s^3).
	first := cellFloat(t, tb.Rows[0][3])
	last := cellFloat(t, tb.Rows[len(tb.Rows)-1][3])
	if last > first*3 || first > last*3 {
		t.Errorf("overhead ratio wildly unstable: %.1f vs %.1f", first, last)
	}
}

func TestA4CodeCarrying(t *testing.T) {
	cm := lan.DefaultCostModel()
	tb, err := RunA4CodeCarrying(cm, 320, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	baseBytes := cellFloat(t, tb.Rows[0][2])
	carriedBytes := cellFloat(t, tb.Rows[1][2])
	if carriedBytes <= baseBytes {
		t.Errorf("carrying code must increase traffic: %v vs %v", carriedBytes, baseBytes)
	}
	if slow := cellFloat(t, tb.Rows[1][3]); slow <= 1.0 {
		t.Errorf("carrying code should cost time, slowdown %.3f", slow)
	}
}

func TestE1TrafficTable(t *testing.T) {
	cm := lan.DefaultCostModel()
	tb, err := RunTrafficTable(cm, 320, 8, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	msgrMsgs := cellFloat(t, tb.Rows[0][3])
	pvmMsgs := cellFloat(t, tb.Rows[1][3])
	if pvmMsgs <= msgrMsgs {
		t.Errorf("PVM fragments+acks (%v) should far exceed MESSENGERS messages (%v)", pvmMsgs, msgrMsgs)
	}
	msgrCPU := cellFloat(t, tb.Rows[0][6])
	pvmCPU := cellFloat(t, tb.Rows[1][6])
	if pvmCPU <= msgrCPU {
		t.Errorf("PVM manager funnel (%v) should occupy more central CPU than the MESSENGERS daemon (%v)", pvmCPU, msgrCPU)
	}
}

func TestT2AndT3(t *testing.T) {
	if testing.Short() {
		t.Skip("T2 sweep skipped in -short")
	}
	cm := lan.DefaultCostModel()
	t2, err := RunT2(cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 2 {
		t.Fatalf("T2 rows = %d", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if s := cellFloat(t, row[1]); s < 2 {
			t.Errorf("%s: speedup %v implausibly low", row[0], s)
		}
	}

	t3 := RunT3()
	if len(t3.Rows) != 4 {
		t.Fatalf("T3 rows = %d", len(t3.Rows))
	}
	// The paper's style claim: the MESSENGERS program is shorter in both
	// applications.
	mandelM, mandelP := cellFloat(t, t3.Rows[0][2]), cellFloat(t, t3.Rows[1][2])
	matmulM, matmulP := cellFloat(t, t3.Rows[2][2]), cellFloat(t, t3.Rows[3][2])
	if mandelM >= mandelP {
		t.Errorf("Mandelbrot: MESSENGERS %v lines vs PVM %v; should be shorter", mandelM, mandelP)
	}
	if matmulM >= matmulP {
		t.Errorf("matmul: MESSENGERS %v lines vs PVM %v; should be shorter", matmulM, matmulP)
	}
}
