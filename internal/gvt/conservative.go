package gvt

import (
	"fmt"

	"messengers/internal/obs"
	"messengers/internal/sim"
)

// csLP is one logical process under conservative execution.
type csLP struct {
	id, host int
	state    State
	pending  tsHeap
}

// conservative executes events only when a global synchronization round has
// certified their timestamp as the minimum anywhere (no state saving, no
// rollback — but every epoch pays a full round of control messages, the
// overhead the paper attributes to the conservative approach).
type conservative struct {
	cfg   Config
	lps   []*csLP
	hosts [][]*csLP
	seq   uint64
	gvt   float64

	sent, recv int64 // statistics
	// unfinished mirrors the Time Warp executor: virtual-time lower
	// bounds for events being executed or in flight, so rounds never
	// miscompute the next epoch or conclude quiescence early.
	unfinished map[uint64]float64
	stats      Stats
}

func (cs *conservative) unfinishedMin() float64 {
	min := inf
	//lint:maporder min over values is order-independent
	for _, at := range cs.unfinished {
		if at < min {
			min = at
		}
	}
	return min
}

// RunConservative executes the application conservatively and returns run
// statistics and each LP's final state.
func RunConservative(cfg Config, inject []Event) (Stats, []State, error) {
	cs := &conservative{cfg: cfg, gvt: -1, unfinished: map[uint64]float64{}}
	if cfg.NumLPs < 1 || cfg.Handler == nil || cfg.Cluster == nil {
		return Stats{}, nil, fmt.Errorf("gvt: config needs a cluster, LPs, and a handler")
	}
	cs.hosts = make([][]*csLP, len(cfg.Cluster.Hosts))
	cs.lps = make([]*csLP, cfg.NumLPs)
	for i := range cs.lps {
		h := cfg.place(i)
		if h < 0 || h >= len(cs.hosts) {
			return Stats{}, nil, fmt.Errorf("gvt: LP %d placed on unknown host %d", i, h)
		}
		lp := &csLP{id: i, host: h, pending: newTSHeap()}
		if cfg.InitState != nil {
			lp.state = cfg.InitState(i)
		}
		cs.lps[i] = lp
		cs.hosts[h] = append(cs.hosts[h], lp)
	}
	for _, ev := range inject {
		if ev.To < 0 || ev.To >= len(cs.lps) {
			return Stats{}, nil, fmt.Errorf("gvt: injected event for unknown LP %d", ev.To)
		}
		cs.seq++
		cs.lps[ev.To].pending.Push(&tsEvent{Event: ev, id: cs.seq})
	}
	cs.scheduleRound(0)
	end := cfg.Cluster.Kernel.Run()
	cs.stats.Elapsed = end
	cs.stats.FinalGVT = cs.gvt
	states := make([]State, len(cs.lps))
	for i, lp := range cs.lps {
		states[i] = lp.state
		if lp.pending.Len() > 0 {
			return cs.stats, states, fmt.Errorf("gvt: LP %d finished with %d pending events", lp.id, lp.pending.Len())
		}
	}
	return cs.stats, states, nil
}

func (cs *conservative) scheduleRound(after sim.Time) {
	cs.cfg.Cluster.Kernel.After(after, func() { cs.round() })
}

// round queries every host for its minimum pending timestamp; when the
// transient counters balance, the global minimum becomes the next epoch and
// every host executes exactly the events at that timestamp.
func (cs *conservative) round() {
	cs.stats.Rounds++
	if cs.cfg.Trace != nil {
		cs.cfg.Trace.Instant(0, "gvt", "gvt.round", obs.I("round", cs.stats.Rounds))
	}
	cm := cs.cfg.Cluster.Model
	n := len(cs.hosts)
	replies := 0
	min := inf
	for hid := range cs.hosts {
		hid := hid
		deliverReply := func() {
			replies++
			for _, lp := range cs.hosts[hid] {
				if m := lp.pending.minTS(); m < min {
					min = m
				}
			}
			if replies == n {
				cs.concludeRound(min)
			}
		}
		cs.stats.ControlMsgs += 2
		if hid == 0 {
			cs.cfg.Cluster.Hosts[0].ExecScaled(cm.CallFixed, deliverReply)
			continue
		}
		cs.cfg.Cluster.Send(0, hid, ctlMsgSize, cm.CallFixed/2, cm.CallFixed/2, func() {
			cs.cfg.Cluster.Send(hid, 0, ctlMsgSize, cm.CallFixed/2, cm.CallFixed/2, deliverReply)
		})
	}
}

func (cs *conservative) concludeRound(min float64) {
	cm := cs.cfg.Cluster.Model
	if u := cs.unfinishedMin(); u < min {
		// Events are still executing or in flight below the pending
		// minimum; wait for them to land rather than advance unsafely.
		cs.scheduleRound(cs.cfg.syncInterval() / 4)
		return
	}
	if min == inf {
		return // quiescent: stop
	}
	cs.gvt = min
	if cs.cfg.Trace != nil {
		cs.cfg.Trace.Instant(0, "gvt", "gvt.epoch", obs.F("gvt", min))
	}
	// Broadcast the epoch; each host executes its events at exactly this
	// timestamp.
	for hid := range cs.hosts {
		hid := hid
		run := func() { cs.executeEpoch(hid, cs.gvt) }
		cs.stats.ControlMsgs++
		if hid == 0 {
			cs.cfg.Cluster.Hosts[0].ExecScaled(cm.CallFixed, run)
			continue
		}
		cs.cfg.Cluster.Send(0, hid, ctlMsgSize, cm.CallFixed/2, cm.CallFixed/2, run)
	}
	cs.scheduleRound(cs.cfg.syncInterval())
}

// executeEpoch runs every event with timestamp == epoch on host hid,
// serialized on its CPU. Sends require strictly increasing timestamps, so
// no new work for this epoch can appear afterwards.
func (cs *conservative) executeEpoch(hid int, epoch float64) {
	for _, lp := range cs.hosts[hid] {
		lp := lp
		for lp.pending.Len() > 0 && lp.pending.minTS() <= epoch {
			ev := lp.pending.Pop()
			cost := cs.cfg.EventCPU
			var sends []*tsEvent
			ctx := &Ctx{
				lp: lp.id, now: ev.At, state: lp.state, charge: &cost,
				send: func(out Event) {
					cs.seq++
					sends = append(sends, &tsEvent{Event: out, id: cs.seq})
				},
			}
			cs.cfg.Handler(ctx, ev.Event)
			cs.stats.Events++
			cs.unfinished[ev.id] = ev.At
			cs.cfg.Cluster.Hosts[hid].ExecScaled(cost, func() {
				delete(cs.unfinished, ev.id)
				for _, out := range sends {
					cs.transmit(hid, out)
				}
			})
		}
	}
}

func (cs *conservative) transmit(fromHost int, ev *tsEvent) {
	toHost := cs.lps[ev.To].host
	cm := cs.cfg.Cluster.Model
	cs.unfinished[ev.id] = ev.At
	deliver := func() {
		delete(cs.unfinished, ev.id)
		cs.lps[ev.To].pending.Push(ev)
	}
	if toHost == fromHost {
		cs.cfg.Cluster.Hosts[toHost].ExecScaled(cm.CallFixed, deliver)
		return
	}
	cs.sent++
	cs.cfg.Cluster.Send(fromHost, toHost, ev.Size+48, cm.CallFixed, cm.CallFixed, func() {
		cs.recv++
		deliver()
	})
}
