package bytecode

import "fmt"

// maxNavArms bounds the destination arms of one navigational statement.
// The verifier enforces it, which in turn bounds the operand stack a nav
// statement may require (6 values per arm for create).
const maxNavArms = 1 << 10

// maxStackDepth bounds the operand stack depth the verifier will accept at
// any program point. vm/snapshot.go serializes the whole operand stack on
// every hop, so a static bound here is a static bound on snapshot size
// growth per frame. Nav statements need at most 6*maxNavArms slots; the
// rest of the headroom is for expressions.
const maxStackDepth = 1 << 15

// maxLocals bounds a function's declared local count. The VM allocates a
// frame's locals eagerly on entry (and New allocates the main frame before
// a single instruction runs), so an unchecked header field here would let
// a decoded program demand gigabytes before the step budget can intervene.
const maxLocals = 1 << 12

// unreachable marks a PC never visited by the abstract interpretation.
const unreachable = -1

// funcMeta is the verifier's result for one function: the operand stack
// depth (relative to function entry) on entry to every PC, and the maximum
// depth reached. It is derived, never serialized — a decoded program is
// re-verified, so meta cannot be forged over the wire.
type funcMeta struct {
	depth []int32
	max   int32
	// kinds holds the kind-flow analysis result (see kinds.go): the
	// abstract kind state on entry to every PC. nil when the analysis
	// degraded under its footprint cap — consumers then read every
	// reachable slot as ⊤. reached marks PCs the kind fixpoint visited
	// (equivalent to depth[pc] != unreachable; kept as bools for the
	// rejection and bound passes).
	kinds   []kstate
	reached []bool
}

// Verified reports whether this program has passed Validate since it was
// last constructed. Compiled programs (compile.CompileScript) and decoded
// programs (Decode) are always verified; the VM relies on this to skip
// dynamic PC bounds checks, and Restore uses the stack-depth metadata to
// prove a snapshot is consistent before resuming it.
func (p *Program) Verified() bool { return p.verified }

// StackDepth returns the verifier-inferred operand stack depth (relative
// to function entry) on entry to Funcs[fn].Code[pc], or -1 when the
// program is unverified, the location is out of range, or the instruction
// is unreachable.
func (p *Program) StackDepth(fn, pc int) int {
	if !p.verified || fn < 0 || fn >= len(p.meta) {
		return unreachable
	}
	d := p.meta[fn].depth
	if pc < 0 || pc >= len(d) {
		return unreachable
	}
	return int(d[pc])
}

// MaxStack returns the maximum operand stack depth function fn can add
// beyond its entry depth, or -1 when unverified or out of range.
func (p *Program) MaxStack(fn int) int {
	if !p.verified || fn < 0 || fn >= len(p.meta) {
		return -1
	}
	return int(p.meta[fn].max)
}

// Validate checks every instruction's operands against the program's
// pools and code bounds, then runs an abstract interpretation over each
// function's control-flow graph proving the stack discipline the VM and
// the snapshot format rely on:
//
//   - every reachable PC has exactly one stack depth across all paths
//     (no unbalanced branch merges),
//   - no instruction pops below the function's entry depth (no underflow,
//     including OpCallNative argc against the current depth),
//   - the depth never exceeds maxStackDepth (snapshots stay bounded),
//   - control cannot fall off the end of the code,
//   - OpHop/OpDelete/OpCreate occur only at statement boundaries: after
//     popping their arms the residual stack is exactly the entry depth,
//     so a snapshot taken at any hop resumes with a statically known
//     operand stack and is restorable by construction.
//
// Programs arriving over the wire (registry broadcasts, carried code) are
// validated before execution so a corrupt or hostile program yields an
// error instead of a daemon crash. On success the program is marked
// Verified and carries per-PC stack-depth metadata.
func (p *Program) Validate() error {
	p.verified = false
	p.meta = nil
	p.resetLowered()
	if len(p.Funcs) == 0 {
		return fmt.Errorf("bytecode: program %q has no main body", p.Name)
	}
	for fi := range p.Funcs {
		if err := p.validateOperands(fi); err != nil {
			return err
		}
	}
	meta := make([]funcMeta, len(p.Funcs))
	for fi := range p.Funcs {
		m, err := p.analyzeStack(fi)
		if err != nil {
			return err
		}
		meta[fi] = m
	}
	p.meta = meta
	// With stack depths proven, run the kind-flow analysis (kinds.go):
	// per-PC value kinds for every stack slot, local, and Messenger
	// variable, and rejection of programs that provably kind-fault.
	p.collectMVars()
	for fi := range p.Funcs {
		if err := p.analyzeKinds(fi); err != nil {
			p.meta = nil
			return err
		}
	}
	p.verified = true
	return nil
}

// validateOperands is the structural pass: per-instruction operand bounds
// against the constant/name/function pools and the code length.
func (p *Program) validateOperands(fi int) error {
	f := &p.Funcs[fi]
	if f.NumParams < 0 || f.NumLocals < 0 || f.NumParams > f.NumLocals {
		return fmt.Errorf("bytecode: %s: params %d / locals %d invalid", f.Name, f.NumParams, f.NumLocals)
	}
	if f.NumLocals > maxLocals {
		return fmt.Errorf("bytecode: %s: %d locals exceeds the limit of %d", f.Name, f.NumLocals, maxLocals)
	}
	if len(f.Code) == 0 {
		return fmt.Errorf("bytecode: %s: empty code", f.Name)
	}
	for pc, ins := range f.Code {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("bytecode: %s@%d (%s): %s", f.Name, pc, ins.Op, fmt.Sprintf(format, args...))
		}
		switch ins.Op {
		case OpConst:
			if ins.A < 0 || int(ins.A) >= len(p.Consts) {
				return fail("constant index %d of %d", ins.A, len(p.Consts))
			}
		case OpLoadM, OpStoreM, OpLoadN, OpStoreN, OpLoadNet, OpCallNative:
			if ins.A < 0 || int(ins.A) >= len(p.Names) {
				return fail("name index %d of %d", ins.A, len(p.Names))
			}
			if ins.Op == OpCallNative && ins.B < 0 {
				return fail("negative argc %d", ins.B)
			}
		case OpLoadL, OpStoreL:
			if ins.A < 0 || int(ins.A) >= f.NumLocals {
				return fail("local slot %d of %d", ins.A, f.NumLocals)
			}
		case OpJmp, OpJz:
			// A jump to len(Code) would make the next dispatch read past
			// the code slice; the verifier demands an in-range target so
			// the VM can drop its per-step PC bounds check.
			if ins.A < 0 || int(ins.A) >= len(f.Code) {
				return fail("jump target %d of %d", ins.A, len(f.Code))
			}
		case OpArr:
			if ins.A < 0 {
				return fail("negative element count %d", ins.A)
			}
		case OpCallFunc:
			if ins.A <= 0 || int(ins.A) >= len(p.Funcs) {
				return fail("function index %d of %d", ins.A, len(p.Funcs))
			}
			callee := &p.Funcs[ins.A]
			if int(ins.B) != callee.NumParams {
				return fail("argc %d for %s taking %d", ins.B, callee.Name, callee.NumParams)
			}
		case OpHop, OpDelete, OpCreate:
			if ins.A < 1 || ins.A > maxNavArms {
				return fail("arm count %d", ins.A)
			}
		case OpNop, OpPop, OpDup, OpDup2, OpAdd, OpSub, OpMul, OpDiv,
			OpMod, OpNeg, OpNot, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
			OpIndex, OpSetIndex, OpRet, OpSchedAbs, OpSchedDlt, OpEnd:
			// No operand constraints.
		default:
			return fail("unknown opcode")
		}
	}
	return nil
}

// analyzeStack runs the stack-effect abstract interpretation over one
// function: a worklist fixpoint over the CFG where the abstract state at a
// PC is the exact operand stack depth relative to function entry.
func (p *Program) analyzeStack(fi int) (funcMeta, error) {
	f := &p.Funcs[fi]
	depth := make([]int32, len(f.Code))
	for i := range depth {
		depth[i] = unreachable
	}
	fail := func(pc int, format string, args ...any) error {
		return fmt.Errorf("bytecode: %s@%d (%s): %s", f.Name, pc, f.Code[pc].Op, fmt.Sprintf(format, args...))
	}
	var maxd int32
	work := make([]int, 0, 8)
	depth[0] = 0
	work = append(work, 0)
	// flow merges depth d into successor pc; two paths reaching the same
	// PC must agree (otherwise the depth at a resumable point would depend
	// on the path taken, and a snapshot there would not be checkable).
	flow := func(from, pc int, d int32) error {
		if pc >= len(f.Code) {
			return fail(from, "control falls off end of code")
		}
		if depth[pc] == unreachable {
			depth[pc] = d
			work = append(work, pc)
			return nil
		}
		if depth[pc] != d {
			return fail(from, "inconsistent stack depth at merge into @%d: %d vs %d (unbalanced branch)", pc, depth[pc], d)
		}
		return nil
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		d := depth[pc]
		ins := f.Code[pc]

		var pops, pushes int32
		terminal := false
		nav := false
		switch ins.Op {
		case OpNop, OpJmp:
		case OpConst, OpLoadM, OpLoadN, OpLoadNet, OpLoadL:
			pushes = 1
		case OpStoreM, OpStoreN, OpStoreL, OpPop, OpJz, OpSchedAbs, OpSchedDlt:
			pops = 1
		case OpDup:
			pops, pushes = 1, 2
		case OpDup2:
			pops, pushes = 2, 4
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpIndex:
			pops, pushes = 2, 1
		case OpNeg, OpNot:
			pops, pushes = 1, 1
		case OpSetIndex:
			pops = 3
			if ins.B != 0 {
				pushes = 1
			}
		case OpArr:
			pops, pushes = ins.A, 1
		case OpCallFunc:
			// The callee's frame is separate but the operand stack is
			// shared: the call consumes the arguments now and the matching
			// OpRet pushes exactly one return value, so from this
			// function's static viewpoint the call is (argc -> 1).
			pops, pushes = ins.B, 1
		case OpCallNative:
			pops, pushes = ins.B, 1
			if ins.B > d {
				return funcMeta{}, fail(pc, "argc %d exceeds stack depth %d", ins.B, d)
			}
		case OpRet:
			pops = 1
			terminal = true
		case OpEnd:
			terminal = true
		case OpHop, OpDelete:
			pops = ins.A * 3
			nav = true
		case OpCreate:
			pops = ins.A * 6
			nav = true
		}

		if d < pops {
			return funcMeta{}, fail(pc, "stack underflow: pops %d with depth %d", pops, d)
		}
		nd := d - pops + pushes
		if nd > maxStackDepth {
			return funcMeta{}, fail(pc, "stack depth %d exceeds maximum %d", nd, maxStackDepth)
		}
		if nd > maxd {
			maxd = nd
		}
		if nav && nd != 0 {
			// A nav statement must sit at a statement boundary: after the
			// arms are popped nothing of this frame's expression state may
			// remain, so the replicated Messengers resume with a fully
			// known operand stack.
			return funcMeta{}, fail(pc, "%d operands left beneath its arms (not at a statement boundary)", nd)
		}

		switch {
		case terminal:
		case ins.Op == OpJmp:
			if err := flow(pc, int(ins.A), nd); err != nil {
				return funcMeta{}, err
			}
		case ins.Op == OpJz:
			if err := flow(pc, int(ins.A), nd); err != nil {
				return funcMeta{}, err
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return funcMeta{}, err
			}
		default:
			// Nav opcodes fall through: the surviving replicas resume at
			// pc+1 (the VM increments the PC before pausing).
			if err := flow(pc, pc+1, nd); err != nil {
				return funcMeta{}, err
			}
		}
	}
	return funcMeta{depth: depth, max: maxd}, nil
}
