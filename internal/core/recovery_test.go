package core

import (
	"testing"

	"messengers/internal/faults"
	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// faultSystem builds a simulated full-mesh system with recovery enabled and
// the plan's faults injected (hook plus scheduled crashes with
// deterministic failure notices).
func faultSystem(t *testing.T, n int, plan *faults.Plan, opts ...Option) (*sim.Kernel, *System, *obs.Metrics) {
	t.Helper()
	if err := plan.Validate(n); err != nil {
		t.Fatal(err)
	}
	k := sim.New()
	cluster := lan.NewCluster(k, lan.DefaultCostModel(), n, lan.SPARC110)
	metrics := obs.NewMetrics()
	cluster.Observe(nil, metrics)
	opts = append(opts, WithRecovery(RecoveryConfig{}), WithMetrics(metrics))
	sys := NewSystem(NewSimEngine(cluster), FullMesh(n), distGVTEnv(opts)...)
	inj := faults.NewInjector(plan, metrics, nil)
	cluster.SetFaultHook(inj.LanHook(k))
	faults.Schedule(plan, sys, func(at int64, fn func()) { k.At(sim.Time(at), fn) }, true)
	return k, sys, metrics
}

// TestRecoveryRetransmitUnderLoss drops 30% of all traffic; hop-level
// acknowledgement and retransmission must still move the Messenger across
// the wire and let the system quiesce.
func TestRecoveryRetransmitUnderLoss(t *testing.T) {
	plan := &faults.Plan{Seed: 3, Drop: 0.3}
	k, sys, metrics := faultSystem(t, 2, plan)
	// create moves the Messenger to the new node on daemon 1; each hop
	// re-crosses the inter-daemon link.
	register(t, sys, "crosser", `
		create(ALL);
		hop(ll = $last);
		node.mark = 1;
		hop(ll = $last);
		hop(ll = $last);
		node.mark = node.mark + 1;
	`)
	if err := sys.Inject(0, "crosser", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if got := sys.Daemon(0).Store().Init().Vars["mark"].AsInt(); got != 2 {
		t.Errorf("init mark = %d, want 2", got)
	}
	if metrics.CounterValue("faults.injected.drop") == 0 {
		t.Error("plan injected no drops; test is vacuous")
	}
	if metrics.CounterValue("msgr.retx") == 0 {
		t.Error("no retransmissions despite drops")
	}
}

// TestRecoveryDuplicateSuppression duplicates half of all messages; dedup
// by (messenger, hop) must keep each hop's effect exactly-once.
func TestRecoveryDuplicateSuppression(t *testing.T) {
	plan := &faults.Plan{Seed: 5, Dup: 0.5}
	k, sys, metrics := faultSystem(t, 2, plan)
	register(t, sys, "once", `
		create(ALL);
		hop(ll = $last);
		node.count = node.count + 1;
		hop(ll = $last);
		node.mark = 1;
	`)
	if err := sys.Inject(0, "once", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if got := sys.Daemon(0).Store().Init().Vars["count"].AsInt(); got != 1 {
		t.Errorf("init count = %d, want exactly 1", got)
	}
	if metrics.CounterValue("faults.injected.dup") == 0 {
		t.Error("plan injected no duplicates; test is vacuous")
	}
	if metrics.CounterValue("msgr.dedup") == 0 {
		t.Error("no duplicate was suppressed")
	}
}

// TestRecoveryCrashRespawn crashes the daemon a Messenger is resident on
// mid-computation. The sender retains the delivered hop until GVT passes
// it, so the survivor respawns the Messenger from its last transmitted
// snapshot onto the healed logical network and the computation completes.
func TestRecoveryCrashRespawn(t *testing.T) {
	plan := &faults.Plan{
		Seed: 1,
		Crashes: []faults.Crash{{
			Daemon:       1,
			At:           int64(50 * sim.Millisecond),
			RestartAfter: int64(20 * sim.Millisecond),
		}},
	}
	k, sys, metrics := faultSystem(t, 2, plan)
	// spin keeps the Messenger busy on daemon 1 well past the crash time.
	sys.RegisterNative("spin", func(ctx *NativeCtx, _ []value.Value) (value.Value, error) {
		ctx.Charge(200 * sim.Millisecond)
		return value.Nil(), nil
	})
	// create moves the Messenger onto the new node (on the daemon that
	// will crash); spin keeps it resident there well past the crash time.
	register(t, sys, "survivor", `
		create(ALL);
		spin();
		hop(ll = $last);
		node.done = node.done + 1;
	`)
	if err := sys.Inject(0, "survivor", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if got := sys.Daemon(0).Store().Init().Vars["done"].AsInt(); got != 1 {
		t.Errorf("done = %d, want 1", got)
	}
	if metrics.CounterValue("daemon.deaths") != 1 {
		t.Errorf("deaths = %d, want 1", metrics.CounterValue("daemon.deaths"))
	}
	if metrics.CounterValue("msgr.respawns") == 0 {
		t.Error("crash killed a resident Messenger but nothing was respawned")
	}
	if metrics.CounterValue("logical.adoptions") == 0 {
		t.Error("daemon 0 still linked to the dead daemon's node; no adoption happened")
	}
}

// TestRecoveryCrashWithoutRestart verifies a permanently dead daemon does
// not wedge the survivors: orphaned work is adopted and finishes locally.
func TestRecoveryCrashWithoutRestart(t *testing.T) {
	plan := &faults.Plan{
		Seed:    2,
		Crashes: []faults.Crash{{Daemon: 1, At: int64(50 * sim.Millisecond)}},
	}
	k, sys, _ := faultSystem(t, 3, plan)
	sys.RegisterNative("spin", func(ctx *NativeCtx, _ []value.Value) (value.Value, error) {
		ctx.Charge(200 * sim.Millisecond)
		return value.Nil(), nil
	})
	// create moves the Messenger onto the new node (on the daemon that
	// will crash); spin keeps it resident there well past the crash time.
	register(t, sys, "survivor", `
		create(ALL);
		spin();
		hop(ll = $last);
		node.done = node.done + 1;
	`)
	if err := sys.Inject(0, "survivor", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	// create(ALL) on a 3-mesh makes two replicas; both must finish even
	// though one was resident on the dead daemon.
	if got := sys.Daemon(0).Store().Init().Vars["done"].AsInt(); got != 2 {
		t.Errorf("done = %d, want 2", got)
	}
}

// TestRecoveryGVTUnderLoss runs virtual-time coordination (sched_abs) with
// heavy loss: GVT reports, advances, and wake-ups are all droppable, and
// the re-notify/watchdog machinery must still advance GVT to completion in
// virtual-time order.
func TestRecoveryGVTUnderLoss(t *testing.T) {
	plan := &faults.Plan{Seed: 9, Drop: 0.25}
	k, sys, _ := faultSystem(t, 3, plan)
	register(t, sys, "waker", `
		sched_abs(when);
		print("wake", when);
	`)
	for i, when := range []float64{3.0, 1.0, 2.0} {
		err := sys.Inject(i, "waker", map[string]value.Value{"when": value.Num(when)})
		if err != nil {
			t.Fatal(err)
		}
	}
	runSim(t, k, sys)
	out := sys.Output()
	want := []string{"wake 1.0", "wake 2.0", "wake 3.0"}
	if len(out) != len(want) {
		t.Fatalf("output = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, out[i], want[i])
		}
	}
}

// TestRecoveryDisabledUnchanged guards the zero-cost property: without
// WithRecovery the wire carries no acks and no recovery state exists, so a
// fault-free run behaves exactly as before the recovery layer existed.
func TestRecoveryDisabledUnchanged(t *testing.T) {
	k, sys := simSystem(t, 2, WithMetrics(obs.NewMetrics()))
	register(t, sys, "plain", `
		create(ALL);
		hop(ll = $last);
		node.mark = 1;
	`)
	if err := sys.Inject(0, "plain", nil); err != nil {
		t.Fatal(err)
	}
	runSim(t, k, sys)
	if sys.Daemon(0).rec != nil {
		t.Error("recovery state allocated without WithRecovery")
	}
	if got := sys.Metrics().CounterValue("msgr.retx"); got != 0 {
		t.Errorf("retx = %d without recovery", got)
	}
}

// TestPeerDownFencesLateTraffic reproduces the book-skew hang found by the
// protocol chaos sweep (paxos/leadercrash): a MsgMessenger still in flight
// when its sender is declared dead arrives after the observer's PeerDown
// already purged both sides' transient books for that peer. Counting it
// would leave global recv > sent forever — the GVT coordinator's rounds can
// then never conclude and the run never quiesces. The daemon must fence
// (drop uncounted, unacked) all traffic from a peer it currently considers
// dead; the sender's recovery layer retransmits after PeerUp if the
// suspicion was false.
func TestPeerDownFencesLateTraffic(t *testing.T) {
	_, sys, _ := faultSystem(t, 2, &faults.Plan{Seed: 1})
	d := sys.Daemon(1)
	d.PeerDown(0)

	late := &Msg{Kind: MsgMessenger, From: 0, MsgrID: 99, HopSeq: 7}
	d.HandleMsg(late)

	if d.recv != 0 || d.rec.recvFrom[0] != 0 {
		t.Errorf("fenced message was counted: recv=%d recvFrom[0]=%d", d.recv, d.rec.recvFrom[0])
	}
	if d.Stats.Arrived != 0 {
		t.Errorf("fenced message was processed: arrived=%d", d.Stats.Arrived)
	}

	// After PeerUp the same traffic flows (and counts) again. The crafted
	// Msg carries no program, so arrival fails after counting — the GVT
	// books, not the arrival, are what this test pins down.
	d.PeerUp(0)
	msg := &Msg{Kind: MsgMessenger, From: 0, MsgrID: 100, HopSeq: 8}
	d.HandleMsg(msg)
	if d.recv != 1 {
		t.Errorf("post-PeerUp message not counted: recv=%d", d.recv)
	}
}
