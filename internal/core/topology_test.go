package core

import (
	"testing"

	"messengers/internal/value"
)

func TestRingSuccessorWalksWholeRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		topo := FullMesh(n)
		seen := make(map[int]bool)
		at := 0
		for i := 0; i < n; i++ {
			if seen[at] {
				t.Fatalf("n=%d: revisited daemon %d before completing the lap", n, at)
			}
			seen[at] = true
			at = topo.RingSuccessor(at)
		}
		if at != 0 {
			t.Errorf("n=%d: lap of length n ended at %d, want 0", n, at)
		}
	}
}

func TestRingSuccessorIndependentOfEdges(t *testing.T) {
	// The GVT token ring is defined over daemon indices, not daemon links:
	// even an edgeless topology has a complete ring.
	topo := NewTopology(4)
	for i := 0; i < 4; i++ {
		if got, want := topo.RingSuccessor(i), (i+1)%4; got != want {
			t.Errorf("RingSuccessor(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestRingSuccessorBounds(t *testing.T) {
	topo := FullMesh(3)
	for _, bad := range []int{-1, 3, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RingSuccessor(%d) on 3 daemons did not panic", bad)
				}
			}()
			topo.RingSuccessor(bad)
		}()
	}
}

func TestTopologyConstructorShapes(t *testing.T) {
	any := value.Nil()
	neighbors := func(topo *Topology, from int) []int {
		return topo.MatchDaemons(from, any, any, any)
	}

	mesh := FullMesh(4)
	for i := 0; i < 4; i++ {
		if got := neighbors(mesh, i); len(got) != 3 {
			t.Errorf("mesh daemon %d has %d neighbors %v, want 3", i, len(got), got)
		}
	}

	star := Star(4)
	if got := neighbors(star, 0); len(got) != 3 {
		t.Errorf("star hub has neighbors %v, want all 3 spokes", got)
	}
	for i := 1; i < 4; i++ {
		got := neighbors(star, i)
		if len(got) != 1 || got[0] != 0 {
			t.Errorf("star spoke %d has neighbors %v, want [0]", i, got)
		}
	}

	// Grid(2,3): corner (0,0)=id 0 has east + south; center of the top row
	// (0,1)=id 1 has west, east, south.
	grid := Grid(2, 3)
	if got := neighbors(grid, 0); len(got) != 2 {
		t.Errorf("grid corner has neighbors %v, want 2", got)
	}
	if got := neighbors(grid, 1); len(got) != 3 {
		t.Errorf("grid top-center has neighbors %v, want 3", got)
	}
	if got := grid.MatchDaemons(0, any, value.Str("ns"), any); len(got) != 1 || got[0] != 3 {
		t.Errorf(`grid corner "ns" neighbors = %v, want [3]`, got)
	}
}

func TestMatchDaemonsDirectedRing(t *testing.T) {
	ring := Ring(3)
	any := value.Nil()

	// ddir "+" follows edge direction, "-" goes against it.
	if got := ring.MatchDaemons(1, any, any, value.Str("+")); len(got) != 1 || got[0] != 2 {
		t.Errorf(`ring "+" from 1 = %v, want [2]`, got)
	}
	if got := ring.MatchDaemons(1, any, any, value.Str("-")); len(got) != 1 || got[0] != 0 {
		t.Errorf(`ring "-" from 1 = %v, want [0]`, got)
	}
	// Unconstrained direction sees both neighbors.
	if got := ring.MatchDaemons(1, any, any, any); len(got) != 2 {
		t.Errorf("ring both-ways from 1 = %v, want 2 neighbors", got)
	}
	// The link name filter: ring edges are named "ring"; "~" (unnamed) must
	// match nothing here.
	if got := ring.MatchDaemons(1, any, value.Str("~"), any); got != nil {
		t.Errorf(`ring unnamed-link match = %v, want none`, got)
	}
}

func TestMatchDaemonsByNameAndID(t *testing.T) {
	mesh := FullMesh(4)
	any := value.Nil()

	if got := mesh.MatchDaemons(0, value.Str("d2"), any, any); len(got) != 1 || got[0] != 2 {
		t.Errorf(`dn "d2" = %v, want [2]`, got)
	}
	// Numeric daemon IDs work both as strings and as numbers.
	if got := mesh.MatchDaemons(0, value.Str("3"), any, any); len(got) != 1 || got[0] != 3 {
		t.Errorf(`dn "3" = %v, want [3]`, got)
	}
	if got := mesh.MatchDaemons(0, value.Int(3), any, any); len(got) != 1 || got[0] != 3 {
		t.Errorf(`dn 3 = %v, want [3]`, got)
	}
	// A daemon is not its own neighbor in a mesh.
	if got := mesh.MatchDaemons(0, value.Str("d0"), any, any); got != nil {
		t.Errorf(`dn "d0" from 0 = %v, want none`, got)
	}
	if got := mesh.MatchDaemons(0, value.Str("d9"), any, any); got != nil {
		t.Errorf(`dn "d9" = %v, want none`, got)
	}
}

func TestMatchDaemonsDeduplicatesParallelEdges(t *testing.T) {
	topo := NewTopology(2)
	topo.AddEdge(0, 1, "a", false)
	topo.AddEdge(0, 1, "b", false)
	got := topo.MatchDaemons(0, value.Nil(), value.Nil(), value.Nil())
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("parallel edges matched %v, want [1] once", got)
	}
}
