package vm

import (
	"strings"
	"testing"

	"messengers/internal/bytecode"
	"messengers/internal/compile"
)

// FuzzProgramValidate throws arbitrary bytes at the bytecode decoder and
// its verifier, then executes whatever they accept — under every dispatch
// engine. The properties under test:
//
//   - Decode/Validate never panic, whatever the input;
//   - any accepted program runs on the VM without panicking — in
//     particular the shared operand stack never underflows even though
//     Run skips the dynamic PC bounds check for verified programs;
//   - the threaded, fused, and kind-specialized engines reproduce the
//     switch loop's complete observable behavior (results, pause states,
//     step-meter charges, snapshot bytes) on every accepted program,
//     metered and unmetered. This is the kind-soundness differential: if
//     the verifier ever accepted a program whose proven kinds were wrong,
//     a specialized handler would read a raw payload of the wrong kind
//     and its trace would diverge from the oracle here.
//
// Runtime errors (type mismatches on honest-top operands, unknown
// natives, budget exhaustion) are fine; those are dynamic properties the
// verifier does not claim. Provable kind faults never reach this harness:
// Decode rejects them with ErrIllTyped.
func FuzzProgramValidate(f *testing.F) {
	seeds := []string{
		`x = 1;`,
		`func rec(n) {
			if (n < 1) { hop(ll = "deep"); return 100; }
			return 1 + rec(n - 1);
		}
		total = 3 + rec(6);`,
		`arr = [1, 2, "three"];
		i = 0;
		while (i < 3) { s = s + arr[i]; i = i + 1; }
		create(ln = "a", ll = "l", ldir = ">", dn = "b", dl = "l", ddir = "<");`,
		`node.count = node.count + 1; delete(ln = *);`,
		// Quad-idiom loops: these lower to the superinstruction families
		// (slot-compare-branch, slot-arith-store), so mutations of their
		// encodings probe the fused engine's decode surface.
		`for (i = 0; i < 9; i++) { s = s + i * i; }`,
		`func f(n) { t = 1; for (k = 0; k < n; k++) { t = t * 2; } return t; }
		r = f(8); z = 0; q = r / z;`,
		// Kind-rich seeds for the specialization differential: proven
		// num/num and int/num quad loops lower to .nn/.in specialized
		// handlers, so mutations probe the raw-payload fast paths against
		// the switch oracle's promotion ladder.
		`x = 0.0; acc = 1.0;
		for (i = 0; i < 12; i++) { x = x + 0.25; acc = acc * x; }
		mix = acc + i;`,
		// Proven-kind faults laundered through an array load: the operand
		// is honestly top to the verifier, so the program is accepted and
		// the fault stays a runtime error every engine must report alike.
		`s = ["abc"][0]; t = 2;
		for (k = 0; k < 3; k++) { t = t * t; }
		bad = s - t;`,
		// Mixed scalar arithmetic crossing int/num at a join: the kind
		// lattice widens m to top, so specialized handlers must coexist
		// with generic ones in a single lowered stream.
		`if (n > 0) { m = 1; } else { m = 1.5; }
		u = m * 3; v = u / 2.0; w = v < 4;`,
	}
	for _, src := range seeds {
		prog, err := compile.Compile("fuzzseed", src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(prog.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := bytecode.Decode(data)
		if err != nil {
			return
		}
		if !prog.Verified() {
			t.Fatal("Decode returned an unverified program")
		}
		// Metadata queries must be total over the whole code space.
		for fi := range prog.Funcs {
			if prog.MaxStack(fi) < 0 {
				t.Fatalf("verified func %d has no max stack", fi)
			}
			for pc := range prog.Funcs[fi].Code {
				prog.StackDepth(fi, pc)
			}
		}
		m := New(prog, nil)
		res, err := m.Run(newTestHost(), 4096)
		if err != nil {
			if strings.Contains(err.Error(), "pc out of range") {
				t.Fatalf("verified program escaped its code: %v", err)
			}
			return // dynamic errors are legal
		}
		// A VM paused at a navigational statement is exactly what daemons
		// serialize; it must snapshot and restore losslessly.
		switch res.Pause {
		case PauseHop, PauseCreate, PauseDelete:
			snap, err := m.Snapshot()
			if err != nil {
				return // oversized values: legal dynamic failure
			}
			if _, err := Restore(prog, snap); err != nil {
				t.Fatalf("snapshot of verified program rejected: %v", err)
			}
		}
		// Differential: threaded and fused dispatch must be trace-identical
		// with the switch oracle. The budget of 7 is deliberately prime and
		// tiny so it lands inside fused sequences, forcing the refuse-and-
		// tail path on superinstructions.
		for _, budget := range []int64{0, 7} {
			assertDispatchAgree(t, prog, budget)
		}
	})
}
