package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every method on nil receivers: instrumented code
// must run unchanged when observability is disabled.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.SetClock(func() int64 { return 1 })
	tr.NameTrack(0, "x")
	tr.Emit(Event{})
	tr.Instant(0, "c", "n")
	tr.Span(0, "c", "n", 0, 1)
	tr.Counter(0, "c", "n", 1)
	tr.Reset()
	if tr.Now() != 0 || tr.Len() != 0 || tr.Events() != nil || tr.Tracks() != nil {
		t.Error("nil tracer should observe nothing")
	}

	var m *Metrics
	if m.Counter("a") != nil || m.Gauge("b") != nil || m.Histogram("c") != nil {
		t.Error("nil registry should hand out nil instruments")
	}
	if m.CounterValue("a") != 0 || m.Snapshot() != nil {
		t.Error("nil registry should read as empty")
	}
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter")
	}
	var g *Gauge
	g.Set(5)
	if g.Value() != 0 {
		t.Error("nil gauge")
	}
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram")
	}
}

func TestTracerClockAndEvents(t *testing.T) {
	tr := NewTracer()
	var now int64
	tr.SetClock(func() int64 { return now })
	now = 1500
	tr.Instant(2, "msgr", "hop", I("msgr", 7), S("dest", "n3"))
	now = 2000
	tr.Span(1, "vm", "segment", 1800, 150, F("steps", 12))
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].TS != 1500 || evs[0].Track != 2 || evs[0].Ph != PhaseInstant {
		t.Errorf("instant event wrong: %+v", evs[0])
	}
	if evs[1].TS != 1800 || evs[1].Dur != 150 || evs[1].Ph != PhaseSpan {
		t.Errorf("span event wrong: %+v", evs[1])
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Error("reset should discard events")
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("bus.msgs")
	c.Add(3)
	m.Counter("bus.msgs").Inc() // same instrument
	if got := m.CounterValue("bus.msgs"); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	m.Gauge("gvt").Set(42)
	h := m.Histogram("snapshot.bytes")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 || h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("histogram stats wrong: n=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 3 || q > 7 {
		t.Errorf("p50 = %d, want around 3", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %d, want 1000", q)
	}

	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	// Sorted by name: bus.msgs, gvt, snapshot.bytes.
	if snap[0].Name != "bus.msgs" || snap[1].Name != "gvt" || snap[2].Name != "snapshot.bytes" {
		t.Errorf("snapshot order wrong: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[2].Kind != KindHistogram || snap[2].Count != 5 {
		t.Errorf("histogram sample wrong: %+v", snap[2])
	}
}

// TestMetricsConcurrency hammers one registry from many goroutines (the
// real engines update counters from daemon goroutines).
func TestMetricsConcurrency(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Counter("n").Inc()
				m.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := m.CounterValue("n"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := m.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// TestChromeTraceSchema checks the exporter emits valid trace_event JSON
// with the fields chrome://tracing requires.
func TestChromeTraceSchema(t *testing.T) {
	tr := NewTracer()
	var now int64
	tr.SetClock(func() int64 { return now })
	tr.NameTrack(0, "daemon 0")
	tr.NameTrack(5, BusTrackName)
	now = 1001
	tr.Instant(0, "msgr", "inject", I("msgr", 1))
	tr.Span(5, "lan", "frame", 2000, 12345, I("bytes", 1500))
	tr.Counter(0, "gvt", "gvt", 3)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		for _, key := range []string{"ph", "pid", "tid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event missing %q: %v", key, ev)
			}
		}
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Errorf("non-metadata event missing ts: %v", ev)
			}
			if _, ok := ev["args"]; !ok {
				t.Errorf("event missing args: %v", ev)
			}
		}
	}
	if phases["i"] != 1 || phases["X"] != 1 || phases["C"] != 1 {
		t.Errorf("phase counts wrong: %v", phases)
	}
	// Metadata: process_name + 2 tracks x (thread_name + sort index).
	if phases["M"] != 5 {
		t.Errorf("metadata count = %d, want 5", phases["M"])
	}
	// ns-precision microsecond timestamps survive.
	if !strings.Contains(buf.String(), `"ts":1.001`) {
		t.Errorf("expected 1.001us timestamp in output:\n%s", buf.String())
	}
}

func TestMetricsExportFormats(t *testing.T) {
	m := NewMetrics()
	m.Counter("bus.msgs").Add(7)
	m.Gauge("lvl").Set(-2)
	m.Histogram("h").Observe(10)

	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "name,kind,value,count,min,max,mean,p50,p99" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "bus.msgs,counter,7") {
		t.Errorf("csv counter row = %q", lines[1])
	}

	tbl := FormatMetrics(m)
	for _, want := range []string{"metric", "bus.msgs", "7", "n=1"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestUsecRendering(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		1000:       "1",
		1500:       "1.5",
		1501:       "1.501",
		999:        "0.999",
		12_345_678: "12345.678",
	}
	for ns, want := range cases {
		if got := usec(ns); got != want {
			t.Errorf("usec(%d) = %q, want %q", ns, got, want)
		}
	}
}
