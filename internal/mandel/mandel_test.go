package mandel

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEscapeKnownPoints(t *testing.T) {
	tests := []struct {
		cr, ci float64
		want   int // escape iteration (or max for interior)
	}{
		{0, 0, 100},   // origin never escapes
		{-1, 0, 100},  // period-2 interior point
		{2, 2, 1},     // far outside: z1 = c already has |z| > 2
		{0.2, 0, 100}, // inside the main cardioid (cusp at 0.25)
		{-2.1, 0, 1},  // just left of the set, |c| > 2
	}
	for _, tt := range tests {
		if got := Escape(tt.cr, tt.ci, 100); got != tt.want {
			t.Errorf("Escape(%v, %v) = %d, want %d", tt.cr, tt.ci, got, tt.want)
		}
	}
}

func TestEscapeMonotoneInMaxIter(t *testing.T) {
	// A point that escapes at iteration n escapes at the same n for any
	// larger cap.
	cr, ci := 0.26, 0.0 // escapes slowly, near the cardioid cusp
	n1 := Escape(cr, ci, 1000)
	if n1 == 1000 {
		t.Skip("test point did not escape; adjust")
	}
	if n2 := Escape(cr, ci, 2000); n2 != n1 {
		t.Errorf("escape changed with cap: %d vs %d", n1, n2)
	}
}

func TestBlocksCoverImageExactly(t *testing.T) {
	for _, tt := range []struct{ w, h, g int }{
		{320, 320, 8}, {320, 320, 32}, {100, 70, 3}, {7, 7, 8},
	} {
		blocks := Blocks(tt.w, tt.h, tt.g)
		if len(blocks) != tt.g*tt.g {
			t.Errorf("%dx%d/%d: %d blocks", tt.w, tt.h, tt.g, len(blocks))
		}
		covered := make([]bool, tt.w*tt.h)
		for _, b := range blocks {
			for y := b.Y0; y < b.Y0+b.H; y++ {
				for x := b.X0; x < b.X0+b.W; x++ {
					if x < 0 || x >= tt.w || y < 0 || y >= tt.h {
						t.Fatalf("block %v out of bounds", b)
					}
					if covered[y*tt.w+x] {
						t.Fatalf("pixel (%d,%d) covered twice", x, y)
					}
					covered[y*tt.w+x] = true
				}
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("%dx%d/%d: pixel %d not covered", tt.w, tt.h, tt.g, i)
			}
		}
	}
}

func TestBlockAssemblyMatchesSequential(t *testing.T) {
	const w, h, iters = 64, 64, 128
	seq, seqIters := ComputeImage(PaperRegion, w, h, iters)

	img := NewImage(w, h)
	var total int64
	for _, b := range Blocks(w, h, 4) {
		data, it := ComputeBlock(PaperRegion, w, h, b, iters)
		total += it
		if err := img.SetBlock(b, data); err != nil {
			t.Fatal(err)
		}
	}
	if img.Checksum() != seq.Checksum() {
		t.Error("block-assembled image differs from sequential image")
	}
	if total != seqIters {
		t.Errorf("iteration counts differ: %d vs %d", total, seqIters)
	}
	if total <= int64(w*h) {
		t.Errorf("implausible iteration total %d", total)
	}
}

func TestSetBlockValidatesSize(t *testing.T) {
	img := NewImage(8, 8)
	if err := img.SetBlock(Block{W: 2, H: 2}, make([]byte, 3)); err == nil {
		t.Error("short data should fail")
	}
}

func TestChecksumDistinguishesImages(t *testing.T) {
	a := NewImage(4, 4)
	b := NewImage(4, 4)
	if a.Checksum() != b.Checksum() {
		t.Error("equal images must have equal checksums")
	}
	b.Pix[5] = 1
	if a.Checksum() == b.Checksum() {
		t.Error("different images should differ")
	}
}

func TestWritePGM(t *testing.T) {
	img, _ := ComputeImage(PaperRegion, 16, 12, 64)
	var buf bytes.Buffer
	if err := img.WritePGM(&buf, 64); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P5\n16 12\n64\n") {
		t.Errorf("header = %q", out[:20])
	}
	if buf.Len() != len("P5\n16 12\n64\n")+2*16*12 {
		t.Errorf("size = %d", buf.Len())
	}
}

func TestPropBlockComputationIsDeterministic(t *testing.T) {
	f := func(seed uint8) bool {
		g := int(seed%4) + 1
		blocks := Blocks(32, 32, g)
		b := blocks[int(seed)%len(blocks)]
		d1, i1 := ComputeBlock(PaperRegion, 32, 32, b, 64)
		d2, i2 := ComputeBlock(PaperRegion, 32, 32, b, 64)
		return i1 == i2 && bytes.Equal(d1, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockStringer(t *testing.T) {
	if got := (Block{X0: 1, Y0: 2, W: 3, H: 4}).String(); got != "3x4@(1,2)" {
		t.Errorf("String = %q", got)
	}
}
