// Package locktest is analyzed under the path messengers/internal/core,
// where the lock-hold rules apply.
package locktest

import (
	"sync"
	"time"
)

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	wg   sync.WaitGroup
	q    []int
}

func sendWhileLocked(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want "channel send while holding"
	b.mu.Unlock()
}

func sendAfterUnlock(b *box) {
	b.mu.Lock()
	b.q = append(b.q, 1)
	b.mu.Unlock()
	b.ch <- 1 // fine: lock released
}

func recvWhileRLocked(b *box) int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return <-b.ch // want "channel receive while holding"
}

func deferKeepsHeld(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 2 // want "channel send while holding"
}

func selectNoDefault(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "blocking select while holding"
	case v := <-b.ch:
		b.q = append(b.q, v)
	}
}

func selectWithDefault(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		b.q = append(b.q, v)
	default:
	}
}

func sleepWhileLocked(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding"
	b.mu.Unlock()
}

func waitGroupWhileLocked(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait() // want "sync.Wait while holding"
}

// condWait is the sanctioned pattern: Cond.Wait releases the mutex.
func condWait(b *box) int {
	b.mu.Lock()
	for len(b.q) == 0 {
		b.cond.Wait()
	}
	v := b.q[0]
	b.mu.Unlock()
	return v
}

// goroutine bodies do not inherit the held set.
func spawnWhileLocked(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 3 // fine: runs after the lock is gone
	}()
}

func suppressedHandoff(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 4 //lint:lockhold buffered handoff channel, never full
}
