package bench

import (
	"fmt"
	"strings"

	"messengers/internal/apps"
	"messengers/internal/lan"
)

// RunT2 regenerates the §3.2.2 speedup claims: MESSENGERS block multiply at
// n=1000 on 4 processors and n=1500 on 9 processors against the two
// sequential baselines.
func RunT2(cm *lan.CostModel) (*Table, error) {
	type pt struct {
		label      string
		sweep      MatmulSweep
		paperBlk   float64
		paperNaive float64
	}
	pts := []pt{
		{"n=1000, 2x2 (110 MHz)", MatmulSweep{Name: "T2a", M: 2, Host: lan.SPARC110, BlockSizes: []int{500}}, 3.7, 4.5},
		{"n=1500, 3x3 (170 MHz)", MatmulSweep{Name: "T2b", M: 3, Host: lan.SPARC170, FastEthernet: true, BlockSizes: []int{500}}, 5.8, 6.7},
	}
	t := &Table{
		Title:   "T2 (§3.2.2): MESSENGERS speedups over the sequential baselines",
		Columns: []string{"configuration", "over seq block", "paper", "over seq naive", "paper"},
	}
	for _, p := range pts {
		fig, err := RunMatmulFigure(cm, p.sweep)
		if err != nil {
			return nil, err
		}
		ob, on, _ := fig.SpeedupAt(500)
		t.Rows = append(t.Rows, []string{
			p.label,
			fmt.Sprintf("%.1f", ob), fmt.Sprintf("%.1f", p.paperBlk),
			fmt.Sprintf("%.1f", on), fmt.Sprintf("%.1f", p.paperNaive),
		})
	}
	return t, nil
}

// pvmMandelListing is the message-passing manager/worker program (the
// paper's Figure 2) as it actually runs in internal/apps: the manager and
// worker bodies, counted statement for statement against the MESSENGERS
// script. The listing mirrors apps.MandelPVM.
const pvmMandelListing = `
	manager() {
		for (i = 0; i < nworkers; i++)
			worker[i] = spawn(worker_func, host[i]);
		for (i = 0; i < nworkers; i++) {
			initsend(); pkint(next_task());
			send(worker[i], TASK);
		}
		while (outstanding > 0) {
			buf = recv(ANY, RESULT);
			task = upkint(buf); pix = upkbytes(buf);
			deposit(task, pix);
			if (tasks_available()) {
				initsend(); pkint(next_task());
				send(sender(buf), TASK);
			} else {
				kill(sender(buf));
				outstanding--;
			}
		}
	}
	worker_func() {
		while (TRUE) {
			buf = recv(parent(), TASK);
			task = upkint(buf);
			pix = compute(task);
			initsend(); pkint(task); pkbytes(pix);
			send(parent(), RESULT);
		}
	}
`

// pvmMatmulListing is the Figure 9 program as it runs in apps.MatmulPVM.
const pvmMatmulListing = `
	matrix_mult(s, m, i, j) {
		if (parent() == VOID) {
			for (i = 0; i < m; i++)
				for (j = 0; j < m; j++)
					spawn(matrix_mult, s, m, i, j);
			return;
		}
		joingroup("mmult", i*m + j);
		for (k = 0; k < m; k++)
			myrow[k] = gettid("mmult", i*m + k);
		north = gettid("mmult", ((i-1+m)%m)*m + j);
		south = gettid("mmult", ((i+1)%m)*m + j);
		for (k = 0; k < m; k++) {
			if (j == (i + k) % m) {
				initsend(); pkmat(block_A);
				mcast(myrow, ATAG + k);
				curr_A = block_A;
			} else {
				buf = recv(ANY, ATAG + k);
				curr_A = upkmat(buf);
			}
			multiply_add(block_C, curr_A, block_B);
			initsend(); pkmat(block_B);
			send(north, BTAG + k);
			buf = recv(south, BTAG + k);
			block_B = upkmat(buf);
		}
	}
`

// codeLines counts non-blank, non-comment statement lines of a listing.
func codeLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "//") {
			continue
		}
		if s == "{" || s == "}" || s == "};" {
			continue
		}
		n++
	}
	return n
}

// RunT3 regenerates the programming-style comparison (§3.1.1, §3.2.1): the
// MESSENGERS programs are single scripts and substantially shorter than
// their message-passing equivalents.
func RunT3() *Table {
	t := &Table{
		Title:   "T3: program length (non-blank statement lines) and component count",
		Columns: []string{"application", "system", "lines", "program components"},
	}
	rows := []struct {
		app, system, comps string
		lines              int
	}{
		{"Mandelbrot (Figs. 2 vs 3)", "MESSENGERS", "1 script", codeLines(apps.MsgrMandelScript)},
		{"Mandelbrot (Figs. 2 vs 3)", "PVM", "manager + worker", codeLines(pvmMandelListing)},
		{"Matmul (Figs. 9 vs 11)", "MESSENGERS", "2 scripts", codeLines(apps.MsgrDistributeA) + codeLines(apps.MsgrRotateB)},
		{"Matmul (Figs. 9 vs 11)", "PVM", "1 spawning program", codeLines(pvmMatmulListing)},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.app, r.system, fmt.Sprintf("%d", r.lines), r.comps,
		})
	}
	return t
}
