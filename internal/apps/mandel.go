// Package apps contains the paper's two evaluation applications — the
// Mandelbrot manager/worker computation (§3.1) and block matrix
// multiplication (§3.2) — each implemented three ways, exactly as in the
// paper: with MESSENGERS (navigational scripts), with the PVM baseline
// (message passing), and sequentially.
//
// All distributed variants run on the simulated cluster so the benchmark
// harness can reproduce the paper's figures; the results they produce are
// bit-identical to the sequential versions, which the test suite checks.
package apps

import (
	"fmt"

	"messengers/internal/core"
	"messengers/internal/faults"
	"messengers/internal/lan"
	"messengers/internal/mandel"
	"messengers/internal/obs"
	"messengers/internal/pvm"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// MandelParams describes one Mandelbrot experiment configuration.
type MandelParams struct {
	Width, Height int
	// Grid divides the image into Grid x Grid blocks (8, 16, 32 in the
	// paper).
	Grid int
	// Workers is the number of worker processors (1..32 in the paper).
	Workers int
	// MaxIter is the color count (512 in the paper).
	MaxIter int
	Region  mandel.Region
	// Trace, when non-nil, receives the run's events: one track per
	// daemon/host plus the shared-bus track, stamped with simulated time.
	Trace *obs.Tracer
	// Faults, when non-nil, injects the plan's faults into the MESSENGERS
	// run and enables messenger-level recovery. The run must still produce
	// a complete image (every block deposited), though blocks recomputed
	// after a crash may be deposited more than once.
	Faults *faults.Plan
	// DistributedGVT selects the ring-reduction GVT protocol for the
	// MESSENGERS run (the differential tests compare its committed GVT
	// sequence against the default coordinator's).
	DistributedGVT bool
	// HopBatching coalesces same-destination hop traffic into batch frames.
	HopBatching bool
}

// PaperMandelParams returns the paper's configuration for a given image
// size, grid, and processor count.
func PaperMandelParams(size, grid, workers int) MandelParams {
	return MandelParams{
		Width: size, Height: size, Grid: grid, Workers: workers,
		MaxIter: mandel.PaperColors, Region: mandel.PaperRegion,
	}
}

// MandelResult is the outcome of one run.
type MandelResult struct {
	// Elapsed is the simulated makespan.
	Elapsed sim.Time
	// Checksum identifies the computed image (must agree across
	// implementations).
	Checksum uint64
	// Image is the assembled image.
	Image *mandel.Image
	// Obs is the run's metrics registry — the single source of truth for
	// traffic and occupancy counters: bus.msgs, bus.bytes, bus.busy_ns,
	// host.<i>.busy_ns, pvm.drops, mandel.deposits, and (MESSENGERS runs)
	// the msgr.*/vm.*/gvt.* counters. Nil for the sequential baseline.
	Obs *obs.Metrics
	// GVTCommits is the sequence of GVT values committed during a
	// MESSENGERS run, in commit order (nil for PVM/sequential runs).
	GVTCommits []float64
}

// MsgrMandelScript is the paper's Figure 3 program in MSL. The single
// deviation from the listing is clearing the Messenger's result variable
// after depositing it, so the next task-fetch hop does not carry the old
// block back out (the deposit consumed it).
const MsgrMandelScript = `
	create(ALL);
	hop(ll = $last);
	while ((task = next_task()) != nil) {
		hop(ll = $last);
		res = compute(task);
		hop(ll = $last);
		deposit(task, res);
		res = nil;
	}
`

// MandelMessengers runs the MESSENGERS implementation on a simulated
// cluster of p.Workers+1 hosts: the central node (task pool and image) on
// daemon 0 and one worker node per remaining daemon, created by the Fig. 3
// script itself with create(ALL).
func MandelMessengers(cm *lan.CostModel, p MandelParams) (*MandelResult, error) {
	if p.Workers < 1 {
		return nil, fmt.Errorf("apps: mandel needs at least 1 worker")
	}
	k := sim.New()
	n := p.Workers + 1
	cluster := lan.NewCluster(k, cm, n, lan.SPARC110)
	metrics := obs.NewMetrics()
	cluster.Observe(p.Trace, metrics)
	opts := []core.Option{core.WithTracer(p.Trace), core.WithMetrics(metrics)}
	if p.DistributedGVT {
		opts = append(opts, core.WithDistributedGVT())
	}
	if p.HopBatching {
		opts = append(opts, core.WithHopBatching())
	}
	if p.Faults != nil {
		if err := p.Faults.Validate(n); err != nil {
			return nil, err
		}
		opts = append(opts, core.WithRecovery(core.RecoveryConfig{}))
	}
	sys := core.NewSystem(core.NewSimEngine(cluster), core.Star(n), opts...)
	if p.Faults != nil {
		inj := faults.NewInjector(p.Faults, metrics, p.Trace)
		cluster.SetFaultHook(inj.LanHook(k))
		faults.Schedule(p.Faults, sys, func(at int64, fn func()) { k.At(sim.Time(at), fn) }, true)
	}

	blocks := mandel.Blocks(p.Width, p.Height, p.Grid)
	img := mandel.NewImage(p.Width, p.Height)
	var deposits int64
	covered := make(map[int]bool, len(blocks))

	sys.RegisterNative("next_task", func(ctx *core.NativeCtx, _ []value.Value) (value.Value, error) {
		ctx.Charge(ctx.Model().CallFixed)
		next := ctx.NodeVar("next").AsInt()
		if next >= int64(len(blocks)) {
			return value.Nil(), nil
		}
		ctx.SetNodeVar("next", value.Int(next+1))
		return value.Int(next), nil
	})
	sys.RegisterNative("compute", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		b := blocks[args[0].AsInt()]
		pix, iters := mandel.ComputeBlock(p.Region, p.Width, p.Height, b, p.MaxIter)
		ctx.Charge(ctx.Model().MandelCost(iters, int64(b.W*b.H), ctx.HostSpec()))
		return value.Bytes(pix), nil
	})
	sys.RegisterNative("deposit", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		b := blocks[args[0].AsInt()]
		data := args[1].AsBytes()
		if err := img.SetBlock(b, data); err != nil {
			return value.Nil(), err
		}
		// Installing the block is one memory copy at the central node.
		ctx.Charge(sim.Time(len(data)) * ctx.Model().MemPerByte)
		deposits++
		covered[int(args[0].AsInt())] = true
		return value.Nil(), nil
	})

	if err := registerAndInject(sys, "mandel_worker", MsgrMandelScript, 0); err != nil {
		return nil, err
	}
	elapsed := k.Run()
	if errs := sys.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("apps: mandel messengers: %v", errs[0])
	}
	if p.Faults == nil && deposits != int64(len(blocks)) {
		return nil, fmt.Errorf("apps: mandel messengers deposited %d of %d blocks", deposits, len(blocks))
	}
	// Under injected faults, crashed work is re-executed from snapshots, so
	// duplicate deposits are legal — but every block must still land.
	if len(covered) != len(blocks) {
		return nil, fmt.Errorf("apps: mandel messengers covered %d of %d blocks", len(covered), len(blocks))
	}
	sys.FlushVMProfiles()
	metrics.Counter("mandel.deposits").Add(deposits)
	return &MandelResult{
		Elapsed:    elapsed,
		Checksum:   img.Checksum(),
		Image:      img,
		Obs:        metrics,
		GVTCommits: sys.CommitLog(),
	}, nil
}

func registerAndInject(sys *core.System, name, src string, daemon int) error {
	prog, err := compileScript(name, src)
	if err != nil {
		return err
	}
	sys.Register(prog)
	return sys.Inject(daemon, name, nil)
}

// MandelPVM runs the paper's Figure 2 manager/worker program under the PVM
// baseline: the manager on host 0 spawns one worker per remaining host,
// hands out blocks dynamically, and assembles the image from the returned
// pixel data.
func MandelPVM(cm *lan.CostModel, p MandelParams) (*MandelResult, error) {
	if p.Workers < 1 {
		return nil, fmt.Errorf("apps: mandel needs at least 1 worker")
	}
	const (
		tagTask   = 1
		tagResult = 2
	)
	k := sim.New()
	n := p.Workers + 1
	cluster := lan.NewCluster(k, cm, n, lan.SPARC110)
	metrics := obs.NewMetrics()
	cluster.Observe(p.Trace, metrics)
	m := pvm.NewSimMachine(cluster)
	m.Observe(p.Trace, metrics)

	blocks := mandel.Blocks(p.Width, p.Height, p.Grid)
	img := mandel.NewImage(p.Width, p.Height)
	var deposits int64
	var runErr error

	worker := func(w *pvm.Proc) {
		for {
			b := w.Recv(w.Parent(), tagTask)
			task := w.UpkInt(b)
			blk := blocks[task]
			pix, iters := mandel.ComputeBlock(p.Region, p.Width, p.Height, blk, p.MaxIter)
			w.Compute(cm.MandelCost(iters, int64(blk.W*blk.H), lan.SPARC110))
			w.InitSend()
			w.PkInt(task)
			w.PkBytes(pix)
			w.Send(w.Parent(), tagResult)
		}
	}

	m.SpawnAt("manager", 0, func(mgr *pvm.Proc) {
		workers := make([]pvm.TID, p.Workers)
		for i := range workers {
			workers[i] = mgr.Spawn("worker", i+1, worker)
		}
		next := 0
		sendTask := func(dst pvm.TID) {
			mgr.InitSend()
			mgr.PkInt(int64(next))
			mgr.Send(dst, tagTask)
			next++
		}
		for _, w := range workers {
			if next >= len(blocks) {
				break
			}
			sendTask(w)
		}
		outstanding := next
		for outstanding > 0 {
			b := mgr.Recv(pvm.AnySource, tagResult)
			task := mgr.UpkInt(b)
			pix := mgr.UpkBytes(b)
			if err := img.SetBlock(blocks[task], pix); err != nil {
				runErr = err
				return
			}
			mgr.Compute(sim.Time(len(pix)) * cm.MemPerByte) // deposit copy
			deposits++
			if next < len(blocks) {
				sendTask(b.Sender())
			} else {
				outstanding--
				mgr.Kill(b.Sender())
			}
		}
	})

	elapsed := k.Run()
	k.Shutdown()
	if errs := m.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("apps: mandel pvm: %v", errs[0])
	}
	if runErr != nil {
		return nil, runErr
	}
	if deposits != int64(len(blocks)) {
		return nil, fmt.Errorf("apps: mandel pvm deposited %d of %d blocks", deposits, len(blocks))
	}
	metrics.Counter("mandel.deposits").Add(deposits)
	return &MandelResult{
		Elapsed:  elapsed,
		Checksum: img.Checksum(),
		Image:    img,
		Obs:      metrics,
	}, nil
}

// MandelSequential runs the sequential C baseline on one simulated host.
func MandelSequential(cm *lan.CostModel, p MandelParams) *MandelResult {
	img, iters := mandel.ComputeImage(p.Region, p.Width, p.Height, p.MaxIter)
	elapsed := cm.ScaleFor(lan.SPARC110, cm.MandelCost(iters, int64(p.Width*p.Height), lan.SPARC110))
	return &MandelResult{
		Elapsed:  elapsed,
		Checksum: img.Checksum(),
		Image:    img,
	}
}
