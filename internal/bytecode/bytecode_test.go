package bytecode

import (
	"strings"
	"testing"

	"messengers/internal/value"
)

func sampleProgram() *Program {
	return &Program{
		Name:   "sample",
		Source: "x = 1;",
		Consts: []value.Value{value.Int(1), value.Str("row"), value.Num(0.5)},
		Names:  []string{"x", "last"},
		Funcs: []FuncInfo{
			{
				Name: "<main>",
				Code: []Instr{
					{Op: OpConst, A: 0},
					{Op: OpStoreM, A: 0},
					{Op: OpLoadNet, A: 1},
					{Op: OpPop},
					// One hop arm = three operands (ln, ll, ldir).
					{Op: OpConst, A: 1},
					{Op: OpConst, A: 1},
					{Op: OpConst, A: 2},
					{Op: OpHop, A: 1},
					{Op: OpEnd},
				},
			},
			{
				Name: "helper", NumParams: 1, NumLocals: 2,
				Code: []Instr{
					{Op: OpLoadL, A: 0},
					{Op: OpRet},
				},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram()
	dec, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != p.Name || dec.Source != p.Source {
		t.Errorf("metadata: %q %q", dec.Name, dec.Source)
	}
	if len(dec.Consts) != 3 || !dec.Consts[2].Equal(value.Num(0.5)) {
		t.Errorf("consts = %v", dec.Consts)
	}
	if len(dec.Funcs) != 2 || dec.Funcs[1].NumParams != 1 || dec.Funcs[1].NumLocals != 2 {
		t.Errorf("funcs = %+v", dec.Funcs)
	}
	if dec.Funcs[0].Code[7] != (Instr{Op: OpHop, A: 1}) {
		t.Errorf("code = %+v", dec.Funcs[0].Code)
	}
}

func TestHashStability(t *testing.T) {
	a, b := sampleProgram(), sampleProgram()
	if a.Hash() != b.Hash() {
		t.Error("identical programs must hash equal")
	}
	// Source changes do not affect the hash (code identity only).
	b.Source = "different"
	if a.Hash() != b.Hash() {
		t.Error("source must not affect the hash")
	}
	// Code changes do.
	b.Funcs[0].Code[0].A = 1
	if a.Hash() == b.Hash() {
		t.Error("code change must change the hash")
	}
	if a.Hash().String() == "" || len(a.Hash().String()) != 32 {
		t.Errorf("hash string = %q", a.Hash().String())
	}
}

func TestWireSizeExcludesSource(t *testing.T) {
	p := sampleProgram()
	base := p.WireSize()
	p.Source = strings.Repeat("x", 10000)
	if p.WireSize() != base {
		t.Error("WireSize must not include source")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	enc := sampleProgram().Encode()
	for cut := 0; cut < len(enc)-1; cut += 7 {
		if _, err := Decode(enc[:cut]); err == nil {
			// Truncations that only lose source bytes are tolerated.
			if cut > len(enc)-len(sampleProgram().Source)-4 {
				continue
			}
			t.Errorf("Decode(enc[:%d]) should fail", cut)
		}
	}
	// Unknown opcode.
	bad := sampleProgram()
	bad.Funcs[0].Code[0].Op = Op(200)
	if _, err := Decode(bad.Encode()); err == nil {
		t.Error("unknown opcode should fail decode")
	}
}

func TestFindFunc(t *testing.T) {
	p := sampleProgram()
	if p.FindFunc("helper") != 1 {
		t.Errorf("FindFunc(helper) = %d", p.FindFunc("helper"))
	}
	if p.FindFunc("nope") != -1 {
		t.Error("FindFunc of unknown should be -1")
	}
	if p.Func(1).Name != "helper" {
		t.Error("Func accessor broken")
	}
}

func TestOpStrings(t *testing.T) {
	if OpHop.String() != "hop" || OpCallNative.String() != "calln" {
		t.Error("op names wrong")
	}
	if !strings.HasPrefix(Op(250).String(), "op(") {
		t.Errorf("unknown op = %q", Op(250).String())
	}
}

func TestDisassembleSample(t *testing.T) {
	asm := sampleProgram().Disassemble()
	for _, want := range []string{"const 1", "storem x", "loadnet last", "hop arms=1", "helper"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}
