package protocols

import (
	"fmt"
	"sort"
	"time"

	"messengers/internal/backoff"
	"messengers/internal/faults"
	"messengers/internal/lan"
	"messengers/internal/obs"
	"messengers/internal/pvm"
	"messengers/internal/sim"
)

// The PVM-style baselines: each protocol re-done as stationary tasks
// exchanging messages — the paper's "messages" side of the comparison.
//
// The simulated PVM transport rides the modeled bus directly, below the
// cluster's fault hook, and the real machine's transport is in-process
// channels; so fault injection happens here, at the application layer, by
// consulting the same faults.Injector stream the Messenger engines use.
// That forces the baselines to hand-roll exactly what the Messenger
// runtime provides as a service: sequence numbers, acks, deduplication,
// and jittered retransmission (the rt type). The cost asymmetry —
// reliability as a runtime service versus reliability re-implemented per
// application — is part of the measurement, not an accident of it.

const (
	rtTagData = 71
	rtTagAck  = 72
)

// Polling quanta and retransmission timeouts, per engine. Sim tasks
// advance simulated time with Compute; real tasks sleep.
const (
	rtSimTick  = 100 * sim.Microsecond
	rtWallTick = 2 * time.Millisecond
	rtSimRTO   = int64(2 * sim.Millisecond)
	rtSimMax   = int64(16 * sim.Millisecond)
	rtWallRTO  = int64(40 * time.Millisecond)
	rtWallMax  = int64(640 * time.Millisecond)
)

// rtBudget bounds every polling loop: nemesis plans always heal, so a
// budget generous enough to outlast the worst fault window means budget
// exhaustion is "the protocol legitimately cannot proceed" (a blocked 2PC
// participant), never a truncated run.
const (
	rtSimBudget  = 6000 // ticks: 600ms simulated
	rtWallBudget = 10000
)

// pvmEnv is the shared context of one PVM protocol run.
type pvmEnv struct {
	machine *pvm.Machine
	kernel  *sim.Kernel // nil on the real engine
	inj     *faults.Injector
	rec     *Recorder
	m       *obs.Metrics
	start   time.Time
	ready   chan struct{} // closed once all tasks are spawned
	hosts   map[pvm.TID]int

	appMsgs  *obs.Counter // proto.pvm.msgs: logical protocol messages
	appBytes *obs.Counter // proto.pvm.msg.bytes: their payload bytes
}

func newPVMEnv(engine string, hosts int, plan *faults.Plan, rec *Recorder, m *obs.Metrics) (*pvmEnv, error) {
	env := &pvmEnv{
		rec:      rec,
		m:        m,
		start:    time.Now(),
		ready:    make(chan struct{}),
		hosts:    map[pvm.TID]int{},
		appMsgs:  m.Counter("proto.pvm.msgs"),
		appBytes: m.Counter("proto.pvm.msg.bytes"),
	}
	switch engine {
	case EngineSim:
		env.kernel = sim.New()
		cluster := lan.NewCluster(env.kernel, lan.DefaultCostModel(), hosts, lan.SPARC110)
		env.machine = pvm.NewSimMachine(cluster)
	case EngineReal:
		env.machine = pvm.NewRealMachine(hosts)
	default:
		return nil, fmt.Errorf("protocols: unknown engine %q", engine)
	}
	env.machine.Observe(nil, m)
	if plan != nil {
		env.inj = faults.NewInjector(plan, m, nil)
	}
	return env, nil
}

// now is the injector clock: simulated nanoseconds on the sim engine, wall
// nanoseconds since run start on the real one.
func (env *pvmEnv) now() int64 {
	if env.kernel != nil {
		return int64(env.kernel.Now())
	}
	return int64(time.Since(env.start))
}

// spawn registers the task's host so the injector can map TID routes onto
// the plan's daemon indices. Must be called before run.
func (env *pvmEnv) spawn(name string, host int, fn func(p *pvm.Proc, r *rt)) pvm.TID {
	tid := env.machine.SpawnAt(name, host, func(p *pvm.Proc) {
		if env.kernel == nil {
			<-env.ready // real tasks start instantly; wait for full spawn table
		}
		fn(p, newRT(env, p))
	})
	env.hosts[tid] = host
	return tid
}

// scheduleKill crashes a task at time at (nanoseconds): the PVM rendering
// of the leader-crash nemesis. There is no respawn — a PVM task's state
// dies with it, which is exactly the blocking behavior the checkers must
// tolerate (and the Messenger engine's daemon-restart machinery is the
// counterpoint to).
func (env *pvmEnv) scheduleKill(victim pvm.TID, at int64) {
	if env.kernel != nil {
		env.kernel.At(sim.Time(at), func() { env.machine.Kill(victim) })
		return
	}
	time.AfterFunc(time.Duration(at), func() { env.machine.Kill(victim) })
}

// run drives the machine to quiescence and filters expected chaos noise.
func (env *pvmEnv) run() error {
	close(env.ready)
	if env.kernel != nil {
		defer env.kernel.Shutdown()
		env.kernel.Run()
		return pvmErrorsFatal(env.machine.Errors())
	}
	done := make(chan struct{})
	go func() {
		env.machine.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(realRunTimeout):
		return fmt.Errorf("protocols: pvm real run did not quiesce within %v", realRunTimeout)
	}
	return pvmErrorsFatal(env.machine.Errors())
}

func pvmErrorsFatal(errs []error) error {
	for _, e := range errs {
		return fmt.Errorf("protocols: pvm task error: %w", e)
	}
	return nil
}

// budget returns the per-task polling budget for this engine.
func (env *pvmEnv) budget() int {
	if env.kernel != nil {
		return rtSimBudget
	}
	return rtWallBudget
}

type rtKey struct {
	peer pvm.TID
	seq  int64
}

type rtMsg struct {
	Src  pvm.TID
	Vals []int64
}

type rtPend struct {
	dst      pvm.TID
	seq      int64
	vals     []int64
	attempts int
	due      int64
}

// rt is one task's reliable transport endpoint: at-least-once delivery
// with dedup over the lossy (injector-mediated) wire. Every payload is a
// flat int64 vector — all three protocols speak integers.
type rt struct {
	env     *pvmEnv
	p       *pvm.Proc
	nextSeq int64
	seen    map[rtKey]bool
	pend    map[rtKey]*rtPend
	inbox   []rtMsg
}

func newRT(env *pvmEnv, p *pvm.Proc) *rt {
	return &rt{env: env, p: p, seen: map[rtKey]bool{}, pend: map[rtKey]*rtPend{}}
}

// send transmits one logical protocol message reliably: it is recorded in
// the app-level cost counters once, retransmitted until acked.
func (r *rt) send(dst pvm.TID, vals ...int64) {
	r.env.appMsgs.Inc()
	r.env.appBytes.Add(int64(8 * (len(vals) + 2)))
	r.nextSeq++
	pe := &rtPend{dst: dst, seq: r.nextSeq, vals: vals}
	pe.due = r.env.now() + r.rto(pe)
	r.pend[rtKey{dst, pe.seq}] = pe
	r.xmit(dst, rtTagData, pe.seq, vals)
}

func (r *rt) rto(pe *rtPend) int64 {
	base, max := rtSimRTO, rtSimMax
	if r.env.kernel == nil {
		base, max = rtWallRTO, rtWallMax
	}
	return int64(backoff.Jittered(time.Duration(base), time.Duration(max), pe.attempts,
		backoff.Key(int(r.p.MyTID()), int(pe.dst), int(pe.seq), pe.attempts)))
}

// xmit puts one frame on the wire, subject to the fault plan. Delay
// verdicts are folded into the next retransmission interval rather than
// modeled in-flight — the modeled bus already has latency of its own.
func (r *rt) xmit(dst pvm.TID, tag int, seq int64, vals []int64) {
	size := 8 * (len(vals) + 2)
	n := 1
	if r.env.inj != nil {
		v := r.env.inj.Decide(r.env.now(), r.p.Host(), r.env.hosts[dst], size)
		if v.Drop || v.Corrupt {
			n = 0
		} else if v.Dup {
			n = 2
		}
	}
	for i := 0; i < n; i++ {
		r.p.InitSend()
		r.p.PkInt(seq, int64(len(vals)))
		if len(vals) > 0 {
			r.p.PkInt(vals...)
		}
		r.p.Send(dst, tag)
	}
}

// poll drains the mailbox: data frames are acked (always — the ack pays
// for dedup) and delivered once; ack frames retire pending retransmits.
func (r *rt) poll() {
	for {
		b := r.p.NRecv(pvm.AnySource, rtTagData)
		if b == nil {
			break
		}
		src := b.Sender()
		seq := r.p.UpkInt(b)
		n := int(r.p.UpkInt(b))
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			vals[i] = r.p.UpkInt(b)
		}
		r.xmit(src, rtTagAck, seq, nil)
		k := rtKey{src, seq}
		if !r.seen[k] {
			r.seen[k] = true
			r.inbox = append(r.inbox, rtMsg{Src: src, Vals: vals})
		}
	}
	for {
		b := r.p.NRecv(pvm.AnySource, rtTagAck)
		if b == nil {
			break
		}
		delete(r.pend, rtKey{b.Sender(), r.p.UpkInt(b)})
	}
}

// step runs one scheduler quantum: poll, retransmit what is due, advance
// time (simulated CPU work on the sim engine, a short sleep on the real
// one).
func (r *rt) step() {
	r.poll()
	now := r.env.now()
	// Sorted order: map iteration order would randomize the injector's
	// draw sequence and break seed-for-seed reproducibility on the sim
	// engine.
	var due []*rtPend
	for _, pe := range r.pend {
		if now >= pe.due {
			due = append(due, pe)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].dst != due[j].dst {
			return due[i].dst < due[j].dst
		}
		return due[i].seq < due[j].seq
	})
	for _, pe := range due {
		pe.attempts++
		pe.due = now + r.rto(pe)
		r.xmit(pe.dst, rtTagData, pe.seq, pe.vals)
	}
	if r.env.kernel != nil {
		r.p.Compute(rtSimTick)
		return
	}
	time.Sleep(rtWallTick)
}

// recv returns the next delivered message, stepping until one arrives or
// the budget runs out (nil).
func (r *rt) recv(budget *int) *rtMsg {
	for {
		if len(r.inbox) > 0 {
			msg := r.inbox[0]
			r.inbox = r.inbox[1:]
			return &msg
		}
		if *budget <= 0 {
			return nil
		}
		*budget--
		r.step()
	}
}

// flush keeps stepping until every sent message is acked or the budget
// runs out — a sender's graceful drain before exit.
func (r *rt) flush(budget *int) {
	for len(r.pend) > 0 && *budget > 0 {
		*budget--
		r.step()
	}
}
