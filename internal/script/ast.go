package script

// Script is a parsed MSL program: an optional set of function declarations
// followed by the Messenger's main body. The body is what starts executing
// when the Messenger is injected.
type Script struct {
	Funcs []*FuncDecl
	Body  []Stmt
}

// FuncDecl is a user-defined script function. Parameters and bare
// identifiers inside the body are locals; Messenger variables are reached
// via msgr.x.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []string
	Body   []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Expr is an expression node.
type Expr interface {
	exprNode()
	// StartPos returns the position of the expression for diagnostics.
	StartPos() Pos
}

// VarSpace identifies which variable space a name lives in.
type VarSpace uint8

// Variable spaces (paper §2.1).
const (
	// SpaceAuto is a bare identifier: a Messenger variable in the main
	// body, a local inside a function. Resolved at compile time.
	SpaceAuto VarSpace = iota
	// SpaceMsgr is an explicit Messenger variable (msgr.x).
	SpaceMsgr
	// SpaceNode is a node variable (node.x).
	SpaceNode
	// SpaceNet is a read-only network variable ($x).
	SpaceNet
)

// --- Statements ---

// AssignStmt is target = value, target += value, etc. Op is 0 for plain
// assignment or one of PLUS, MINUS for compound forms.
type AssignStmt struct {
	Pos    Pos
	Target Expr // VarExpr or IndexExpr
	Op     Kind
	Value  Expr
}

// IncDecStmt is x++ or x--.
type IncDecStmt struct {
	Pos    Pos
	Target Expr
	Dec    bool
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if (cond) then else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// ForStmt is for (init; cond; post) body. Init and Post may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body []Stmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from a function (with optional value). In the main
// body, return terminates the Messenger like end.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// EndStmt terminates the Messenger immediately.
type EndStmt struct{ Pos Pos }

// NavKind distinguishes the three navigational statements.
type NavKind uint8

// Navigational statement kinds.
const (
	NavHop NavKind = iota
	NavCreate
	NavDelete
)

// String names the navigational statement.
func (k NavKind) String() string {
	switch k {
	case NavHop:
		return "hop"
	case NavCreate:
		return "create"
	default:
		return "delete"
	}
}

// NavField identifies one parameter of a navigational statement.
type NavField uint8

// Navigational parameters, as in the paper: logical node/link/direction and
// daemon node/link/direction.
const (
	FieldLN NavField = iota
	FieldLL
	FieldLDir
	FieldDN
	FieldDL
	FieldDDir
	numNavFields
)

var navFieldNames = map[string]NavField{
	"ln": FieldLN, "ll": FieldLL, "ldir": FieldLDir,
	"dn": FieldDN, "dl": FieldDL, "ddir": FieldDDir,
}

// NavStmt is hop(...), create(...), or delete(...). Each field holds a list
// of value expressions; lists are zipped into destination triples (arms).
// Absent fields default per the paper: "*" for hop/delete matching and for
// daemon specs, "~" (unnamed) for created node and link names.
type NavStmt struct {
	Pos    Pos
	Kind   NavKind
	Fields [numNavFields][]Expr
	All    bool
}

func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*EndStmt) stmtNode()      {}
func (*NavStmt) stmtNode()      {}

// --- Expressions ---

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// NumLit is a floating-point literal.
type NumLit struct {
	Pos Pos
	V   float64
}

// StrLit is a string literal.
type StrLit struct {
	Pos Pos
	V   string
}

// NilLit is the nil literal.
type NilLit struct{ Pos Pos }

// VarExpr reads a variable from one of the variable spaces.
type VarExpr struct {
	Pos   Pos
	Space VarSpace
	Name  string
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// BinaryExpr is a binary operation; && and || short-circuit.
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

// CallExpr invokes a user-defined script function, a builtin, or a
// registered native function, resolved in that order at compile time.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// IndexExpr is base[index].
type IndexExpr struct {
	Pos  Pos
	Base Expr
	Idx  Expr
}

// ArrayLit is [e1, e2, ...].
type ArrayLit struct {
	Pos   Pos
	Elems []Expr
}

// AssignExpr is C's assignment-as-expression (target = value), needed for
// idioms like while ((task = next_task()) != nil) from the paper's Fig. 3.
// Its value is the assigned value.
type AssignExpr struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

func (*IntLit) exprNode()     {}
func (*NumLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*NilLit) exprNode()     {}
func (*VarExpr) exprNode()    {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*ArrayLit) exprNode()   {}
func (*AssignExpr) exprNode() {}

// StartPos implementations.
func (e *IntLit) StartPos() Pos     { return e.Pos }
func (e *NumLit) StartPos() Pos     { return e.Pos }
func (e *StrLit) StartPos() Pos     { return e.Pos }
func (e *NilLit) StartPos() Pos     { return e.Pos }
func (e *VarExpr) StartPos() Pos    { return e.Pos }
func (e *UnaryExpr) StartPos() Pos  { return e.Pos }
func (e *BinaryExpr) StartPos() Pos { return e.Pos }
func (e *CallExpr) StartPos() Pos   { return e.Pos }
func (e *IndexExpr) StartPos() Pos  { return e.Pos }
func (e *ArrayLit) StartPos() Pos   { return e.Pos }
func (e *AssignExpr) StartPos() Pos { return e.Pos }
