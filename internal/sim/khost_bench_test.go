package sim

import (
	"testing"
)

// BenchmarkKHostTimers is the 1k-host self-rescheduling timer workload the
// mgvt queue leg measures, as an in-package benchmark so queue changes can
// be profiled where the internals are visible.
func BenchmarkKHostTimers(b *testing.B) {
	for _, impl := range []string{"heap", "calendar", "adaptive"} {
		b.Run(impl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := NewWithQueue(impl)
				var fired int64
				events := int64(200_000)
				for h := 0; h < 1000; h++ {
					period := Time(1000 + 17*h)
					var tick func()
					tick = func() {
						fired++
						if fired < events {
							k.After(period, tick)
						}
					}
					k.After(period, tick)
				}
				k.Run()
			}
		})
	}
}
