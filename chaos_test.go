package messengers

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"messengers/internal/apps"
	"messengers/internal/faults"
	"messengers/internal/lan"
	"messengers/internal/sim"
)

// chaosPlan is the chaos acceptance scenario scaled to a run whose
// fault-free makespan is clean: 5% uniform message loss plus one daemon
// crash at ~30% of the makespan that restarts a tenth of a makespan later.
func chaosPlan(clean sim.Time, daemon int) *faults.Plan {
	return &faults.Plan{
		Seed: 1,
		Drop: 0.05,
		Crashes: []faults.Crash{{
			Daemon:       daemon,
			At:           int64(clean) * 3 / 10,
			RestartAfter: int64(clean) / 10,
		}},
	}
}

// TestChaosMandelCompletes is the acceptance run: the E1 Mandelbrot
// configuration under 5% message loss plus one daemon crash/restart must
// still produce the exact sequential image — every block accounted for —
// with the recovery machinery (retransmit, respawn, adoption) doing real
// work along the way.
func TestChaosMandelCompletes(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := apps.PaperMandelParams(128, 8, 4)
	clean, err := apps.MandelMessengers(cm, p)
	if err != nil {
		t.Fatalf("fault-free probe run: %v", err)
	}

	p.Faults = chaosPlan(clean.Elapsed, 2)
	got, err := apps.MandelMessengers(cm, p)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if want := apps.MandelSequential(cm, p); got.Checksum != want.Checksum {
		t.Errorf("chaos image checksum = %x, sequential = %x", got.Checksum, want.Checksum)
	}

	// Guard against a vacuous pass: the plan must have actually dropped
	// traffic and killed the daemon, and recovery must have responded.
	for _, c := range []struct {
		name string
		want int64
	}{
		{"daemon.deaths", 1},
		{"daemon.restarts", 1},
	} {
		if got := got.Obs.CounterValue(c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	for _, name := range []string{"faults.injected.drop", "msgr.retx"} {
		if got.Obs.CounterValue(name) == 0 {
			t.Errorf("%s = 0; the chaos run injected/recovered nothing", name)
		}
	}
}

// TestChaosFaultFreeUnperturbed guards the other half of the acceptance
// bar: with no fault plan attached, a run of the same configuration is
// untouched by the recovery code paths — identical makespan and image to
// a second fault-free run, and zero recovery traffic.
func TestChaosFaultFreeUnperturbed(t *testing.T) {
	cm := lan.DefaultCostModel()
	p := apps.PaperMandelParams(128, 8, 4)
	a, err := apps.MandelMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := apps.MandelMessengers(cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Checksum != b.Checksum {
		t.Errorf("fault-free runs diverge: (%v, %x) vs (%v, %x)",
			a.Elapsed, a.Checksum, b.Elapsed, b.Checksum)
	}
	for _, name := range []string{"msgr.retx", "msgr.dedup", "msgr.respawns"} {
		if got := a.Obs.CounterValue(name); got != 0 {
			t.Errorf("%s = %d in a fault-free run", name, got)
		}
	}
}

// TestChaosTraceDeterminism pins the injected-fault determinism guarantee:
// the same seed and plan produce a byte-identical event trace across two
// chaos runs, and the trace matches testdata/chaos_trace.json (refresh
// with go test -run ChaosTraceDeterminism -update). The faults module
// draws all randomness from the plan's seed and partition checks consume
// none, so any divergence means injection or recovery has picked up a
// nondeterministic input.
func TestChaosTraceDeterminism(t *testing.T) {
	cm := lan.DefaultCostModel()
	base := apps.PaperMandelParams(64, 4, 2)
	clean, err := apps.MandelMessengers(cm, base)
	if err != nil {
		t.Fatalf("fault-free probe run: %v", err)
	}
	want := apps.MandelSequential(cm, base)

	export := func() []byte {
		p := base
		p.Trace = NewTracer()
		p.Faults = chaosPlan(clean.Elapsed, 1)
		res, err := apps.MandelMessengers(cm, p)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		if res.Checksum != want.Checksum {
			t.Errorf("chaos image checksum = %x, sequential = %x", res.Checksum, want.Checksum)
		}
		if res.Obs.CounterValue("daemon.deaths") != 1 {
			t.Error("plan crashed no daemon; determinism test is vacuous")
		}
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, p.Trace); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical chaos runs exported different traces (%d vs %d bytes)", len(a), len(b))
	}

	golden := filepath.Join("testdata", "chaos_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, pinned) {
		t.Errorf("chaos trace differs from %s (run with -update after intentional changes)", golden)
	}
}
