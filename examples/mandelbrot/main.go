// Mandelbrot: the paper's §3.1 manager/worker computation as a real
// MESSENGERS program (Figure 3), run on concurrent daemons on this machine.
//
// The entire distributed application is one eleven-line script: each
// replica of the injected Messenger is a "smart worker" that shuttles
// between the central task pool and its own work node — there is no manager
// process. The compute kernel is an ordinary Go function registered as a
// native; the assembled image is written to mandelbrot.pgm.
//
//	go run ./examples/mandelbrot [-size 512] [-grid 8] [-workers 4]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"messengers"
)

// managerWorker is the paper's Figure 3 program (with the result variable
// cleared after depositing, so it is not carried back out).
const managerWorker = `
	create(ALL);
	hop(ll = $last);
	while ((task = next_task()) != nil) {
		hop(ll = $last);
		res = compute(task);
		hop(ll = $last);
		deposit(task, res);
		res = nil;
	}
`

func main() {
	size := flag.Int("size", 512, "image edge in pixels")
	grid := flag.Int("grid", 8, "grid*grid blocks")
	workers := flag.Int("workers", 4, "worker daemons")
	maxIter := flag.Int("iters", 256, "maximum iterations (colors)")
	out := flag.String("o", "mandelbrot.pgm", "output image")
	flag.Parse()

	// The central node lives on daemon 0; create(ALL) puts one worker node
	// on each spoke of the star.
	sys, err := messengers.NewRealSystem(messengers.Config{
		Daemons:  *workers + 1,
		Topology: messengers.Star(*workers + 1),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const region = 2.4 // the paper's region: (-2.0, -1.2) to (0.4, 1.2)
	blocks := *grid * *grid
	rows := make([][]uint16, *grid) // row of blocks -> pixel data per block
	for i := range rows {
		rows[i] = make([]uint16, *size**size / *grid)
	}
	img := make([]uint16, *size**size)

	sys.RegisterNative("next_task", func(ctx *messengers.NativeCtx, _ []messengers.Value) (messengers.Value, error) {
		next := ctx.NodeVar("next").AsInt()
		if next >= int64(blocks) {
			return messengers.NilValue(), nil
		}
		ctx.SetNodeVar("next", messengers.IntValue(next+1))
		return messengers.IntValue(next), nil
	})

	sys.RegisterNative("compute", func(_ *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		task := int(args[0].AsInt())
		y0 := (task / *grid) * (*size / *grid)
		x0 := (task % *grid) * (*size / *grid)
		bw := *size / *grid
		pix := make([]byte, 2*bw*bw)
		i := 0
		for y := y0; y < y0+bw; y++ {
			ci := -1.2 + region*(float64(y)+0.5)/float64(*size)
			for x := x0; x < x0+bw; x++ {
				cr := -2.0 + region*(float64(x)+0.5)/float64(*size)
				n := escape(cr, ci, *maxIter)
				pix[i] = byte(n)
				pix[i+1] = byte(n >> 8)
				i += 2
			}
		}
		return messengers.BytesValue(pix), nil
	})

	sys.RegisterNative("deposit", func(ctx *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		task := int(args[0].AsInt())
		data := args[1].AsBytes()
		bw := *size / *grid
		y0 := (task / *grid) * bw
		x0 := (task % *grid) * bw
		i := 0
		for y := y0; y < y0+bw; y++ {
			for x := x0; x < x0+bw; x++ {
				img[y**size+x] = uint16(data[i]) | uint16(data[i+1])<<8
				i += 2
			}
		}
		ctx.SetNodeVar("done", messengers.IntValue(ctx.NodeVar("done").AsInt()+1))
		return messengers.NilValue(), nil
	})

	if err := sys.CompileAndRegister("manager_worker", managerWorker); err != nil {
		log.Fatal(err)
	}
	if err := sys.Inject(0, "manager_worker", nil); err != nil {
		log.Fatal(err)
	}
	sys.Wait()
	for _, err := range sys.Errors() {
		log.Fatalf("messenger failed: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P5\n%d %d\n%d\n", *size, *size, *maxIter)
	for _, p := range img {
		w.WriteByte(byte(p >> 8))
		w.WriteByte(byte(p))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	vars, _ := sys.ReadNodeVars(0, "init")
	fmt.Printf("computed %v blocks with %d self-coordinating workers -> %s\n",
		vars["done"].Format(), *workers, *out)
}

// escape is the z' = z^2 + c iteration count.
func escape(cr, ci float64, maxIter int) int {
	var zr, zi float64
	for n := 0; n < maxIter; n++ {
		zr2, zi2 := zr*zr, zi*zi
		if zr2+zi2 > 4 {
			return n
		}
		zr, zi = zr2-zi2+cr, 2*zr*zi+ci
	}
	return maxIter
}
