// mtrace runs a MESSENGERS workload with the observability subsystem
// attached and writes a Chrome trace_event JSON file (load it in Perfetto
// or chrome://tracing: one track per daemon plus the shared-bus track on
// simulated runs) along with a metrics summary.
//
// Workloads are either a named benchmark or an MSL script file:
//
//	mtrace -bench ringtoken -o trace.json          # sim engine (default)
//	mtrace -bench ringtoken -engine real           # goroutine daemons
//	mtrace -bench mandel -workers 4 -size 64       # paper app, sim only
//	mtrace -bench matmul -m 2 -s 8                 # paper app, sim only
//	mtrace -script prog.msl -daemons 3             # your own script
//
// The metrics registry (the same counters the benchmark harness reads) is
// printed as an aligned table, or written as CSV with -metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"messengers"
	"messengers/internal/apps"
	"messengers/internal/lan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mtrace: ")
	var (
		engine  = flag.String("engine", "sim", "engine: sim (simulated cluster) or real (goroutine daemons)")
		bench   = flag.String("bench", "ringtoken", "workload: ringtoken, mandel, or matmul")
		script  = flag.String("script", "", "run this MSL script file instead of a named benchmark")
		daemons = flag.Int("daemons", 4, "daemon count (ringtoken and -script)")
		laps    = flag.Int("laps", 2, "token laps (ringtoken)")
		size    = flag.Int("size", 64, "image size (mandel)")
		grid    = flag.Int("grid", 4, "block grid (mandel)")
		workers = flag.Int("workers", 4, "worker count (mandel)")
		mdim    = flag.Int("m", 2, "processor grid dimension (matmul)")
		sdim    = flag.Int("s", 8, "block size (matmul)")
		out     = flag.String("o", "trace.json", "Chrome trace output file")
		metOut  = flag.String("metrics", "", "metrics CSV output file (default: print a table)")
	)
	flag.Parse()

	tr := messengers.NewTracer()
	reg := messengers.NewMetrics()

	var err error
	switch {
	case *script != "":
		err = runScript(tr, reg, *engine, *script, *daemons)
	case *bench == "ringtoken":
		err = runRingToken(tr, reg, *engine, *daemons, *laps)
	case *bench == "mandel":
		err = runMandel(tr, reg, *engine, *size, *grid, *workers)
	case *bench == "matmul":
		err = runMatmul(tr, reg, *engine, *mdim, *sdim)
	default:
		err = fmt.Errorf("unknown benchmark %q (want ringtoken, mandel, or matmul)", *bench)
	}
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := messengers.WriteChromeTrace(f, tr); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d events, %d tracks)\n", *out, tr.Len(), len(tr.Tracks()))

	if *metOut != "" {
		mf, err := os.Create(*metOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := messengers.WriteMetricsCSV(mf, reg); err != nil {
			log.Fatal(err)
		}
		if err := mf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *metOut)
	} else {
		fmt.Print(messengers.FormatMetrics(reg))
	}
}

// newSystem builds a traced system on the requested engine.
func newSystem(tr *messengers.Tracer, reg *messengers.Metrics, engine string, daemons int) (*messengers.System, error) {
	cfg := messengers.Config{Daemons: daemons, Trace: tr, Metrics: reg}
	switch engine {
	case "sim":
		return messengers.NewSimSystem(cfg)
	case "real":
		return messengers.NewRealSystem(cfg)
	default:
		return nil, fmt.Errorf("unknown engine %q (want sim or real)", engine)
	}
}

// run drives a system to quiescence on either engine and reports the run's
// errors.
func run(sys *messengers.System) error {
	if sys.Kernel() != nil {
		elapsed := sys.RunSim()
		fmt.Printf("simulated time: %v\n", elapsed)
	} else {
		sys.Wait()
		sys.FlushVMProfiles()
	}
	if errs := sys.Errors(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// runScript compiles an MSL file and injects one Messenger of it into
// daemon 0's init node.
func runScript(tr *messengers.Tracer, reg *messengers.Metrics, engine, path string, daemons int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sys, err := newSystem(tr, reg, engine, daemons)
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.CompileAndRegister("main", string(src)); err != nil {
		return err
	}
	if err := sys.Inject(0, "main", nil); err != nil {
		return err
	}
	return run(sys)
}

// tokenScript circulates the ring stamping every node, then injects the
// auditor (adapted from examples/ringtoken).
const tokenScript = `
	for (k = 0; k < laps * $ndaemons; k++) {
		node.stamps = node.stamps + 1;
		hop(ll = "ring", ldir = +);
	}
	inject("auditor", "r0");
`

// auditorScript walks one lap tallying stamps, reports the total, and
// dismantles the ring with delete.
const auditorScript = `
	total = 0;
	for (k = 0; k < $ndaemons; k++) {
		total = total + node.stamps;
		if (k < $ndaemons - 1) { hop(ll = "ring", ldir = +); }
	}
	report(total);
	for (k = 0; k < $ndaemons; k++) {
		delete(ll = "ring", ldir = +);
	}
`

// runRingToken exercises the full Messenger lifecycle — net_builder, hops,
// runtime injection, native calls, delete-teardown — on either engine.
func runRingToken(tr *messengers.Tracer, reg *messengers.Metrics, engine string, daemons, laps int) error {
	sys, err := newSystem(tr, reg, engine, daemons)
	if err != nil {
		return err
	}
	defer sys.Close()

	spec := messengers.NetSpec{}
	for i := 0; i < daemons; i++ {
		spec.Nodes = append(spec.Nodes, messengers.NetNode{
			Name: fmt.Sprintf("r%d", i), Daemon: i,
		})
		spec.Links = append(spec.Links, messengers.NetLink{
			A:    fmt.Sprintf("r%d", i),
			B:    fmt.Sprintf("r%d", (i+1)%daemons),
			Name: "ring", Dir: 1,
		})
	}
	if err := sys.BuildNetwork(spec); err != nil {
		return err
	}

	var total int64
	sys.RegisterNative("report", func(_ *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		total = args[0].AsInt()
		return messengers.NilValue(), nil
	})
	if err := sys.CompileAndRegister("token", tokenScript); err != nil {
		return err
	}
	if err := sys.CompileAndRegister("auditor", auditorScript); err != nil {
		return err
	}
	err = sys.InjectAt(0, "token", "r0", map[string]messengers.Value{
		"laps": messengers.IntValue(int64(laps)),
	})
	if err != nil {
		return err
	}
	if err := run(sys); err != nil {
		return err
	}
	if want := int64(laps * daemons); total != want {
		return fmt.Errorf("ringtoken audited %d stamps, want %d", total, want)
	}
	return nil
}

func runMandel(tr *messengers.Tracer, reg *messengers.Metrics, engine string, size, grid, workers int) error {
	if engine != "sim" {
		return fmt.Errorf("the mandel benchmark runs on the simulated engine only")
	}
	p := apps.PaperMandelParams(size, grid, workers)
	p.Trace = tr
	r, err := apps.MandelMessengers(lan.DefaultCostModel(), p)
	if err != nil {
		return err
	}
	merge(reg, r.Obs)
	fmt.Printf("simulated time: %v, checksum %x\n", r.Elapsed, r.Checksum)
	return nil
}

func runMatmul(tr *messengers.Tracer, reg *messengers.Metrics, engine string, m, s int) error {
	if engine != "sim" {
		return fmt.Errorf("the matmul benchmark runs on the simulated engine only")
	}
	p := apps.MatmulParams{M: m, S: s, Host: lan.SPARC110, Seed: 7, Trace: tr}
	r, err := apps.MatmulMessengers(lan.DefaultCostModel(), p)
	if err != nil {
		return err
	}
	merge(reg, r.Obs)
	fmt.Printf("simulated time: %v\n", r.Elapsed)
	return nil
}

// merge folds a run's private registry into the one mtrace reports (the
// paper apps build their own registry per run).
func merge(dst, src *messengers.Metrics) {
	for _, s := range src.Snapshot() {
		switch s.Kind.String() {
		case "counter":
			dst.Counter(s.Name).Add(s.Value) //lint:obsname relaying names already registered elsewhere
		case "gauge":
			dst.Gauge(s.Name).Set(s.Value) //lint:obsname relaying names already registered elsewhere
		default:
			// Histograms cannot be reconstructed from a snapshot; carry
			// the count and bounds as gauges.
			dst.Gauge(s.Name + ".count").Set(s.Count) //lint:obsname relaying names already registered elsewhere
			dst.Gauge(s.Name + ".max").Set(s.Max)     //lint:obsname relaying names already registered elsewhere
		}
	}
}
