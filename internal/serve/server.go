// Package serve turns a MESSENGERS system into a multi-tenant service: an
// admission front end that accepts MSL programs from untrusted tenants,
// verifies them, and injects them as budgeted sessions.
//
// The paper's daemons execute whatever Messengers reach them; serve adds
// the operational layer a shared deployment needs. Every submission is
// compiled (or decoded) through the bytecode verifier before it can
// execute. Each tenant has an account with enforced quotas: a per-session
// instruction-step budget metered inside the VM, a cap on serialized
// Messenger state, and a hop-rate token bucket charged at nav boundaries.
// Session admission itself goes through a second token bucket with a
// bounded fair-share queue behind it; when the queue is full the server
// rejects with explicit backpressure (HTTP 429 via the handler in http.go)
// instead of letting latency collapse.
//
// Policy lives here; mechanism lives in internal/core, which consults the
// server through the core.Gate interface without importing this package.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"messengers/internal/bytecode"
	"messengers/internal/compile"
	"messengers/internal/core"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// Reject is a typed admission refusal. It is the only error kind Submit
// returns for policy decisions, so callers can map it to a transport
// status (HTTPStatus) and distinguish backpressure from bad programs.
type Reject struct {
	Code RejectCode
	Msg  string
}

type RejectCode int

const (
	// RejectUnknownTenant: no account for the tenant ID.
	RejectUnknownTenant RejectCode = iota + 1
	// RejectVerify: the program failed compilation or bytecode verification.
	RejectVerify
	// RejectTooLarge: the program exceeds the tenant's size cap.
	RejectTooLarge
	// RejectBackpressure: admission bucket empty and queue full — retry later.
	RejectBackpressure
	// RejectDraining: the server is shutting down.
	RejectDraining
	// RejectIllTyped: the kind-flow verifier proved the program faults on
	// every execution (a distinct 400 from RejectVerify so tenants can tell
	// a type proof from a parse error, and so stats count it separately).
	RejectIllTyped
	// RejectStateBound: the verifier derived a static bound on the
	// Messenger's serialized state and it already exceeds the tenant's
	// memory cap — the session would be evicted at its first nav boundary,
	// so it is refused before a single VM step.
	RejectStateBound
)

func (r *Reject) Error() string { return fmt.Sprintf("serve: %s (%d)", r.Msg, r.HTTPStatus()) }

// HTTPStatus maps the rejection to its transport status code.
func (r *Reject) HTTPStatus() int {
	switch r.Code {
	case RejectUnknownTenant:
		return 403
	case RejectVerify, RejectIllTyped:
		return 400
	case RejectTooLarge, RejectStateBound:
		return 413
	case RejectBackpressure:
		return 429
	case RejectDraining:
		return 503
	}
	return 500
}

// Submission is one tenant request to run an MSL program.
type Submission struct {
	Tenant string
	// Name labels the program (namespaced per tenant in the registry).
	Name string
	// Source is MSL text, compiled and verified on first sight. Bytecode,
	// if set, takes precedence and is decoded through the same verifier.
	Source   string
	Bytecode []byte
	// Node is the logical node to inject at ("" = server default).
	Node string
	// Daemon picks the daemon (-1 = server round-robin).
	Daemon int
	Vars   map[string]value.Value
}

// Status reports what happened to an accepted submission.
type Status int

const (
	StatusAdmitted Status = iota + 1
	StatusQueued
)

// Completion describes one finished session.
type Completion struct {
	Tenant  string
	Session uint64
	// Evicted is true when the session was destroyed for exceeding a quota
	// rather than running to completion.
	Evicted bool
	Reason  string
	// Latency is submit-to-completion in engine time (queue wait included).
	Latency sim.Time
	// Steps is the session's metered instruction count.
	Steps int64
}

// Config configures a Server.
type Config struct {
	Tenants []TenantConfig
	// DefaultNode is the injection node when a submission names none.
	DefaultNode string
	// Clock supplies engine time for token buckets and latency. On the sim
	// engine pass Kernel.Now for virtual time; nil defaults to wall time.
	Clock func() sim.Time
	// After schedules a callback (the queue pump re-arm) after a delay. On
	// the sim engine pass a Kernel.At wrapper; nil defaults to
	// time.AfterFunc.
	After func(d sim.Time, fn func())
	// Metrics receives serve.* instruments (nil = no metrics).
	Metrics *obs.Metrics
	// OnComplete, if set, is invoked for every session completion, on the
	// daemon executor that finished the session. Keep it fast.
	OnComplete func(Completion)
}

// serverObs holds the server-wide instruments.
type serverObs struct {
	admitted, queued, completed, evicted *obs.Counter
	rejVerify, rejTenant, rejTooLarge    *obs.Counter
	rejBackpressure, rejDraining         *obs.Counter
	rejIllTyped, rejStateBound           *obs.Counter
	unknown                              *obs.Counter
	queueDepth, liveSessions             *obs.Gauge
}

func newServerObs(m *obs.Metrics) *serverObs {
	return &serverObs{
		admitted:        m.Counter("serve.admitted"),
		queued:          m.Counter("serve.queued"),
		completed:       m.Counter("serve.completed"),
		evicted:         m.Counter("serve.evicted"),
		rejVerify:       m.Counter("serve.reject.verify"),
		rejTenant:       m.Counter("serve.reject.tenant"),
		rejTooLarge:     m.Counter("serve.reject.toolarge"),
		rejBackpressure: m.Counter("serve.reject.backpressure"),
		rejDraining:     m.Counter("serve.reject.draining"),
		rejIllTyped:     m.Counter("serve.reject.illtyped"),
		rejStateBound:   m.Counter("serve.reject.statebound"),
		unknown:         m.Counter("serve.sessions.unknown"),
		queueDepth:      m.Gauge("serve.queue.depth"),
		liveSessions:    m.Gauge("serve.sessions.live"),
	}
}

type progKey struct {
	tenant, name, content string
}

// Server is the admission front end. It implements core.Gate.
type Server struct {
	sys   *core.System
	cfg   Config
	clock func() sim.Time
	after func(sim.Time, func())
	som   *serverObs

	// mu guards admission state: accounts' queues are reached through it
	// for fair-share pumping, plus the program cache, session counter,
	// daemon cursor, and drain flag. Never held while taking smu.
	mu          sync.Mutex
	accounts    map[string]*account
	order       []string // fair-share round-robin order (registration order)
	rr          int      // next account offset the pump starts from
	rrDaemon    int
	progCache   map[progKey]*bytecode.Program
	nextSession uint64
	queueDepth  int // total queued across accounts
	pumpArmed   bool
	draining    bool

	// smu guards only membership of the live-session table. Gate lookups
	// take the read lock; completion removes under the write lock.
	smu      sync.RWMutex
	sessions map[uint64]*session

	// idleMu/idleCond track total live sessions for WaitIdle.
	idleMu    sync.Mutex
	idleCond  *sync.Cond
	totalLive int
}

// New builds a Server over sys and attaches it as the system's admission
// gate. Call before injecting any tenant work.
func New(sys *core.System, cfg Config) (*Server, error) {
	s := &Server{
		sys:       sys,
		cfg:       cfg,
		clock:     cfg.Clock,
		after:     cfg.After,
		som:       newServerObs(cfg.Metrics),
		accounts:  make(map[string]*account),
		progCache: make(map[progKey]*bytecode.Program),
		sessions:  make(map[uint64]*session),
	}
	s.idleCond = sync.NewCond(&s.idleMu)
	if s.clock == nil {
		start := time.Now() //lint:wallclock serve defaults to wall time off the sim engine
		s.clock = func() sim.Time {
			return sim.Time(time.Since(start)) //lint:wallclock see above
		}
	}
	if s.after == nil {
		s.after = func(d sim.Time, fn func()) {
			time.AfterFunc(time.Duration(d), fn) //lint:wallclock see above
		}
	}
	for _, tc := range cfg.Tenants {
		if tc.ID == "" {
			return nil, fmt.Errorf("serve: tenant with empty ID")
		}
		if _, dup := s.accounts[tc.ID]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant %q", tc.ID)
		}
		s.accounts[tc.ID] = newAccount(tc, cfg.Metrics)
		s.order = append(s.order, tc.ID)
	}
	sys.SetAdmission(s)
	return s, nil
}

// Session implements core.Gate: resolve the quota gate for a
// materializing Messenger. Unknown sessions get a deny-everything gate.
func (s *Server) Session(tenant string, id uint64) core.SessionGate {
	s.smu.RLock()
	ss := s.sessions[id]
	s.smu.RUnlock()
	if ss == nil || ss.acct.id != tenant {
		s.som.unknown.Inc()
		return deniedGate{}
	}
	return ss
}

// SessionWork implements core.Gate: mirror per-session liveness deltas.
// Zero is terminal — replication increments before the parent releases its
// slot, so a session's count never rebounds from zero.
func (s *Server) SessionWork(tenant string, id uint64, delta int) {
	s.smu.RLock()
	ss := s.sessions[id]
	s.smu.RUnlock()
	if ss == nil || ss.acct.id != tenant {
		return
	}
	if ss.live.Add(int64(delta)) == 0 {
		s.finish(ss)
	}
}

// finish retires a completed (or evicted) session: bookkeeping, the
// completion callback, and a pump pass for the admission slot it freed.
func (s *Server) finish(ss *session) {
	s.smu.Lock()
	if _, live := s.sessions[ss.id]; !live {
		s.smu.Unlock()
		return
	}
	delete(s.sessions, ss.id)
	s.smu.Unlock()

	a := ss.acct
	a.om.live.Set(a.live.Add(-1))
	var used int64
	if ss.budget > 0 {
		left := ss.stepsLeft.Load()
		used = ss.budget - left
		if left < 0 {
			// The meter never over-debits (the VM rolls back the tripping
			// instruction), so a negative remainder is a quota violation.
			a.violations.Add(1)
		}
		for {
			max := a.maxSessionSteps.Load()
			if used <= max || a.maxSessionSteps.CompareAndSwap(max, used) {
				break
			}
		}
	}
	evicted := ss.evict.Load()
	if evicted {
		a.evicted.Add(1)
		a.om.evicted.Inc()
		s.som.evicted.Inc()
	} else {
		a.completed.Add(1)
		a.om.completed.Inc()
		s.som.completed.Inc()
	}
	if s.cfg.OnComplete != nil {
		reason, _ := ss.reason.Load().(string)
		s.cfg.OnComplete(Completion{
			Tenant:  a.id,
			Session: ss.id,
			Evicted: evicted,
			Reason:  reason,
			Latency: s.clock() - ss.start,
			Steps:   used,
		})
	}

	s.idleMu.Lock()
	s.totalLive--
	s.som.liveSessions.Set(int64(s.totalLive))
	if s.totalLive == 0 {
		s.idleCond.Broadcast()
	}
	s.idleMu.Unlock()

	s.pump()
}

// Submit admits, queues, or rejects one submission. On success the
// returned ID identifies the session in completions and stats.
func (s *Server) Submit(sub Submission) (uint64, Status, error) {
	now := s.clock()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return 0, 0, s.rejected(nil, &Reject{RejectDraining, "server draining"})
	}
	a := s.accounts[sub.Tenant]
	if a == nil {
		s.mu.Unlock()
		return 0, 0, s.rejected(nil, &Reject{RejectUnknownTenant, fmt.Sprintf("unknown tenant %q", sub.Tenant)})
	}
	prog, rej := s.admitProgramLocked(a, sub)
	if rej != nil {
		s.mu.Unlock()
		return 0, 0, s.rejected(a, rej)
	}

	s.nextSession++
	p := &pending{
		id:     s.nextSession,
		prog:   prog,
		node:   sub.Node,
		daemon: sub.Daemon,
		vars:   sub.Vars,
		enq:    now,
	}
	if p.node == "" {
		p.node = s.cfg.DefaultNode
	}

	// Admit immediately only from an empty queue (otherwise the newcomer
	// would jump ahead of queued work).
	a.mu.Lock()
	canNow := len(a.queue) == 0 && s.admitNowLocked(a, now)
	if !canNow {
		if len(a.queue) >= a.q.MaxQueue {
			a.mu.Unlock()
			s.mu.Unlock()
			return 0, 0, s.rejected(a, &Reject{RejectBackpressure,
				fmt.Sprintf("tenant %q admission queue full (%d)", a.id, a.q.MaxQueue)})
		}
		a.queue = append(a.queue, p)
		a.om.queue.Set(int64(len(a.queue)))
		s.queueDepth++
		s.som.queueDepth.Set(int64(s.queueDepth))
		a.mu.Unlock()
		s.armPumpLocked(now)
		s.mu.Unlock()
		s.som.queued.Inc()
		return p.id, StatusQueued, nil
	}
	a.mu.Unlock()
	err := s.launchLocked(a, p, now)
	s.mu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	return p.id, StatusAdmitted, nil
}

// admitProgramLocked verifies the submitted program, caching per
// (tenant, name, content). Bytecode submissions go through the bytecode
// verifier in Decode; source goes through the compiler (which verifies
// its output). Caller holds s.mu.
func (s *Server) admitProgramLocked(a *account, sub Submission) (*bytecode.Program, *Reject) {
	var content string
	if len(sub.Bytecode) > 0 {
		content = string(sub.Bytecode)
	} else {
		content = sub.Source
	}
	if content == "" {
		return nil, &Reject{RejectVerify, "empty program"}
	}
	if mp := a.q.MaxProgram; mp > 0 && len(content) > mp {
		return nil, &Reject{RejectTooLarge, fmt.Sprintf("program %dB exceeds tenant cap %dB", len(content), mp)}
	}
	key := progKey{a.id, sub.Name, content}
	p, cached := s.progCache[key]
	if !cached {
		var err error
		if len(sub.Bytecode) > 0 {
			p, err = bytecode.Decode(sub.Bytecode)
		} else {
			p, err = compile.Compile(a.id+"/"+sub.Name, sub.Source)
		}
		if err != nil {
			// The kind-flow verifier proved the program faults on every
			// execution: a distinct refusal from parse/verify errors so the
			// tenant (and the stats) can tell a type proof from a typo.
			if errors.Is(err, bytecode.ErrIllTyped) {
				return nil, &Reject{RejectIllTyped, err.Error()}
			}
			return nil, &Reject{RejectVerify, err.Error()}
		}
		s.sys.Register(p)
		s.progCache[key] = p
	}
	// The bound depends on the submitted variables, so cached programs are
	// re-checked per submission.
	if rej := stateBoundReject(a, p, sub.Vars); rej != nil {
		return nil, rej
	}
	return p, nil
}

// stateBoundReject pre-checks the verifier's static state-size bound
// against the tenant's memory cap. When every value the program can hold
// at a nav pause is a proven scalar, the worst-case snapshot size is
// base + the submitted values that ride along — if that already exceeds
// MemBudget the session's first hop is guaranteed to evict it, so it is
// refused before a single VM step runs. Programs without a derivable
// bound (aggregates, calls, out-of-line natives) fall through to the
// dynamic CheckMem at nav boundaries.
func stateBoundReject(a *account, p *bytecode.Program, vars map[string]value.Value) *Reject {
	mb := a.q.MemBudget
	if mb <= 0 {
		return nil
	}
	base, inherited, ok := p.StateBound()
	if !ok {
		return nil
	}
	bound := base
	for _, name := range inherited {
		// Absent names read as the zero (nil) Value, matching injection.
		bound += int64(vars[name].WireSize())
	}
	tracked := make(map[string]bool, len(inherited))
	for _, name := range inherited {
		tracked[name] = true
	}
	for name, v := range vars {
		if !tracked[name] {
			// Unreferenced injected variables ride along in the env
			// untouched; base has no entry for them.
			bound += int64(4 + len(name) + v.WireSize())
		}
	}
	if bound > int64(mb) {
		return &Reject{RejectStateBound, fmt.Sprintf(
			"proven state bound %dB exceeds tenant memory cap %dB", bound, mb)}
	}
	return nil
}

// admitNowLocked checks the live cap and debits the admission bucket.
// Caller holds a.mu (and s.mu).
func (s *Server) admitNowLocked(a *account, now sim.Time) bool {
	if a.q.MaxLive > 0 && a.live.Load() >= int64(a.q.MaxLive) {
		return false
	}
	return a.injTB.take(now, 1)
}

// launchLocked registers the session and injects its root Messenger.
// Caller holds s.mu.
func (s *Server) launchLocked(a *account, p *pending, now sim.Time) error {
	ss := &session{
		acct:   a,
		id:     p.id,
		budget: a.q.StepBudget,
		start:  p.enq,
	}
	ss.stepsLeft.Store(a.q.StepBudget)
	s.smu.Lock()
	s.sessions[p.id] = ss
	s.smu.Unlock()

	s.idleMu.Lock()
	s.totalLive++
	s.som.liveSessions.Set(int64(s.totalLive))
	s.idleMu.Unlock()

	d := p.daemon
	if d < 0 || d >= s.sys.NumDaemons() {
		d = s.rrDaemon % s.sys.NumDaemons()
		s.rrDaemon++
	}
	if err := s.sys.InjectSession(d, p.prog, p.node, p.vars, a.id, p.id, a.q.StepBudget); err != nil {
		// Injection failed before any Messenger existed: unwind.
		s.smu.Lock()
		delete(s.sessions, p.id)
		s.smu.Unlock()
		s.idleMu.Lock()
		s.totalLive--
		s.som.liveSessions.Set(int64(s.totalLive))
		if s.totalLive == 0 {
			s.idleCond.Broadcast()
		}
		s.idleMu.Unlock()
		return err
	}
	a.om.live.Set(a.live.Add(1))
	a.admitted.Add(1)
	a.om.admitted.Inc()
	s.som.admitted.Inc()
	return nil
}

// pump runs fair-share admission over the queued tenants: repeated
// round-robin passes, one session per tenant per pass, until no tenant
// can admit. The starting offset rotates so persistent contention shares
// tokens fairly.
func (s *Server) pump() {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queueDepth > 0 && !s.draining {
		for progress := true; progress; {
			progress = false
			n := len(s.order)
			for i := 0; i < n; i++ {
				a := s.accounts[s.order[(s.rr+i)%n]]
				a.mu.Lock()
				if len(a.queue) == 0 || !s.admitNowLocked(a, now) {
					a.mu.Unlock()
					continue
				}
				p := a.queue[0]
				a.queue = a.queue[1:]
				a.om.queue.Set(int64(len(a.queue)))
				s.queueDepth--
				s.som.queueDepth.Set(int64(s.queueDepth))
				a.mu.Unlock()
				// Launch errors surface via stats only; the session was
				// never created on failure.
				_ = s.launchLocked(a, p, now)
				progress = true
			}
			s.rr++
		}
	}
	s.armPumpLocked(now)
}

// armPumpLocked schedules one pump wake-up at the earliest instant a
// queued tenant's admission bucket refills. One-shot (never recurring),
// so a drained system schedules nothing and the sim kernel can finish.
// Caller holds s.mu.
func (s *Server) armPumpLocked(now sim.Time) {
	if s.pumpArmed || s.draining || s.queueDepth == 0 {
		return
	}
	var delay sim.Time = -1
	for _, id := range s.order {
		a := s.accounts[id]
		a.mu.Lock()
		if len(a.queue) > 0 {
			// Blocked purely on MaxLive ⇒ a completion will pump; only
			// token refill needs a timer.
			if w := a.injTB.wait(now, 1); w > 0 && (delay < 0 || w < delay) {
				delay = w
			}
		}
		a.mu.Unlock()
	}
	if delay < 0 {
		return
	}
	if delay < sim.Millisecond {
		delay = sim.Millisecond
	}
	s.pumpArmed = true
	s.after(delay, func() {
		s.mu.Lock()
		s.pumpArmed = false
		s.mu.Unlock()
		s.pump()
	})
}

// rejected counts a rejection and returns it as the error.
func (s *Server) rejected(a *account, r *Reject) error {
	if a != nil {
		a.rejected.Add(1)
		a.om.rejected.Inc()
		if r.Code == RejectIllTyped {
			a.illTyped.Add(1)
		}
	}
	switch r.Code {
	case RejectUnknownTenant:
		s.som.rejTenant.Inc()
	case RejectVerify:
		s.som.rejVerify.Inc()
	case RejectTooLarge:
		s.som.rejTooLarge.Inc()
	case RejectBackpressure:
		s.som.rejBackpressure.Inc()
	case RejectDraining:
		s.som.rejDraining.Inc()
	case RejectIllTyped:
		s.som.rejIllTyped.Inc()
	case RejectStateBound:
		s.som.rejStateBound.Inc()
	}
	return r
}

// Drain stops admitting: in-flight sessions run to completion, queued
// submissions are flushed as draining rejections, new submissions are
// refused. Follow with WaitIdle for a graceful stop.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	for _, id := range s.order {
		a := s.accounts[id]
		a.mu.Lock()
		flushed := len(a.queue)
		a.queue = nil
		a.om.queue.Set(0)
		a.mu.Unlock()
		for i := 0; i < flushed; i++ {
			a.rejected.Add(1)
			a.om.rejected.Inc()
			s.som.rejDraining.Inc()
		}
		s.queueDepth -= flushed
	}
	s.som.queueDepth.Set(int64(s.queueDepth))
	s.mu.Unlock()
}

// WaitIdle blocks until no session is live. With Drain it implements
// graceful shutdown; without, a quiescence barrier between waves.
func (s *Server) WaitIdle() {
	s.idleMu.Lock()
	for s.totalLive > 0 {
		s.idleCond.Wait()
	}
	s.idleMu.Unlock()
}

// TenantStats is a point-in-time snapshot of one account.
type TenantStats struct {
	ID       string `json:"id"`
	Admitted int64  `json:"admitted"`
	Rejected int64  `json:"rejected"`
	// IllTyped counts rejections where the kind-flow verifier proved the
	// submitted program faults (a subset of Rejected).
	IllTyped  int64 `json:"ill_typed"`
	Evicted   int64 `json:"evicted"`
	Completed int64 `json:"completed"`
	Steps     int64 `json:"steps"`
	Hops      int64 `json:"hops"`
	// MaxSessionSteps is the largest metered step count any single session
	// of this tenant consumed — the quota-violation witness: it must never
	// exceed the tenant's StepBudget.
	MaxSessionSteps int64 `json:"max_session_steps"`
	// Violations counts sessions whose metered usage exceeded their budget
	// (always zero unless the meter is broken).
	Violations int64 `json:"violations"`
	Queue      int   `json:"queue"`
	Live       int64 `json:"live"`
}

// Stats snapshots all accounts in registration order.
func (s *Server) Stats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.order))
	for _, id := range s.order {
		a := s.accounts[id]
		a.mu.Lock()
		q := len(a.queue)
		a.mu.Unlock()
		out = append(out, TenantStats{
			ID:              a.id,
			Admitted:        a.admitted.Load(),
			Rejected:        a.rejected.Load(),
			IllTyped:        a.illTyped.Load(),
			Evicted:         a.evicted.Load(),
			Completed:       a.completed.Load(),
			Steps:           a.steps.Load(),
			Hops:            a.hops.Load(),
			MaxSessionSteps: a.maxSessionSteps.Load(),
			Violations:      a.violations.Load(),
			Queue:           q,
			Live:            a.live.Load(),
		})
	}
	return out
}

// Violations sums quota violations across tenants (zero on a correct
// server; mload asserts this).
func (s *Server) Violations() int64 {
	var n int64
	for _, ts := range s.Stats() {
		n += ts.Violations
	}
	return n
}

// LiveSessions returns the number of currently live sessions.
func (s *Server) LiveSessions() int {
	s.idleMu.Lock()
	defer s.idleMu.Unlock()
	return s.totalLive
}
