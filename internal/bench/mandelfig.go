package bench

import (
	"fmt"

	"messengers/internal/apps"
	"messengers/internal/lan"
	"messengers/internal/sim"
)

// PaperProcs is the processor axis of Figures 4-7 (1 to 32 workstations).
var PaperProcs = []int{1, 2, 4, 8, 16, 32}

// PaperGrids is the grid axis of Figures 4-6.
var PaperGrids = []int{8, 16, 32}

// MandelSweep describes one Mandelbrot figure.
type MandelSweep struct {
	Name  string // e.g. "Figure 4"
	Size  int    // image edge (320, 640, 1280)
	Grids []int
	Procs []int
}

// MandelFigure holds the measured series of one figure.
type MandelFigure struct {
	Sweep MandelSweep
	// Seq is the sequential C baseline time.
	Seq sim.Time
	// Msgr and PVM are elapsed times indexed [grid][proc].
	Msgr, PVM [][]sim.Time
}

// RunMandelFigure regenerates one of Figures 4-7.
func RunMandelFigure(cm *lan.CostModel, sweep MandelSweep) (*MandelFigure, error) {
	fig := &MandelFigure{Sweep: sweep}
	fig.Seq = apps.MandelSequential(cm, apps.PaperMandelParams(sweep.Size, sweep.Grids[0], 1)).Elapsed
	for _, grid := range sweep.Grids {
		var msgrRow, pvmRow []sim.Time
		for _, procs := range sweep.Procs {
			p := apps.PaperMandelParams(sweep.Size, grid, procs)
			mr, err := apps.MandelMessengers(cm, p)
			if err != nil {
				return nil, fmt.Errorf("bench: %s messengers grid=%d procs=%d: %w", sweep.Name, grid, procs, err)
			}
			pr, err := apps.MandelPVM(cm, p)
			if err != nil {
				return nil, fmt.Errorf("bench: %s pvm grid=%d procs=%d: %w", sweep.Name, grid, procs, err)
			}
			if mr.Checksum != pr.Checksum {
				return nil, fmt.Errorf("bench: %s grid=%d procs=%d: implementations disagree", sweep.Name, grid, procs)
			}
			msgrRow = append(msgrRow, mr.Elapsed)
			pvmRow = append(pvmRow, pr.Elapsed)
		}
		fig.Msgr = append(fig.Msgr, msgrRow)
		fig.PVM = append(fig.PVM, pvmRow)
	}
	return fig, nil
}

// Table renders the figure in the paper's layout: one series per (grid,
// system) across the processor axis, plus speedups over sequential.
func (f *MandelFigure) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("%s: Mandelbrot %dx%d, seq C = %ss", f.Sweep.Name, f.Sweep.Size, f.Sweep.Size, secs(f.Seq)),
		Columns: []string{"grid", "system"},
	}
	for _, p := range f.Sweep.Procs {
		t.Columns = append(t.Columns, fmt.Sprintf("P=%d", p))
	}
	for gi, grid := range f.Sweep.Grids {
		mRow := []string{fmt.Sprintf("%dx%d", grid, grid), "MESSENGERS"}
		pRow := []string{fmt.Sprintf("%dx%d", grid, grid), "PVM"}
		sRow := []string{fmt.Sprintf("%dx%d", grid, grid), "speedup M/PVM"}
		for pi := range f.Sweep.Procs {
			mRow = append(mRow, secs(f.Msgr[gi][pi]))
			pRow = append(pRow, secs(f.PVM[gi][pi]))
			sRow = append(sRow, ratio(f.PVM[gi][pi], f.Msgr[gi][pi]))
		}
		t.Rows = append(t.Rows, mRow, pRow, sRow)
	}
	return t
}

// SpeedupOverSeq returns the MESSENGERS speedup over sequential for a grid
// index at a processor index.
func (f *MandelFigure) SpeedupOverSeq(gi, pi int) float64 {
	return float64(f.Seq) / float64(f.Msgr[gi][pi])
}

// MsgrOverPVM returns PVM time / MESSENGERS time (>1 means MESSENGERS
// faster) for a grid index at a processor index.
func (f *MandelFigure) MsgrOverPVM(gi, pi int) float64 {
	return float64(f.PVM[gi][pi]) / float64(f.Msgr[gi][pi])
}

// Fig4Sweep is Figure 4 (320x320). Pass short to trim the axes for quick
// runs.
func Fig4Sweep(short bool) MandelSweep { return mandelSweep("Figure 4", 320, short) }

// Fig5Sweep is Figure 5 (640x640).
func Fig5Sweep(short bool) MandelSweep { return mandelSweep("Figure 5", 640, short) }

// Fig6Sweep is Figure 6 (1280x1280).
func Fig6Sweep(short bool) MandelSweep { return mandelSweep("Figure 6", 1280, short) }

// Fig7Sweep is Figure 7: the most favorable case, 1280x1280 at the
// coarsest (8x8) grid only.
func Fig7Sweep(short bool) MandelSweep {
	s := MandelSweep{Name: "Figure 7", Size: 1280, Grids: []int{8}, Procs: PaperProcs}
	if short {
		s.Procs = []int{1, 8, 32}
	}
	return s
}

func mandelSweep(name string, size int, short bool) MandelSweep {
	s := MandelSweep{Name: name, Size: size, Grids: PaperGrids, Procs: PaperProcs}
	if short {
		s.Grids = []int{8, 32}
		s.Procs = []int{1, 8, 32}
	}
	return s
}
