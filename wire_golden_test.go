package messengers

// Cross-engine wire determinism: the channel (real, zero-copy hops) and
// simulated engines must produce byte-identical Msg.Encode output for the
// same program on the same topology. This is the guard for the unified wire
// layer — ownership-transfer delivery and lazy single-pass encoding must
// never change what would have gone on the network.

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"messengers/internal/compile"
	"messengers/internal/core"
	"messengers/internal/lan"
	"messengers/internal/sim"
	"messengers/internal/value"
)

// captureEngine wraps an engine and records the canonical encoding of every
// Messenger-carrying message at Send time — the instant the wire bytes are
// determined, before delivery can mutate the VM. Control traffic (GVT
// rounds) is timing-dependent on real engines and is not captured.
type captureEngine struct {
	core.Engine
	mu    sync.Mutex
	lines []string
}

func (e *captureEngine) Send(src, dst int, msg *core.Msg) {
	if msg.CarriesMessenger() {
		line := fmt.Sprintf("%v %d->%d %s", msg.Kind, src, dst, hex.EncodeToString(msg.Encode()))
		e.mu.Lock()
		e.lines = append(e.lines, line)
		e.mu.Unlock()
	}
	e.Engine.Send(src, dst, msg)
}

// Bind forwards the daemon set to engines that need it.
func (e *captureEngine) Bind(daemons []*core.Daemon) {
	if b, ok := e.Engine.(interface{ Bind([]*core.Daemon) }); ok {
		b.Bind(daemons)
	}
}

func (e *captureEngine) sorted() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := append([]string(nil), e.lines...)
	sort.Strings(out)
	return out
}

// wireRingScript circulates a single Messenger around a logical ring. One
// Messenger keeps hop order — and therefore every per-daemon ID — fully
// deterministic even on the concurrent channel engine.
const wireRingScript = `
	for (k = 0; k < laps * $ndaemons; k++) {
		node.stamps = node.stamps + 1;
		hop(ll = "ring", ldir = +);
	}
`

func wireRingSpec(daemons int) core.NetSpec {
	spec := core.NetSpec{}
	for i := 0; i < daemons; i++ {
		spec.Nodes = append(spec.Nodes, core.NetNode{Name: fmt.Sprintf("r%d", i), Daemon: i})
		spec.Links = append(spec.Links, core.NetLink{
			A: fmt.Sprintf("r%d", i), B: fmt.Sprintf("r%d", (i+1)%daemons),
			Name: "ring", Dir: 1,
		})
	}
	return spec
}

func setupWireRing(t *testing.T, sys *core.System, daemons, laps int) {
	t.Helper()
	if err := sys.BuildNetwork(wireRingSpec(daemons)); err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Compile("wirering", wireRingScript)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(prog)
	err = sys.InjectAt(0, "wirering", "r0", map[string]value.Value{"laps": IntValue(int64(laps))})
	if err != nil {
		t.Fatal(err)
	}
}

func chanEngineWire(t *testing.T, daemons, laps int) []string {
	t.Helper()
	eng := core.NewChanEngine(daemons)
	defer eng.Close()
	cap := &captureEngine{Engine: eng}
	sys := core.NewSystem(cap, core.FullMesh(daemons))
	setupWireRing(t, sys, daemons, laps)
	sys.Wait()
	for _, err := range sys.Errors() {
		t.Fatalf("chan engine: %v", err)
	}
	return cap.sorted()
}

func simEngineWire(t *testing.T, daemons, laps int) []string {
	t.Helper()
	k := sim.New()
	cluster := lan.NewCluster(k, lan.DefaultCostModel(), daemons, lan.SPARC110)
	cap := &captureEngine{Engine: core.NewSimEngine(cluster)}
	sys := core.NewSystem(cap, core.FullMesh(daemons))
	setupWireRing(t, sys, daemons, laps)
	k.Run()
	for _, err := range sys.Errors() {
		t.Fatalf("sim engine: %v", err)
	}
	return cap.sorted()
}

// TestWireCrossEngineGolden asserts that both engines emit the identical
// set of encoded Messenger hops, pinned against a golden file (refresh with
// go test -run WireCrossEngineGolden -update after intentional wire-format
// changes — and say so loudly in the PR, the format is frozen).
func TestWireCrossEngineGolden(t *testing.T) {
	const daemons, laps = 3, 2
	chanLines := chanEngineWire(t, daemons, laps)
	simLines := simEngineWire(t, daemons, laps)

	if len(chanLines) == 0 {
		t.Fatal("no Messenger messages captured")
	}
	if strings.Join(chanLines, "\n") != strings.Join(simLines, "\n") {
		t.Errorf("engines disagree on wire bytes:\nchan (%d msgs):\n%s\nsim (%d msgs):\n%s",
			len(chanLines), strings.Join(chanLines, "\n"), len(simLines), strings.Join(simLines, "\n"))
	}

	got := strings.Join(chanLines, "\n") + "\n"
	golden := filepath.Join("testdata", "wire_crossengine.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("wire bytes differ from %s (run with -update only for intentional format changes)", golden)
	}
}
