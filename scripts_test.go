package messengers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"messengers/internal/compile"
)

// TestAllScriptsCompile keeps every sample script in scripts/ compiling.
func TestAllScriptsCompile(t *testing.T) {
	entries, err := os.ReadDir("scripts")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".msl") {
			continue
		}
		n++
		src, err := os.ReadFile(filepath.Join("scripts", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := compile.Compile(e.Name(), string(src)); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if n < 4 {
		t.Errorf("only %d sample scripts found", n)
	}
}

// runScriptFile executes one sample script on a fresh real system and
// returns its print output.
func runScriptFile(t *testing.T, file string, daemons int) []string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("scripts", file))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewRealSystem(Config{Daemons: daemons})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	name := strings.TrimSuffix(file, ".msl")
	if err := sys.CompileAndRegister(name, string(src)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inject(0, name, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		sys.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not quiesce", file)
	}
	for _, err := range sys.Errors() {
		t.Errorf("%s: %v", file, err)
	}
	return sys.Output()
}

func TestHelloScript(t *testing.T) {
	out := runScriptFile(t, "hello.msl", 4)
	greets := 0
	for _, line := range out {
		if strings.HasPrefix(line, "hello from d") {
			greets++
		}
	}
	if greets != 3 {
		t.Errorf("greetings = %d, want 3; output %v", greets, out)
	}
	if !strings.Contains(strings.Join(out, "\n"), "all 3 replicas reported back") {
		t.Errorf("missing final report: %v", out)
	}
}

func TestFibScript(t *testing.T) {
	out := strings.Join(runScriptFile(t, "fib.msl", 1), "\n")
	for _, want := range []string{"fib(10) = 55", "fib(14) = 377", "sum of first 15 numbers: 986"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestClockScript(t *testing.T) {
	out := runScriptFile(t, "clock.msl", 2)
	if len(out) != 8 {
		t.Fatalf("output = %v", out)
	}
	// Strict virtual-time interleaving: tick k, tock k, ...
	for i, line := range out {
		want := "tick"
		if i%2 == 1 {
			want = "tock"
		}
		if !strings.HasPrefix(line, want) {
			t.Errorf("line %d = %q, want prefix %q", i, line, want)
		}
	}
}

func TestCensusScript(t *testing.T) {
	out := strings.Join(runScriptFile(t, "census.msl", 5), "\n")
	if !strings.Contains(out, "census complete: 4 workers:") {
		t.Errorf("output = %q", out)
	}
	if strings.Contains(out, "never runs") {
		t.Error("code after the self-destructing delete must not execute")
	}
}
