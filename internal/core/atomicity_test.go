package core

import (
	"fmt"
	"testing"
	"time"

	"messengers/internal/value"
)

// TestCriticalSectionsWithoutLocks drives the §2.1 claim on the real
// concurrent engine: because a daemon never interrupts a Messenger between
// navigational statements, a multi-statement read-modify-write on node
// variables is a critical section with no locks. Many Messengers hammer
// one account node with a withdraw-then-deposit sequence that goes through
// an intermediate Messenger variable; any preemption between the read and
// the writes would lose updates.
func TestCriticalSectionsWithoutLocks(t *testing.T) {
	const nWorkers = 8
	const rounds = 200
	sys := chanSystem(t, 3)
	register(t, sys, "transfer", `
		for (k = 0; k < rounds; k++) {
			hop(ln = "account", ll = virtual);
			// --- critical section: no navigational statements inside ---
			balance = node.balance;      // read
			balance = balance - 10;      // compute
			node.balance = balance;      // write
			node.log = node.log + 1;
			node.balance = node.balance + 10;
			// --- end critical section ---
			hop(ln = "init", ll = virtual);
		}
		hop(ln = "account", ll = virtual);
		node.done = node.done + 1;
	`)
	// The account node lives on daemon 0 next to init so virtual hops
	// resolve locally.
	spec := NetSpec{Nodes: []NetNode{{Name: "account", Daemon: 0}}}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	sys.Daemon(0).Store().FindByName("account")[0].Vars["balance"] = value.Int(1000)

	for i := 0; i < nWorkers; i++ {
		err := sys.Inject(0, "transfer", map[string]value.Value{"rounds": value.Int(rounds)})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, sys)

	result := make(chan map[string]value.Value, 1)
	sys.Do(0, func(d *Daemon) {
		result <- value.CloneEnv(d.Store().FindByName("account")[0].Vars)
	})
	vars := <-result
	if got := vars["balance"].AsInt(); got != 1000 {
		t.Errorf("balance = %d, want 1000 (lost updates: critical section violated)", got)
	}
	if got := vars["log"].AsInt(); got != nWorkers*rounds {
		t.Errorf("log = %d, want %d", got, nWorkers*rounds)
	}
	if got := vars["done"].AsInt(); got != nWorkers {
		t.Errorf("done = %d, want %d", got, nWorkers)
	}
}

// TestRealEngineSwarmStress floods the real engine with Messengers doing
// random-ish navigation and checks clean quiescence with no errors.
func TestRealEngineSwarmStress(t *testing.T) {
	const daemons = 6
	const swarm = 40
	sys := chanSystem(t, daemons)
	// A complete logical graph over all daemons' rendezvous nodes.
	spec := NetSpec{}
	for i := 0; i < daemons; i++ {
		spec.Nodes = append(spec.Nodes, NetNode{Name: fmt.Sprintf("v%d", i), Daemon: i})
	}
	for i := 0; i < daemons; i++ {
		for j := i + 1; j < daemons; j++ {
			spec.Links = append(spec.Links, NetLink{
				A: fmt.Sprintf("v%d", i), B: fmt.Sprintf("v%d", j), Name: "e",
			})
		}
	}
	if err := sys.BuildNetwork(spec); err != nil {
		t.Fatal(err)
	}
	register(t, sys, "wanderer", `
		for (k = 0; k < steps; k++) {
			node.visits = node.visits + 1;
			// Walk to the "next" vertex by seed arithmetic: the vertex
			// names are known, so pick one pseudo-randomly and jump.
			seed = (seed * 1103515245 + 12345) % 2147483648;
			hop(ln = "v" + (seed % 6), ll = "e");
		}
		hop(ln = "v0", ll = virtual);
		node.retired = node.retired + 1;
	`)
	for i := 0; i < swarm; i++ {
		err := sys.InjectAt(i%daemons, "wanderer", fmt.Sprintf("v%d", i%daemons),
			map[string]value.Value{"steps": value.Int(30), "seed": value.Int(int64(i + 1))})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, sys)

	// Conservation: every wanderer either retired at v0 or died at a
	// dead-end hop (hopping to the vertex it is already on matches no
	// link). Visits equal completed steps.
	var retired int64
	done := make(chan struct{})
	sys.Do(0, func(d *Daemon) {
		retired = d.Store().FindByName("v0")[0].Vars["retired"].AsInt()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stats read timed out")
	}
	st := sys.TotalStats()
	if st.Finished+st.Died != swarm {
		t.Errorf("finished %d + died %d != %d injected", st.Finished, st.Died, swarm)
	}
	if retired != st.Finished {
		t.Errorf("retired %d != finished %d", retired, st.Finished)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
}

// TestNativeErrorIsolatesMessenger: one Messenger dying on a native error
// must not disturb the others.
func TestNativeErrorIsolatesMessenger(t *testing.T) {
	k, sys := simSystem(t, 2)
	sys.RegisterNative("maybe_fail", func(ctx *NativeCtx, args []value.Value) (value.Value, error) {
		if args[0].AsInt() == 13 {
			return value.Nil(), fmt.Errorf("injected fault")
		}
		return value.Int(1), nil
	})
	register(t, sys, "worker", `
		x = maybe_fail(id);
		node.survivors = node.survivors + 1;
	`)
	for i := 0; i < 20; i++ {
		err := sys.Inject(0, "worker", map[string]value.Value{"id": value.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if got := sys.Daemon(0).Store().Init().Vars["survivors"].AsInt(); got != 19 {
		t.Errorf("survivors = %d, want 19", got)
	}
	if errs := sys.Errors(); len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
	if sys.Live() != 0 {
		t.Errorf("live = %d", sys.Live())
	}
}
