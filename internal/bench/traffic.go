package bench

import (
	"fmt"

	"messengers/internal/apps"
	"messengers/internal/lan"
	"messengers/internal/sim"
)

// RunTrafficTable breaks down the network behavior behind Figure 7: bus
// messages, bytes, dropped PVM fragments, and central-host CPU occupancy
// for both systems across the processor axis — the mechanism view of the
// §2.1 copy/indirection argument.
func RunTrafficTable(cm *lan.CostModel, size, grid int, procs []int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E1: traffic and funnel occupancy, Mandelbrot %dx%d grid %dx%d",
			size, size, grid, grid),
		Columns: []string{"P", "system", "time", "bus msgs", "bus MB", "drops", "center CPU s"},
	}
	for _, p := range procs {
		params := apps.PaperMandelParams(size, grid, p)
		mr, err := apps.MandelMessengers(cm, params)
		if err != nil {
			return nil, err
		}
		pr, err := apps.MandelPVM(cm, params)
		if err != nil {
			return nil, err
		}
		// All traffic columns come straight from the run's metrics
		// registry — the same counters the tracer and mtrace report.
		row := func(system string, r *apps.MandelResult) []string {
			return []string{
				fmt.Sprintf("%d", p), system, secs(r.Elapsed),
				fmt.Sprintf("%d", r.Obs.CounterValue("bus.msgs")),
				fmt.Sprintf("%.2f", float64(r.Obs.CounterValue("bus.bytes"))/1e6),
				fmt.Sprintf("%d", r.Obs.CounterValue("pvm.drops")),
				secs(sim.Time(r.Obs.CounterValue("host.0.busy_ns"))),
			}
		}
		t.Rows = append(t.Rows, row("MESSENGERS", mr), row("PVM", pr))
	}
	return t, nil
}
