// Ringtoken: a token Messenger circulates a persistent logical ring,
// demonstrating the three-level architecture end to end: the net_builder
// service lays down a closed directed ring of logical nodes (one per
// daemon), a token Messenger circulates it stamping every node, an auditor
// Messenger — injected at runtime *by the token itself* — navigates the
// same persistent network to tally the stamps, and finally tears the whole
// ring down with delete (singleton nodes vanish automatically).
//
//	go run ./examples/ringtoken [-laps 3] [-daemons 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"messengers"
)

// token circulates the ring laps times, stamping every node.
const token = `
	for (k = 0; k < laps * $ndaemons; k++) {
		node.stamps = node.stamps + 1;
		hop(ll = "ring", ldir = +);
	}
	print("token retired at", $node, "after", laps, "laps");
	inject("auditor", "r0");
`

// auditor — injected at runtime by the token itself via the built-in
// inject native (the paper: "injected ... by another Messenger") — walks
// one lap summing the stamps the token left in node variables, reports the
// total, then deletes the ring behind itself. The
// final delete removes the last link, which makes the node it arrives at a
// singleton — so the ring, and the auditor with it, cease to exist.
const auditor = `
	total = 0;
	for (k = 0; k < $ndaemons; k++) {
		total = total + node.stamps;
		if (k < $ndaemons - 1) { hop(ll = "ring", ldir = +); }
	}
	report(total);
	print("dismantling the ring");
	for (k = 0; k < $ndaemons; k++) {
		delete(ll = "ring", ldir = +);
	}
`

func main() {
	laps := flag.Int("laps", 3, "token laps around the ring")
	daemons := flag.Int("daemons", 5, "daemon count (ring length)")
	flag.Parse()

	sys, err := messengers.NewRealSystem(messengers.Config{
		Daemons: *daemons,
		Output:  os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The net_builder service: a closed directed ring, one node per
	// daemon. It persists independently of any Messenger.
	spec := messengers.NetSpec{}
	for i := 0; i < *daemons; i++ {
		spec.Nodes = append(spec.Nodes, messengers.NetNode{
			Name: fmt.Sprintf("r%d", i), Daemon: i,
		})
		spec.Links = append(spec.Links, messengers.NetLink{
			A:    fmt.Sprintf("r%d", i),
			B:    fmt.Sprintf("r%d", (i+1)%*daemons),
			Name: "ring", Dir: 1,
		})
	}
	if err := sys.BuildNetwork(spec); err != nil {
		log.Fatal(err)
	}

	total := make(chan int64, 1)
	sys.RegisterNative("report", func(_ *messengers.NativeCtx, args []messengers.Value) (messengers.Value, error) {
		total <- args[0].AsInt()
		return messengers.NilValue(), nil
	})
	for name, src := range map[string]string{"token": token, "auditor": auditor} {
		if err := sys.CompileAndRegister(name, src); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	err = sys.InjectAt(0, "token", "r0", map[string]messengers.Value{
		"laps": messengers.IntValue(int64(*laps)),
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Wait()
	for _, err := range sys.Errors() {
		log.Fatalf("messenger failed: %v", err)
	}

	want := int64(*laps * *daemons)
	if got := <-total; got != want {
		log.Fatalf("audited %d stamps, want %d", got, want)
	}
	// The teardown removed every ring node.
	for i := 0; i < *daemons; i++ {
		if _, ok := sys.ReadNodeVars(i, fmt.Sprintf("r%d", i)); ok {
			log.Fatalf("node r%d survived the teardown", i)
		}
	}
	fmt.Printf("ok: %d stamps over %d laps on %d daemons; ring dismantled\n",
		want, *laps, *daemons)
}
