package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteChromeTrace renders the tracer's event stream as Chrome trace_event
// JSON (the "JSON Array Format" wrapped in a traceEvents object), loadable
// in chrome://tracing and Perfetto. One process (pid 0) holds one thread
// per track — daemons, hosts, the shared bus — named via thread_name
// metadata records. Timestamps are microseconds with nanosecond precision.
//
// Output is deterministic: metadata records sorted by track, then events in
// emission order. Two identical simulated runs therefore produce
// byte-identical files.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	events := t.Events()
	tracks := t.Tracks()

	// Every referenced track gets a metadata record even if unnamed.
	for _, ev := range events {
		if _, ok := tracks[ev.Track]; !ok {
			tracks[ev.Track] = fmt.Sprintf("track %d", ev.Track)
		}
	}
	ids := make([]int, 0, len(tracks))
	for id := range tracks {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	emit(`{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"messengers"}}`)
	for _, id := range ids {
		emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			id, quote(tracks[id])))
		emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			id, id))
	}
	for i := range events {
		emit(chromeEvent(&events[i]))
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// chromeEvent renders one event as a trace_event JSON object.
func chromeEvent(ev *Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"ph":%q,"pid":0,"tid":%d,"ts":%s`, string(ev.Ph), ev.Track, usec(ev.TS))
	if ev.Ph == PhaseSpan {
		fmt.Fprintf(&b, `,"dur":%s`, usec(ev.Dur))
	}
	if ev.Ph == PhaseInstant {
		b.WriteString(`,"s":"t"`) // thread-scoped instant
	}
	fmt.Fprintf(&b, `,"cat":%s,"name":%s`, quote(ev.Cat), quote(ev.Name))
	b.WriteString(`,"args":{`)
	for i, f := range ev.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(quote(f.Key))
		b.WriteByte(':')
		switch f.kind {
		case fieldInt:
			b.WriteString(strconv.FormatInt(f.i, 10))
		case fieldFloat:
			b.WriteString(jsonFloat(f.f))
		case fieldStr:
			b.WriteString(quote(f.s))
		}
	}
	b.WriteString("}}")
	return b.String()
}

// usec renders nanoseconds as a microsecond decimal with up to ns
// precision and no float rounding artifacts.
func usec(ns int64) string {
	whole, frac := ns/1000, ns%1000
	if frac == 0 {
		return strconv.FormatInt(whole, 10)
	}
	return strings.TrimRight(fmt.Sprintf("%d.%03d", whole, frac), "0")
}

// jsonFloat renders a float compactly but losslessly.
func jsonFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// JSON has no Inf/NaN; clamp to strings chrome ignores gracefully.
	if strings.ContainsAny(s, "IN") {
		return quote(s)
	}
	return s
}

func quote(s string) string { return strconv.Quote(s) }

// WriteMetricsCSV renders a registry snapshot as CSV with a fixed schema:
// name,kind,value,count,min,max,mean,p50,p99 (histogram columns empty for
// counters and gauges).
func WriteMetricsCSV(w io.Writer, m *Metrics) error {
	var b strings.Builder
	b.WriteString("name,kind,value,count,min,max,mean,p50,p99\n")
	for _, s := range m.Snapshot() {
		if s.Kind == KindHistogram {
			fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%.3f,%d,%d\n",
				csvField(s.Name), s.Kind, s.Value, s.Count, s.Min, s.Max, s.Mean, s.P50, s.P99)
		} else {
			fmt.Fprintf(&b, "%s,%s,%d,,,,,,\n", csvField(s.Name), s.Kind, s.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// FormatMetrics renders a registry snapshot as an aligned text table.
func FormatMetrics(m *Metrics) string {
	snap := m.Snapshot()
	rows := make([][3]string, 0, len(snap))
	for _, s := range snap {
		detail := ""
		if s.Kind == KindHistogram {
			detail = fmt.Sprintf("n=%d min=%d max=%d mean=%.1f p50=%d p99=%d",
				s.Count, s.Min, s.Max, s.Mean, s.P50, s.P99)
		}
		rows = append(rows, [3]string{s.Name, fmt.Sprintf("%d", s.Value), detail})
	}
	w0, w1 := len("metric"), len("value")
	for _, r := range rows {
		if len(r[0]) > w0 {
			w0 = len(r[0])
		}
		if len(r[1]) > w1 {
			w1 = len(r[1])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %*s\n", w0, "metric", w1, "value")
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat("-", w0), strings.Repeat("-", w1))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %*s", w0, r[0], w1, r[1])
		if r[2] != "" {
			fmt.Fprintf(&b, "  %s", r[2])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
