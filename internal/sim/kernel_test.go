package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events fired out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Errorf("final time = %v, want 30", k.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	k := New()
	var fired []Time
	k.After(10, func() {
		fired = append(fired, k.Now())
		k.After(5, func() { fired = append(fired, k.Now()) })
	})
	k.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	k := New()
	ran := false
	k.After(-5, func() { ran = true })
	k.Run()
	if !ran || k.Now() != 0 {
		t.Errorf("ran=%v now=%v", ran, k.Now())
	}
}

func TestCancel(t *testing.T) {
	k := New()
	ran := false
	h := k.At(10, func() { ran = true })
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
	h.Cancel()
	if k.Pending() != 0 {
		t.Errorf("Pending after cancel = %d, want 0", k.Pending())
	}
	k.Run()
	if ran {
		t.Error("cancelled event fired")
	}
	h.Cancel() // double-cancel is a no-op
}

func TestStop(t *testing.T) {
	k := New()
	var count int
	for i := 1; i <= 5; i++ {
		k.At(Time(i), func() {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2 (stopped)", count)
	}
	k.Run() // resumes
	if count != 5 {
		t.Errorf("count after resume = %d, want 5", count)
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(10)
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 5 and 10", fired)
	}
	if k.Now() != 10 {
		t.Errorf("now = %v, want 10", k.Now())
	}
	k.RunUntil(12)
	if k.Now() != 12 || len(fired) != 2 {
		t.Errorf("now = %v fired = %v", k.Now(), fired)
	}
	k.Run()
	if len(fired) != 3 {
		t.Errorf("remaining event did not fire: %v", fired)
	}
}

func TestPropRandomEventsFireInTimestampOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := New()
		n := 50
		times := make([]Time, n)
		var fired []Time
		for i := range times {
			times[i] = Time(r.Intn(100))
			at := times[i]
			k.At(at, func() { fired = append(fired, at) })
		}
		k.Run()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != n {
			return false
		}
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Errorf("String() = %q", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v", got)
	}
}
