package backoff

import (
	"testing"
	"time"
)

// TestExpEnvelope: the unjittered sequence doubles from base and saturates
// at max without overflow.
func TestExpEnvelope(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := Exp(base, max, i+1); got != w {
			t.Errorf("Exp(attempt=%d) = %v, want %v", i+1, got, w)
		}
	}
	// Attempt far past the cap must not overflow into a negative duration.
	if got := Exp(base, max, 200); got != max {
		t.Errorf("Exp(attempt=200) = %v, want %v", max, got)
	}
	if got := Exp(base, max, 0); got != base {
		t.Errorf("Exp(attempt=0) = %v, want clamp to base %v", got, base)
	}
}

// TestJitteredBounds: every jittered delay stays inside [ceil/2, ceil), so
// the exponential envelope (and therefore worst-case recovery latency)
// is preserved.
func TestJitteredBounds(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	for attempt := 1; attempt <= 10; attempt++ {
		ceil := Exp(base, max, attempt)
		for key := uint64(0); key < 50; key++ {
			d := Jittered(base, max, attempt, Key(int(key), 7, attempt, 0))
			if d < ceil/2 || d >= ceil {
				t.Fatalf("attempt %d key %d: delay %v outside [%v, %v)", attempt, key, d, ceil/2, ceil)
			}
		}
	}
}

// TestJitteredDeterministic: same key and attempt, same delay — required for
// simulated-engine reproducibility.
func TestJitteredDeterministic(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	for attempt := 1; attempt <= 5; attempt++ {
		a := Jittered(base, max, attempt, Key(1, 2, 3, 4))
		b := Jittered(base, max, attempt, Key(1, 2, 3, 4))
		if a != b {
			t.Fatalf("attempt %d: nondeterministic jitter (%v vs %v)", attempt, a, b)
		}
	}
}

// TestJitteredDecorrelates: distinct peers (keys) must not share a backoff
// schedule — that synchronization is exactly the thundering herd the jitter
// exists to break. Requiring >=80% distinct delays across 64 keys would fail
// for any constant-jitter regression.
func TestJitteredDecorrelates(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	seen := map[time.Duration]bool{}
	const keys = 64
	for k := 0; k < keys; k++ {
		seen[Jittered(base, max, 4, Key(k, k+1, 4, 0))] = true
	}
	if len(seen) < keys*8/10 {
		t.Fatalf("64 distinct keys produced only %d distinct delays", len(seen))
	}
}
