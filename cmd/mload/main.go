// mload load-tests the multi-tenant admission service (internal/serve): it
// drives hundreds of thousands of short-lived Messenger sessions through a
// daemon network and verifies that quotas hold — no tenant ever exceeds its
// instruction budget — and that overload produces explicit backpressure
// rather than latency collapse.
//
// Two engines, same service stack:
//
//   - sim: the deterministic simulated cluster. Submissions are driven by
//     simulation events, admission token buckets run on virtual time, and
//     six-figure session counts take seconds of wall time.
//   - tcp: real daemons over TCP sockets, real goroutine submitters with
//     retry-on-429, wall-clock token buckets.
//
// The workload mixes three session shapes: well-behaved ring walkers (hop a
// logical ring, touch node variables, die), runaway hogs (infinite compute
// loops that the per-session step budget must evict), and an overloaded
// tenant whose burst of submissions must bounce off its admission quota.
//
//	mload -mode both -sessions 100000 -out BENCH_serve.json
//	mload -mode tcp -tcp-sessions 2000
//
// mload exits nonzero if any quota violation is observed (a session's
// metered steps exceeding its budget), if hogs are not evicted, or if the
// overloaded tenant is not backpressured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"messengers"
	"messengers/internal/serve"
	"messengers/internal/sim"
)

// walker is the well-behaved session: walk the ring, stamp nodes, die.
const walkerSrc = `
	for (k = 0; k < hops; k++) {
		node.visits = node.visits + 1;
		hop(ll = "ring", ldir = +);
	}
`

// hog is the runaway session: an unbounded compute loop. Only the
// per-session instruction budget stops it.
const hogSrc = `
	for (k = 0; k >= 0; k++) {
		x = x + 1;
	}
`

type runResult struct {
	Engine     string  `json:"engine"`
	Daemons    int     `json:"daemons"`
	Tenants    int     `json:"tenants"`
	Offered    int64   `json:"offered"`
	Admitted   int64   `json:"admitted"`
	Completed  int64   `json:"completed"`
	Evicted    int64   `json:"evicted"`
	Rejected   int64   `json:"rejected"`
	Violations int64   `json:"violations"`
	Throughput float64 `json:"throughput_per_s"` // completions per engine-time second
	P50Ms      float64 `json:"p50_ms"`           // engine-time latency percentiles
	P99Ms      float64 `json:"p99_ms"`
	RejectRate float64 `json:"reject_rate"` // rejected / offered (incl. driver retries)
	// The overload experiment: a burst from the "greedy" tenant against a
	// tiny admission quota. Its rejection rate is the backpressure
	// demonstration, separated from the well-behaved drivers' retries.
	OverloadOffered  int64   `json:"overload_offered"`
	OverloadRejected int64   `json:"overload_rejected"`
	OverloadRate     float64 `json:"overload_reject_rate"`
	WallS            float64 `json:"wall_s"`
}

type benchFile struct {
	Bench string      `json:"bench"`
	Date  string      `json:"date"`
	Go    string      `json:"go"`
	Runs  []runResult `json:"runs"`
}

type params struct {
	daemons  int
	tenants  int
	sessions int
	hops     int
	budget   int64
	hogEvery int
	verbose  bool
}

func main() {
	mode := flag.String("mode", "both", "engines to run: sim, tcp, or both")
	daemons := flag.Int("daemons", 4, "daemon count")
	tenants := flag.Int("tenants", 4, "well-behaved tenant count")
	sessions := flag.Int("sessions", 100000, "target admitted sessions (sim)")
	tcpSessions := flag.Int("tcp-sessions", 2000, "target admitted sessions (tcp)")
	hops := flag.Int("hops", 4, "ring hops per walker session")
	budget := flag.Int64("budget", 4096, "per-session instruction step budget")
	hogEvery := flag.Int("hog-every", 50, "every Nth session is a runaway hog (0 = none)")
	out := flag.String("out", "", "write results as JSON to this file")
	verbose := flag.Bool("v", false, "per-tenant stats")
	flag.Parse()

	p := params{
		daemons: *daemons, tenants: *tenants, sessions: *sessions,
		hops: *hops, budget: *budget, hogEvery: *hogEvery, verbose: *verbose,
	}
	var runs []runResult
	if *mode == "sim" || *mode == "both" {
		runs = append(runs, runSim(p))
	}
	if *mode == "tcp" || *mode == "both" {
		tp := p
		tp.sessions = *tcpSessions
		runs = append(runs, runTCP(tp))
	}
	for _, r := range runs {
		fmt.Printf("%s: offered=%d admitted=%d completed=%d evicted=%d rejected=%d violations=%d overload=%d/%d (%.1f%%) throughput=%.0f/s p50=%.3fms p99=%.3fms wall=%.1fs\n",
			r.Engine, r.Offered, r.Admitted, r.Completed, r.Evicted, r.Rejected,
			r.Violations, r.OverloadRejected, r.OverloadOffered, 100*r.OverloadRate,
			r.Throughput, r.P50Ms, r.P99Ms, r.WallS)
	}
	if *out != "" {
		bf := benchFile{
			Bench: "serve",
			Date:  time.Now().UTC().Format(time.RFC3339),
			Go:    runtime.Version(),
			Runs:  runs,
		}
		data, _ := json.MarshalIndent(bf, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}

// tenantSetup builds the tenant roster: n well-behaved tenants plus one
// "greedy" tenant with a tiny admission quota whose burst must bounce.
func tenantSetup(p params) []serve.TenantConfig {
	var ts []serve.TenantConfig
	for i := 0; i < p.tenants; i++ {
		ts = append(ts, serve.TenantConfig{
			ID: fmt.Sprintf("t%d", i),
			Quota: serve.Quota{
				StepBudget: p.budget,
				MemBudget:  64 << 10,
				// Admission paced by live-cap + queue, not by rate: the
				// drivers self-pace on backpressure.
				MaxQueue: 512,
				MaxLive:  256,
			},
		})
	}
	ts = append(ts, serve.TenantConfig{
		ID: "greedy",
		Quota: serve.Quota{
			StepBudget: p.budget,
			// 20 sessions/s with a burst of 5 and almost no queue: a
			// 500-session burst must be overwhelmingly rejected with 429.
			InjectRate: 20, InjectBurst: 5,
			MaxQueue: 4,
		},
	})
	return ts
}

// ringSpec lays down the shared logical ring, one node per daemon.
func ringSpec(daemons int) messengers.NetSpec {
	spec := messengers.NetSpec{}
	for i := 0; i < daemons; i++ {
		spec.Nodes = append(spec.Nodes, messengers.NetNode{Name: fmt.Sprintf("r%d", i), Daemon: i})
		spec.Links = append(spec.Links, messengers.NetLink{
			A: fmt.Sprintf("r%d", i), B: fmt.Sprintf("r%d", (i+1)%daemons), Name: "ring", Dir: 1,
		})
	}
	return spec
}

// submission builds the i-th session: round-robin tenant and daemon, every
// hogEvery-th a runaway hog.
func submission(p params, i int) serve.Submission {
	d := i % p.daemons
	sub := serve.Submission{
		Tenant: fmt.Sprintf("t%d", i%p.tenants),
		Name:   "walker",
		Source: walkerSrc,
		Node:   fmt.Sprintf("r%d", d),
		Daemon: d,
		Vars:   map[string]messengers.Value{"hops": messengers.IntValue(int64(p.hops))},
	}
	if p.hogEvery > 0 && i%p.hogEvery == p.hogEvery-1 {
		sub.Name, sub.Source, sub.Vars = "hog", hogSrc, nil
	}
	return sub
}

// collector accumulates completions (thread-safe; the sim engine calls it
// from the kernel goroutine, TCP from daemon executors).
type collector struct {
	mu        sync.Mutex
	latencies []sim.Time
	completed int64
	evicted   int64
}

func (c *collector) observe(comp serve.Completion) {
	c.mu.Lock()
	c.latencies = append(c.latencies, comp.Latency)
	if comp.Evicted {
		c.evicted++
	} else {
		c.completed++
	}
	c.mu.Unlock()
}

// runSim drives the simulated engine: a submission chain self-paced by
// backpressure plus a greedy burst, all in virtual time.
func runSim(p params) runResult {
	sys, err := messengers.NewSimSystem(messengers.Config{Daemons: p.daemons})
	if err != nil {
		fatal(err)
	}
	if err := sys.BuildNetwork(ringSpec(p.daemons)); err != nil {
		fatal(err)
	}
	k := sys.Kernel()
	col := &collector{}
	srv, err := serve.New(sys.System, serve.Config{
		Tenants:    tenantSetup(p),
		Clock:      k.Now,
		After:      func(d sim.Time, fn func()) { k.After(d, fn) },
		OnComplete: col.observe,
	})
	if err != nil {
		fatal(err)
	}

	var offered, rejected, greedyOffered, greedyRejected int64
	// Driver chain: each virtual millisecond, submit until the target is
	// reached or a tenant pushes back; backpressure pauses the driver for
	// a tick, so the offered load tracks the service's admission rate.
	admitted := 0
	var tick func()
	tick = func() {
		backoff := sim.Millisecond
		for admitted < p.sessions {
			offered++
			_, _, err := srv.Submit(submission(p, admitted))
			if err != nil {
				rejected++
				backoff = 5 * sim.Millisecond // saturated: probe less often
				break
			}
			admitted++
		}
		if admitted < p.sessions {
			k.After(backoff, tick)
		}
	}
	k.At(0, tick)
	// Greedy burst at t=100ms: 500 submissions in one instant against a
	// 20/s quota with a queue of 4 — explicit backpressure, not queueing.
	k.At(100*sim.Millisecond, func() {
		for i := 0; i < 500; i++ {
			greedyOffered++
			_, _, err := srv.Submit(serve.Submission{
				Tenant: "greedy", Name: "walker", Source: walkerSrc,
				Node: "r0", Daemon: 0,
				Vars: map[string]messengers.Value{"hops": messengers.IntValue(int64(p.hops))},
			})
			if err != nil {
				greedyRejected++
			}
		}
	})

	wallStart := time.Now()
	makespan := sys.RunSim()
	wall := time.Since(wallStart)

	res := report("sim", p, srv, col, offered+greedyOffered, rejected+greedyRejected,
		greedyOffered, greedyRejected,
		float64(makespan)/float64(sim.Second), wall.Seconds())
	if greedyRejected < 400 {
		fatalf("greedy tenant was not backpressured: %d/%d rejected", greedyRejected, greedyOffered)
	}
	return res
}

// runTCP drives real daemons over TCP sockets with goroutine submitters
// that retry on backpressure.
func runTCP(p params) runResult {
	sys, err := messengers.NewTCPSystem(messengers.Config{Daemons: p.daemons}, nil)
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	if err := sys.BuildNetwork(ringSpec(p.daemons)); err != nil {
		fatal(err)
	}
	col := &collector{}
	srv, err := serve.New(sys.System, serve.Config{
		Tenants:    tenantSetup(p),
		OnComplete: col.observe,
	})
	if err != nil {
		fatal(err)
	}

	var offered, rejected, greedyOffered, greedyRejected atomic.Int64
	var next atomic.Int64
	wallStart := time.Now()
	var wg sync.WaitGroup
	workers := 2 * p.tenants
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= p.sessions {
					return
				}
				sub := submission(p, i)
				for {
					offered.Add(1)
					if _, _, err := srv.Submit(sub); err == nil {
						break
					}
					rejected.Add(1)
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
	}
	// Greedy burst, concurrent with the well-behaved load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			greedyOffered.Add(1)
			if _, _, err := srv.Submit(serve.Submission{
				Tenant: "greedy", Name: "walker", Source: walkerSrc,
				Node: "r0", Daemon: 0,
				Vars: map[string]messengers.Value{"hops": messengers.IntValue(int64(p.hops))},
			}); err != nil {
				greedyRejected.Add(1)
			}
		}
	}()
	wg.Wait()
	// Let the admission queues empty before draining — Drain sheds queued
	// submissions, and accepted work should run, not be flushed.
	for {
		queued := 0
		for _, ts := range srv.Stats() {
			queued += ts.Queue
		}
		if queued == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.Drain()
	srv.WaitIdle()
	wall := time.Since(wallStart)

	res := report("tcp", p, srv, col, offered.Load()+greedyOffered.Load(),
		rejected.Load()+greedyRejected.Load(), greedyOffered.Load(), greedyRejected.Load(),
		wall.Seconds(), wall.Seconds())
	if greedyRejected.Load() < 400 {
		fatalf("greedy tenant was not backpressured: %d/%d rejected", greedyRejected.Load(), greedyOffered.Load())
	}
	return res
}

// report verifies the quota invariants and assembles the run result.
func report(engine string, p params, srv *serve.Server, col *collector,
	offered, rejected, overloadOffered, overloadRejected int64,
	engineSeconds, wallSeconds float64) runResult {
	stats := srv.Stats()
	var admitted, evicted, violations int64
	for _, ts := range stats {
		admitted += ts.Admitted
		evicted += ts.Evicted
		violations += ts.Violations
		if ts.MaxSessionSteps > p.budget {
			fatalf("tenant %s: session consumed %d steps over budget %d", ts.ID, ts.MaxSessionSteps, p.budget)
		}
		if p.verbose {
			fmt.Printf("  %s: tenant %-8s admitted=%d completed=%d evicted=%d rejected=%d steps=%d hops=%d max_session=%d\n",
				engine, ts.ID, ts.Admitted, ts.Completed, ts.Evicted, ts.Rejected, ts.Steps, ts.Hops, ts.MaxSessionSteps)
		}
	}
	if violations != 0 {
		fatalf("%s: %d quota violations", engine, violations)
	}
	if p.hogEvery > 0 && evicted == 0 {
		fatalf("%s: no hog was evicted", engine)
	}
	if live := srv.LiveSessions(); live != 0 {
		fatalf("%s: %d sessions still live after drain", engine, live)
	}

	col.mu.Lock()
	lats := append([]sim.Time(nil), col.latencies...)
	completed := col.completed
	colEvicted := col.evicted
	col.mu.Unlock()
	if completed+colEvicted != admitted {
		fatalf("%s: %d completions for %d admissions", engine, completed+colEvicted, admitted)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(sim.Millisecond)
	}
	var tput float64
	if engineSeconds > 0 {
		tput = float64(completed+colEvicted) / engineSeconds
	}
	return runResult{
		Engine:           engine,
		Daemons:          p.daemons,
		Tenants:          p.tenants,
		Offered:          offered,
		Admitted:         admitted,
		Completed:        completed,
		Evicted:          evicted,
		Rejected:         rejected,
		Violations:       violations,
		Throughput:       tput,
		P50Ms:            pct(0.50),
		P99Ms:            pct(0.99),
		RejectRate:       float64(rejected) / float64(offered),
		OverloadOffered:  overloadOffered,
		OverloadRejected: overloadRejected,
		OverloadRate:     float64(overloadRejected) / float64(overloadOffered),
		WallS:            wallSeconds,
	}
}

func fatal(err error) { fatalf("%v", err) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mload: "+format+"\n", args...)
	os.Exit(1)
}
