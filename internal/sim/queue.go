package sim

// eventQueue is the kernel's pending-event set. The contract is a strict
// priority queue under the total order (at, seq): Pop returns events in
// exactly that order regardless of implementation, so every queue yields
// byte-identical simulations and the kernel can swap structures freely.
type eventQueue interface {
	Push(e *event)
	// Pop removes and returns the earliest event; nil when empty.
	Pop() *event
	// Peek returns the earliest event without removing it; nil when empty.
	Peek() *event
	Len() int
}

// eventBefore is the kernel's total event order.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapQueue is the classic binary-heap queue: O(log n) per operation,
// minimal constant overhead, the right choice for sparse horizons (tens
// to hundreds of pending events).
type heapQueue struct {
	h *Heap[*event]
}

func newHeapQueue() *heapQueue {
	return &heapQueue{h: NewHeap(eventBefore)}
}

func (q *heapQueue) Push(e *event) { q.h.Push(e) }

func (q *heapQueue) Pop() *event {
	if q.h.Len() == 0 {
		return nil
	}
	return q.h.Pop()
}

func (q *heapQueue) Peek() *event {
	if q.h.Len() == 0 {
		return nil
	}
	return q.h.Peek()
}

func (q *heapQueue) Len() int { return q.h.Len() }

// calendarQueue is R. Brown's calendar queue (CACM 1988): a ring of
// time-indexed buckets, each one "day" wide, scanned like a desk
// calendar. With the bucket count and width tracking the queue size and
// event-time density, Push and Pop are O(1) amortized — which is what a
// 1k–10k-host simulation needs, where the global heap's log n and its
// cache misses dominate the kernel profile.
//
// Determinism: an event's bucket is a pure function of its timestamp, and
// each bucket is kept sorted by (at, seq), so equal-time events land in
// the same bucket and dequeue in seq order — the total order is exactly
// the heap's.
type calendarQueue struct {
	buckets [][]*event
	width   Time // bucket span; >= 1 tick
	n       int  // total events held
	// lastAt tracks the dequeue frontier: the bucket scan starts at the
	// bucket containing lastAt, and years below it are already empty.
	lastAt Time
}

const (
	// calendarMinBuckets keeps the ring from degenerating when nearly empty.
	calendarMinBuckets = 4
	// calendarDefaultWidth is used before any inter-event spacing is
	// observable. One microsecond of simulated time per bucket suits the
	// LAN model's event granularity; resize adapts it immediately anyway.
	calendarDefaultWidth = Time(1000)
)

func newCalendarQueue(start Time) *calendarQueue {
	return &calendarQueue{
		buckets: make([][]*event, calendarMinBuckets),
		width:   calendarDefaultWidth,
		lastAt:  start,
	}
}

func (q *calendarQueue) Len() int { return q.n }

func (q *calendarQueue) bucketOf(at Time) int {
	return int((at / q.width) % Time(len(q.buckets)))
}

func (q *calendarQueue) Push(e *event) {
	b := q.bucketOf(e.at)
	q.buckets[b] = insertSorted(q.buckets[b], e)
	q.n++
	// The kernel only schedules at or after now, but the queue does not
	// rely on that: a push behind the frontier pulls the frontier back so
	// the year scan still starts at or before the true minimum.
	if e.at < q.lastAt {
		q.lastAt = e.at
	}
	if q.n > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// insertSorted places e into a (at, seq)-sorted slice by binary search.
func insertSorted(s []*event, e *event) []*event {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if eventBefore(s[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, nil)
	copy(s[lo+1:], s[lo:])
	s[lo] = e
	return s
}

func (q *calendarQueue) Peek() *event {
	e, _ := q.scan(false)
	return e
}

func (q *calendarQueue) Pop() *event {
	e, b := q.scan(true)
	if e == nil {
		return nil
	}
	q.buckets[b] = q.buckets[b][1:]
	if len(q.buckets[b]) == 0 {
		q.buckets[b] = nil
	}
	q.n--
	q.lastAt = e.at
	if q.n < len(q.buckets)/2 && len(q.buckets) > calendarMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return e
}

// scan finds the earliest event. It walks one calendar year of buckets
// starting at the frontier, accepting an event only if it falls inside
// the bucket's current day (otherwise it belongs to a later year and the
// walk continues); if a whole year turns up nothing, it falls back to a
// direct min scan over all bucket heads — the standard calendar-queue
// escape for a sparse far-future tail.
func (q *calendarQueue) scan(advance bool) (*event, int) {
	if q.n == 0 {
		return nil, -1
	}
	nb := Time(len(q.buckets))
	day := q.lastAt / q.width // absolute day index of the frontier
	for i := Time(0); i < nb; i++ {
		d := day + i
		b := int(d % nb)
		if s := q.buckets[b]; len(s) > 0 {
			if e := s[0]; e.at/q.width == d {
				if advance {
					q.lastAt = d * q.width
				}
				return e, b
			}
		}
	}
	// Direct search: earliest head across all buckets.
	var best *event
	bi := -1
	for b, s := range q.buckets {
		if len(s) > 0 && (best == nil || eventBefore(s[0], best)) {
			best, bi = s[0], b
		}
	}
	if advance && best != nil {
		q.lastAt = (best.at / q.width) * q.width
	}
	return best, bi
}

// resize rebuilds the ring with nb buckets and a width matched to the
// observed event-time spread, so each bucket holds O(1) events.
func (q *calendarQueue) resize(nb int) {
	if nb < calendarMinBuckets {
		nb = calendarMinBuckets
	}
	old := q.buckets
	q.width = q.pickWidth()
	q.buckets = make([][]*event, nb)
	for _, s := range old {
		for _, e := range s {
			b := q.bucketOf(e.at)
			q.buckets[b] = insertSorted(q.buckets[b], e)
		}
	}
}

// pickWidth estimates a bucket width from the current min/max timestamp
// spread: span/n approximates the mean inter-event gap, and tripling it
// follows Brown's rule of thumb so a bucket usually holds at most a few
// events without most buckets sitting empty.
func (q *calendarQueue) pickWidth() Time {
	var lo, hi Time
	first := true
	for _, s := range q.buckets {
		for _, e := range s {
			if first {
				lo, hi = e.at, e.at
				first = false
				continue
			}
			if e.at < lo {
				lo = e.at
			}
			if e.at > hi {
				hi = e.at
			}
		}
	}
	if first || hi == lo || q.n < 2 {
		return calendarDefaultWidth
	}
	w := 3 * (hi - lo) / Time(q.n)
	if w < 1 {
		w = 1
	}
	return w
}

// adaptiveQueue starts on the heap and migrates to a calendar queue when
// the pending set grows dense, and back when it drains — the kernel pays
// heap constants at example scale and calendar O(1) at 1k-host scale.
// Hysteresis (grow at adaptUp, shrink at adaptDown) keeps a workload
// hovering near one threshold from thrashing between structures.
//
// The wrapper holds the two structures as concrete types and dispatches on
// one predictable branch: routing through a nested eventQueue interface
// value would make every operation two dynamic calls deep and block
// inlining, which benchmarks as a double-digit percent tax at exactly the
// small-horizon scale the heap arm exists for.
type adaptiveQueue struct {
	heap *heapQueue
	cal  *calendarQueue // non-nil while on the calendar arm
}

const (
	// adaptUp sits well below the 1k-host scale point so the steady-state
	// pending set of a large simulation rides the calendar arm rather than
	// hovering on the heap just under the threshold.
	adaptUp   = 512
	adaptDown = 128
)

func newAdaptiveQueue() *adaptiveQueue {
	return &adaptiveQueue{heap: newHeapQueue()}
}

func (a *adaptiveQueue) Push(e *event) {
	if a.cal != nil {
		a.cal.Push(e)
		return
	}
	a.heap.Push(e)
	if a.heap.Len() > adaptUp {
		a.migrateToCalendar()
	}
}

func (a *adaptiveQueue) Pop() *event {
	if a.cal != nil {
		e := a.cal.Pop()
		if a.cal.Len() < adaptDown {
			a.migrateToHeap()
		}
		return e
	}
	return a.heap.Pop()
}

func (a *adaptiveQueue) Peek() *event {
	if a.cal != nil {
		return a.cal.Peek()
	}
	return a.heap.Peek()
}

func (a *adaptiveQueue) Len() int {
	if a.cal != nil {
		return a.cal.Len()
	}
	return a.heap.Len()
}

func (a *adaptiveQueue) migrateToCalendar() {
	start := Time(0)
	if e := a.heap.Peek(); e != nil {
		start = e.at
	}
	cal := newCalendarQueue(start)
	for {
		e := a.heap.Pop()
		if e == nil {
			break
		}
		cal.Push(e)
	}
	a.heap, a.cal = nil, cal
}

func (a *adaptiveQueue) migrateToHeap() {
	h := newHeapQueue()
	for {
		e := a.cal.Pop()
		if e == nil {
			break
		}
		h.Push(e)
	}
	a.heap, a.cal = h, nil
}
