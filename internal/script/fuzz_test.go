package script

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnRandomBytes feeds noise to the parser: it must
// return an error or an AST, never panic.
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", data, r)
			}
		}()
		_, _ = Parse(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnTokenSoup throws syntactically plausible token
// streams at the parser, which probes deeper paths than raw bytes.
func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	atoms := []string{
		"x", "node", "msgr", "$last", "hop", "create", "delete", "if",
		"else", "while", "for", "func", "return", "break", "end", "ALL",
		"(", ")", "{", "}", "[", "]", ";", ",", "=", "==", "+", "-", "*",
		"/", "%", "&&", "||", "!", "<", ">", "~", ".", "42", "1.5",
		`"str"`, "nil", "ln", "ll", "ldir", "dn", "virtual", "++", "+=",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := r.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(atoms[r.Intn(len(atoms))])
			b.WriteByte(' ')
		}
		src := b.String()
		defer func() {
			if rec := recover(); rec != nil {
				t.Errorf("Parse(%q) panicked: %v", src, rec)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestLexAllNeverPanics covers the lexer the same way.
func TestLexAllNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("LexAll(%q) panicked: %v", data, r)
			}
		}()
		_, _ = LexAll(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
