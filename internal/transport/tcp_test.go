package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"messengers/internal/compile"
	"messengers/internal/core"
	"messengers/internal/obs"
	"messengers/internal/sim"
	"messengers/internal/value"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {1}, bytes.Repeat([]byte{7}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame corrupted: %d vs %d bytes", len(got), len(want))
		}
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header should fail")
	}
	bad := []byte{0xff, 0xff, 0, 0, 1, 0, 0, 0, 9}
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadFrame(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated body should fail")
	}
}

// tcpSystem builds an n-daemon system over loopback TCP. MSGR_DIST_GVT=1
// reruns the whole suite under the ring-reduction GVT protocol (prepended
// so a test's explicit options win).
func tcpSystem(t *testing.T, n int, opts ...core.Option) (*core.System, *TCPEngine) {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	eng, err := NewTCPEngine(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	if os.Getenv("MSGR_DIST_GVT") == "1" {
		opts = append([]core.Option{core.WithDistributedGVT()}, opts...)
	}
	sys := core.NewSystem(eng, core.FullMesh(n), opts...)
	return sys, eng
}

func waitQuiesce(t *testing.T, sys *core.System, eng *TCPEngine) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		sys.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("no quiescence (live=%d, transport errs=%v)", sys.Live(), eng.Errors())
	}
	for _, err := range sys.Errors() {
		t.Errorf("runtime error: %v", err)
	}
	for _, err := range eng.Errors() {
		t.Errorf("transport error: %v", err)
	}
}

func TestManagerWorkerOverTCP(t *testing.T) {
	const nDaemons = 4
	const nTasks = 25
	sys, eng := tcpSystem(t, nDaemons)

	sys.RegisterNative("next_task", func(ctx *core.NativeCtx, _ []value.Value) (value.Value, error) {
		next := ctx.NodeVar("next").AsInt()
		if next >= nTasks {
			return value.Nil(), nil
		}
		ctx.SetNodeVar("next", value.Int(next+1))
		return value.Int(next), nil
	})
	sys.RegisterNative("compute", func(_ *core.NativeCtx, args []value.Value) (value.Value, error) {
		return value.Int(args[0].AsInt() * 7), nil
	})
	sys.RegisterNative("deposit", func(ctx *core.NativeCtx, args []value.Value) (value.Value, error) {
		ctx.SetNodeVar("acc", value.Int(ctx.NodeVar("acc").AsInt()+args[0].AsInt()))
		return value.Nil(), nil
	})
	prog, err := compile.Compile("mw", `
		create(ALL);
		hop(ll = $last);
		while ((task = next_task()) != nil) {
			hop(ll = $last);
			res = compute(task);
			hop(ll = $last);
			deposit(res);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(prog)
	if err := sys.Inject(0, "mw", nil); err != nil {
		t.Fatal(err)
	}
	waitQuiesce(t, sys, eng)

	got := make(chan int64, 1)
	sys.Do(0, func(d *core.Daemon) { got <- d.Store().Init().Vars["acc"].AsInt() })
	var want int64
	for i := int64(0); i < nTasks; i++ {
		want += i * 7
	}
	if v := <-got; v != want {
		t.Errorf("acc = %d, want %d", v, want)
	}
}

func TestGVTOverTCP(t *testing.T) {
	sys, eng := tcpSystem(t, 3, core.WithGVTInterval(sim.Millisecond))
	prog, err := compile.Compile("tick", `
		for (k = 0; k < 4; k++) {
			sched_abs(k * 1.0 + phase);
			print(tag, k);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(prog)
	inj := func(d int, tag string, phase float64) {
		t.Helper()
		err := sys.Inject(d, "tick", map[string]value.Value{
			"tag": value.Str(tag), "phase": value.Num(phase),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	inj(1, "A", 0.1)
	inj(2, "B", 0.6)
	waitQuiesce(t, sys, eng)
	out := sys.Output()
	if len(out) != 8 {
		t.Fatalf("output = %v", out)
	}
	for i, line := range out {
		want := "A"
		if i%2 == 1 {
			want = "B"
		}
		if !strings.HasPrefix(line, want) {
			t.Errorf("line %d = %q, want prefix %q (GVT order broke over TCP)", i, line, want)
		}
	}
}

func TestAddrsAndDoubleClose(t *testing.T) {
	eng, err := NewTCPEngine([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addrs := eng.Addrs()
	if len(addrs) != 2 || addrs[0] == addrs[1] {
		t.Errorf("addrs = %v", addrs)
	}
	eng.Close()
	eng.Close() // idempotent
}

func TestListenFailure(t *testing.T) {
	if _, err := NewTCPEngine([]string{"256.256.256.256:1"}); err == nil {
		t.Error("bad address should fail")
	}
}

func TestGarbageConnectionIsRejected(t *testing.T) {
	// A rogue peer sending noise must not crash the engine or corrupt a
	// running system.
	sys, eng := tcpSystem(t, 2)
	addr := eng.Addrs()[1]

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("definitely not a frame")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A well-formed hello followed by a garbage frame body.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn2, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn2, []byte("garbage message payload")); err != nil {
		t.Fatal(err)
	}
	conn2.Close()

	// The system must still work end to end.
	prog, err := compile.Compile("ok", `
		create(ALL);
		hop(ll = $last);
		node.done = node.done + 1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(prog)
	if err := sys.Inject(0, "ok", nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		sys.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("system wedged after garbage connection")
	}
	for _, err := range sys.Errors() {
		t.Errorf("runtime error: %v", err)
	}
	result := make(chan int64, 1)
	sys.Do(0, func(d *core.Daemon) { result <- d.Store().Init().Vars["done"].AsInt() })
	if got := <-result; got != 1 {
		t.Errorf("done = %d", got)
	}
}

func TestZeroLengthFrame(t *testing.T) {
	// An empty payload is a legal frame: header only, body absent. Both nil
	// and empty-slice spellings must round-trip and not desync the stream.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte{42}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != 0 {
			t.Errorf("frame %d: %d bytes, want empty", i, len(got))
		}
	}
	got, err := ReadFrame(&buf)
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Errorf("stream desynced after empty frames: %v %v", got, err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	// A header advertising more than maxFrame must be rejected before any
	// allocation, not after attempting to read gigabytes.
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], maxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame: %v", err)
	}
	// Exactly maxFrame is allowed through to the body read (which then
	// fails on the empty reader, proving the limit check passed).
	binary.LittleEndian.PutUint32(hdr[4:], maxFrame)
	_, err = ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("frame at the limit should pass the size check: %v", err)
	}
}

func TestMidFrameConnectionClose(t *testing.T) {
	// A peer dying mid-frame must surface as a read error on the live side,
	// never a short frame silently handed to the decoder.
	client, server := net.Pipe()
	go func() {
		var hdr [8]byte
		binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
		binary.LittleEndian.PutUint32(hdr[4:], 100)
		client.Write(hdr[:])
		client.Write(make([]byte, 10)) // 10 of the promised 100 bytes
		client.Close()
	}()
	if _, err := ReadFrame(server); err == nil {
		t.Error("mid-frame close should fail the read")
	}
	server.Close()

	// Close between the header and the body of the NEXT frame: the first
	// frame reads fine, the second errors.
	client2, server2 := net.Pipe()
	go func() {
		WriteFrame(client2, []byte("whole frame"))
		var hdr [8]byte
		binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
		binary.LittleEndian.PutUint32(hdr[4:], 5)
		client2.Write(hdr[:])
		client2.Close()
	}()
	if got, err := ReadFrame(server2); err != nil || string(got) != "whole frame" {
		t.Fatalf("first frame: %q, %v", got, err)
	}
	if _, err := ReadFrame(server2); err == nil {
		t.Error("headerless body should fail the read")
	}
	server2.Close()
}

func TestTCPTraceEvents(t *testing.T) {
	// A traced TCP run must record the wire activity (net.send / net.recv
	// with byte counts) interleaved with the messenger lifecycle events the
	// daemons emit on the same tracer.
	tr := obs.NewTracer()
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	eng, err := NewTCPEngine(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	eng.SetTracer(tr)
	sys := core.NewSystem(eng, core.FullMesh(2), core.WithTracer(tr))

	prog, err := compile.Compile("hopper", `
		create(ALL);
		hop(ll = $last);
		node.done = 1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(prog)
	if err := sys.Inject(0, "hopper", nil); err != nil {
		t.Fatal(err)
	}
	waitQuiesce(t, sys, eng)

	count := func(name string) (n int) {
		for _, e := range tr.Events() {
			if e.Name == name {
				n++
			}
		}
		return
	}
	sends, recvs := count("net.send"), count("net.recv")
	if sends == 0 || recvs == 0 {
		t.Fatalf("net.send = %d, net.recv = %d, want both > 0", sends, recvs)
	}
	// Loopback delivers everything that was sent.
	if sends != recvs {
		t.Errorf("net.send = %d but net.recv = %d", sends, recvs)
	}
	for _, name := range []string{"inject", "create.depart", "hop.depart", "hop.arrive", "terminate"} {
		if count(name) == 0 {
			t.Errorf("traced TCP run has no %q event", name)
		}
	}
	for _, e := range tr.Events() {
		if e.Name != "net.send" && e.Name != "net.recv" {
			continue
		}
		ok := false
		for _, f := range e.Args {
			if f.Key == "bytes" && f.Int() > 0 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("%s event missing positive bytes arg: %+v", e.Name, e.Args)
		}
	}
}

// TestConcurrentSendClose hammers Send from many goroutines while Close
// runs, exercising the executor-drain-then-network teardown order under the
// race detector.
func TestConcurrentSendClose(t *testing.T) {
	for round := 0; round < 3; round++ {
		_, eng := tcpSystem(t, 3)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					eng.Send(g%3, (g+1+i)%3, &core.Msg{Kind: core.MsgHeartbeat, From: g % 3})
				}
			}()
		}
		time.Sleep(5 * time.Millisecond)
		eng.Close()
		close(stop)
		wg.Wait()
	}
}

// TestCloseDrainsExecutors: work queued on an executor before Close must
// finish before Close returns (the executors drain before the network is
// torn down).
func TestCloseDrainsExecutors(t *testing.T) {
	_, eng := tcpSystem(t, 2)
	var ran atomic.Bool
	eng.Exec(0, 0, func() {
		time.Sleep(50 * time.Millisecond)
		// The network must still be up: a send from inside drained work
		// goes out rather than erroring.
		eng.Send(0, 1, &core.Msg{Kind: core.MsgHeartbeat, From: 0})
		ran.Store(true)
	})
	eng.Close()
	if !ran.Load() {
		t.Error("Close returned before queued executor work drained")
	}
}

// TestErrorRingBounded: the transport error log is a bounded ring that
// keeps the newest errors and counts evictions.
func TestErrorRingBounded(t *testing.T) {
	_, eng := tcpSystem(t, 1)
	m := obs.NewMetrics()
	eng.SetMetrics(m)
	for i := 0; i < maxErrors+50; i++ {
		eng.recordError(fmt.Errorf("err %d", i))
	}
	errs := eng.Errors()
	if len(errs) != maxErrors {
		t.Fatalf("retained %d errors, want %d", len(errs), maxErrors)
	}
	if got := errs[0].Error(); got != "err 50" {
		t.Errorf("oldest retained = %q, want err 50", got)
	}
	if got := errs[len(errs)-1].Error(); got != fmt.Sprintf("err %d", maxErrors+49) {
		t.Errorf("newest retained = %q", got)
	}
	if eng.ErrorsDropped() != 50 {
		t.Errorf("dropped = %d, want 50", eng.ErrorsDropped())
	}
	if m.CounterValue("transport.errors.dropped") != 50 {
		t.Errorf("dropped counter = %d, want 50", m.CounterValue("transport.errors.dropped"))
	}
}

// TestHeartbeatDetectsKillAndRevive: killing a daemon makes the survivors'
// failure detector fire PeerDown; reviving it brings heartbeats back and
// fires PeerUp.
func TestHeartbeatDetectsKillAndRevive(t *testing.T) {
	metrics := obs.NewMetrics()
	sys, eng := tcpSystem(t, 2,
		core.WithMetrics(metrics), core.WithRecovery(core.RecoveryConfig{}))
	_ = sys
	eng.StartHeartbeats(5*time.Millisecond, 30*time.Millisecond)

	waitCounter := func(name string, want int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for metrics.CounterValue(name) < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s = %d, want >= %d", name, metrics.CounterValue(name), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	eng.KillDaemon(1)
	waitCounter("net.peer.down", 1)
	if err := eng.ReviveDaemon(1); err != nil {
		t.Fatal(err)
	}
	waitCounter("net.peer.up", 1)
}

// TestDialBackoffAndReconnect: dials to an unreachable peer back off
// instead of hammering, and a successful redial after failures counts as a
// reconnect.
func TestDialBackoffAndReconnect(t *testing.T) {
	_, eng := tcpSystem(t, 2)
	m := obs.NewMetrics()
	eng.SetMetrics(m)

	eng.mu.Lock()
	l := eng.listeners[1]
	eng.mu.Unlock()
	l.Close()
	eng.dropConn(0, 1)

	if _, err := eng.conn(0, 1); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	if _, err := eng.conn(0, 1); err == nil || !strings.Contains(err.Error(), "backing off") {
		t.Fatalf("second dial not in backoff: %v", err)
	}

	l2, err := net.Listen("tcp", eng.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	eng.mu.Lock()
	eng.listeners[1] = l2
	eng.mu.Unlock()
	eng.netWG.Add(1)
	go func() {
		defer eng.netWG.Done()
		eng.acceptLoop(1, l2)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := eng.conn(0, 1); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("redial never succeeded after listener came back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.CounterValue("net.reconnects") != 1 {
		t.Errorf("reconnects = %d, want 1", m.CounterValue("net.reconnects"))
	}
}

// TestFaultHookDrop: a hook dropping all frames silences the wire without
// errors; clearing it restores delivery.
func TestFaultHookDrop(t *testing.T) {
	var dropped atomic.Int64
	_, eng := tcpSystem(t, 2)
	eng.SetFaultHook(func(now int64, src, dst, size int) FaultVerdict {
		dropped.Add(1)
		return FaultVerdict{Drop: true}
	})
	eng.Send(0, 1, &core.Msg{Kind: core.MsgHeartbeat, From: 0})
	if dropped.Load() != 1 {
		t.Fatalf("hook consulted %d times, want 1", dropped.Load())
	}
	if errs := eng.Errors(); len(errs) != 0 {
		t.Errorf("dropping produced errors: %v", errs)
	}
	eng.SetFaultHook(nil)
	eng.Send(0, 1, &core.Msg{Kind: core.MsgHeartbeat, From: 0})
	if dropped.Load() != 1 {
		t.Error("cleared hook still consulted")
	}
}
