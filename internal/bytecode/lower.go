package bytecode

// The lowering pass: a post-verify translation of a Program's stack code
// into an internal "direct" instruction stream built for fast dispatch.
//
// The wire format and the verifier see only the portable Instr stream;
// lowering is derived, cached on the Program, and never serialized — a
// program arriving over the wire is re-verified and re-lowered locally, so
// goldens and content hashes are untouched. What lowering buys the
// interpreter:
//
//   - operands are pre-decoded: constants become the value.Value itself
//     (tagged with whether a defensive clone is needed), names become the
//     string, and Messenger-variable names become indices into a per-
//     program slot table so the hot loop never touches a map;
//   - jump targets are resolved to direct-stream indices;
//   - hot adjacent opcode sequences are fused into superinstructions:
//     pairs, plus two four-wide loop idioms (the compare-and-branch loop
//     head and the load-const-arith-store increment) that execute without
//     touching the operand stack at all. The set was chosen from the
//     per-opcode execution profiles the obs registry collects on the E1
//     workloads (Mandelbrot inner loop, block matmul, ring walkers — see
//     cmd/mvm -pairs): those families cover >70% of dynamically executed
//     pairs there.
//
// Only package vm may consume the lowered form (enforced by the
// vmdispatch analyzer); everything else treats a Program as opaque.

import (
	"sync/atomic"

	"messengers/internal/value"
)

// DOp is a direct-stream opcode. The first block mirrors the portable
// instruction set one-to-one (pre-decoded); the DF block holds fused
// superinstructions covering two source instructions each.
type DOp uint8

// Direct opcodes.
const (
	DNop DOp = iota
	// DConst pushes Val without cloning (immutable scalar kinds only).
	DConst
	// DConstClone pushes Val.Clone() (mutable aggregate constants).
	DConstClone
	// DLoadM/DStoreM access Messenger-variable slot A (see Lowered.MVars).
	DLoadM
	DStoreM
	// DLoadN/DStoreN/DLoadNet access node/network variable Name.
	DLoadN
	DStoreN
	DLoadNet
	DLoadL
	DStoreL
	DPop
	DDup
	DDup2
	DAdd
	DSub
	DMul
	DDiv
	DMod
	DNeg
	DNot
	DEq
	DNe
	DLt
	DLe
	DGt
	DGe
	// DJmp/DJz jump to direct-stream index A of the same function.
	DJmp
	DJz
	DIndex
	DSetIndex
	DArr
	DCallFunc
	DRet
	// DCallNative invokes builtin or native Name with B stack arguments.
	DCallNative
	DHop
	DCreate
	DDelete
	DSchedAbs
	DSchedDlt
	DEnd

	// Fused superinstructions (N=2). Naming: constituents in source order.
	// A further quad block (N=4) follows the pairs.

	// DFConstAdd..DFConstMod: push Val then arithmetic — computed as
	// top ⊕ Val without materializing the push.
	DFConstAdd
	DFConstSub
	DFConstMul
	DFConstDiv
	DFConstMod
	// DFLoadMConst/DFLoadLConst: push Messenger slot A (local slot A),
	// then push Val.
	DFLoadMConst
	DFLoadLConst
	// DFLoadMM/DFLoadLL: push slots A then B.
	DFLoadMM
	DFLoadLL
	// DFEqJz..DFGeJz: compare then branch to direct index A when the
	// comparison is false (the Jz of a loop head).
	DFEqJz
	DFNeJz
	DFLtJz
	DFLeJz
	DFGtJz
	DFGeJz
	// DFAddStoreM..DFModStoreM: arithmetic then store into Messenger
	// slot A. DFAddStoreL..: same into local slot A.
	DFAddStoreM
	DFSubStoreM
	DFMulStoreM
	DFDivStoreM
	DFModStoreM
	DFAddStoreL
	DFSubStoreL
	DFMulStoreL
	DFDivStoreL
	DFModStoreL

	// Quad superinstructions (N=4): whole loop idioms. A loop head
	// "load, load-or-const, ordered-compare, jz" and an increment
	// "load, const, arithmetic, store" each collapse into one dispatch
	// that never touches the operand stack. MM/MC operate on Messenger
	// slots, LL/LC on locals; the trailing letter pair names the operand
	// shape (M/L slot + M/L slot or Const).

	// DFMMLtJz..DFMMGeJz: compare Messenger slots A and B, branch to
	// direct index C when false.
	DFMMLtJz
	DFMMLeJz
	DFMMGtJz
	DFMMGeJz
	// DFMCLtJz..DFMCGeJz: compare Messenger slot A with constant Val,
	// branch to direct index C when false.
	DFMCLtJz
	DFMCLeJz
	DFMCGtJz
	DFMCGeJz
	// DFLLLtJz..DFLLGeJz / DFLCLtJz..DFLCGeJz: the local-slot forms.
	DFLLLtJz
	DFLLLeJz
	DFLLGtJz
	DFLLGeJz
	DFLCLtJz
	DFLCLeJz
	DFLCGtJz
	DFLCGeJz
	// DFMCAddStoreM..: Messenger slot A ⊕ constant Val into Messenger
	// slot B (the i = i + 1 idiom). DFLCAddStoreL..: local form.
	DFMCAddStoreM
	DFMCSubStoreM
	DFMCMulStoreM
	DFMCDivStoreM
	DFMCModStoreM
	DFLCAddStoreL
	DFLCSubStoreL
	DFLCMulStoreL
	DFLCDivStoreL
	DFLCModStoreL

	// Kind-specialized variants. Emitted only under LowerKind, at source
	// PCs where the kind-flow verifier (kinds.go) proved the operand kinds;
	// their handlers read value payloads directly with no dynamic kind
	// guard — Restore re-checks every snapshot-injected value against the
	// same proofs, so the guard is spent once at admission instead of per
	// dispatch. The suffix names the proven kinds in stack order: II
	// int/int, NN num/num, IN int/num, NI num/int. Stream shape (fusion,
	// S2D, Src, N, operands) is identical to LowerFused — only opcodes
	// change — so snapshots, meters, and profiles are unaffected.

	// Plain arithmetic over proven kinds. Div/Mod II keep the runtime
	// zero check (the divisor's value stays dynamic even when its kind is
	// proven); every other variant is guard- and branch-free.
	DAddII
	DSubII
	DMulII
	DDivII
	DModII
	DAddNN
	DSubNN
	DMulNN
	DDivNN
	DModNN
	DAddIN
	DSubIN
	DMulIN
	DDivIN
	DModIN
	DAddNI
	DSubNI
	DMulNI
	DDivNI
	DModNI
	// Const-arith pairs. The constant's value is static too, so the II
	// div/mod variants are emitted only for a nonzero constant and skip
	// even the zero check.
	DFConstAddII
	DFConstSubII
	DFConstMulII
	DFConstDivII
	DFConstModII
	DFConstAddNN
	DFConstSubNN
	DFConstMulNN
	DFConstDivNN
	DFConstModNN
	// Compare-and-branch pairs over proven ints. Eq/Ne compare int64
	// exactly; the ordered forms promote through float64 like the oracle.
	DFEqJzII
	DFNeJzII
	DFLtJzII
	DFLeJzII
	DFGtJzII
	DFGeJzII
	// Arith-store pairs (M block then L block, matching the generic order).
	DFAddStoreMII
	DFSubStoreMII
	DFMulStoreMII
	DFDivStoreMII
	DFModStoreMII
	DFAddStoreLII
	DFSubStoreLII
	DFMulStoreLII
	DFDivStoreLII
	DFModStoreLII
	DFAddStoreMNN
	DFSubStoreMNN
	DFMulStoreMNN
	DFDivStoreMNN
	DFModStoreMNN
	DFAddStoreLNN
	DFSubStoreLNN
	DFMulStoreLNN
	DFDivStoreLNN
	DFModStoreLNN
	// Quad loop heads over proven ints — the fully guard-free form of the
	// hottest dispatch in every counting loop.
	DFMMLtJzII
	DFMMLeJzII
	DFMMGtJzII
	DFMMGeJzII
	DFMCLtJzII
	DFMCLeJzII
	DFMCGtJzII
	DFMCGeJzII
	DFLLLtJzII
	DFLLLeJzII
	DFLLGtJzII
	DFLLGeJzII
	DFLCLtJzII
	DFLCLeJzII
	DFLCGtJzII
	DFLCGeJzII
	// Quad increments over proven ints (div/mod only when the constant is
	// a nonzero int, so no zero check survives).
	DFMCAddStoreMII
	DFMCSubStoreMII
	DFMCMulStoreMII
	DFMCDivStoreMII
	DFMCModStoreMII
	DFLCAddStoreLII
	DFLCSubStoreLII
	DFLCMulStoreLII
	DFLCDivStoreLII
	DFLCModStoreLII

	NumDOps
)

// Generic returns the unspecialized opcode a kind-specialized opcode was
// derived from, or o itself for unspecialized opcodes. Specialized opcodes
// share their generic counterpart's constituents, step weight, and stream
// position — only the handler differs.
func (o DOp) Generic() DOp {
	switch {
	case o < DAddII:
		return o
	case o <= DModNI:
		return DAdd + (o-DAddII)%5
	case o <= DFConstModNN:
		return DFConstAdd + (o-DFConstAddII)%5
	case o <= DFGeJzII:
		return DFEqJz + (o - DFEqJzII)
	case o <= DFModStoreLNN:
		return DFAddStoreM + (o-DFAddStoreMII)%10
	case o <= DFLCGeJzII:
		return DFMMLtJz + (o - DFMMLtJzII)
	default:
		return DFMCAddStoreM + (o - DFMCAddStoreMII)
	}
}

// specSuffix is the kind annotation a specialized opcode appends to its
// generic mnemonic.
func specSuffix(o DOp) string {
	switch {
	case o < DAddII:
		return ""
	case o <= DModNI:
		return [4]string{".ii", ".nn", ".in", ".ni"}[(o-DAddII)/5]
	case o <= DFConstModNN:
		if o <= DFConstModII {
			return ".ii"
		}
		return ".nn"
	case o <= DFModStoreLNN && o >= DFAddStoreMNN:
		return ".nn"
	default:
		return ".ii"
	}
}

var dopNames = [NumDOps]string{
	DNop: "nop", DConst: "const", DConstClone: "const*", DLoadM: "loadm",
	DStoreM: "storem", DLoadN: "loadn", DStoreN: "storen", DLoadNet: "loadnet",
	DLoadL: "loadl", DStoreL: "storel", DPop: "pop", DDup: "dup", DDup2: "dup2",
	DAdd: "add", DSub: "sub", DMul: "mul", DDiv: "div", DMod: "mod",
	DNeg: "neg", DNot: "not", DEq: "eq", DNe: "ne", DLt: "lt", DLe: "le",
	DGt: "gt", DGe: "ge", DJmp: "jmp", DJz: "jz", DIndex: "index",
	DSetIndex: "setindex", DArr: "arr", DCallFunc: "callf", DRet: "ret",
	DCallNative: "calln", DHop: "hop", DCreate: "create", DDelete: "delete",
	DSchedAbs: "schedabs", DSchedDlt: "scheddlt", DEnd: "end",
	DFConstAdd: "const+add", DFConstSub: "const+sub", DFConstMul: "const+mul",
	DFConstDiv: "const+div", DFConstMod: "const+mod",
	DFLoadMConst: "loadm+const", DFLoadLConst: "loadl+const",
	DFLoadMM: "loadm+loadm", DFLoadLL: "loadl+loadl",
	DFEqJz: "eq+jz", DFNeJz: "ne+jz", DFLtJz: "lt+jz", DFLeJz: "le+jz",
	DFGtJz: "gt+jz", DFGeJz: "ge+jz",
	DFAddStoreM: "add+storem", DFSubStoreM: "sub+storem", DFMulStoreM: "mul+storem",
	DFDivStoreM: "div+storem", DFModStoreM: "mod+storem",
	DFAddStoreL: "add+storel", DFSubStoreL: "sub+storel", DFMulStoreL: "mul+storel",
	DFDivStoreL: "div+storel", DFModStoreL: "mod+storel",
	DFMMLtJz: "mm<jz", DFMMLeJz: "mm<=jz", DFMMGtJz: "mm>jz", DFMMGeJz: "mm>=jz",
	DFMCLtJz: "mc<jz", DFMCLeJz: "mc<=jz", DFMCGtJz: "mc>jz", DFMCGeJz: "mc>=jz",
	DFLLLtJz: "ll<jz", DFLLLeJz: "ll<=jz", DFLLGtJz: "ll>jz", DFLLGeJz: "ll>=jz",
	DFLCLtJz: "lc<jz", DFLCLeJz: "lc<=jz", DFLCGtJz: "lc>jz", DFLCGeJz: "lc>=jz",
	DFMCAddStoreM: "m+c>m", DFMCSubStoreM: "m-c>m", DFMCMulStoreM: "m*c>m",
	DFMCDivStoreM: "m/c>m", DFMCModStoreM: "m%c>m",
	DFLCAddStoreL: "l+c>l", DFLCSubStoreL: "l-c>l", DFLCMulStoreL: "l*c>l",
	DFLCDivStoreL: "l/c>l", DFLCModStoreL: "l%c>l",
}

// String returns the mnemonic.
func (o DOp) String() string {
	if o < NumDOps && dopNames[o] != "" {
		return dopNames[o]
	}
	return "dop(?)"
}

// dopSrc maps each direct opcode to its source constituents for profile
// accounting; unused trailing entries are OpNop. dopN (below) is
// authoritative for how many entries are real.
var dopSrc = [NumDOps][4]Op{
	DNop: {OpNop, OpNop}, DConst: {OpConst, OpNop}, DConstClone: {OpConst, OpNop},
	DLoadM: {OpLoadM, OpNop}, DStoreM: {OpStoreM, OpNop},
	DLoadN: {OpLoadN, OpNop}, DStoreN: {OpStoreN, OpNop}, DLoadNet: {OpLoadNet, OpNop},
	DLoadL: {OpLoadL, OpNop}, DStoreL: {OpStoreL, OpNop}, DPop: {OpPop, OpNop},
	DDup: {OpDup, OpNop}, DDup2: {OpDup2, OpNop},
	DAdd: {OpAdd, OpNop}, DSub: {OpSub, OpNop}, DMul: {OpMul, OpNop},
	DDiv: {OpDiv, OpNop}, DMod: {OpMod, OpNop}, DNeg: {OpNeg, OpNop}, DNot: {OpNot, OpNop},
	DEq: {OpEq, OpNop}, DNe: {OpNe, OpNop}, DLt: {OpLt, OpNop}, DLe: {OpLe, OpNop},
	DGt: {OpGt, OpNop}, DGe: {OpGe, OpNop},
	DJmp: {OpJmp, OpNop}, DJz: {OpJz, OpNop}, DIndex: {OpIndex, OpNop},
	DSetIndex: {OpSetIndex, OpNop}, DArr: {OpArr, OpNop},
	DCallFunc: {OpCallFunc, OpNop}, DRet: {OpRet, OpNop}, DCallNative: {OpCallNative, OpNop},
	DHop: {OpHop, OpNop}, DCreate: {OpCreate, OpNop}, DDelete: {OpDelete, OpNop},
	DSchedAbs: {OpSchedAbs, OpNop}, DSchedDlt: {OpSchedDlt, OpNop}, DEnd: {OpEnd, OpNop},
	DFConstAdd: {OpConst, OpAdd}, DFConstSub: {OpConst, OpSub},
	DFConstMul: {OpConst, OpMul}, DFConstDiv: {OpConst, OpDiv}, DFConstMod: {OpConst, OpMod},
	DFLoadMConst: {OpLoadM, OpConst}, DFLoadLConst: {OpLoadL, OpConst},
	DFLoadMM: {OpLoadM, OpLoadM}, DFLoadLL: {OpLoadL, OpLoadL},
	DFEqJz: {OpEq, OpJz}, DFNeJz: {OpNe, OpJz}, DFLtJz: {OpLt, OpJz},
	DFLeJz: {OpLe, OpJz}, DFGtJz: {OpGt, OpJz}, DFGeJz: {OpGe, OpJz},
	DFAddStoreM: {OpAdd, OpStoreM}, DFSubStoreM: {OpSub, OpStoreM},
	DFMulStoreM: {OpMul, OpStoreM}, DFDivStoreM: {OpDiv, OpStoreM}, DFModStoreM: {OpMod, OpStoreM},
	DFAddStoreL: {OpAdd, OpStoreL}, DFSubStoreL: {OpSub, OpStoreL},
	DFMulStoreL: {OpMul, OpStoreL}, DFDivStoreL: {OpDiv, OpStoreL}, DFModStoreL: {OpMod, OpStoreL},
	DFMMLtJz:    {OpLoadM, OpLoadM, OpLt, OpJz},
	DFMMLeJz:    {OpLoadM, OpLoadM, OpLe, OpJz},
	DFMMGtJz:    {OpLoadM, OpLoadM, OpGt, OpJz},
	DFMMGeJz:    {OpLoadM, OpLoadM, OpGe, OpJz},
	DFMCLtJz:    {OpLoadM, OpConst, OpLt, OpJz},
	DFMCLeJz:    {OpLoadM, OpConst, OpLe, OpJz},
	DFMCGtJz:    {OpLoadM, OpConst, OpGt, OpJz},
	DFMCGeJz:    {OpLoadM, OpConst, OpGe, OpJz},
	DFLLLtJz:    {OpLoadL, OpLoadL, OpLt, OpJz},
	DFLLLeJz:    {OpLoadL, OpLoadL, OpLe, OpJz},
	DFLLGtJz:    {OpLoadL, OpLoadL, OpGt, OpJz},
	DFLLGeJz:    {OpLoadL, OpLoadL, OpGe, OpJz},
	DFLCLtJz:    {OpLoadL, OpConst, OpLt, OpJz},
	DFLCLeJz:    {OpLoadL, OpConst, OpLe, OpJz},
	DFLCGtJz:    {OpLoadL, OpConst, OpGt, OpJz},
	DFLCGeJz:    {OpLoadL, OpConst, OpGe, OpJz},

	DFMCAddStoreM: {OpLoadM, OpConst, OpAdd, OpStoreM},
	DFMCSubStoreM: {OpLoadM, OpConst, OpSub, OpStoreM},
	DFMCMulStoreM: {OpLoadM, OpConst, OpMul, OpStoreM},
	DFMCDivStoreM: {OpLoadM, OpConst, OpDiv, OpStoreM},
	DFMCModStoreM: {OpLoadM, OpConst, OpMod, OpStoreM},
	DFLCAddStoreL: {OpLoadL, OpConst, OpAdd, OpStoreL},
	DFLCSubStoreL: {OpLoadL, OpConst, OpSub, OpStoreL},
	DFLCMulStoreL: {OpLoadL, OpConst, OpMul, OpStoreL},
	DFLCDivStoreL: {OpLoadL, OpConst, OpDiv, OpStoreL},
	DFLCModStoreL: {OpLoadL, OpConst, OpMod, OpStoreL},
}

// dopN is the number of source instructions each direct opcode covers.
var dopN = func() [NumDOps]uint8 {
	var n [NumDOps]uint8
	for o := range n {
		n[o] = 1
	}
	for o := DFConstAdd; o <= DFModStoreL; o++ {
		n[o] = 2
	}
	for o := DFMMLtJz; o <= DFLCModStoreL; o++ {
		n[o] = 4
	}
	for o := DAddII; o < NumDOps; o++ {
		n[o] = n[o.Generic()]
	}
	return n
}()

// Specialized opcodes inherit their generic counterpart's constituents and
// mnemonic (with the kind suffix) instead of repeating 82 table rows.
func init() {
	for o := DAddII; o < NumDOps; o++ {
		g := o.Generic()
		dopSrc[o] = dopSrc[g]
		dopNames[o] = dopNames[g] + specSuffix(o)
	}
}

// Constituents returns the source opcodes a direct opcode executes (the
// first n entries) and how many source instructions it covers (1, 2, or 4).
func (o DOp) Constituents() (ops [4]Op, n int) {
	return dopSrc[o], int(dopN[o])
}

// DInstr is one direct-stream instruction. A, B, and C carry pre-decoded
// operands (slot indices, argument counts, resolved jump targets); Val and
// Name carry the decoded constant and name-pool entry where the opcode
// needs them. Src is the source PC of the first constituent and N the
// number of source instructions covered — the step meter charges N so
// fused and unfused execution meter identically.
type DInstr struct {
	Op      DOp
	N       uint8
	A, B, C int32
	Src     int32
	Val     value.Value
	Name    string
}

// DFunc is one function's direct stream.
type DFunc struct {
	Code []DInstr
	// S2D maps a source PC to its direct-stream index, or -1 for the
	// interior (second constituent) of a fused pair. Every PC a snapshot
	// can resume at — jump targets and successors of pause opcodes — is
	// guaranteed to map.
	S2D []int32
}

// Lowered is a Program's direct form. It is derived state: rebuilt from
// the portable stream on demand, never encoded, never hashed.
type Lowered struct {
	Funcs []DFunc
	// MVars maps Messenger-variable slots to names; DLoadM/DStoreM (and
	// the fused ops touching Messenger variables) index into it.
	MVars []string
	// Fused counts fused instructions across all functions (static).
	Fused int
}

// LowerMode selects how far the lowering pass optimizes beyond operand
// pre-decoding.
type LowerMode uint8

const (
	// LowerPlain translates one-to-one: pre-decoded operands, no fusion.
	LowerPlain LowerMode = iota
	// LowerFused adds superinstruction fusion.
	LowerFused
	// LowerKind adds kind specialization on top of fusion: wherever the
	// kind-flow verifier proved the operand kinds at a source PC, the
	// instruction is swapped for its guard-free specialized variant. The
	// stream shape is identical to LowerFused — only opcodes differ.
	LowerKind
	numLowerModes
)

// Lowered returns the program's direct form for the given mode, building
// and caching it on first use. It returns nil for unverified programs —
// lowering leans on the verifier's guarantees (in-range jumps, no
// fall-through, balanced stacks, proven kinds), so the interpreter's fast
// path and the verifier gate are the same gate.
func (p *Program) Lowered(mode LowerMode) *Lowered {
	if !p.verified || mode >= numLowerModes {
		return nil
	}
	slot := &p.lowered[mode]
	if low := slot.Load(); low != nil {
		return low
	}
	low := p.buildLowered(mode)
	// Concurrent builders produce equivalent streams; first store wins.
	if !slot.CompareAndSwap(nil, low) {
		return slot.Load()
	}
	return low
}

// lowerCaches is embedded in Program (see bytecode.go); Validate resets it
// so a mutated-and-revalidated program cannot serve a stale stream.
type lowerCaches struct {
	lowered [numLowerModes]atomic.Pointer[Lowered]
}

func (c *lowerCaches) resetLowered() {
	for i := range c.lowered {
		c.lowered[i].Store(nil)
	}
}

// fusePair returns the superinstruction for the adjacent pair (a, b), or
// DNop when the pair is not fused. Constants are only folded into a fused
// push when they are immutable (no clone needed); DFConstArith is exempt
// because the constant is consumed by the arithmetic, never escaping to
// the stack.
func (p *Program) fusePair(a, b Instr) DOp {
	switch a.Op {
	case OpConst:
		switch b.Op {
		case OpAdd:
			return DFConstAdd
		case OpSub:
			return DFConstSub
		case OpMul:
			return DFConstMul
		case OpDiv:
			return DFConstDiv
		case OpMod:
			return DFConstMod
		}
	case OpLoadM:
		switch b.Op {
		case OpConst:
			if constImmutable(p.Consts[b.A]) {
				return DFLoadMConst
			}
		case OpLoadM:
			return DFLoadMM
		}
	case OpLoadL:
		switch b.Op {
		case OpConst:
			if constImmutable(p.Consts[b.A]) {
				return DFLoadLConst
			}
		case OpLoadL:
			return DFLoadLL
		}
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if b.Op == OpJz {
			switch a.Op {
			case OpEq:
				return DFEqJz
			case OpNe:
				return DFNeJz
			case OpLt:
				return DFLtJz
			case OpLe:
				return DFLeJz
			case OpGt:
				return DFGtJz
			default:
				return DFGeJz
			}
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		if b.Op == OpStoreM || b.Op == OpStoreL {
			toM := b.Op == OpStoreM
			switch a.Op {
			case OpAdd:
				return pick(toM, DFAddStoreM, DFAddStoreL)
			case OpSub:
				return pick(toM, DFSubStoreM, DFSubStoreL)
			case OpMul:
				return pick(toM, DFMulStoreM, DFMulStoreL)
			case OpDiv:
				return pick(toM, DFDivStoreM, DFDivStoreL)
			default:
				return pick(toM, DFModStoreM, DFModStoreL)
			}
		}
	}
	return DNop
}

func pick(cond bool, a, b DOp) DOp {
	if cond {
		return a
	}
	return b
}

// fuseQuad returns the quad superinstruction for the window starting at a,
// or DNop. Two idioms: the loop head (load, load-or-const, ordered compare,
// jz) and the increment (load, const, arithmetic, same-kind store). The
// constant is consumed inside the handler in both, so mutability does not
// matter; only ordered comparisons participate (Eq/Ne loop heads keep pair
// fusion).
func fuseQuad(a, b, c, d Instr) DOp {
	load := a.Op
	if load != OpLoadM && load != OpLoadL {
		return DNop
	}
	toM := load == OpLoadM
	switch c.Op {
	case OpLt, OpLe, OpGt, OpGe:
		if d.Op != OpJz {
			return DNop
		}
		off := DOp(c.Op - OpLt)
		switch {
		case b.Op == load:
			return pick(toM, DFMMLtJz, DFLLLtJz) + off
		case b.Op == OpConst:
			return pick(toM, DFMCLtJz, DFLCLtJz) + off
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		if b.Op != OpConst {
			return DNop
		}
		if (toM && d.Op != OpStoreM) || (!toM && d.Op != OpStoreL) {
			return DNop
		}
		return pick(toM, DFMCAddStoreM, DFLCAddStoreL) + DOp(c.Op-OpAdd)
	}
	return DNop
}

// constImmutable reports whether a constant may be pushed without a
// defensive clone: scalar kinds share safely, aggregates do not.
func constImmutable(v value.Value) bool {
	switch v.Kind() {
	case value.KindNil, value.KindInt, value.KindNum, value.KindStr:
		return true
	default:
		return false
	}
}

// specializeOp returns the kind-specialized variant of an emitted direct
// instruction, or d.Op unchanged when the verifier could not prove the
// operand kinds. The deciding constituent is the arithmetic or comparison
// in the instruction's source window; its two operands are the top two
// stack slots of the verifier's state at that PC (loads and const pushes
// earlier in a fused window have already deposited their kinds there, so
// one rule covers plain ops, pairs, and quads alike).
func (p *Program) specializeOp(fi int, d *DInstr) DOp {
	op := d.Op
	pc := int(d.Src)
	switch {
	case op >= DAdd && op <= DMod:
	case op >= DFConstAdd && op <= DFConstMod:
		pc++ // const push, then the arithmetic
	case op >= DFEqJz && op <= DFGeJz:
	case op >= DFAddStoreM && op <= DFModStoreL:
	case op >= DFMMLtJz && op <= DFLCGeJz:
		pc += 2 // two loads, then the comparison
	case op >= DFMCAddStoreM && op <= DFLCModStoreL:
		pc += 2 // load and const, then the arithmetic
	default:
		return op
	}
	depth := p.StackDepth(fi, pc)
	if depth < 2 {
		return op
	}
	a := p.SlotKind(fi, pc, depth-2)
	b := p.SlotKind(fi, pc, depth-1)
	ii := a == KindInt && b == KindInt
	nn := a == KindNum && b == KindNum
	switch {
	case op >= DAdd && op <= DMod:
		off := op - DAdd
		switch {
		case ii:
			return DAddII + off
		case nn:
			return DAddNN + off
		case a == KindInt && b == KindNum:
			return DAddIN + off
		case a == KindNum && b == KindInt:
			return DAddNI + off
		}
	case op >= DFConstAdd && op <= DFConstMod:
		divisive := op == DFConstDiv || op == DFConstMod
		if ii && !(divisive && d.Val.AsInt() == 0) {
			return DFConstAddII + (op - DFConstAdd)
		}
		if nn {
			return DFConstAddNN + (op - DFConstAdd)
		}
	case op >= DFEqJz && op <= DFGeJz:
		if ii {
			return DFEqJzII + (op - DFEqJz)
		}
	case op >= DFAddStoreM && op <= DFModStoreL:
		off := op - DFAddStoreM
		if ii {
			return DFAddStoreMII + off
		}
		if nn {
			return DFAddStoreMNN + off
		}
	case op >= DFMMLtJz && op <= DFLCGeJz:
		if ii {
			return DFMMLtJzII + (op - DFMMLtJz)
		}
	default: // quad increments
		off := op - DFMCAddStoreM
		divisive := off%5 >= 3 // div, mod
		if ii && !(divisive && d.Val.AsInt() == 0) {
			return DFMCAddStoreMII + off
		}
	}
	return op
}

// buildLowered translates every function. Two passes per function: decide
// fusion boundaries and build the PC map, then emit with jump targets
// resolved through that map; LowerKind runs a third pass swapping opcodes
// for kind-specialized variants where the verifier's proofs allow.
func (p *Program) buildLowered(mode LowerMode) *Lowered {
	fuse := mode != LowerPlain
	low := &Lowered{Funcs: make([]DFunc, len(p.Funcs))}
	slots := map[string]int32{}
	slotOf := func(nameIdx int32) int32 {
		name := p.Names[nameIdx]
		if s, ok := slots[name]; ok {
			return s
		}
		s := int32(len(low.MVars))
		slots[name] = s
		low.MVars = append(low.MVars, name)
		return s
	}
	for fi := range p.Funcs {
		code := p.Funcs[fi].Code
		// Jump targets must start a direct instruction: a branch into the
		// interior of a fused pair would skip its first constituent.
		target := make([]bool, len(code))
		for _, ins := range code {
			if ins.Op == OpJmp || ins.Op == OpJz {
				target[ins.A] = true
			}
		}
		s2d := make([]int32, len(code))
		fusedAt := make([]DOp, len(code))
		n := int32(0)
		for pc := 0; pc < len(code); {
			s2d[pc] = n
			// Quads first (a pair would otherwise greedily eat the loop
			// head's first two instructions), then pairs. A jump target in
			// the window interior blocks fusion — every branch destination
			// must start a direct instruction.
			if fuse && pc+3 < len(code) && !target[pc+1] && !target[pc+2] && !target[pc+3] {
				if qop := fuseQuad(code[pc], code[pc+1], code[pc+2], code[pc+3]); qop != DNop {
					fusedAt[pc] = qop
					s2d[pc+1], s2d[pc+2], s2d[pc+3] = -1, -1, -1
					n++
					pc += 4
					continue
				}
			}
			if fuse && pc+1 < len(code) && !target[pc+1] {
				if fop := p.fusePair(code[pc], code[pc+1]); fop != DNop {
					fusedAt[pc] = fop
					s2d[pc+1] = -1
					n++
					pc += 2
					continue
				}
			}
			n++
			pc++
		}
		out := make([]DInstr, 0, n)
		for pc := 0; pc < len(code); {
			ins := code[pc]
			d := DInstr{Src: int32(pc), N: 1}
			if fop := fusedAt[pc]; fop != DNop && dopN[fop] == 4 {
				b, last := code[pc+1], code[pc+3]
				d.Op, d.N = fop, 4
				switch {
				case fop >= DFMMLtJz && fop <= DFMMGeJz:
					d.A, d.B, d.C = slotOf(ins.A), slotOf(b.A), s2d[last.A]
				case fop >= DFMCLtJz && fop <= DFMCGeJz:
					d.A, d.Val, d.C = slotOf(ins.A), p.Consts[b.A], s2d[last.A]
				case fop >= DFLLLtJz && fop <= DFLLGeJz:
					d.A, d.B, d.C = ins.A, b.A, s2d[last.A]
				case fop >= DFLCLtJz && fop <= DFLCGeJz:
					d.A, d.Val, d.C = ins.A, p.Consts[b.A], s2d[last.A]
				case fop >= DFMCAddStoreM && fop <= DFMCModStoreM:
					d.A, d.Val, d.B = slotOf(ins.A), p.Consts[b.A], slotOf(last.A)
				default: // DFLCAddStoreL..DFLCModStoreL
					d.A, d.Val, d.B = ins.A, p.Consts[b.A], last.A
				}
				low.Fused++
				out = append(out, d)
				pc += 4
				continue
			}
			if fop := fusedAt[pc]; fop != DNop {
				nxt := code[pc+1]
				d.Op, d.N = fop, 2
				switch fop {
				case DFConstAdd, DFConstSub, DFConstMul, DFConstDiv, DFConstMod:
					d.Val = p.Consts[ins.A]
				case DFLoadMConst:
					d.A, d.Val = slotOf(ins.A), p.Consts[nxt.A]
				case DFLoadLConst:
					d.A, d.Val = ins.A, p.Consts[nxt.A]
				case DFLoadMM:
					d.A, d.B = slotOf(ins.A), slotOf(nxt.A)
				case DFLoadLL:
					d.A, d.B = ins.A, nxt.A
				case DFEqJz, DFNeJz, DFLtJz, DFLeJz, DFGtJz, DFGeJz:
					d.A = s2d[nxt.A]
				case DFAddStoreM, DFSubStoreM, DFMulStoreM, DFDivStoreM, DFModStoreM:
					d.A = slotOf(nxt.A)
				default: // DF*StoreL
					d.A = nxt.A
				}
				low.Fused++
				out = append(out, d)
				pc += 2
				continue
			}
			switch ins.Op {
			case OpNop:
				d.Op = DNop
			case OpConst:
				c := p.Consts[ins.A]
				d.Val = c
				d.Op = pick(constImmutable(c), DConst, DConstClone)
			case OpLoadM:
				d.Op, d.A = DLoadM, slotOf(ins.A)
			case OpStoreM:
				d.Op, d.A = DStoreM, slotOf(ins.A)
			case OpLoadN:
				d.Op, d.Name = DLoadN, p.Names[ins.A]
			case OpStoreN:
				d.Op, d.Name = DStoreN, p.Names[ins.A]
			case OpLoadNet:
				d.Op, d.Name = DLoadNet, p.Names[ins.A]
			case OpLoadL:
				d.Op, d.A = DLoadL, ins.A
			case OpStoreL:
				d.Op, d.A = DStoreL, ins.A
			case OpPop:
				d.Op = DPop
			case OpDup:
				d.Op = DDup
			case OpDup2:
				d.Op = DDup2
			case OpAdd:
				d.Op = DAdd
			case OpSub:
				d.Op = DSub
			case OpMul:
				d.Op = DMul
			case OpDiv:
				d.Op = DDiv
			case OpMod:
				d.Op = DMod
			case OpNeg:
				d.Op = DNeg
			case OpNot:
				d.Op = DNot
			case OpEq:
				d.Op = DEq
			case OpNe:
				d.Op = DNe
			case OpLt:
				d.Op = DLt
			case OpLe:
				d.Op = DLe
			case OpGt:
				d.Op = DGt
			case OpGe:
				d.Op = DGe
			case OpJmp:
				d.Op, d.A = DJmp, s2d[ins.A]
			case OpJz:
				d.Op, d.A = DJz, s2d[ins.A]
			case OpIndex:
				d.Op = DIndex
			case OpSetIndex:
				d.Op, d.B = DSetIndex, ins.B
			case OpArr:
				d.Op, d.A = DArr, ins.A
			case OpCallFunc:
				d.Op, d.A, d.B = DCallFunc, ins.A, ins.B
			case OpRet:
				d.Op = DRet
			case OpCallNative:
				d.Op, d.Name, d.B = DCallNative, p.Names[ins.A], ins.B
			case OpHop:
				d.Op, d.A = DHop, ins.A
			case OpCreate:
				d.Op, d.A, d.B = DCreate, ins.A, ins.B
			case OpDelete:
				d.Op, d.A = DDelete, ins.A
			case OpSchedAbs:
				d.Op = DSchedAbs
			case OpSchedDlt:
				d.Op = DSchedDlt
			default: // OpEnd (Validate rejects anything else)
				d.Op = DEnd
			}
			out = append(out, d)
			pc++
		}
		if mode == LowerKind {
			for i := range out {
				out[i].Op = p.specializeOp(fi, &out[i])
			}
		}
		low.Funcs[fi] = DFunc{Code: out, S2D: s2d}
	}
	return low
}
